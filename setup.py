"""Legacy setup shim.

The offline build environment lacks the ``wheel`` package, so PEP-660
editable installs fail; this shim lets ``pip install -e . --no-use-pep517
--no-build-isolation`` (or ``python setup.py develop``) work.  All real
metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23", "scipy>=1.9", "networkx>=2.8"],
)
