"""Unit tests for static timing analysis."""

import pytest

from repro.digital.netlist import GateNetlist
from repro.digital.sta import analyze_timing
from repro.stscl import StsclGateDesign


def chain(n: int, cell: str = "BUF") -> GateNetlist:
    netlist = GateNetlist(f"chain{n}")
    netlist.add_input("a")
    previous = "a"
    for k in range(n):
        netlist.add_gate(f"g{k}", cell, [previous], f"x{k}")
        previous = f"x{k}"
    netlist.mark_output(previous)
    return netlist


class TestCriticalPath:
    def test_chain_delay(self, default_design):
        report = analyze_timing(chain(4), default_design)
        assert report.critical_delay == pytest.approx(
            4.0 * default_design.delay())
        assert report.weighted_depth == pytest.approx(4.0)
        assert len(report.critical_path) == 4

    def test_stacked_cells_weighted(self, default_design):
        netlist = GateNetlist("maj_pipe")
        netlist.add_input("a")
        netlist.add_gate("m1", "MAJ3_PIPE", ["a", "a", "a"], "x")
        netlist.add_gate("m2", "MAJ3_PIPE", ["x", "x", "x"], "y")
        netlist.mark_output("y")
        report = analyze_timing(netlist, default_design)
        # MAJ3 has delay factor 1.3, but sequential cells cut paths:
        # each register-to-register segment is one cell.
        assert report.weighted_depth == pytest.approx(1.3)

    def test_fmax_half_period_criterion(self, default_design):
        report = analyze_timing(chain(1), default_design)
        assert report.f_max == pytest.approx(
            1.0 / (2.0 * default_design.delay()))

    def test_fmax_matches_gate_model(self, default_design):
        """A depth-1 buffer pipeline must reproduce
        StsclGateDesign.max_frequency(1)."""
        netlist = chain(3, cell="BUF_PIPE")
        report = analyze_timing(netlist, default_design)
        assert report.f_max == pytest.approx(
            default_design.max_frequency(1), rel=1e-9)

    def test_parallel_paths_pick_longest(self, default_design):
        netlist = GateNetlist("diamond")
        netlist.add_input("a")
        netlist.add_gate("short", "BUF", ["a"], "s")
        netlist.add_gate("l1", "BUF", ["a"], "m")
        netlist.add_gate("l2", "BUF", ["m"], "n")
        netlist.add_gate("join", "AND2", ["s", "n"], "y")
        report = analyze_timing(netlist, default_design)
        assert report.critical_path[-1] == "join"
        assert "l1" in report.critical_path

    def test_power_accounting(self, default_design):
        report = analyze_timing(chain(5), default_design)
        assert report.n_tails == 5
        assert report.power(default_design, 1.0) == pytest.approx(
            5.0 * default_design.i_ss)

    def test_scaling_with_current(self):
        slow = analyze_timing(chain(3), StsclGateDesign.default(1e-10))
        fast = analyze_timing(chain(3), StsclGateDesign.default(1e-9))
        assert fast.f_max == pytest.approx(10.0 * slow.f_max, rel=1e-9)
