"""Unit tests for STA under tail-current mismatch."""

import pytest

from repro.digital.netlist import GateNetlist
from repro.digital.sta import analyze_timing, timing_yield_under_mismatch
from repro.stscl import StsclGateDesign


def chain(n: int) -> GateNetlist:
    netlist = GateNetlist(f"chain{n}")
    netlist.add_input("a")
    previous = "a"
    for k in range(n):
        netlist.add_gate(f"g{k}", "BUF_PIPE", [previous], f"x{k}")
        previous = f"x{k}"
    netlist.mark_output(previous)
    return netlist


class TestDelayScaleHook:
    def test_scale_slows_named_gate(self, default_design):
        netlist = chain(3)
        nominal = analyze_timing(netlist, default_design)
        slowed = analyze_timing(netlist, default_design,
                                delay_scale={"g1": 2.0})
        # Registers cut paths, so only g1's own segment doubles.
        assert slowed.f_max == pytest.approx(nominal.f_max / 2.0)

    def test_unknown_names_ignored(self, default_design):
        netlist = chain(2)
        nominal = analyze_timing(netlist, default_design)
        same = analyze_timing(netlist, default_design,
                              delay_scale={"ghost": 5.0})
        assert same.f_max == nominal.f_max


class TestMismatchYield:
    def test_statistics_sane(self, default_design):
        stats = timing_yield_under_mismatch(chain(20), default_design,
                                            n_chips=15, seed=1)
        assert stats["p05"] < stats["mean"] <= stats["nominal"] * 1.01
        assert stats["std"] > 0.0
        assert 0.0 < stats["sigma_mirror"] < 0.5

    def test_reproducible(self, default_design):
        a = timing_yield_under_mismatch(chain(5), default_design,
                                        n_chips=5, seed=3)
        b = timing_yield_under_mismatch(chain(5), default_design,
                                        n_chips=5, seed=3)
        assert a == b

    def test_bigger_tail_devices_tighten_distribution(self):
        """The paper's remedy: larger tail transistors reduce the
        mirror sigma and hence the f_max spread."""
        small = StsclGateDesign(i_ss=1e-9, tail_w=1e-6, tail_l=0.5e-6)
        big = StsclGateDesign(i_ss=1e-9, tail_w=8e-6, tail_l=4e-6)
        netlist = chain(20)
        loose = timing_yield_under_mismatch(netlist, small, n_chips=15,
                                            seed=0)
        tight = timing_yield_under_mismatch(netlist, big, n_chips=15,
                                            seed=0)
        assert tight["sigma_mirror"] < 0.3 * loose["sigma_mirror"]
        assert (tight["nominal"] - tight["p05"]) \
            < (loose["nominal"] - loose["p05"])

    def test_worst_chip_guides_derating(self, default_design):
        """Design guidance: the 5th-percentile chip tells you how much
        f_max margin to budget -- it must be a bounded derating, not a
        collapse."""
        stats = timing_yield_under_mismatch(chain(30), default_design,
                                            n_chips=20, seed=2)
        assert stats["p05"] > 0.5 * stats["nominal"]
