"""Unit tests for the cycle-accurate and event-driven simulators."""

import pytest

from repro.digital.netlist import GateNetlist
from repro.digital.simulator import CycleSimulator, EventSimulator
from repro.errors import AnalysisError
from repro.stscl import StsclGateDesign


def comb_netlist() -> GateNetlist:
    netlist = GateNetlist("comb")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_input("c")
    netlist.add_gate("g1", "AND2", ["a", "b"], "ab")
    netlist.add_gate("g2", "OR2", ["ab", "c"], "y")
    netlist.mark_output("y")
    return netlist


def two_stage_pipeline() -> GateNetlist:
    netlist = GateNetlist("pipe2")
    netlist.add_input("a")
    netlist.add_gate("s1", "BUF_PIPE", ["a"], "q1")
    netlist.add_gate("s2", "BUF_PIPE", ["q1"], "q2")
    netlist.mark_output("q2")
    return netlist


class TestCycleSimulator:
    def test_combinational_single_cycle(self):
        sim = CycleSimulator(comb_netlist())
        out = sim.step({"a": True, "b": True, "c": False})
        assert out["y"] is True
        out = sim.step({"a": True, "b": False, "c": False})
        assert out["y"] is False

    def test_missing_input_rejected(self):
        sim = CycleSimulator(comb_netlist())
        with pytest.raises(AnalysisError):
            sim.step({"a": True})

    def test_pipeline_latency(self):
        sim = CycleSimulator(two_stage_pipeline())
        assert sim.latency() == 2
        outs = [sim.step({"a": v})["q2"] for v in (True, False, False)]
        # The True entered at cycle 0 and appears at the output after
        # two register stages.
        assert outs == [False, True, False]

    def test_reset_value(self):
        sim = CycleSimulator(two_stage_pipeline())
        sim.step({"a": True})
        sim.reset(False)
        out = sim.step({"a": False})
        assert out["q2"] is False

    def test_registered_feedback_toggles(self):
        netlist = GateNetlist("toggle")
        netlist.add_input("en")
        netlist.add_gate("g1", "XOR2", ["en", "q"], "d")
        netlist.add_gate("g2", "BUF_PIPE", ["d"], "q")
        sim = CycleSimulator(netlist)
        values = [sim.step({"en": True})["q"] for _ in range(4)]
        assert values == [True, False, True, False]

    def test_inverted_pin_respected(self):
        netlist = GateNetlist("inv")
        netlist.add_input("a")
        netlist.add_gate("g1", "BUF", [("a", True)], "y")
        sim = CycleSimulator(netlist)
        assert sim.step({"a": True})["y"] is False


class TestEventSimulator:
    def test_settles_to_correct_values(self, default_design):
        sim = EventSimulator(comb_netlist(), default_design)
        values, t_settle = sim.settle({"a": True, "b": True, "c": False})
        assert values["y"] is True
        assert t_settle > 0.0

    def test_settling_time_tracks_depth(self, default_design):
        netlist = GateNetlist("chain")
        netlist.add_input("a")
        previous = "a"
        for k in range(5):
            netlist.add_gate(f"g{k}", "BUF", [previous], f"x{k}")
            previous = f"x{k}"
        sim = EventSimulator(netlist, default_design)
        _values, t_settle = sim.settle({"a": True})
        assert t_settle == pytest.approx(5.0 * default_design.delay(),
                                         rel=1e-6)

    def test_faster_design_settles_faster(self):
        slow = StsclGateDesign.default(1e-10)
        fast = StsclGateDesign.default(1e-8)
        netlist = comb_netlist()
        _v, t_slow = EventSimulator(netlist, slow).settle(
            {"a": True, "b": True, "c": True})
        _v, t_fast = EventSimulator(netlist, fast).settle(
            {"a": True, "b": True, "c": True})
        assert t_slow > 50.0 * t_fast
