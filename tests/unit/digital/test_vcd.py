"""Unit tests for the VCD waveform exporter."""

import io

import pytest

from repro.digital.registers import build_binary_counter
from repro.digital.vcd import _identifier, dump_vcd
from repro.errors import AnalysisError
from repro.stscl import StsclGateDesign


@pytest.fixture(scope="module")
def counter_vcd():
    netlist = build_binary_counter(3)
    stimulus = [{"en": True}] * 10
    return netlist, dump_vcd(netlist, stimulus)


class TestIdentifiers:
    def test_unique_for_many_signals(self):
        ids = {_identifier(k) for k in range(500)}
        assert len(ids) == 500

    def test_rejects_negative(self):
        with pytest.raises(AnalysisError):
            _identifier(-1)


class TestStructure:
    def test_header_sections(self, counter_vcd):
        _netlist, text = counter_vcd
        for token in ("$timescale", "$scope", "$enddefinitions",
                      "$upscope"):
            assert token in text

    def test_declares_expected_signals(self, counter_vcd):
        _netlist, text = counter_vcd
        for net in ("en", "q0", "q1", "q2"):
            assert f" {net} $end" in text

    def test_stream_argument(self):
        netlist = build_binary_counter(2)
        buffer = io.StringIO()
        text = dump_vcd(netlist, [{"en": True}] * 3, stream=buffer)
        assert buffer.getvalue() == text

    def test_empty_stimulus_rejected(self):
        with pytest.raises(AnalysisError):
            dump_vcd(build_binary_counter(2), [])


class TestValueChanges:
    def _changes_of(self, text: str, identifier: str) -> list[str]:
        return [line for line in text.splitlines()
                if line.endswith(identifier)
                and line[0] in "01"]

    def test_lsb_toggles_every_cycle(self, counter_vcd):
        _netlist, text = counter_vcd
        # Find q0's identifier from its declaration line.
        declaration = next(line for line in text.splitlines()
                           if line.endswith(" q0 $end"))
        identifier = declaration.split()[3]
        changes = self._changes_of(text, identifier)
        # q0 toggles on all 10 cycles.
        assert len(changes) == 10
        assert [c[0] for c in changes[:4]] == ["1", "0", "1", "0"]

    def test_timescale_uses_design_rate_exactly(self):
        """One cycle of the dump spans exactly the design's clock
        period -- at whatever (possibly sub-ns) timescale represents
        the non-integer period without rounding."""
        from repro.scope.vcd import parse_vcd, timescale_seconds

        netlist = build_binary_counter(2)
        design = StsclGateDesign.default(1e-9)  # f_max ~103 kHz
        text = dump_vcd(netlist, [{"en": True}] * 2, design=design)
        document = parse_vcd(text)
        period_s = 1.0 / design.max_frequency(1)
        ticks = {t for t, _i, _v in document.changes if t > 0}
        assert len(ticks) == 1
        scale = timescale_seconds(document.timescale)
        # Exact to the writer's 1 ppb representation tolerance (the
        # old exporter's integer-ns round was off by ~3e-5 relative).
        assert next(iter(ticks)) * scale == pytest.approx(
            period_s, rel=2e-9)

    def test_fractional_ns_period_keeps_cursor_accuracy(self):
        """A 0.5 ns clock dumps at 100ps x 5 (the old exporter rounded
        the timescale to 1ns: a 2x cursor error)."""
        from repro.digital.vcd import cycle_timescale

        label, ticks = cycle_timescale(0.5e-9)
        assert (label, ticks) == ("100ps", 5)

    def test_net_filter(self):
        netlist = build_binary_counter(3)
        text = dump_vcd(netlist, [{"en": True}] * 4, nets=["q2"])
        assert " q2 $end" in text
        assert " q0 $end" not in text
