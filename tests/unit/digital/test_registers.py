"""Unit tests for the sequential building blocks."""

import pytest

from repro.digital.registers import (
    build_accumulator,
    build_binary_counter,
    build_johnson_counter,
    build_shift_register,
)
from repro.digital.simulator import CycleSimulator
from repro.errors import DesignError


def read_word(values: dict, prefix: str, width: int) -> int:
    return sum(1 << k for k in range(width) if values[f"{prefix}{k}"])


class TestShiftRegister:
    def test_serial_propagation(self):
        netlist = build_shift_register(4)
        sim = CycleSimulator(netlist)
        pattern = [True, False, True, True, False, False, False, False]
        seen = []
        for bit in pattern:
            out = sim.step({"din": bit})
            seen.append(out["q0"])
        # The bit applied on step k emerges at q0 on step k+3 (four
        # registers, the first samples its input on the same edge).
        assert seen[3:7] == pattern[:4]

    def test_parallel_word(self):
        netlist = build_shift_register(4)
        sim = CycleSimulator(netlist)
        for bit in (True, False, True, True):
            out = sim.step({"din": bit})
        # After 4 shifts: q3 = newest bit, q0 = oldest.
        assert out["q3"] is True
        assert out["q0"] is True
        assert out["q2"] is True
        assert out["q1"] is False

    def test_cost_one_tail_per_bit(self):
        assert build_shift_register(8).tail_count() == 8

    def test_validation(self):
        with pytest.raises(DesignError):
            build_shift_register(0)


class TestBinaryCounter:
    def test_counts_modulo(self):
        width = 4
        netlist = build_binary_counter(width)
        sim = CycleSimulator(netlist)
        values = [read_word(sim.step({"en": True}), "q", width)
                  for _ in range(20)]
        assert values == [(k + 1) % 16 for k in range(20)]

    def test_enable_gates_counting(self):
        netlist = build_binary_counter(3)
        sim = CycleSimulator(netlist)
        sim.step({"en": True})
        held = sim.step({"en": False})
        assert read_word(held, "q", 3) == 1
        resumed = sim.step({"en": True})
        assert read_word(resumed, "q", 3) == 2


class TestJohnsonCounter:
    def test_sequence_and_period(self):
        width = 3
        netlist = build_johnson_counter(width)
        sim = CycleSimulator(netlist)
        states = [tuple(out[f"q{k}"] for k in range(width))
                  for out in (sim.step({"en": True})
                              for _ in range(2 * width))]
        # 2*width distinct states, then the cycle repeats.
        assert len(set(states)) == 2 * width
        out = sim.step({"en": True})
        again = tuple(out[f"q{k}"] for k in range(width))
        assert again == states[0]

    def test_one_bit_changes_per_step(self):
        width = 4
        netlist = build_johnson_counter(width)
        sim = CycleSimulator(netlist)
        previous = tuple([False] * width)
        for _ in range(2 * width):
            out = sim.step({"en": True})
            state = tuple(out[f"q{k}"] for k in range(width))
            flips = sum(a != b for a, b in zip(previous, state))
            assert flips == 1
            previous = state


class TestAccumulator:
    def drive(self, sim, width, value):
        return sim.step({f"d{k}": bool((value >> k) & 1)
                         for k in range(width)})

    def test_accumulates(self):
        width = 6
        netlist = build_accumulator(width)
        sim = CycleSimulator(netlist)
        total = 0
        for addend in (3, 10, 25, 7, 60, 11):
            out = self.drive(sim, width, addend)
            total = (total + addend) % 64
            assert read_word(out, "acc", width) == total

    def test_boxcar_average(self):
        """The decimation use-case: accumulate N codes, divide by N
        (a shift when N is a power of two)."""
        width = 8
        netlist = build_accumulator(width)
        sim = CycleSimulator(netlist)
        samples = [17, 19, 18, 18]
        out = None
        for s in samples:
            out = self.drive(sim, width, s)
        accumulated = read_word(out, "acc", width)
        assert accumulated // len(samples) == 18

    def test_compound_cell_economics(self):
        """One FASUM_PIPE + one MAJ3 per interior bit: ~2 tails/bit."""
        netlist = build_accumulator(8)
        assert netlist.tail_count() <= 2 * 8
