"""Unit tests for the subthreshold CMOS baseline model."""

import pytest

from repro.digital.cmos_baseline import CmosGateModel, CmosSystemModel
from repro.errors import DesignError


@pytest.fixture(scope="module")
def gate():
    return CmosGateModel()


@pytest.fixture(scope="module")
def system(gate):
    return CmosSystemModel(gate=gate, n_gates=200, alpha=0.1,
                           logic_depth=10)


class TestGate:
    def test_on_current_exponential_below_vt(self, gate):
        i1 = gate.on_current(0.30)
        i2 = gate.on_current(0.40)
        assert i2 / i1 > 5.0  # ~a decade per ~100 mV (n~1.3)

    def test_off_current_small(self, gate):
        assert gate.off_current(0.5) < 1e-2 * gate.on_current(0.5)

    def test_delay_falls_steeply_with_vdd(self, gate):
        assert gate.delay(0.3) > 5.0 * gate.delay(0.4)

    def test_switching_energy_cv2(self, gate):
        assert gate.switching_energy(0.5) == pytest.approx(
            gate.c_load * 0.25)

    def test_rejects_bad_vdd(self, gate):
        with pytest.raises(DesignError):
            gate.on_current(0.0)


class TestSystem:
    def test_leakage_floor_exists_at_zero_frequency(self, system):
        assert system.total_power(0.5, 0.0) == pytest.approx(
            system.leakage_power(0.5))

    def test_dynamic_power_linear_in_frequency(self, system):
        p1 = system.dynamic_power(0.5, 1e3)
        p2 = system.dynamic_power(0.5, 2e3)
        assert p2 == pytest.approx(2.0 * p1)

    def test_activity_scales_dynamic(self, gate):
        quiet = CmosSystemModel(gate=gate, n_gates=100, alpha=0.01)
        busy = CmosSystemModel(gate=gate, n_gates=100, alpha=0.5)
        assert busy.dynamic_power(0.5, 1e4) == pytest.approx(
            50.0 * quiet.dynamic_power(0.5, 1e4))

    def test_max_frequency_grows_with_vdd(self, system):
        assert system.max_frequency(0.6) > 10.0 * system.max_frequency(0.4)

    def test_energy_per_cycle_has_minimum_vs_vdd(self, system):
        """The classic subthreshold CMOS minimum-energy point: energy
        rises both above (CV^2) and below (leakage x slow cycle) the
        optimum."""
        f = 1e3
        v_opt, e_opt = system.minimum_energy_supply(f)
        assert 0.15 < v_opt < 0.9
        e_high = system.energy_per_cycle(1.2, f)
        assert e_high > e_opt

    def test_min_energy_unreachable_frequency_raises(self, system):
        with pytest.raises(DesignError):
            system.minimum_energy_supply(1e12)

    def test_validation(self, gate):
        with pytest.raises(DesignError):
            CmosSystemModel(gate=gate, n_gates=0)
        with pytest.raises(DesignError):
            CmosSystemModel(gate=gate, n_gates=10, alpha=1.5)
