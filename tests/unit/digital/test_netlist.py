"""Unit tests for the gate-level netlist."""

import pytest

from repro.digital.netlist import GateNetlist, Pin
from repro.errors import NetlistError


def half_adder() -> GateNetlist:
    netlist = GateNetlist("half_adder")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_gate("g_sum", "XOR2", ["a", "b"], "s")
    netlist.add_gate("g_carry", "AND2", ["a", "b"], "c")
    netlist.mark_output("s")
    netlist.mark_output("c")
    return netlist


class TestConstruction:
    def test_duplicate_gate_name(self):
        netlist = half_adder()
        with pytest.raises(NetlistError):
            netlist.add_gate("g_sum", "BUF", ["a"], "x")

    def test_double_driven_net(self):
        netlist = half_adder()
        with pytest.raises(NetlistError):
            netlist.add_gate("g2", "BUF", ["a"], "s")

    def test_input_cannot_be_driven(self):
        netlist = half_adder()
        with pytest.raises(NetlistError):
            netlist.add_gate("g2", "BUF", ["s"], "a")

    def test_wrong_arity(self):
        netlist = half_adder()
        with pytest.raises(NetlistError):
            netlist.add_gate("g2", "AND2", ["a"], "x")

    def test_mark_undriven_output(self):
        netlist = half_adder()
        with pytest.raises(NetlistError):
            netlist.mark_output("nowhere")

    def test_pin_forms(self):
        netlist = GateNetlist("pins")
        netlist.add_input("a")
        netlist.add_gate("g1", "BUF", [Pin("a", inverted=True)], "x")
        netlist.add_gate("g2", "BUF", [("a", True)], "y")
        netlist.add_gate("g3", "BUF", ["a"], "z")
        assert netlist.gate("g1").inputs[0].inverted
        assert netlist.gate("g2").inputs[0].inverted
        assert not netlist.gate("g3").inputs[0].inverted


class TestValidation:
    def test_valid_netlist_passes(self):
        half_adder().validate()

    def test_undriven_pin_detected(self):
        netlist = GateNetlist("broken")
        netlist.add_input("a")
        netlist.add_gate("g1", "AND2", ["a", "ghost"], "x")
        with pytest.raises(NetlistError):
            netlist.validate()

    def test_combinational_loop_detected(self):
        netlist = GateNetlist("loop")
        netlist.add_input("a")
        netlist.add_gate("g1", "AND2", ["a", "y"], "x")
        netlist.add_gate("g2", "BUF", ["x"], "y")
        with pytest.raises(NetlistError):
            netlist.validate()

    def test_loop_through_register_allowed(self):
        netlist = GateNetlist("counter")
        netlist.add_input("en")
        netlist.add_gate("g1", "XOR2", ["en", "q"], "d")
        netlist.add_gate("g2", "BUF_PIPE", ["d"], "q")
        netlist.validate()  # must not raise


class TestAccounting:
    def test_tail_count(self):
        assert half_adder().tail_count() == 2

    def test_free_inversion_costs_nothing(self):
        netlist = GateNetlist("inv")
        netlist.add_input("a")
        netlist.add_gate("g1", "INV", ["a"], "x")
        assert netlist.tail_count() == 0
        assert netlist.gate_count() == 0

    def test_cell_histogram(self):
        histogram = half_adder().cell_histogram()
        assert histogram == {"XOR2": 1, "AND2": 1}

    def test_logic_depth_combinational(self):
        netlist = GateNetlist("chain")
        netlist.add_input("a")
        netlist.add_gate("g1", "BUF", ["a"], "x1")
        netlist.add_gate("g2", "BUF", ["x1"], "x2")
        netlist.add_gate("g3", "BUF", ["x2"], "x3")
        assert netlist.logic_depth() == 3

    def test_logic_depth_zero_when_fully_registered(self):
        netlist = GateNetlist("reg")
        netlist.add_input("a")
        netlist.add_gate("g1", "BUF_PIPE", ["a"], "q")
        assert netlist.logic_depth() == 0

    def test_driver_of(self):
        netlist = half_adder()
        assert netlist.driver_of("s").name == "g_sum"
        assert netlist.driver_of("a") is None
