"""Unit tests for automatic pipeline balancing."""

import pytest

from repro.digital.netlist import GateNetlist
from repro.digital.pipeline import balance_pipeline, net_stages
from repro.digital.simulator import CycleSimulator
from repro.errors import NetlistError


def unbalanced() -> GateNetlist:
    """x arrives at the AND one stage deeper than y."""
    netlist = GateNetlist("skewed")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_gate("deep1", "BUF_PIPE", ["a"], "x1")
    netlist.add_gate("deep2", "BUF_PIPE", ["x1"], "x2")
    netlist.add_gate("shallow", "BUF_PIPE", ["b"], "y1")
    netlist.add_gate("join", "AND2_PIPE", ["x2", "y1"], "z")
    netlist.mark_output("z")
    return netlist


class TestNetStages:
    def test_stage_assignment(self):
        stages = net_stages(unbalanced())
        assert stages["a"] == 0
        assert stages["x2"] == 2
        assert stages["y1"] == 1
        assert stages["z"] == 3

    def test_combinational_gates_stay_in_stage(self):
        netlist = GateNetlist("mix")
        netlist.add_input("a")
        netlist.add_gate("r", "BUF_PIPE", ["a"], "q")
        netlist.add_gate("c", "BUF", ["q"], "y")
        stages = net_stages(netlist)
        assert stages["q"] == 1
        assert stages["y"] == 1


class TestBalancing:
    def test_inserts_alignment_register(self):
        balanced = balance_pipeline(unbalanced())
        assert balanced.tail_count() == unbalanced().tail_count() + 1
        histogram = balanced.cell_histogram()
        assert histogram["BUF_PIPE"] == 4  # 3 original + 1 alignment

    def test_balanced_stages_align(self):
        balanced = balance_pipeline(unbalanced())
        stages = net_stages(balanced)
        join = balanced.gate("join")
        input_stages = {stages[p.net] for p in join.inputs}
        assert len(input_stages) == 1

    def test_alignment_chains_are_shared(self):
        netlist = GateNetlist("shared")
        netlist.add_input("a")
        netlist.add_input("b")
        netlist.add_gate("d1", "BUF_PIPE", ["a"], "x1")
        netlist.add_gate("d2", "BUF_PIPE", ["x1"], "x2")
        # two consumers both need b delayed by two stages
        netlist.add_gate("j1", "AND2_PIPE", ["x2", "b"], "y1")
        netlist.add_gate("j2", "OR2_PIPE", ["x2", "b"], "y2")
        netlist.mark_output("y1")
        netlist.mark_output("y2")
        balanced = balance_pipeline(netlist)
        aligners = [g for g in balanced.gates
                    if g.name.startswith("align")]
        assert len(aligners) == 2  # one shared chain of length 2

    def test_functionality_preserved_with_latency(self):
        original = unbalanced()
        balanced = balance_pipeline(original)
        sim = CycleSimulator(balanced)
        latency = sim.latency()
        vector = {"a": True, "b": True}
        out = None
        for _ in range(latency + 1):
            out = sim.step(vector)
        out_net = balanced.primary_outputs[0]
        assert out[out_net] is True

    def test_output_alignment(self):
        netlist = GateNetlist("outs")
        netlist.add_input("a")
        netlist.add_gate("r1", "BUF_PIPE", ["a"], "q1")
        netlist.add_gate("r2", "BUF_PIPE", ["q1"], "q2")
        netlist.mark_output("q1")
        netlist.mark_output("q2")
        balanced = balance_pipeline(netlist)
        stages = net_stages(balanced)
        out_stages = {stages[n] for n in balanced.primary_outputs}
        assert len(out_stages) == 1

    def test_pin_inversion_preserved(self):
        netlist = GateNetlist("invpin")
        netlist.add_input("a")
        netlist.add_input("b")
        netlist.add_gate("d1", "BUF_PIPE", ["a"], "x1")
        netlist.add_gate("j", "AND2_PIPE", [("x1", False), ("b", True)],
                         "y")
        netlist.mark_output("y")
        balanced = balance_pipeline(netlist)
        join = balanced.gate("j")
        assert join.inputs[1].inverted

    def test_feedback_rejected(self):
        netlist = GateNetlist("fb")
        netlist.add_input("en")
        netlist.add_gate("g1", "XOR2", ["en", "q"], "d")
        netlist.add_gate("g2", "BUF_PIPE", ["d"], "q")
        with pytest.raises(NetlistError):
            balance_pipeline(netlist)
