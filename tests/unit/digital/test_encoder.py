"""Unit tests for the FAI encoder: golden model, batch model, helpers.

The gate-netlist equivalence proof lives in
tests/integration/test_encoder_netlist.py (it is slower).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.digital.encoder import (
    EncoderSpec,
    build_fai_encoder,
    coarse_thermometer,
    cyclic_fine_thermometer,
    encode_batch,
    gray_to_binary,
    majority_correct,
    reference_encode,
    thermometer_to_gray_taps,
)
from repro.errors import DesignError


class TestGrayTaps:
    def test_three_bit_flash_taps(self):
        taps = thermometer_to_gray_taps(3, 7)
        assert taps == [[0, 2, 4, 6], [1, 5], [3]]

    def test_five_bit_cyclic_taps(self):
        taps = thermometer_to_gray_taps(5, 32)
        assert taps[4] == [15]
        assert taps[3] == [7, 23]
        assert len(taps[0]) == 16

    def test_thermometer_decodes_to_gray(self):
        taps = thermometer_to_gray_taps(3, 7)
        for m in range(8):
            thermo = tuple(i < m for i in range(7))
            gray = []
            for positions in taps:
                parity = False
                for p in positions:
                    parity = parity != thermo[p]
                gray.append(parity)
            assert gray_to_binary(gray) == m


class TestGrayToBinary:
    @pytest.mark.parametrize("value", range(16))
    def test_roundtrip(self, value):
        gray_val = value ^ (value >> 1)
        gray_bits = [bool((gray_val >> k) & 1) for k in range(4)]
        assert gray_to_binary(gray_bits) == value


class TestMajorityCorrect:
    def test_identity_on_clean_thermometer(self):
        code = (True, True, True, False, False, False, False)
        assert majority_correct(code, cyclic=False) == code

    def test_removes_single_bubble(self):
        bubbled = (True, False, True, True, False, False, False)
        fixed = majority_correct(bubbled, cyclic=False)
        # The hole is filled; the result is a valid thermometer again
        # (its count may legitimately land on either side of the hole).
        assert fixed == (True, True, True, True, False, False, False)
        assert all(a or not b for a, b in zip(fixed, fixed[1:]))

    def test_cyclic_wraps(self):
        code = (True, False, False, False, False, False, False, True)
        fixed = majority_correct(code, cyclic=True)
        # bit 0's neighbours are 7 (1) and 1 (0): majority keeps 1
        assert fixed[0] is True


class TestGoldenModel:
    @pytest.mark.parametrize("spec", [
        EncoderSpec(),
        EncoderSpec(sync_correction=True),
        EncoderSpec(bubble_correction=False),
        EncoderSpec(input_capture=False),
    ], ids=["default", "sync", "nobubble", "nocapture"])
    def test_identity_over_all_codes(self, spec):
        for value in range(2 ** spec.total_bits):
            coarse = coarse_thermometer(value, spec)
            fine = cyclic_fine_thermometer(value, spec)
            assert reference_encode(coarse, fine, spec) == value

    def test_other_geometry(self):
        spec = EncoderSpec(coarse_bits=2, fine_bits=4)
        for value in range(64):
            assert reference_encode(
                coarse_thermometer(value, spec),
                cyclic_fine_thermometer(value, spec), spec) == value

    def test_coarse_bubble_is_corrected(self):
        spec = EncoderSpec()
        value = 5 * 32 + 12
        coarse = list(coarse_thermometer(value, spec))
        coarse[1] = False  # bubble deep inside the ones-run
        fixed = reference_encode(tuple(coarse),
                                 cyclic_fine_thermometer(value, spec),
                                 spec)
        assert fixed == value

    def test_wrong_length_rejected(self):
        spec = EncoderSpec()
        with pytest.raises(DesignError):
            reference_encode((True,) * 3,
                             cyclic_fine_thermometer(0, spec), spec)


class TestBoundaryRobustness:
    """The 'error correction' property: a late/early coarse decision
    near a segment boundary costs ~1 LSB, not a whole segment."""

    @pytest.mark.parametrize("sync", [False, True])
    def test_coarse_off_by_one_near_boundary(self, sync):
        spec = EncoderSpec(sync_correction=sync)
        for boundary in (32, 64, 96, 128, 160, 192, 224):
            value = boundary - 1  # top of a segment
            wrong_coarse = coarse_thermometer(boundary, spec)  # early flip
            code = reference_encode(
                wrong_coarse, cyclic_fine_thermometer(value, spec), spec)
            assert abs(code - value) <= 1, (boundary, sync)

    def test_sync_correction_tolerates_larger_errors(self):
        """With the ref-[14] snap, a coarse decision 8 LSB early still
        decodes within 1 LSB; without it the error is large."""
        plain = EncoderSpec(sync_correction=False)
        synced = EncoderSpec(sync_correction=True)
        value = 64 - 8  # 8 LSB below a boundary
        early_coarse = coarse_thermometer(64, plain)
        fine = cyclic_fine_thermometer(value, plain)
        assert abs(reference_encode(early_coarse, fine, synced)
                   - value) <= 1
        assert abs(reference_encode(early_coarse, fine, plain)
                   - value) > 8


class TestBatchEncoder:
    def test_matches_scalar_exhaustively(self):
        for sync in (False, True):
            spec = EncoderSpec(sync_correction=sync)
            values = np.arange(256)
            coarse = np.array([coarse_thermometer(v, spec)
                               for v in values])
            fine = np.array([cyclic_fine_thermometer(v, spec)
                             for v in values])
            batch = encode_batch(coarse, fine, spec)
            assert np.array_equal(batch, values)

    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=38))
    @settings(max_examples=60, deadline=None)
    def test_random_bit_flip_matches_scalar(self, value, flip):
        """Under arbitrary single-bit corruption the batch and scalar
        paths must still agree bit-exactly (they share no code)."""
        spec = EncoderSpec()
        coarse = list(coarse_thermometer(value, spec))
        fine = list(cyclic_fine_thermometer(value, spec))
        if flip < 7:
            coarse[flip] = not coarse[flip]
        else:
            fine[flip - 7] = not fine[flip - 7]
        scalar = reference_encode(tuple(coarse), tuple(fine), spec)
        batch = encode_batch(np.array([coarse]), np.array([fine]), spec)
        assert batch[0] == scalar

    def test_shape_validation(self):
        spec = EncoderSpec()
        with pytest.raises(DesignError):
            encode_batch(np.zeros((2, 5), dtype=bool),
                         np.zeros((2, 32), dtype=bool), spec)


class TestNetlistShape:
    def test_default_gate_budget(self):
        """The paper reports a 196-gate encoder; ours lands nearby."""
        netlist = build_fai_encoder(EncoderSpec())
        assert 120 <= netlist.tail_count() <= 220

    def test_fully_pipelined(self):
        netlist = build_fai_encoder(EncoderSpec())
        assert netlist.logic_depth() == 0

    def test_unpipelined_variant(self):
        netlist = build_fai_encoder(EncoderSpec(pipelined=False))
        assert netlist.logic_depth() == 0  # cells are latch-merged
        assert netlist.tail_count() < build_fai_encoder(
            EncoderSpec()).tail_count()

    def test_fine_bubble_correction_adds_majority_cells(self):
        base = build_fai_encoder(EncoderSpec())
        extra = build_fai_encoder(EncoderSpec(fine_bubble_correction=True))
        assert (extra.cell_histogram()["MAJ3_PIPE"]
                == base.cell_histogram()["MAJ3_PIPE"] + 32)
