"""Unit tests for the ref-[13] pipelined adder."""

import pytest

from repro.errors import DesignError
from repro.stscl import PipelinedAdder, StsclGateDesign, full_adder_cells


class TestConstruction:
    def test_rejects_bad_width(self):
        with pytest.raises(DesignError):
            PipelinedAdder(width=0)

    def test_rejects_bad_granularity(self):
        with pytest.raises(DesignError):
            PipelinedAdder(width=8, granularity=9)

    def test_full_adder_cells(self):
        sum_cell, carry_cell = full_adder_cells(pipelined=True)
        assert sum_cell.pipelined and carry_cell.pipelined
        sum_plain, carry_plain = full_adder_cells(pipelined=False)
        assert not sum_plain.pipelined


class TestFunction:
    @pytest.mark.parametrize("x,y,cin", [
        (0, 0, False), (1, 1, False), (255, 1, False),
        (170, 85, False), (255, 255, True), (37, 200, True)])
    def test_flat_adder_adds(self, x, y, cin):
        adder = PipelinedAdder(width=8, granularity=8)
        netlist = adder.build()
        total = adder.simulate_add(netlist, x, y, cin)
        assert total == x + y + int(cin)

    @pytest.mark.parametrize("x,y", [(0, 0), (15, 1), (255, 255),
                                     (100, 155)])
    def test_fully_pipelined_adder_adds(self, x, y):
        adder = PipelinedAdder(width=8, granularity=1)
        netlist = adder.build()
        assert adder.simulate_add(netlist, x, y) == x + y

    def test_granularity_4(self):
        adder = PipelinedAdder(width=8, granularity=4)
        netlist = adder.build()
        assert adder.simulate_add(netlist, 123, 45) == 168

    def test_out_of_range_rejected(self):
        adder = PipelinedAdder(width=8)
        netlist = adder.build()
        with pytest.raises(DesignError):
            adder.simulate_add(netlist, 256, 0)


class TestCosts:
    def test_flat_logic_cost_two_per_bit(self):
        adder = PipelinedAdder(width=32, granularity=32)
        netlist = adder.build()
        assert netlist.tail_count() == 64

    def test_pipelining_adds_alignment_registers(self):
        flat = PipelinedAdder(width=8, granularity=8).build()
        piped = PipelinedAdder(width=8, granularity=1).build()
        assert piped.tail_count() > flat.tail_count()

    def test_pipelined_depth_is_one_cell(self):
        netlist = PipelinedAdder(width=8, granularity=1).build()
        assert netlist.logic_depth() == 0  # every output registered

    def test_flat_depth_is_carry_chain(self):
        # granularity = width still registers the final bit, so the
        # combinational carry chain is width - 1 cells long.
        netlist = PipelinedAdder(width=8, granularity=8).build(
            balanced=False)
        assert netlist.logic_depth() == 7


class TestPdp:
    def test_five_femtojoule_anchor(self):
        """Ref [13]: ~5 fJ/stage at the repo design point."""
        adder = PipelinedAdder(width=32)
        design = StsclGateDesign.default(i_ss=1e-9)
        pdp = adder.pdp_per_stage(design, vdd=0.4)
        assert pdp == pytest.approx(5e-15, rel=0.5)

    def test_pdp_independent_of_current(self):
        """PDP = 2 V_DD ln2 V_SW C_L: the current cancels."""
        adder = PipelinedAdder(width=32)
        low = adder.pdp_per_stage(StsclGateDesign.default(1e-11), 0.4)
        high = adder.pdp_per_stage(StsclGateDesign.default(1e-7), 0.4)
        assert low == pytest.approx(high, rel=1e-9)
