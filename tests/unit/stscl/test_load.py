"""Unit tests for the bulk-drain-shorted PMOS load and replica bias."""

import numpy as np
import pytest

from repro.errors import DesignError
from repro.stscl.load import HighValueLoad, ReplicaBias


@pytest.fixture(scope="module")
def load():
    return HighValueLoad()


class TestLoadDevice:
    def test_bias_solve_delivers_current(self, load):
        v_bp = load.required_gate_bias(1e-9, 0.2, 1.0)
        assert load.current(v_bp, 1.0, 0.2) == pytest.approx(1e-9,
                                                             rel=1e-6)

    def test_bias_moves_down_for_more_current(self, load):
        # Lower gate -> larger V_SG -> more current.
        weak = load.required_gate_bias(10e-12, 0.2, 1.0)
        strong = load.required_gate_bias(10e-9, 0.2, 1.0)
        assert strong < weak

    def test_gigaohm_resistance_at_pa(self, load):
        v_bp = load.required_gate_bias(10e-12, 0.2, 1.0)
        # Nominal R = V_SW/I = 20 Gohm; small-signal value within 10x.
        r = load.small_signal_resistance(v_bp, 1.0, 0.1)
        assert r > 1e9

    def test_resistance_scales_inversely_with_current(self, load):
        r_values = []
        for i_ss in (1e-11, 1e-10, 1e-9):
            v_bp = load.required_gate_bias(i_ss, 0.2, 1.0)
            r_values.append(load.small_signal_resistance(v_bp, 1.0, 0.1))
        ratios = [a / b for a, b in zip(r_values, r_values[1:])]
        for ratio in ratios:
            assert ratio == pytest.approx(10.0, rel=0.3)

    def test_iv_profile_monotone(self, load):
        v_bp = load.required_gate_bias(1e-9, 0.2, 1.0)
        v_sd, currents = load.iv_profile(v_bp, 1.0, 0.2)
        assert np.all(np.diff(currents) > 0.0)
        assert currents[0] == pytest.approx(0.0, abs=1e-12)

    def test_linearity_error_moderate(self, load):
        """The bulk-drain short keeps the I-V usably linear over the
        swing (ref [9]'s point)."""
        v_bp = load.required_gate_bias(1e-9, 0.2, 1.0)
        assert load.linearity_error(v_bp, 1.0, 0.2) < 0.35

    def test_rejects_negative_drop(self, load):
        with pytest.raises(DesignError):
            load.current(0.5, 1.0, -0.1)

    def test_rejects_impossible_bias(self, load):
        with pytest.raises(DesignError):
            load.required_gate_bias(1e-3, 0.2, 1.0)  # mA through a load


class TestReplicaBias:
    def test_bias_voltage_matches_load_solve(self):
        replica = ReplicaBias()
        v_bp = replica.bias_voltage(1e-9, 0.2, 1.0)
        assert replica.load.current(v_bp, 1.0, 0.2) == pytest.approx(
            1e-9, rel=1e-6)

    def test_open_loop_swing_collapses_without_tracking(self):
        """With a stale V_BP, raising the supply strengthens the load
        exponentially (its V_SG rides on V_DD) and the swing collapses.
        This is the quantitative argument for the replica loop: the
        paper's supply insensitivity holds *because* V_BP tracks V_DD
        (verified closed-loop in test_netlist_gen.py)."""
        replica = ReplicaBias()
        swings = replica.swing_across_supply(1e-9, 0.2,
                                             [1.0, 1.1, 1.25])
        assert swings[0] == pytest.approx(0.2, rel=1e-3)
        assert np.all(np.isfinite(swings))
        assert np.all(np.diff(swings) < 0.0)
        assert swings[-1] < 0.05 * swings[0]
