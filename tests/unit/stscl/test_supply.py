"""Unit tests for the minimum-supply model (Fig. 9b) and supply
sensitivity (Fig. 3)."""

import numpy as np
import pytest

from repro.stscl import StsclGateDesign, minimum_supply, supply_sensitivity
from repro.stscl.supply import minimum_supply_sweep
from repro.errors import DesignError


class TestMinimumSupply:
    def test_monotone_in_current(self):
        design = StsclGateDesign.default(1e-9)
        currents = [1e-12, 1e-11, 1e-10, 1e-9, 1e-8, 1e-7]
        values = minimum_supply_sweep(design, currents)
        assert np.all(np.diff(values) >= -1e-9)

    def test_floor_is_swing_plus_tail(self):
        """At vanishing current the floor is V_SW + V_DS,sat(tail)."""
        design = StsclGateDesign.default(1e-13)
        vdd_min = minimum_supply(design)
        assert vdd_min == pytest.approx(
            design.v_sw + design.tail_saturation_voltage(), abs=0.02)

    def test_paper_anchor_1na(self):
        """Paper: below 1 nA the supply reaches ~0.35 V."""
        vdd_min = minimum_supply(StsclGateDesign.default(1e-9))
        assert vdd_min == pytest.approx(0.37, abs=0.05)

    def test_paper_anchor_10na(self):
        """Paper: below 10 nA the supply stays below ~0.5 V."""
        vdd_min = minimum_supply(StsclGateDesign.default(10e-9))
        assert 0.40 < vdd_min < 0.52

    def test_margin_added(self):
        design = StsclGateDesign.default(1e-9)
        assert minimum_supply(design, margin=0.1) == pytest.approx(
            minimum_supply(design) + 0.1)

    def test_more_stack_levels_need_more_supply(self):
        design = StsclGateDesign.default(1e-8)
        single = minimum_supply(
            StsclGateDesign(i_ss=1e-8, stack_levels=1))
        triple = minimum_supply(
            StsclGateDesign(i_ss=1e-8, stack_levels=3))
        assert triple > single
        del design


class TestSupplySensitivity:
    def test_stscl_is_zero(self):
        comparison = supply_sensitivity(vdd=0.5)
        assert comparison.stscl == 0.0

    def test_cmos_is_large_and_negative(self):
        """Subthreshold CMOS delay falls exponentially with V_DD: the
        normalised sensitivity 1 - V_DD/(n U_T) is around -14 at 0.5 V."""
        comparison = supply_sensitivity(vdd=0.5)
        assert comparison.cmos_subthreshold < -10.0

    def test_cmos_sensitivity_grows_with_vdd(self):
        low = supply_sensitivity(vdd=0.3)
        high = supply_sensitivity(vdd=0.6)
        assert abs(high.cmos_subthreshold) > abs(low.cmos_subthreshold)

    def test_rejects_bad_vdd(self):
        with pytest.raises(DesignError):
            supply_sensitivity(vdd=0.0)
