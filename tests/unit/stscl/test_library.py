"""Unit tests for the STSCL standard-cell library."""

import itertools

import pytest

from repro.errors import DesignError
from repro.stscl.library import (
    STACK_DELAY_PENALTY,
    STANDARD_CELLS,
    CellKind,
    StsclCell,
    cell,
)


class TestLookup:
    def test_known_cell(self):
        assert cell("MAJ3").n_inputs == 3

    def test_unknown_cell(self):
        with pytest.raises(DesignError):
            cell("NAND47")


class TestFunctions:
    @pytest.mark.parametrize("name,table", [
        ("AND2", {(0, 0): 0, (0, 1): 0, (1, 0): 0, (1, 1): 1}),
        ("NAND2", {(0, 0): 1, (0, 1): 1, (1, 0): 1, (1, 1): 0}),
        ("OR2", {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 1}),
        ("NOR2", {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 0}),
        ("XOR2", {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 0}),
        ("XNOR2", {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 1}),
    ])
    def test_two_input_truth_tables(self, name, table):
        gate = cell(name)
        for inputs, expected in table.items():
            assert gate.evaluate([bool(v) for v in inputs]) == bool(
                expected)

    def test_majority_truth_table(self):
        maj = cell("MAJ3")
        for bits in itertools.product((False, True), repeat=3):
            assert maj.evaluate(bits) == (sum(bits) >= 2)

    def test_xor3(self):
        gate = cell("XOR3")
        for bits in itertools.product((False, True), repeat=3):
            assert gate.evaluate(bits) == (sum(bits) % 2 == 1)

    def test_mux2_selects(self):
        mux = cell("MUX2")
        # inputs: (select, a, b) -> a if select else b
        assert mux.evaluate((True, True, False)) is True
        assert mux.evaluate((False, True, False)) is False

    def test_inverter_free(self):
        inv = cell("INV")
        assert inv.tails == 0
        assert inv.kind is CellKind.FREE
        assert inv.evaluate([True]) is False

    def test_wrong_arity_rejected(self):
        with pytest.raises(DesignError):
            cell("AND2").evaluate([True])


class TestCosts:
    def test_every_logic_cell_costs_one_tail(self):
        for gate in STANDARD_CELLS.values():
            if gate.kind in (CellKind.COMBINATIONAL, CellKind.LATCH):
                assert gate.tails == 1, gate.name

    def test_flipflop_costs_two(self):
        assert cell("DFF").tails == 2

    def test_pipelined_variants_same_cost(self):
        """The Fig. 8 merge: adding the latch costs no tail current."""
        assert cell("MAJ3_PIPE").tails == cell("MAJ3").tails
        assert cell("XOR2_PIPE").tails == cell("XOR2").tails

    def test_delay_factor_grows_with_stack(self):
        assert (cell("MAJ3").delay_factor()
                == pytest.approx(1.0 + 2 * STACK_DELAY_PENALTY))
        assert cell("BUF").delay_factor() == pytest.approx(1.0)
        assert cell("INV").delay_factor() == 0.0

    def test_pipelined_functions_match_plain(self):
        pairs = [("MAJ3_PIPE", "MAJ3"), ("XOR2_PIPE", "XOR2"),
                 ("AND2_PIPE", "AND2"), ("OR2_PIPE", "OR2"),
                 ("FASUM_PIPE", "XOR3")]
        for pipe_name, plain_name in pairs:
            pipe, plain = cell(pipe_name), cell(plain_name)
            for bits in itertools.product((False, True),
                                          repeat=plain.n_inputs):
                assert pipe.evaluate(bits) == plain.evaluate(bits)

    def test_stack_levels_bounded(self):
        for gate in STANDARD_CELLS.values():
            assert 0 <= gate.stack_levels <= 3


class TestValidation:
    def test_bad_stack_rejected(self):
        with pytest.raises(DesignError):
            StsclCell("BAD", 1, lambda v: v[0], stack_levels=9)

    def test_negative_tails_rejected(self):
        with pytest.raises(DesignError):
            StsclCell("BAD", 1, lambda v: v[0], stack_levels=1, tails=-1)
