"""Unit tests for the analytic STSCL gate model."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import LN2
from repro.errors import DesignError
from repro.stscl import StsclGateDesign


class TestConstruction:
    def test_rejects_nonpositive_current(self):
        with pytest.raises(DesignError):
            StsclGateDesign(i_ss=0.0)

    def test_rejects_sub_regeneration_swing(self):
        # 4 U_T ~ 104 mV at room temperature
        with pytest.raises(DesignError):
            StsclGateDesign(i_ss=1e-9, v_sw=0.05)

    def test_rejects_bad_stack(self):
        with pytest.raises(DesignError):
            StsclGateDesign(i_ss=1e-9, stack_levels=0)


class TestDelayPowerLaws:
    def test_load_resistance(self):
        gate = StsclGateDesign(i_ss=1e-9, v_sw=0.2)
        assert gate.load_resistance == pytest.approx(200e6)

    def test_delay_formula(self):
        gate = StsclGateDesign(i_ss=1e-9, v_sw=0.2, c_load=35e-15)
        expected = LN2 * 0.2 * 35e-15 / 1e-9
        assert gate.delay() == pytest.approx(expected)

    def test_power_is_iss_vdd(self):
        gate = StsclGateDesign(i_ss=2e-9)
        assert gate.power(1.0) == pytest.approx(2e-9)
        assert gate.power(0.5) == pytest.approx(1e-9)

    def test_max_frequency_inverse_of_eq1(self):
        gate = StsclGateDesign(i_ss=1e-9, v_sw=0.2, c_load=35e-15)
        f = gate.max_frequency(1)
        assert f == pytest.approx(1e-9 / (2 * LN2 * 0.2 * 35e-15))

    def test_depth_divides_frequency(self):
        gate = StsclGateDesign(i_ss=1e-9)
        assert gate.max_frequency(4) == pytest.approx(
            gate.max_frequency(1) / 4.0)

    @given(st.floats(min_value=1e-12, max_value=1e-6),
           st.floats(min_value=2.0, max_value=100.0))
    @settings(max_examples=30, deadline=None)
    def test_delay_current_product_invariant(self, i_ss, factor):
        """t_d * I_SS is a constant of the design -- the heart of the
        linear power-frequency scaling (Eq. 1)."""
        gate = StsclGateDesign(i_ss=i_ss)
        scaled = gate.with_current(i_ss * factor)
        assert (scaled.delay() * scaled.i_ss
                == pytest.approx(gate.delay() * gate.i_ss, rel=1e-9))

    @given(st.floats(min_value=0.3, max_value=1.8))
    @settings(max_examples=20, deadline=None)
    def test_delay_independent_of_vdd(self, vdd):
        """V_DD appears nowhere in the delay law (Fig. 3b)."""
        gate = StsclGateDesign(i_ss=1e-9)
        # delay() takes no vdd argument -- structural independence --
        # and power is exactly linear in vdd.
        assert gate.power(vdd) == pytest.approx(gate.i_ss * vdd)

    def test_energy_per_transition(self):
        gate = StsclGateDesign(i_ss=1e-9)
        assert gate.energy_per_transition(1.0) == pytest.approx(
            gate.delay() * 1e-9)


class TestGainAndMargins:
    def test_gain_around_three_at_200mv(self):
        gate = StsclGateDesign(i_ss=1e-9, v_sw=0.2)
        assert 2.5 < gate.small_signal_gain() < 3.5

    def test_gain_independent_of_current(self):
        low = StsclGateDesign(i_ss=1e-12)
        high = StsclGateDesign(i_ss=1e-7)
        assert low.small_signal_gain() == pytest.approx(
            high.small_signal_gain())

    def test_noise_margin_positive_at_default(self):
        gate = StsclGateDesign(i_ss=1e-9)
        assert gate.noise_margin() > 0.02

    def test_noise_margin_grows_with_swing(self):
        narrow = StsclGateDesign(i_ss=1e-9, v_sw=0.15)
        wide = StsclGateDesign(i_ss=1e-9, v_sw=0.3)
        assert wide.noise_margin() > narrow.noise_margin()


class TestDeviceViews:
    def test_subthreshold_at_na_levels(self):
        gate = StsclGateDesign(i_ss=1e-9)
        assert gate.is_subthreshold()
        assert gate.inversion_coefficient() < 0.01

    def test_leaves_subthreshold_at_ua_levels(self):
        gate = StsclGateDesign(i_ss=5e-6)
        assert not gate.is_subthreshold()

    def test_gate_overdrive_grows_with_current(self):
        gate = StsclGateDesign(i_ss=1e-9)
        assert (gate.with_current(1e-7).pair_gate_overdrive()
                > gate.pair_gate_overdrive())

    def test_summary_keys(self):
        summary = StsclGateDesign(i_ss=1e-9).summary()
        for key in ("delay", "gain", "noise_margin", "f_max_depth1"):
            assert key in summary


class TestCalibrationAnchors:
    """DESIGN.md section 5: the Fig. 9a anchors."""

    def test_800_hz_at_10pa(self):
        gate = StsclGateDesign(i_ss=10e-12)
        # depth-1.3 encoder: usable rate ~ f_max/1.3
        assert gate.max_frequency(1) / 1.3 == pytest.approx(800.0, rel=0.1)

    def test_80_khz_at_1na(self):
        gate = StsclGateDesign(i_ss=1e-9)
        assert gate.max_frequency(1) / 1.3 == pytest.approx(80e3, rel=0.1)
