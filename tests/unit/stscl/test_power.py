"""Unit tests for the Eq. (1) power model and pipelining analysis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import LN2
from repro.errors import DesignError
from repro.stscl.power import (
    eq1_cell_power,
    pipelining_gain,
    required_tail_current,
    system_power,
)


class TestEq1:
    def test_k_constant(self):
        # P = 2 ln2 VSW CL NL f VDD
        power = eq1_cell_power(0.2, 35e-15, 1, 80e3, 1.0)
        assert power == pytest.approx(
            2.0 * LN2 * 0.2 * 35e-15 * 80e3)

    def test_linear_in_frequency(self):
        p1 = eq1_cell_power(0.2, 35e-15, 1, 1e3, 1.0)
        p2 = eq1_cell_power(0.2, 35e-15, 1, 10e3, 1.0)
        assert p2 == pytest.approx(10.0 * p1)

    def test_linear_in_depth(self):
        p1 = eq1_cell_power(0.2, 35e-15, 1, 1e3, 1.0)
        p8 = eq1_cell_power(0.2, 35e-15, 8, 1e3, 1.0)
        assert p8 == pytest.approx(8.0 * p1)

    @given(st.floats(min_value=0.11, max_value=0.4),
           st.floats(min_value=1e-15, max_value=1e-12),
           st.integers(min_value=1, max_value=50),
           st.floats(min_value=1.0, max_value=1e7))
    @settings(max_examples=40, deadline=None)
    def test_current_times_vdd_equals_power(self, v_sw, c_load, depth, f):
        i_ss = required_tail_current(v_sw, c_load, depth, f)
        assert eq1_cell_power(v_sw, c_load, depth, f, 0.7) == \
            pytest.approx(i_ss * 0.7)

    def test_validation(self):
        with pytest.raises(DesignError):
            required_tail_current(0.0, 35e-15, 1, 1e3)
        with pytest.raises(DesignError):
            required_tail_current(0.2, 35e-15, 0, 1e3)
        with pytest.raises(DesignError):
            eq1_cell_power(0.2, 35e-15, 1, 1e3, 0.0)


class TestSystemPower:
    def test_counts_tails(self):
        assert system_power(196, 1e-9, 1.0) == pytest.approx(196e-9)

    def test_zero_gates(self):
        assert system_power(0, 1e-9, 1.0) == 0.0

    def test_validation(self):
        with pytest.raises(DesignError):
            system_power(-1, 1e-9, 1.0)
        with pytest.raises(DesignError):
            system_power(10, 0.0, 1.0)


class TestPipelining:
    def test_gain_equals_depth_with_free_latches(self):
        """Latch-merged cells (Fig. 8): pipelining a depth-N block wins
        exactly N."""
        result = pipelining_gain(n_gates=100, logic_depth=8, f_op=1e4,
                                 v_sw=0.2, c_load=35e-15, vdd=1.0,
                                 latch_overhead=0.0)
        assert result.gain == pytest.approx(8.0)

    def test_latch_overhead_reduces_gain(self):
        result = pipelining_gain(n_gates=100, logic_depth=8, f_op=1e4,
                                 v_sw=0.2, c_load=35e-15, vdd=1.0,
                                 latch_overhead=1.0)
        assert result.gain == pytest.approx(4.0)

    def test_depth_one_with_overhead_loses(self):
        result = pipelining_gain(n_gates=100, logic_depth=1, f_op=1e4,
                                 v_sw=0.2, c_load=35e-15, vdd=1.0,
                                 latch_overhead=0.5)
        assert result.gain < 1.0

    def test_currents_reported(self):
        result = pipelining_gain(n_gates=10, logic_depth=4, f_op=1e4,
                                 v_sw=0.2, c_load=35e-15, vdd=1.0)
        assert result.i_ss_flat == pytest.approx(
            4.0 * result.i_ss_pipelined)
