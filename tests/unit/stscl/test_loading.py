"""Unit tests for the gate-load estimator."""

import pytest

from repro.errors import DesignError
from repro.stscl import StsclGateDesign
from repro.stscl.loading import LoadBreakdown, estimate_load, \
    supported_fanout


@pytest.fixture(scope="module")
def design():
    return StsclGateDesign.default(1e-9)


class TestBreakdown:
    def test_total_is_sum(self, design):
        breakdown = estimate_load(design, fanout=2)
        assert breakdown.total == pytest.approx(
            breakdown.self_loading + breakdown.gate_loading
            + breakdown.wire_loading)

    def test_calibration_bracketed(self, design):
        """The repo constant C_L = 35 fF must sit between the fan-out-1
        and fan-out-2 physical estimates (encoder nets are FO 1-2)."""
        fo1 = estimate_load(design, fanout=1).total
        fo2 = estimate_load(design, fanout=2).total
        assert fo1 < design.c_load < fo2

    def test_gate_term_linear_in_fanout(self, design):
        one = estimate_load(design, fanout=1)
        three = estimate_load(design, fanout=3)
        assert three.gate_loading == pytest.approx(
            3.0 * one.gate_loading)
        assert three.self_loading == one.self_loading

    def test_wire_term_linear_in_length(self, design):
        short = estimate_load(design, wire_um=10.0)
        long = estimate_load(design, wire_um=1000.0)
        assert long.wire_loading == pytest.approx(
            100.0 * short.wire_loading)

    def test_zero_fanout_allowed(self, design):
        unloaded = estimate_load(design, fanout=0, wire_um=0.0)
        assert unloaded.gate_loading == 0.0
        assert unloaded.wire_loading == 0.0
        assert unloaded.self_loading > 0.0

    def test_validation(self, design):
        with pytest.raises(DesignError):
            estimate_load(design, fanout=-1)
        with pytest.raises(DesignError):
            estimate_load(design, wire_um=-1.0)


class TestFanoutBudget:
    def test_default_budget_supports_fo1(self, design):
        assert supported_fanout(design) >= 1

    def test_bigger_budget_supports_more(self, design):
        from dataclasses import replace
        roomy = replace(design, c_load=100e-15)
        assert supported_fanout(roomy) > supported_fanout(design)

    def test_short_wires_help(self, design):
        assert (supported_fanout(design, wire_um=0.0)
                >= supported_fanout(design, wire_um=300.0))
