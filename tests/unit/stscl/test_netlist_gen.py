"""Unit tests for the transistor-level STSCL netlist generators.

DC-only here (fast); the delay/transient cross-checks live in
tests/integration/test_spice_vs_analytic.py.
"""

import pytest

from repro.errors import DesignError
from repro.spice import operating_point
from repro.stscl import StsclGateDesign
from repro.stscl.netlist_gen import (
    replica_bias_circuit,
    stscl_inverter_circuit,
    stscl_latch_circuit,
    stscl_majority_circuit,
    stscl_tree_circuit,
)

VDD = 1.0


@pytest.fixture(scope="module")
def design():
    return StsclGateDesign.default(i_ss=1e-9)


class TestInverter:
    def test_full_swing_develops(self, design):
        circuit, ports = stscl_inverter_circuit(design, VDD)
        op = operating_point(circuit)
        out_p, out_n = ports.outputs["y"]
        assert op.voltage(out_p) == pytest.approx(VDD, abs=0.01)
        assert op.voltage(out_n) == pytest.approx(VDD - design.v_sw,
                                                  abs=0.02)

    def test_input_swap_flips_output(self, design):
        high, low = VDD, VDD - design.v_sw
        circuit, ports = stscl_inverter_circuit(design, VDD,
                                                in_p=low, in_n=high)
        op = operating_point(circuit)
        out_p, out_n = ports.outputs["y"]
        assert op.voltage(out_p) < op.voltage(out_n)

    def test_total_current_is_iss(self, design):
        """The headline claim: the gate's only supply current is the
        tail current (plus the negligible load leakage)."""
        circuit, _ports = stscl_inverter_circuit(design, VDD)
        op = operating_point(circuit)
        assert abs(op.current("vvdd")) == pytest.approx(design.i_ss,
                                                        rel=0.05)

    def test_dwell_diodes_optional(self, design):
        circuit, _ = stscl_inverter_circuit(design, VDD, with_dwell=True)
        names = [e.name for e in circuit.elements]
        assert "dwp" in names and "dwn" in names


class TestReplicaLoop:
    def test_loop_pins_swing(self, design):
        circuit, _ports = replica_bias_circuit(design, VDD)
        op = operating_point(circuit)
        assert op.voltage("vrep") == pytest.approx(VDD - design.v_sw,
                                                   abs=1e-3)

    def test_vbp_tracks_supply(self, design):
        """Re-solving at a different V_DD moves V_BP by about the same
        amount -- the loop holds the V_SG of the load."""
        v_bps = []
        for vdd in (1.0, 1.25):
            circuit, _ = replica_bias_circuit(design, vdd)
            v_bps.append(operating_point(circuit).voltage("vbp"))
        assert v_bps[1] - v_bps[0] == pytest.approx(0.25, abs=0.05)


class TestTreeSynthesis:
    def test_rejects_too_many_inputs(self, design):
        with pytest.raises(DesignError):
            stscl_tree_circuit(design, VDD, lambda v: v[0],
                               [(1.0, 0.8)] * 4)

    def test_and2_truth_table(self, design):
        high, low = VDD, VDD - design.v_sw
        for a in (False, True):
            for b in (False, True):
                drives = [(high, low) if x else (low, high)
                          for x in (a, b)]
                circuit, ports = stscl_tree_circuit(
                    design, VDD, lambda v: v[0] and v[1], drives)
                op = operating_point(circuit)
                yp, yn = ports.outputs["y"]
                assert (op.vdiff(yp, yn) > 0) == (a and b)

    @pytest.mark.parametrize("values", [
        (False, False, False), (True, False, False),
        (True, True, False), (True, True, True),
        (False, True, True), (False, False, True)])
    def test_majority_cases(self, design, values):
        circuit, ports = stscl_majority_circuit(design, VDD, values)
        op = operating_point(circuit)
        yp, yn = ports.outputs["y"]
        expected = sum(values) >= 2
        assert (op.vdiff(yp, yn) > 0) == expected

    def test_majority_output_swing_full(self, design):
        circuit, ports = stscl_majority_circuit(
            design, VDD, (True, True, False))
        op = operating_point(circuit)
        yp, yn = ports.outputs["y"]
        assert op.vdiff(yp, yn) == pytest.approx(design.v_sw, rel=0.15)


class TestLatchDc:
    def test_transparent_when_clock_high(self, design):
        high, low = VDD, VDD - design.v_sw
        circuit, ports = stscl_latch_circuit(
            design, VDD, d_p=high, d_n=low, clk_p=high, clk_n=low)
        op = operating_point(circuit)
        qp, qn = ports.outputs["q"]
        assert op.vdiff(qp, qn) > 0.5 * design.v_sw
