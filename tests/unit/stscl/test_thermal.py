"""Unit tests for the temperature-sensitivity comparison."""

import pytest

from repro.errors import ModelError
from repro.stscl import (
    StsclGateDesign,
    delay_spread,
    gain_over_temperature,
    noise_margin_slope,
    thermal_comparison,
)


@pytest.fixture(scope="module")
def rows():
    return thermal_comparison(StsclGateDesign.default(1e-9),
                              temps_c=(-20.0, 27.0, 85.0))


class TestStsclColumns:
    def test_delay_temperature_free(self, rows):
        """Nothing in t_d = ln2 V_SW C_L / I_SS moves with T."""
        assert delay_spread(rows, "stscl_delay") == pytest.approx(1.0)

    def test_noise_margin_degrades_gently(self, rows):
        slope = noise_margin_slope(rows)
        assert slope < 0.0                      # 1/U_T gain loss
        assert abs(slope) < 1e-3                # < 1 mV/K

    def test_margin_still_positive_at_85c(self, rows):
        hot = max(rows, key=lambda r: r.temp_c)
        assert hot.stscl_noise_margin > 0.01

    def test_gain_drops_as_one_over_t(self):
        gains = gain_over_temperature(StsclGateDesign.default(1e-9),
                                      temps_c=(27.0, 87.0))
        # 1/T: (273+87)/(273+27) = 1.2 ratio
        assert gains[0] / gains[1] == pytest.approx(1.2, abs=0.01)


class TestCmosColumn:
    def test_cmos_delay_collapses_with_heat(self, rows):
        """Subthreshold CMOS speeds up exponentially with temperature
        (VT drop + widening U_T): >20x over the industrial range at a
        deep-subthreshold 0.4 V supply."""
        assert delay_spread(rows, "cmos_delay") > 20.0

    def test_deeper_subthreshold_is_worse(self):
        shallow = thermal_comparison(StsclGateDesign.default(1e-9),
                                     cmos_vdd=0.5)
        deep = thermal_comparison(StsclGateDesign.default(1e-9),
                                  cmos_vdd=0.35)
        assert (delay_spread(deep, "cmos_delay")
                > delay_spread(shallow, "cmos_delay"))

    def test_cmos_monotone_with_temperature(self, rows):
        ordered = sorted(rows, key=lambda r: r.temp_c)
        delays = [r.cmos_delay for r in ordered]
        assert delays[0] > delays[1] > delays[2]


class TestValidation:
    def test_needs_two_points(self):
        with pytest.raises(ModelError):
            thermal_comparison(StsclGateDesign.default(1e-9),
                               temps_c=(27.0,))
