"""Unit tests for the fault-campaign runner."""

import pytest

from repro.errors import AnalysisError, ConvergenceError
from repro.faults import (BridgedNodes, FaultCampaign, FaultModel,
                         ResistorDrift, standard_adc_campaign,
                         standard_adc_faults)
from repro.spice import Circuit, operating_point


def divider() -> Circuit:
    circuit = Circuit("divider")
    circuit.add_vsource("V1", "in", "0", 1.0)
    circuit.add_resistor("R1", "in", "mid", 10e3)
    circuit.add_resistor("R2", "mid", "0", 10e3)
    return circuit


def mid_voltage(circuit: Circuit) -> dict[str, float]:
    return {"v_mid": operating_point(circuit).voltage("mid")}


class _Explosive(FaultModel):
    """A fault whose evaluation always blows up in the solver."""

    @property
    def name(self) -> str:
        return "explosive"

    def apply(self, target):
        raise ConvergenceError("simulated blow-up")


class TestFaultCampaign:
    def test_deltas_against_a_fresh_baseline(self):
        campaign = FaultCampaign(
            build=divider, metric_fn=mid_voltage,
            faults=[ResistorDrift("R2", 3.0),
                    BridgedNodes("mid", "0", resistance=1.0)])
        report = campaign.run()
        assert report.baseline["v_mid"] == pytest.approx(0.5)
        drift = report.outcome("r-drift-R2-x3")
        assert drift.evaluated
        assert drift.metrics["v_mid"] == pytest.approx(0.75)
        assert drift.deltas["v_mid"] == pytest.approx(0.25)
        bridge = report.outcome("bridge-mid-0")
        assert bridge.deltas["v_mid"] == pytest.approx(-0.5, abs=1e-3)

    def test_each_fault_gets_a_fresh_target(self):
        """Two drifts on the same resistor must not compound."""
        campaign = FaultCampaign(
            build=divider, metric_fn=mid_voltage,
            faults=[ResistorDrift("R2", 3.0), ResistorDrift("R2", 3.0)])
        report = campaign.run()
        first, second = report.outcomes
        assert first.metrics == second.metrics

    def test_failing_fault_is_recorded_not_fatal(self):
        campaign = FaultCampaign(
            build=divider, metric_fn=mid_voltage,
            faults=[_Explosive(), ResistorDrift("R2", 3.0)])
        report = campaign.run()
        assert [o.fault for o in report.failed] == ["explosive"]
        bad = report.outcome("explosive")
        assert not bad.evaluated
        assert "simulated blow-up" in bad.error
        assert bad.metrics is None and bad.deltas is None
        # The survivor was still evaluated.
        assert report.outcome("r-drift-R2-x3").evaluated

    def test_worst_ranks_by_absolute_delta(self):
        campaign = FaultCampaign(
            build=divider, metric_fn=mid_voltage,
            faults=[ResistorDrift("R2", 1.5),
                    BridgedNodes("mid", "0", resistance=1.0)])
        assert campaign.run().worst("v_mid").fault == "bridge-mid-0"

    def test_worst_requires_an_evaluated_fault(self):
        campaign = FaultCampaign(build=divider, metric_fn=mid_voltage,
                                 faults=[_Explosive()])
        with pytest.raises(AnalysisError):
            campaign.run().worst("v_mid")

    def test_describe_tables_every_fault(self):
        campaign = FaultCampaign(
            build=divider, metric_fn=mid_voltage,
            faults=[ResistorDrift("R2", 3.0), _Explosive()])
        text = campaign.run().describe()
        assert "baseline" in text
        assert "r-drift-R2-x3" in text
        assert "FAILED: simulated blow-up" in text
        assert "d(v_mid)" in text

    def test_empty_catalogue_rejected(self):
        with pytest.raises(AnalysisError):
            FaultCampaign(build=divider, metric_fn=mid_voltage, faults=[])

    def test_unknown_fault_lookup_rejected(self):
        campaign = FaultCampaign(build=divider, metric_fn=mid_voltage,
                                 faults=[ResistorDrift("R2", 2.0)])
        with pytest.raises(AnalysisError):
            campaign.run().outcome("no-such-fault")


class TestParallelCampaign:
    def test_parallel_report_matches_serial(self):
        faults = [ResistorDrift("R2", 3.0),
                  BridgedNodes("mid", "0", resistance=1.0),
                  _Explosive()]
        serial = FaultCampaign(build=divider, metric_fn=mid_voltage,
                               faults=faults).run()
        parallel = FaultCampaign(build=divider, metric_fn=mid_voltage,
                                 faults=faults, n_workers=2).run()
        assert parallel.baseline == serial.baseline
        assert [o.fault for o in parallel.outcomes] == [
            o.fault for o in serial.outcomes]
        for got, want in zip(parallel.outcomes, serial.outcomes):
            assert got.metrics == want.metrics
            assert got.deltas == want.deltas
            assert got.error == want.error

    def test_unpicklable_build_diagnosed_upfront(self):
        campaign = FaultCampaign(build=lambda: divider(),
                                 metric_fn=mid_voltage,
                                 faults=[ResistorDrift("R2", 2.0)],
                                 n_workers=2)
        with pytest.raises(AnalysisError, match="worker processes"):
            campaign.run()

    def test_workers_validated(self):
        with pytest.raises(AnalysisError):
            FaultCampaign(build=divider, metric_fn=mid_voltage,
                          faults=[ResistorDrift("R2", 2.0)],
                          n_workers=-1)


class TestStandardAdcCampaign:
    def test_blast_radius_is_physically_ordered(self):
        """A dead coarse bank must hurt far more than one stuck fine
        comparator -- the headline claim of the blast-radius report."""
        report = standard_adc_campaign(seed=1, samples_per_code=4).run()
        assert len(report.outcomes) == len(standard_adc_faults())
        assert not report.failed
        stuck_fine = report.outcome("stuck-fine[9]-high")
        dead_coarse = report.outcome("bias-open-coarse")
        assert abs(dead_coarse.deltas["enob"]) > 3.0
        assert abs(stuck_fine.deltas["enob"]) < abs(
            dead_coarse.deltas["enob"])
        assert report.worst("inl").fault in (
            "bias-open-coarse", "bias-open-fine",
            "stuck-coarse[3]-low", "stuck-coarse[5]-high")


def op_mid_voltage(result) -> dict[str, float]:
    """Batched-contract metric: reads a solved OpResult directly."""
    return {"v_mid": result.voltage("mid")}


class TestBatchedCampaign:
    FAULTS = [ResistorDrift("R2", 3.0),
              BridgedNodes("mid", "0", resistance=1.0),  # structural
              _Explosive()]

    def test_batched_report_matches_serial(self):
        """Lane-expressible faults solved stacked, structural faults
        through the rebuild path -- one report, same numbers as serial."""
        serial = FaultCampaign(build=divider, metric_fn=mid_voltage,
                               faults=self.FAULTS).run()
        batched = FaultCampaign(build=divider, metric_fn=op_mid_voltage,
                                faults=self.FAULTS,
                                backend="batched").run()
        assert batched.baseline["v_mid"] == pytest.approx(
            serial.baseline["v_mid"], rel=1e-9)
        assert [o.fault for o in batched.outcomes] == [
            o.fault for o in serial.outcomes]
        for got, want in zip(batched.outcomes, serial.outcomes):
            assert got.evaluated == want.evaluated
            if got.evaluated:
                assert got.deltas["v_mid"] == pytest.approx(
                    want.deltas["v_mid"], rel=1e-9, abs=1e-12)

    def test_backend_validated(self):
        with pytest.raises(AnalysisError):
            FaultCampaign(build=divider, metric_fn=op_mid_voltage,
                          faults=self.FAULTS, backend="gpu")

    def test_batched_excludes_process_pool(self):
        with pytest.raises(AnalysisError, match="n_workers"):
            FaultCampaign(build=divider, metric_fn=op_mid_voltage,
                          faults=self.FAULTS, backend="batched",
                          n_workers=2)

    def test_batched_requires_a_circuit_target(self):
        campaign = FaultCampaign(build=lambda: object(),
                                 metric_fn=op_mid_voltage,
                                 faults=self.FAULTS, backend="batched")
        with pytest.raises(AnalysisError, match="Circuit"):
            campaign.run()


class TestShmCampaign:
    """Parallel campaigns ship (build, metric_fn) once through the
    shared-memory plan cache; outcomes must not depend on the route."""

    FAULTS = [ResistorDrift("R2", 3.0),
              BridgedNodes("mid", "0", resistance=1.0),
              _Explosive()]

    def test_shm_modes_match_serial_exactly(self):
        from repro.analysis.parallel import shm_available

        serial = FaultCampaign(build=divider, metric_fn=mid_voltage,
                               faults=self.FAULTS).run()
        modes = ["off"] + (["on"] if shm_available() else [])
        for mode in modes:
            pooled = FaultCampaign(build=divider, metric_fn=mid_voltage,
                                   faults=self.FAULTS, n_workers=2,
                                   shm=mode).run()
            assert pooled.baseline == serial.baseline
            for got, want in zip(pooled.outcomes, serial.outcomes):
                assert got.fault == want.fault
                assert got.metrics == want.metrics
                assert got.error == want.error

    def test_shm_on_without_support_raises(self, monkeypatch):
        import repro.faults.campaign as campaign_mod

        monkeypatch.setattr(campaign_mod, "publish_plan",
                            lambda payload: None)
        campaign = FaultCampaign(build=divider, metric_fn=mid_voltage,
                                 faults=self.FAULTS, n_workers=2,
                                 shm="on")
        with pytest.raises(AnalysisError, match="shm"):
            campaign.run()

    def test_shm_mode_validated(self):
        with pytest.raises(AnalysisError, match="shm"):
            FaultCampaign(build=divider, metric_fn=mid_voltage,
                          faults=self.FAULTS, shm="sideways")


def pulse_divider() -> Circuit:
    """The DC divider with a pulse drive and a hold cap: dynamics."""
    from repro.spice import pulse_wave

    circuit = Circuit("pulse_divider")
    circuit.add_vsource("V1", "in", "0",
                        waveform=pulse_wave(0.0, 1.0, 1e-6, 1e-7, 1e-7,
                                            2e-6, 4e-6))
    circuit.add_resistor("R1", "in", "mid", 10e3)
    circuit.add_resistor("R2", "mid", "0", 10e3)
    circuit.add_capacitor("C1", "mid", "0", 1e-10)
    return circuit


def tran_mid_metrics(result) -> dict[str, float]:
    """Transient-contract metric: reads a solved TranResult."""
    wave = result.voltage("mid")
    return {"v_final": float(wave[-1]), "v_peak": float(wave.max())}


class TestTransientCampaign:
    """analysis="transient": lockstep waveform campaign over faults."""

    T_STOP = 8e-6
    FAULTS = [ResistorDrift("R2", 3.0),
              BridgedNodes("mid", "0", resistance=1e3)]  # structural

    @staticmethod
    def _grid():
        from repro.spice import TransientOptions

        dt = TestTransientCampaign.T_STOP / 200
        return TransientOptions(dt_initial=dt, dt_min=dt, dt_max=dt)

    def test_report_matches_serial_references(self):
        """On a fixed shared grid each fault's waveform metrics match a
        hand-applied serial transient to solver precision -- the lane
        fault through the lockstep path, the bridge through the
        structural rebuild path."""
        from repro.spice import apply_lane, transient

        report = FaultCampaign(
            build=pulse_divider, metric_fn=tran_mid_metrics,
            faults=self.FAULTS, backend="batched",
            analysis="transient", t_stop=self.T_STOP,
            tran_options=self._grid()).run()

        baseline_ref = tran_mid_metrics(
            transient(pulse_divider(), self.T_STOP, self._grid()))
        circuit = pulse_divider()
        undo = apply_lane(circuit, self.FAULTS[0].lane_spec(circuit))
        try:
            drift_ref = tran_mid_metrics(
                transient(circuit, self.T_STOP, self._grid()))
        finally:
            undo()
        bridged = self.FAULTS[1].apply(pulse_divider())
        bridge_ref = tran_mid_metrics(
            transient(bridged, self.T_STOP, self._grid()))

        for key in ("v_final", "v_peak"):
            assert report.baseline[key] == pytest.approx(
                baseline_ref[key], abs=1e-9)
            assert report.outcome("r-drift-R2-x3").metrics[key] == \
                pytest.approx(drift_ref[key], abs=1e-9)
            assert report.outcome("bridge-mid-0").metrics[key] == \
                pytest.approx(bridge_ref[key], abs=1e-9)
        assert all(o.evaluated for o in report.outcomes)

    def test_transient_requires_batched_backend(self):
        with pytest.raises(AnalysisError, match="batched"):
            FaultCampaign(build=pulse_divider, metric_fn=tran_mid_metrics,
                          faults=self.FAULTS, analysis="transient",
                          t_stop=self.T_STOP)

    def test_transient_requires_positive_t_stop(self):
        with pytest.raises(AnalysisError, match="t_stop"):
            FaultCampaign(build=pulse_divider, metric_fn=tran_mid_metrics,
                          faults=self.FAULTS, backend="batched",
                          analysis="transient")

    def test_analysis_validated(self):
        with pytest.raises(AnalysisError, match="analysis"):
            FaultCampaign(build=pulse_divider, metric_fn=tran_mid_metrics,
                          faults=self.FAULTS, analysis="ac")
