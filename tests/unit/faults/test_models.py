"""Unit tests for the declarative fault models."""

import numpy as np
import pytest

from repro.adc import FaiAdc
from repro.devices.mosfet import Mosfet
from repro.devices.parameters import nmos_180
from repro.errors import FaultInjectionError
from repro.faults import (BiasBranchOpen, BridgedNodes, FaultedAdc,
                          ResistorDrift, StuckComparator, VtOutlier)
from repro.spice import Circuit, operating_point


def divider() -> Circuit:
    circuit = Circuit("divider")
    circuit.add_vsource("V1", "in", "0", 1.0)
    circuit.add_resistor("R1", "in", "mid", 10e3)
    circuit.add_resistor("R2", "mid", "0", 10e3)
    return circuit


def mirror() -> Circuit:
    """A 1:1 NMOS current mirror fed 1 uA."""
    device = Mosfet(nmos_180(), w=10e-6, l=1e-6)
    circuit = Circuit("mirror")
    circuit.add_vsource("VDD", "vdd", "0", 1.8)
    circuit.add_isource("I1", "vdd", "g", 1e-6)
    circuit.add_mosfet("M1", "g", "g", "0", "0", device, with_caps=False)
    circuit.add_mosfet("M2", "out", "g", "0", "0", device, with_caps=False)
    circuit.add_resistor("RL", "vdd", "out", 100e3)
    return circuit


class TestCircuitFaults:
    def test_bridged_nodes_short_the_divider(self):
        healthy = operating_point(divider()).voltage("mid")
        faulted = BridgedNodes("mid", "0", resistance=1.0).apply(divider())
        bridged = operating_point(faulted).voltage("mid")
        assert healthy == pytest.approx(0.5)
        assert bridged < 0.001

    def test_bridge_rejects_unknown_nodes(self):
        with pytest.raises(FaultInjectionError):
            BridgedNodes("mid", "nonexistent").apply(divider())

    def test_resistor_drift_moves_the_divider(self):
        faulted = ResistorDrift("R2", 3.0).apply(divider())
        assert operating_point(faulted).voltage("mid") == pytest.approx(
            0.75)

    def test_resistor_drift_rejects_non_resistors(self):
        with pytest.raises(FaultInjectionError):
            ResistorDrift("V1", 2.0).apply(divider())

    def test_bias_branch_open_kills_the_mirror(self):
        healthy = operating_point(mirror())
        faulted = operating_point(BiasBranchOpen("I1").apply(mirror()))
        # With its reference branch open the mirror passes (almost) no
        # current: the load node floats up to the supply.
        assert healthy.voltage("out") < 1.75
        assert faulted.voltage("out") == pytest.approx(1.8, abs=1e-3)

    def test_bias_branch_open_requires_a_current_source(self):
        with pytest.raises(FaultInjectionError):
            BiasBranchOpen("V1").apply(divider())

    def test_vt_outlier_starves_the_mirror_output(self):
        healthy = operating_point(mirror())
        faulted_circuit = VtOutlier("M2", +0.3).apply(mirror())
        faulted = operating_point(faulted_circuit)
        # +300 mV on the output device cuts its current by decades in
        # weak inversion: the load drop collapses.
        healthy_drop = 1.8 - healthy.voltage("out")
        faulted_drop = 1.8 - faulted.voltage("out")
        assert faulted_drop < 0.1 * healthy_drop

    def test_vt_outlier_does_not_touch_the_shared_device(self):
        circuit = mirror()
        other_device = circuit.element("M1").device
        VtOutlier("M2", +0.3).apply(circuit)
        # M1 and M2 were built from the same Mosfet instance; only the
        # outlier may change.
        assert other_device.vt_shift == 0.0
        assert circuit.element("M2").device.vt_shift == pytest.approx(0.3)

    def test_vt_outlier_rejects_non_mos_elements(self):
        with pytest.raises(FaultInjectionError):
            VtOutlier("R1", 0.1).apply(divider())

    def test_circuit_faults_reject_converters(self):
        adc = FaiAdc(ideal=True, seed=0)
        with pytest.raises(FaultInjectionError):
            BridgedNodes("a", "b").apply(adc)
        with pytest.raises(FaultInjectionError):
            ResistorDrift("R1", 2.0).apply(adc)


class TestStuckComparator:
    @pytest.fixture(scope="class")
    def ideal(self):
        return FaiAdc(ideal=True, seed=0)

    def test_matches_manual_forcing(self, ideal):
        """The wrapper must reproduce exactly the forced-word encoding
        the old ad-hoc test harness computed by hand."""
        from repro.digital.encoder import encode_batch

        cfg = ideal.config
        ramp = np.linspace(cfg.v_low + cfg.lsb, cfg.v_high - cfg.lsb, 512)
        faulted = StuckComparator("fine", 5, True).apply(ideal)
        coarse = ideal.coarse.thermometer_batch(ramp).copy()
        fine = ideal.fine.fine_code(ramp).copy()
        fine[:, 5] = True
        expected = encode_batch(coarse, fine, ideal.spec)
        np.testing.assert_array_equal(faulted.convert_batch(ramp),
                                      expected)

    def test_wrapper_delegates_chip_attributes(self, ideal):
        faulted = StuckComparator("coarse", 3, False).apply(ideal)
        assert faulted.config is ideal.config
        assert faulted.spec is ideal.spec
        assert faulted.seed == ideal.seed

    def test_faults_compose_onto_one_wrapper(self, ideal):
        once = StuckComparator("fine", 5, True).apply(ideal)
        twice = StuckComparator("coarse", 3, False).apply(once)
        assert isinstance(twice, FaultedAdc)
        assert twice.adc is ideal          # not nested wrappers
        assert twice.stuck_fine == {5: True}
        assert twice.stuck_coarse == {3: False}

    def test_out_of_range_index_rejected(self, ideal):
        with pytest.raises(FaultInjectionError):
            StuckComparator("fine", 999, True).apply(ideal)
        with pytest.raises(FaultInjectionError):
            StuckComparator("coarse", 99, True).apply(ideal)

    def test_bad_path_rejected(self):
        with pytest.raises(FaultInjectionError):
            StuckComparator("medium", 0, True)

    def test_rejects_circuits(self):
        with pytest.raises(FaultInjectionError):
            StuckComparator("fine", 1, True).apply(divider())


class TestBiasBranchOpenOnConverter:
    def test_dead_coarse_bank_freezes_the_msbs(self):
        ideal = FaiAdc(ideal=True, seed=0)
        cfg = ideal.config
        faulted = BiasBranchOpen("coarse").apply(ideal)
        ramp = np.linspace(cfg.v_low + cfg.lsb, cfg.v_high - cfg.lsb, 512)
        codes = faulted.convert_batch(ramp)
        healthy = ideal.convert_batch(ramp)
        # Dead coarse flash: the converter can no longer leave the
        # bottom segments; the top of the range collapses.
        assert codes.max() < healthy.max() / 2
