"""Unit tests for process corners and PVT points."""

import pytest

from repro.devices.parameters import GENERIC_180NM
from repro.devices.process import (
    CORNERS,
    CornerSpec,
    ProcessCorner,
    PvtPoint,
    apply_corner,
    apply_pvt,
    corner_technology,
)
from repro.errors import ModelError


class TestCorners:
    def test_tt_is_identity(self):
        nmos = GENERIC_180NM.nmos
        shifted = apply_corner(nmos, ProcessCorner.TT)
        assert shifted.vt0 == nmos.vt0
        assert shifted.kp == nmos.kp

    def test_ff_lowers_vt_raises_kp(self):
        nmos = GENERIC_180NM.nmos
        fast = apply_corner(nmos, ProcessCorner.FF)
        assert fast.vt0 < nmos.vt0
        assert fast.kp > nmos.kp

    def test_ss_opposite_of_ff(self):
        nmos = GENERIC_180NM.nmos
        slow = apply_corner(nmos, ProcessCorner.SS)
        assert slow.vt0 > nmos.vt0
        assert slow.kp < nmos.kp

    def test_skew_corner_splits_polarities(self):
        fs_n = apply_corner(GENERIC_180NM.nmos, ProcessCorner.FS)
        fs_p = apply_corner(GENERIC_180NM.pmos, ProcessCorner.FS)
        assert fs_n.vt0 < GENERIC_180NM.nmos.vt0   # fast NMOS
        assert fs_p.vt0 > GENERIC_180NM.pmos.vt0   # slow PMOS

    def test_all_five_corners_defined(self):
        assert set(CORNERS) == set(ProcessCorner)

    def test_corner_technology_shifts_all_flavours(self):
        slow = corner_technology(GENERIC_180NM, ProcessCorner.SS)
        assert slow.nmos.vt0 > GENERIC_180NM.nmos.vt0
        assert slow.nmos_hvt.vt0 > GENERIC_180NM.nmos_hvt.vt0
        assert slow.name.endswith("ss")


class TestPvtPoint:
    def test_defaults(self):
        point = PvtPoint()
        assert point.corner is ProcessCorner.TT

    def test_celsius_constructor(self):
        point = PvtPoint.at_celsius(temp_c=85.0)
        assert point.temperature == pytest.approx(358.15)

    def test_rejects_bad_vdd(self):
        with pytest.raises(ModelError):
            PvtPoint(vdd=0.0)

    def test_apply_pvt_uses_corner(self):
        point = PvtPoint(corner=ProcessCorner.FF)
        shifted = apply_pvt(GENERIC_180NM.nmos, point)
        assert shifted.vt0 < GENERIC_180NM.nmos.vt0
