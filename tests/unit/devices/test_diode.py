"""Unit tests for the junction diode model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.devices.diode import Diode, DiodeParameters, NWELL_DIODE_180
from repro.errors import ModelError


@pytest.fixture
def diode():
    return Diode(NWELL_DIODE_180)


class TestParameters:
    def test_rejects_bad_saturation_current(self):
        with pytest.raises(ModelError):
            DiodeParameters(name="bad", i_s=0.0)

    def test_rejects_bad_ideality(self):
        with pytest.raises(ModelError):
            DiodeParameters(name="bad", n=0.5)


class TestCurrent:
    def test_forward_exponential(self, diode):
        i1, _ = diode.current(0.5)
        i2, _ = diode.current(0.56)  # ~ one decade at n~1.0
        assert i2 / i1 > 5.0

    def test_reverse_saturates(self, diode):
        i_rev, _ = diode.current(-0.5)
        assert -1e-12 < i_rev < 0.0

    def test_conductance_matches_numeric(self, diode):
        h = 1e-7
        for v in (-0.3, 0.0, 0.3, 0.55):
            i_up, _ = diode.current(v + h)
            i_dn, _ = diode.current(v - h)
            numeric = (i_up - i_dn) / (2.0 * h)
            _, g = diode.current(v)
            assert g == pytest.approx(numeric, rel=1e-3, abs=1e-18)

    def test_area_scales_current(self):
        small = Diode(NWELL_DIODE_180, area=1.0)
        big = Diode(NWELL_DIODE_180, area=3.0)
        i_small, _ = small.current(0.5)
        i_big, _ = big.current(0.5)
        assert i_big == pytest.approx(3.0 * i_small, rel=1e-6)


class TestChargeAndCapacitance:
    def test_capacitance_positive_reverse_bias(self, diode):
        assert diode.capacitance(-1.0) > 0.0

    def test_capacitance_grows_toward_forward(self, diode):
        assert diode.capacitance(0.2) > diode.capacitance(-0.5)

    def test_zero_bias_equals_cj0(self, diode):
        assert diode.capacitance(0.0) == pytest.approx(
            NWELL_DIODE_180.cj0)

    @given(st.floats(min_value=-2.0, max_value=0.6))
    @settings(max_examples=40, deadline=None)
    def test_charge_derivative_is_capacitance(self, v):
        """q(v) and C(v) must be analytically consistent, or transient
        charge conservation breaks."""
        diode = Diode(NWELL_DIODE_180)
        h = 1e-6
        numeric = (diode.charge(v + h) - diode.charge(v - h)) / (2.0 * h)
        assert diode.capacitance(v) == pytest.approx(
            numeric, rel=1e-3, abs=1e-20)

    def test_charge_continuous_at_knee(self, diode):
        knee = 0.5 * NWELL_DIODE_180.vj
        below = diode.charge(knee - 1e-9)
        above = diode.charge(knee + 1e-9)
        assert above == pytest.approx(below, rel=1e-6)
