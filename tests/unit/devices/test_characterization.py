"""Unit tests pinning the device calibration via the QA extraction."""

import numpy as np
import pytest

from repro.constants import T_NOMINAL, thermal_voltage
from repro.devices import Mosfet, nmos_180, nmos_180_hvt, pmos_180
from repro.devices.characterization import (
    DeviceReport,
    characterize,
    extract_subthreshold_swing,
    extract_vt_constant_current,
    id_vd_curve,
    id_vg_curve,
    on_off_ratio,
)
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def nmos():
    return Mosfet(nmos_180(), w=1e-6, l=1e-6)


class TestCurves:
    def test_transfer_monotone(self, nmos):
        _vg, currents = id_vg_curve(nmos)
        assert np.all(np.diff(currents) > 0.0)

    def test_output_curve_saturates(self, nmos):
        v_drain, currents = id_vd_curve(nmos, vg=0.4)
        # Past ~5 U_T the current flattens: the last 20 % of the sweep
        # changes by only the CLM slope.
        tail = currents[v_drain > 0.9]
        assert np.ptp(tail) < 0.05 * tail.mean()

    def test_point_validation(self, nmos):
        with pytest.raises(AnalysisError):
            id_vg_curve(nmos, points=2)


class TestExtraction:
    def test_vt_matches_model_parameter(self, nmos):
        """Constant-current VT lands near the model's VT0 (the methods
        differ by a few tens of mV by construction)."""
        vt = extract_vt_constant_current(nmos)
        assert vt == pytest.approx(nmos.params.vt0, abs=0.08)

    def test_hvt_flavour_extracts_higher(self):
        standard = Mosfet(nmos_180(), w=1e-6, l=1e-6)
        hvt = Mosfet(nmos_180_hvt(), w=1e-6, l=1e-6)
        assert (extract_vt_constant_current(hvt)
                > extract_vt_constant_current(standard) + 0.1)

    def test_swing_near_ideal(self, nmos):
        """S = n U_T ln10 ~ 78 mV/dec for n = 1.3 at 300 K."""
        swing = extract_subthreshold_swing(nmos)
        ut = thermal_voltage(T_NOMINAL)
        ideal = 1e3 * nmos.params.n * ut * np.log(10.0)
        assert swing == pytest.approx(ideal, rel=0.05)

    def test_swing_degrades_with_temperature(self, nmos):
        cold = extract_subthreshold_swing(nmos, temperature=250.0)
        hot = extract_subthreshold_swing(nmos, temperature=400.0)
        assert hot > 1.3 * cold

    def test_on_off_ratio_large(self, nmos):
        """A low-leakage 0.18 um device: > 10^6 at 1 V."""
        assert on_off_ratio(nmos) > 1e6

    def test_pmos_also_characterizes(self):
        pmos = Mosfet(pmos_180(), w=2e-6, l=1e-6)
        # PMOS curves need flipped terminals; the QA sweep is defined
        # for the normalised frame, so check via the NMOS-like ratio.
        on = abs(pmos.evaluate(0.0, 0.0, 1.0, 1.0).ids)
        off = abs(pmos.evaluate(0.0, 1.0, 1.0, 1.0).ids)
        assert on / off > 1e6


class TestFullReport:
    def test_report_fields_consistent(self, nmos):
        report = characterize(nmos)
        assert isinstance(report, DeviceReport)
        assert 0.3 < report.vt < 0.6
        assert 70.0 < report.swing_mv_dec < 95.0
        assert report.on_off > 1e6
        # gm/ID peak at the weak-inversion ideal 1/(n UT) ~ 29.7 /V.
        assert report.gm_id_peak == pytest.approx(29.7, rel=0.1)
