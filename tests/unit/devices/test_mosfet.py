"""Unit tests for the four-terminal MOS element."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import thermal_voltage
from repro.devices import Mosfet, nmos_180, pmos_180, nmos_180_hvt
from repro.errors import ModelError


@pytest.fixture
def nmos():
    return Mosfet(nmos_180(), w=1e-6, l=0.5e-6)


@pytest.fixture
def pmos():
    return Mosfet(pmos_180(), w=1e-6, l=0.5e-6)


class TestConstruction:
    def test_rejects_undersized(self):
        with pytest.raises(ModelError):
            Mosfet(nmos_180(), w=0.1e-6, l=0.5e-6)
        with pytest.raises(ModelError):
            Mosfet(nmos_180(), w=1e-6, l=0.05e-6)

    def test_rejects_bad_multiplicity(self):
        with pytest.raises(ModelError):
            Mosfet(nmos_180(), w=1e-6, l=1e-6, m=0)

    def test_multiplicity_scales_current(self, nmos):
        double = Mosfet(nmos_180(), w=1e-6, l=0.5e-6, m=2)
        op1 = nmos.evaluate(0.5, 0.4, 0.0, 0.0)
        op2 = double.evaluate(0.5, 0.4, 0.0, 0.0)
        assert op2.ids == pytest.approx(2.0 * op1.ids, rel=1e-9)


class TestNmosStatic:
    def test_off_at_zero_vgs(self, nmos):
        op = nmos.evaluate(vd=1.0, vg=0.0, vs=0.0, vb=0.0)
        assert 0.0 < op.ids < 1e-11  # sub-threshold leakage only

    def test_subthreshold_slope(self, nmos):
        ut = thermal_voltage()
        n = nmos.params.n
        # Deep weak inversion; EKV's smooth moderate-inversion
        # transition costs a couple of percent even here (physical).
        op1 = nmos.evaluate(1.0, 0.10, 0.0, 0.0)
        op2 = nmos.evaluate(1.0, 0.10 + n * ut * np.log(10.0), 0.0, 0.0)
        assert op2.ids / op1.ids == pytest.approx(10.0, rel=0.03)

    def test_region_classification(self, nmos):
        weak = nmos.evaluate(1.0, 0.25, 0.0, 0.0)
        strong = nmos.evaluate(1.5, 1.5, 0.0, 0.0)
        assert weak.region == "weak"
        assert strong.region == "strong"

    def test_saturation_flag(self, nmos):
        sat = nmos.evaluate(0.5, 0.4, 0.0, 0.0)
        triode = nmos.evaluate(0.01, 0.8, 0.0, 0.0)
        assert sat.saturated
        assert not triode.saturated

    def test_gm_positive_gds_small_in_saturation(self, nmos):
        op = nmos.evaluate(0.6, 0.4, 0.0, 0.0)
        assert op.gm > 0.0
        assert op.gds < 0.05 * op.gm

    def test_body_effect_reduces_current(self, nmos):
        # Raising the source above the bulk raises the effective VT.
        op_ref = nmos.evaluate(1.0, 0.6, 0.2, 0.2)   # VB = VS
        op_body = nmos.evaluate(1.0, 0.6, 0.2, 0.0)  # VB below VS
        assert op_body.ids < op_ref.ids

    def test_vt_shift_moves_current(self, nmos):
        shifted = Mosfet(nmos_180(), w=1e-6, l=0.5e-6, vt_shift=0.05)
        assert (shifted.evaluate(1.0, 0.4, 0.0, 0.0).ids
                < nmos.evaluate(1.0, 0.4, 0.0, 0.0).ids)


class TestPmosSymmetry:
    def test_conducting_pmos_negative_ids(self, pmos):
        # Source at 1 V, gate low: channel current flows source->drain,
        # so drain->source current is negative.
        op = pmos.evaluate(vd=0.0, vg=0.2, vs=1.0, vb=1.0)
        assert op.ids < 0.0

    def test_mirror_of_nmos(self, nmos):
        # A PMOS with NMOS parameters (polarity flipped) must mirror.
        from repro.devices.parameters import MosParameters, MosPolarity
        params = nmos.params
        flipped = MosParameters(
            name="test_p", polarity=MosPolarity.PMOS, vt0=params.vt0,
            n=params.n, kp=params.kp, tox=params.tox,
            lambda_=params.lambda_)
        mirror = Mosfet(flipped, w=1e-6, l=0.5e-6)
        op_n = nmos.evaluate(0.5, 0.4, 0.0, 0.0)
        op_p = mirror.evaluate(-0.5, -0.4, 0.0, 0.0)
        assert op_p.ids == pytest.approx(-op_n.ids, rel=1e-9)


class TestPartials:
    @given(st.floats(min_value=0.0, max_value=1.2),
           st.floats(min_value=0.0, max_value=1.2),
           st.floats(min_value=0.0, max_value=1.2))
    @settings(max_examples=30, deadline=None)
    def test_translation_invariance(self, vd, vg, vs):
        """Summing dI/dV over all four terminals must be zero: shifting
        every node voltage equally cannot change the current."""
        device = Mosfet(nmos_180(), w=1e-6, l=0.5e-6)
        op = device.evaluate(vd, vg, vs, 0.0)
        total = sum(op.partials.values())
        scale = max(abs(p) for p in op.partials.values()) or 1.0
        assert abs(total) < 1e-9 * scale + 1e-30

    @pytest.mark.parametrize("terminal", ["d", "g", "s", "b"])
    def test_partials_match_numeric(self, nmos, terminal):
        base = dict(vd=0.45, vg=0.42, vs=0.05, vb=0.0)
        op = nmos.evaluate(**base)
        h = 1e-6
        up = dict(base)
        up["v" + terminal] += h
        down = dict(base)
        down["v" + terminal] -= h
        numeric = (nmos.evaluate(**up).ids
                   - nmos.evaluate(**down).ids) / (2.0 * h)
        assert op.partials[terminal] == pytest.approx(
            numeric, rel=1e-3, abs=1e-18)


class TestCapacitances:
    def test_all_positive(self, nmos):
        for cap in nmos.capacitances().values():
            assert cap > 0.0

    def test_scale_with_width(self):
        narrow = Mosfet(nmos_180(), w=1e-6, l=0.5e-6)
        wide = Mosfet(nmos_180(), w=2e-6, l=0.5e-6)
        assert (wide.gate_capacitance()
                == pytest.approx(2.0 * narrow.gate_capacitance(), rel=1e-9))

    def test_gate_capacitance_is_sum(self, nmos):
        caps = nmos.capacitances()
        expected = (caps[("g", "s")] + caps[("g", "d")]
                    + caps[("g", "b")])
        assert nmos.gate_capacitance() == pytest.approx(expected)


class TestHighVtFlavour:
    def test_lower_leakage_than_standard(self):
        standard = Mosfet(nmos_180(), w=1e-6, l=1e-6)
        hvt = Mosfet(nmos_180_hvt(), w=1e-6, l=1e-6)
        leak_std = standard.evaluate(1.0, 0.0, 0.0, 0.0).ids
        leak_hvt = hvt.evaluate(1.0, 0.0, 0.0, 0.0).ids
        assert leak_hvt < 0.1 * leak_std
