"""Unit tests for the EKV core equations."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.devices.ekv import (
    gate_voltage_for_current,
    interp_f,
    interp_f_derivative,
    inversion_coefficient,
    normalized_currents,
    saturation_voltage,
    transconductance_efficiency,
    weak_inversion_current,
)


class TestInterpolationFunction:
    def test_weak_inversion_asymptote(self):
        # F(v) -> exp(v) for v << 0; the next-order term is exp(3v/2),
        # so the relative error is ~exp(v/2).
        for v in (-18.0, -25.0, -35.0):
            assert interp_f(v) == pytest.approx(math.exp(v), rel=1e-3)

    def test_strong_inversion_asymptote(self):
        # F(v) -> (v/2)^2 for v >> 0
        for v in (40.0, 100.0):
            assert interp_f(v) == pytest.approx((v / 2.0) ** 2, rel=0.1)

    def test_accepts_arrays(self):
        v = np.array([-5.0, 0.0, 5.0])
        out = interp_f(v)
        assert out.shape == (3,)
        assert np.all(np.diff(out) > 0.0)

    @given(st.floats(min_value=-200.0, max_value=200.0))
    def test_positive_everywhere(self, v):
        assert interp_f(v) > 0.0

    @given(st.floats(min_value=-100.0, max_value=100.0),
           st.floats(min_value=1e-3, max_value=5.0))
    def test_strictly_monotonic(self, v, dv):
        assert interp_f(v + dv) > interp_f(v)

    @given(st.floats(min_value=-80.0, max_value=80.0))
    def test_derivative_matches_numeric(self, v):
        h = 1e-5
        numeric = (interp_f(v + h) - interp_f(v - h)) / (2.0 * h)
        assert interp_f_derivative(v) == pytest.approx(
            numeric, rel=1e-4, abs=1e-30)

    def test_no_overflow_at_extremes(self):
        assert np.isfinite(interp_f(1000.0))
        assert interp_f(-1000.0) >= 0.0


class TestNormalizedCurrents:
    def test_saturation_forward_dominates(self):
        i_f, i_r = normalized_currents(vp=0.3, vs=0.0, vd=0.5, ut=0.026)
        assert i_f > 100.0 * i_r

    def test_symmetric_at_equal_terminals(self):
        i_f, i_r = normalized_currents(vp=0.2, vs=0.1, vd=0.1, ut=0.026)
        assert i_f == pytest.approx(i_r)


class TestWeakInversionCurrent:
    def test_exponential_slope(self):
        ut, n = 0.026, 1.3
        i1 = weak_inversion_current(1e-6, 0.2, 0.0, 0.5, 0.45, n, ut)
        i2 = weak_inversion_current(1e-6, 0.2 + n * ut * math.log(10.0),
                                    0.0, 0.5, 0.45, n, ut)
        assert i2 / i1 == pytest.approx(10.0, rel=1e-6)

    def test_zero_at_vds_zero(self):
        i = weak_inversion_current(1e-6, 0.3, 0.1, 0.1, 0.45, 1.3, 0.026)
        assert i == pytest.approx(0.0, abs=1e-30)

    def test_gate_voltage_inversion_roundtrip(self):
        ut, n, vt0, i_spec = 0.026, 1.3, 0.45, 1e-6
        vg = gate_voltage_for_current(1e-9, i_spec, vt0, n, ut)
        i_back = weak_inversion_current(i_spec, vg, 0.0, 10 * ut * 40,
                                        vt0, n, ut)
        assert i_back == pytest.approx(1e-9, rel=1e-3)

    def test_gate_voltage_rejects_bad_input(self):
        with pytest.raises(ValueError):
            gate_voltage_for_current(-1e-9, 1e-6, 0.45, 1.3, 0.026)
        with pytest.raises(ValueError):
            gate_voltage_for_current(1e-9, 0.0, 0.45, 1.3, 0.026)


class TestSaturationVoltage:
    def test_weak_inversion_floor(self):
        # ~4 U_T independent of current in deep weak inversion
        ut = 0.026
        assert saturation_voltage(1e-4, ut) == pytest.approx(4.0 * ut,
                                                             rel=0.01)

    def test_increases_with_ic(self):
        ut = 0.026
        assert saturation_voltage(100.0, ut) > saturation_voltage(1.0, ut)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            saturation_voltage(-1.0, 0.026)


class TestGmOverId:
    def test_weak_inversion_peak(self):
        n, ut = 1.3, 0.026
        assert transconductance_efficiency(1e-6, n, ut) == pytest.approx(
            1.0 / (n * ut), rel=0.01)

    def test_monotone_decreasing_in_ic(self):
        n, ut = 1.3, 0.026
        values = transconductance_efficiency(
            np.array([0.01, 0.1, 1.0, 10.0, 100.0]), n, ut)
        assert np.all(np.diff(values) < 0.0)


def test_inversion_coefficient():
    assert inversion_coefficient(1e-9, 1e-6) == pytest.approx(1e-3)
    with pytest.raises(ValueError):
        inversion_coefficient(1e-9, 0.0)
