"""Unit tests for the Pelgrom mismatch model."""

import numpy as np
import pytest

from repro.constants import thermal_voltage
from repro.devices import Mosfet, nmos_180
from repro.devices.mismatch import (
    PELGROM_180NM,
    MismatchModel,
    MismatchSampler,
)
from repro.errors import ModelError


class TestSigmaLaws:
    def test_pelgrom_area_scaling(self):
        model = PELGROM_180NM
        small = model.sigma_vt(1e-6, 1e-6)
        big = model.sigma_vt(2e-6, 2e-6)
        assert big == pytest.approx(small / 2.0)

    def test_known_value(self):
        # A_VT = 4 mV*um over a 1 um^2 device -> 4 mV.
        assert PELGROM_180NM.sigma_vt(1e-6, 1e-6) == pytest.approx(4e-3)

    def test_pair_offset_is_sqrt2(self):
        model = PELGROM_180NM
        assert model.sigma_pair_offset(1e-6, 1e-6) == pytest.approx(
            np.sqrt(2.0) * model.sigma_vt(1e-6, 1e-6))

    def test_mirror_gain_includes_vt_term(self):
        model = PELGROM_180NM
        ut = thermal_voltage()
        sigma = model.sigma_mirror_gain(1e-6, 1e-6, 1.3, ut)
        # VT term alone: sqrt(2)*4mV/(1.3*26mV) ~ 17 %
        assert sigma > 0.15

    def test_rejects_bad_geometry(self):
        with pytest.raises(ModelError):
            PELGROM_180NM.sigma_vt(0.0, 1e-6)


class TestSampler:
    def test_reproducible_with_seed(self):
        a = MismatchSampler(seed=5).sample(1e-6, 1e-6)
        b = MismatchSampler(seed=5).sample(1e-6, 1e-6)
        assert a == b

    def test_distribution_width(self):
        sampler = MismatchSampler(seed=0)
        draws = np.array([sampler.sample(1e-6, 1e-6).vt_shift
                          for _ in range(2000)])
        assert draws.std() == pytest.approx(4e-3, rel=0.1)
        assert abs(draws.mean()) < 4e-4

    def test_perturb_returns_new_device(self):
        sampler = MismatchSampler(seed=1)
        device = Mosfet(nmos_180(), w=1e-6, l=1e-6)
        shifted = sampler.perturb(device)
        assert shifted is not device
        assert shifted.vt_shift != 0.0
        assert device.vt_shift == 0.0  # original untouched

    def test_beta_factor_stays_positive(self):
        sampler = MismatchSampler(
            MismatchModel(a_vt=4e-9, a_beta=5e-7), seed=3)
        for _ in range(200):
            assert sampler.sample(0.3e-6, 0.3e-6).beta_factor > 0.0

    def test_pair_offset_draw(self):
        sampler = MismatchSampler(seed=2)
        draws = np.array([sampler.pair_offset(1e-6, 1e-6)
                          for _ in range(2000)])
        assert draws.std() == pytest.approx(np.sqrt(2.0) * 4e-3, rel=0.1)
