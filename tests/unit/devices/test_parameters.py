"""Unit tests for technology / device parameters."""

import pytest

from repro.constants import T_NOMINAL
from repro.devices.parameters import (
    GENERIC_180NM,
    MosParameters,
    MosPolarity,
    nmos_180,
    pmos_180,
)
from repro.errors import ModelError


class TestMosParameters:
    def test_cox_from_tox(self):
        nmos = nmos_180()
        # ~8.4 fF/um^2 at 4.1 nm oxide
        assert nmos.cox == pytest.approx(8.4e-3, rel=0.05)

    def test_specific_current_scaling(self):
        nmos = nmos_180()
        base = nmos.specific_current(1e-6, 1e-6)
        assert nmos.specific_current(2e-6, 1e-6) == pytest.approx(
            2.0 * base)
        assert nmos.specific_current(1e-6, 2e-6) == pytest.approx(
            base / 2.0)

    def test_specific_current_magnitude(self):
        # 2 n kp UT^2 ~ 0.5 uA for the generic NMOS at W/L = 1
        assert nmos_180().specific_current(1e-6, 1e-6) == pytest.approx(
            0.52e-6, rel=0.1)

    def test_vt_temperature_drop(self):
        nmos = nmos_180()
        assert nmos.vt_at(T_NOMINAL + 50.0) < nmos.vt_at(T_NOMINAL)

    def test_leakage_grows_with_temperature(self):
        nmos = nmos_180()
        assert (nmos.leakage_per_square(T_NOMINAL + 60.0)
                > 5.0 * nmos.leakage_per_square(T_NOMINAL))

    def test_validation(self):
        with pytest.raises(ModelError):
            MosParameters(name="x", polarity=MosPolarity.NMOS, vt0=-0.1,
                          n=1.3, kp=1e-4, tox=4e-9)
        with pytest.raises(ModelError):
            MosParameters(name="x", polarity=MosPolarity.NMOS, vt0=0.4,
                          n=0.9, kp=1e-4, tox=4e-9)

    def test_replace_preserves_others(self):
        shifted = nmos_180().replace(vt0=0.5)
        assert shifted.vt0 == 0.5
        assert shifted.kp == nmos_180().kp


class TestTechnology:
    def test_flavour_lookup(self):
        tech = GENERIC_180NM
        assert tech.flavour("nmos_180") is tech.nmos
        assert tech.flavour("pmos_180_thick") is tech.pmos_thick

    def test_unknown_flavour(self):
        with pytest.raises(ModelError):
            GENERIC_180NM.flavour("finfet_3nm")

    def test_polarity_signs(self):
        assert MosPolarity.NMOS.sign == 1
        assert MosPolarity.PMOS.sign == -1

    def test_pmos_weaker_than_nmos(self):
        assert pmos_180().kp < nmos_180().kp
