"""Unit tests for the subthreshold transconductor."""

import numpy as np
import pytest

from repro.analog import SubthresholdTransconductor
from repro.constants import thermal_voltage
from repro.errors import ModelError


@pytest.fixture
def gm_cell():
    return SubthresholdTransconductor(i_bias=10e-9)


class TestStatic:
    def test_zero_at_balance(self, gm_cell):
        assert gm_cell.output_current(0.0) == pytest.approx(0.0, abs=1e-18)

    def test_saturates_at_tail(self, gm_cell):
        assert gm_cell.output_current(0.5) == pytest.approx(10e-9,
                                                            rel=1e-6)
        assert gm_cell.output_current(-0.5) == pytest.approx(-10e-9,
                                                             rel=1e-6)

    def test_odd_symmetry(self, gm_cell):
        v = np.array([0.01, 0.03, 0.08])
        assert np.allclose(gm_cell.output_current(v),
                           -gm_cell.output_current(-v))

    def test_offset_shifts_zero(self):
        cell = SubthresholdTransconductor(i_bias=10e-9, offset=5e-3)
        assert cell.output_current(5e-3) == pytest.approx(0.0, abs=1e-15)

    def test_gain_error_scales_output(self):
        cell = SubthresholdTransconductor(i_bias=10e-9, gain_error=0.1)
        assert cell.output_current(1.0) == pytest.approx(11e-9, rel=1e-6)


class TestSmallSignal:
    def test_gm_formula(self, gm_cell):
        ut = thermal_voltage()
        expected = 10e-9 / (2.0 * 1.3 * ut)
        assert gm_cell.transconductance() == pytest.approx(expected,
                                                           rel=1e-3)

    def test_gm_matches_numeric_slope(self, gm_cell):
        h = 1e-6
        slope = (gm_cell.output_current(h)
                 - gm_cell.output_current(-h)) / (2.0 * h)
        assert gm_cell.transconductance() == pytest.approx(slope,
                                                           rel=1e-4)

    def test_gm_linear_in_bias(self, gm_cell):
        scaled = gm_cell.with_bias(100e-9)
        assert scaled.transconductance() == pytest.approx(
            10.0 * gm_cell.transconductance())

    def test_linear_range_independent_of_bias(self, gm_cell):
        """The scalability property: bias scales gm but not the input
        range."""
        assert gm_cell.linear_range() == pytest.approx(
            gm_cell.with_bias(1e-12).linear_range())

    def test_bandwidth_scales_with_bias(self, gm_cell):
        bw1 = gm_cell.bandwidth(100e-15)
        bw2 = gm_cell.with_bias(100e-9).bandwidth(100e-15)
        assert bw2 == pytest.approx(10.0 * bw1)


class TestValidation:
    def test_rejects_bad_bias(self):
        with pytest.raises(ModelError):
            SubthresholdTransconductor(i_bias=0.0)

    def test_rejects_bad_compression(self, gm_cell):
        with pytest.raises(ModelError):
            gm_cell.linear_range(compression=0.0)

    def test_rejects_bad_cap(self, gm_cell):
        with pytest.raises(ModelError):
            gm_cell.bandwidth(0.0)
