"""Unit tests for the pre-amplifier and the D_Well decoupling (Fig. 6)."""

import numpy as np
import pytest

from repro.analog.preamp import Preamp, preamp_output_circuit
from repro.errors import ModelError
from repro.spice import ac_analysis


def preamp(decoupled: bool, i_bias: float = 1e-9) -> Preamp:
    return Preamp(i_bias=i_bias, decoupled=decoupled)


class TestStatic:
    def test_gain_formula(self):
        amp = preamp(True)
        assert 2.5 < amp.dc_gain() < 3.5  # V_SW/(2 n U_T) at 200 mV

    def test_double_difference(self):
        amp = preamp(True)
        # out ~ A*((v1) - (v2)) in the linear region
        small = 1e-3
        out = amp.output_voltage(small, 0.0)
        out_cancel = amp.output_voltage(small, small)
        assert out == pytest.approx(amp.dc_gain() * small, rel=0.01)
        assert out_cancel == pytest.approx(0.0, abs=1e-12)

    def test_limits_at_swing(self):
        amp = preamp(True)
        assert amp.output_voltage(1.0) == pytest.approx(0.2, rel=1e-6)

    def test_offset(self):
        amp = Preamp(i_bias=1e-9, offset=2e-3)
        assert amp.output_voltage(2e-3) == pytest.approx(0.0, abs=1e-12)


class TestDynamics:
    def test_decoupling_improves_bandwidth(self):
        """The Fig. 6d claim, quantitatively: with C_well >> C_out the
        series M_C buys nearly (C_out + C_well)/C_out of bandwidth."""
        plain = preamp(False)
        decoupled = preamp(True)
        improvement = decoupled.bandwidth() / plain.bandwidth()
        assert improvement > 3.0

    def test_plain_pole_formula(self):
        plain = preamp(False)
        r_l = plain.load_resistance
        expected = 1.0 / (2.0 * np.pi * r_l * (plain.c_out + plain.c_well))
        assert plain.bandwidth() == pytest.approx(expected, rel=1e-6)

    def test_bandwidth_scales_with_bias(self):
        low = preamp(True, i_bias=1e-9)
        high = preamp(True, i_bias=10e-9)
        assert high.bandwidth() == pytest.approx(10.0 * low.bandwidth(),
                                                 rel=0.05)

    def test_transfer_dc_is_unity(self):
        amp = preamp(True)
        h = amp.transfer(np.array([1e-3]))
        assert abs(h[0]) == pytest.approx(1.0, rel=1e-4)

    def test_decoupled_has_plateau_not_brick_wall(self):
        """The pole-zero pair leaves a magnitude plateau between the
        pole and the zero instead of a complete roll-off."""
        amp = preamp(True)
        f_plateau = 10.0 * amp.bandwidth()
        h = abs(amp.transfer(np.array([f_plateau]))[0])
        assert h > 0.05  # a single pole would be ~0.02 here

    def test_step_settling_faster_with_decoupling(self):
        """The comparator decision point (~75 % of final) is reached
        far sooner: the fast C_out path responds first and the well
        charges later through M_C (Fig. 6d)."""
        plain = preamp(False)
        decoupled = preamp(True)
        assert (decoupled.step_settling_time(0.75)
                < 0.5 * plain.step_settling_time(0.75))

    def test_settling_fraction_validation(self):
        with pytest.raises(ModelError):
            preamp(True).step_settling_time(fraction=1.5)


class TestSpiceCrossCheck:
    @pytest.mark.parametrize("decoupled", [False, True])
    def test_analytic_transfer_matches_mna(self, decoupled):
        """The closed-form transfer and the MNA solution of the same
        network must agree across the band."""
        amp = preamp(decoupled)
        circuit = preamp_output_circuit(amp, unit_gm=1e-6)
        freqs = np.logspace(1, 6, 31)
        result = ac_analysis(circuit, freqs)
        mna = np.abs(result.transfer("out"))
        mna_normalised = mna / mna[0]
        analytic = np.abs(amp.transfer(freqs))
        analytic_normalised = analytic / analytic[0]
        assert np.allclose(mna_normalised, analytic_normalised, rtol=0.02)


class TestValidation:
    def test_rejects_bad_bias(self):
        with pytest.raises(ModelError):
            Preamp(i_bias=0.0)

    def test_rejects_bad_ratio(self):
        with pytest.raises(ModelError):
            Preamp(i_bias=1e-9, r_c_ratio=0.0)
