"""Unit tests for mirrors and the single-knob bias tree."""

import numpy as np
import pytest

from repro.analog.bias import BiasTree, CurrentMirror
from repro.errors import DesignError, ModelError


class TestMirror:
    def test_ideal_ratio(self):
        assert CurrentMirror(ratio=2.0).output(1e-9) == pytest.approx(
            2e-9)

    def test_gain_error_applies(self):
        mirror = CurrentMirror(ratio=1.0, gain_error=0.03)
        assert mirror.output(1e-9) == pytest.approx(1.03e-9)

    def test_sampled_statistics(self):
        rng = np.random.default_rng(0)
        gains = [CurrentMirror.sampled(1.0, rng, w=2e-6, l=2e-6).gain_error
                 for _ in range(800)]
        gains = np.asarray(gains)
        assert abs(gains.mean()) < 0.01
        # sigma ~ sqrt(2)*hypot(0.5%, 4mV/2um /(n UT)) ~ 8-9 %
        assert 0.05 < gains.std() < 0.15

    def test_validation(self):
        with pytest.raises(ModelError):
            CurrentMirror(ratio=0.0)
        with pytest.raises(ModelError):
            CurrentMirror().output(-1e-9)


class TestBiasTree:
    def test_digital_fraction(self):
        tree = BiasTree(digital_fraction=0.05)
        assert tree.digital_current(1e-6) == pytest.approx(5e-8)

    def test_branches(self):
        tree = BiasTree()
        tree.add_branch("folders", 0.6)
        tree.add_branch("ladder", 0.1)
        assert tree.branch_current("folders", 1e-6) == pytest.approx(
            0.6e-6)
        assert set(tree.branch_names()) == {"digital", "folders",
                                            "ladder"}

    def test_duplicate_branch_rejected(self):
        tree = BiasTree()
        with pytest.raises(DesignError):
            tree.add_branch("digital", 0.1)

    def test_unknown_branch_rejected(self):
        with pytest.raises(DesignError):
            BiasTree().branch_current("nope", 1e-6)

    def test_total_current(self):
        tree = BiasTree(digital_fraction=0.05)
        tree.add_branch("analog", 1.0)
        assert tree.total_current(1e-6) == pytest.approx(2.05e-6)

    def test_scaling_linearity(self):
        """One knob: every branch scales exactly with the master."""
        tree = BiasTree()
        tree.add_branch("analog", 0.8)
        for name in tree.branch_names():
            low = tree.branch_current(name, 1e-9)
            high = tree.branch_current(name, 1e-7)
            assert high == pytest.approx(100.0 * low)

    def test_mismatched_tree_reproducible(self):
        a = BiasTree(seed=5, ideal=False)
        a.add_branch("x", 1.0)
        b = BiasTree(seed=5, ideal=False)
        b.add_branch("x", 1.0)
        assert a.branch_current("x", 1e-6) == pytest.approx(
            b.branch_current("x", 1e-6))

    def test_validation(self):
        with pytest.raises(DesignError):
            BiasTree(digital_fraction=0.0)
        with pytest.raises(DesignError):
            BiasTree().branch_current("digital", 0.0)
