"""Unit tests for the power-scalable gm-C biquad (refs [22], [23])."""

import numpy as np
import pytest

from repro.analog.filters import GmCBiquad, gm_c_biquad_circuit
from repro.errors import ModelError
from repro.spice import ac_analysis


@pytest.fixture(scope="module")
def biquad():
    return GmCBiquad(i_bias=10e-9)


class TestScalability:
    def test_corner_linear_in_bias(self, biquad):
        """The headline: four decades of corner frequency from four
        decades of bias current."""
        corners = [biquad.with_bias(i).corner_frequency()
                   for i in (1e-12, 1e-10, 1e-8, 1e-6)]
        ratios = [b / a for a, b in zip(corners, corners[1:])]
        assert ratios == pytest.approx([100.0, 100.0, 100.0], rel=1e-6)

    def test_q_invariant_under_bias(self, biquad):
        assert biquad.with_bias(1e-12).q == biquad.with_bias(1e-6).q

    def test_linear_range_invariant_under_bias(self, biquad):
        assert biquad.with_bias(1e-12).linear_range() == pytest.approx(
            biquad.with_bias(1e-6).linear_range())

    def test_dynamic_range_invariant_under_bias(self, biquad):
        assert (biquad.with_bias(1e-12).dynamic_range_estimate()
                == pytest.approx(
                    biquad.with_bias(1e-6).dynamic_range_estimate()))

    def test_power_four_tails(self, biquad):
        assert biquad.power(1.0) == pytest.approx(4.0 * 10e-9)


class TestTransfer:
    def test_dc_gain_unity(self, biquad):
        h = biquad.transfer(np.array([biquad.corner_frequency() / 1e4]))
        assert abs(h[0]) == pytest.approx(1.0, rel=1e-4)

    def test_minus_40db_per_decade(self, biquad):
        f0 = biquad.corner_frequency()
        h = biquad.transfer(np.array([100.0 * f0, 1000.0 * f0]))
        drop_db = 20.0 * np.log10(abs(h[0]) / abs(h[1]))
        assert drop_db == pytest.approx(40.0, abs=0.5)

    def test_butterworth_at_corner(self):
        flt = GmCBiquad(i_bias=10e-9, q=1.0 / np.sqrt(2.0))
        h = flt.transfer(np.array([flt.corner_frequency()]))
        assert abs(h[0]) == pytest.approx(1.0 / np.sqrt(2.0), rel=1e-6)

    def test_peaking_at_high_q(self):
        flt = GmCBiquad(i_bias=10e-9, q=5.0)
        f0 = flt.corner_frequency()
        h_peak = abs(flt.transfer(np.array([f0]))[0])
        assert h_peak == pytest.approx(5.0, rel=0.02)


class TestMnaCrossCheck:
    @pytest.mark.parametrize("q", [0.5, 0.707, 2.0])
    def test_matches_analytic_transfer(self, q):
        flt = GmCBiquad(i_bias=10e-9, q=q)
        f0 = flt.corner_frequency()
        freqs = np.logspace(np.log10(f0) - 2, np.log10(f0) + 2, 41)
        circuit = gm_c_biquad_circuit(flt)
        result = ac_analysis(circuit, freqs)
        mna = np.abs(result.transfer("lp"))
        analytic = np.abs(flt.transfer(freqs))
        assert np.allclose(mna, analytic, rtol=1e-3)

    def test_corner_from_mna(self, biquad):
        circuit = gm_c_biquad_circuit(biquad)
        f0 = biquad.corner_frequency()
        freqs = np.logspace(np.log10(f0) - 2, np.log10(f0) + 2, 101)
        result = ac_analysis(circuit, freqs)
        assert result.bandwidth_3db("lp") == pytest.approx(f0, rel=0.05)


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ModelError):
            GmCBiquad(i_bias=0.0)
        with pytest.raises(ModelError):
            GmCBiquad(i_bias=1e-9, c=0.0)
        with pytest.raises(ModelError):
            GmCBiquad(i_bias=1e-9, q=0.0)
        with pytest.raises(ModelError):
            GmCBiquad(i_bias=1e-9).power(0.0)
