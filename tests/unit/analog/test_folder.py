"""Unit tests for the current-mode folder."""

import numpy as np
import pytest

from repro.analog.folder import CurrentFolder, FolderBank
from repro.errors import ModelError


def simple_folder(**overrides):
    params = dict(references=(0.3, 0.4, 0.5, 0.6), i_unit=10e-9)
    params.update(overrides)
    return CurrentFolder(**params)


class TestConstruction:
    def test_rejects_single_reference(self):
        with pytest.raises(ModelError):
            CurrentFolder(references=(0.3,), i_unit=1e-9)

    def test_rejects_unsorted_references(self):
        with pytest.raises(ModelError):
            CurrentFolder(references=(0.4, 0.3), i_unit=1e-9)

    def test_rejects_mismatched_extras(self):
        with pytest.raises(ModelError):
            simple_folder(pair_offsets=(1e-3,))


class TestIdealFolding:
    def test_crossings_on_references(self):
        folder = simple_folder()
        crossings = folder.crossing_estimates((0.25, 0.65))
        assert crossings == pytest.approx([0.3, 0.4, 0.5, 0.6], abs=1e-4)

    def test_alternating_slopes(self):
        folder = simple_folder()
        h = 1e-4
        slopes = [(folder.output_current(r + h)
                   - folder.output_current(r - h)) / (2 * h)
                  for r in folder.references]
        signs = [np.sign(s) for s in slopes]
        assert signs == [1.0, -1.0, 1.0, -1.0]

    def test_amplitude_is_i_unit(self):
        folder = simple_folder()
        mid = 0.35  # between two crossings: arch peak
        assert abs(folder.output_current(mid)) == pytest.approx(
            10e-9, rel=1e-6)

    def test_ideal_is_pure_sinusoid(self):
        """Uniform crossings glue the arches into one sinusoid -- the
        property that makes interpolation exact."""
        folder = simple_folder()
        v = np.linspace(0.31, 0.59, 101)
        expected = 10e-9 * np.sin(np.pi * (v - 0.3) / 0.1)
        assert np.allclose(folder.output_current(v), expected, atol=1e-14)

    def test_bias_scaling(self):
        folder = simple_folder()
        scaled = folder.with_bias(20e-9)
        v = np.array([0.33, 0.47])
        assert np.allclose(scaled.output_current(v),
                           2.0 * folder.output_current(v))

    def test_outputs_1_1_2(self):
        folder = simple_folder()
        i1, i2, i4 = folder.outputs_1_1_2(0.35)
        assert i1 == i2
        assert i4 == pytest.approx(2.0 * i1)


class TestMismatch:
    def test_offsets_move_crossings(self):
        folder = simple_folder(pair_offsets=(2e-3, -1e-3, 0.0, 0.0))
        crossings = folder.crossing_estimates((0.25, 0.65))
        assert crossings[0] == pytest.approx(0.302, abs=2e-4)
        assert crossings[1] == pytest.approx(0.399, abs=2e-4)

    def test_gain_errors_keep_crossings(self):
        folder = simple_folder(pair_gain_errors=(0.1, -0.1, 0.05, 0.0))
        crossings = folder.crossing_estimates((0.25, 0.65))
        assert crossings == pytest.approx([0.3, 0.4, 0.5, 0.6], abs=1e-4)

    def test_reordering_offsets_rejected(self):
        folder = simple_folder(pair_offsets=(0.2, -0.2, 0.0, 0.0))
        with pytest.raises(ModelError):
            folder.output_current(0.45)


class TestFolderBank:
    def test_crossing_placement_matches_encoder_convention(self):
        """Folder j's first in-range crossing at LSB*(j*stride + 1)."""
        bank = FolderBank(n_folders=4, full_scale=(0.2, 0.8),
                          folding_factor=8, n_signals=32, i_unit=1e-9)
        lsb = 0.6 / 256
        for j, folder in enumerate(bank):
            crossings = folder.crossing_estimates((0.2, 0.8),
                                                  points=20001)
            expected_first = 0.2 + lsb * (8 * j + 1)
            assert crossings[0] == pytest.approx(expected_first,
                                                 abs=lsb / 20)

    def test_each_folder_crosses_once_per_fold(self):
        bank = FolderBank(n_folders=4, full_scale=(0.2, 0.8),
                          folding_factor=8, n_signals=32, i_unit=1e-9)
        crossings = bank[0].crossing_estimates((0.2, 0.8), points=20001)
        assert len(crossings) == 8

    def test_validation(self):
        with pytest.raises(ModelError):
            FolderBank(n_folders=3, full_scale=(0.2, 0.8),
                       folding_factor=8, n_signals=32, i_unit=1e-9)
        with pytest.raises(ModelError):
            FolderBank(n_folders=4, full_scale=(0.8, 0.2),
                       folding_factor=8, n_signals=32, i_unit=1e-9)
