"""Unit tests for the programmable PMOS resistor ladder (Fig. 7)."""

import numpy as np
import pytest

from repro.analog.ladder import (
    LadderBiasScheme,
    PmosResistor,
    ResistorLadder,
)
from repro.errors import ModelError


class TestPmosResistor:
    def test_resistance_inverse_in_control_current(self):
        r1 = PmosResistor(i_res=1e-9).resistance
        r2 = PmosResistor(i_res=10e-9).resistance
        assert r1 == pytest.approx(10.0 * r2)

    def test_gigaohm_at_pa_control(self):
        """The Fig. 7 point: pA-level control currents give the
        multi-gigaohm resistances a passive ladder cannot."""
        assert PmosResistor(i_res=10e-12).resistance > 1e9

    def test_kappa_scales(self):
        base = PmosResistor(i_res=1e-9, kappa=1.0).resistance
        strong = PmosResistor(i_res=1e-9, kappa=4.0).resistance
        assert strong == pytest.approx(base / 4.0)

    def test_with_control(self):
        r = PmosResistor(i_res=1e-9, resistance_error=0.05)
        retuned = r.with_control(2e-9)
        assert retuned.resistance_error == 0.05
        assert retuned.resistance == pytest.approx(r.resistance / 2.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            PmosResistor(i_res=0.0)
        with pytest.raises(ModelError):
            PmosResistor(i_res=1e-9, kappa=0.0)


class TestBiasScheme:
    def test_per_resistor_cost(self):
        scheme = LadderBiasScheme(share=1)
        assert scheme.control_current(8, 1e-9) == pytest.approx(8e-9)

    def test_sharing_divides_cost(self):
        """Fig. 7d: sharing one bias cell among 4 resistors quarters
        the control power."""
        shared = LadderBiasScheme(share=4)
        assert shared.control_current(8, 1e-9) == pytest.approx(2e-9)

    def test_ceiling_division(self):
        scheme = LadderBiasScheme(share=4)
        assert scheme.control_current(9, 1e-9) == pytest.approx(3e-9)

    def test_validation(self):
        with pytest.raises(ModelError):
            LadderBiasScheme(share=0)


class TestLadder:
    def test_ideal_taps_uniform(self):
        ladder = ResistorLadder(n_taps=7, v_low=0.2, v_high=0.8,
                                i_res=1e-9)
        taps = ladder.tap_voltages()
        assert taps == pytest.approx(0.2 + 0.6 * np.arange(1, 8) / 8.0)

    def test_mismatch_perturbs_taps(self):
        ladder = ResistorLadder(n_taps=7, v_low=0.2, v_high=0.8,
                                i_res=1e-9, sigma_rel=0.05, seed=3)
        ideal = 0.2 + 0.6 * np.arange(1, 8) / 8.0
        taps = ladder.tap_voltages()
        assert not np.allclose(taps, ideal)
        assert np.all(np.diff(taps) > 0.0)  # still monotone at 5 %

    def test_same_seed_same_chip(self):
        a = ResistorLadder(7, 0.2, 0.8, 1e-9, sigma_rel=0.02, seed=9)
        b = ResistorLadder(7, 0.2, 0.8, 1e-9, sigma_rel=0.02, seed=9)
        assert np.array_equal(a.tap_voltages(), b.tap_voltages())

    def test_with_control_preserves_pattern(self):
        ladder = ResistorLadder(7, 0.2, 0.8, 1e-9, sigma_rel=0.02, seed=9)
        retuned = ladder.with_control(10e-9)
        # Taps are ratiometric: unchanged by global resistance scaling.
        assert np.allclose(ladder.tap_voltages(), retuned.tap_voltages())
        assert retuned.total_resistance() == pytest.approx(
            ladder.total_resistance() / 10.0)

    def test_power_below_microwatt(self):
        """The paper's claim: conventional ladders cannot go below
        ~1 uW; the programmable ladder can."""
        ladder = ResistorLadder(7, 0.2, 0.8, i_res=1e-9,
                                bias_scheme=LadderBiasScheme(share=4))
        assert ladder.power(1.0) < 1e-6

    def test_power_scales_with_control(self):
        low = ResistorLadder(7, 0.2, 0.8, i_res=1e-9)
        high = ResistorLadder(7, 0.2, 0.8, i_res=10e-9)
        assert high.power(1.0) == pytest.approx(10.0 * low.power(1.0),
                                                rel=1e-6)

    def test_settling_scales_inversely_with_control(self):
        low = ResistorLadder(7, 0.2, 0.8, i_res=1e-9)
        high = ResistorLadder(7, 0.2, 0.8, i_res=10e-9)
        c_tap = 100e-15
        assert low.settling_time(c_tap) == pytest.approx(
            10.0 * high.settling_time(c_tap), rel=1e-6)

    def test_validation(self):
        with pytest.raises(ModelError):
            ResistorLadder(0, 0.2, 0.8, 1e-9)
        with pytest.raises(ModelError):
            ResistorLadder(7, 0.8, 0.2, 1e-9)
