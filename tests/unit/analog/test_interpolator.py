"""Unit tests for the current-mode interpolator."""

import numpy as np
import pytest

from repro.analog.interpolator import CurrentInterpolator
from repro.errors import ModelError


def staggered_sinusoids(n: int, points: int = 2001):
    """n unit sinusoids with phases spaced pi/n, over two periods."""
    x = np.linspace(0.0, 4.0 * np.pi, points)
    return np.stack([np.sin(x - k * np.pi / n) for k in range(n)]), x


def crossings_of(row: np.ndarray, x: np.ndarray) -> np.ndarray:
    idx = np.nonzero(np.diff(np.signbit(row)))[0]
    out = []
    for i in idx:
        x1, x2 = x[i], x[i + 1]
        y1, y2 = row[i], row[i + 1]
        out.append(x1 - y1 * (x2 - x1) / (y2 - y1))
    return np.asarray(out)


class TestFactor:
    def test_factor(self):
        assert CurrentInterpolator(stages=3).factor == 8
        assert CurrentInterpolator(stages=0).factor == 1

    def test_output_count(self):
        signals, _x = staggered_sinusoids(4)
        out = CurrentInterpolator(stages=3).interpolate(signals)
        assert out.shape[0] == 32

    def test_zero_stages_identity(self):
        signals, _x = staggered_sinusoids(4)
        out = CurrentInterpolator(stages=0).interpolate(signals)
        assert np.array_equal(out, signals)


class TestExactness:
    def test_midpoint_crossings_exact_for_sinusoids(self):
        """sin a + sin b crosses exactly at the phase midpoint: the
        interpolated crossings bisect the parents'."""
        signals, x = staggered_sinusoids(4)
        out = CurrentInterpolator(stages=1).interpolate(signals)
        parent0 = crossings_of(signals[0], x)
        parent1 = crossings_of(signals[1], x)
        mid = crossings_of(out[1], x)
        # Skip midpoints near the record edges, whose parent crossing
        # falls outside the simulated span.
        for m in mid[1:-1]:
            gaps0 = np.min(np.abs(parent0 - m))
            gaps1 = np.min(np.abs(parent1 - m))
            assert gaps0 == pytest.approx(gaps1, abs=2e-3)

    def test_full_chain_nearly_uniform_crossings(self):
        """Iterated 2x averaging is exact at the first stage but the
        later stages average sinusoids of unequal amplitude, leaving a
        small systematic crossing ripple (the interpolation distortion
        analysed in ref. [15]) -- bounded here at ~7 % of a step."""
        signals, x = staggered_sinusoids(4, points=20001)
        out = CurrentInterpolator(stages=3).interpolate(signals)
        firsts = []
        for row in out:
            c = crossings_of(row, x)
            firsts.append(c[0])
        spacing = np.diff(sorted(firsts))
        assert np.allclose(spacing, np.pi / 32.0, rtol=0.075)

    def test_cyclic_wrap_inverts_first(self):
        """Past the last signal the chain interpolates toward the
        *inverted* first signal."""
        signals, x = staggered_sinusoids(4)
        out = CurrentInterpolator(stages=1).interpolate(signals)
        manual = 0.5 * (signals[3] - signals[0])
        assert np.allclose(out[7], manual)


class TestMirrorMismatch:
    def test_frozen_gains_reproducible(self):
        interp = CurrentInterpolator(stages=2, mirror_sigma=0.05,
                                     merged_first_stage=False)
        rng = np.random.default_rng(3)
        gains = interp.sample_gains(4, rng)
        assert len(gains) == 2
        assert gains[0].shape == (4, 2)
        signals, _x = staggered_sinusoids(4)
        out1 = interp.interpolate(signals, gains)
        out2 = interp.interpolate(signals, gains)
        assert np.array_equal(out1, out2)

    def test_merged_first_stage_is_ideal(self):
        interp = CurrentInterpolator(stages=2, mirror_sigma=0.5)
        gains = interp.sample_gains(4, np.random.default_rng(0))
        assert np.allclose(gains[0], 1.0)
        assert not np.allclose(gains[1], 1.0)

    def test_gain_errors_shift_midpoint_crossing(self):
        signals, x = staggered_sinusoids(4, points=20001)
        interp = CurrentInterpolator(stages=1, merged_first_stage=False)
        skewed = [np.array([[1.2, 0.8]] + [[1.0, 1.0]] * 3)]
        out = interp.interpolate(signals, skewed)
        ideal = interp.interpolate(signals)
        shift = crossings_of(out[1], x)[0] - crossings_of(ideal[1], x)[0]
        assert abs(shift) > 1e-3

    def test_branch_count(self):
        interp = CurrentInterpolator(stages=3, merged_first_stage=True)
        # stages at n=4 (merged), 8, 16: 2*(8+16) = 48
        assert interp.branch_count(4) == 48


class TestValidation:
    def test_wrong_gain_count_rejected(self):
        interp = CurrentInterpolator(stages=2)
        signals, _x = staggered_sinusoids(4)
        with pytest.raises(ModelError):
            interp.interpolate(signals, [np.ones((4, 2))])

    def test_empty_signals_rejected(self):
        with pytest.raises(ModelError):
            CurrentInterpolator(stages=1).interpolate(np.empty((0, 5)))
