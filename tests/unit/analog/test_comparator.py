"""Unit tests for the clocked comparator and comparator bank."""

import numpy as np
import pytest

from repro.analog.comparator import Comparator, ComparatorBank
from repro.analog.preamp import Preamp
from repro.errors import ModelError


def ideal_comparator() -> Comparator:
    return Comparator(preamp=Preamp(i_bias=1e-9))


class TestSingle:
    def test_basic_decisions(self):
        comp = ideal_comparator()
        assert comp.decide(0.6, 0.5) is True
        assert comp.decide(0.4, 0.5) is False

    def test_offset_shifts_threshold(self):
        comp = Comparator(preamp=Preamp(i_bias=1e-9, offset=10e-3))
        assert comp.decide(0.505, 0.5) is False   # inside the offset
        assert comp.decide(0.515, 0.5) is True

    def test_deterministic_without_rng(self):
        comp = ideal_comparator()
        outcomes = {comp.decide(0.5 + 1e-9, 0.5) for _ in range(10)}
        assert outcomes == {True}

    def test_noise_flips_marginal_decisions(self):
        comp = Comparator(preamp=Preamp(i_bias=1e-9), noise_rms=5e-3,
                          rng=np.random.default_rng(0))
        outcomes = {comp.decide(0.5005, 0.5) for _ in range(100)}
        assert outcomes == {True, False}

    def test_metastability_window(self):
        comp = Comparator(preamp=Preamp(i_bias=1e-9),
                          metastability_window=1e-3,
                          rng=np.random.default_rng(1))
        outcomes = {comp.decide(0.5 + 1e-4, 0.5) for _ in range(50)}
        assert outcomes == {True, False}

    def test_decide_array(self):
        comp = ideal_comparator()
        out = comp.decide_array(np.array([0.4, 0.6]), 0.5)
        assert list(out) == [False, True]

    def test_max_clock_scales_with_bias(self):
        slow = ideal_comparator()
        fast = slow.with_bias(10e-9)
        assert fast.max_clock() == pytest.approx(10.0 * slow.max_clock(),
                                                 rel=0.05)


class TestBank:
    def test_same_seed_same_offsets(self):
        a = ComparatorBank(n=8, i_bias=1e-9, seed=4)
        b = ComparatorBank(n=8, i_bias=1e-9, seed=4)
        assert np.array_equal(a.offsets(), b.offsets())

    def test_ideal_bank_has_zero_offsets(self):
        bank = ComparatorBank(n=8, i_bias=1e-9, ideal=True, seed=0)
        assert np.all(bank.offsets() == 0.0)

    def test_offset_sigma_follows_pelgrom(self):
        bank = ComparatorBank(n=400, i_bias=1e-9, pair_w=2e-6,
                              pair_l=0.5e-6, seed=7)
        expected = bank.mismatch.sigma_pair_offset(2e-6, 0.5e-6)
        assert bank.offsets().std() == pytest.approx(expected, rel=0.15)

    def test_with_bias_preserves_chip(self):
        bank = ComparatorBank(n=8, i_bias=1e-9, seed=4)
        retuned = bank.with_bias(10e-9)
        assert np.array_equal(bank.offsets(), retuned.offsets())
        assert retuned.i_bias == 10e-9

    def test_decide_all_shapes(self):
        bank = ComparatorBank(n=4, i_bias=1e-9, ideal=True)
        word = bank.decide_all(np.array([0.1, 0.2, 0.3, 0.4]), 0.25)
        assert word == (False, False, True, True)

    def test_decide_all_validates_shape(self):
        bank = ComparatorBank(n=4, i_bias=1e-9, ideal=True)
        with pytest.raises(ModelError):
            bank.decide_all(np.zeros(5))

    def test_validation(self):
        with pytest.raises(ModelError):
            ComparatorBank(n=0, i_bias=1e-9)
        with pytest.raises(ModelError):
            ComparatorBank(n=4, i_bias=0.0)
