"""Unit tests for repro.units (engineering-notation quantities)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import UnitError
from repro.units import (
    db20,
    db10,
    decades,
    format_quantity,
    from_db20,
    parse_quantity,
)


class TestParseQuantity:
    @pytest.mark.parametrize("text,expected", [
        ("10n", 10e-9),
        ("10nA", 10e-9),
        ("1.5u", 1.5e-6),
        ("1.5µA", 1.5e-6),
        ("200mV", 0.2),
        ("80kS/s", 80e3),
        ("-3mV", -3e-3),
        ("4.2", 4.2),
        ("2e3", 2e3),
        ("1MHz", 1e6),
        ("100f", 100e-15),
        ("7p", 7e-12),
    ])
    def test_known_values(self, text, expected):
        assert parse_quantity(text) == pytest.approx(expected)

    def test_numeric_passthrough(self):
        assert parse_quantity(3.5) == 3.5
        assert parse_quantity(7) == 7.0

    def test_expected_unit_match(self):
        assert parse_quantity("200mV", expect_unit="V") == pytest.approx(0.2)

    def test_expected_unit_mismatch(self):
        with pytest.raises(UnitError):
            parse_quantity("200mA", expect_unit="V")

    def test_bare_unit_not_prefix(self):
        # "mV" is milli-volt; a bare "V" unit with expect_unit must work.
        assert parse_quantity("2V", expect_unit="V") == pytest.approx(2.0)

    @pytest.mark.parametrize("bad", ["", "abc", "1.2.3n", "n10"])
    def test_malformed(self, bad):
        with pytest.raises(UnitError):
            parse_quantity(bad)


class TestFormatQuantity:
    @pytest.mark.parametrize("value,unit,expected", [
        (44.2e-9, "W", "44.2nW"),
        (4e-6, "W", "4uW"),
        (0.0, "V", "0V"),
        (1e3, "Hz", "1kHz"),
        (2.5e-12, "A", "2.5pA"),
    ])
    def test_known_values(self, value, unit, expected):
        assert format_quantity(value, unit) == expected

    def test_negative(self):
        assert format_quantity(-3e-3, "V").startswith("-3")

    @given(st.floats(min_value=1e-18, max_value=1e12,
                     allow_nan=False, allow_infinity=False))
    def test_roundtrip_parse(self, value):
        text = format_quantity(value, "")
        back = parse_quantity(text)
        assert back == pytest.approx(value, rel=1e-3)


class TestDecades:
    def test_endpoints_included(self):
        grid = decades(1e-12, 1e-9, points_per_decade=5)
        assert grid[0] == pytest.approx(1e-12)
        assert grid[-1] == pytest.approx(1e-9)

    def test_point_count(self):
        grid = decades(1.0, 1e3, points_per_decade=10)
        assert len(grid) == 31

    def test_log_uniform_spacing(self):
        grid = decades(1.0, 100.0, points_per_decade=4)
        ratios = [b / a for a, b in zip(grid, grid[1:])]
        assert all(r == pytest.approx(ratios[0], rel=1e-9) for r in ratios)

    def test_rejects_nonpositive(self):
        with pytest.raises(UnitError):
            decades(0.0, 1.0)

    def test_single_point(self):
        assert decades(5.0, 5.0) == [5.0]


class TestDecibels:
    def test_db20_of_10(self):
        assert db20(10.0) == pytest.approx(20.0)

    def test_db10_of_10(self):
        assert db10(10.0) == pytest.approx(10.0)

    def test_roundtrip(self):
        assert from_db20(db20(3.7)) == pytest.approx(3.7)

    def test_rejects_nonpositive(self):
        with pytest.raises(UnitError):
            db20(0.0)
