"""Unit tests for the behavioural PLL."""

import pytest

from repro.errors import AnalysisError, DesignError
from repro.pmu import BehavioralPll
from repro.stscl import StsclGateDesign


@pytest.fixture(scope="module")
def pll():
    return BehavioralPll(StsclGateDesign.default(1e-9))


class TestRingModel:
    def test_frequency_linear_in_current(self, pll):
        f1 = pll.ring_frequency(1e-9)
        f2 = pll.ring_frequency(10e-9)
        assert f2 == pytest.approx(10.0 * f1)

    def test_inverse_mapping_roundtrip(self, pll):
        i = pll.control_for_frequency(50e3)
        assert pll.ring_frequency(i) == pytest.approx(50e3, rel=1e-9)

    def test_rejects_bad_inputs(self, pll):
        with pytest.raises(DesignError):
            pll.ring_frequency(0.0)
        with pytest.raises(DesignError):
            pll.control_for_frequency(-1.0)


class TestLocking:
    def test_locks_to_reference(self, pll):
        report = pll.lock(20e3)
        assert report.locked
        assert report.f_out == pytest.approx(20e3, rel=2e-3)

    def test_control_current_is_the_bias(self, pll):
        """The locked control current equals the open-loop value: this
        is the number the PMU fans out to the whole chip (Fig. 1)."""
        report = pll.lock(20e3)
        assert report.i_control == pytest.approx(
            pll.control_for_frequency(20e3), rel=5e-3)

    def test_divider_multiplies(self):
        pll = BehavioralPll(StsclGateDesign.default(1e-9), divider=8)
        report = pll.lock(5e3)
        assert report.f_out == pytest.approx(40e3, rel=5e-3)

    def test_lock_time_reasonable(self, pll):
        report = pll.lock(20e3)
        # First-order loop at 5 % bandwidth: lock within ~100 cycles.
        assert report.lock_time < 200.0 / 20e3

    def test_warm_start_locks_faster(self, pll):
        cold = pll.lock(20e3)
        warm = pll.lock(20e3,
                        i_start=pll.control_for_frequency(19e3))
        assert warm.iterations < cold.iterations

    def test_unlockable_raises(self, pll):
        with pytest.raises(AnalysisError):
            pll.lock(20e3, max_cycles=3)


class TestValidation:
    def test_ring_length(self):
        with pytest.raises(DesignError):
            BehavioralPll(StsclGateDesign.default(1e-9), n_ring=4)

    def test_bandwidth_ratio(self):
        with pytest.raises(DesignError):
            BehavioralPll(StsclGateDesign.default(1e-9),
                          bandwidth_ratio=0.9)
