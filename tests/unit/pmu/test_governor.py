"""Unit tests for the DVFS rate governor."""

import pytest

from repro.adc import FaiAdc
from repro.errors import DesignError
from repro.pmu import DvfsGovernor, PowerManagementUnit


@pytest.fixture()
def governor():
    pmu = PowerManagementUnit(FaiAdc(ideal=True, seed=0))
    return DvfsGovernor(pmu, rates=(800.0, 8e3, 80e3), dwell=2)


class TestLadder:
    def test_starts_at_bottom(self, governor):
        assert governor.rate == 800.0

    def test_sustained_activity_steps_up(self, governor):
        governor.update(0.9)
        assert governor.rate == 800.0  # dwell not yet satisfied
        governor.update(0.9)
        assert governor.rate == 8e3

    def test_single_spike_ignored(self, governor):
        governor.update(0.9)
        governor.update(0.4)  # back in band: streak resets
        governor.update(0.9)
        assert governor.rate == 800.0

    def test_steps_down_after_quiet(self, governor):
        for _ in range(4):
            governor.update(0.9)
        assert governor.rate == 80e3
        for _ in range(2):
            governor.update(0.05)
        assert governor.rate == 8e3

    def test_hysteresis_band_holds(self, governor):
        governor.update(0.9)
        governor.update(0.9)
        assert governor.rate == 8e3
        for _ in range(10):
            governor.update(0.4)  # inside the band
        assert governor.rate == 8e3

    def test_clamps_at_ends(self, governor):
        for _ in range(20):
            governor.update(1.0)
        assert governor.rate == 80e3
        for _ in range(20):
            governor.update(0.0)
        assert governor.rate == 800.0

    def test_operating_point_follows(self, governor):
        p_low = governor.operating_point().total_power
        governor.update(0.9)
        governor.update(0.9)
        p_mid = governor.operating_point().total_power
        assert p_mid == pytest.approx(10.0 * p_low, rel=0.02)

    def test_reset(self, governor):
        governor.reset(2)
        assert governor.rate == 80e3
        with pytest.raises(DesignError):
            governor.reset(5)


class TestValidation:
    def test_bad_ladder(self):
        pmu = PowerManagementUnit(FaiAdc(ideal=True, seed=0))
        with pytest.raises(DesignError):
            DvfsGovernor(pmu, rates=(800.0,))
        with pytest.raises(DesignError):
            DvfsGovernor(pmu, rates=(8e3, 800.0))
        with pytest.raises(DesignError):
            DvfsGovernor(pmu, up_threshold=0.2, down_threshold=0.3)
