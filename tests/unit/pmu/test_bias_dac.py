"""Unit tests for the bias-current DAC."""

import pytest

from repro.errors import DesignError
from repro.pmu import BiasCurrentDac


class TestDac:
    def test_output_linear(self):
        dac = BiasCurrentDac(i_lsb=10e-12, n_bits=8)
        assert dac.output(0) == 0.0
        assert dac.output(100) == pytest.approx(1e-9)

    def test_full_scale(self):
        dac = BiasCurrentDac(i_lsb=10e-12, n_bits=8)
        assert dac.full_scale == pytest.approx(255 * 10e-12)

    def test_code_for_ceils(self):
        """The quantised bias must always *meet* the requested rate."""
        dac = BiasCurrentDac(i_lsb=10e-12, n_bits=8)
        assert dac.code_for(25e-12) == 3
        assert dac.quantize(25e-12) >= 25e-12

    def test_code_for_exact(self):
        dac = BiasCurrentDac(i_lsb=10e-12, n_bits=8)
        assert dac.code_for(30e-12) == 3

    def test_clamps_at_full_scale(self):
        dac = BiasCurrentDac(i_lsb=10e-12, n_bits=4)
        assert dac.code_for(1.0) == 15

    def test_validation(self):
        with pytest.raises(DesignError):
            BiasCurrentDac(i_lsb=0.0)
        dac = BiasCurrentDac(i_lsb=1e-12, n_bits=4)
        with pytest.raises(DesignError):
            dac.output(16)
        with pytest.raises(DesignError):
            dac.code_for(-1.0)
