"""Unit tests for the power-management unit."""

import numpy as np
import pytest

from repro.errors import DesignError
from repro.pmu import PowerManagementUnit


@pytest.fixture(scope="module")
def pmu(chip_adc):
    return PowerManagementUnit(chip_adc)


# chip_adc is session-scoped in the top conftest; redeclare locally
# for the module-scoped pmu fixture.
@pytest.fixture(scope="module")
def chip_adc():
    from repro.adc import FaiAdc
    return FaiAdc(ideal=False, seed=1)


class TestOperatingPoint:
    def test_power_linear_in_rate(self, pmu):
        p_low = pmu.operating_point(800.0).total_power
        p_high = pmu.operating_point(80e3).total_power
        assert p_high == pytest.approx(100.0 * p_low, rel=0.02)

    def test_paper_scaling_anchors(self, pmu):
        """Sec. III-C: 44 nW at 800 S/s, 4 uW at 80 kS/s (digital
        2 nW -> 200 nW).  Shape and rough magnitude must match."""
        low = pmu.operating_point(800.0)
        high = pmu.operating_point(80e3)
        assert low.total_power == pytest.approx(44e-9, rel=0.35)
        assert high.total_power == pytest.approx(4e-6, rel=0.35)
        assert high.digital_power == pytest.approx(200e-9, rel=0.5)

    def test_digital_fraction_small_and_constant(self, pmu):
        fractions = [pmu.operating_point(f).digital_fraction
                     for f in (800.0, 8e3, 80e3)]
        assert all(0.02 < fraction < 0.10 for fraction in fractions)
        assert np.ptp(fractions) < 0.01

    def test_energy_per_sample_constant(self, pmu):
        """Linear power scaling = constant energy per conversion."""
        energies = [pmu.operating_point(f).energy_per_sample
                    for f in (800.0, 8e3, 80e3)]
        assert max(energies) / min(energies) == pytest.approx(1.0,
                                                              rel=0.02)
        assert energies[0] == pytest.approx(50e-12, rel=0.3)

    def test_digital_tail_current_tracks_rate(self, pmu):
        i_low = pmu.digital_tail_current(800.0)
        i_high = pmu.digital_tail_current(80e3)
        assert i_high == pytest.approx(100.0 * i_low)
        assert i_high == pytest.approx(1e-9, rel=0.15)  # ~1 nA at 80 kS/s

    def test_rejects_bad_rate(self, pmu):
        with pytest.raises(DesignError):
            pmu.operating_point(0.0)


class TestTunedViews:
    def test_tuned_adc_preserves_chip(self, pmu):
        tuned = pmu.tuned_adc(8e3)
        voltages = np.linspace(0.3, 0.7, 100)
        assert np.array_equal(pmu.adc.convert_batch(voltages),
                              tuned.convert_batch(voltages))

    def test_tuned_gate_design_meets_rate(self, pmu):
        design = pmu.tuned_gate_design(8e3)
        assert design.max_frequency(1) >= 8e3

    def test_validation(self, pmu):
        with pytest.raises(DesignError):
            PowerManagementUnit(pmu.adc, n_digital_tails=0)
        with pytest.raises(DesignError):
            PowerManagementUnit(pmu.adc, encoder_depth=0.5)
