"""Unit tests for energy-harvesting supply profiles."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.pmu.harvesting import (
    solar_profile,
    supply_excursion_ok,
    vibration_profile,
)
from repro.stscl import StsclGateDesign, minimum_supply


class TestProfiles:
    @pytest.mark.parametrize("factory", [solar_profile,
                                         vibration_profile])
    def test_stays_within_rails(self, factory):
        profile = factory(v_min=1.0, v_max=1.25)
        _t, v = profile.sample(512)
        assert v.min() >= 1.0 - 1e-9
        assert v.max() <= 1.25 + 1e-9

    def test_solar_has_dip(self):
        profile = solar_profile(1.0, 1.25)
        _t, v = profile.sample(1024)
        # The cloud-transit dip makes the profile non-sinusoidal.
        assert v.min() == pytest.approx(1.0, abs=1e-6)

    def test_vibration_has_ripple(self):
        profile = vibration_profile(1.0, 1.25)
        _t, v = profile.sample(2048)
        assert np.ptp(np.diff(v)) > 0.0

    def test_sample_validation(self):
        with pytest.raises(ModelError):
            solar_profile().sample(1)

    def test_rail_validation(self):
        with pytest.raises(ModelError):
            solar_profile(v_min=1.3, v_max=1.0)


class TestExcursionCheck:
    def test_na_design_survives_harvesting_rails(self):
        """The paper's claim: at nA bias the minimum supply (~0.37 V)
        is far below any harvesting rail, so V_DD wander is harmless."""
        design = StsclGateDesign.default(1e-9)
        assert supply_excursion_ok(design, solar_profile(1.0, 1.25))
        assert supply_excursion_ok(design, vibration_profile(1.0, 1.25))

    def test_fails_when_rails_drop_below_headroom(self):
        design = StsclGateDesign.default(1e-7)  # needs ~0.55 V
        vdd_min = minimum_supply(design)
        profile = solar_profile(v_min=vdd_min - 0.05,
                                v_max=vdd_min + 0.2)
        assert not supply_excursion_ok(design, profile)

    def test_margin_tightens_check(self):
        design = StsclGateDesign.default(1e-9)
        vdd_min = minimum_supply(design)
        profile = solar_profile(v_min=vdd_min + 0.01,
                                v_max=vdd_min + 0.3)
        assert supply_excursion_ok(design, profile, margin=0.0)
        assert not supply_excursion_ok(design, profile, margin=0.05)
