"""Unit tests for the Monte-Carlo runner."""

import numpy as np
import pytest

from repro.analysis import MonteCarlo, MonteCarloSummary
from repro.errors import AnalysisError


class TestSummary:
    def test_moments(self):
        summary = MonteCarloSummary.from_values("x", [1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.median == pytest.approx(2.0)
        assert summary.p05 <= summary.median <= summary.p95

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            MonteCarloSummary.from_values("x", [])


class TestRunner:
    def test_seeds_are_sequential(self):
        seen = []

        def metric(seed):
            seen.append(seed)
            return {"v": float(seed)}

        MonteCarlo(metric, n_runs=5, seed_base=100).run()
        assert seen == [100, 101, 102, 103, 104]

    def test_statistics_of_known_distribution(self):
        def metric(seed):
            rng = np.random.default_rng(seed)
            return {"g": float(rng.normal(5.0, 1.0))}

        results = MonteCarlo(metric, n_runs=400).run()
        assert results["g"].mean == pytest.approx(5.0, abs=0.2)
        assert results["g"].std == pytest.approx(1.0, abs=0.2)

    def test_multiple_metrics(self):
        def metric(seed):
            return {"a": seed, "b": 2.0 * seed}

        results = MonteCarlo(metric, n_runs=10).run()
        assert set(results) == {"a", "b"}
        assert results["b"].mean == pytest.approx(2.0 * results["a"].mean)

    def test_inconsistent_metrics_rejected(self):
        def metric(seed):
            return {"a": 1.0} if seed % 2 else {"b": 1.0}

        with pytest.raises(AnalysisError):
            MonteCarlo(metric, n_runs=4).run()

    def test_empty_metrics_rejected(self):
        with pytest.raises(AnalysisError):
            MonteCarlo(lambda seed: {}, n_runs=2).run()

    def test_run_count_validation(self):
        with pytest.raises(AnalysisError):
            MonteCarlo(lambda s: {"x": 1.0}, n_runs=0)
