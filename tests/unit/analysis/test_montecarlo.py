"""Unit tests for the Monte-Carlo runner."""

import numpy as np
import pytest

from repro.analysis import MonteCarlo, MonteCarloRun, MonteCarloSummary
from repro.errors import AnalysisError, ConvergenceError


class TestSummary:
    def test_moments(self):
        summary = MonteCarloSummary.from_values("x", [1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.median == pytest.approx(2.0)
        assert summary.p05 <= summary.median <= summary.p95

    def test_std_is_the_sample_std(self):
        """ddof=1: the values estimate the spread of the population the
        seeds were drawn from, not of the finite sample itself."""
        summary = MonteCarloSummary.from_values("x", [1.0, 2.0, 3.0])
        assert summary.std == pytest.approx(1.0)  # not sqrt(2/3)

    def test_single_sample_std_is_zero(self):
        summary = MonteCarloSummary.from_values("x", [4.2])
        assert summary.std == 0.0
        assert summary.mean == pytest.approx(4.2)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            MonteCarloSummary.from_values("x", [])


class TestRunner:
    def test_seeds_are_sequential(self):
        seen = []

        def metric(seed):
            seen.append(seed)
            return {"v": float(seed)}

        MonteCarlo(metric, n_runs=5, seed_base=100).run()
        assert seen == [100, 101, 102, 103, 104]

    def test_statistics_of_known_distribution(self):
        def metric(seed):
            rng = np.random.default_rng(seed)
            return {"g": float(rng.normal(5.0, 1.0))}

        results = MonteCarlo(metric, n_runs=400).run()
        assert results["g"].mean == pytest.approx(5.0, abs=0.2)
        assert results["g"].std == pytest.approx(1.0, abs=0.2)

    def test_multiple_metrics(self):
        def metric(seed):
            return {"a": seed, "b": 2.0 * seed}

        results = MonteCarlo(metric, n_runs=10).run()
        assert set(results) == {"a", "b"}
        assert results["b"].mean == pytest.approx(2.0 * results["a"].mean)

    def test_inconsistent_metrics_rejected(self):
        def metric(seed):
            return {"a": 1.0} if seed % 2 else {"b": 1.0}

        with pytest.raises(AnalysisError):
            MonteCarlo(metric, n_runs=4).run()

    def test_empty_metrics_rejected(self):
        with pytest.raises(AnalysisError):
            MonteCarlo(lambda seed: {}, n_runs=2).run()

    def test_run_count_validation(self):
        with pytest.raises(AnalysisError):
            MonteCarlo(lambda s: {"x": 1.0}, n_runs=0)


def _flaky(bad_seeds):
    """A metric whose listed seeds fail to converge."""

    def metric(seed):
        if seed in bad_seeds:
            raise ConvergenceError(f"seed {seed} diverged")
        return {"v": float(seed)}

    return metric


class TestErrorPolicy:
    def test_default_policy_propagates(self):
        with pytest.raises(ConvergenceError):
            MonteCarlo(_flaky({2}), n_runs=5).run()

    def test_skip_records_the_failed_seed(self):
        """One non-converging chip must not destroy the campaign: the
        summary covers the survivors and names the casualty."""
        results = MonteCarlo(_flaky({2}), n_runs=5, on_error="skip").run()
        assert isinstance(results, MonteCarloRun)
        assert results.n_failed == 1
        (seed, message), = results.failed_seeds
        assert seed == 2
        assert "diverged" in message
        # Survivors only -- no NaN contamination of the moments.
        np.testing.assert_allclose(results["v"].values, [0, 1, 3, 4])
        assert "failed seeds (1): 2" in results.describe()

    def test_skip_keeps_dict_compatibility(self):
        results = MonteCarlo(_flaky(set()), n_runs=3,
                             on_error="skip").run()
        assert results.failed_seeds == []
        assert set(results) == {"v"}
        assert dict(results) == {"v": results["v"]}

    def test_all_seeds_failing_is_fatal(self):
        with pytest.raises(AnalysisError, match="every seed failed"):
            MonteCarlo(_flaky({0, 1, 2}), n_runs=3,
                       on_error="skip").run()

    def test_non_library_errors_always_propagate(self):
        def metric(seed):
            raise RuntimeError("a bug, not a convergence failure")

        with pytest.raises(RuntimeError):
            MonteCarlo(metric, n_runs=2, on_error="skip").run()

    def test_policy_validated(self):
        with pytest.raises(AnalysisError):
            MonteCarlo(lambda s: {"x": 1.0}, on_error="ignore")


def _seeded_gaussian(seed):
    """Module-level (picklable) metric for the process-pool tests."""
    rng = np.random.default_rng(seed)
    return {"v": float(rng.normal(0.0, 1.0))}


def _flaky_every_third(seed):
    if seed % 3 == 1:
        raise ConvergenceError(f"seed {seed} diverged")
    return {"v": float(seed)}


class TestParallel:
    def test_parallel_matches_serial_bit_for_bit(self):
        """Seeds fully determine the chips, so the pool must reproduce
        the serial population exactly -- values and order."""
        serial = MonteCarlo(_seeded_gaussian, n_runs=6).run()
        parallel = MonteCarlo(_seeded_gaussian, n_runs=6,
                              n_workers=2).run()
        np.testing.assert_array_equal(serial["v"].values,
                                      parallel["v"].values)
        assert serial["v"].std == parallel["v"].std
        assert serial["v"].mean == parallel["v"].mean

    def test_parallel_skip_records_match_serial(self):
        serial = MonteCarlo(_flaky_every_third, n_runs=7,
                            on_error="skip").run()
        parallel = MonteCarlo(_flaky_every_third, n_runs=7,
                              on_error="skip", n_workers=3).run()
        np.testing.assert_array_equal(serial["v"].values,
                                      parallel["v"].values)
        assert serial.failed_seeds == parallel.failed_seeds

    def test_parallel_raise_policy_propagates(self):
        with pytest.raises(ConvergenceError):
            MonteCarlo(_flaky_every_third, n_runs=4, n_workers=2).run()

    def test_unpicklable_metric_diagnosed_upfront(self):
        mc = MonteCarlo(lambda s: {"x": 1.0}, n_runs=2, n_workers=2)
        with pytest.raises(AnalysisError, match="worker processes"):
            mc.run()

    def test_workers_validated(self):
        with pytest.raises(AnalysisError):
            MonteCarlo(_seeded_gaussian, n_workers=0)

    def test_single_worker_stays_serial(self):
        """n_workers=1 must not spin up a pool (lambdas keep working)."""
        results = MonteCarlo(lambda s: {"x": float(s)}, n_runs=3,
                             n_workers=1).run()
        assert results["x"].mean == pytest.approx(1.0)
