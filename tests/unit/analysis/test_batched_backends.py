"""backend="batched" on the analysis runners: serial equivalence.

One spec object (:class:`BatchedOpMetric` / :class:`BatchedOpSweep`)
drives both paths -- called per item it is the serial metric function,
handed to a batched runner it describes the stacked solve -- so these
tests compare the *same* population under both execution models.
"""

import numpy as np
import pytest

from repro.analysis import MonteCarlo
from repro.analysis.sweep import sweep_1d
from repro.devices.diode import Diode, DiodeParameters
from repro.devices.mismatch import MismatchSampler
from repro.errors import AnalysisError
from repro.spice import (
    BatchedOpMetric,
    BatchedOpSweep,
    Circuit,
    LaneSpec,
    NewtonOptions,
    NewtonStrategy,
    dc_sweep,
)
from repro.stscl.netlist_gen import stscl_inverter_circuit

DIODE = Diode(DiodeParameters(name="junction", i_s=1e-16))

#: Converges small source walks, defeated by the 8 V walk.
TIGHT = NewtonOptions(max_iterations=20)


def _diode_build() -> Circuit:
    circuit = Circuit("flaky_diode")
    circuit.add_vsource("V1", "in", "0", 1.0)
    circuit.add_resistor("RS", "in", "a", 10.0)
    circuit.add_diode("D1", "a", "0", DIODE)
    return circuit


def _diode_measure(result):
    return {"v_a": result.voltages["a"]}


def _flaky_draw(seed, circuit):
    """Odd seeds demand the 8 V walk that defeats a Newton-only TIGHT
    ladder -- a deterministic, *deliberately* non-convergent sample."""
    value = 8.0 if seed % 2 else 0.5 + 0.1 * seed
    return LaneSpec.source("V1", value, label=f"seed-{seed}")


#: Serial call and batched lane both fail odd seeds the same way.
FLAKY_SPEC = BatchedOpMetric(build=_diode_build, draw=_flaky_draw,
                             measure=_diode_measure, options=TIGHT,
                             strategies=(NewtonStrategy(),))


class TestMonteCarloBatched:
    def _mismatch_spec(self, design):
        def build():
            circuit, _ = stscl_inverter_circuit(design, 0.4)
            return circuit

        def draw(seed, circuit):
            sampler = MismatchSampler(seed=seed)
            vt, beta = sampler.sample_bank(
                [m.device for m in circuit.mos_elements()])
            return LaneSpec.mismatch(vt, beta, label=f"seed-{seed}")

        def measure(result):
            return {"v_diff": result.vdiff("outp", "outn")}

        return BatchedOpMetric(build=build, draw=draw, measure=measure)

    def test_summaries_match_serial_within_1e9(self, default_design):
        """The acceptance bar: batched summary statistics within 1e-9
        relative tolerance of the serial backend on the same seeds."""
        spec = self._mismatch_spec(default_design)
        serial = MonteCarlo(spec, n_runs=8).run()
        batched = MonteCarlo(spec, n_runs=8, backend="batched").run()
        for name in serial:
            np.testing.assert_allclose(batched[name].values,
                                       serial[name].values, rtol=1e-9)
            assert batched[name].mean == pytest.approx(
                serial[name].mean, rel=1e-9)
            assert batched[name].std == pytest.approx(
                serial[name].std, rel=1e-9)
        assert serial.failed_seeds == batched.failed_seeds == []

    def test_failed_seed_records_match_serial(self):
        """A deliberately non-convergent sample produces the same
        failed-seed record, in the same order, under both backends."""
        serial = MonteCarlo(FLAKY_SPEC, n_runs=6, on_error="skip").run()
        batched = MonteCarlo(FLAKY_SPEC, n_runs=6, on_error="skip",
                             backend="batched").run()
        assert [seed for seed, _ in serial.failed_seeds] == [1, 3, 5]
        assert ([seed for seed, _ in batched.failed_seeds]
                == [seed for seed, _ in serial.failed_seeds])
        np.testing.assert_allclose(batched["v_a"].values,
                                   serial["v_a"].values, rtol=1e-9)

    def test_raise_policy_propagates_like_serial(self):
        from repro.errors import ConvergenceError
        with pytest.raises(ConvergenceError):
            MonteCarlo(FLAKY_SPEC, n_runs=2, backend="batched").run()

    def test_backend_validated(self):
        with pytest.raises(AnalysisError):
            MonteCarlo(FLAKY_SPEC, backend="vectorized")

    def test_batched_excludes_process_pool(self):
        with pytest.raises(AnalysisError, match="n_workers"):
            MonteCarlo(FLAKY_SPEC, backend="batched", n_workers=4)

    def test_plain_callable_rejected_with_guidance(self):
        mc = MonteCarlo(lambda seed: {"x": 1.0}, n_runs=2,
                        backend="batched")
        with pytest.raises(AnalysisError, match="BatchedOpMetric"):
            mc.run()


def _sweep_lane(value, circuit):
    return LaneSpec.source("V1", value, label=f"{value:g}")


SWEEP_SPEC = BatchedOpSweep(build=_diode_build, lane=_sweep_lane,
                            measure=_diode_measure)

FLAKY_SWEEP_SPEC = BatchedOpSweep(build=_diode_build, lane=_sweep_lane,
                                  measure=_diode_measure, options=TIGHT,
                                  strategies=(NewtonStrategy(),))


class TestSweepBatched:
    def test_table_matches_serial(self):
        values = [0.3, 0.6, 1.0, 2.0]
        serial = sweep_1d("v_in", values, SWEEP_SPEC)
        batched = sweep_1d("v_in", values, SWEEP_SPEC, backend="batched")
        np.testing.assert_allclose(batched.column("v_a"),
                                   serial.column("v_a"), rtol=1e-9)
        assert batched.failures == serial.failures == ()

    def test_skip_policy_nan_rows_match_serial(self):
        """The non-convergent point surfaces as the same NaN row and
        failure record under both backends."""
        values = [0.5, 8.0, 1.0]
        serial = sweep_1d("v_in", values, FLAKY_SWEEP_SPEC,
                          on_error="skip")
        batched = sweep_1d("v_in", values, FLAKY_SWEEP_SPEC,
                           on_error="skip", backend="batched")
        assert [k for k, _ in serial.failures] == [1]
        assert ([k for k, _ in batched.failures]
                == [k for k, _ in serial.failures])
        assert np.isnan(batched.column("v_a")[1])
        np.testing.assert_allclose(batched.column("v_a")[[0, 2]],
                                   serial.column("v_a")[[0, 2]],
                                   rtol=1e-9)

    def test_pilot_failure_falls_back_to_flat_start(self):
        """A dead *first* point must not poison the sweep: the pilot
        warm start falls back to the flat nodeset guess and the
        remaining points still converge and match serial."""
        values = [8.0, 0.5, 1.0]
        serial = sweep_1d("v_in", values, FLAKY_SWEEP_SPEC,
                          on_error="skip")
        batched = sweep_1d("v_in", values, FLAKY_SWEEP_SPEC,
                           on_error="skip", backend="batched")
        assert [k for k, _ in batched.failures] == [0]
        assert ([k for k, _ in batched.failures]
                == [k for k, _ in serial.failures])
        assert np.isnan(batched.column("v_a")[0])
        np.testing.assert_allclose(batched.column("v_a")[[1, 2]],
                                   serial.column("v_a")[[1, 2]],
                                   rtol=1e-9)

    def test_pilot_warm_start_emits_telemetry(self):
        from repro import telemetry
        with telemetry.tracing("sweep-test") as trace:
            sweep_1d("v_in", [0.3, 0.6], SWEEP_SPEC, backend="batched")
        sweep_span = trace.root.find("sweep-1d")
        assert sweep_span is not None
        assert sweep_span.events_of("pilot-warm-start")

    def test_plain_callable_rejected_with_guidance(self):
        with pytest.raises(AnalysisError, match="BatchedOpSweep"):
            sweep_1d("x", [1.0], lambda v: {"m": v}, backend="batched")


class TestDcSweepBatched:
    def test_points_match_serial(self, default_design):
        circuit, _ = stscl_inverter_circuit(default_design, 0.4)
        values = np.linspace(0.0, 0.4, 7)
        serial = dc_sweep(circuit, "vinp", values)
        batched = dc_sweep(circuit, "vinp", values, backend="batched")
        for s, b in zip(serial.points, batched.points):
            for node in s.voltages:
                assert b.voltages[node] == pytest.approx(
                    s.voltages[node], abs=1e-9)

    def test_skip_policy_matches_serial(self):
        circuit = _diode_build()
        values = [0.5, 8.0]
        serial = dc_sweep(circuit, "V1", values, options=TIGHT,
                          strategies=(NewtonStrategy(),), on_error="skip")
        batched = dc_sweep(circuit, "V1", values, options=TIGHT,
                           strategies=(NewtonStrategy(),),
                           on_error="skip", backend="batched")
        assert [k for k, _ in serial.failures] == [1]
        assert ([k for k, _ in batched.failures]
                == [k for k, _ in serial.failures])
        assert not batched.points[1].converged


def _nan_draw(seed, circuit):
    """Seed 2 draws a NaN source value: a degenerate lane whose solve
    can never succeed, batched or serial."""
    value = float("nan") if seed == 2 else 0.5 + 0.1 * seed
    return LaneSpec.source("V1", value, label=f"seed-{seed}")


NAN_SPEC = BatchedOpMetric(build=_diode_build, draw=_nan_draw,
                           measure=_diode_measure, options=TIGHT)


class TestSingularLaneBackend:
    def test_degenerate_lane_records_failed_seed(self):
        """One NaN lane in a batched Monte-Carlo population must record
        a failed-seed entry -- the healthy seeds' statistics unharmed
        -- not poison the stacked solve."""
        run = MonteCarlo(NAN_SPEC, n_runs=5, on_error="skip",
                         backend="batched").run()
        assert [seed for seed, _ in run.failed_seeds] == [2]
        assert np.isfinite(run["v_a"].mean)
        serial = MonteCarlo(NAN_SPEC, n_runs=5, on_error="skip").run()
        assert ([seed for seed, _ in serial.failed_seeds]
                == [seed for seed, _ in run.failed_seeds])
        np.testing.assert_allclose(run["v_a"].values,
                                   serial["v_a"].values, rtol=1e-9)


def _pulse_build() -> Circuit:
    from repro.spice import pulse_wave

    circuit = Circuit("pulse_rc")
    circuit.add_vsource("V1", "in", "0",
                        waveform=pulse_wave(0.0, 1.0, 1e-6, 1e-7, 1e-7,
                                            2e-6, 4e-6))
    circuit.add_resistor("RS", "in", "a", 1e3)
    circuit.add_capacitor("C1", "a", "0", 1e-9)
    circuit.add_diode("D1", "a", "0", DIODE)
    return circuit


def _tran_draw(seed, circuit):
    factor = 1.0 + 0.1 * ((seed % 7) - 3)
    return LaneSpec(resistor_scale=(("RS", factor),),
                    label=f"seed-{seed}")


def _tran_measure(result):
    wave = result.voltage("a")
    return {"v_final": float(wave[-1]), "v_peak": float(wave.max())}


def _tran_spec():
    from repro.spice import TransientOptions
    from repro.spice.batch import BatchedTranMetric

    dt = 8e-6 / 200
    return BatchedTranMetric(
        build=_pulse_build, draw=_tran_draw, measure=_tran_measure,
        t_stop=8e-6,
        options=TransientOptions(dt_initial=dt, dt_min=dt, dt_max=dt))


class TestMonteCarloTransient:
    """analysis="transient": waveform metrics per seed, lockstep."""

    def test_fixed_grid_summaries_match_serial_within_1e9(self):
        spec = _tran_spec()
        serial = MonteCarlo(spec, n_runs=6, analysis="transient").run()
        batched = MonteCarlo(spec, n_runs=6, analysis="transient",
                             backend="batched").run()
        for name in serial:
            np.testing.assert_allclose(batched[name].values,
                                       serial[name].values, rtol=1e-9)
        assert serial.failed_seeds == batched.failed_seeds == []

    def test_op_backend_rejects_tran_spec_with_guidance(self):
        with pytest.raises(AnalysisError,
                           match="analysis='transient'"):
            MonteCarlo(_tran_spec(), n_runs=2, backend="batched").run()

    def test_tran_backend_rejects_op_spec_with_guidance(self):
        with pytest.raises(AnalysisError, match="BatchedTranMetric"):
            MonteCarlo(FLAKY_SPEC, n_runs=2, analysis="transient",
                       backend="batched").run()

    def test_analysis_validated(self):
        with pytest.raises(AnalysisError, match="analysis"):
            MonteCarlo(_tran_spec(), n_runs=2, analysis="ac")
