"""Unit tests for yield estimation."""

import pytest

from repro.analysis import MonteCarloSummary, estimate_yield
from repro.errors import AnalysisError


def summaries():
    return {
        "inl": MonteCarloSummary.from_values(
            "inl", [0.5, 0.8, 1.2, 0.9, 1.5]),
        "enob": MonteCarloSummary.from_values(
            "enob", [6.8, 6.2, 6.6, 6.9, 6.1]),
    }


class TestYield:
    def test_single_spec(self):
        report = estimate_yield(summaries(),
                                {"inl": lambda v: v <= 1.0})
        assert report.n_total == 5
        assert report.n_pass == 3
        assert report.yield_fraction == pytest.approx(0.6)

    def test_joint_specs(self):
        report = estimate_yield(summaries(), {
            "inl": lambda v: v <= 1.0,
            "enob": lambda v: v >= 6.5,
        })
        # Chips passing both: (0.5,6.8), (0.9,6.9) -> 2 of 5.
        assert report.n_pass == 2
        assert report.failures["inl"] == 2
        assert report.failures["enob"] == 2

    def test_all_pass(self):
        report = estimate_yield(summaries(),
                                {"inl": lambda v: v <= 10.0})
        assert report.yield_fraction == 1.0

    def test_unknown_metric_rejected(self):
        with pytest.raises(AnalysisError):
            estimate_yield(summaries(), {"ghost": lambda v: True})

    def test_no_specs_rejected(self):
        with pytest.raises(AnalysisError):
            estimate_yield(summaries(), {})

    def test_nan_metric_fails_spec_without_reaching_predicate(self):
        """A NaN metric (a skipped, non-converged chip) must count as a
        failing chip even when the predicate is not NaN-safe."""
        population = {"inl": MonteCarloSummary.from_values(
            "inl", [0.5, float("nan"), 0.9])}

        def strict(v):
            if v != v:
                raise RuntimeError("predicate is not NaN-safe")
            return v <= 1.0

        report = estimate_yield(population, {"inl": strict})
        assert report.n_total == 3
        assert report.n_pass == 2
        assert report.n_invalid == 1
        assert report.failures["inl"] == 1

    def test_valid_population_reports_zero_invalid(self):
        report = estimate_yield(summaries(),
                                {"inl": lambda v: v <= 1.0})
        assert report.n_invalid == 0

    def test_nan_chip_counted_invalid_once_across_metrics(self):
        """A chip that is NaN on several metrics is still one invalid
        chip, not one per metric."""
        nan = float("nan")
        population = {
            "inl": MonteCarloSummary.from_values("inl", [0.5, nan, 0.9]),
            "enob": MonteCarloSummary.from_values("enob", [6.8, nan, 6.6]),
        }
        report = estimate_yield(population, {
            "inl": lambda v: v <= 1.0,
            "enob": lambda v: v >= 6.5,
        })
        assert report.n_invalid == 1
        assert report.n_pass == 2
        assert report.failures == {"inl": 1, "enob": 1}

    def test_all_nan_population_yields_zero(self):
        nan = float("nan")
        population = {"inl": MonteCarloSummary.from_values(
            "inl", [nan, nan])}
        report = estimate_yield(population, {"inl": lambda v: v <= 1.0})
        assert report.yield_fraction == 0.0
        assert report.n_invalid == 2
        assert report.n_pass == 0

    def test_nan_on_unspecced_metric_ignored(self):
        """NaN on a metric no spec references must not mark the chip
        invalid -- only specced metrics are examined."""
        nan = float("nan")
        population = {
            "inl": MonteCarloSummary.from_values("inl", [0.5, 0.9]),
            "extra": MonteCarloSummary.from_values("extra", [nan, 1.0]),
        }
        report = estimate_yield(population, {"inl": lambda v: v <= 1.0})
        assert report.n_invalid == 0
        assert report.n_pass == 2

    def test_mismatched_populations_rejected(self):
        bad = summaries()
        bad["short"] = MonteCarloSummary.from_values("short", [1.0])
        with pytest.raises(AnalysisError):
            estimate_yield(bad, {"inl": lambda v: True,
                                 "short": lambda v: True})
