"""Unit tests for normalised finite-difference sensitivity."""

import math

import pytest

from repro.analysis import finite_difference_sensitivity
from repro.errors import AnalysisError


class TestSensitivity:
    def test_power_law(self):
        # M = P^3 -> S = 3 exactly.
        s = finite_difference_sensitivity(lambda p: p ** 3, 2.0)
        assert s == pytest.approx(3.0, rel=1e-3)

    def test_constant_metric(self):
        s = finite_difference_sensitivity(lambda p: 42.0, 1.0)
        assert s == pytest.approx(0.0, abs=1e-12)

    def test_exponential_metric(self):
        # M = exp(p): S = p.
        s = finite_difference_sensitivity(math.exp, 3.0)
        assert s == pytest.approx(3.0, rel=1e-3)

    def test_stscl_delay_vs_vdd_is_zero(self):
        """Cross-check with the gate model: delay has zero V_DD
        sensitivity."""
        from repro.stscl import StsclGateDesign
        gate = StsclGateDesign.default(1e-9)
        s = finite_difference_sensitivity(lambda vdd: gate.delay(), 1.0)
        assert s == 0.0

    def test_stscl_delay_vs_current_is_minus_one(self):
        from repro.stscl import StsclGateDesign
        s = finite_difference_sensitivity(
            lambda i: StsclGateDesign.default(i).delay(), 1e-9)
        assert s == pytest.approx(-1.0, rel=1e-3)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            finite_difference_sensitivity(lambda p: p, 0.0)
        with pytest.raises(AnalysisError):
            finite_difference_sensitivity(lambda p: 0.0, 1.0)
        with pytest.raises(AnalysisError):
            finite_difference_sensitivity(lambda p: p, 1.0,
                                          relative_step=0.9)
