"""Unit tests for the sweep helper."""

import numpy as np
import pytest

from repro.analysis import sweep_1d
from repro.errors import AnalysisError


class TestSweep:
    def test_columns_aligned(self):
        table = sweep_1d("x", [1.0, 2.0, 3.0],
                         lambda x: {"square": x * x, "double": 2 * x})
        assert np.array_equal(table.column("square"), [1.0, 4.0, 9.0])
        assert np.array_equal(table.column("double"), [2.0, 4.0, 6.0])

    def test_rows_iteration(self):
        table = sweep_1d("x", [1.0, 2.0], lambda x: {"y": x + 1})
        rows = list(table.rows())
        assert rows == [(1.0, {"y": 2.0}), (2.0, {"y": 3.0})]

    def test_unknown_column(self):
        table = sweep_1d("x", [1.0], lambda x: {"y": x})
        with pytest.raises(AnalysisError):
            table.column("z")

    def test_empty_sweep_rejected(self):
        with pytest.raises(AnalysisError):
            sweep_1d("x", [], lambda x: {"y": x})

    def test_empty_metrics_rejected(self):
        with pytest.raises(AnalysisError):
            sweep_1d("x", [1.0], lambda x: {})
