"""Unit tests for the sweep helper."""

import numpy as np
import pytest

from repro.analysis import sweep_1d
from repro.errors import AnalysisError, ConvergenceError


class TestSweep:
    def test_columns_aligned(self):
        table = sweep_1d("x", [1.0, 2.0, 3.0],
                         lambda x: {"square": x * x, "double": 2 * x})
        assert np.array_equal(table.column("square"), [1.0, 4.0, 9.0])
        assert np.array_equal(table.column("double"), [2.0, 4.0, 6.0])

    def test_rows_iteration(self):
        table = sweep_1d("x", [1.0, 2.0], lambda x: {"y": x + 1})
        rows = list(table.rows())
        assert rows == [(1.0, {"y": 2.0}), (2.0, {"y": 3.0})]

    def test_unknown_column(self):
        table = sweep_1d("x", [1.0], lambda x: {"y": x})
        with pytest.raises(AnalysisError):
            table.column("z")

    def test_empty_sweep_rejected(self):
        with pytest.raises(AnalysisError):
            sweep_1d("x", [], lambda x: {"y": x})

    def test_empty_metrics_rejected(self):
        with pytest.raises(AnalysisError):
            sweep_1d("x", [1.0], lambda x: {})


def _fragile(x):
    """Metric that breaks down at x == 2."""
    if x == 2.0:
        raise ConvergenceError("no dice at 2")
    return {"y": x * 10.0}


class TestSweepErrorPolicy:
    def test_default_policy_propagates(self):
        with pytest.raises(ConvergenceError):
            sweep_1d("x", [1.0, 2.0, 3.0], _fragile)

    def test_skip_backfills_nan_and_stays_aligned(self):
        table = sweep_1d("x", [1.0, 2.0, 3.0], _fragile,
                         on_error="skip")
        column = table.column("y")
        assert column[0] == 10.0 and column[2] == 30.0
        assert np.isnan(column[1])
        (index, message), = table.failures
        assert index == 1 and "no dice" in message

    def test_all_points_failing_is_fatal(self):
        with pytest.raises(AnalysisError, match="every sweep point"):
            sweep_1d("x", [2.0, 2.0], _fragile, on_error="skip")

    def test_skip_survives_first_point_failing(self):
        """Column names come from the first *evaluated* point, so a
        failure at index 0 must still yield aligned NaN-backed
        columns."""
        table = sweep_1d("x", [2.0, 3.0, 4.0], _fragile,
                         on_error="skip")
        column = table.column("y")
        assert np.isnan(column[0])
        assert column[1] == 30.0 and column[2] == 40.0
        (index, _), = table.failures
        assert index == 0

    def test_skip_with_only_last_point_surviving(self):
        table = sweep_1d("x", [2.0, 2.0, 3.0], _fragile,
                         on_error="skip")
        column = table.column("y")
        assert np.isnan(column[0]) and np.isnan(column[1])
        assert column[2] == 30.0
        assert [index for index, _ in table.failures] == [0, 1]

    def test_policy_validated(self):
        with pytest.raises(AnalysisError):
            sweep_1d("x", [1.0], _fragile, on_error="ignore")
