"""Unit tests for the thermal-noise budget."""

import math

import pytest

from repro.analysis.noise import (
    adc_noise_budget,
    chain_input_noise,
    scl_stage_noise,
)
from repro.constants import BOLTZMANN, T_NOMINAL
from repro.errors import ModelError


class TestStageNoise:
    def test_ktc_floor(self):
        stage = scl_stage_noise(1e-9, 0.2, 35e-15)
        expected = math.sqrt(BOLTZMANN * T_NOMINAL / 35e-15)
        assert stage.ktc_rms == pytest.approx(expected, rel=1e-6)
        assert stage.output_rms > stage.ktc_rms

    def test_bias_independent(self):
        """Gain and noise are both set by V_SW and U_T only: scaling
        the current changes neither (the noise face of the paper's
        decoupling)."""
        low = scl_stage_noise(1e-12, 0.2, 35e-15)
        high = scl_stage_noise(1e-7, 0.2, 35e-15)
        assert low.output_rms == pytest.approx(high.output_rms)
        assert low.gain == pytest.approx(high.gain)

    def test_bigger_load_is_quieter(self):
        small = scl_stage_noise(1e-9, 0.2, 10e-15)
        big = scl_stage_noise(1e-9, 0.2, 100e-15)
        assert big.output_rms == pytest.approx(
            small.output_rms / math.sqrt(10.0), rel=1e-6)

    def test_excess_factor_from_gain(self):
        stage = scl_stage_noise(1e-9, 0.2, 35e-15)
        assert stage.excess_factor == pytest.approx(
            1.0 + 2.0 * 0.65 * stage.gain, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ModelError):
            scl_stage_noise(0.0, 0.2, 35e-15)


class TestChain:
    def test_first_stage_dominates(self):
        stage = scl_stage_noise(1e-9, 0.2, 35e-15)
        one = chain_input_noise([stage])
        three = chain_input_noise([stage, stage, stage])
        # Later stages divided by gain^k: total grows by < 10 %.
        assert one < three < 1.1 * one

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            chain_input_noise([])


class TestAdcBudget:
    def test_magnitude_supports_calibration(self):
        """The thermal floor lands at ~0.3 mV rms.  The converter's
        fitted 1.5 mV aggregate is then ~5x the floor, which is the
        usual decomposition in nW designs: the regenerative latch,
        bias/supply ripple and clock jitter dominate over pure
        front-end thermal noise."""
        budget = adc_noise_budget()
        assert 0.1e-3 < budget["total"] < 1.0e-3
        fitted_aggregate = 1.5e-3
        assert 2.0 < fitted_aggregate / budget["total"] < 10.0

    def test_breakdown_keys(self):
        budget = adc_noise_budget()
        assert set(budget) == {"folder_input_rms", "chain_input_rms",
                               "sample_ktc_rms", "total"}
        assert budget["total"] >= budget["chain_input_rms"]

    def test_total_is_rss(self):
        budget = adc_noise_budget()
        assert budget["total"] == pytest.approx(
            math.hypot(budget["chain_input_rms"],
                       budget["sample_ktc_rms"]), rel=1e-9)
