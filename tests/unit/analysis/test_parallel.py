"""The deterministic process-pool helpers: ordering and chunking.

Chunking only regroups pool submissions to amortise pickle/IPC cost;
the result stream must stay element-for-element identical to the
unchunked pool -- which itself mirrors the serial loop.
"""

import numpy as np
import pytest

from repro.analysis import MonteCarlo
from repro.analysis.parallel import (default_chunksize, run_ordered,
                                     validate_workers)
from repro.errors import AnalysisError


def _square(value):
    """Module-level so the pool can pickle it."""
    return value * value


def _seeded_gaussian(seed):
    rng = np.random.default_rng(seed)
    return {"v": float(rng.normal(0.0, 1.0))}


class TestChunkHeuristic:
    def test_four_chunks_per_worker(self):
        # 80 tasks on 2 workers: 8 chunks of 10.
        assert default_chunksize(80, 2) == 10

    def test_small_populations_stay_one_per_submission(self):
        assert default_chunksize(3, 4) == 1
        assert default_chunksize(1, 1) == 1

    def test_ceil_division_leaves_no_orphan_chunk(self):
        # 81 tasks / (2 workers * 4) -> ceil = 11 per chunk.
        assert default_chunksize(81, 2) == 11

    def test_degenerate_inputs(self):
        assert default_chunksize(0, 4) == 1


class TestRunOrdered:
    def test_results_keep_task_order(self):
        tasks = [(k,) for k in range(23)]
        results = run_ordered(_square, tasks, n_workers=2)
        assert results == [k * k for k in range(23)]

    def test_explicit_chunksize_is_honoured(self):
        tasks = [(k,) for k in range(10)]
        for chunksize in (1, 3, 10, 99):
            assert run_ordered(_square, tasks, 2,
                               chunksize=chunksize) == \
                [k * k for k in range(10)]

    def test_chunksize_validated(self):
        with pytest.raises(AnalysisError):
            run_ordered(_square, [(1,)], 2, chunksize=0)

    def test_workers_validation(self):
        assert validate_workers(None) == 1
        with pytest.raises(AnalysisError):
            validate_workers(0)


class TestChunkedMonteCarlo:
    def test_chunked_pool_is_bit_identical_to_serial(self):
        """Enough seeds that the default chunksize exceeds one: the
        summaries must still be bit-identical to the serial loop."""
        n_runs = 24  # chunksize 3 on 2 workers
        assert default_chunksize(n_runs, 2) > 1
        serial = MonteCarlo(_seeded_gaussian, n_runs=n_runs).run()
        chunked = MonteCarlo(_seeded_gaussian, n_runs=n_runs,
                             n_workers=2).run()
        np.testing.assert_array_equal(serial["v"].values,
                                      chunked["v"].values)
        assert serial["v"].mean == chunked["v"].mean
        assert serial["v"].std == chunked["v"].std
        assert serial["v"].p05 == chunked["v"].p05


def _failing_metric(seed):
    """Module-level Monte-Carlo metric that fails a hard solve: the
    worker catches the ConvergenceError and ships it back as data."""
    from repro.devices.diode import Diode, DiodeParameters
    from repro.spice import Circuit, NewtonOptions, operating_point
    from repro.spice.strategies import NewtonStrategy

    ckt = Circuit(f"hard_diode_{seed}")
    ckt.add_vsource("V1", "in", "0", 8.0)
    ckt.add_resistor("RS", "in", "a", 10.0)
    ckt.add_diode("D1", "a", "0",
                  Diode(DiodeParameters(name="j", i_s=1e-16)))
    operating_point(ckt, NewtonOptions(max_iterations=5),
                    strategies=(NewtonStrategy(),))
    return {"v": 0.0}  # unreachable


class _Unpicklable:
    def __reduce__(self):
        raise TypeError("deliberately unpicklable")

    def __repr__(self):
        return "<opaque report>"


class TestExceptionFidelity:
    def test_convergence_error_pickles_with_diagnostics(self):
        import pickle

        from repro.errors import ConvergenceError

        with pytest.raises(ConvergenceError) as excinfo:
            _failing_metric(0)
        original = excinfo.value
        restored = pickle.loads(pickle.dumps(original))
        assert isinstance(restored, ConvergenceError)
        assert str(restored) == str(original)
        assert restored.iterations == original.iterations
        assert restored.stage == original.stage
        assert restored.diagnostics is not None
        assert restored.diagnostics.circuit == \
            original.diagnostics.circuit
        assert [s.strategy for s in restored.diagnostics.stages] == \
            [s.strategy for s in original.diagnostics.stages]
        assert restored.diagnostics.stages[0].residuals == \
            original.diagnostics.stages[0].residuals

    def test_unpicklable_diagnostics_degrade_not_poison(self):
        import pickle

        from repro.errors import ConvergenceError

        error = ConvergenceError("solve failed", iterations=7,
                                 diagnostics=_Unpicklable(),
                                 stage="newton")
        restored = pickle.loads(pickle.dumps(error))
        assert restored.iterations == 7
        assert restored.stage == "newton"
        assert "opaque report" in restored.diagnostics

    def test_diagnostics_survive_worker_round_trip(self):
        """The real pool: a worker-side ConvergenceError re-raised in
        the parent under n_workers > 1 must still carry its full
        SolverDiagnostics, not a stripped-down copy."""
        from repro.analysis import MonteCarlo
        from repro.errors import ConvergenceError

        with pytest.raises(ConvergenceError) as excinfo:
            MonteCarlo(_failing_metric, n_runs=4, n_workers=2).run()
        error = excinfo.value
        assert error.stage == "newton"
        assert error.iterations is not None
        assert error.diagnostics is not None
        assert error.diagnostics.stages
        assert error.diagnostics.stages[0].residuals
