"""The deterministic process-pool helpers: ordering and chunking.

Chunking only regroups pool submissions to amortise pickle/IPC cost;
the result stream must stay element-for-element identical to the
unchunked pool -- which itself mirrors the serial loop.
"""

import numpy as np
import pytest

from repro.analysis import MonteCarlo
from repro.analysis.parallel import (default_chunksize, run_ordered,
                                     validate_workers)
from repro.errors import AnalysisError


def _square(value):
    """Module-level so the pool can pickle it."""
    return value * value


def _seeded_gaussian(seed):
    rng = np.random.default_rng(seed)
    return {"v": float(rng.normal(0.0, 1.0))}


class TestChunkHeuristic:
    def test_four_chunks_per_worker(self):
        # 80 tasks on 2 workers: 8 chunks of 10.
        assert default_chunksize(80, 2) == 10

    def test_small_populations_stay_one_per_submission(self):
        assert default_chunksize(3, 4) == 1
        assert default_chunksize(1, 1) == 1

    def test_ceil_division_leaves_no_orphan_chunk(self):
        # 81 tasks / (2 workers * 4) -> ceil = 11 per chunk.
        assert default_chunksize(81, 2) == 11

    def test_degenerate_inputs(self):
        assert default_chunksize(0, 4) == 1


class TestRunOrdered:
    def test_results_keep_task_order(self):
        tasks = [(k,) for k in range(23)]
        results = run_ordered(_square, tasks, n_workers=2)
        assert results == [k * k for k in range(23)]

    def test_explicit_chunksize_is_honoured(self):
        tasks = [(k,) for k in range(10)]
        for chunksize in (1, 3, 10, 99):
            assert run_ordered(_square, tasks, 2,
                               chunksize=chunksize) == \
                [k * k for k in range(10)]

    def test_chunksize_validated(self):
        with pytest.raises(AnalysisError):
            run_ordered(_square, [(1,)], 2, chunksize=0)

    def test_workers_validation(self):
        assert validate_workers(None) == 1
        with pytest.raises(AnalysisError):
            validate_workers(0)


class TestChunkedMonteCarlo:
    def test_chunked_pool_is_bit_identical_to_serial(self):
        """Enough seeds that the default chunksize exceeds one: the
        summaries must still be bit-identical to the serial loop."""
        n_runs = 24  # chunksize 3 on 2 workers
        assert default_chunksize(n_runs, 2) > 1
        serial = MonteCarlo(_seeded_gaussian, n_runs=n_runs).run()
        chunked = MonteCarlo(_seeded_gaussian, n_runs=n_runs,
                             n_workers=2).run()
        np.testing.assert_array_equal(serial["v"].values,
                                      chunked["v"].values)
        assert serial["v"].mean == chunked["v"].mean
        assert serial["v"].std == chunked["v"].std
        assert serial["v"].p05 == chunked["v"].p05


def _failing_metric(seed):
    """Module-level Monte-Carlo metric that fails a hard solve: the
    worker catches the ConvergenceError and ships it back as data."""
    from repro.devices.diode import Diode, DiodeParameters
    from repro.spice import Circuit, NewtonOptions, operating_point
    from repro.spice.strategies import NewtonStrategy

    ckt = Circuit(f"hard_diode_{seed}")
    ckt.add_vsource("V1", "in", "0", 8.0)
    ckt.add_resistor("RS", "in", "a", 10.0)
    ckt.add_diode("D1", "a", "0",
                  Diode(DiodeParameters(name="j", i_s=1e-16)))
    operating_point(ckt, NewtonOptions(max_iterations=5),
                    strategies=(NewtonStrategy(),))
    return {"v": 0.0}  # unreachable


class _Unpicklable:
    def __reduce__(self):
        raise TypeError("deliberately unpicklable")

    def __repr__(self):
        return "<opaque report>"


class TestExceptionFidelity:
    def test_convergence_error_pickles_with_diagnostics(self):
        import pickle

        from repro.errors import ConvergenceError

        with pytest.raises(ConvergenceError) as excinfo:
            _failing_metric(0)
        original = excinfo.value
        restored = pickle.loads(pickle.dumps(original))
        assert isinstance(restored, ConvergenceError)
        assert str(restored) == str(original)
        assert restored.iterations == original.iterations
        assert restored.stage == original.stage
        assert restored.diagnostics is not None
        assert restored.diagnostics.circuit == \
            original.diagnostics.circuit
        assert [s.strategy for s in restored.diagnostics.stages] == \
            [s.strategy for s in original.diagnostics.stages]
        assert restored.diagnostics.stages[0].residuals == \
            original.diagnostics.stages[0].residuals

    def test_unpicklable_diagnostics_degrade_not_poison(self):
        import pickle

        from repro.errors import ConvergenceError

        error = ConvergenceError("solve failed", iterations=7,
                                 diagnostics=_Unpicklable(),
                                 stage="newton")
        restored = pickle.loads(pickle.dumps(error))
        assert restored.iterations == 7
        assert restored.stage == "newton"
        assert "opaque report" in restored.diagnostics

    def test_diagnostics_survive_worker_round_trip(self):
        """The real pool: a worker-side ConvergenceError re-raised in
        the parent under n_workers > 1 must still carry its full
        SolverDiagnostics, not a stripped-down copy."""
        from repro.analysis import MonteCarlo
        from repro.errors import ConvergenceError

        with pytest.raises(ConvergenceError) as excinfo:
            MonteCarlo(_failing_metric, n_runs=4, n_workers=2).run()
        error = excinfo.value
        assert error.stage == "newton"
        assert error.iterations is not None
        assert error.diagnostics is not None
        assert error.diagnostics.stages
        assert error.diagnostics.stages[0].residuals


# -- shared-memory plan cache ---------------------------------------------


def _publish_or_skip(payload):
    from repro.analysis import parallel as parallel_mod

    plan = parallel_mod.publish_plan(payload)
    if plan is None:
        pytest.skip("shared memory unavailable on this platform")
    return plan


class TestSharedPlanCache:
    """publish/fetch round trip, attach caching, lifetime hygiene."""

    def test_round_trip_counts_one_miss_then_hits(self):
        from repro import telemetry
        from repro.analysis import parallel as parallel_mod

        plan = _publish_or_skip({"answer": 42, "vector": [1.0, 2.0]})
        try:
            with telemetry.tracing("shm-plan") as trace:
                first = parallel_mod.fetch_plan(plan.token)
                second = parallel_mod.fetch_plan(plan.token)
            assert first == {"answer": 42, "vector": [1.0, 2.0]}
            assert second is first  # cache hit returns the same object
            counters = trace.total_counters()
            assert counters["shm_plan_misses"] == 1
            assert counters["shm_plan_hits"] == 1
        finally:
            parallel_mod._attached_plans.pop(plan.token.name, None)
            plan.close()

    def test_close_is_idempotent_and_unlinks(self):
        from repro.analysis import parallel as parallel_mod

        plan = _publish_or_skip(list(range(100)))
        name = plan.token.name
        plan.close()
        plan.close()  # second close: no-op, no exception
        with pytest.raises(FileNotFoundError):
            parallel_mod._attach_untracked(name)

    def test_token_is_a_tiny_fixed_size_handle(self):
        """The whole point: per-task payload carries a (name, size)
        token, not the plan itself."""
        import pickle

        plan = _publish_or_skip({"bulk": list(range(5000))})
        try:
            assert len(pickle.dumps(plan.token)) * 10 < plan.nbytes
        finally:
            plan.close()

    def test_publish_degrades_to_none_when_platform_refuses(
            self, monkeypatch):
        from repro.analysis import parallel as parallel_mod

        if parallel_mod._shared_memory is None:
            pytest.skip("shared memory unavailable on this platform")

        def refuse(*args, **kwargs):
            raise OSError("no /dev/shm")

        monkeypatch.setattr(parallel_mod._shared_memory,
                            "SharedMemory", refuse)
        assert parallel_mod.publish_plan({"x": 1}) is None


class TestShmMonteCarlo:
    """The pool ships a PlanToken per task; results must be
    bit-identical to the serial loop either way."""

    def test_shm_modes_are_bit_identical_to_serial(self):
        from repro.analysis.parallel import shm_available

        serial = MonteCarlo(_seeded_gaussian, n_runs=12).run()
        runs = {"off": MonteCarlo(_seeded_gaussian, n_runs=12,
                                  n_workers=2, shm="off").run()}
        if shm_available():
            runs["on"] = MonteCarlo(_seeded_gaussian, n_runs=12,
                                    n_workers=2, shm="on").run()
        for mode, run in runs.items():
            assert run.failed_seeds == serial.failed_seeds
            for name in serial:
                assert np.array_equal(run[name].values,
                                      serial[name].values), mode

    def test_no_leaked_segments_after_a_campaign(self):
        import glob
        import os

        from repro.analysis.parallel import PLAN_PREFIX, shm_available

        if not (shm_available() and os.path.isdir("/dev/shm")):
            pytest.skip("no /dev/shm to inspect")
        pattern = f"/dev/shm/{PLAN_PREFIX}*"
        before = set(glob.glob(pattern))
        MonteCarlo(_seeded_gaussian, n_runs=8, n_workers=2,
                   shm="on").run()
        assert set(glob.glob(pattern)) <= before

    def test_shm_on_without_support_raises(self, monkeypatch):
        import repro.analysis.montecarlo as mc_mod

        monkeypatch.setattr(mc_mod, "publish_plan", lambda payload: None)
        mc = MonteCarlo(_seeded_gaussian, n_runs=4, n_workers=2,
                        shm="on")
        with pytest.raises(AnalysisError, match="shm"):
            mc.run()

    def test_shm_auto_falls_back_to_classic_pickling(self, monkeypatch):
        import repro.analysis.montecarlo as mc_mod

        monkeypatch.setattr(mc_mod, "publish_plan", lambda payload: None)
        serial = MonteCarlo(_seeded_gaussian, n_runs=8).run()
        fallback = MonteCarlo(_seeded_gaussian, n_runs=8,
                              n_workers=2).run()  # shm="auto"
        for name in serial:
            assert np.array_equal(fallback[name].values,
                                  serial[name].values)

    def test_shm_mode_validated(self):
        with pytest.raises(AnalysisError, match="shm"):
            MonteCarlo(_seeded_gaussian, shm="sometimes")


def _sparse_inverter_build():
    """Module-level so the plan pickles: a sparse-forced STSCL
    inverter."""
    from repro.stscl import StsclGateDesign
    from repro.stscl.netlist_gen import stscl_inverter_circuit

    circuit, _ = stscl_inverter_circuit(
        StsclGateDesign.default(i_ss=1e-9), 0.4)
    circuit.matrix_backend = "sparse"
    return circuit


def _sparse_inverter_draw(seed, circuit):
    from repro.spice import LaneSpec

    rng = np.random.default_rng(seed)
    n_mos = len(circuit.mos_elements())
    return LaneSpec.mismatch(rng.normal(0.0, 2e-3, n_mos),
                             label=f"seed-{seed}")


def _sparse_inverter_measure(result):
    return {"v_diff": result.vdiff("outp", "outn")}


class TestSparsePlanRoundTrip:
    """The n_workers>1 sparse-circuit regression: a compiled plan whose
    solves run on the SuperLU backend must survive the worker round
    trip -- no C-level factorization handle may travel in the payload
    (LuReuseState degrades on pickle) and results stay bit-identical."""

    def _plan(self):
        from repro.spice import BatchedOpMetric

        return BatchedOpMetric(build=_sparse_inverter_build,
                               draw=_sparse_inverter_draw,
                               measure=_sparse_inverter_measure).plan()

    def test_sparse_plan_parallel_matches_serial(self):
        plan = self._plan()
        # Prime the parent-side caches: this solve factorizes through
        # SuperLU, so any handle leakage into the later pickled payload
        # would surface here.
        plan(0)
        serial = MonteCarlo(plan, n_runs=6).run()
        pooled = MonteCarlo(plan, n_runs=6, n_workers=2).run()
        assert pooled.failed_seeds == serial.failed_seeds == []
        for name in serial:
            assert np.array_equal(pooled[name].values,
                                  serial[name].values)

    def test_plan_compiles_exactly_once_fleet_wide(self):
        from repro import telemetry

        with telemetry.tracing("shm-compile") as trace:
            plan = self._plan()
            MonteCarlo(plan, n_runs=6, n_workers=2).run()
        counters = trace.total_counters()
        assert counters["compile_cache_misses"] == 1
