"""The deterministic process-pool helpers: ordering and chunking.

Chunking only regroups pool submissions to amortise pickle/IPC cost;
the result stream must stay element-for-element identical to the
unchunked pool -- which itself mirrors the serial loop.
"""

import numpy as np
import pytest

from repro.analysis import MonteCarlo
from repro.analysis.parallel import (default_chunksize, run_ordered,
                                     validate_workers)
from repro.errors import AnalysisError


def _square(value):
    """Module-level so the pool can pickle it."""
    return value * value


def _seeded_gaussian(seed):
    rng = np.random.default_rng(seed)
    return {"v": float(rng.normal(0.0, 1.0))}


class TestChunkHeuristic:
    def test_four_chunks_per_worker(self):
        # 80 tasks on 2 workers: 8 chunks of 10.
        assert default_chunksize(80, 2) == 10

    def test_small_populations_stay_one_per_submission(self):
        assert default_chunksize(3, 4) == 1
        assert default_chunksize(1, 1) == 1

    def test_ceil_division_leaves_no_orphan_chunk(self):
        # 81 tasks / (2 workers * 4) -> ceil = 11 per chunk.
        assert default_chunksize(81, 2) == 11

    def test_degenerate_inputs(self):
        assert default_chunksize(0, 4) == 1


class TestRunOrdered:
    def test_results_keep_task_order(self):
        tasks = [(k,) for k in range(23)]
        results = run_ordered(_square, tasks, n_workers=2)
        assert results == [k * k for k in range(23)]

    def test_explicit_chunksize_is_honoured(self):
        tasks = [(k,) for k in range(10)]
        for chunksize in (1, 3, 10, 99):
            assert run_ordered(_square, tasks, 2,
                               chunksize=chunksize) == \
                [k * k for k in range(10)]

    def test_chunksize_validated(self):
        with pytest.raises(AnalysisError):
            run_ordered(_square, [(1,)], 2, chunksize=0)

    def test_workers_validation(self):
        assert validate_workers(None) == 1
        with pytest.raises(AnalysisError):
            validate_workers(0)


class TestChunkedMonteCarlo:
    def test_chunked_pool_is_bit_identical_to_serial(self):
        """Enough seeds that the default chunksize exceeds one: the
        summaries must still be bit-identical to the serial loop."""
        n_runs = 24  # chunksize 3 on 2 workers
        assert default_chunksize(n_runs, 2) > 1
        serial = MonteCarlo(_seeded_gaussian, n_runs=n_runs).run()
        chunked = MonteCarlo(_seeded_gaussian, n_runs=n_runs,
                             n_workers=2).run()
        np.testing.assert_array_equal(serial["v"].values,
                                      chunked["v"].values)
        assert serial["v"].mean == chunked["v"].mean
        assert serial["v"].std == chunked["v"].std
        assert serial["v"].p05 == chunked["v"].p05
