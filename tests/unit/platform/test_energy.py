"""Unit tests for the energy planner."""

import pytest

from repro.adc import FaiAdc
from repro.errors import DesignError
from repro.platform_msys.energy import (
    CR2032_ENERGY_J,
    AcquisitionPlan,
    average_power,
    battery_lifetime,
    sustainable_duty,
)
from repro.pmu import PowerManagementUnit


@pytest.fixture(scope="module")
def pmu():
    return PowerManagementUnit(FaiAdc(ideal=True, seed=0))


class TestPlan:
    def test_sleep_fraction(self):
        plan = AcquisitionPlan(duty_segments=((0.1, 800.0),
                                              (0.05, 8e3)))
        assert plan.sleep_fraction == pytest.approx(0.85)

    def test_validation(self):
        with pytest.raises(DesignError):
            AcquisitionPlan(duty_segments=((1.5, 800.0),))
        with pytest.raises(DesignError):
            AcquisitionPlan(duty_segments=((0.5, -1.0),))


class TestAveragePower:
    def test_weighted_sum(self, pmu):
        plan = AcquisitionPlan(duty_segments=((1.0, 800.0),),
                               sleep_power=0.0)
        assert average_power(pmu, plan) == pytest.approx(
            pmu.operating_point(800.0).total_power)

    def test_duty_cycling_saves(self, pmu):
        always = AcquisitionPlan(duty_segments=((1.0, 8e3),))
        bursty = AcquisitionPlan(duty_segments=((0.1, 8e3),))
        assert (average_power(pmu, bursty)
                < 0.2 * average_power(pmu, always))


class TestLifetime:
    def test_coin_cell_years_at_low_rate(self, pmu):
        """The headline the nW numbers buy: a CR2032 runs the ADC
        continuously at 800 S/s for decades (converter only)."""
        plan = AcquisitionPlan(duty_segments=((1.0, 800.0),),
                               sleep_power=0.0)
        lifetime_years = battery_lifetime(pmu, plan) / (3600 * 24 * 365)
        assert lifetime_years > 100.0

    def test_scaling_tradeoff(self, pmu):
        """100x the rate costs ~100x the lifetime -- linear scaling."""
        slow = AcquisitionPlan(duty_segments=((1.0, 800.0),),
                               sleep_power=0.0)
        fast = AcquisitionPlan(duty_segments=((1.0, 80e3),),
                               sleep_power=0.0)
        ratio = battery_lifetime(pmu, slow) / battery_lifetime(pmu, fast)
        assert ratio == pytest.approx(100.0, rel=0.02)

    def test_validation(self, pmu):
        plan = AcquisitionPlan(duty_segments=((1.0, 800.0),))
        with pytest.raises(DesignError):
            battery_lifetime(pmu, plan, battery_energy=0.0)


class TestHarvesting:
    def test_ten_uw_harvest_covers_80k_partially(self, pmu):
        duty = sustainable_duty(pmu, 80e3, harvest_power=1e-6)
        assert 0.1 < duty < 0.5  # ~25 % at ~4 uW active

    def test_full_duty_at_low_rate(self, pmu):
        assert sustainable_duty(pmu, 800.0,
                                harvest_power=1e-6) == 1.0

    def test_dead_harvester(self, pmu):
        assert sustainable_duty(pmu, 800.0, harvest_power=5e-10,
                                sleep_power=1e-9) == 0.0

    def test_validation(self, pmu):
        with pytest.raises(DesignError):
            sustainable_duty(pmu, 800.0, harvest_power=0.0)
