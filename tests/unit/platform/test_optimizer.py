"""Unit tests for the STSCL design-space optimizer."""

import pytest

from repro.errors import DesignError
from repro.platform_msys import optimize_gate_design
from repro.stscl import minimum_supply


class TestOptimizer:
    def test_meets_frequency(self):
        point = optimize_gate_design(f_op=100e3)
        assert point.design.max_frequency(1) >= 100e3 * (1 - 1e-9)

    def test_respects_noise_margin(self):
        point = optimize_gate_design(f_op=10e3, min_noise_margin=0.05)
        assert point.noise_margin >= 0.05

    def test_supply_has_margin_over_minimum(self):
        point = optimize_gate_design(f_op=10e3, vdd_margin=0.05)
        assert point.vdd == pytest.approx(
            minimum_supply(point.design) + 0.05, abs=1e-6)

    def test_tighter_margin_needs_bigger_swing(self):
        loose = optimize_gate_design(f_op=10e3, min_noise_margin=0.03)
        tight = optimize_gate_design(f_op=10e3, min_noise_margin=0.08)
        assert tight.design.v_sw >= loose.design.v_sw
        assert tight.power_per_gate >= loose.power_per_gate

    def test_power_scales_with_frequency(self):
        slow = optimize_gate_design(f_op=1e3)
        fast = optimize_gate_design(f_op=100e3)
        assert fast.power_per_gate > 50.0 * slow.power_per_gate

    def test_infeasible_margin_raises(self):
        with pytest.raises(DesignError):
            optimize_gate_design(f_op=1e3, min_noise_margin=0.5)

    def test_logic_depth_raises_current(self):
        shallow = optimize_gate_design(f_op=1e4, logic_depth=1)
        deep = optimize_gate_design(f_op=1e4, logic_depth=8)
        assert deep.design.i_ss > 7.0 * shallow.design.i_ss
