"""Unit tests for the mixed-signal platform front end."""

import math

import numpy as np
import pytest

from repro.errors import DesignError
from repro.platform_msys import MixedSignalPlatform


@pytest.fixture(scope="module")
def platform():
    return MixedSignalPlatform.build(seed=7)


class TestSetSampleRate:
    def test_report_fields(self, platform):
        report = platform.set_sample_rate(8e3)
        op = report.operating_point
        assert op.f_sample == 8e3
        assert op.total_power > 0.0
        assert report.encoder_f_max >= 8e3
        assert 0.2 < report.vdd_min_digital < 0.6

    def test_describe_readable(self, platform):
        text = platform.set_sample_rate(8e3).describe()
        assert "total power" in text
        assert "S/s" in text

    def test_power_scales_with_knob(self, platform):
        p1 = platform.set_sample_rate(800.0).operating_point.total_power
        p2 = platform.set_sample_rate(80e3).operating_point.total_power
        assert p2 == pytest.approx(100.0 * p1, rel=0.02)

    def test_needs_rate_before_convert(self):
        fresh = MixedSignalPlatform.build(seed=3)
        with pytest.raises(DesignError):
            fresh.convert(lambda t: 0.5, 8)


class TestConversionFlow:
    def test_convert_sine(self, platform):
        platform.set_sample_rate(8e3)
        codes = platform.convert(
            lambda t: 0.5 + 0.2 * math.sin(2 * math.pi * 500 * t), 64)
        assert codes.shape == (64,)
        assert codes.std() > 20

    def test_characterize_keys(self, platform):
        platform.set_sample_rate(80e3)
        metrics = platform.characterize(samples_per_code=4)
        assert set(metrics) == {"inl_max", "dnl_max", "enob", "sndr_db"}
        assert 5.5 < metrics["enob"] < 8.0

    def test_pll_lock_consistent_with_pmu(self, platform):
        report = platform.lock_pll(8e3)
        assert report.locked
        assert report.f_out == pytest.approx(8e3, rel=5e-3)
