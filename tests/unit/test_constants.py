"""Unit tests for repro.constants."""

import math

import pytest

from repro.constants import (
    LN2,
    T_NOMINAL,
    celsius_to_kelvin,
    kelvin_to_celsius,
    thermal_voltage,
)


class TestThermalVoltage:
    def test_room_temperature_value(self):
        # k*300.15K/q ~ 25.9 mV
        assert thermal_voltage(300.15) == pytest.approx(25.87e-3, rel=1e-3)

    def test_nominal_default(self):
        assert thermal_voltage() == pytest.approx(
            thermal_voltage(T_NOMINAL))

    def test_scales_linearly_with_temperature(self):
        assert thermal_voltage(600.0) == pytest.approx(
            2.0 * thermal_voltage(300.0))

    def test_rejects_nonpositive_temperature(self):
        with pytest.raises(ValueError):
            thermal_voltage(0.0)
        with pytest.raises(ValueError):
            thermal_voltage(-10.0)


class TestTemperatureConversion:
    def test_roundtrip(self):
        assert kelvin_to_celsius(celsius_to_kelvin(27.0)) == pytest.approx(
            27.0)

    def test_zero_celsius(self):
        assert celsius_to_kelvin(0.0) == pytest.approx(273.15)

    def test_below_absolute_zero_rejected(self):
        with pytest.raises(ValueError):
            celsius_to_kelvin(-300.0)


def test_ln2_constant():
    assert LN2 == pytest.approx(math.log(2.0))
