"""Unit tests for the track-and-hold model."""

import math

import numpy as np
import pytest

from repro.adc import SampleHold
from repro.errors import ModelError


class TestBandwidth:
    def test_conductance_formula(self):
        sh = SampleHold(i_bias=10e-9, c_hold=200e-15)
        # g = I/(n UT) ~ 10n/33.6m ~ 0.3 uS
        assert sh.track_conductance() == pytest.approx(2.97e-7, rel=0.02)

    def test_bandwidth_scales_with_bias(self):
        low = SampleHold(i_bias=1e-9)
        high = SampleHold(i_bias=100e-9)
        assert high.tracking_bandwidth() == pytest.approx(
            100.0 * low.tracking_bandwidth())

    def test_settling_error_shrinks_with_rate(self):
        sh = SampleHold(i_bias=10e-9)
        assert sh.settling_error(1e3) < sh.settling_error(1e5)

    def test_max_sample_rate_meets_resolution(self):
        sh = SampleHold(i_bias=10e-9)
        f_max = sh.max_sample_rate(resolution_bits=8)
        # At the computed rate the residual is half an LSB at 8 bits.
        assert sh.settling_error(f_max) == pytest.approx(
            2.0 ** -9, rel=0.01)


class TestNoise:
    def test_ktc_value(self):
        sh = SampleHold(c_hold=200e-15)
        # sqrt(kT/C) ~ 144 uV at 200 fF, room temperature
        assert sh.noise_rms() == pytest.approx(144e-6, rel=0.05)

    def test_noiseless_sampling_deterministic(self):
        sh = SampleHold(noisy=False)
        t = np.linspace(0.0, 1e-3, 16)
        wave = lambda x: 0.5 + 0.1 * math.sin(2e3 * math.pi * x)
        a = sh.sample(wave, t)
        b = sh.sample(wave, t)
        assert np.array_equal(a, b)
        assert a[0] == pytest.approx(0.5)

    def test_noisy_sampling_spread(self):
        sh = SampleHold(noisy=True, seed=0)
        t = np.zeros(4000)
        samples = sh.sample(lambda x: 0.5, t)
        assert samples.std() == pytest.approx(sh.noise_rms(), rel=0.1)

    def test_jitter_on_moving_signal(self):
        sh = SampleHold(noisy=True, jitter_rms=1e-6, seed=1)
        f_sig = 10e3
        wave = lambda x: math.sin(2.0 * math.pi * f_sig * x)
        t = np.full(2000, 1.0 / (4 * f_sig))  # zero-slope-free point
        samples = sh.sample(wave, t)
        assert samples.std() > 0.0


class TestValidation:
    def test_rejects_bad_bias(self):
        with pytest.raises(ModelError):
            SampleHold(i_bias=0.0)

    def test_rejects_bad_rate(self):
        with pytest.raises(ModelError):
            SampleHold().settling_error(0.0)
