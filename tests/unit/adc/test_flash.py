"""Unit tests for the coarse flash sub-ADC."""

import numpy as np
import pytest

from repro.adc import CoarseFlash, FaiAdcConfig
from repro.digital.encoder import EncoderSpec, coarse_thermometer


@pytest.fixture(scope="module")
def flash():
    return CoarseFlash(FaiAdcConfig(), i_comparator=20e-9, i_res=30e-9,
                       comparator_ideal=True)


class TestIdealFlash:
    def test_thermometer_at_code_centres(self, flash):
        cfg = flash.config
        spec = EncoderSpec()
        for segment in range(8):
            code = segment * 32 + 16
            word = flash.thermometer(cfg.code_to_voltage(code))
            assert word == coarse_thermometer(code, spec)

    def test_batch_matches_scalar(self, flash):
        cfg = flash.config
        voltages = np.linspace(cfg.v_low, cfg.v_high, 40)
        batch = flash.thermometer_batch(voltages)
        for k, v in enumerate(voltages):
            assert tuple(batch[k]) == flash.thermometer(float(v))

    def test_all_zero_below_range(self, flash):
        word = flash.thermometer(flash.config.v_low - 0.01)
        assert not any(word)

    def test_all_one_above_range(self, flash):
        word = flash.thermometer(flash.config.v_high + 0.01)
        assert all(word)

    def test_power_positive_and_scalable(self, flash):
        p1 = flash.power(1.0)
        scaled = flash.with_bias(i_comparator=2e-9, i_res=3e-9)
        p2 = scaled.power(1.0)
        assert p1 > 0.0
        assert p2 == pytest.approx(p1 / 10.0, rel=0.01)


class TestMismatchedFlash:
    def test_offsets_shift_boundaries(self):
        cfg = FaiAdcConfig()
        flash = CoarseFlash(cfg, i_comparator=20e-9, i_res=30e-9,
                            ladder_sigma=0.01, comparator_ideal=False,
                            pair_w=2e-6, pair_l=0.5e-6, seed=11)
        # Near a boundary a small-device flash decides differently from
        # ideal for some voltages.
        spec = EncoderSpec()
        disagreements = 0
        for boundary in range(32, 256, 32):
            v = cfg.v_low + boundary * cfg.lsb + 0.2 * cfg.lsb
            if flash.thermometer(v) != coarse_thermometer(
                    boundary, spec):
                disagreements += 1
        assert disagreements > 0

    def test_same_seed_same_chip(self):
        cfg = FaiAdcConfig()
        kwargs = dict(i_comparator=20e-9, i_res=30e-9, ladder_sigma=0.01,
                      comparator_ideal=False, seed=5)
        a = CoarseFlash(cfg, **kwargs)
        b = CoarseFlash(cfg, **kwargs)
        assert np.array_equal(a.bank.offsets(), b.bank.offsets())
        assert np.array_equal(a.ladder.tap_voltages(),
                              b.ladder.tap_voltages())

    def test_with_bias_keeps_mismatch(self):
        cfg = FaiAdcConfig()
        flash = CoarseFlash(cfg, i_comparator=20e-9, i_res=30e-9,
                            ladder_sigma=0.01, comparator_ideal=False,
                            seed=5)
        retuned = flash.with_bias(2e-9, 3e-9)
        assert np.array_equal(flash.bank.offsets(),
                              retuned.bank.offsets())
        assert np.allclose(flash.ladder.tap_voltages(),
                           retuned.ladder.tap_voltages())
