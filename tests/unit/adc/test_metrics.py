"""Unit tests for ADC metrology (INL/DNL histogram, FFT sine test)."""

import numpy as np
import pytest

from repro.adc.metrics import (
    coherent_frequency,
    enob_from_sndr,
    inl_dnl_from_codes,
    sine_test,
)
from repro.errors import AnalysisError


def ideal_ramp_codes(n_bits: int, per_code: int) -> np.ndarray:
    return np.repeat(np.arange(2 ** n_bits), per_code)


class TestHistogramLinearity:
    def test_ideal_ramp_zero_nonlinearity(self):
        report = inl_dnl_from_codes(ideal_ramp_codes(6, 32), 6)
        assert report.dnl_max == pytest.approx(0.0, abs=1e-12)
        assert report.inl_max == pytest.approx(0.0, abs=1e-12)
        assert report.missing_codes == ()

    def test_wide_code_shows_positive_dnl(self):
        codes = ideal_ramp_codes(4, 16).tolist()
        codes += [5] * 16  # code 5 twice as wide
        report = inl_dnl_from_codes(np.sort(np.array(codes)), 4)
        assert report.dnl[5] == pytest.approx(1.0, abs=0.15)

    def test_missing_code_detected(self):
        codes = ideal_ramp_codes(4, 16)
        codes = codes[codes != 7]
        report = inl_dnl_from_codes(np.concatenate([codes, codes]), 4)
        assert 7 in report.missing_codes
        assert report.dnl[7] == pytest.approx(-1.0, abs=1e-9)

    def test_inl_endpoint_fit(self):
        report = inl_dnl_from_codes(ideal_ramp_codes(5, 32), 5)
        assert report.inl[0] == pytest.approx(0.0)
        assert report.inl[-1] == pytest.approx(0.0)

    def test_rejects_short_record(self):
        with pytest.raises(AnalysisError):
            inl_dnl_from_codes(np.arange(16), 8)

    def test_rejects_out_of_range_codes(self):
        with pytest.raises(AnalysisError):
            inl_dnl_from_codes(np.full(4096, 300), 8)

    def test_missing_code_dnl_telescopes(self):
        """The LSB estimate averages over *all* interior bins, the
        zero-width (missing) one included.  The interior DNL then sums
        to zero by construction -- the missing code's -1 LSB is exactly
        balanced by +1/13 LSB on each of the 13 healthy interior codes
        (endpoint normalisation).  The old average over non-zero bins
        gave healthy codes 0 and a total of -1, so the cumulative INL
        drifted instead of telescoping back to the endpoint."""
        codes = ideal_ramp_codes(4, 16)
        codes = codes[codes != 7]
        report = inl_dnl_from_codes(np.concatenate([codes, codes]), 4)
        assert report.dnl[7] == pytest.approx(-1.0, abs=1e-9)
        healthy = [c for c in range(1, 15) if c != 7]
        for c in healthy:
            assert report.dnl[c] == pytest.approx(14.0 / 13.0 - 1.0,
                                                  abs=1e-9)
        assert np.sum(report.dnl) == pytest.approx(0.0, abs=1e-9)

    def test_missing_code_inl_returns_to_endpoint(self):
        codes = ideal_ramp_codes(5, 16)
        codes = codes[codes != 12]
        report = inl_dnl_from_codes(np.concatenate([codes, codes]), 5)
        assert report.inl[0] == pytest.approx(0.0, abs=1e-9)
        assert report.inl[-1] == pytest.approx(0.0, abs=1e-9)
        # Peak INL: the healthy-code surplus accumulated up to the
        # missing code, 11 * (30/29 - 1), then the -1 step.
        assert report.inl_max == pytest.approx(
            1.0 - 11.0 * (30.0 / 29.0 - 1.0), abs=1e-6)


class TestSineTest:
    def _codes(self, n_bits=8, n=4096, cycles=67, noise=0.0, seed=0):
        rng = np.random.default_rng(seed)
        t = np.arange(n) / n
        signal = 0.5 + 0.49 * np.sin(2.0 * np.pi * cycles * t)
        if noise:
            signal = signal + rng.normal(0.0, noise, size=n)
        return np.clip((signal * 2 ** n_bits).astype(int), 0,
                       2 ** n_bits - 1)

    def test_ideal_quantizer_enob(self):
        report = sine_test(self._codes(), 8)
        assert report.enob == pytest.approx(7.9, abs=0.25)

    def test_signal_bin_found(self):
        report = sine_test(self._codes(cycles=67), 8)
        assert report.signal_bin == 67

    def test_noise_lowers_enob(self):
        clean = sine_test(self._codes(), 8)
        noisy = sine_test(self._codes(noise=5e-3), 8)
        assert noisy.enob < clean.enob - 0.5

    def test_sfdr_at_least_sndr(self):
        report = sine_test(self._codes(noise=2e-3), 8)
        assert report.sfdr_db >= report.sndr_db

    def test_rejects_short_record(self):
        with pytest.raises(AnalysisError):
            sine_test(np.arange(10), 8)


def quantized_sine(n_bits: int, n: int = 4096,
                   cycles: int = 401) -> np.ndarray:
    """Full-scale coherent sine through an ideal round-to-nearest
    n-bit quantizer (no clipping distortion: amplitude (2^n - 1)/2)."""
    full = 2 ** n_bits - 1
    t = np.arange(n)
    x = full / 2.0 + (full / 2.0) * np.sin(
        2.0 * np.pi * coherent_frequency(1.0, n, cycles) * t)
    return np.clip(np.round(x), 0, full)


class TestSineTestCalibration:
    """``sine_test`` against the closed-form ideal-quantizer SNDR
    (6.02 n + 1.76 dB) -- an absolute calibration of the one-sided
    rfft power weighting (interior bins carry half the two-sided
    power; DC and Nyquist appear once)."""

    @pytest.mark.parametrize("n_bits", [6, 8, 10])
    def test_ideal_quantizer_sndr(self, n_bits):
        report = sine_test(quantized_sine(n_bits), n_bits)
        assert report.sndr_db == pytest.approx(6.02 * n_bits + 1.76,
                                               abs=0.2)

    def test_nyquist_spur_weighting(self):
        """A spur exactly at Nyquist appears once in the rfft, so its
        one-sided power must NOT be doubled: SFDR against it follows
        10*log10((A^2/2) / B^2) for signal amplitude A and Nyquist
        amplitude B."""
        n, cycles = 4096, 401
        t = np.arange(n)
        a_sig, b_nyq = 100.0, 1.0
        x = (a_sig * np.sin(2.0 * np.pi * cycles / n * t)
             + b_nyq * np.cos(np.pi * t))
        report = sine_test(x, 16)
        expected = 10.0 * np.log10((a_sig ** 2 / 2.0) / b_nyq ** 2)
        assert report.sfdr_db == pytest.approx(expected, abs=0.01)

    def test_interior_spur_weighting(self):
        """An interior-bin spur carries half the two-sided power on
        each side: SFDR = 20*log10(A/B) for two interior tones."""
        n, cycles, spur_cycles = 4096, 401, 977
        t = np.arange(n)
        a_sig, b_spur = 100.0, 1.0
        x = (a_sig * np.sin(2.0 * np.pi * cycles / n * t)
             + b_spur * np.sin(2.0 * np.pi * spur_cycles / n * t))
        report = sine_test(x, 16)
        assert report.sfdr_db == pytest.approx(
            20.0 * np.log10(a_sig / b_spur), abs=0.01)

    def test_guard_band_policy_reported(self):
        report = sine_test(quantized_sine(8), 8)
        assert report.guard_bins == (report.signal_bin - 1,
                                     report.signal_bin + 1)
        assert report.guard_power >= 0.0

    def test_guard_band_blind_spot_is_visible(self):
        """A spur dropped into a guard bin is excluded from SFDR (the
        documented blind spot) but its power shows up in the report's
        guard_power field instead of vanishing."""
        n, cycles = 4096, 401
        t = np.arange(n)
        x = (100.0 * np.sin(2.0 * np.pi * cycles / n * t)
             + 5.0 * np.sin(2.0 * np.pi * (cycles + 1) / n * t))
        report = sine_test(x, 16)
        clean = sine_test(
            100.0 * np.sin(2.0 * np.pi * cycles / n * t), 16)
        assert report.guard_power > 100.0 * clean.guard_power + 1.0


class TestHelpers:
    def test_enob_formula(self):
        assert enob_from_sndr(49.92) == pytest.approx(8.0, abs=0.01)

    def test_coherent_frequency(self):
        f = coherent_frequency(80e3, 4096, 67)
        assert f == pytest.approx(80e3 * 67 / 4096)

    def test_coherent_requires_coprime(self):
        with pytest.raises(AnalysisError):
            coherent_frequency(80e3, 4096, 64)
