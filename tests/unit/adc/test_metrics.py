"""Unit tests for ADC metrology (INL/DNL histogram, FFT sine test)."""

import numpy as np
import pytest

from repro.adc.metrics import (
    coherent_frequency,
    enob_from_sndr,
    inl_dnl_from_codes,
    sine_test,
)
from repro.errors import AnalysisError


def ideal_ramp_codes(n_bits: int, per_code: int) -> np.ndarray:
    return np.repeat(np.arange(2 ** n_bits), per_code)


class TestHistogramLinearity:
    def test_ideal_ramp_zero_nonlinearity(self):
        report = inl_dnl_from_codes(ideal_ramp_codes(6, 32), 6)
        assert report.dnl_max == pytest.approx(0.0, abs=1e-12)
        assert report.inl_max == pytest.approx(0.0, abs=1e-12)
        assert report.missing_codes == ()

    def test_wide_code_shows_positive_dnl(self):
        codes = ideal_ramp_codes(4, 16).tolist()
        codes += [5] * 16  # code 5 twice as wide
        report = inl_dnl_from_codes(np.sort(np.array(codes)), 4)
        assert report.dnl[5] == pytest.approx(1.0, abs=0.15)

    def test_missing_code_detected(self):
        codes = ideal_ramp_codes(4, 16)
        codes = codes[codes != 7]
        report = inl_dnl_from_codes(np.concatenate([codes, codes]), 4)
        assert 7 in report.missing_codes
        assert report.dnl[7] == pytest.approx(-1.0, abs=1e-9)

    def test_inl_endpoint_fit(self):
        report = inl_dnl_from_codes(ideal_ramp_codes(5, 32), 5)
        assert report.inl[0] == pytest.approx(0.0)
        assert report.inl[-1] == pytest.approx(0.0)

    def test_rejects_short_record(self):
        with pytest.raises(AnalysisError):
            inl_dnl_from_codes(np.arange(16), 8)

    def test_rejects_out_of_range_codes(self):
        with pytest.raises(AnalysisError):
            inl_dnl_from_codes(np.full(4096, 300), 8)


class TestSineTest:
    def _codes(self, n_bits=8, n=4096, cycles=67, noise=0.0, seed=0):
        rng = np.random.default_rng(seed)
        t = np.arange(n) / n
        signal = 0.5 + 0.49 * np.sin(2.0 * np.pi * cycles * t)
        if noise:
            signal = signal + rng.normal(0.0, noise, size=n)
        return np.clip((signal * 2 ** n_bits).astype(int), 0,
                       2 ** n_bits - 1)

    def test_ideal_quantizer_enob(self):
        report = sine_test(self._codes(), 8)
        assert report.enob == pytest.approx(7.9, abs=0.25)

    def test_signal_bin_found(self):
        report = sine_test(self._codes(cycles=67), 8)
        assert report.signal_bin == 67

    def test_noise_lowers_enob(self):
        clean = sine_test(self._codes(), 8)
        noisy = sine_test(self._codes(noise=5e-3), 8)
        assert noisy.enob < clean.enob - 0.5

    def test_sfdr_at_least_sndr(self):
        report = sine_test(self._codes(noise=2e-3), 8)
        assert report.sfdr_db >= report.sndr_db

    def test_rejects_short_record(self):
        with pytest.raises(AnalysisError):
            sine_test(np.arange(10), 8)


class TestHelpers:
    def test_enob_formula(self):
        assert enob_from_sndr(49.92) == pytest.approx(8.0, abs=0.01)

    def test_coherent_frequency(self):
        f = coherent_frequency(80e3, 4096, 67)
        assert f == pytest.approx(80e3 * 67 / 4096)

    def test_coherent_requires_coprime(self):
        with pytest.raises(AnalysisError):
            coherent_frequency(80e3, 4096, 64)
