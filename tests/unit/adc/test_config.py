"""Unit tests for the ADC configuration."""

import pytest

from repro.adc import FaiAdcConfig
from repro.errors import DesignError


class TestDefaults:
    def test_paper_geometry(self):
        cfg = FaiAdcConfig()
        assert cfg.n_bits == 8
        assert cfg.n_codes == 256
        assert cfg.folding_factor == 8
        assert cfg.n_fine_signals == 32
        assert cfg.interpolation_factor == 8  # the paper's factor

    def test_lsb(self):
        cfg = FaiAdcConfig()
        assert cfg.lsb == pytest.approx(0.6 / 256)

    def test_code_voltage_roundtrip(self):
        cfg = FaiAdcConfig()
        for code in (0, 1, 127, 255):
            assert cfg.voltage_to_code(cfg.code_to_voltage(code)) == code

    def test_voltage_to_code_clamps(self):
        cfg = FaiAdcConfig()
        assert cfg.voltage_to_code(0.0) == 0
        assert cfg.voltage_to_code(1.5) == 255


class TestValidation:
    def test_range_must_ascend(self):
        with pytest.raises(DesignError):
            FaiAdcConfig(v_low=0.8, v_high=0.2)

    def test_supply_must_cover_range(self):
        with pytest.raises(DesignError):
            FaiAdcConfig(vdd=0.7)

    def test_folder_count_must_divide(self):
        with pytest.raises(DesignError):
            FaiAdcConfig(n_folders=3)

    def test_minimum_bits(self):
        with pytest.raises(DesignError):
            FaiAdcConfig(coarse_bits=0)

    def test_alternate_geometry(self):
        cfg = FaiAdcConfig(coarse_bits=2, fine_bits=4, n_folders=4)
        assert cfg.n_bits == 6
        assert cfg.interpolation_factor == 4
