"""Unit tests for the fine folding-and-interpolating path."""

import numpy as np
import pytest

from repro.adc import FaiAdcConfig, FineFoldingPath
from repro.digital.encoder import EncoderSpec, cyclic_fine_thermometer
from repro.errors import ModelError


@pytest.fixture(scope="module")
def ideal_path():
    return FineFoldingPath(FaiAdcConfig(), i_unit=20e-9, ideal=True)


class TestIdealPath:
    def test_fine_code_matches_golden_everywhere(self, ideal_path):
        cfg = ideal_path.config
        spec = EncoderSpec()
        voltages = np.array([cfg.code_to_voltage(c) for c in range(256)])
        words = ideal_path.fine_code(voltages)
        for code in range(256):
            expected = cyclic_fine_thermometer(code, spec)
            assert tuple(words[code]) == expected, code

    def test_signal_count(self, ideal_path):
        signals = ideal_path.signals(np.array([0.5]))
        assert signals.shape == (32, 1)

    def test_crossings_cover_all_boundaries(self, ideal_path):
        cfg = ideal_path.config
        crossings = ideal_path.crossing_voltages()
        # Every interior code boundary must have a crossing close by
        # (edge signals may add extra crossings just outside the first
        # code, from the dummy folds -- harmless).
        for boundary in range(1, 256):
            target = cfg.v_low + boundary * cfg.lsb
            distance = np.min(np.abs(crossings - target))
            assert distance < 0.15 * cfg.lsb, boundary

    def test_branch_count_accounts_dummies(self, ideal_path):
        # 4 folders x (8 + 2*2 dummies) + 48 mirrors + 32 comparators
        assert ideal_path.branch_count() == 4 * 12 + 48 + 32

    def test_power_linear_in_unit_current(self, ideal_path):
        p1 = ideal_path.power(1.0)
        p2 = ideal_path.with_bias(40e-9).power(1.0)
        assert p2 == pytest.approx(2.0 * p1)


class TestMismatchedPath:
    def test_same_seed_same_chip(self):
        cfg = FaiAdcConfig()
        a = FineFoldingPath(cfg, i_unit=20e-9, seed=3)
        b = FineFoldingPath(cfg, i_unit=20e-9, seed=3)
        v = np.linspace(cfg.v_low, cfg.v_high, 100)
        assert np.array_equal(a.fine_code(v), b.fine_code(v))

    def test_with_bias_preserves_pattern(self):
        cfg = FaiAdcConfig()
        path = FineFoldingPath(cfg, i_unit=20e-9, seed=3)
        retuned = path.with_bias(2e-9)
        v = np.linspace(cfg.v_low, cfg.v_high, 100)
        assert np.array_equal(path.fine_code(v), retuned.fine_code(v))

    def test_mismatch_moves_crossings_slightly(self):
        cfg = FaiAdcConfig()
        ideal = FineFoldingPath(cfg, i_unit=20e-9, ideal=True)
        chip = FineFoldingPath(cfg, i_unit=20e-9, seed=3)
        shift = chip.crossing_voltages()[:255] \
            - ideal.crossing_voltages()[:255]
        assert 0.0 < np.abs(shift).max() < 3.0 * cfg.lsb
        assert np.abs(shift).mean() < 1.0 * cfg.lsb

    def test_rejects_bad_unit_current(self):
        with pytest.raises(ModelError):
            FineFoldingPath(FaiAdcConfig(), i_unit=0.0)
