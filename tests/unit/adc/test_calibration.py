"""Unit tests for the foreground offset calibration extension."""

import numpy as np
import pytest

from repro.adc import FaiAdc, FaiAdcConfig
from repro.adc.folding import FineFoldingPath
from repro.errors import ModelError


def comparator_dominated_path(seed: int = 4) -> FineFoldingPath:
    """A chip whose only significant error is comparator offsets
    (huge folder devices, ideal mirrors)."""
    return FineFoldingPath(FaiAdcConfig(), i_unit=26e-9,
                           pair_w=200e-6, pair_l=50e-6,
                           mirror_sigma=0.0,
                           comparator_sigma_rel=0.05, seed=seed)


def worst_crossing_error_lsb(path: FineFoldingPath) -> float:
    """Worst per-comparator crossing displacement from its own grid."""
    cfg = path.config
    grid = np.linspace(cfg.v_low, cfg.v_high, 256 * 64 + 1)
    currents = path.signals(grid) \
        + (path._comp_offsets * path.i_unit)[:, None]
    worst = 0.0
    for m in range(cfg.n_fine_signals):
        row = currents[m]
        flips = np.nonzero(np.diff(np.signbit(row)))[0]
        own = cfg.v_low + np.arange(m + 1 - 32, 290, 32) * cfg.lsb
        for i in flips:
            x = grid[i] - row[i] * (grid[i + 1] - grid[i]) \
                / (row[i + 1] - row[i])
            worst = max(worst, float(np.min(np.abs(own - x)) / cfg.lsb))
    return worst


class TestTrim:
    def test_cancels_comparator_offsets(self):
        path = comparator_dominated_path()
        before = worst_crossing_error_lsb(path)
        after = worst_crossing_error_lsb(path.calibrated())
        assert before > 1.0
        assert after < 0.3 * before

    def test_residual_set_by_trim_resolution(self):
        path = comparator_dominated_path()
        coarse_trim = path.calibrated(trim_resolution_rel=0.02)
        fine_trim = path.calibrated(trim_resolution_rel=0.001)
        assert (worst_crossing_error_lsb(fine_trim)
                <= worst_crossing_error_lsb(coarse_trim) + 1e-9)

    def test_original_chip_untouched(self):
        path = comparator_dominated_path()
        offsets_before = path._comp_offsets.copy()
        path.calibrated()
        assert np.array_equal(path._comp_offsets, offsets_before)

    def test_recalibration_converges(self):
        """A second pass only cleans up what the trim range clipped on
        the first (offsets beyond +/-10 % of i_unit): it must move the
        trims little and never make the crossings worse."""
        path = comparator_dominated_path().calibrated()
        twice = path.calibrated()
        assert np.abs(path._comp_offsets
                      - twice._comp_offsets).max() < 0.02
        assert (worst_crossing_error_lsb(twice)
                <= worst_crossing_error_lsb(path) + 1e-6)

    def test_rejects_bad_resolution(self):
        with pytest.raises(ModelError):
            comparator_dominated_path().calibrated(
                trim_resolution_rel=0.0)


class TestChipLevel:
    def test_calibrated_adc_not_worse(self):
        """At the full-chip level the trim removes the comparator
        contribution; ladder / coarse / per-fold folder errors remain,
        so the improvement is modest but never harmful."""
        from repro.adc import linearity_test
        adc = FaiAdc(ideal=False, seed=1)
        before = linearity_test(adc, samples_per_code=12)
        after = linearity_test(adc.calibrated(), samples_per_code=12)
        assert after.inl_max <= before.inl_max * 1.15

    def test_calibrated_preserves_bias_and_config(self):
        adc = FaiAdc(ideal=False, seed=2)
        trimmed = adc.calibrated()
        assert trimmed.bias == adc.bias
        assert trimmed.config is adc.config
