"""Unit tests for the assembled FAI ADC."""

import numpy as np
import pytest

from repro.adc import FaiAdc
from repro.adc.fai import AdcBiasPoint, NOMINAL_BIAS_80K
from repro.errors import ModelError


class TestIdealConversion:
    def test_every_code_centre_exact(self, ideal_adc):
        cfg = ideal_adc.config
        voltages = np.array([cfg.code_to_voltage(c) for c in range(256)])
        codes = ideal_adc.convert_batch(voltages)
        assert np.array_equal(codes, np.arange(256))

    def test_scalar_matches_batch(self, ideal_adc):
        cfg = ideal_adc.config
        for code in (0, 1, 31, 32, 128, 255):
            v = cfg.code_to_voltage(code)
            assert ideal_adc.convert(v) == ideal_adc.convert_batch(
                np.array([v]))[0]

    def test_monotonic_in_range(self, ideal_adc):
        cfg = ideal_adc.config
        ramp = np.linspace(cfg.v_low, cfg.v_high, 4096)
        codes = ideal_adc.convert_batch(ramp)
        assert np.all(np.diff(codes) >= 0)

    def test_ideal_has_no_noise(self, ideal_adc):
        assert ideal_adc.noise_rms == 0.0


class TestBiasScaling:
    def test_codes_invariant_under_bias_scaling(self, chip_adc):
        """The single-knob property: retuning the bias leaves the
        static transfer function untouched (same chip, same codes)."""
        cfg = chip_adc.config
        voltages = np.linspace(cfg.v_low, cfg.v_high, 300)
        slow = chip_adc.scaled(0.01)
        assert np.array_equal(chip_adc.convert_batch(voltages),
                              slow.convert_batch(voltages))

    def test_power_scales_linearly(self, chip_adc):
        p_full = chip_adc.analog_power()
        p_tenth = chip_adc.scaled(0.1).analog_power()
        assert p_tenth == pytest.approx(p_full / 10.0, rel=0.02)

    def test_bias_point_scaling(self):
        bias = NOMINAL_BIAS_80K.scaled(0.5)
        assert bias.i_unit == pytest.approx(NOMINAL_BIAS_80K.i_unit / 2)
        with pytest.raises(ModelError):
            NOMINAL_BIAS_80K.scaled(0.0)

    def test_max_sample_rate_scales_linearly(self, chip_adc):
        full = chip_adc.max_sample_rate()
        slow = chip_adc.scaled(0.01).max_sample_rate()
        assert full == pytest.approx(100.0 * slow, rel=1e-6)

    def test_nominal_bias_covers_80ksps_with_margin(self, chip_adc):
        """The 80 kS/s design point must not sit at the edge of any
        settling constraint."""
        assert chip_adc.max_sample_rate() > 2.0 * 80e3

    def test_branch_current_keys(self, chip_adc):
        branches = chip_adc.analog_branch_currents()
        assert set(branches) == {"fine_path", "coarse_comparators",
                                 "ladder", "sample_hold"}
        assert all(v > 0 for v in branches.values())


class TestChipBehaviour:
    def test_same_seed_same_codes(self):
        cfg_voltages = np.linspace(0.25, 0.75, 200)
        a = FaiAdc(seed=9)
        b = FaiAdc(seed=9)
        assert np.array_equal(a.convert_batch(cfg_voltages),
                              b.convert_batch(cfg_voltages))

    def test_different_seeds_differ(self):
        voltages = np.linspace(0.2, 0.8, 2000)
        a = FaiAdc(seed=9)
        b = FaiAdc(seed=10)
        assert not np.array_equal(a.convert_batch(voltages),
                                  b.convert_batch(voltages))

    def test_noisy_conversion_differs_from_clean(self, chip_adc):
        v = np.full(500, 0.5 + chip_adc.config.lsb * 0.5)
        clean = chip_adc.convert_batch(v)
        noisy = chip_adc.convert_batch(v, noisy=True)
        assert np.unique(clean).size == 1
        assert np.unique(noisy).size > 1

    def test_sample_and_convert_pipeline(self, ideal_adc):
        import math
        cfg = ideal_adc.config
        mid = 0.5 * (cfg.v_low + cfg.v_high)
        wave = lambda t: mid + 0.2 * math.sin(2.0 * math.pi * 1e3 * t)
        t = np.arange(64) / 80e3
        codes = ideal_adc.sample_and_convert(wave, t)
        assert codes.shape == (64,)
        assert codes.min() >= 0 and codes.max() <= 255
        assert codes.std() > 10  # the sine actually modulates the code
