"""Unit tests for transition-level metrology and its agreement with
the histogram method."""

import numpy as np
import pytest

from repro.adc import FaiAdc
from repro.adc.metrics import (
    code_transition_levels,
    inl_dnl_from_codes,
    inl_dnl_from_transitions,
)
from repro.errors import AnalysisError


def staircase(v: float, lsb: float = 1.0 / 16.0) -> int:
    """A perfect 4-bit quantizer on [0, 1]."""
    return max(0, min(15, int(v / lsb)))


class TestTransitionSearch:
    def test_finds_ideal_transitions(self):
        transitions = code_transition_levels(staircase, 4, 0.0, 1.0,
                                             resolution=1e-5)
        expected = np.arange(1, 16) / 16.0
        assert np.allclose(transitions, expected, atol=1e-4)

    def test_respects_resolution(self):
        coarse = code_transition_levels(staircase, 4, 0.0, 1.0,
                                        resolution=1e-2)
        fine = code_transition_levels(staircase, 4, 0.0, 1.0,
                                      resolution=1e-5)
        expected = np.arange(1, 16) / 16.0
        assert (np.abs(fine - expected).max()
                < np.abs(coarse - expected).max() + 1e-5)

    def test_range_validation(self):
        with pytest.raises(AnalysisError):
            code_transition_levels(staircase, 4, 1.0, 0.0)


class TestTransitionLinearity:
    def test_ideal_staircase_is_linear(self):
        transitions = code_transition_levels(staircase, 4, 0.0, 1.0)
        report = inl_dnl_from_transitions(transitions, 4)
        assert report.inl_max < 0.01
        assert report.dnl_max < 0.01

    def test_known_wide_code(self):
        transitions = (np.arange(1, 16) / 16.0).copy()
        transitions[7:] += 1.0 / 32.0  # code 7 half an LSB wide extra
        report = inl_dnl_from_transitions(transitions, 4)
        # The endpoint-fit LSB also stretches by 0.5/14, so the wide
        # code reads 1.5 * 14/14.5 - 1 = +0.448 and every other
        # interior code -0.034.
        assert report.dnl[7] == pytest.approx(0.448, abs=0.01)
        assert report.dnl[3] == pytest.approx(-0.034, abs=0.01)

    def test_shape_validation(self):
        with pytest.raises(AnalysisError):
            inl_dnl_from_transitions(np.arange(5), 4)


class TestBracketRecovery:
    """Regression for the stale-bound early exit: when the carried-over
    bracket reads at/above the target, the search must re-bisect from
    ``v_low`` rather than record the bound verbatim."""

    N_CODES = 16
    T = np.arange(1, N_CODES) / N_CODES

    def _probe_count_before_target(self, target: int) -> int:
        """Call index at which the servo loop for ``target`` opens
        (found by replaying a stable converter: the full-scale check at
        ``v_high`` marks the second probe of every target's loop)."""
        calls = []

        def recording(v):
            calls.append(v)
            return int(np.searchsorted(self.T, v, side="right"))

        code_transition_levels(recording, 4, 0.0, 1.0)
        hi_probes = [i for i, v in enumerate(calls) if v == 1.0]
        return hi_probes[target - 1] - 1

    def test_reference_droop_is_rebisected_not_recorded(self):
        """A converter whose reference sags 1.3 LSB between the code-8
        and code-9 servo loops makes the stale bound read above the
        target persistently.  The true (sagged) transition sits well
        below the bound; recording the bound verbatim would be 0.3 LSB
        off, re-bisecting recovers it."""
        lsb = 1.0 / self.N_CODES
        shift = 1.3 * lsb
        sag_at = self._probe_count_before_target(9)

        class Drooping:
            def __init__(self, T):
                self.T = T
                self.n = 0

            def __call__(self, v):
                t = self.T - (shift if self.n >= sag_at else 0.0)
                self.n += 1
                return int(np.searchsorted(t, v, side="right"))

        measured = code_transition_levels(Drooping(self.T), 4, 0.0, 1.0)
        # Pre-sag codes measured against the original references.
        assert np.allclose(measured[:8], self.T[:8], atol=1e-3)
        # The sagged code-9 transition: bisected, not the stale bound
        # (which sits at ~T[7] = 0.4999, a 0.3 LSB error).
        assert measured[8] == pytest.approx(self.T[8] - shift,
                                            abs=0.02 * lsb)
        # Post-sag tail tracks the sagged references.
        assert np.allclose(measured[9:], self.T[9:] - shift, atol=1e-3)

    def test_dithered_narrow_code_stays_bounded(self):
        """Servo measurement of a dithered converter with a narrow
        code: threshold noise makes the stale-bound branch fire, and
        the re-bisection keeps every measured transition within the
        dither scale of the truth instead of clamping to the bound."""
        lsb = 1.0 / self.N_CODES
        thresholds = self.T.copy()
        thresholds[8] = thresholds[7] + 0.1 * lsb  # code 8: 0.1 LSB
        rng = np.random.default_rng(11)

        def dithered(v):
            noisy = v + rng.normal(0.0, 0.2 * lsb)
            return int(np.searchsorted(thresholds, noisy, side="right"))

        measured = code_transition_levels(dithered, 4, 0.0, 1.0)
        assert np.max(np.abs(measured - thresholds)) < 0.6 * lsb
        # The narrow code's measured width stays near its true 0.1 LSB
        # (bisection against a dithered oracle wanders by the noise
        # scale, but never collapses a full code).
        width = measured[8] - measured[7]
        assert abs(width - 0.1 * lsb) < 0.5 * lsb

    def test_bottom_clipped_codes_record_v_low(self):
        """Codes below the input range still short-circuit to v_low."""
        def clipped(v):
            return max(3, min(15, int(v * 16)))

        transitions = code_transition_levels(clipped, 4, 0.0, 1.0)
        assert np.all(transitions[:3] == 0.0)
        assert np.allclose(transitions[3:], np.arange(4, 16) / 16.0,
                           atol=1e-3)


class TestMethodAgreement:
    def test_histogram_and_transition_methods_agree(self):
        """Two independent measurements of the same chip must agree on
        INL within the histogram's quantisation noise."""
        adc = FaiAdc(ideal=False, seed=1)
        cfg = adc.config
        # Histogram method.
        ramp = np.linspace(cfg.v_low, cfg.v_high, 256 * 24)
        hist_report = inl_dnl_from_codes(adc.convert_batch(ramp), 8)
        # Transition method.
        transitions = code_transition_levels(
            lambda v: adc.convert(v), 8, cfg.v_low, cfg.v_high)
        trans_report = inl_dnl_from_transitions(transitions, 8)
        assert trans_report.inl_max == pytest.approx(
            hist_report.inl_max, abs=0.15)
        # Profiles correlate strongly, not just the maxima.
        corr = np.corrcoef(hist_report.inl, trans_report.inl)[0, 1]
        assert corr > 0.95

    def test_methods_agree_on_missing_code_converter(self):
        """A synthetic 5-bit converter with one zero-width code: the
        histogram method (averaging over *all* interior bins, empty
        one included) and the transition method must agree code-by-code
        within 0.05 LSB -- the regression that caught the inflated-LSB
        histogram average."""
        n_bits, n_codes = 5, 32
        lsb = 1.0 / n_codes
        transitions_true = np.arange(1, n_codes) / n_codes
        transitions_true[13] = transitions_true[12]  # code 13 missing

        def convert(v):
            return int(np.searchsorted(transitions_true, v,
                                       side="right"))

        ramp = (np.linspace(0.0, 1.0, 64 * n_codes, endpoint=False)
                + lsb / 1000.0)
        hist = inl_dnl_from_codes(
            np.array([convert(v) for v in ramp]), n_bits)
        trans = inl_dnl_from_transitions(
            code_transition_levels(convert, n_bits, 0.0, 1.0), n_bits)
        assert hist.missing_codes == (13,)
        assert trans.missing_codes == (13,)
        assert np.max(np.abs(hist.dnl - trans.dnl)) < 0.05
        assert np.max(np.abs(hist.inl - trans.inl)) < 0.05
        assert hist.dnl[13] == pytest.approx(-1.0, abs=0.05)
