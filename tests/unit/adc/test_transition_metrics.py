"""Unit tests for transition-level metrology and its agreement with
the histogram method."""

import numpy as np
import pytest

from repro.adc import FaiAdc
from repro.adc.metrics import (
    code_transition_levels,
    inl_dnl_from_codes,
    inl_dnl_from_transitions,
)
from repro.errors import AnalysisError


def staircase(v: float, lsb: float = 1.0 / 16.0) -> int:
    """A perfect 4-bit quantizer on [0, 1]."""
    return max(0, min(15, int(v / lsb)))


class TestTransitionSearch:
    def test_finds_ideal_transitions(self):
        transitions = code_transition_levels(staircase, 4, 0.0, 1.0,
                                             resolution=1e-5)
        expected = np.arange(1, 16) / 16.0
        assert np.allclose(transitions, expected, atol=1e-4)

    def test_respects_resolution(self):
        coarse = code_transition_levels(staircase, 4, 0.0, 1.0,
                                        resolution=1e-2)
        fine = code_transition_levels(staircase, 4, 0.0, 1.0,
                                      resolution=1e-5)
        expected = np.arange(1, 16) / 16.0
        assert (np.abs(fine - expected).max()
                < np.abs(coarse - expected).max() + 1e-5)

    def test_range_validation(self):
        with pytest.raises(AnalysisError):
            code_transition_levels(staircase, 4, 1.0, 0.0)


class TestTransitionLinearity:
    def test_ideal_staircase_is_linear(self):
        transitions = code_transition_levels(staircase, 4, 0.0, 1.0)
        report = inl_dnl_from_transitions(transitions, 4)
        assert report.inl_max < 0.01
        assert report.dnl_max < 0.01

    def test_known_wide_code(self):
        transitions = (np.arange(1, 16) / 16.0).copy()
        transitions[7:] += 1.0 / 32.0  # code 7 half an LSB wide extra
        report = inl_dnl_from_transitions(transitions, 4)
        # The endpoint-fit LSB also stretches by 0.5/14, so the wide
        # code reads 1.5 * 14/14.5 - 1 = +0.448 and every other
        # interior code -0.034.
        assert report.dnl[7] == pytest.approx(0.448, abs=0.01)
        assert report.dnl[3] == pytest.approx(-0.034, abs=0.01)

    def test_shape_validation(self):
        with pytest.raises(AnalysisError):
            inl_dnl_from_transitions(np.arange(5), 4)


class TestMethodAgreement:
    def test_histogram_and_transition_methods_agree(self):
        """Two independent measurements of the same chip must agree on
        INL within the histogram's quantisation noise."""
        adc = FaiAdc(ideal=False, seed=1)
        cfg = adc.config
        # Histogram method.
        ramp = np.linspace(cfg.v_low, cfg.v_high, 256 * 24)
        hist_report = inl_dnl_from_codes(adc.convert_batch(ramp), 8)
        # Transition method.
        transitions = code_transition_levels(
            lambda v: adc.convert(v), 8, cfg.v_low, cfg.v_high)
        trans_report = inl_dnl_from_transitions(transitions, 8)
        assert trans_report.inl_max == pytest.approx(
            hist_report.inl_max, abs=0.15)
        # Profiles correlate strongly, not just the maxima.
        corr = np.corrcoef(hist_report.inl, trans_report.inl)[0, 1]
        assert corr > 0.95
