"""Unit tests for the ramp/sine test harnesses."""

import numpy as np
import pytest

from repro.adc.testbench import dynamic_test, linearity_test, ramp_codes
from repro.errors import AnalysisError


class TestRamp:
    def test_covers_full_code_range(self, ideal_adc):
        codes = ramp_codes(ideal_adc, samples_per_code=8)
        assert codes.min() == 0
        assert codes.max() == 255

    def test_sample_count(self, ideal_adc):
        codes = ramp_codes(ideal_adc, samples_per_code=4)
        assert codes.size == 256 * 4

    def test_rejects_bad_density(self, ideal_adc):
        with pytest.raises(AnalysisError):
            ramp_codes(ideal_adc, samples_per_code=0)


class TestLinearityHarness:
    def test_ideal_adc_is_linear(self, ideal_adc):
        report = linearity_test(ideal_adc, samples_per_code=8)
        assert report.inl_max < 0.3
        assert report.dnl_max < 0.3
        assert not report.missing_codes

    def test_chip_worse_than_ideal(self, ideal_adc, chip_adc):
        ideal = linearity_test(ideal_adc, samples_per_code=8)
        chip = linearity_test(chip_adc, samples_per_code=8)
        assert chip.inl_max > ideal.inl_max


class TestDynamicHarness:
    def test_ideal_enob_near_quantisation_limit(self, ideal_adc):
        report = dynamic_test(ideal_adc, f_sample=80e3, n_samples=1024,
                              cycles=67)
        assert report.enob == pytest.approx(7.9, abs=0.35)

    def test_chip_enob_near_paper_value(self, chip_adc):
        report = dynamic_test(chip_adc, f_sample=80e3, n_samples=2048,
                              cycles=67)
        assert report.enob == pytest.approx(6.5, abs=0.5)

    def test_sample_hold_path_runs(self, ideal_adc):
        report = dynamic_test(ideal_adc, f_sample=80e3, n_samples=256,
                              cycles=33, use_sample_hold=True)
        assert report.enob > 5.0
