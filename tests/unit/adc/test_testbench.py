"""Unit tests for the ramp/sine test harnesses."""

import numpy as np
import pytest

from repro.adc.testbench import dynamic_test, linearity_test, ramp_codes
from repro.errors import AnalysisError


class TestRamp:
    def test_covers_full_code_range(self, ideal_adc):
        codes = ramp_codes(ideal_adc, samples_per_code=8)
        assert codes.min() == 0
        assert codes.max() == 255

    def test_sample_count(self, ideal_adc):
        codes = ramp_codes(ideal_adc, samples_per_code=4)
        assert codes.size == 256 * 4

    def test_rejects_bad_density(self, ideal_adc):
        with pytest.raises(AnalysisError):
            ramp_codes(ideal_adc, samples_per_code=0)


class TestLinearityHarness:
    def test_ideal_adc_is_linear(self, ideal_adc):
        report = linearity_test(ideal_adc, samples_per_code=8)
        assert report.inl_max < 0.3
        assert report.dnl_max < 0.3
        assert not report.missing_codes

    def test_chip_worse_than_ideal(self, ideal_adc, chip_adc):
        ideal = linearity_test(ideal_adc, samples_per_code=8)
        chip = linearity_test(chip_adc, samples_per_code=8)
        assert chip.inl_max > ideal.inl_max


class TestDynamicHarness:
    def test_ideal_enob_near_quantisation_limit(self, ideal_adc):
        report = dynamic_test(ideal_adc, f_sample=80e3, n_samples=1024,
                              cycles=67)
        assert report.enob == pytest.approx(7.9, abs=0.35)

    def test_chip_enob_near_paper_value(self, chip_adc):
        report = dynamic_test(chip_adc, f_sample=80e3, n_samples=2048,
                              cycles=67)
        assert report.enob == pytest.approx(6.5, abs=0.5)

    def test_sample_hold_path_runs(self, ideal_adc):
        report = dynamic_test(ideal_adc, f_sample=80e3, n_samples=256,
                              cycles=33, use_sample_hold=True)
        assert report.enob > 5.0


class _FakeTran:
    """Minimal TranResult stand-in: a recorded ramp on two nodes."""

    def __init__(self):
        self.time = np.linspace(0.0, 1e-3, 501)
        self._waves = {"out": np.linspace(0.0, 1.0, 501),
                       "ref": np.full(501, 0.25)}

    def voltage(self, node):
        return self._waves[node]


class TestSampledTransientCodes:
    def test_codes_match_held_convert_batch(self, ideal_adc):
        from repro.adc.testbench import sampled_transient_codes

        result = _FakeTran()
        sample_times = np.linspace(1e-4, 9e-4, 32)
        cfg = ideal_adc.config
        # gain keeps the held ramp inside [v_low, v_high]: beyond
        # full scale the folding converter folds the codes back.
        codes = sampled_transient_codes(
            ideal_adc, result, "out", sample_times=sample_times,
            center=cfg.v_low, gain=0.5)
        held = cfg.v_low + 0.5 * np.interp(sample_times, result.time,
                                           result.voltage("out"))
        assert np.array_equal(codes, ideal_adc.convert_batch(held))
        # The held ramp is monotone, so the codes are too.
        assert (np.diff(codes) >= 0).all()

    def test_differential_input_subtracts_reference(self, ideal_adc):
        from repro.adc.testbench import sampled_transient_codes

        result = _FakeTran()
        sample_times = np.array([2e-4, 5e-4, 8e-4])
        diff = sampled_transient_codes(
            ideal_adc, result, "out", "ref",
            sample_times=sample_times, center=0.5)
        held = 0.5 + np.interp(sample_times, result.time,
                               result.voltage("out")
                               - result.voltage("ref"))
        assert np.array_equal(diff, ideal_adc.convert_batch(held))

    def test_rejects_empty_sample_times(self, ideal_adc):
        from repro.adc.testbench import sampled_transient_codes

        with pytest.raises(AnalysisError, match="no sample instants"):
            sampled_transient_codes(ideal_adc, _FakeTran(), "out",
                                    sample_times=np.array([]))

    def test_rejects_samples_outside_the_record(self, ideal_adc):
        from repro.adc.testbench import sampled_transient_codes

        with pytest.raises(AnalysisError):
            sampled_transient_codes(
                ideal_adc, _FakeTran(), "out",
                sample_times=np.array([5e-4, 2e-3]))
