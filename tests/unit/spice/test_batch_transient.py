"""Lockstep batched transient: equivalence, LTE min-rule, fallback.

The contract under test: :func:`batch_transient` over B lanes on a
*fixed* shared grid is numerically indistinguishable (max deviation
far inside 1e-9) from B serial :func:`transient` calls with the lane
perturbation applied; on adaptive grids the shared step obeys the
min-rule over per-lane LTE, and lanes that cannot live on the shared
grid are kicked out to the full serial ladder with recorded reasons
-- the batched-DC fallback contract, extended over time.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.devices.diode import Diode, DiodeParameters
from repro.errors import AnalysisError, ConvergenceError, NetlistError
from repro.spice import (
    Circuit,
    LaneSpec,
    TransientOptions,
    apply_lane,
    batch_transient,
    pulse_wave,
    transient,
)
from repro.spice.batch import BatchedTranMetric

DIODE = Diode(DiodeParameters(name="junction", i_s=1e-16, cj0=1e-12))

T_STOP = 8e-6


def pulse_rc_diode() -> Circuit:
    """Pulse through RC with a diode clamp: nonlinear + dynamic."""
    circuit = Circuit("batch_tran")
    circuit.add_vsource("V1", "in", "0",
                        waveform=pulse_wave(0.0, 1.0, 1e-6, 1e-7, 1e-7,
                                            2e-6, 4e-6))
    circuit.add_resistor("RS", "in", "a", 1e3)
    circuit.add_capacitor("C1", "a", "0", 1e-9)
    circuit.add_diode("D1", "a", "0", DIODE)
    return circuit


def resistor_lanes(factors) -> list[LaneSpec]:
    return [LaneSpec(resistor_scale=(("RS", float(f)),), label=f"{f:g}")
            for f in factors]


def fixed_grid(n_steps: int = 400) -> TransientOptions:
    dt = T_STOP / n_steps
    return TransientOptions(dt_initial=dt, dt_min=dt, dt_max=dt)


class TestFixedGridEquivalence:
    @pytest.mark.parametrize("matrix_backend", ["dense", "sparse"])
    def test_matches_serial_within_1e9(self, matrix_backend):
        circuit = pulse_rc_diode()
        lanes = resistor_lanes([0.5, 1.0, 2.0, 4.0])
        batch = batch_transient(circuit, lanes, T_STOP, fixed_grid(),
                                matrix_backend=matrix_backend)
        assert batch.n_failed == 0
        for lane, result in zip(lanes, batch.results):
            undo = apply_lane(circuit, lane)
            try:
                serial = transient(circuit, T_STOP, fixed_grid())
            finally:
                undo()
            assert np.array_equal(result.time, serial.time)
            for node in ("in", "a"):
                dev = np.abs(result.voltage(node)
                             - serial.voltage(node)).max()
                assert dev < 1e-9, (lane.label, node, dev)

    def test_single_lane_campaign(self):
        batch = batch_transient(pulse_rc_diode(), [LaneSpec()], T_STOP,
                                fixed_grid(100))
        assert batch.n_failed == 0
        # Breakpoints at the pulse edges ride on top of the fixed grid.
        assert len(batch.results[0].time) >= 101
        assert batch.results[0].time[-1] == pytest.approx(T_STOP)


class TestAdaptiveGrid:
    def test_lte_min_rule_shrinks_shared_grid(self):
        """A stiff lane (tiny RC, fast edges) forces the *shared* step
        down: the lockstep run over {nominal, stiff} takes more steps
        than nominal alone, and the stiff lane's rejections are
        attributed to it in the diagnostics."""
        circuit = pulse_rc_diode()
        options = TransientOptions()
        solo = batch_transient(circuit, resistor_lanes([1.0]), T_STOP,
                               options)
        both = batch_transient(circuit, resistor_lanes([1.0, 0.01]),
                               T_STOP, options)
        assert both.n_failed == 0
        assert not both.diagnostics.fallback_lanes
        assert (both.diagnostics.steps_accepted
                > solo.diagnostics.steps_accepted)
        # Both lanes share one time axis (the lockstep grid).
        assert np.array_equal(both.results[0].time, both.results[1].time)

    def test_accuracy_no_worse_than_serial(self):
        """The min-rule makes the shared grid at least as tight as any
        lane's own: each lane's adaptive lockstep waveform stays within
        a few LTE tolerances of a dense-grid reference."""
        circuit = pulse_rc_diode()
        lanes = resistor_lanes([0.5, 2.0])
        batch = batch_transient(circuit, lanes, T_STOP,
                                TransientOptions())
        for lane, result in zip(lanes, batch.results):
            undo = apply_lane(circuit, lane)
            try:
                dense = transient(circuit, T_STOP, fixed_grid(4000))
            finally:
                undo()
            resampled = np.interp(dense.time, result.time,
                                  result.voltage("a"))
            assert np.abs(resampled - dense.voltage("a")).max() < 2e-2


class TestLaneFallback:
    def test_nan_lane_fails_with_record_others_unaffected(self):
        circuit = pulse_rc_diode()
        lanes = [LaneSpec(label="nominal"),
                 LaneSpec(source_values=(("V1", float("nan")),),
                          label="poisoned")]
        batch = batch_transient(circuit, lanes, T_STOP, fixed_grid(100),
                                on_error="skip")
        assert batch.n_failed == 1
        (index, error), = batch.failures
        assert index == 1
        assert isinstance(error, ConvergenceError)
        assert batch.results[1] is None
        assert batch.results[0] is not None
        assert np.isfinite(batch.results[0].voltage("a")).all()

    def test_nan_lane_raises_under_on_error_raise(self):
        circuit = pulse_rc_diode()
        lanes = [LaneSpec(),
                 LaneSpec(source_values=(("V1", float("nan")),))]
        with pytest.raises(ConvergenceError):
            batch_transient(circuit, lanes, T_STOP, fixed_grid(100))

    def test_zero_budget_kicks_stiff_lane_to_serial(self):
        """With no rejection allowance, the stiff lane is kicked off
        the grid at its first rejection -- and still produces a full
        serial-fallback waveform, with the kick recorded."""
        circuit = pulse_rc_diode()
        lanes = resistor_lanes([1.0]) + [
            LaneSpec(resistor_scale=(("RS", 1e-4),), label="stiff")]
        with telemetry.tracing("kick") as trace:
            batch = batch_transient(circuit, lanes, T_STOP,
                                    TransientOptions(),
                                    lane_rejection_budget=0)
        assert batch.n_failed == 0
        assert [i for i, _ in batch.diagnostics.fallback_lanes] == [1]
        reason = batch.diagnostics.fallback_lanes[0][1]
        assert "budget" in reason
        # The fallback lane ran the serial engine: its grid is its own.
        assert batch.results[1] is not None
        assert not np.array_equal(batch.results[0].time,
                                  batch.results[1].time)
        counters = trace.root.total_counters()
        assert counters["batch_lane_fallbacks"] == 1

    def test_lane_samples_reconcile_with_shared_steps(self):
        """The telemetry identity the CI trace smoke asserts:
        lane_samples == steps_accepted * lanes_lockstep
        + fallback_serial_steps."""
        circuit = pulse_rc_diode()
        lanes = resistor_lanes([1.0, 2.0]) + [
            LaneSpec(resistor_scale=(("RS", 1e-4),), label="stiff")]
        with telemetry.tracing("recon") as trace:
            batch = batch_transient(circuit, lanes, T_STOP,
                                    TransientOptions(),
                                    lane_rejection_budget=0)
        assert batch.n_failed == 0
        span = trace.root.find("batch-transient")
        attrs = span.attrs
        assert attrs["lane_samples"] == (
            attrs["steps_accepted"] * attrs["lanes_lockstep"]
            + attrs["fallback_serial_steps"])
        counters = trace.root.total_counters()
        assert counters["batch_transient_steps"] == \
            attrs["steps_accepted"]
        # Fallback lanes account for every serial step inside the span.
        assert span.total_counters()["transient_steps_accepted"] == \
            attrs["fallback_serial_steps"]


class TestScopes:
    def test_per_lane_scope_windows_are_bitwise_faithful(self):
        """Each lane's triggered window replays the engine's own dense
        record exactly -- the scope sees the committed samples, not a
        resampled copy."""
        from repro.scope import EdgeTrigger, Probe, ScopeSession

        circuit = pulse_rc_diode()
        lanes = resistor_lanes([0.5, 1.0, 2.0])
        proto = ScopeSession([Probe("a")],
                             trigger=EdgeTrigger("a", level=0.3),
                             pre_samples=4, post_samples=16)
        scopes = [proto.clone() for _ in lanes]
        batch = batch_transient(circuit, lanes, T_STOP, fixed_grid(),
                                scopes=scopes)
        assert batch.n_failed == 0
        for scope, result in zip(scopes, batch.results):
            segment = scope.segments[0]
            start = int(np.searchsorted(result.time,
                                        segment.time[0] - 1e-18))
            window = result.voltage("a")[start:start + len(segment)]
            assert np.array_equal(segment.values[0], window)

    def test_clone_produces_fresh_session(self):
        from repro.scope import EdgeTrigger, Probe, ScopeSession

        proto = ScopeSession([Probe("a")],
                             trigger=EdgeTrigger("a", level=0.3))
        circuit = pulse_rc_diode()
        transient(circuit, T_STOP, fixed_grid(100), scope=proto)
        clone = proto.clone()
        # The clone is unused and independently usable...
        transient(circuit, T_STOP, fixed_grid(100), scope=clone)
        assert np.array_equal(proto.segments[0].values,
                              clone.segments[0].values)
        # ...while a used session refuses to rebind.
        with pytest.raises(AnalysisError):
            transient(circuit, T_STOP, fixed_grid(100), scope=proto)


class TestValidation:
    def test_rejects_nonpositive_t_stop(self):
        with pytest.raises(NetlistError):
            batch_transient(pulse_rc_diode(), [LaneSpec()], 0.0)

    def test_rejects_legacy_step_control(self):
        with pytest.raises(AnalysisError):
            batch_transient(pulse_rc_diode(), [LaneSpec()], T_STOP,
                            TransientOptions(step_control="legacy"))

    def test_rejects_scope_count_mismatch(self):
        from repro.scope import Probe, ScopeSession
        with pytest.raises(AnalysisError):
            batch_transient(pulse_rc_diode(), [LaneSpec(), LaneSpec()],
                            T_STOP, scopes=[ScopeSession([Probe("a")])])

    def test_rejects_empty_lanes(self):
        with pytest.raises(AnalysisError):
            batch_transient(pulse_rc_diode(), [], T_STOP)


class TestBatchedTranMetric:
    def test_spec_is_callable_serially(self):
        spec = BatchedTranMetric(
            build=pulse_rc_diode,
            draw=lambda seed, c: resistor_lanes([1.0 + 0.1 * seed])[0],
            measure=lambda r: {"v": float(r.voltage("a")[-1])},
            t_stop=T_STOP, options=fixed_grid(100))
        serial = spec(2)
        batch = batch_transient(pulse_rc_diode(),
                                [spec.draw(2, None)], T_STOP,
                                fixed_grid(100))
        batched = spec.measure(batch.results[0])
        assert serial["v"] == pytest.approx(batched["v"], abs=1e-9)

    def test_undo_restores_circuit(self):
        circuit = pulse_rc_diode()
        spec = BatchedTranMetric(
            build=lambda: circuit,
            draw=lambda seed, c: LaneSpec(
                resistor_scale=(("RS", 3.0),)),
            measure=lambda r: {"v": float(r.voltage("a")[-1])},
            t_stop=T_STOP, options=fixed_grid(50))
        r_before = circuit.element("RS").resistance
        spec(0)
        assert circuit.element("RS").resistance == r_before
