"""Hierarchical subcircuits: flat equivalence, naming, scope limits.

The compile-once/instantiate-N model is only trustworthy if a
hierarchical circuit is *indistinguishable* from its hand-flattened
twin on every analysis path -- DC, transient (including breakpoint
collection from instance-internal sources), AC, and the batched
ensemble solver.  These tests build both forms of the same topology,
naming the flat copy's nets with the ``"<instance>.<net>"`` scheme the
expander uses, and require agreement at solver precision.
"""

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.spice import (
    Circuit,
    LaneSpec,
    ac_analysis,
    batch_operating_point,
    operating_point,
    pulse_wave,
    transient,
    write_netlist,
)
from repro.spice.elements import Element
from repro.spice.subckt import Instance, Subcircuit


def rc_cell() -> Subcircuit:
    """Two-pole RC ladder cell with an internal node and a nodeset."""
    template = Circuit("rc_cell")
    template.add_resistor("r1", "a", "mid", 1e3)
    template.add_resistor("r2", "mid", "b", 2e3)
    template.add_capacitor("c1", "mid", "0", 1e-12)
    template.nodeset("mid", 0.25)
    return Subcircuit("rc", template, ("a", "b"))


def add_flat_rc(circuit: Circuit, name: str, a: str, b: str) -> None:
    """The hand-flattened twin of one ``rc_cell`` instance."""
    circuit.add_resistor(f"{name}.r1", a, f"{name}.mid", 1e3)
    circuit.add_resistor(f"{name}.r2", f"{name}.mid", b, 2e3)
    circuit.add_capacitor(f"{name}.c1", f"{name}.mid", "0", 1e-12)
    circuit.nodeset(f"{name}.mid", 0.25)


def chain(hierarchical: bool, drive=1.0) -> Circuit:
    """Two RC cells in series from a driven source to ground."""
    circuit = Circuit("chain")
    circuit.add_vsource("V1", "in", "0", drive)
    if hierarchical:
        cell = rc_cell()
        circuit.add_instance("s1", cell, {"a": "in", "b": "link"})
        circuit.add_instance("s2", cell, {"a": "link", "b": "0"})
    else:
        add_flat_rc(circuit, "s1", "in", "link")
        add_flat_rc(circuit, "s2", "link", "0")
    return circuit


def mos_cell(design) -> Subcircuit:
    """STSCL-style buffer cell: differential pair + loads + internal
    tail current source, everything the MOS/diode banks exercise."""
    template = Circuit("buf", temperature=design.temperature)
    pair = design.pair_device()
    load = design.load_device()
    template.add_mosfet("m1", drain="outn", gate="inp", source="tail",
                        bulk="0", device=pair)
    template.add_mosfet("m2", drain="outp", gate="inn", source="tail",
                        bulk="0", device=pair)
    for suffix in ("p", "n"):
        template.add_mosfet(f"mpl{suffix}", drain=f"out{suffix}",
                            gate="vbp", source="vdd",
                            bulk=f"out{suffix}", device=load)
        template.add_capacitor(f"cl{suffix}", f"out{suffix}", "0",
                               design.c_load)
    template.add_isource("itail", "tail", "0", design.i_ss)
    template.nodeset("tail", 0.1)
    return Subcircuit("buf", template,
                      ("vdd", "vbp", "inp", "inn", "outp", "outn"))


def mos_chain(hierarchical: bool, design, vdd: float = 0.4) -> Circuit:
    from repro.stscl.netlist_gen import _load_bias

    circuit = Circuit("mos_chain", temperature=design.temperature)
    circuit.add_vsource("vvdd", "vdd", "0", vdd)
    circuit.add_vsource("vvbp", "vbp", "0", _load_bias(design, vdd))
    circuit.add_vsource("vinp", "inp", "0", vdd)
    circuit.add_vsource("vinn", "inn", "0", vdd - design.v_sw)
    stages = [("s1", "inp", "inn", "m1p", "m1n"),
              ("s2", "m1p", "m1n", "m2p", "m2n")]
    if hierarchical:
        cell = mos_cell(design)
        for name, ip, inn, op, on in stages:
            circuit.add_instance(name, cell, {
                "vdd": "vdd", "vbp": "vbp", "inp": ip, "inn": inn,
                "outp": op, "outn": on})
    else:
        pair, load = design.pair_device(), design.load_device()
        for name, ip, inn, op, on in stages:
            circuit.add_mosfet(f"{name}.m1", drain=on, gate=ip,
                               source=f"{name}.tail", bulk="0",
                               device=pair)
            circuit.add_mosfet(f"{name}.m2", drain=op, gate=inn,
                               source=f"{name}.tail", bulk="0",
                               device=pair)
            for suffix, node in (("p", op), ("n", on)):
                circuit.add_mosfet(f"{name}.mpl{suffix}", drain=node,
                                   gate="vbp", source="vdd", bulk=node,
                                   device=load)
                circuit.add_capacitor(f"{name}.cl{suffix}", node, "0",
                                      design.c_load)
            circuit.add_isource(f"{name}.itail", f"{name}.tail", "0",
                                design.i_ss)
            circuit.nodeset(f"{name}.tail", 0.1)
        for node in ("m1p", "m2p"):
            circuit.nodeset(node, vdd)
        for node in ("m1n", "m2n"):
            circuit.nodeset(node, vdd - design.v_sw)
    return circuit


class TestFlatEquivalence:
    def test_dc_matches_flat(self):
        hier = operating_point(chain(True))
        flat = operating_point(chain(False))
        assert set(hier.voltages) == set(flat.voltages)
        for node, value in flat.voltages.items():
            assert hier.voltages[node] == pytest.approx(value, abs=1e-12)

    def test_mos_dc_matches_flat(self, default_design):
        hier = operating_point(mos_chain(True, default_design))
        flat = operating_point(mos_chain(False, default_design))
        for node, value in flat.voltages.items():
            assert hier.voltages[node] == pytest.approx(value, abs=1e-12)

    def test_device_ops_use_dotted_names(self, default_design):
        hier = operating_point(mos_chain(True, default_design))
        flat = operating_point(mos_chain(False, default_design))
        assert set(hier.device_ops) == set(flat.device_ops)
        assert "s1.m1" in hier.device_ops
        assert hier.device_ops["s2.mplp"].ids == pytest.approx(
            flat.device_ops["s2.mplp"].ids, rel=1e-9)

    def test_transient_matches_flat_with_internal_source(self):
        """A pulse source *inside* the cell must contribute its
        breakpoints to the parent's step control -- otherwise the two
        runs land on different time grids and diverge."""

        def build(hierarchical: bool) -> Circuit:
            wave = pulse_wave(0.0, 1e-6, delay=1e-6, rise=1e-8,
                              fall=1e-8, width=2e-6, period=10e-6)
            circuit = Circuit("pulsed")
            circuit.add_resistor("RL", "out", "0", 1e4)
            template = Circuit("cell")
            template.add_isource("ipulse", "0", "p", wave)
            template.add_resistor("rs", "p", "q", 1e3)
            template.add_capacitor("cs", "p", "0", 1e-12)
            if hierarchical:
                cell = Subcircuit("pcell", template, ("q",))
                circuit.add_instance("u1", cell, {"q": "out"})
            else:
                circuit.add_isource("u1.ipulse", "0", "u1.p", wave)
                circuit.add_resistor("u1.rs", "u1.p", "out", 1e3)
                circuit.add_capacitor("u1.cs", "u1.p", "0", 1e-12)
            return circuit

        hier = transient(build(True), t_stop=5e-6)
        flat = transient(build(False), t_stop=5e-6)
        np.testing.assert_array_equal(hier.time, flat.time)
        np.testing.assert_allclose(hier.voltages["out"],
                                   flat.voltages["out"], atol=1e-12)
        assert np.max(np.abs(hier.voltages["out"])) > 1e-3

    def test_ac_matches_flat(self):
        freqs = np.logspace(3, 8, 11)

        def with_excitation(circuit: Circuit) -> Circuit:
            circuit.element("V1").ac_mag = 1.0
            return circuit

        hier = ac_analysis(with_excitation(chain(True)), freqs)
        flat = ac_analysis(with_excitation(chain(False)), freqs)
        np.testing.assert_allclose(hier.voltages["link"],
                                   flat.voltages["link"], rtol=1e-12)

    def test_batched_lanes_match_serial(self):
        """Top-level source overrides apply per lane over a
        hierarchical circuit, matching one serial solve per value."""
        circuit = chain(True)
        lanes = [LaneSpec.source("V1", value, label=f"{value:g}")
                 for value in (0.5, 1.0, 2.0)]
        batch = batch_operating_point(circuit, lanes)
        assert not batch.failures
        for lane, value in zip(batch.points, (0.5, 1.0, 2.0)):
            serial = operating_point(chain(True, drive=value))
            for node, expected in serial.voltages.items():
                assert lane.voltages[node] == pytest.approx(expected,
                                                            abs=1e-9)

    def test_ports_tied_to_one_parent_net(self):
        """Both cell ports on the same parent net: contributions must
        accumulate, not overwrite (the np.add.at path)."""

        def build(hierarchical: bool) -> Circuit:
            circuit = Circuit("tied")
            circuit.add_vsource("V1", "x", "0", 1.0)
            circuit.add_resistor("RG", "x", "0", 1e4)
            if hierarchical:
                circuit.add_instance("u1", rc_cell(),
                                     {"a": "x", "b": "x"})
            else:
                add_flat_rc(circuit, "u1", "x", "x")
            return circuit

        hier = operating_point(build(True))
        flat = operating_point(build(False))
        for node, value in flat.voltages.items():
            assert hier.voltages[node] == pytest.approx(value, abs=1e-12)


class TestNaming:
    def test_internal_nets_are_namespaced(self):
        circuit = chain(True)
        assert "s1.mid" in circuit.node_names
        assert "s2.mid" in circuit.node_names

    def test_template_nodesets_replayed_without_override(self):
        circuit = Circuit("override")
        circuit.add_vsource("V1", "in", "0", 1.0)
        circuit.nodeset("s1.mid", 0.9)  # parent hint set first
        circuit.add_instance("s1", rc_cell(), {"a": "in", "b": "0"})
        assert circuit.nodesets["s1.mid"] == 0.9  # not clobbered
        circuit.add_instance("s2", rc_cell(), {"a": "in", "b": "0"})
        assert circuit.nodesets["s2.mid"] == 0.25  # replayed

    def test_write_netlist_rejects_instances(self, tmp_path):
        with pytest.raises(NetlistError):
            write_netlist(chain(True), tmp_path / "chain.cir")


class TestValidation:
    def test_defect_inside_cell_reported_with_dotted_name(self):
        """Structural validation walks the hierarchy flat: a
        DC-singular net *inside* a cell (here held only by capacitor
        plates) is reported under its namespaced parent name."""
        template = Circuit("capcell")
        template.add_capacitor("c1", "a", "mid", 1e-12)
        template.add_capacitor("c2", "mid", "0", 1e-12)
        cell = Subcircuit("capcell", template, ("a",))
        circuit = Circuit("dangling")
        circuit.add_vsource("V1", "in", "0", 1.0)
        circuit.add_instance("u1", cell, {"a": "in"})
        with pytest.raises(NetlistError, match="u1.mid"):
            circuit.compile()


class TestScopeLimits:
    def test_duplicate_ports_rejected(self):
        template = Circuit("t")
        template.add_resistor("r1", "a", "0", 1.0)
        with pytest.raises(NetlistError, match="duplicate"):
            Subcircuit("bad", template, ("a", "a"))

    def test_ground_port_rejected(self):
        template = Circuit("t")
        template.add_resistor("r1", "a", "0", 1.0)
        with pytest.raises(NetlistError, match="ground"):
            Subcircuit("bad", template, ("a", "0"))

    def test_unknown_port_rejected(self):
        template = Circuit("t")
        template.add_resistor("r1", "a", "0", 1.0)
        with pytest.raises(NetlistError, match="not a node"):
            Subcircuit("bad", template, ("a", "zz"))

    def test_nested_instances_rejected(self):
        inner = rc_cell()
        template = Circuit("outer")
        template.add_resistor("r1", "x", "0", 1.0)
        template._register(Instance("u1", inner, {"a": "x", "b": "0"}))
        with pytest.raises(NetlistError, match="nested"):
            Subcircuit("bad", template, ("x",))

    def test_foreign_template_elements_rejected(self):
        class Weird(Element):
            def stamp(self, st, x, time):  # pragma: no cover
                pass

        template = Circuit("t")
        template.add_resistor("r1", "a", "0", 1.0)
        template._register(Weird("w1", ("a",)))
        cell = Subcircuit("bad", template, ("a",))
        with pytest.raises(NetlistError, match="cannot expand"):
            cell.plan()

    def test_port_map_mismatch_rejected(self):
        cell = rc_cell()
        circuit = Circuit("p")
        with pytest.raises(NetlistError, match="port map"):
            circuit.add_instance("u1", cell, {"a": "x"})
        with pytest.raises(NetlistError, match="port map"):
            circuit.add_instance("u2", cell,
                                 {"a": "x", "b": "y", "c": "z"})


class TestChargeTerms:
    def test_per_element_terms_match_assembler_vector(self, default_design):
        """The generic Instance.charge_terms fallback (per-element API)
        and the assembler's vectorized charge_vector agree term for
        term -- same count, same total charge."""
        circuit = mos_chain(True, default_design)
        op = operating_point(circuit)
        compiled = circuit.compile()
        terms = compiled.charge_terms(op.x)
        vector = compiled.assembler.charge_vector(op.x)
        assert len(terms) == vector.size
        assert sum(t.q for t in terms) == pytest.approx(vector.sum(),
                                                        rel=1e-12)
