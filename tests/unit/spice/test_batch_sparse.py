"""Sparse batched ensembles: one symbolic factorization, B lanes.

The contract under test: ``matrix_backend="sparse"`` on a batched
ensemble produces the same per-lane solutions as the dense stacked
solver and the serial sparse path (to 1e-9), while the COLAMD symbolic
analysis runs exactly **once** per campaign -- every lane and every
Newton iteration reuses the shared ``indices``/``indptr`` structure.
Degenerate lanes (exactly singular, NaN parameters) must degrade to
the per-lane serial-ladder fallback without poisoning neighbours.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.errors import AnalysisError, NetlistError
from repro.spice import (
    Circuit,
    LaneSpec,
    NewtonOptions,
    apply_lane,
    batch_operating_point,
    operating_point,
)
from repro.spice.sparse import SparseSystem
from repro.stscl.adder import adder_chain_circuit
from repro.stscl.netlist_gen import stscl_inverter_circuit

TIGHT = NewtonOptions(max_iterations=20)


def _inverter(design, backend: str) -> Circuit:
    circuit, _ = stscl_inverter_circuit(design, 0.4)
    circuit.matrix_backend = backend
    return circuit


def _mismatch_lanes(n_devices: int, count: int) -> list[LaneSpec]:
    """Deterministic VT-mismatch population shared by both backends."""
    lanes = []
    for seed in range(count):
        rng = np.random.default_rng(seed)
        lanes.append(LaneSpec.mismatch(
            rng.normal(0.0, 2e-3, n_devices), label=f"seed-{seed}"))
    return lanes


class TestSparseDenseEquivalence:
    """Same lanes, same answers: the backend is an implementation
    detail the solutions must not reveal."""

    def test_batched_lanes_match_dense_within_1e9(self, default_design):
        n_mos = len(_inverter(default_design, "auto").mos_elements())
        lanes = _mismatch_lanes(n_mos, 6)
        dense = batch_operating_point(
            _inverter(default_design, "dense"), lanes)
        sparse = batch_operating_point(
            _inverter(default_design, "sparse"), lanes)
        assert dense.failures == sparse.failures == []
        for d, s in zip(dense.points, sparse.points):
            assert s.converged
            for node, value in d.voltages.items():
                assert s.voltages[node] == pytest.approx(value, rel=1e-9,
                                                         abs=1e-12)

    def test_sparse_batched_matches_serial_sparse(self, default_design):
        circuit = _inverter(default_design, "sparse")
        n_mos = len(circuit.mos_elements())
        lanes = _mismatch_lanes(n_mos, 4)
        batch = batch_operating_point(circuit, lanes)
        for lane, point in zip(lanes, batch.points):
            undo = apply_lane(circuit, lane)
            try:
                serial = operating_point(circuit)
            finally:
                undo()
            for node, value in serial.voltages.items():
                assert point.voltages[node] == pytest.approx(
                    value, rel=1e-9, abs=1e-12)

    def test_matrix_backend_override_validated(self):
        circuit, _ = stscl_inverter_circuit(
            pytest.importorskip("repro.stscl").StsclGateDesign.default(
                1e-9), 0.4)
        with pytest.raises(NetlistError, match="matrix backend"):
            batch_operating_point(
                circuit, [LaneSpec.source("vdd", 0.4)],
                matrix_backend="banded")


class TestSymbolicReuse:
    """COLAMD symbolic analysis happens once per compiled structure --
    and is redone exactly when the structure actually changes."""

    def test_one_symbolic_factorization_per_campaign(self, default_design):
        with telemetry.tracing("sparse-batch") as trace:
            circuit = _inverter(default_design, "sparse")
            n_mos = len(circuit.mos_elements())
            batch = batch_operating_point(
                circuit, _mismatch_lanes(n_mos, 6))
        assert batch.failures == []
        counters = trace.total_counters()
        assert counters["sparse_symbolic_factorizations"] == 1
        # Plenty of numeric work rode on that single symbolic phase.
        assert counters["sparse_numeric_refactorizations"] > 1

    def test_structural_change_invalidates_the_symbolic(
            self, default_design):
        """Adding an element (a structural fault, say) changes the
        sparsity pattern: the next ensemble must rebuild the symbolic
        factorization rather than stamp into a stale structure."""
        with telemetry.tracing("sparse-invalidate") as trace:
            circuit = _inverter(default_design, "sparse")
            n_mos = len(circuit.mos_elements())
            lanes = _mismatch_lanes(n_mos, 3)
            batch_operating_point(circuit, lanes)
            assert trace.total_counters()[
                "sparse_symbolic_factorizations"] == 1
            # Bridge two internal nets: new off-diagonal nonzeros.
            circuit.add_resistor("r_fault", "outp", "outn", 1e6)
            again = batch_operating_point(circuit, lanes)
        assert trace.total_counters()[
            "sparse_symbolic_factorizations"] == 2
        # The post-fault ensemble still matches its serial twins.
        undo = apply_lane(circuit, lanes[0])
        try:
            serial = operating_point(circuit)
        finally:
            undo()
        assert again.points[0].voltage("outp") == pytest.approx(
            serial.voltage("outp"), rel=1e-9)

    def test_counters_reconcile(self, default_design):
        """Every batched-sparse Jacobian factorization is a numeric
        refactorization over the one shared symbolic structure."""
        with telemetry.tracing("sparse-counters") as trace:
            circuit = _inverter(default_design, "sparse")
            n_mos = len(circuit.mos_elements())
            batch = batch_operating_point(
                circuit, _mismatch_lanes(n_mos, 4))
        assert batch.failures == []
        counters = trace.total_counters()
        assert counters["sparse_symbolic_factorizations"] == 1
        assert counters["jacobian_factorizations"] == \
            counters["sparse_numeric_refactorizations"]
        assert counters["jacobian_factorizations"] > 0


class TestSparseDegradation:
    """Degenerate lanes fall back per-lane; neighbours stay exact."""

    def _mos_circuit(self) -> Circuit:
        from repro.devices.mosfet import Mosfet
        from repro.devices.parameters import nmos_180

        ckt = Circuit("sparse_singular_lane", matrix_backend="sparse")
        ckt.add_vsource("vdd", "vdd", "0", 1.0)
        ckt.add_vsource("vg", "g", "0", 0.6)
        ckt.add_resistor("rl", "vdd", "d", 100e3)
        ckt.add_mosfet("m1", "d", "g", "0", "0",
                       Mosfet(nmos_180(), w=1e-6, l=0.18e-6))
        return ckt

    @pytest.mark.filterwarnings(
        "ignore:invalid value encountered:RuntimeWarning")
    def test_nan_lane_demoted_to_serial_fallback(self):
        """A NaN-parameter lane in a *sparse* batch produces a NaN data
        row, is kicked out to the serial ladder, fails there with full
        diagnostics -- and its neighbours match their serial twins."""
        ckt = self._mos_circuit()
        lanes = [LaneSpec.mismatch([0.0], label="clean-0"),
                 LaneSpec.mismatch([float("nan")], label="poison"),
                 LaneSpec.mismatch([5e-3], label="clean-2")]
        batch = batch_operating_point(ckt, lanes, options=TIGHT,
                                      on_error="skip")
        assert [index for index, _ in batch.failures] == [1]
        _, error = batch.failures[0]
        assert error.diagnostics is not None
        assert any(index == 1
                   for index, _ in batch.diagnostics.fallback_lanes)
        assert all(np.isnan(v)
                   for v in batch.points[1].voltages.values())
        for index in (0, 2):
            point = batch.points[index]
            assert point.converged
            undo = apply_lane(ckt, lanes[index])
            try:
                serial = operating_point(ckt, TIGHT)
            finally:
                undo()
            assert point.voltage("d") == pytest.approx(
                serial.voltage("d"), rel=1e-9)

    def test_solve_stacked_sparse_isolates_a_singular_lane(self):
        """Direct kernel check: an exactly-singular lane degrades to a
        finite least-squares step on the shared pattern while healthy
        lanes get the exact sparse solutions."""
        from repro.spice.batch import _solve_stacked_sparse

        rng = np.random.default_rng(7)
        jac = np.stack([np.eye(3) + 0.1 * rng.normal(size=(3, 3))
                        for _ in range(3)])
        jac[1] = 0.0  # lane 1: exactly singular
        rows = np.repeat(np.arange(3), 3)
        cols = np.tile(np.arange(3), 3)
        system = SparseSystem(3, {"full": (rows, cols)})
        vals = jac.reshape(3, 9)
        res = rng.normal(size=(3, 3))
        dX, fresh = _solve_stacked_sparse(
            system, vals, res, np.arange(3), 3, NewtonOptions(),
            None, None)
        for k in (0, 2):
            np.testing.assert_allclose(
                dX[k], np.linalg.solve(jac[k], -res[k]), rtol=1e-9)
        assert np.all(np.isfinite(dX[1]))
        assert fresh.all()

    @pytest.mark.filterwarnings(
        "ignore:invalid value encountered:RuntimeWarning")
    def test_nan_lane_does_not_count_a_numeric_refactorization(self):
        """``sparse_factorize`` refuses non-finite input before touching
        SuperLU -- the counter only ever counts real factorizations."""
        from repro.spice.sparse import sparse_factorize

        rows = np.repeat(np.arange(2), 2)
        cols = np.tile(np.arange(2), 2)
        system = SparseSystem(2, {"full": (rows, cols)})
        nan_csc = system.matrix(np.array([np.nan, 0.0, 0.0, 1.0]))
        with telemetry.tracing("nan-factorize") as trace:
            assert sparse_factorize(nan_csc) is None
        assert trace.total_counters().get(
            "sparse_numeric_refactorizations", 0) == 0


class TestFullBankContract:
    """Hierarchical circuits: mismatch lanes may address the full
    device bank (subcircuit instances included), not just top-level
    elements -- the thousand-node adder has *no* top-level MOS."""

    def _adder(self, design) -> Circuit:
        circuit, _ = adder_chain_circuit(design, 0.4, width=2,
                                         a=1, b=2, carry_in=False)
        circuit.matrix_backend = "sparse"
        return circuit

    def test_bank_length_zero_lane_reproduces_the_baseline(
            self, default_design):
        circuit = self._adder(default_design)
        compiled = circuit.compile()
        baseline = operating_point(circuit)
        n_bank = compiled.assembler._mos_bank.n_devices
        assert len(circuit.mos_elements()) == 0  # all MOS live in cells
        batch = batch_operating_point(
            circuit, [LaneSpec.mismatch(np.zeros(n_bank), label="zero")],
            x0=baseline.x)
        assert batch.failures == []
        for node, value in baseline.voltages.items():
            assert batch.points[0].voltages[node] == pytest.approx(
                value, rel=1e-9, abs=1e-12)

    def test_wrong_length_lane_rejected_with_both_counts(
            self, default_design):
        circuit = self._adder(default_design)
        with pytest.raises(AnalysisError, match="top-level"):
            batch_operating_point(
                circuit, [LaneSpec.mismatch(np.zeros(5), label="short")])
