"""The homotopy ladder: pathological circuits, diagnostics, recovery.

The fixture circuit drives a diode hard through a tiny series resistor
from an 8 V source.  With the damped Newton of this solver the source
node must *walk* to 8 V at ``max_step`` volts per iteration, so a tight
iteration budget defeats plain Newton deterministically -- exactly the
situation continuation strategies exist for.
"""

import numpy as np
import pytest

from repro.devices.diode import Diode, DiodeParameters
from repro.errors import ConvergenceError
from repro.spice import (
    Circuit,
    GminSteppingStrategy,
    NewtonOptions,
    NewtonStrategy,
    PseudoTransientStrategy,
    SolveStrategy,
    SourceSteppingStrategy,
    dc_sweep,
    operating_point,
)

DIODE = Diode(DiodeParameters(name="junction", i_s=1e-16))

#: Enough for the easy points, far too little for the 8 V walk.
TIGHT = NewtonOptions(max_iterations=20)


def hard_diode(nodesets: dict[str, float] | None = None) -> Circuit:
    """8 V into a diode through 10 ohms: a 27-iteration Newton walk."""
    circuit = Circuit("hard_diode")
    circuit.add_vsource("V1", "in", "0", 8.0)
    circuit.add_resistor("RS", "in", "a", 10.0)
    circuit.add_diode("D1", "a", "0", DIODE)
    for node, voltage in (nodesets or {}).items():
        circuit.nodeset(node, voltage)
    return circuit


def divider() -> Circuit:
    circuit = Circuit("divider")
    circuit.add_vsource("V1", "in", "0", 1.0)
    circuit.add_resistor("R1", "in", "mid", 10e3)
    circuit.add_resistor("R2", "mid", "0", 10e3)
    return circuit


class TestLadderRescue:
    def test_plain_newton_alone_is_defeated(self):
        with pytest.raises(ConvergenceError):
            operating_point(hard_diode(), TIGHT,
                            strategies=(NewtonStrategy(),))

    def test_default_ladder_rescues_and_names_the_stage(self):
        op = operating_point(hard_diode(), TIGHT)
        diag = op.diagnostics
        assert diag.converged
        assert diag.rescue_needed
        assert diag.rescued_by == "source-stepping"
        # The failed rungs are on record, in ladder order.
        assert [s.strategy for s in diag.stages] == [
            "newton", "gmin-stepping", "source-stepping"]
        assert not diag.stage("newton").converged
        assert not diag.stage("gmin-stepping").converged
        assert diag.stage("source-stepping").converged
        # And the answer is the physical one: the diode clamps node a.
        assert 0.7 < op.voltage("a") < 1.1
        assert op.voltage("in") == pytest.approx(8.0)

    def test_gmin_stepping_rescues_with_its_own_budget(self):
        """Continuation stages may carry a larger per-solve budget
        (SPICE's ITL6); with one, gmin stepping absorbs the walk."""
        op = operating_point(hard_diode(), TIGHT, strategies=(
            NewtonStrategy(), GminSteppingStrategy(max_iterations=80)))
        assert op.diagnostics.rescued_by == "gmin-stepping"
        assert not op.diagnostics.stage("newton").converged
        assert 0.7 < op.voltage("a") < 1.1

    def test_source_stepping_rescues_under_the_shared_budget(self):
        op = operating_point(hard_diode(), TIGHT, strategies=(
            NewtonStrategy(), SourceSteppingStrategy()))
        assert op.diagnostics.rescued_by == "source-stepping"
        assert 0.7 < op.voltage("a") < 1.1

    def test_pseudo_transient_is_a_viable_final_fallback(self):
        op = operating_point(hard_diode(), TIGHT, strategies=(
            NewtonStrategy(), PseudoTransientStrategy(max_iterations=80)))
        assert op.diagnostics.rescued_by == "pseudo-transient"
        assert 0.7 < op.voltage("a") < 1.1

    def test_all_strategies_agree_on_the_solution(self):
        reference = operating_point(hard_diode()).voltage("a")
        for strategies in (
                (NewtonStrategy(),),
                (GminSteppingStrategy(),),
                (SourceSteppingStrategy(),),
                (PseudoTransientStrategy(),)):
            op = operating_point(hard_diode(), strategies=strategies)
            assert op.voltage("a") == pytest.approx(reference, abs=1e-5)


class TestDiagnostics:
    def test_easy_circuit_converges_on_the_first_rung(self):
        op = operating_point(divider())
        diag = op.diagnostics
        assert diag.rescued_by == "newton"
        assert not diag.rescue_needed
        assert len(diag.stages) == 1
        assert diag.total_iterations == op.iterations

    def test_residual_trajectory_is_recorded_and_decreasing(self):
        op = operating_point(divider())
        residuals = op.diagnostics.stage("newton").residuals
        assert len(residuals) >= 1
        assert residuals[-1] <= residuals[0]

    def test_total_failure_carries_full_forensics(self):
        with pytest.raises(ConvergenceError) as excinfo:
            operating_point(hard_diode(), TIGHT,
                            strategies=(NewtonStrategy(),
                                        GminSteppingStrategy()))
        error = excinfo.value
        assert error.stage == "gmin-stepping"
        diag = error.diagnostics
        assert diag is not None
        assert not diag.converged
        assert [s.strategy for s in diag.stages] == [
            "newton", "gmin-stepping"]
        assert all(not s.converged for s in diag.stages)
        assert error.iterations == diag.total_iterations

    def test_describe_names_every_stage(self):
        op = operating_point(hard_diode(), TIGHT)
        text = op.diagnostics.describe()
        assert "source-stepping" in text
        assert "failed" in text and "ok" in text

    def test_wall_time_is_accounted(self):
        diag = operating_point(hard_diode(), TIGHT).diagnostics
        assert diag.wall_time > 0.0
        assert all(s.wall_time >= 0.0 for s in diag.stages)

    def test_empty_ladder_is_rejected(self):
        with pytest.raises(ValueError):
            operating_point(divider(), strategies=())


class _WarmStartAllergic(SolveStrategy):
    """Fails any solve that does not start from the nodeset guess --
    a deterministic stand-in for warm starts landing in a bad basin."""

    name = "warm-allergic"

    def __init__(self):
        super().__init__()
        self.cold_calls = 0
        self.warm_rejections = 0

    def solve(self, circuit, compiled, x0, time, options, trace):
        if not np.array_equal(x0, circuit.initial_guess(compiled)):
            self.warm_rejections += 1
            raise ConvergenceError("warm start rejected")
        self.cold_calls += 1
        return NewtonStrategy().solve(circuit, compiled, x0, time,
                                      options, trace)


class TestSweepRecovery:
    def test_warm_start_failure_is_retried_from_nodesets(self):
        """One diverging warm start must not abort the sweep: the point
        is re-seeded from the circuit's nodeset initial guess."""
        strategy = _WarmStartAllergic()
        result = dc_sweep(divider(), "V1", [0.2, 0.6, 1.0],
                          strategies=(strategy,))
        assert strategy.warm_rejections == 2   # points 1 and 2
        assert strategy.cold_calls == 3        # every point solved cold
        assert not result.failures
        np.testing.assert_allclose(result.voltage("mid"),
                                   [0.1, 0.3, 0.5], atol=1e-6)

    def test_on_error_skip_records_nan_and_continues(self):
        result = dc_sweep(hard_diode(), "V1", [0.5, 8.0, 0.55],
                          options=NewtonOptions(max_iterations=8),
                          strategies=(NewtonStrategy(),),
                          on_error="skip")
        assert result.failed_indices == [1]
        (index, message), = result.failures
        assert index == 1 and "hard_diode" in message
        voltages = result.voltage("a")
        assert np.isnan(voltages[1])
        assert np.isfinite(voltages[0]) and np.isfinite(voltages[2])
        assert not result.points[1].converged
        assert result.points[0].converged

    def test_on_error_raise_is_the_default(self):
        with pytest.raises(ConvergenceError):
            dc_sweep(hard_diode(), "V1", [0.5, 8.0],
                     options=NewtonOptions(max_iterations=8),
                     strategies=(NewtonStrategy(),))

    def test_sweep_restores_the_source_after_skips(self):
        circuit = hard_diode()
        element = circuit.element("V1")
        saved = element.waveform
        dc_sweep(circuit, "V1", [0.5, 8.0, 0.55],
                 options=NewtonOptions(max_iterations=8),
                 strategies=(NewtonStrategy(),), on_error="skip")
        assert element.waveform is saved

    def test_unknown_policy_is_rejected(self):
        from repro.errors import NetlistError
        with pytest.raises(NetlistError):
            dc_sweep(divider(), "V1", [1.0], on_error="ignore")


class TestStrategyValidation:
    def test_gmin_exponent_ordering(self):
        with pytest.raises(ValueError):
            GminSteppingStrategy(start_exponent=9, stop_exponent=3)

    def test_source_stepping_fraction_bounds(self):
        with pytest.raises(ValueError):
            SourceSteppingStrategy(start_fraction=1.5)
        with pytest.raises(ValueError):
            SourceSteppingStrategy(steps=1)

    def test_pseudo_transient_parameters(self):
        with pytest.raises(ValueError):
            PseudoTransientStrategy(g_start=-1.0)
        with pytest.raises(ValueError):
            PseudoTransientStrategy(shrink=0.5)

    def test_source_stepping_restores_waveforms_on_failure(self):
        circuit = hard_diode()
        element = circuit.element("V1")
        saved = element.waveform
        with pytest.raises(ConvergenceError):
            operating_point(
                circuit, NewtonOptions(max_iterations=3),
                strategies=(SourceSteppingStrategy(),))
        assert element.waveform is saved


class TestWallClockBudget:
    def test_exhausted_budget_reports_wall_clock_stage(self):
        with pytest.raises(ConvergenceError) as excinfo:
            operating_point(hard_diode(), NewtonOptions(
                max_iterations=20, max_wall_time=0.0))
        error = excinfo.value
        assert error.stage == "wall-clock"
        assert "wall-clock budget" in str(error)
        assert error.diagnostics is not None
        assert error.diagnostics.stages  # forensics still attached

    def test_generous_budget_is_invisible(self):
        result = operating_point(divider(), NewtonOptions(
            max_wall_time=3600.0))
        assert result.converged
        assert result.voltage("mid") == pytest.approx(0.5)

    def test_budget_covers_the_whole_ladder(self):
        """The deadline is absolute across rungs: every strategy shares
        one budget instead of each getting its own."""
        with pytest.raises(ConvergenceError) as excinfo:
            operating_point(hard_diode(), NewtonOptions(
                max_iterations=20, max_wall_time=0.0))
        # With a pre-expired deadline not a single rung may burn its
        # full iteration budget.
        diagnostics = excinfo.value.diagnostics
        assert diagnostics.total_iterations == 0
