"""Batched ensemble Newton: lanes, equivalence, fallback, telemetry.

The contract under test: a :func:`batch_operating_point` over B lanes
is *indistinguishable* from B serial :func:`operating_point` calls with
the lane perturbation applied -- same solutions (to float tolerance),
same failures with the same diagnostics, same ladder semantics -- just
solved as one stacked tensor.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.devices.diode import Diode, DiodeParameters
from repro.errors import AnalysisError, ConvergenceError, NetlistError
from repro.spice import (
    Circuit,
    LaneSpec,
    NewtonOptions,
    NewtonStrategy,
    apply_lane,
    batch_operating_point,
    operating_point,
)
from repro.spice.batch import BATCHED_GMIN_STAGE, BATCHED_STAGE

DIODE = Diode(DiodeParameters(name="junction", i_s=1e-16))

#: Enough for small source walks, far too little for the 8 V walk.
TIGHT = NewtonOptions(max_iterations=20)


def diode_circuit(v_in: float = 1.0) -> Circuit:
    """V source into a diode through 10 ohms (damped-Newton walk)."""
    circuit = Circuit("batch_diode")
    circuit.add_vsource("V1", "in", "0", v_in)
    circuit.add_resistor("RS", "in", "a", 10.0)
    circuit.add_diode("D1", "a", "0", DIODE)
    return circuit


def source_lanes(values) -> list[LaneSpec]:
    return [LaneSpec.source("V1", float(v), label=f"{v:g}")
            for v in values]


class TestLaneSpec:
    def test_mismatch_constructor(self):
        lane = LaneSpec.mismatch(np.array([1e-3, -2e-3]),
                                 np.array([1.01, 0.99]), label="s0")
        assert lane.label == "s0"
        assert lane.vt_delta.shape == (2,)

    def test_source_constructor(self):
        lane = LaneSpec.source("V1", 2.5)
        assert lane.source_values == (("V1", 2.5),)

    def test_apply_and_undo_restore_the_circuit(self):
        circuit = diode_circuit()
        r_before = circuit.element("RS").resistance
        undo = apply_lane(circuit, LaneSpec(
            resistor_scale=(("RS", 2.0),), source_values=(("V1", 0.5),)))
        assert circuit.element("RS").resistance == pytest.approx(
            2.0 * r_before)
        undo()
        assert circuit.element("RS").resistance == r_before
        assert operating_point(circuit).voltage("in") == pytest.approx(1.0)

    def test_wrong_vt_length_rejected(self):
        circuit = diode_circuit()  # no MOS devices at all
        with pytest.raises(AnalysisError):
            apply_lane(circuit, LaneSpec(vt_delta=np.array([1e-3])))

    def test_unknown_source_rejected(self):
        with pytest.raises(AnalysisError):
            batch_operating_point(diode_circuit(),
                                  [LaneSpec(source_values=(("nope", 1.0),))])

    def test_nonpositive_resistor_factor_rejected(self):
        with pytest.raises(AnalysisError):
            batch_operating_point(
                diode_circuit(),
                [LaneSpec(resistor_scale=(("RS", 0.0),))])

    def test_empty_lane_list_rejected(self):
        with pytest.raises(AnalysisError):
            batch_operating_point(diode_circuit(), [])


class TestEquivalence:
    def test_source_lanes_match_serial_solves(self):
        """Every lane lands on the point the serial solver finds for
        the same source value."""
        values = [0.3, 0.6, 1.0, 1.5, 2.0]
        batch = batch_operating_point(diode_circuit(), source_lanes(values))
        for value, point in zip(values, batch.points):
            serial = operating_point(diode_circuit(value))
            assert point.voltage("a") == pytest.approx(
                serial.voltage("a"), abs=1e-12)
            assert point.voltage("in") == pytest.approx(value)

    def test_resistor_lanes_match_serial(self):
        factors = [0.5, 1.0, 4.0]
        lanes = [LaneSpec(resistor_scale=(("RS", f),)) for f in factors]
        batch = batch_operating_point(diode_circuit(), lanes)
        for factor, point in zip(factors, batch.points):
            circuit = diode_circuit()
            circuit.element("RS").resistance *= factor
            serial = operating_point(circuit)
            assert point.voltage("a") == pytest.approx(
                serial.voltage("a"), abs=1e-12)

    def test_branch_currents_are_per_lane(self):
        batch = batch_operating_point(diode_circuit(),
                                      source_lanes([0.5, 2.0]))
        i0 = batch.points[0].branch_currents["V1"]
        i1 = batch.points[1].branch_currents["V1"]
        assert abs(i1) > abs(i0)  # more drive, more current

    def test_device_ops_reflect_the_lane_overlay(self, default_design):
        """Each lane's MOS operating points are evaluated under that
        lane's VT overlay, not the nominal bank."""
        from repro.stscl.netlist_gen import stscl_inverter_circuit

        circuit, _ = stscl_inverter_circuit(default_design, 0.4)
        n = len(circuit.mos_elements())
        name = circuit.mos_elements()[0].name
        lanes = [LaneSpec.mismatch(np.zeros(n)),
                 LaneSpec.mismatch(np.full(n, 20e-3))]
        batch = batch_operating_point(circuit, lanes)
        ops0 = batch.points[0].device_ops[name]
        ops1 = batch.points[1].device_ops[name]
        assert ops0.ids != ops1.ids

    def test_mos_mismatch_lanes_match_serial(self, default_design):
        """VT/beta overlays on a real MOS circuit reproduce the serial
        per-device perturbation exactly."""
        import dataclasses
        from repro.stscl.netlist_gen import stscl_inverter_circuit

        def lane_for(seed):
            rng = np.random.default_rng(seed)
            circuit, _ = stscl_inverter_circuit(default_design, 0.4)
            n = len(circuit.mos_elements())
            return (np.array([rng.normal(0.0, 5e-3) for _ in range(n)]),
                    np.array([1.0 + rng.normal(0.0, 0.01)
                              for _ in range(n)]))

        seeds = [3, 4]
        circuit, _ = stscl_inverter_circuit(default_design, 0.4)
        lanes = [LaneSpec.mismatch(*lane_for(seed)) for seed in seeds]
        batch = batch_operating_point(circuit, lanes)
        for seed, point in zip(seeds, batch.points):
            serial_circuit, _ = stscl_inverter_circuit(default_design, 0.4)
            vt, beta = lane_for(seed)
            for k, element in enumerate(serial_circuit.mos_elements()):
                element.device = dataclasses.replace(
                    element.device,
                    vt_shift=element.device.vt_shift + vt[k],
                    beta_factor=element.device.beta_factor * beta[k])
            serial = operating_point(serial_circuit)
            for node in serial.voltages:
                assert point.voltages[node] == pytest.approx(
                    serial.voltages[node], abs=1e-9)

    def test_warm_start_vector_validated(self):
        with pytest.raises(NetlistError):
            batch_operating_point(diode_circuit(), source_lanes([1.0]),
                                  x0=np.zeros(99))


class TestLadderSemantics:
    def test_gmin_phase_respects_a_newton_only_ladder(self):
        """A ladder without a gmin rung must fail the same lanes
        batched as serially -- the stacked gmin phase may not rescue
        lanes the caller's ladder could not."""
        lanes = source_lanes([0.5, 8.0])  # 8 V walk defeats TIGHT Newton
        with pytest.raises(ConvergenceError):
            operating_point(diode_circuit(8.0), TIGHT,
                            strategies=(NewtonStrategy(),))
        batch = batch_operating_point(diode_circuit(), lanes,
                                      options=TIGHT,
                                      strategies=(NewtonStrategy(),),
                                      on_error="skip")
        assert [index for index, _ in batch.failures] == [1]
        assert batch.points[0].converged
        assert not batch.points[1].converged

    def test_failed_lane_gets_nan_placeholder_and_diagnostics(self):
        batch = batch_operating_point(diode_circuit(),
                                      source_lanes([8.0]),
                                      options=TIGHT,
                                      strategies=(NewtonStrategy(),),
                                      on_error="skip")
        point = batch.points[0]
        assert all(np.isnan(v) for v in point.voltages.values())
        _, error = batch.failures[0]
        # Forensics: the batched attempt is on record ahead of the
        # serial ladder stages it fell back to.
        stages = [s.strategy for s in error.diagnostics.stages]
        assert stages[0] == BATCHED_STAGE
        assert "newton" in stages

    def test_on_error_raise_propagates_the_first_failure(self):
        with pytest.raises(ConvergenceError):
            batch_operating_point(diode_circuit(), source_lanes([8.0]),
                                  options=TIGHT,
                                  strategies=(NewtonStrategy(),))

    def test_fallback_rescues_via_the_full_ladder(self):
        """TIGHT options defeat both the stacked phases on the 8 V
        walk; the per-lane fallback climbs the full serial ladder and
        still delivers the solution."""
        batch = batch_operating_point(diode_circuit(),
                                      source_lanes([8.0]), options=TIGHT)
        point = batch.points[0]
        assert point.converged
        assert 0.7 < point.voltage("a") < 1.1
        assert batch.diagnostics.n_fallback == 1
        # The lane's diagnostics tell the whole story: batched stages
        # first, then the serial rungs that rescued it.
        stages = [s.strategy for s in point.diagnostics.stages]
        assert stages[0] == BATCHED_STAGE
        assert BATCHED_GMIN_STAGE in stages
        assert point.diagnostics.rescued_by == "source-stepping"

    def test_converged_lane_diagnostics_name_the_batched_stage(self):
        batch = batch_operating_point(diode_circuit(),
                                      source_lanes([0.5, 1.0]))
        for point in batch.points:
            assert point.diagnostics.rescued_by in (BATCHED_STAGE,
                                                    BATCHED_GMIN_STAGE)
            assert point.diagnostics.total_iterations == point.iterations


class TestDiagnosticsAndTelemetry:
    def test_batch_diagnostics_describe(self):
        batch = batch_operating_point(diode_circuit(),
                                      source_lanes([0.5, 1.0, 2.0]))
        text = batch.diagnostics.describe()
        assert "B=3" in text
        assert "0 failed" in text

    def test_counters_reconcile_with_the_population(self):
        lanes = source_lanes([0.5, 8.0])
        with telemetry.tracing("batch-test") as trace:
            batch_operating_point(diode_circuit(), lanes, options=TIGHT,
                                  strategies=(NewtonStrategy(),),
                                  on_error="skip")
        counters = trace.total_counters()
        assert counters["batch_lanes"] == 2
        assert counters["batch_lane_fallbacks"] == 1
        assert counters["jacobian_factorizations"] > 0
        assert counters["device_bank_evals"] > 0

    def test_active_mask_decays_as_lanes_converge(self):
        """Easy and hard lanes in one batch: the active population must
        shrink while iterations continue for the stragglers."""
        batch = batch_operating_point(diode_circuit(),
                                      source_lanes([0.3, 1.0, 4.0]))
        history = batch.diagnostics.active_history
        assert history[0] == 3
        assert history[-1] < history[0]


class TestUnsupportedCircuits:
    def test_foreign_elements_are_diagnosed(self):
        """An element type outside the vectorized banks (a user
        subclass stamped per-element) cannot ride the stacked path; the
        error says so instead of silently mis-solving."""
        from repro.spice.elements import Element

        class Shunt(Element):
            def __init__(self):
                super().__init__("X1", ("in", "0"))

            def stamp(self, st, x, time):
                st.add_conductance(self._idx[0], self._idx[1], 1e-6)

        circuit = diode_circuit()
        circuit._register(Shunt())
        with pytest.raises(AnalysisError, match="batched"):
            batch_operating_point(circuit, source_lanes([1.0]))


class TestSingularLanes:
    """A degenerate lane must never poison its batch neighbours: it
    falls back to the serial ladder and fails (or is rescued) there,
    while every other lane's solution stays bit-identical."""

    def _mos_circuit(self) -> Circuit:
        from repro.devices.mosfet import Mosfet
        from repro.devices.parameters import nmos_180

        ckt = Circuit("singular_lane")
        ckt.add_vsource("vdd", "vdd", "0", 1.0)
        ckt.add_vsource("vg", "g", "0", 0.6)
        ckt.add_resistor("rl", "vdd", "d", 100e3)
        ckt.add_mosfet("m1", "d", "g", "0", "0",
                       Mosfet(nmos_180(), w=1e-6, l=0.18e-6))
        return ckt

    @pytest.mark.filterwarnings(
        "ignore:invalid value encountered:RuntimeWarning")
    def test_nan_lane_fails_cleanly_without_poisoning(self):
        ckt = self._mos_circuit()
        lanes = [LaneSpec.mismatch([0.0], label="clean-0"),
                 LaneSpec.mismatch([float("nan")], label="poison"),
                 LaneSpec.mismatch([5e-3], label="clean-2")]
        batch = batch_operating_point(ckt, lanes, options=TIGHT,
                                      on_error="skip")
        # The poisoned lane is a clean, diagnosed failure...
        assert [index for index, _ in batch.failures] == [1]
        _, error = batch.failures[0]
        assert isinstance(error, ConvergenceError)
        assert error.diagnostics is not None
        assert all(np.isnan(v)
                   for v in batch.points[1].voltages.values())
        # ...and the neighbours match their serial twins exactly.
        for index in (0, 2):
            point = batch.points[index]
            assert point.converged
            assert all(np.isfinite(v) for v in point.voltages.values())
            undo = apply_lane(ckt, lanes[index])
            try:
                serial = operating_point(ckt, TIGHT)
            finally:
                undo()
            assert point.voltage("d") == \
                pytest.approx(serial.voltage("d"), rel=1e-9)

    def test_solve_stacked_isolates_an_exactly_singular_lane(self):
        from repro.spice.batch import _solve_stacked

        rng = np.random.default_rng(7)
        jac = np.stack([np.eye(3) + 0.1 * rng.normal(size=(3, 3))
                        for _ in range(3)])
        jac[1] = 0.0  # lane 1: exactly singular (LinAlgError territory)
        res = rng.normal(size=(3, 3))
        dX = _solve_stacked(jac, res)
        # The healthy lanes get the exact direct solutions...
        for k in (0, 2):
            np.testing.assert_allclose(
                dX[k], np.linalg.solve(jac[k], -res[k]), rtol=1e-12)
        # ...and the singular lane degrades to a *finite* least-squares
        # step instead of poisoning the whole stacked call.
        assert np.all(np.isfinite(dX[1]))

    def test_nonfinite_converged_lane_is_demoted_to_fallback(
            self, monkeypatch):
        """Whatever the convergence bookkeeping claims, a lane whose
        solution vector holds NaN must re-run serially, never package.
        (Defence in depth for the stacked phases.)"""
        import repro.spice.batch as batch_mod

        real = batch_mod.batch_newton

        def poisoned(assembler, X, options, gmin, active_history=None):
            outcome = real(assembler, X, options, gmin, active_history)
            X[0] = np.nan  # "converged", but the vector is garbage
            return outcome

        monkeypatch.setattr(batch_mod, "batch_newton", poisoned)
        batch = batch_operating_point(diode_circuit(),
                                      source_lanes([0.5, 1.0]))
        assert batch.diagnostics.n_fallback >= 1
        assert batch.diagnostics.fallback_lanes[0][0] == 0
        assert "non-finite solution" in \
            batch.diagnostics.fallback_lanes[0][1]
        point = batch.points[0]  # rescued by the serial ladder
        assert point.converged
        assert all(np.isfinite(v) for v in point.voltages.values())
