"""Unit tests for source waveforms."""

import pytest

from repro.errors import ModelError
from repro.spice.waveforms import (
    dc_wave,
    pulse_wave,
    pwl_wave,
    sine_wave,
    step_wave,
)


class TestDc:
    def test_constant(self):
        wave = dc_wave(0.7)
        assert wave(0.0) == 0.7
        assert wave(1e9) == 0.7


class TestStep:
    def test_instant_step(self):
        wave = step_wave(0.0, 1.0, 1e-6)
        assert wave(0.5e-6) == 0.0
        assert wave(1.5e-6) == 1.0

    def test_ramped_step_midpoint(self):
        wave = step_wave(0.0, 1.0, 1e-6, t_rise=2e-6)
        assert wave(2e-6) == pytest.approx(0.5)

    def test_breakpoints(self):
        wave = step_wave(0.0, 1.0, 1e-6, t_rise=1e-6)
        assert wave.breakpoints == (1e-6, 2e-6)

    def test_negative_rise_rejected(self):
        with pytest.raises(ModelError):
            step_wave(0.0, 1.0, 0.0, t_rise=-1.0)


class TestPulse:
    def test_levels(self):
        wave = pulse_wave(0.0, 1.0, delay=0.0, rise=1e-9, fall=1e-9,
                          width=4e-6, period=10e-6)
        assert wave(2e-6) == 1.0
        assert wave(8e-6) == 0.0

    def test_periodicity(self):
        wave = pulse_wave(0.0, 1.0, delay=0.0, rise=1e-9, fall=1e-9,
                          width=4e-6, period=10e-6)
        assert wave(2e-6) == wave(12e-6) == wave(102e-6)

    def test_rise_interpolation(self):
        wave = pulse_wave(0.0, 2.0, delay=0.0, rise=2e-6, fall=1e-9,
                          width=4e-6, period=20e-6)
        assert wave(1e-6) == pytest.approx(1.0)

    def test_overlong_pulse_rejected(self):
        with pytest.raises(ModelError):
            pulse_wave(0.0, 1.0, delay=0.0, rise=5e-6, fall=5e-6,
                       width=5e-6, period=10e-6)


class TestSine:
    def test_offset_and_amplitude(self):
        wave = sine_wave(0.5, 0.2, 1e3)
        assert wave(0.0) == pytest.approx(0.5)
        assert wave(0.25e-3) == pytest.approx(0.7)

    def test_delay_holds_initial(self):
        wave = sine_wave(0.5, 0.2, 1e3, delay=1e-3)
        assert wave(0.5e-3) == pytest.approx(0.5)

    def test_bad_frequency_rejected(self):
        with pytest.raises(ModelError):
            sine_wave(0.0, 1.0, 0.0)


class TestPwl:
    def test_interpolation(self):
        wave = pwl_wave([(0.0, 0.0), (1.0, 2.0), (3.0, 2.0)])
        assert wave(0.5) == pytest.approx(1.0)
        assert wave(2.0) == pytest.approx(2.0)

    def test_clamps_outside(self):
        wave = pwl_wave([(1.0, 3.0), (2.0, 5.0)])
        assert wave(0.0) == 3.0
        assert wave(10.0) == 5.0

    def test_nonmonotonic_times_rejected(self):
        with pytest.raises(ModelError):
            pwl_wave([(0.0, 0.0), (0.0, 1.0)])

    def test_breakpoints_are_the_corners(self):
        wave = pwl_wave([(0.0, 0.0), (1.0, 2.0)])
        assert wave.breakpoints == (0.0, 1.0)
