"""Unit tests for source waveforms."""

import pytest

from repro.errors import ModelError
from repro.spice.waveforms import (
    dc_wave,
    pulse_wave,
    pwl_wave,
    sine_wave,
    step_wave,
)


class TestDc:
    def test_constant(self):
        wave = dc_wave(0.7)
        assert wave(0.0) == 0.7
        assert wave(1e9) == 0.7


class TestStep:
    def test_instant_step(self):
        wave = step_wave(0.0, 1.0, 1e-6)
        assert wave(0.5e-6) == 0.0
        assert wave(1.5e-6) == 1.0

    def test_ramped_step_midpoint(self):
        wave = step_wave(0.0, 1.0, 1e-6, t_rise=2e-6)
        assert wave(2e-6) == pytest.approx(0.5)

    def test_breakpoints(self):
        wave = step_wave(0.0, 1.0, 1e-6, t_rise=1e-6)
        assert wave.breakpoints == (1e-6, 2e-6)

    def test_negative_rise_rejected(self):
        with pytest.raises(ModelError):
            step_wave(0.0, 1.0, 0.0, t_rise=-1.0)


class TestPulse:
    def test_levels(self):
        wave = pulse_wave(0.0, 1.0, delay=0.0, rise=1e-9, fall=1e-9,
                          width=4e-6, period=10e-6)
        assert wave(2e-6) == 1.0
        assert wave(8e-6) == 0.0

    def test_periodicity(self):
        wave = pulse_wave(0.0, 1.0, delay=0.0, rise=1e-9, fall=1e-9,
                          width=4e-6, period=10e-6)
        assert wave(2e-6) == wave(12e-6) == wave(102e-6)

    def test_rise_interpolation(self):
        wave = pulse_wave(0.0, 2.0, delay=0.0, rise=2e-6, fall=1e-9,
                          width=4e-6, period=20e-6)
        assert wave(1e-6) == pytest.approx(1.0)

    def test_overlong_pulse_rejected(self):
        with pytest.raises(ModelError):
            pulse_wave(0.0, 1.0, delay=0.0, rise=5e-6, fall=5e-6,
                       width=5e-6, period=10e-6)


class TestSine:
    def test_offset_and_amplitude(self):
        wave = sine_wave(0.5, 0.2, 1e3)
        assert wave(0.0) == pytest.approx(0.5)
        assert wave(0.25e-3) == pytest.approx(0.7)

    def test_delay_holds_initial(self):
        wave = sine_wave(0.5, 0.2, 1e3, delay=1e-3)
        assert wave(0.5e-3) == pytest.approx(0.5)

    def test_bad_frequency_rejected(self):
        with pytest.raises(ModelError):
            sine_wave(0.0, 1.0, 0.0)


class TestPwl:
    def test_interpolation(self):
        wave = pwl_wave([(0.0, 0.0), (1.0, 2.0), (3.0, 2.0)])
        assert wave(0.5) == pytest.approx(1.0)
        assert wave(2.0) == pytest.approx(2.0)

    def test_clamps_outside(self):
        wave = pwl_wave([(1.0, 3.0), (2.0, 5.0)])
        assert wave(0.0) == 3.0
        assert wave(10.0) == 5.0

    def test_nonmonotonic_times_rejected(self):
        with pytest.raises(ModelError):
            pwl_wave([(0.0, 0.0), (0.0, 1.0)])

    def test_breakpoints_are_the_corners(self):
        wave = pwl_wave([(0.0, 0.0), (1.0, 2.0)])
        assert wave.breakpoints == (0.0, 1.0)


class TestBreakpointsWithin:
    """The run-window corner protocol behind the transient engine's
    breakpoint merge."""

    def test_corners_at_or_beyond_t_stop_are_dropped(self):
        wave = pulse_wave(0.0, 1.0, delay=1e-6, rise=1e-9, fall=1e-9,
                          width=2e-6, period=10e-6)
        t_stop = 3.0015e-6  # between the fall start and fall end
        corners = wave.breakpoints_within(t_stop)
        # Only the first period's corners up to the fall start fit; the
        # fall end (~3.002 us) and every later period are out.
        assert len(corners) == 3
        assert corners == tuple(sorted(corners))
        assert all(0.0 < c < t_stop for c in corners)

    def test_corner_exactly_at_t_stop_is_dropped(self):
        wave = step_wave(0.0, 1.0, 2e-6)
        assert wave.breakpoints_within(2e-6) == ()
        assert wave.breakpoints_within(2e-6 + 1e-12) == (2e-6,)

    def test_static_waveforms_filter_their_table(self):
        wave = pwl_wave([(0.0, 0.0), (1e-6, 1.0), (2e-6, 0.0)])
        assert wave.breakpoints_within(1.5e-6) == (1e-6,)

    def test_pulse_corners_beyond_64_periods_are_generated(self):
        """The old static table silently capped at 64 periods -- a long
        run lost every later edge landing.  The generator keeps going."""
        wave = pulse_wave(0.0, 1.0, delay=0.0, rise=1e-9, fall=1e-9,
                          width=2e-6, period=10e-6)
        t_stop = 100.5 * 10e-6
        corners = wave.breakpoints_within(t_stop)
        assert max(corners) > 64 * 10e-6
        assert 100 * 10e-6 in corners
        # Static table (compatibility view) still ends at 64 periods.
        assert max(wave.breakpoints) < 64.1 * 10e-6

    def test_generated_corners_match_the_static_table_bitwise(self):
        """Inside the first 64 periods the generator must reproduce the
        table floats exactly -- the LTE step-count pins depend on the
        engine landing on identical corner values."""
        wave = pulse_wave(0.3, 0.7, delay=1.7e-7, rise=3e-9, fall=2e-9,
                          width=1.1e-6, period=4.3e-6)
        t_stop = 64 * 4.3e-6
        generated = wave.breakpoints_within(t_stop)
        table = tuple(sorted(t for t in wave.breakpoints
                             if 0.0 < t < t_stop))
        assert generated == table

    def test_sorted_even_when_generator_is_not(self):
        from repro.spice.waveforms import Waveform

        wave = Waveform(func=lambda t: 0.0,
                        breakpoint_fn=lambda t_stop: (3.0, 1.0, 2.0))
        assert wave.breakpoints_within(10.0) == (1.0, 2.0, 3.0)
