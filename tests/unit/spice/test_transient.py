"""Unit tests for the transient engine."""

import math

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.spice import Circuit, TransientOptions, transient
from repro.spice.waveforms import pulse_wave, sine_wave, step_wave


def rc_circuit(tau_r=1e6, tau_c=1e-12, t_step=1e-6):
    ckt = Circuit("rc")
    ckt.add_vsource("V1", "in", "0", step_wave(0.0, 1.0, t_step))
    ckt.add_resistor("R1", "in", "out", tau_r)
    ckt.add_capacitor("C1", "out", "0", tau_c)
    return ckt


class TestRcStep:
    def test_exponential_charging(self):
        tau = 1e-6
        ckt = rc_circuit()
        result = transient(ckt, 8e-6,
                           TransientOptions(dt_max=tau / 100.0))
        for n_tau in (1.0, 2.0, 3.0):
            expected = 1.0 - math.exp(-n_tau)
            got = result.value_at("out", 1e-6 + n_tau * tau)
            assert got == pytest.approx(expected, abs=5e-3)

    def test_flat_before_step(self):
        ckt = rc_circuit()
        result = transient(ckt, 4e-6)
        assert abs(result.value_at("out", 0.5e-6)) < 1e-6

    def test_backward_euler_also_converges(self):
        ckt = rc_circuit()
        result = transient(ckt, 8e-6, TransientOptions(
            method="be", dt_max=1e-8))
        assert result.value_at("out", 1e-6 + 3e-6) == pytest.approx(
            1.0 - math.exp(-3.0), abs=1e-2)

    def test_unknown_method_rejected(self):
        with pytest.raises(NetlistError):
            transient(rc_circuit(), 1e-6,
                      TransientOptions(method="rk4"))

    def test_bad_t_stop_rejected(self):
        with pytest.raises(NetlistError):
            transient(rc_circuit(), 0.0)


class TestBreakpoints:
    def test_pulse_edges_are_hit(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "in", "0",
                        pulse_wave(0.0, 1.0, delay=1e-6, rise=1e-9,
                                   fall=1e-9, width=2e-6, period=10e-6))
        ckt.add_resistor("R1", "in", "0", 1e3)
        result = transient(ckt, 5e-6)
        # Samples exist essentially at the rising edge.
        assert np.min(np.abs(result.time - 1e-6)) < 2e-9

    def test_crossing_times_rising_filter(self):
        ckt = rc_circuit()
        result = transient(ckt, 8e-6, TransientOptions(dt_max=1e-8))
        ups = result.crossing_times("out", 0.5, rising=True)
        downs = result.crossing_times("out", 0.5, rising=False)
        assert ups.size == 1
        assert downs.size == 0
        # RC reaches 50 % after ln(2) tau
        assert ups[0] == pytest.approx(1e-6 + math.log(2.0) * 1e-6,
                                       rel=1e-2)


class TestSineDrive:
    def test_amplitude_rolloff_at_pole(self):
        # Drive the RC at its pole: |H| = 1/sqrt(2).
        tau = 1e-6
        f_pole = 1.0 / (2.0 * math.pi * tau)
        ckt = Circuit()
        ckt.add_vsource("V1", "in", "0",
                        sine_wave(0.0, 1.0, f_pole))
        ckt.add_resistor("R1", "in", "out", 1e6)
        ckt.add_capacitor("C1", "out", "0", 1e-12)
        result = transient(ckt, 20.0 / f_pole,
                           TransientOptions(dt_max=1.0 / (200.0 * f_pole)))
        # Steady state: look at the last 5 periods.
        mask = result.time > 15.0 / f_pole
        amplitude = 0.5 * (result.voltage("out")[mask].max()
                           - result.voltage("out")[mask].min())
        assert amplitude == pytest.approx(1.0 / math.sqrt(2.0), rel=0.03)


class TestChargeConservation:
    def test_cap_divider_final_value(self):
        # Two series caps from a stepped source settle to the C-divider.
        ckt = Circuit()
        ckt.add_vsource("V1", "in", "0", step_wave(0.0, 1.0, 1e-9))
        ckt.add_capacitor("C1", "in", "mid", 2e-12)
        ckt.add_capacitor("C2", "mid", "0", 1e-12)
        ckt.add_resistor("Rleak", "mid", "0", 1e12)  # keeps DC defined
        result = transient(ckt, 100e-9)
        assert result.value_at("mid", 90e-9) == pytest.approx(2.0 / 3.0,
                                                              rel=0.02)

    def test_record_currents_option(self):
        ckt = rc_circuit()
        result = transient(ckt, 4e-6,
                           TransientOptions(record_currents=True))
        assert "V1" in result.branch_currents
        assert result.branch_currents["V1"].shape == result.time.shape

    def test_record_currents_excludes_current_sources(self):
        """Only voltage-defined elements own an MNA branch current; a
        CurrentSource must never appear in the recorded set (its current
        is its waveform value, it has no branch unknown)."""
        ckt = rc_circuit()
        ckt.add_isource("I1", "out", "0", 1e-9)
        result = transient(ckt, 4e-6,
                           TransientOptions(record_currents=True))
        assert "V1" in result.branch_currents
        assert "I1" not in result.branch_currents


class TestInitialOpValidation:
    def test_nan_placeholder_initial_op_rejected(self):
        """A NaN placeholder point (``on_error="skip"``) carries no
        solution vector; handing it to transient() used to crash with
        ``AttributeError: 'NoneType' object has no attribute 'copy'``
        -- it must be a clear AnalysisError instead."""
        from repro.errors import AnalysisError
        from repro.spice.results import OpResult

        placeholder = OpResult(voltages={"out": float("nan")},
                               branch_currents={}, x=None)
        assert not placeholder.converged
        with pytest.raises(AnalysisError, match="x is None"):
            transient(rc_circuit(), 1e-6, initial_op=placeholder)

    def test_converged_initial_op_accepted(self):
        from repro.spice import operating_point

        ckt = rc_circuit()
        op = operating_point(ckt)
        result = transient(ckt, 1e-6, initial_op=op)
        assert result.time[0] == 0.0


class TestTelemetry:
    def test_clean_run_reports_zero_rejections(self):
        result = transient(rc_circuit(), 4e-6)
        telemetry = result.telemetry
        assert telemetry is not None
        assert telemetry.steps_rejected == 0
        assert telemetry.steps_accepted == len(result.time) - 1
        assert telemetry.newton_iterations >= telemetry.steps_accepted
        assert telemetry.dt_smallest <= 4e-6 / 50.0
        assert "0 rejected" in telemetry.describe()

    def test_rejections_are_counted_and_timestamped(self):
        """A one-iteration Newton budget rejects every first attempt,
        which the telemetry must record before the run stalls."""
        from repro.errors import ConvergenceError
        from repro.spice import NewtonOptions

        with pytest.raises(ConvergenceError) as excinfo:
            transient(rc_circuit(), 4e-6, TransientOptions(
                newton=NewtonOptions(max_iterations=1)))
        error = excinfo.value
        assert error.diagnostics is not None
        assert error.diagnostics.steps_rejected >= 1
        assert len(error.diagnostics.rejection_times) >= 1

    def test_rejection_budget_stops_a_grinding_run(self):
        from repro.errors import ConvergenceError
        from repro.spice import NewtonOptions

        with pytest.raises(ConvergenceError) as excinfo:
            transient(rc_circuit(), 4e-6, TransientOptions(
                newton=NewtonOptions(max_iterations=1),
                max_rejections=3))
        error = excinfo.value
        assert error.stage == "rejection-budget"
        assert error.diagnostics.steps_rejected == 4
        assert "rejection budget" in str(error)

    def test_describe_without_committed_steps_reports_na(self):
        """Freshly-initialised telemetry (or a run that died before its
        first commit) must not render ``min()``'s infinity identity as
        an 'inf seconds' step size."""
        from repro.spice.transient import TransientTelemetry

        telemetry = TransientTelemetry()
        text = telemetry.describe()
        assert "inf" not in text
        assert "n/a" in text
        # One committed step restores the numeric report.
        telemetry.steps_accepted = 1
        telemetry.dt_smallest = 2.5e-9
        assert "2.500e-09 s" in telemetry.describe()


def _stscl_chain_circuit():
    """Two-stage pulse-driven STSCL buffer chain (the LTE workload)."""
    from repro.stscl.gate_model import StsclGateDesign
    from repro.stscl.netlist_gen import stscl_buffer_chain_circuit

    design = StsclGateDesign.default(1e-9)
    vdd = 0.4
    t_d = design.delay()
    high, low = vdd, vdd - design.v_sw
    edge = t_d / 5.0
    in_p = pulse_wave(low, high, delay=t_d, rise=edge, fall=edge,
                      width=3 * t_d, period=6 * t_d)
    in_n = pulse_wave(high, low, delay=t_d, rise=edge, fall=edge,
                      width=3 * t_d, period=6 * t_d)
    circuit, _ports = stscl_buffer_chain_circuit(design, vdd, 2, in_p, in_n)
    return circuit, t_d


class TestConvergenceOrder:
    """Empirical order study on a sine-driven RC with a closed-form
    solution: halving a fixed legacy step must divide the max error by
    ~4 for trapezoid (2nd order) and ~2 for backward Euler (1st)."""

    R, C = 1e6, 1e-12
    F0 = 200e3  # period 5 us against tau = 1 us

    def _sine_rc(self):
        ckt = Circuit("rc_sine")
        ckt.add_vsource("V1", "in", "0", sine_wave(0.0, 1.0, self.F0))
        ckt.add_resistor("R1", "in", "out", self.R)
        ckt.add_capacitor("C1", "out", "0", self.C)
        return ckt

    def _exact(self, t):
        # v' = (sin(wt) - v)/tau with v(0) = 0.
        tau = self.R * self.C
        w = 2.0 * np.pi * self.F0
        a = w * tau
        return (np.sin(w * t) - a * np.cos(w * t)
                + a * np.exp(-t / tau)) / (1.0 + a * a)

    def _max_error(self, method, h):
        result = transient(self._sine_rc(), 5e-6, TransientOptions(
            method=method, step_control="legacy",
            dt_initial=h, dt_max=h))
        return float(np.max(np.abs(result.voltage("out")
                                   - self._exact(result.time))))

    def test_trap_is_second_order(self):
        coarse = self._max_error("trap", 1e-7)
        fine = self._max_error("trap", 5e-8)
        assert coarse / fine == pytest.approx(4.0, rel=0.15)

    def test_backward_euler_is_first_order(self):
        coarse = self._max_error("be", 1e-7)
        fine = self._max_error("be", 5e-8)
        assert coarse / fine == pytest.approx(2.0, rel=0.15)

    def test_trap_beats_backward_euler_at_equal_step(self):
        assert self._max_error("trap", 1e-7) < \
            0.1 * self._max_error("be", 1e-7)


class TestLuReuseEquivalence:
    """The modified-Newton LU-reuse fast path must be an implementation
    detail: answers match the always-refactorize path to <= 1e-9."""

    def test_transient_waveforms_match(self):
        from repro.spice import NewtonOptions

        runs = {}
        for reuse in (True, False):
            circuit, t_d = _stscl_chain_circuit()
            runs[reuse] = transient(circuit, 6 * t_d, TransientOptions(
                step_control="legacy", dt_max=t_d / 10.0,
                newton=NewtonOptions(lu_reuse=reuse)))
        on, off = runs[True], runs[False]
        assert np.array_equal(on.time, off.time)
        for node in on.voltages:
            assert np.max(np.abs(on.voltage(node)
                                 - off.voltage(node))) <= 1e-9

    def test_dc_sweep_matches(self):
        from repro.spice import NewtonOptions, dc_sweep
        from repro.stscl.gate_model import StsclGateDesign
        from repro.stscl.netlist_gen import stscl_inverter_circuit

        design = StsclGateDesign.default(1e-9)
        vdd = 0.4
        high, low = vdd, vdd - design.v_sw
        values = list(np.linspace(low, high, 11))
        sweeps = {}
        for reuse in (True, False):
            circuit, _ = stscl_inverter_circuit(design, vdd, high, low)
            sweeps[reuse] = dc_sweep(circuit, "vinp", values,
                                     NewtonOptions(lu_reuse=reuse))
        on, off = sweeps[True], sweeps[False]
        for node in on.points[0].voltages:
            assert np.max(np.abs(on.voltage(node)
                                 - off.voltage(node))) <= 1e-9


class TestLegacyBitCompat:
    """``step_control="legacy"`` must stay bit-identical: the LTE
    tolerance knobs and the LU-reuse flag may not perturb its output."""

    def _run(self, **overrides):
        circuit, t_d = _stscl_chain_circuit()
        options = TransientOptions(step_control="legacy",
                                   dt_max=t_d / 10.0, **overrides)
        return transient(circuit, 6 * t_d, options)

    def _assert_bitwise_equal(self, a, b):
        assert np.array_equal(a.time, b.time)
        assert set(a.voltages) == set(b.voltages)
        for node in a.voltages:
            assert np.array_equal(a.voltage(node), b.voltage(node)), node

    def test_lte_tolerances_do_not_leak_into_legacy(self):
        baseline = self._run()
        perturbed = self._run(reltol=1e-1, abstol=1e-2, trtol=100.0)
        self._assert_bitwise_equal(baseline, perturbed)

    def test_lu_reuse_flag_does_not_perturb_legacy(self):
        from repro.spice import NewtonOptions

        baseline = self._run()
        reused = self._run(newton=NewtonOptions(lu_reuse=True))
        direct = self._run(newton=NewtonOptions(lu_reuse=False))
        self._assert_bitwise_equal(baseline, reused)
        self._assert_bitwise_equal(baseline, direct)


class TestLteController:
    """Regression pins for the LTE step controller on the pulse-driven
    STSCL chain.  The accepted-step counts are exact: any change to the
    controller (error constants, safety factor, breakpoint restart,
    predictor order) shows up here as a changed integer."""

    def _run(self, reltol):
        circuit, t_d = _stscl_chain_circuit()
        return transient(circuit, 12 * t_d,
                         TransientOptions(reltol=reltol)).telemetry

    def test_step_counts_are_pinned(self):
        tight = self._run(1e-3)
        loose = self._run(1e-2)
        assert tight.steps_accepted == 105
        assert loose.steps_accepted == 84
        assert tight.lte_rejections == 8
        assert loose.steps_rejected == 0

    def test_tighter_tolerance_takes_more_steps(self):
        assert self._run(1e-3).steps_accepted > \
            self._run(1e-2).steps_accepted


class TestRejectionBreakdown:
    def test_describe_appends_breakdown_after_historical_prefix(self):
        """The rejection-cause breakdown rides after the historical
        string shape, so prefix-matching log parsers keep working."""
        from repro.spice.transient import TransientTelemetry

        telemetry = TransientTelemetry()
        telemetry.steps_accepted = 10
        telemetry.newton_iterations = 30
        telemetry.dt_smallest = 1e-9
        telemetry.record_rejection(1e-6, kind="newton")
        telemetry.record_rejection(2e-6, kind="lte")
        telemetry.record_rejection(3e-6, kind="lte")
        text = telemetry.describe()
        prefix = ("10 steps accepted, 3 rejected (23%), "
                  "30 Newton iterations, smallest dt 1.000e-09 s")
        assert text.startswith(prefix)
        assert text == prefix + "; rejections: 1 newton, 2 lte"

    def test_clean_run_keeps_historical_string_exactly(self):
        from repro.spice.transient import TransientTelemetry

        telemetry = TransientTelemetry()
        telemetry.steps_accepted = 4
        telemetry.newton_iterations = 9
        telemetry.dt_smallest = 2e-8
        assert telemetry.describe() == (
            "4 steps accepted, 0 rejected (0%), "
            "9 Newton iterations, smallest dt 2.000e-08 s")


class TestWallClockBudget:
    def test_step_loop_aborts_with_telemetry(self):
        from repro.errors import ConvergenceError
        from repro.spice import operating_point
        from repro.spice.transient import TransientTelemetry

        ckt = rc_circuit()
        op = operating_point(ckt)  # outside the budget
        with pytest.raises(ConvergenceError) as excinfo:
            transient(ckt, 4e-6,
                      TransientOptions(max_wall_time=0.0),
                      initial_op=op)
        error = excinfo.value
        assert error.stage == "wall-clock"
        assert isinstance(error.diagnostics, TransientTelemetry)
        assert "wall-clock budget" in str(error)

    def test_kwarg_overrides_options(self):
        from repro.errors import ConvergenceError
        from repro.spice import operating_point

        ckt = rc_circuit()
        op = operating_point(ckt)
        with pytest.raises(ConvergenceError) as excinfo:
            transient(ckt, 4e-6, initial_op=op, max_wall_time=0.0)
        assert excinfo.value.stage == "wall-clock"

    def test_generous_budget_is_invisible(self):
        baseline = transient(rc_circuit(), 4e-6)
        budgeted = transient(rc_circuit(), 4e-6, max_wall_time=3600.0)
        np.testing.assert_allclose(budgeted.voltage("out"),
                                   baseline.voltage("out"))
        assert len(budgeted.time) == len(baseline.time)

    def test_budget_covers_the_initial_operating_point(self):
        from repro.errors import ConvergenceError

        with pytest.raises(ConvergenceError) as excinfo:
            transient(rc_circuit(), 4e-6,
                      TransientOptions(max_wall_time=0.0))
        assert excinfo.value.stage == "wall-clock"


class TestRecordingMemory:
    """The dense recorder must not materialize a contiguous copy per
    node: waveforms are row views into one shared store, and the
    finalization peak stays well under the old stack-then-copy path
    (which held the sample list, the stacked trace AND the growing
    per-node copies at once: >= 3x the final waveform bytes)."""

    def _chain(self, n=30):
        ckt = Circuit("rc_chain")
        ckt.add_vsource("V1", "in", "0", step_wave(0.0, 1.0, 1e-6))
        for k in range(n):
            ckt.add_resistor(f"R{k}", "in" if k == 0 else f"n{k - 1}",
                             f"n{k}", 1e5)
            ckt.add_capacitor(f"C{k}", f"n{k}", "0", 1e-12)
        return ckt

    def test_node_waveforms_share_one_base(self):
        result = transient(self._chain(), 4e-6,
                           TransientOptions(dt_max=1e-8))
        bases = {id(v.base) for v in result.voltages.values()}
        assert bases == {id(next(iter(result.voltages.values())).base)}
        for v in result.voltages.values():
            assert v.base is not None          # a view, not a copy
            assert v.flags["C_CONTIGUOUS"]     # but still contiguous

    def test_finalization_peak_is_bounded(self):
        import tracemalloc

        # Untraced warmup populates compile caches outside the trace.
        transient(self._chain(), 40e-6, TransientOptions(dt_max=2e-9))
        tracemalloc.start()
        tracemalloc.reset_peak()
        before = tracemalloc.get_traced_memory()[0]
        result = transient(self._chain(), 40e-6,
                           TransientOptions(dt_max=2e-9))
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        final_bytes = result.time.nbytes + sum(
            v.nbytes for v in result.voltages.values())
        assert result.time.size > 10_000  # big enough to be meaningful
        # Store + per-step sample list (freed incrementally while the
        # store fills) land near 2x + per-array overhead; the old
        # ascontiguousarray-per-node path exceeded 3x.
        assert peak - before < 3.0 * final_bytes


class TestBreakpointsPastStop:
    """Waveform corners at or beyond t_stop are dropped before the
    breakpoint merge -- a pulse train extending past the run window
    must not perturb the LTE controller near the end of the run."""

    def _run(self, t_stop):
        ckt = Circuit("pulse_past_stop")
        ckt.add_vsource("V1", "in", "0",
                        pulse_wave(0.0, 1.0, delay=1e-6, rise=1e-9,
                                   fall=1e-9, width=2e-6, period=4e-6))
        ckt.add_resistor("R1", "in", "out", 1e6)
        ckt.add_capacitor("C1", "out", "0", 1e-12)
        return transient(ckt, t_stop, TransientOptions(reltol=1e-3))

    def test_lte_step_count_is_pinned(self):
        """t_stop lands mid-period: the remaining corners of that and
        all later periods are outside the window.  The accepted-step
        count is pinned (like TestLteController) so any change to the
        corner-dropping protocol shows up as a changed integer."""
        result = self._run(9.2e-6)
        assert result.telemetry.steps_accepted == 120
        assert result.telemetry.steps_rejected == 0

    def test_no_sample_lands_at_or_beyond_t_stop(self):
        result = self._run(9.2e-6)
        assert result.time[-1] == pytest.approx(9.2e-6, abs=1e-18)
        assert np.all(result.time <= 9.2e-6)

    def test_edges_inside_the_window_are_still_landed(self):
        """Corner dropping must only affect corners outside the run:
        every pulse edge inside it still gets a sample."""
        result = self._run(9.2e-6)
        for edge in (1e-6, 3e-6 + 1e-9, 5e-6, 7e-6 + 1e-9, 9e-6):
            assert np.min(np.abs(result.time - edge)) < 2e-9
