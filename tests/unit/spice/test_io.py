"""Unit tests for SPICE-deck export / import round-trips."""

import numpy as np
import pytest

from repro.devices import Diode, Mosfet, NWELL_DIODE_180, nmos_180
from repro.errors import NetlistError
from repro.spice import Circuit, operating_point
from repro.spice.io import read_netlist, write_netlist
from repro.spice.waveforms import sine_wave


def stscl_like_circuit() -> Circuit:
    circuit = Circuit("unit_cell", temperature=300.0)
    circuit.add_vsource("vdd", "vdd", "0", 1.0)
    circuit.add_vsource("vbp", "vbp", "0", 0.65)
    circuit.add_vsource("vin", "in", "0", 1.0)
    device = Mosfet(nmos_180(), w=2e-6, l=1e-6)
    circuit.add_mosfet("m1", "out", "in", "tail", "0", device)
    circuit.add_isource("itail", "tail", "0", 1e-9)
    circuit.add_resistor("rl", "vdd", "out", 200e6)
    circuit.add_capacitor("cl", "out", "0", 35e-15)
    circuit.add_diode("dw", "0", "out", Diode(NWELL_DIODE_180))
    circuit.add_vcvs("eamp", "x", "0", "out", "0", 10.0)
    circuit.add_vccs("gm", "0", "y", "out", "0", 1e-6)
    circuit.add_resistor("rx", "x", "0", 1e6)
    circuit.add_resistor("ry", "y", "0", 1e6)
    circuit.nodeset("out", 0.8)
    return circuit


class TestExport:
    def test_deck_structure(self):
        deck = write_netlist(stscl_like_circuit())
        assert deck.startswith("* unit_cell\n")
        assert ".temp 26.85" in deck
        assert ".end" in deck
        assert "Mm1 out in tail 0 nmos_180" in deck
        assert ".nodeset v(out)=800m" in deck

    def test_waveform_exports_t0_value_with_note(self):
        circuit = Circuit("wave")
        circuit.add_vsource("vs", "a", "0", sine_wave(0.5, 0.1, 1e3))
        circuit.add_resistor("r", "a", "0", 1e3)
        deck = write_netlist(circuit)
        assert "exported as its t=0 value" in deck
        assert "Vvs a 0 DC 500m" in deck


class TestRoundTrip:
    def test_dc_solution_preserved(self):
        original = stscl_like_circuit()
        restored = read_netlist(write_netlist(original))
        op_a = operating_point(original)
        op_b = operating_point(restored)
        for node in ("out", "tail", "x", "y"):
            assert op_b.voltage(node) == pytest.approx(
                op_a.voltage(node), abs=1e-5)

    def test_metadata_preserved(self):
        restored = read_netlist(write_netlist(stscl_like_circuit()))
        assert restored.name == "unit_cell"
        assert restored.temperature == pytest.approx(300.0, abs=0.01)
        assert restored.nodesets["out"] == pytest.approx(0.8)

    def test_element_count_preserved(self):
        original = stscl_like_circuit()
        restored = read_netlist(write_netlist(original))
        # MOS companion caps become explicit C cards; counts match 1:1.
        assert len(restored.elements) == len(original.elements)


class TestImportValidation:
    def test_unknown_card_rejected(self):
        with pytest.raises(NetlistError):
            read_netlist("* t\nL1 a 0 1m\n.end\n")

    def test_unknown_diode_model_rejected(self):
        with pytest.raises(NetlistError):
            read_netlist("* t\nD1 a 0 mystery_diode\n.end\n")

    def test_mos_needs_geometry(self):
        with pytest.raises(NetlistError):
            read_netlist("* t\nM1 d g s b nmos_180 M=1\n.end\n")

    def test_hand_written_deck(self):
        deck = """* divider
V1 in 0 DC 1.0
R1 in mid 10k
R2 mid 0 30k
.end
"""
        circuit = read_netlist(deck)
        op = operating_point(circuit)
        assert op.voltage("mid") == pytest.approx(0.75, rel=1e-6)
