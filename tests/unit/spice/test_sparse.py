"""Sparse backend: bit-level stamp-scatter agreement and selection.

The sparse assembler is a *twin* of the dense flat-index scatter, not a
reimplementation: every triplet segment mirrors one dense accumulation
pass in the same left-to-right order (``lin, mos, dio, cap, diocap,
diag``), and ``np.bincount`` sums duplicate triplets sequentially.  The
contract is therefore exact equality of the assembled entries -- these
tests compare with ``==``, not a tolerance.  (The one deliberate
exception: stacking *two* diagonal stamps, e.g. a pseudo-transient
anchor plus gmin, associates differently between the backends, so the
bit-level tests use a single ``add_diagonal`` call.)
"""

import numpy as np
import pytest

from repro.devices.diode import Diode, DiodeParameters
from repro.errors import NetlistError
from repro.spice import Circuit, NewtonOptions, operating_point
from repro.spice.elements import Element, Stamper
from repro.spice.sparse import (SPARSE_AUTO_THRESHOLD, SparseStamper,
                                SparseSystem, sparse_available)
from repro.stscl.netlist_gen import stscl_inverter_circuit

pytestmark = pytest.mark.skipif(not sparse_available(),
                                reason="scipy.sparse unavailable")

DIODE = Diode(DiodeParameters(name="junction", i_s=1e-16))


def mixed_circuit(backend: str) -> Circuit:
    """R + V + I + diode + VCVS: every linear pattern plus both
    nonlinear banks."""
    circuit = Circuit("mixed", matrix_backend=backend)
    circuit.add_vsource("V1", "in", "0", 1.2)
    circuit.add_resistor("R1", "in", "a", 220.0)
    circuit.add_diode("D1", "a", "0", DIODE)
    circuit.add_resistor("R2", "a", "b", 1e3)
    circuit.add_capacitor("C1", "b", "0", 1e-12)
    circuit.add_isource("I1", "b", "0", 1e-6)
    circuit.add_vcvs("E1", "c", "0", "a", "0", 2.0)
    circuit.add_resistor("R3", "c", "0", 5e3)
    return circuit


def inverter_circuit(backend: str, design) -> Circuit:
    circuit, _ = stscl_inverter_circuit(design, 0.4)
    circuit.matrix_backend = backend
    return circuit


def _pair(builder):
    """(dense stamper+compiled, sparse stamper+compiled) of one
    topology built twice -- identical node indexing by construction."""
    dense = builder("dense").compile()
    sparse = builder("sparse").compile()
    st_d, st_s = dense.new_stamper(), sparse.new_stamper()
    assert isinstance(st_d, Stamper)
    assert isinstance(st_s, SparseStamper)
    return (dense, st_d), (sparse, st_s)


class TestBitLevelAgreement:
    @pytest.mark.parametrize("x_kind", ["flat", "solved"])
    def test_static_assembly_is_bit_identical(self, x_kind):
        (dense, st_d), (sparse, st_s) = _pair(mixed_circuit)
        x = dense.circuit.initial_guess(dense)
        if x_kind == "solved":
            x = operating_point(dense.circuit).x
        dense.stamp_all(st_d, x, None)
        sparse.stamp_all(st_s, x, None)
        assert np.array_equal(st_s.matrix().toarray(), st_d.jac)
        assert np.array_equal(st_s.res, st_d.res)

    def test_mos_bank_assembly_is_bit_identical(self, default_design):
        (dense, st_d), (sparse, st_s) = _pair(
            lambda backend: inverter_circuit(backend, default_design))
        x = operating_point(dense.circuit).x
        dense.stamp_all(st_d, x, None)
        sparse.stamp_all(st_s, x, None)
        assert np.array_equal(st_s.matrix().toarray(), st_d.jac)
        assert np.array_equal(st_s.res, st_d.res)

    def test_charge_companions_are_bit_identical(self, default_design):
        """The transient companion stamp (cap + diode-cap segments)
        lands on the same entries with the same values."""
        (dense, st_d), (sparse, st_s) = _pair(
            lambda backend: inverter_circuit(backend, default_design))
        x = operating_point(dense.circuit).x
        c0 = 1.0 / 1e-9  # backward-Euler coefficient for dt = 1 ns
        q0 = dense.assembler.charge_vector(x)
        rhs = -c0 * q0
        for compiled, st in ((dense, st_d), (sparse, st_s)):
            compiled.stamp_all(st, x, None)
            compiled.assembler.stamp_charges(st, x, c0, rhs)
        assert np.array_equal(st_s.matrix().toarray(), st_d.jac)
        assert np.array_equal(st_s.res, st_d.res)

    def test_gmin_diagonal_is_bit_identical(self):
        (dense, st_d), (sparse, st_s) = _pair(mixed_circuit)
        x = dense.circuit.initial_guess(dense)
        n_nodes = len(dense.node_index)
        for compiled, st in ((dense, st_d), (sparse, st_s)):
            compiled.stamp_all(st, x, None)
            st.add_diagonal(1e-9, n_nodes)
        assert np.array_equal(st_s.matrix().toarray(), st_d.jac)

    def test_solutions_agree_to_solver_tolerance(self, default_design):
        """End-to-end: same circuit through both Newton backends."""
        dense = operating_point(inverter_circuit("dense", default_design))
        sparse = operating_point(
            inverter_circuit("sparse", default_design))
        for node, value in dense.voltages.items():
            assert sparse.voltages[node] == pytest.approx(value,
                                                          abs=1e-9)


class TestBackendSelection:
    def test_auto_stays_dense_below_threshold(self):
        compiled = mixed_circuit("auto").compile()
        assert compiled.size < SPARSE_AUTO_THRESHOLD
        assert compiled.solver_backend() == "dense"

    def test_auto_switches_at_threshold(self):
        circuit = Circuit("ladder", matrix_backend="auto")
        previous = "0"
        for k in range(SPARSE_AUTO_THRESHOLD + 1):
            circuit.add_resistor(f"R{k}", previous, f"n{k}", 100.0)
            previous = f"n{k}"
        circuit.add_vsource("V1", previous, "0", 1.0)
        compiled = circuit.compile()
        assert compiled.size >= SPARSE_AUTO_THRESHOLD
        assert compiled.solver_backend() == "sparse"

    def test_explicit_sparse_honored_on_tiny_circuits(self):
        assert mixed_circuit("sparse").compile().solver_backend() \
            == "sparse"

    def test_explicit_dense_always_dense(self):
        assert mixed_circuit("dense").compile().solver_backend() \
            == "dense"

    def test_unknown_backend_rejected(self):
        with pytest.raises(NetlistError, match="matrix_backend"):
            Circuit("bad", matrix_backend="banded")

    def test_foreign_element_pins_to_dense(self):
        """An imperative (fallback) stamp has no triplet twin: auto
        degrades to dense, explicit sparse refuses loudly."""

        class Gyrator(Element):
            def __init__(self):
                super().__init__("GY1", ("p", "q"))

            def stamp(self, st, x, time):
                p, q = self.node_indices
                st.add_j(p, p, 1e-3)
                st.add_j(q, q, 1e-3)
                st.res[p] += 1e-3 * x[p]
                st.res[q] += 1e-3 * x[q]

        def build(backend):
            circuit = Circuit("foreign", matrix_backend=backend)
            circuit.add_vsource("V1", "p", "0", 1.0)
            circuit.add_resistor("R1", "p", "q", 1e3)
            circuit._register(Gyrator())
            return circuit

        assert build("auto").compile().solver_backend() == "dense"
        with pytest.raises(NetlistError, match="sparse"):
            build("sparse").compile().solver_backend()


class TestSparseSystem:
    def test_duplicate_triplets_accumulate(self):
        system = SparseSystem(2, {
            "a": (np.array([0, 0, 1]), np.array([0, 0, 1])),
            "diag": (np.array([0, 1]), np.array([0, 1]))})
        matrix = system.matrix(np.array([1.0, 2.0, 5.0, 0.25, 0.75]))
        assert np.array_equal(matrix.toarray(),
                              [[3.25, 0.0], [0.0, 5.75]])

    def test_unmasked_ground_entries_rejected(self):
        with pytest.raises(ValueError, match="ground"):
            SparseSystem(2, {"a": (np.array([-1]), np.array([0]))})

    def test_empty_system_builds(self):
        system = SparseSystem(3, {})
        assert system.nnz == 0
        assert system.matrix(np.zeros(0)).shape == (3, 3)
