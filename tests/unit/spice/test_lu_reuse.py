"""LuReuseState lifecycle: rung isolation and key invalidation.

The chord-Newton factorization cache must never leak across solves
whose Jacobians differ -- a gmin- or source-stepping rung factors a
*different* matrix at every continuation stage, so a factor cached by
an earlier rung (or an earlier stage of the same rung) must not be
consumed as if it were current.  Two mechanisms guarantee that:

* each :func:`~repro.spice.strategies.newton_solve` call without an
  explicit ``lu_state`` gets a fresh private cache, so strategy rungs
  are isolated by construction;
* callers that *do* share a state across solves (the transient engine)
  key it with :meth:`LuReuseState.ensure_key` and the cache drops
  itself whenever the key -- the companion-model coefficient -- moves.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.devices.diode import Diode, DiodeParameters
from repro.spice import (
    Circuit,
    GminSteppingStrategy,
    NewtonOptions,
    NewtonStrategy,
    operating_point,
)
from repro.spice.strategies import LuReuseState, newton_solve

DIODE = Diode(DiodeParameters(name="junction", i_s=1e-16))

#: Enough for the easy points, far too little for the 8 V walk.
TIGHT = NewtonOptions(max_iterations=20)


def hard_diode() -> Circuit:
    """8 V into a diode through 10 ohms: a 27-iteration Newton walk."""
    circuit = Circuit("hard_diode")
    circuit.add_vsource("V1", "in", "0", 8.0)
    circuit.add_resistor("RS", "in", "a", 10.0)
    circuit.add_diode("D1", "a", "0", DIODE)
    return circuit


def mild_diode() -> Circuit:
    circuit = Circuit("mild_diode")
    circuit.add_vsource("V1", "in", "0", 1.0)
    circuit.add_resistor("RS", "in", "a", 100.0)
    circuit.add_diode("D1", "a", "0", DIODE)
    return circuit


class TestStateSemantics:
    def test_ensure_key_keeps_factor_while_key_is_stable(self):
        state = LuReuseState()
        state.key, state.lu = 1e-9, object()
        state.ensure_key(1e-9)
        assert state.lu is not None

    def test_ensure_key_drops_factor_on_key_change(self):
        """The transient engine's dt-change discipline: a new companion
        coefficient means a new Jacobian, so the cache must clear."""
        state = LuReuseState()
        state.key, state.lu = 1e-9, object()
        state.ensure_key(2e-9)
        assert state.lu is None
        assert state.key == 2e-9

    def test_invalidate_clears_factor_only(self):
        state = LuReuseState()
        state.key, state.lu = "k", object()
        state.invalidate()
        assert state.lu is None
        assert state.key == "k"


def _newton_spans(root):
    return root.find_all("newton")


class TestRungIsolation:
    def test_every_solve_opens_with_a_fresh_factorization(self):
        """Two back-to-back solves of the same compiled circuit: the
        second must factor anew on its first iteration, never chord-step
        off the first solve's cached factor (no ``lu_state`` passed
        means a private, solve-scoped cache)."""
        circuit = mild_diode()
        compiled = circuit.compile()
        x0 = circuit.initial_guess(compiled)
        options = NewtonOptions()
        with telemetry.tracing("isolation") as trace:
            x1, _ = newton_solve(compiled, x0, None, options, options.gmin)
            newton_solve(compiled, x1, None, options, options.gmin)
        spans = _newton_spans(trace.root)
        assert len(spans) == 2
        for span in spans:
            first_iter = span.events_of("newton-iter")[0]
            assert first_iter["lu_reused"] is False

    def test_gmin_rung_never_consumes_a_foreign_factor(self):
        """Newton fails, gmin stepping rescues.  Every continuation
        stage solves a different Jacobian (the shunt changes a decade
        at a time), so each stage's opening step must be a fresh
        factorization -- chord steps may only appear *within* one
        stage's iterations."""
        with telemetry.tracing("ladder") as trace:
            op = operating_point(hard_diode(), TIGHT, strategies=(
                NewtonStrategy(),
                GminSteppingStrategy(max_iterations=80)))
        assert op.diagnostics.rescued_by == "gmin-stepping"
        gmin_span = trace.root.find("strategy:gmin-stepping")
        assert gmin_span is not None
        spans = _newton_spans(gmin_span)
        assert len(spans) > 2  # one per continuation stage
        for span in spans:
            first_iter = span.events_of("newton-iter")[0]
            assert first_iter["lu_reused"] is False

    def test_rescued_solution_matches_an_unconstrained_solve(self):
        """Isolation is not just hygiene: the rescued answer must equal
        plain Newton given a generous budget."""
        reference = operating_point(
            hard_diode(), NewtonOptions(max_iterations=400),
            strategies=(NewtonStrategy(),))
        rescued = operating_point(hard_diode(), TIGHT, strategies=(
            NewtonStrategy(), GminSteppingStrategy(max_iterations=80)))
        for node, value in reference.voltages.items():
            assert rescued.voltages[node] == pytest.approx(value,
                                                           abs=1e-9)

    def test_shared_state_survives_within_one_key(self):
        """Transient-style sharing: with an explicit ``lu_state`` the
        factor persists across calls while the key holds, and dies on
        ``ensure_key`` when the companion coefficient moves."""
        circuit = mild_diode()
        compiled = circuit.compile()
        x0 = circuit.initial_guess(compiled)
        options = NewtonOptions()
        state = LuReuseState()
        state.ensure_key(1e-9)
        x1, _ = newton_solve(compiled, x0, None, options, options.gmin,
                             lu_state=state)
        assert state.lu is not None
        state.ensure_key(2e-9)  # dt change
        assert state.lu is None
        x2, _ = newton_solve(compiled, x1, None, options, options.gmin,
                             lu_state=state)
        np.testing.assert_allclose(x2, x1, atol=1e-9)


class TestWorkerBoundaries:
    """The cached handle is C-level state (possibly a SuperLU object):
    it must never travel into a worker payload or survive a fork --
    the state degrades to empty instead."""

    def test_pickle_round_trip_ships_an_empty_state(self):
        import pickle

        state = LuReuseState()
        state.ensure_key(("dt", 1e-9))
        state.lu = object()  # stand-in for an unpicklable SuperLU handle
        restored = pickle.loads(pickle.dumps(state))
        assert isinstance(restored, LuReuseState)
        assert restored.lu is None
        assert restored.key is None
        # The original is untouched: degradation happens in the copy.
        assert state.lu is not None

    def test_unpicklable_handle_never_blocks_the_payload(self):
        """Pickling must succeed *regardless* of what the handle is --
        __reduce__ drops it before the pickler ever sees it."""
        import pickle

        class _Unpicklable:
            def __reduce__(self):
                raise TypeError("C-level handle")

        state = LuReuseState()
        state.lu = _Unpicklable()
        pickle.dumps(state)  # must not raise

    @pytest.mark.skipif(not hasattr(__import__("os"), "fork"),
                        reason="fork-only semantics")
    def test_forked_child_sees_invalidated_states(self):
        """A live state's handle points at parent-owned memory; the
        after-fork hook must clear every registered instance in the
        child before any solve can back-substitute against it."""
        import os

        state = LuReuseState()
        state.ensure_key("parent-key")
        state.lu = ("lu", "piv")  # dense-style factor stand-in
        pid = os.fork()
        if pid == 0:  # child
            ok = state.lu is None and state.key is None
            os._exit(0 if ok else 1)
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0
        # The parent keeps its cache: only the child was reset.
        assert state.lu == ("lu", "piv")
        assert state.key == "parent-key"
