"""Property-based tests of the MNA engine on randomised networks.

The engine must obey network theory regardless of topology: voltage
dividers follow the cumulative resistance ratio, linear networks obey
superposition, and transients settle to the DC solution.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spice import Circuit, TransientOptions, operating_point, transient
from repro.spice.waveforms import step_wave

resistances = st.lists(st.floats(min_value=10.0, max_value=1e7),
                       min_size=2, max_size=8)


class TestDividerChains:
    @given(resistances, st.floats(min_value=-5.0, max_value=5.0))
    @settings(max_examples=40, deadline=None)
    def test_series_chain_matches_ratio(self, values, v_source):
        circuit = Circuit("chain")
        circuit.add_vsource("V1", "n0", "0", v_source)
        for k, r in enumerate(values):
            circuit.add_resistor(f"R{k}", f"n{k}", f"n{k + 1}", r)
        circuit.add_resistor("Rend", f"n{len(values)}", "0", 100.0)
        op = operating_point(circuit)
        total = sum(values) + 100.0
        running = 0.0
        for k, r in enumerate(values):
            running += r
            expected = v_source * (1.0 - running / total)
            assert op.voltage(f"n{k + 1}") == pytest.approx(
                expected, abs=1e-9 + 1e-6 * abs(v_source))

    @given(resistances)
    @settings(max_examples=30, deadline=None)
    def test_kcl_at_star_node(self, values):
        """N resistors from a driven star point to ground: the star
        voltage equals the parallel-combination divider."""
        circuit = Circuit("star")
        circuit.add_vsource("V1", "in", "0", 1.0)
        circuit.add_resistor("Rs", "in", "star", 1e3)
        for k, r in enumerate(values):
            circuit.add_resistor(f"R{k}", "star", "0", r)
        op = operating_point(circuit)
        g_par = sum(1.0 / r for r in values)
        expected = (1.0 / 1e3) / (1.0 / 1e3 + g_par)
        assert op.voltage("star") == pytest.approx(expected, rel=1e-6)


class TestSuperposition:
    @given(st.floats(min_value=-2.0, max_value=2.0),
           st.floats(min_value=-1e-3, max_value=1e-3))
    @settings(max_examples=30, deadline=None)
    def test_two_sources_superpose(self, v1, i2):
        def solve(v_val, i_val):
            circuit = Circuit("sup")
            circuit.add_vsource("V1", "a", "0", v_val)
            circuit.add_resistor("R1", "a", "out", 2.2e3)
            circuit.add_resistor("R2", "out", "0", 4.7e3)
            circuit.add_isource("I1", "0", "out", i_val)
            return operating_point(circuit).voltage("out")

        combined = solve(v1, i2)
        parts = solve(v1, 0.0) + solve(0.0, i2)
        assert combined == pytest.approx(parts, abs=1e-9 + 1e-9)


class TestTransientSettling:
    @given(st.floats(min_value=1e3, max_value=1e6),
           st.floats(min_value=1e-12, max_value=1e-9))
    @settings(max_examples=15, deadline=None)
    def test_rc_settles_to_dc(self, r, c):
        tau = r * c
        circuit = Circuit("rc")
        circuit.add_vsource("V1", "in", "0",
                            step_wave(0.0, 1.0, 0.1 * tau))
        circuit.add_resistor("R1", "in", "out", r)
        circuit.add_capacitor("C1", "out", "0", c)
        result = transient(circuit, 12.0 * tau,
                           TransientOptions(dt_max=tau / 20.0))
        assert result.voltage("out")[-1] == pytest.approx(1.0, abs=5e-3)

    @given(st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=15, deadline=None)
    def test_monotone_charging(self, tau_scale):
        """An RC step response must never overshoot."""
        tau = 1e-6 * tau_scale
        circuit = Circuit("rc")
        circuit.add_vsource("V1", "in", "0", step_wave(0.0, 1.0, 0.0))
        circuit.add_resistor("R1", "in", "out", 1e6)
        circuit.add_capacitor("C1", "out", "0", tau / 1e6)
        result = transient(circuit, 8.0 * tau,
                           TransientOptions(dt_max=tau / 25.0))
        v = result.voltage("out")
        assert np.all(v <= 1.0 + 1e-6)
        assert np.all(np.diff(v) >= -1e-7)
