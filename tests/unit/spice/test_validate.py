"""Pre-solve structural validation: broken netlists fail with named
nets at compile time, never as a bare LAPACK singular-matrix error."""

import pytest

from repro.devices.mosfet import Mosfet
from repro.devices.parameters import nmos_180
from repro.errors import NetlistError
from repro.spice.dc import operating_point
from repro.spice.netlist import Circuit
from repro.spice.validate import (FLOATING_NET, RAIL_DISCONNECTED,
                                  SENSE_ONLY_NET, structural_report,
                                  validate_structure)


def _nmos() -> Mosfet:
    return Mosfet(nmos_180(), w=1e-6, l=0.18e-6)


def _divider() -> Circuit:
    ckt = Circuit("divider")
    ckt.add_vsource("V1", "in", "0", 1.0)
    ckt.add_resistor("R1", "in", "mid", 10e3)
    ckt.add_resistor("R2", "mid", "0", 10e3)
    return ckt


class TestCleanCircuits:
    def test_divider_passes(self):
        assert structural_report(_divider()) == []

    def test_mos_circuit_passes(self):
        ckt = Circuit("mos")
        ckt.add_vsource("vdd", "vdd", "0", 1.0)
        ckt.add_vsource("vg", "g", "0", 0.5)
        ckt.add_resistor("rl", "vdd", "d", 100e3)
        ckt.add_mosfet("m1", "d", "g", "0", "0", _nmos())
        assert structural_report(ckt) == []
        operating_point(ckt)  # and it actually solves

    def test_vccs_integrator_idiom_passes(self):
        # Ideal gm-C integrator: VCCS output into a capacitor node is
        # gmin-anchored at DC -- conventional, must not be flagged.
        ckt = Circuit("gmc")
        ckt.add_vsource("vin", "in", "0", 0.1)
        ckt.add_vccs("gm1", "out", "0", "in", "0", 1e-6)
        ckt.add_capacitor("c1", "out", "0", 1e-12)
        assert structural_report(ckt) == []


class TestDefects:
    def test_floating_net_from_nodeset(self):
        ckt = _divider()
        ckt.nodeset("phantom", 0.5)
        issues = structural_report(ckt)
        assert [i.kind for i in issues] == [FLOATING_NET]
        assert issues[0].nets == ("phantom",)

    def test_gate_only_net(self):
        ckt = Circuit("gate_only")
        ckt.add_vsource("vdd", "vdd", "0", 1.0)
        ckt.add_resistor("rl", "vdd", "d", 100e3)
        # Gate net 'g' is driven by nothing: MOS gates only sense.
        ckt.add_mosfet("m1", "d", "g", "0", "0", _nmos(),
                       with_caps=False)
        issues = structural_report(ckt)
        assert [i.kind for i in issues] == [SENSE_ONLY_NET]
        assert issues[0].nets == ("g",)
        assert "m1" in issues[0].detail

    def test_capacitor_only_net_is_sense_only(self):
        ckt = _divider()
        ckt.add_capacitor("c1", "mid", "dangling", 1e-12)
        issues = structural_report(ckt)
        assert [i.kind for i in issues] == [SENSE_ONLY_NET]
        assert issues[0].nets == ("dangling",)

    def test_rail_disconnected_island(self):
        ckt = _divider()
        ckt.add_resistor("ri", "a", "b", 1e3)  # floating R island
        issues = structural_report(ckt)
        assert [i.kind for i in issues] == [RAIL_DISCONNECTED]
        assert issues[0].nets == ("a", "b")

    def test_current_source_only_net(self):
        ckt = _divider()
        ckt.add_isource("ibad", "lonely", "0", 1e-9)
        issues = structural_report(ckt)
        assert [i.kind for i in issues] == [RAIL_DISCONNECTED]
        assert issues[0].nets == ("lonely",)

    def test_multiple_defects_all_reported(self):
        ckt = _divider()
        ckt.nodeset("phantom", 0.1)
        ckt.add_capacitor("c1", "mid", "dangling", 1e-12)
        ckt.add_resistor("ri", "a", "b", 1e3)
        kinds = {i.kind for i in structural_report(ckt)}
        assert kinds == {FLOATING_NET, SENSE_ONLY_NET, RAIL_DISCONNECTED}


class TestCompileHook:
    def test_compile_raises_netlist_error_with_net_names(self):
        ckt = _divider()
        ckt.add_resistor("ri", "a", "b", 1e3)
        with pytest.raises(NetlistError, match=r"'a', 'b'"):
            ckt.compile()

    def test_error_carries_issue_payload(self):
        ckt = _divider()
        ckt.add_resistor("ri", "a", "b", 1e3)
        with pytest.raises(NetlistError) as excinfo:
            validate_structure(ckt)
        assert excinfo.value.issues[0].kind == RAIL_DISCONNECTED

    def test_opt_out_restores_old_behaviour(self):
        ckt = _divider()
        ckt.add_resistor("ri", "a", "b", 1e3)
        compiled = ckt.compile(validate=False)
        assert compiled.size >= 4

    def test_per_circuit_opt_out(self):
        ckt = _divider()
        ckt.add_resistor("ri", "a", "b", 1e3)
        ckt.validate_on_compile = False
        ckt.compile()

    def test_cached_compile_skips_revalidation(self):
        ckt = _divider()
        first = ckt.compile()
        assert ckt.compile() is first

    def test_operating_point_diagnoses_before_solving(self):
        ckt = _divider()
        ckt.add_resistor("ri", "a", "b", 1e3)
        with pytest.raises(NetlistError, match="structurally singular"):
            operating_point(ckt)
