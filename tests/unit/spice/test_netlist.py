"""Unit tests for circuit construction and MNA compilation."""

import pytest

from repro.devices import Diode, Mosfet, NWELL_DIODE_180, nmos_180
from repro.errors import NetlistError
from repro.spice import Circuit
from repro.spice.netlist import is_ground


class TestGround:
    @pytest.mark.parametrize("name", ["0", "gnd", "GND", "Gnd"])
    def test_ground_aliases(self, name):
        assert is_ground(name)

    def test_regular_node(self):
        assert not is_ground("out")


class TestConstruction:
    def test_duplicate_element_name_rejected(self):
        ckt = Circuit()
        ckt.add_resistor("R1", "a", "0", 1e3)
        with pytest.raises(NetlistError):
            ckt.add_resistor("R1", "b", "0", 1e3)

    def test_bad_resistance_rejected(self):
        ckt = Circuit()
        with pytest.raises(NetlistError):
            ckt.add_resistor("R1", "a", "0", 0.0)

    def test_empty_node_name_rejected(self):
        ckt = Circuit()
        with pytest.raises(NetlistError):
            ckt.add_resistor("R1", "", "0", 1e3)

    def test_node_order_is_insertion_order(self):
        ckt = Circuit()
        ckt.add_resistor("R1", "x", "y", 1e3)
        ckt.add_resistor("R2", "z", "0", 1e3)
        assert ckt.node_names == ["x", "y", "z"]

    def test_element_lookup(self):
        ckt = Circuit()
        r = ckt.add_resistor("R1", "a", "0", 1e3)
        assert ckt.element("R1") is r
        with pytest.raises(NetlistError):
            ckt.element("R9")

    def test_mosfet_adds_companion_caps(self):
        ckt = Circuit()
        device = Mosfet(nmos_180(), w=1e-6, l=0.5e-6)
        ckt.add_mosfet("M1", "d", "g", "s", "0", device)
        names = [e.name for e in ckt.elements]
        assert "M1" in names
        assert any(n.startswith("M1.c") for n in names)

    def test_mosfet_without_caps(self):
        ckt = Circuit()
        device = Mosfet(nmos_180(), w=1e-6, l=0.5e-6)
        ckt.add_mosfet("M1", "d", "g", "s", "0", device, with_caps=False)
        assert len(ckt.elements) == 1

    def test_mos_elements_listing(self):
        ckt = Circuit()
        device = Mosfet(nmos_180(), w=1e-6, l=0.5e-6)
        ckt.add_mosfet("M1", "d", "g", "s", "0", device)
        ckt.add_resistor("R1", "d", "0", 1e6)
        assert [m.name for m in ckt.mos_elements()] == ["M1"]


class TestCompilation:
    def test_empty_circuit_rejected(self):
        with pytest.raises(NetlistError):
            Circuit().compile()

    def test_sizes(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "in", "0", 1.0)   # 1 node + 1 aux
        ckt.add_resistor("R1", "in", "out", 1e3)  # +1 node
        ckt.add_resistor("R2", "out", "0", 1e3)
        compiled = ckt.compile()
        assert compiled.size == 3
        assert compiled.index_of("0") == -1
        assert compiled.index_of("in") == 0

    def test_unknown_node_raises(self):
        ckt = Circuit()
        ckt.add_resistor("R1", "a", "0", 1e3)
        compiled = ckt.compile()
        with pytest.raises(NetlistError):
            compiled.index_of("nope")

    def test_nodeset_seeds_initial_guess(self):
        ckt = Circuit()
        ckt.add_resistor("R1", "a", "0", 1e3)
        ckt.nodeset("a", 0.7)
        compiled = ckt.compile()
        x0 = ckt.initial_guess(compiled)
        assert x0[compiled.node_index["a"]] == pytest.approx(0.7)
