"""Unit tests for the analysis result containers."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.spice.results import AcResult, OpResult, TranResult


class TestOpResult:
    def test_ground_reads_zero(self):
        op = OpResult(voltages={"a": 1.0}, branch_currents={})
        assert op.voltage("0") == 0.0
        assert op.voltage("gnd") == 0.0

    def test_unknown_node_raises(self):
        op = OpResult(voltages={"a": 1.0}, branch_currents={})
        with pytest.raises(AnalysisError):
            op.voltage("b")

    def test_vdiff_against_ground(self):
        op = OpResult(voltages={"a": 0.7}, branch_currents={})
        assert op.vdiff("a", "0") == pytest.approx(0.7)

    def test_missing_branch_current(self):
        op = OpResult(voltages={}, branch_currents={"V1": -1e-6})
        assert op.current("V1") == -1e-6
        with pytest.raises(AnalysisError):
            op.current("V2")


class TestAcResult:
    def _single_pole(self, f_pole=1e3, points=101):
        freqs = np.logspace(0, 6, points)
        response = 1.0 / (1.0 + 1j * freqs / f_pole)
        return AcResult(frequencies=freqs, voltages={"out": response})

    def test_magnitude_db(self):
        result = self._single_pole()
        mags = result.magnitude_db("out")
        assert mags[0] == pytest.approx(0.0, abs=0.01)
        assert mags[-1] < -55.0

    def test_bandwidth_interpolation(self):
        result = self._single_pole(f_pole=1e3)
        assert result.bandwidth_3db("out") == pytest.approx(1e3,
                                                            rel=0.02)

    def test_bandwidth_beyond_sweep(self):
        freqs = np.logspace(0, 1, 11)
        flat = AcResult(frequencies=freqs,
                        voltages={"out": np.ones(11, dtype=complex)})
        assert flat.bandwidth_3db("out") == pytest.approx(freqs[-1])

    def test_phase_unwrapped(self):
        result = self._single_pole()
        phases = result.phase_deg("out")
        assert phases[0] == pytest.approx(0.0, abs=1.0)
        assert phases[-1] == pytest.approx(-90.0, abs=1.0)

    def test_unknown_node(self):
        result = self._single_pole()
        with pytest.raises(AnalysisError):
            result.transfer("ghost")


class TestTranResult:
    def _ramp(self):
        t = np.linspace(0.0, 1.0, 101)
        return TranResult(time=t, voltages={"x": t.copy(),
                                            "y": 1.0 - t})

    def test_value_at_interpolates(self):
        result = self._ramp()
        assert result.value_at("x", 0.505) == pytest.approx(0.505,
                                                            abs=1e-6)

    def test_vdiff(self):
        result = self._ramp()
        diff = result.vdiff("x", "y")
        assert diff[0] == pytest.approx(-1.0)
        assert diff[-1] == pytest.approx(1.0)

    def test_ground_waveform_zero(self):
        result = self._ramp()
        assert np.all(result.voltage("0") == 0.0)

    def test_crossing_times_both_edges(self):
        t = np.linspace(0.0, 2.0 * np.pi, 401)
        result = TranResult(time=t, voltages={"s": np.sin(t)})
        ups = result.crossing_times("s", 0.0, rising=True)
        downs = result.crossing_times("s", 0.0, rising=False)
        both = result.crossing_times("s", 0.0)
        assert downs.size >= 1
        assert both.size == ups.size + downs.size
        assert downs[0] == pytest.approx(np.pi, abs=0.02)

    def test_crossing_level_offset(self):
        t = np.linspace(0.0, 1.0, 101)
        result = TranResult(time=t, voltages={"r": t.copy()})
        crossings = result.crossing_times("r", 0.25, rising=True)
        assert crossings.size == 1
        assert crossings[0] == pytest.approx(0.25, abs=1e-6)

    def test_unknown_node(self):
        with pytest.raises(AnalysisError):
            self._ramp().voltage("ghost")
