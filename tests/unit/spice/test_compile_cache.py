"""Unit tests for the compile-once cache of :class:`Circuit`.

The MNA engine compiles a circuit exactly once per structure: sweeps,
transients and repeated operating points reuse the cached
:class:`CompiledCircuit` (and its vectorized assembler), while any
structural mutation -- adding an element, introducing a node --
invalidates it.  Element *value* mutations don't recompile at all; the
assembler re-syncs its arrays at the start of the next solve.
"""

import numpy as np
import pytest

from repro.faults import BridgedNodes, ResistorDrift
from repro.spice import Circuit, dc_sweep, operating_point
from repro.spice.waveforms import dc_wave


def diode_divider() -> Circuit:
    """A divider with one nonlinear element so solves iterate."""
    from repro.devices import Diode, NWELL_DIODE_180

    circuit = Circuit("cache-probe")
    circuit.add_vsource("V1", "in", "0", 1.0)
    circuit.add_resistor("R1", "in", "mid", 10e3)
    circuit.add_resistor("R2", "mid", "0", 10e3)
    circuit.add_diode("D1", "mid", "0", Diode(NWELL_DIODE_180))
    return circuit


class TestCompileCache:
    def test_repeated_compile_builds_once(self):
        circuit = diode_divider()
        compiled = circuit.compile()
        assert circuit.compile() is compiled
        assert circuit.compile_count == 1

    def test_sweep_compiles_once(self):
        """A warm-started sweep must reuse one compilation for every
        point -- recompiling per point was the old hot-path bug."""
        circuit = diode_divider()
        sweep = dc_sweep(circuit, "V1", np.linspace(0.0, 1.0, 7))
        assert len(sweep.points) == 7
        assert circuit.compile_count == 1

    def test_sweep_with_skipped_point_still_compiles_once(self):
        """The NaN placeholder of a skipped point also goes through
        ``circuit.compile()`` -- it must hit the cache, not rebuild."""
        from repro.errors import ConvergenceError
        from repro.spice import NewtonOptions, SolveStrategy

        class _Hopeless(SolveStrategy):
            name = "hopeless"

            def solve(self, circuit, compiled, x0, time, options,
                      trace):
                raise ConvergenceError("engineered failure")

        circuit = diode_divider()
        sweep = dc_sweep(circuit, "V1", [0.0, 0.5, 1.0],
                         strategies=[_Hopeless()], on_error="skip")
        assert len(sweep.failures) == 3
        assert all(p.x is None for p in sweep.points)
        assert circuit.compile_count == 1

    def test_operating_points_share_the_compilation(self):
        circuit = diode_divider()
        operating_point(circuit)
        operating_point(circuit)
        assert circuit.compile_count == 1

    def test_adding_an_element_invalidates(self):
        circuit = diode_divider()
        first = circuit.compile()
        circuit.add_resistor("R3", "mid", "0", 5e3)
        second = circuit.compile()
        assert second is not first
        assert circuit.compile_count == 2
        # The new element is actually part of the compiled system.
        assert "R3" in second.aux_index or circuit.element("R3")

    def test_fault_netlist_edit_invalidates(self):
        """A structural fault (bridging two nodes adds a resistor) must
        drop the cache so the faulted solve sees the bridge."""
        circuit = diode_divider()
        healthy = operating_point(circuit).voltage("mid")
        assert circuit.compile_count == 1
        BridgedNodes("mid", "0", resistance=1.0).apply(circuit)
        assert circuit.compile_count == 1  # invalidated, not yet rebuilt
        bridged = operating_point(circuit).voltage("mid")
        assert circuit.compile_count == 2
        assert bridged == pytest.approx(0.0, abs=1e-3)
        assert healthy > 0.1

    def test_value_mutation_needs_no_recompile(self):
        """ResistorDrift mutates a resistance in place; the assembler's
        value sync must pick it up without a second compilation."""
        circuit = diode_divider()
        healthy = operating_point(circuit).voltage("mid")
        ResistorDrift("R2", 3.0).apply(circuit)
        drifted = operating_point(circuit).voltage("mid")
        assert circuit.compile_count == 1
        assert drifted > healthy

    def test_nodeset_on_new_node_invalidates(self):
        circuit = diode_divider()
        circuit.compile()
        circuit.nodeset("aux_node", 0.3)
        circuit.add_resistor("R4", "aux_node", "0", 1e6)
        second = circuit.compile()
        assert "aux_node" in second.node_index
        assert circuit.compile_count == 2

    def test_invalidate_is_idempotent(self):
        circuit = diode_divider()
        circuit.compile()
        circuit.invalidate()
        circuit.invalidate()
        circuit.compile()
        assert circuit.compile_count == 2
