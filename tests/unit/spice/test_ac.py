"""Unit tests for small-signal AC analysis."""

import math

import numpy as np
import pytest

from repro.devices import Mosfet, nmos_180
from repro.errors import AnalysisError
from repro.spice import Circuit, ac_analysis


def rc_lowpass(r=1e6, c=1e-12):
    ckt = Circuit()
    ckt.add_vsource("V1", "in", "0", 0.0, ac_mag=1.0)
    ckt.add_resistor("R1", "in", "out", r)
    ckt.add_capacitor("C1", "out", "0", c)
    return ckt


class TestRcPole:
    def test_bandwidth(self):
        ckt = rc_lowpass()
        result = ac_analysis(ckt, np.logspace(3, 8, 101))
        f_pole = 1.0 / (2.0 * math.pi * 1e6 * 1e-12)
        assert result.bandwidth_3db("out") == pytest.approx(f_pole,
                                                            rel=0.02)

    def test_dc_gain_unity(self):
        ckt = rc_lowpass()
        result = ac_analysis(ckt, [1.0e2])
        assert abs(result.transfer("out")[0]) == pytest.approx(1.0,
                                                               rel=1e-4)

    def test_rolloff_20db_per_decade(self):
        ckt = rc_lowpass()
        result = ac_analysis(ckt, [1e7, 1e8])
        mags = result.magnitude_db("out")
        assert mags[0] - mags[1] == pytest.approx(20.0, abs=0.5)

    def test_phase_approaches_minus_90(self):
        ckt = rc_lowpass()
        result = ac_analysis(ckt, [1e9])
        assert result.phase_deg("out")[0] == pytest.approx(-90.0, abs=2.0)


class TestValidation:
    def test_needs_excitation(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "in", "0", 1.0)  # no ac_mag
        ckt.add_resistor("R1", "in", "0", 1e3)
        with pytest.raises(AnalysisError):
            ac_analysis(ckt, [1e3])

    def test_rejects_bad_frequencies(self):
        with pytest.raises(AnalysisError):
            ac_analysis(rc_lowpass(), [])
        with pytest.raises(AnalysisError):
            ac_analysis(rc_lowpass(), [-1.0])


class TestCommonSourceAmp:
    def test_gain_matches_gm_times_rl(self):
        """AC gain of a common-source stage must equal gm*RL from the
        device operating point -- links the AC engine to the model."""
        ckt = Circuit()
        ckt.add_vsource("VDD", "vdd", "0", 1.2)
        ckt.add_vsource("VG", "g", "0", 0.35, ac_mag=1.0)
        ckt.add_resistor("RL", "vdd", "d", 10e6)
        device = Mosfet(nmos_180(), w=2e-6, l=1e-6)
        ckt.add_mosfet("M1", "d", "g", "0", "0", device, with_caps=False)
        from repro.spice import operating_point
        op = operating_point(ckt)
        mos_op = op.device_ops["M1"]
        expected = mos_op.gm * (1.0 / (1.0 / 10e6 + mos_op.gds))
        result = ac_analysis(ckt, [10.0], op=op)
        assert abs(result.transfer("d")[0]) == pytest.approx(expected,
                                                             rel=1e-3)

    def test_current_source_excitation(self):
        ckt = Circuit()
        ckt.add_isource("I1", "0", "out", 0.0, ac_mag=1e-6)
        ckt.add_resistor("R1", "out", "0", 1e5)
        result = ac_analysis(ckt, [1e3])
        assert abs(result.transfer("out")[0]) == pytest.approx(0.1,
                                                               rel=1e-6)


class TestCurrentSourceSignConvention:
    """Audit of the AC RHS sign for current-source excitation.

    The DC residual convention adds ``+value`` at ``node_pos`` (current
    pulled *out* of the positive node), so the small-signal RHS must
    carry ``-ac_mag`` at the positive node.  An ``add_isource("I1",
    "0", "out", ...)`` therefore injects current *into* ``out`` and the
    response across a grounded impedance is ``+I * Z`` -- positive real
    at DC, phase rolling to -90 degrees through an RC pole.
    """

    R, C = 1e5, 1e-9  # pole at ~1.59 kHz

    def tank(self):
        ckt = Circuit()
        ckt.add_isource("I1", "0", "out", 0.0, ac_mag=1e-6)
        ckt.add_resistor("R1", "out", "0", self.R)
        ckt.add_capacitor("C1", "out", "0", self.C)
        return ckt

    def test_matches_parallel_rc_transfer_function(self):
        freqs = np.logspace(1, 6, 41)
        result = ac_analysis(self.tank(), freqs)
        measured = result.transfer("out")
        expected = 1e-6 * self.R / (
            1.0 + 2j * math.pi * freqs * self.R * self.C)
        assert np.allclose(measured, expected, rtol=1e-9)

    def test_dc_limit_is_positive_i_times_r(self):
        """f -> 0 limit: +I*R with zero phase, matching the DC
        small-signal response (an injected current raises the node)."""
        f_probe = 1e-2  # omega*R*C ~ 6e-6: deep below the pole
        result = ac_analysis(self.tank(), [f_probe])
        v = result.transfer("out")[0]
        assert v.real == pytest.approx(1e-6 * self.R, rel=1e-6)
        assert abs(v.imag) < 1e-5 * abs(v.real)

    def test_pole_frequency_minus_3db_minus_45deg(self):
        f_pole = 1.0 / (2.0 * math.pi * self.R * self.C)
        result = ac_analysis(self.tank(), [f_pole])
        v = result.transfer("out")[0]
        assert abs(v) == pytest.approx(1e-6 * self.R / math.sqrt(2.0),
                                       rel=1e-6)
        assert math.degrees(math.atan2(v.imag, v.real)) == pytest.approx(
            -45.0, abs=0.01)

    def test_reversed_terminals_flip_the_sign(self):
        ckt = Circuit()
        ckt.add_isource("I1", "out", "0", 0.0, ac_mag=1e-6)
        ckt.add_resistor("R1", "out", "0", self.R)
        result = ac_analysis(ckt, [1.0])
        assert result.transfer("out")[0].real == pytest.approx(
            -1e-6 * self.R, rel=1e-6)


class TestFrequencyGridValidation:
    def test_rejects_nan_frequency(self):
        with pytest.raises(AnalysisError, match="NaN"):
            ac_analysis(rc_lowpass(), [1e3, float("nan"), 1e5])

    def test_rejects_duplicate_frequencies(self):
        with pytest.raises(AnalysisError, match="duplicate"):
            ac_analysis(rc_lowpass(), [1e3, 1e4, 1e3])

    def test_rejects_unknown_backend(self):
        with pytest.raises(AnalysisError, match="backend"):
            ac_analysis(rc_lowpass(), [1e3], backend="turbo")

    def test_zero_frequency_rejected(self):
        with pytest.raises(AnalysisError, match="positive"):
            ac_analysis(rc_lowpass(), [0.0, 1e3])


class TestStackedBackendEquivalence:
    """The stacked-frequency solve is a linear-algebra rearrangement of
    the per-frequency loop; both must agree to solver round-off."""

    def _grids(self):
        # Wide enough to engage the QZ sweep (>= 16 points) and a short
        # grid that exercises the direct stacked path.
        return (np.logspace(2, 9, 64), np.logspace(3, 6, 7))

    def test_rc_transfer_matches_loop(self):
        for freqs in self._grids():
            stacked = ac_analysis(rc_lowpass(), freqs, backend="stacked")
            loop = ac_analysis(rc_lowpass(), freqs, backend="loop")
            assert np.allclose(stacked.transfer("out"),
                               loop.transfer("out"),
                               rtol=1e-9, atol=1e-15)

    def test_stscl_inverter_matches_loop(self):
        from repro.stscl.gate_model import StsclGateDesign
        from repro.stscl.netlist_gen import stscl_inverter_circuit

        design = StsclGateDesign.default(1e-9)
        vdd = 0.4
        circuit, ports = stscl_inverter_circuit(
            design, vdd, vdd, vdd - design.v_sw)
        circuit.element("vinp").ac_mag = 1.0
        freqs = np.logspace(2, 8, 31)
        stacked = ac_analysis(circuit, freqs, backend="stacked")
        loop = ac_analysis(circuit, freqs, backend="loop")
        out_p, out_n = next(iter(ports.outputs.values()))
        for node in (out_p, out_n):
            assert np.allclose(stacked.transfer(node),
                               loop.transfer(node),
                               rtol=1e-8, atol=1e-15)
