"""Unit tests for the DC operating-point solver."""

import numpy as np
import pytest

from repro.devices import Diode, Mosfet, NWELL_DIODE_180, nmos_180, pmos_180
from repro.errors import ConvergenceError, NetlistError
from repro.spice import Circuit, NewtonOptions, dc_sweep, operating_point


def divider():
    ckt = Circuit("divider")
    ckt.add_vsource("V1", "in", "0", 1.0)
    ckt.add_resistor("R1", "in", "mid", 10e3)
    ckt.add_resistor("R2", "mid", "0", 30e3)
    return ckt


class TestLinear:
    def test_divider_voltage(self):
        op = operating_point(divider())
        assert op.voltage("mid") == pytest.approx(0.75, rel=1e-6)

    def test_branch_current_direction(self):
        # Battery sourcing current reports a negative branch current.
        op = operating_point(divider())
        assert op.current("V1") == pytest.approx(-1.0 / 40e3, rel=1e-6)

    def test_ground_voltage_is_zero(self):
        op = operating_point(divider())
        assert op.voltage("0") == 0.0
        assert op.voltage("gnd") == 0.0

    def test_vdiff(self):
        op = operating_point(divider())
        assert op.vdiff("in", "mid") == pytest.approx(0.25, rel=1e-6)

    def test_vcvs_gain(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "a", "0", 0.1)
        ckt.add_vcvs("E1", "out", "0", "a", "0", gain=7.0)
        ckt.add_resistor("RL", "out", "0", 1e3)
        op = operating_point(ckt)
        assert op.voltage("out") == pytest.approx(0.7, rel=1e-9)

    def test_vccs(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "a", "0", 0.2)
        ckt.add_vccs("G1", "0", "out", "a", "0", gm=1e-3)  # inject into out
        ckt.add_resistor("RL", "out", "0", 1e3)
        op = operating_point(ckt)
        assert op.voltage("out") == pytest.approx(0.2, rel=1e-9)

    def test_current_source_direction(self):
        # CurrentSource(0, node, I) injects I *into* the node.
        ckt = Circuit()
        ckt.add_isource("I1", "0", "out", 1e-6)
        ckt.add_resistor("R1", "out", "0", 1e6)
        op = operating_point(ckt)
        # gmin (1e-15 S) adds a ~1e-9 relative shunt error: expected.
        assert op.voltage("out") == pytest.approx(1.0, rel=1e-6)


class TestNonlinear:
    def test_diode_forward_drop(self):
        ckt = Circuit()
        ckt.add_isource("I1", "0", "a", 1e-6)
        ckt.add_diode("D1", "a", "0", Diode(NWELL_DIODE_180))
        op = operating_point(ckt)
        assert 0.55 < op.voltage("a") < 0.75

    def test_diode_connected_mos_weak_inversion(self):
        ckt = Circuit()
        ckt.add_isource("I1", "0", "d", 1e-9)
        ckt.add_mosfet("M1", "d", "d", "0", "0",
                       Mosfet(nmos_180(), w=1e-6, l=0.5e-6))
        op = operating_point(ckt)
        assert 0.1 < op.voltage("d") < 0.3
        assert op.device_ops["M1"].region == "weak"

    def test_current_mirror_copies(self):
        ckt = Circuit()
        device = Mosfet(nmos_180(), w=2e-6, l=1e-6)
        ckt.add_isource("Iref", "0", "g", 5e-9)
        ckt.add_mosfet("M1", "g", "g", "0", "0", device)
        ckt.add_mosfet("M2", "out", "g", "0", "0", device)
        ckt.add_vsource("Vout", "out", "0", 0.5)
        op = operating_point(ckt)
        # Branch current of Vout is the mirrored drain current.
        assert abs(op.current("Vout")) == pytest.approx(5e-9, rel=0.1)

    def test_cmos_inverter_transfer_endpoints(self):
        def inverter_out(v_in):
            ckt = Circuit()
            ckt.add_vsource("VDD", "vdd", "0", 1.0)
            ckt.add_vsource("VIN", "in", "0", v_in)
            ckt.add_mosfet("MN", "out", "in", "0", "0",
                           Mosfet(nmos_180(), w=1e-6, l=0.18e-6))
            ckt.add_mosfet("MP", "out", "in", "vdd", "vdd",
                           Mosfet(pmos_180(), w=2e-6, l=0.18e-6))
            return operating_point(ckt).voltage("out")

        assert inverter_out(0.0) > 0.95
        assert inverter_out(1.0) < 0.05

    def test_warm_start_size_check(self):
        ckt = divider()
        with pytest.raises(NetlistError):
            operating_point(ckt, x0=np.zeros(99))


class TestDcSweep:
    def test_sweep_tracks_source(self):
        ckt = divider()
        result = dc_sweep(ckt, "V1", np.linspace(0.0, 2.0, 11))
        assert result.voltage("mid")[0] == pytest.approx(0.0, abs=1e-9)
        assert result.voltage("mid")[-1] == pytest.approx(1.5, rel=1e-6)

    def test_sweep_restores_waveform(self):
        ckt = divider()
        dc_sweep(ckt, "V1", [0.5, 1.5])
        op = operating_point(ckt)
        assert op.voltage("in") == pytest.approx(1.0)

    def test_sweep_rejects_non_source(self):
        ckt = divider()
        with pytest.raises(NetlistError):
            dc_sweep(ckt, "R1", [1.0, 2.0])

    def test_mos_transfer_sweep_monotone(self):
        ckt = Circuit()
        ckt.add_vsource("VG", "g", "0", 0.2)
        ckt.add_vsource("VD", "d", "0", 0.8)
        ckt.add_mosfet("M1", "d", "g", "0", "0",
                       Mosfet(nmos_180(), w=1e-6, l=0.5e-6),
                       with_caps=False)
        result = dc_sweep(ckt, "VG", np.linspace(0.1, 0.6, 11))
        currents = -result.current("VD")
        assert np.all(np.diff(currents) > 0.0)
