"""Unit tests for the ``python -m repro`` command-line front end."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.rate == "8k"
        assert args.seed == 7


class TestCommands:
    def test_gate(self, capsys):
        assert main(["gate", "--iss", "1n"]) == 0
        out = capsys.readouterr().out
        assert "delay" in out
        assert "minimum_supply" in out

    def test_gate_units(self, capsys):
        assert main(["gate", "--iss", "10pA"]) == 0
        out = capsys.readouterr().out
        assert "1e-11" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "80kS/s" in out
        assert "uW" in out

    def test_report(self, capsys):
        assert main(["report", "--rate", "2k", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "total power" in out

    def test_characterize_ideal(self, capsys):
        assert main(["characterize", "--ideal", "--seed", "0",
                     "--density", "4"]) == 0
        out = capsys.readouterr().out
        assert "INL" in out and "ENOB" in out

    def test_faults(self, capsys):
        assert main(["faults", "--seed", "1", "--density", "4"]) == 0
        out = capsys.readouterr().out
        assert "blast radius" in out
        assert "baseline" in out
        assert "bias-open-coarse" in out
        assert "d(enob)" in out

    def test_trace_writes_jsonl_and_summary(self, capsys, tmp_path):
        from repro.telemetry import read_jsonl

        out = tmp_path / "trace.jsonl"
        assert main(["trace", "--scenario", "op_chain",
                     "--output", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "trace 'scenario-op_chain'" in printed
        assert "strategy:" in printed
        assert f"trace written to {out}" in printed
        trace = read_jsonl(out)
        totals = trace.total_counters()
        assert totals["jacobian_factorizations"] > 0
        assert totals["compile_cache_misses"] == 1
        assert trace.root.find("newton") is not None

    def test_trace_leaves_telemetry_disabled(self, tmp_path):
        from repro import telemetry

        assert main(["trace", "--scenario", "op_chain", "--output",
                     str(tmp_path / "t.jsonl"), "--max-depth", "1"]) == 0
        assert not telemetry.is_enabled()


class TestFuzzCommand:
    def test_defaults(self):
        args = build_parser().parse_args(["fuzz"])
        assert args.circuits == 60
        assert args.mode == "mixed"
        assert args.corpus_dir == "tests/corpus"
        assert not args.replay_corpus

    def test_small_campaign(self, capsys, tmp_path):
        assert main(["fuzz", "--circuits", "2", "--seed", "0",
                     "--verbose", "--phase-wall", "2",
                     "--telemetry-out",
                     str(tmp_path / "fuzz.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "2 circuits" in out
        assert "0 invariant violations" in out
        assert (tmp_path / "fuzz.jsonl").exists()

    def test_replay_committed_corpus(self, capsys):
        from pathlib import Path

        corpus = Path(__file__).resolve().parents[2] / "tests" / "corpus"
        assert main(["fuzz", "--replay-corpus", "--phase-wall", "2",
                     "--corpus-dir", str(corpus)]) == 0
        out = capsys.readouterr().out
        assert "replaying" in out
        assert "0 invariant violations" in out

    def test_save_failures_writes_corpus(self, capsys, tmp_path):
        # Seed 1 is the known-hard STSCL mutant: diagnosed, so saved.
        assert main(["fuzz", "--circuits", "1", "--seed", "1",
                     "--phase-wall", "2", "--save-failures",
                     "--corpus-dir", str(tmp_path)]) == 0
        saved = list(tmp_path.glob("*.json"))
        assert len(saved) == 1
        assert "fuzz_stscl_1" in saved[0].name


class TestErrorReporting:
    def test_library_error_is_one_line_and_exit_2(self, capsys):
        assert main(["report", "--rate", "zzz"]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: UnitError:")
        assert "\n" == captured.err[-1]
        assert captured.err.count("\n") == 1

    def test_convergence_error_names_the_last_stage(self):
        from repro.__main__ import _diagnose
        from repro.errors import ConvergenceError

        line = _diagnose(ConvergenceError("no luck",
                                          stage="gmin-stepping"))
        assert line == ("error: ConvergenceError: no luck "
                        "[last stage: gmin-stepping]")

    def test_programming_errors_still_raise(self, monkeypatch):
        """Only library errors are swallowed; bugs must stay loud."""
        import repro.__main__ as cli

        def boom(args):
            raise RuntimeError("bug")

        monkeypatch.setattr(cli, "_cmd_gate", boom)
        with pytest.raises(RuntimeError):
            cli.main(["gate"])
