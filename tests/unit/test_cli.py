"""Unit tests for the ``python -m repro`` command-line front end."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.rate == "8k"
        assert args.seed == 7


class TestCommands:
    def test_gate(self, capsys):
        assert main(["gate", "--iss", "1n"]) == 0
        out = capsys.readouterr().out
        assert "delay" in out
        assert "minimum_supply" in out

    def test_gate_units(self, capsys):
        assert main(["gate", "--iss", "10pA"]) == 0
        out = capsys.readouterr().out
        assert "1e-11" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "80kS/s" in out
        assert "uW" in out

    def test_report(self, capsys):
        assert main(["report", "--rate", "2k", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "total power" in out

    def test_characterize_ideal(self, capsys):
        assert main(["characterize", "--ideal", "--seed", "0",
                     "--density", "4"]) == 0
        out = capsys.readouterr().out
        assert "INL" in out and "ENOB" in out
