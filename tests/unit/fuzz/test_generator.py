"""Unit tests for the constrained-random netlist generator."""

import pytest

from repro.fuzz import (GeneratorConfig, generate, random_circuit,
                        repair_structure, rewire, stscl_mutant)
from repro.spice.io import write_netlist
from repro.spice.netlist import Circuit
from repro.spice.validate import structural_report

SEEDS = list(range(12))


class TestRandomCircuit:
    def test_deterministic(self):
        # The deck text is the strongest equality we have.
        assert (write_netlist(random_circuit(5))
                == write_netlist(random_circuit(5)))

    def test_different_seeds_differ(self):
        decks = {write_netlist(random_circuit(s)) for s in SEEDS}
        assert len(decks) > 1

    @pytest.mark.parametrize("seed", SEEDS)
    def test_structurally_valid(self, seed):
        circuit = random_circuit(seed)
        assert structural_report(circuit) == []

    def test_net_conventions(self):
        circuit = random_circuit(3)
        names = {e.name for e in circuit.elements}
        assert {"vvdd", "vinp", "vinn"} <= names
        assert "vdd" in circuit.node_names

    def test_config_bounds_device_count(self):
        config = GeneratorConfig(n_devices=(2, 3), max_repairs=6)
        circuit = random_circuit(1, config)
        random_devices = [e for e in circuit.elements
                          if e.name[0] in "mrcd"
                          and "." not in e.name  # MOS parasitic caps
                          and not e.name.startswith("ranchor")]
        assert 2 <= len(random_devices) <= 3


class TestStsclMutant:
    def test_deterministic(self):
        assert (write_netlist(stscl_mutant(9))
                == write_netlist(stscl_mutant(9)))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_structurally_valid(self, seed):
        assert structural_report(stscl_mutant(seed)) == []

    def test_named_after_seed(self):
        assert stscl_mutant(4).name == "fuzz_stscl_4"


class TestGenerate:
    def test_mixed_alternates(self):
        assert generate(2, "mixed").name.startswith("fuzz_rand_")
        assert generate(3, "mixed").name.startswith("fuzz_stscl_")

    def test_pure_modes(self):
        assert generate(3, "random").name == "fuzz_rand_3"
        assert generate(2, "stscl").name == "fuzz_stscl_2"

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            generate(0, "chaos")


class TestRepair:
    def test_anchors_sense_only_net(self):
        import numpy as np

        from repro.devices.mosfet import Mosfet
        from repro.devices.parameters import nmos_180

        circuit = Circuit("dangling_gate")
        circuit.add_vsource("v1", "vdd", "0", 1.0)
        circuit.add_resistor("rl", "vdd", "out", 1e5)
        # Gate net driven by nothing: sense-only defect.
        circuit.add_mosfet("m1", "out", "gfloat", "0", "0",
                           Mosfet(nmos_180(), 1e-6, 0.18e-6))
        assert structural_report(circuit) != []
        repair_structure(circuit, np.random.default_rng(0))
        assert structural_report(circuit) == []
        anchors = [e for e in circuit.elements
                   if e.name.startswith("ranchor")]
        assert anchors

    def test_rewire_moves_terminal_and_invalidates(self):
        circuit = Circuit("rewire_target")
        circuit.add_vsource("v1", "a", "0", 1.0)
        circuit.add_resistor("r1", "a", "b", 1e3)
        circuit.add_resistor("r2", "b", "0", 1e3)
        rewire(circuit, "r1", 1, "0")
        assert circuit.element("r1").nodes == ("a", "0")
        # New net registered even if previously unseen.
        rewire(circuit, "r2", 0, "c")
        assert "c" in circuit.node_names
