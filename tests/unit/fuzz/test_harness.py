"""Unit tests for the converge-or-diagnose fuzz harness."""

import numpy as np
import pytest

from repro import telemetry
from repro.errors import ConvergenceError
from repro.fuzz import FuzzBudgets, run_campaign, run_case
from repro.fuzz import harness as harness_mod
from repro.spice.netlist import Circuit

#: Small budgets keep unit tests fast; classification logic does not
#: depend on the budget sizes.
QUICK = FuzzBudgets(max_iterations=40, op_wall=2.0, sweep_wall=4.0,
                    tran_wall=4.0, fault_wall=4.0, sweep_points=3,
                    t_stop=5e-8)


def divider() -> Circuit:
    circuit = Circuit("divider")
    circuit.add_vsource("v1", "in", "0", 1.0)
    circuit.add_resistor("r1", "in", "out", 1e3)
    circuit.add_resistor("r2", "out", "0", 1e3)
    return circuit


class TestRunCase:
    def test_clean_circuit_is_ok(self):
        result = run_case(divider(), QUICK)
        assert result.status == "ok"
        assert result.phase == "all"
        assert result.detail == ""
        assert result.wall_time > 0.0

    def test_repro_error_is_diagnosed(self, monkeypatch):
        def raise_clean(circuit, budgets):
            raise ConvergenceError(
                "no luck", iterations=3, stage="newton",
                diagnostics=object())

        monkeypatch.setitem(harness_mod._PHASE_FUNCS, "op", raise_clean)
        result = run_case(divider(), QUICK)
        assert result.status == "diagnosed"
        assert result.phase == "op"
        assert "ConvergenceError" in result.detail

    def test_foreign_exception_is_violation(self, monkeypatch):
        def raise_foreign(circuit, budgets):
            raise np.linalg.LinAlgError("singular matrix")

        monkeypatch.setitem(harness_mod._PHASE_FUNCS, "transient",
                            raise_foreign)
        result = run_case(divider(), QUICK)
        assert result.status == "violation"
        assert result.phase == "transient"
        assert "foreign exception LinAlgError" in result.detail

    def test_convergence_error_without_diagnostics_is_violation(
            self, monkeypatch):
        def raise_bare(circuit, budgets):
            raise ConvergenceError("mystery failure")

        monkeypatch.setitem(harness_mod._PHASE_FUNCS, "dc_sweep",
                            raise_bare)
        result = run_case(divider(), QUICK)
        assert result.status == "violation"
        assert "without diagnostics" in result.detail

    def test_nan_in_converged_result_is_violation(self, monkeypatch):
        def nan_phase(circuit, budgets):
            harness_mod._check_finite([1.0, float("nan")], "op test")

        monkeypatch.setitem(harness_mod._PHASE_FUNCS, "op", nan_phase)
        result = run_case(divider(), QUICK)
        assert result.status == "violation"
        assert "non-finite" in result.detail

    def test_phase_overrun_is_violation(self, monkeypatch):
        budgets = FuzzBudgets(op_wall=0.001)

        def slow_phase(circuit, _budgets):
            import time
            time.sleep(0.05)  # >> 0.001 s * HANG_GRACE

        monkeypatch.setitem(harness_mod._PHASE_FUNCS, "op", slow_phase)
        result = run_case(divider(), budgets)
        assert result.status == "violation"
        assert "deadline plumbing failed" in result.detail

    def test_never_raises(self, monkeypatch):
        def explode(circuit, budgets):
            raise RuntimeError("kaboom")

        monkeypatch.setitem(harness_mod._PHASE_FUNCS, "faults", explode)
        result = run_case(divider(), QUICK)  # must not raise
        assert result.status == "violation"


class TestRunCampaign:
    def test_seeded_campaign_deterministic_statuses(self):
        first = run_campaign(4, seed=0, budgets=QUICK)
        second = run_campaign(4, seed=0, budgets=QUICK)
        assert ([c.status for c in first.cases]
                == [c.status for c in second.cases])
        assert [c.seed for c in first.cases] == [0, 1, 2, 3]

    def test_generator_crash_is_violation(self, monkeypatch):
        def bad_generate(seed, mode, config):
            raise KeyError("generator bug")

        monkeypatch.setattr(harness_mod, "generate", bad_generate)
        report = run_campaign(2, seed=0, budgets=QUICK)
        assert len(report.violations) == 2
        assert all(c.phase == "generate" for c in report.cases)
        assert "KeyError" in report.cases[0].detail

    def test_telemetry_counters(self, monkeypatch):
        def raise_clean(circuit, budgets):
            raise ConvergenceError("hard", diagnostics=object())

        monkeypatch.setitem(harness_mod._PHASE_FUNCS, "op", raise_clean)
        with telemetry.tracing("fuzz-test") as trace:
            run_campaign(3, seed=0, budgets=QUICK)
        totals = trace.total_counters()
        assert totals["fuzz_circuits"] == 3
        assert totals["fuzz_clean_failures"] == 3
        assert totals.get("fuzz_invariant_violations", 0) == 0

    def test_violation_counter_and_event(self, monkeypatch):
        def raise_foreign(circuit, budgets):
            raise ValueError("nope")

        monkeypatch.setitem(harness_mod._PHASE_FUNCS, "op",
                            raise_foreign)
        with telemetry.tracing("fuzz-test") as trace:
            report = run_campaign(2, seed=0, budgets=QUICK)
        assert len(report.violations) == 2
        assert trace.total_counters()["fuzz_invariant_violations"] == 2

    def test_on_case_callback_sees_circuit(self):
        seen = []
        run_campaign(2, seed=0, budgets=QUICK,
                     on_case=lambda result, circuit:
                     seen.append((result.seed, circuit.name)))
        assert seen == [(0, "fuzz_rand_0"), (1, "fuzz_stscl_1")]

    def test_describe_mentions_violations(self, monkeypatch):
        monkeypatch.setitem(
            harness_mod._PHASE_FUNCS, "op",
            lambda circuit, budgets: (_ for _ in ()).throw(
                TypeError("boom")))
        report = run_campaign(1, seed=0, budgets=QUICK)
        text = report.describe()
        assert "1 invariant violations" in text
        assert "VIOLATION" in text


class TestBatchedTransientPhase:
    def test_phase_is_in_the_gauntlet(self):
        assert "batched_transient" in harness_mod.PHASES
        assert "batched_transient" in harness_mod._PHASE_FUNCS

    def test_phase_runs_and_counts_lockstep_steps(self):
        """A clean case drives the lockstep engine: the run increments
        ``batch_transient_steps`` and records a positive lane count."""
        with telemetry.tracing("fuzz-batched") as trace:
            result = run_case(divider(), QUICK)
        assert result.status == "ok"
        totals = trace.total_counters()
        assert totals["batch_transient_steps"] > 0
        assert totals["batch_lanes"] >= 3

    def test_phase_failure_is_classified_not_fatal(self, monkeypatch):
        def raise_clean(circuit, budgets):
            raise ConvergenceError("lockstep wall", iterations=7,
                                   stage="newton", diagnostics=object())

        monkeypatch.setitem(harness_mod._PHASE_FUNCS,
                            "batched_transient", raise_clean)
        result = run_case(divider(), QUICK)
        assert result.status == "diagnosed"
        assert result.phase == "batched_transient"
