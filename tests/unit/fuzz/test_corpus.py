"""Unit tests for the regression corpus + replay of committed cases."""

from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.fuzz import (CorpusEntry, FuzzBudgets, FuzzCaseResult,
                        load_corpus, replay_entry, save_entry)

#: The committed regression corpus (minimized fuzz failures).
CORPUS_DIR = Path(__file__).resolve().parents[3] / "tests" / "corpus"

QUICK = FuzzBudgets(max_iterations=40, op_wall=2.0, sweep_wall=4.0,
                    tran_wall=4.0, fault_wall=4.0, sweep_points=3,
                    t_stop=5e-8)

DECK = """* tiny
.temp 27.00
Vv1 in 0 DC 1
Rr1 in out 1k
Rr2 out 0 1k
.end
"""


def entry_of(deck: str, status: str = "diagnosed",
             phase: str = "op") -> CorpusEntry:
    result = FuzzCaseResult(seed=3, mode="mixed", circuit_name="tiny",
                            status=status, phase=phase,
                            detail="ConvergenceError: synthetic")
    return CorpusEntry.from_result(result, deck, note="unit test")


class TestJsonRoundTrip:
    def test_round_trip(self):
        entry = entry_of(DECK)
        assert CorpusEntry.from_json(entry.to_json()) == entry

    def test_schema_guard(self):
        bad = entry_of(DECK).to_json().replace(
            '"schema": 1', '"schema": 99')
        with pytest.raises(ReproError, match="schema"):
            CorpusEntry.from_json(bad)

    def test_save_and_load(self, tmp_path):
        entry = entry_of(DECK)
        path = save_entry(entry, tmp_path)
        assert path.parent == tmp_path
        loaded = load_corpus(tmp_path)
        assert loaded == [(path, entry)]

    def test_save_sanitizes_name(self, tmp_path):
        result = FuzzCaseResult(seed=0, mode="manual",
                                circuit_name="weird/name: x",
                                status="ok")
        path = save_entry(CorpusEntry.from_result(result, DECK),
                          tmp_path)
        assert "/" not in path.name[:-5]
        assert path.exists()


class TestReplay:
    def test_replays_healthy_deck_ok(self):
        result = replay_entry(entry_of(DECK, status="ok", phase="all"),
                              QUICK)
        assert result.status == "ok"
        assert result.circuit_name == "tiny"

    def test_unparseable_deck_is_violation(self):
        entry = entry_of("Xbogus a b c\n.end\n")
        result = replay_entry(entry, QUICK)
        assert result.status == "violation"
        assert result.phase == "parse"


def _committed_corpus():
    entries = load_corpus(CORPUS_DIR)
    assert entries, f"no committed corpus cases under {CORPUS_DIR}"
    return entries


@pytest.mark.parametrize(
    "path,entry", _committed_corpus(),
    ids=lambda value: value.name if isinstance(value, Path) else "")
class TestCommittedCorpus:
    """Every committed minimized fuzz case must stay clean forever:
    it either converges or fails with diagnostics -- a ``violation``
    on replay means the converge-or-diagnose guarantee regressed."""

    def test_replay_is_clean(self, path, entry):
        result = replay_entry(entry, QUICK)
        assert result.status in ("ok", "diagnosed"), (
            f"{path.name} regressed to a violation: "
            f"[{result.phase}] {result.detail}")
