"""Unit tests for greedy deck shrinking."""

from repro.fuzz import (FailureClass, FuzzBudgets, FuzzCaseResult,
                        generate, run_case, shrink_case)
from repro.spice.io import read_netlist, write_netlist

QUICK = FuzzBudgets(max_iterations=40, op_wall=2.0, sweep_wall=4.0,
                    tran_wall=4.0, fault_wall=4.0, sweep_points=3,
                    t_stop=5e-8)

#: A known-hard STSCL mutant (replica-bias loop whose op diverges):
#: fails the op phase with a clean ConvergenceError on every revision
#: the suite has seen.  If a solver improvement ever makes it converge
#: the shrink tests below fall back to their no-repro branch -- update
#: the seed, don't weaken the assertions.
HARD_SEED = 1


def hard_case():
    circuit = generate(HARD_SEED, "mixed")
    result = run_case(circuit, QUICK, seed=HARD_SEED, mode="mixed")
    return circuit, result


class TestFailureClass:
    def test_parses_exception_kind(self):
        result = FuzzCaseResult(
            seed=0, mode="mixed", circuit_name="x", status="diagnosed",
            phase="op", detail="ConvergenceError: every strategy failed")
        signature = FailureClass.of(result)
        assert signature.kind == "ConvergenceError"
        assert signature.phase == "op"
        assert signature.status == "diagnosed"

    def test_ok_case(self):
        result = FuzzCaseResult(seed=0, mode="mixed", circuit_name="x",
                                status="ok")
        assert FailureClass.of(result).kind == ""


class TestShrinkCase:
    def test_shrinks_hard_case(self):
        circuit, result = hard_case()
        if result.status == "ok":  # solver got better; nothing to do
            return
        n_before = len(circuit.elements)
        deck, evals = shrink_case(circuit, result, QUICK)
        assert evals >= 1
        twin = read_netlist(deck)
        n_after = len(twin.elements)
        assert n_after <= n_before
        # The minimized deck still reproduces the failure class.
        replay = run_case(twin, QUICK, seed=HARD_SEED, mode="mixed")
        assert FailureClass.of(replay) == FailureClass.of(result)

    def test_original_circuit_untouched(self):
        circuit, result = hard_case()
        before = write_netlist(circuit)
        shrink_case(circuit, result, QUICK)
        assert write_netlist(circuit) == before

    def test_non_reproducing_case_returns_full_deck(self):
        circuit, _ = hard_case()
        fake = FuzzCaseResult(
            seed=HARD_SEED, mode="mixed", circuit_name=circuit.name,
            status="violation", phase="transient",
            detail="foreign exception NeverHappens")
        deck, evals = shrink_case(circuit, fake, QUICK)
        assert evals == 1
        assert deck == write_netlist(circuit)

    def test_eval_budget_respected(self):
        circuit, result = hard_case()
        if result.status == "ok":
            return
        _, evals = shrink_case(circuit, result, QUICK, max_evals=3)
        assert evals <= 3
