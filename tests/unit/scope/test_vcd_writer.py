"""Unit tests for the shared VCD writer (repro.scope.vcd)."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.scope.vcd import (
    FLOOR_TIMESCALE,
    TIMESCALES,
    VcdWriter,
    exact_timescale,
    identifier,
    parse_vcd,
    timescale_seconds,
)


class TestIdentifier:
    def test_first_identifiers_are_single_chars(self):
        assert identifier(0) == "a"
        assert identifier(1) == "b"
        assert identifier(25) == "z"

    def test_identifiers_are_unique(self):
        ids = [identifier(k) for k in range(500)]
        assert len(set(ids)) == 500

    def test_negative_rejected(self):
        with pytest.raises(AnalysisError):
            identifier(-1)


class TestExactTimescale:
    def test_integer_nanoseconds(self):
        assert exact_timescale([1e-9, 5e-9]) == ("1ns", 1e-9)

    def test_half_nanosecond_picks_100ps(self):
        """The headline fix: 0.5 ns must not round to 1ns."""
        assert exact_timescale([0.5e-9]) == ("100ps", 1e-10)

    def test_769_picoseconds(self):
        assert exact_timescale([769e-12]) == ("1ps", 1e-12)

    def test_coarsest_wins(self):
        assert exact_timescale([2e-6, 10e-6]) == ("1us", 1e-6)
        assert exact_timescale([20e-6, 60e-6]) == ("10us", 1e-5)

    def test_mixed_times_need_the_finer_scale(self):
        label, scale = exact_timescale([1e-6, 1.5e-6])
        assert label == "100ns"

    def test_irregular_floats_fall_back_to_the_fs_floor(self):
        times = [0.0, 1.2345678901234e-7, 3.3219280948874e-7]
        assert exact_timescale(times) == FLOOR_TIMESCALE

    def test_all_zero_is_coarsest(self):
        assert exact_timescale([0.0]) == ("1s", 1.0)

    def test_nonzero_time_never_collapses_to_tick_zero(self):
        """A nonzero time must keep >= 1 tick at the chosen scale --
        otherwise the event would vanish from the dump."""
        for t in (0.5e-9, 3e-15, 1e-12):
            label, scale = exact_timescale([t])
            assert round(t / scale) >= 1

    def test_non_finite_rejected(self):
        with pytest.raises(AnalysisError, match="non-finite"):
            exact_timescale([float("nan")])
        with pytest.raises(AnalysisError, match="negative"):
            exact_timescale([-1e-9])

    def test_table_is_coarse_to_fine_and_label_consistent(self):
        scales = [s for _label, s in TIMESCALES]
        assert scales == sorted(scales, reverse=True)
        for label, scale in TIMESCALES:
            assert timescale_seconds(label) == scale

    def test_unknown_label_rejected(self):
        with pytest.raises(AnalysisError, match="timescale"):
            timescale_seconds("2ns")


class TestWriterRoundTrip:
    def test_mixed_wire_and_real_in_one_file(self):
        """The tentpole property: analog and digital variables land in
        one parseable document."""
        writer = VcdWriter("1ns", comment="mixed")
        clk = writer.add_wire("clk", scope="digital")
        out = writer.add_real("outp", scope="analog")
        writer.change(0, clk, False)
        writer.change(0, out, 0.125)
        writer.change(5, clk, True)
        writer.change(5, out, 0.25)
        writer.change(10, clk, False)
        writer.end_time(20)
        document = parse_vcd(writer.render())
        assert document.timescale == "1ns"
        assert document.variables[clk] == ("digital", "wire", "clk")
        assert document.variables[out] == ("analog", "real", "outp")
        assert document.values_of("clk") == [(0, 0), (5, 1), (10, 0)]
        assert document.values_of("outp") == [(0, 0.125), (5, 0.25)]
        assert document.end_ticks == 20

    def test_real_values_round_trip_exactly(self):
        """repr-based serialisation: float -> text -> float is the
        identity (the same guarantee the capture layer's bitwise
        contract needs end to end)."""
        values = [0.1, 1.0 / 3.0, 1e-300, 123456.789e-9,
                  float(np.float64(np.pi))]
        writer = VcdWriter("1ns")
        v = writer.add_real("v")
        for k, value in enumerate(values):
            writer.change(k, v, value)
        document = parse_vcd(writer.render())
        assert [x for _t, x in document.values_of("v")] == values

    def test_unchanged_values_are_deduplicated(self):
        writer = VcdWriter("1ns")
        w = writer.add_wire("w")
        for ticks in range(5):
            writer.change(ticks, w, True)
        document = parse_vcd(writer.render())
        assert document.values_of("w") == [(0, 1)]

    def test_decreasing_time_rejected(self):
        writer = VcdWriter("1ns")
        w = writer.add_wire("w")
        writer.change(5, w, True)
        with pytest.raises(AnalysisError, match="non-decreasing"):
            writer.change(4, w, False)

    def test_undeclared_identifier_rejected(self):
        writer = VcdWriter("1ns")
        with pytest.raises(AnalysisError, match="undeclared"):
            writer.change(0, "z", True)

    def test_bad_timescale_rejected_at_construction(self):
        with pytest.raises(AnalysisError, match="timescale"):
            VcdWriter("2ns")

    def test_stream_argument_receives_the_text(self):
        import io

        writer = VcdWriter("1ns")
        w = writer.add_wire("w")
        writer.change(0, w, True)
        stream = io.StringIO()
        text = writer.render(stream)
        assert stream.getvalue() == text

    def test_parser_rejects_backwards_timestamps(self):
        text = ("$timescale 1ns $end\n$var wire 1 a w $end\n"
                "$enddefinitions $end\n#5\n1a\n#4\n0a\n")
        with pytest.raises(AnalysisError, match="backwards"):
            parse_vcd(text)

    def test_parser_rejects_undeclared_change(self):
        text = ("$timescale 1ns $end\n$var wire 1 a w $end\n"
                "$enddefinitions $end\n#0\n1b\n")
        with pytest.raises(AnalysisError, match="undeclared"):
            parse_vcd(text)

    def test_parser_requires_a_timescale(self):
        with pytest.raises(AnalysisError, match="timescale"):
            parse_vcd("$enddefinitions $end\n#0\n")


class TestSegmentExport:
    def test_capture_segment_to_vcd_round_trips(self):
        from repro.scope.capture import CaptureSegment

        time = np.array([0.0, 1e-9, 2e-9, 3e-9])
        values = np.array([[0.0, 0.5, 1.0, 1.0],
                           [1.0, 0.5, 0.0, 0.0]])
        segment = CaptureSegment(signals=("a", "b"), time=time,
                                 values=values)
        document = parse_vcd(segment.to_vcd(scope="test"))
        assert document.timescale == "1ns"
        assert document.values_of("a") == [(0, 0.0), (1, 0.5), (2, 1.0)]
        assert document.values_of("b") == [(0, 1.0), (1, 0.5), (2, 0.0)]

    def test_tick_collisions_are_nudged_not_reordered(self):
        from repro.scope.capture import CaptureSegment

        # Two samples 1 fs apart collapse onto one tick at any scale
        # coarser than the floor; the writer must keep strict order.
        time = np.array([0.0, 1e-15, 2e-9])
        values = np.array([[0.0, 0.5, 1.0]])
        segment = CaptureSegment(signals=("a",), time=time,
                                 values=values)
        document = parse_vcd(segment.to_vcd(timescale="1ns"))
        ticks = [t for t, _v in document.values_of("a")]
        assert ticks == sorted(set(ticks))
        assert len(ticks) == 3

    def test_empty_segment_rejected(self):
        from repro.scope.capture import CaptureSegment

        segment = CaptureSegment(signals=("a",), time=np.empty(0),
                                 values=np.empty((1, 0)))
        with pytest.raises(AnalysisError, match="empty"):
            segment.to_vcd()


class TestDigitalTimescaleFix:
    """The digital exporter's side of the shared-writer refactor."""

    def test_fractional_period_is_exact(self):
        from repro.digital.vcd import cycle_timescale

        assert cycle_timescale(0.5e-9) == ("100ps", 5)
        assert cycle_timescale(769e-12) == ("1ps", 769)
        assert cycle_timescale(1e-6) == ("1us", 1)

    def test_sub_fs_period_quantizes_at_the_floor(self):
        from repro.digital.vcd import cycle_timescale

        label, ticks = cycle_timescale(3.7e-16)
        assert label == "1fs"
        assert ticks == 1

    def test_non_positive_period_rejected(self):
        from repro.digital.vcd import cycle_timescale

        with pytest.raises(AnalysisError, match="positive"):
            cycle_timescale(0.0)
