"""Unit tests for the streaming capture layer (repro.scope.capture)."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.scope import (
    EdgeTrigger,
    ExpressionTrigger,
    LevelTrigger,
    PeakDetect,
    Probe,
    ScopeSession,
    Stride,
)
from repro.spice import Circuit, TransientOptions, transient
from repro.spice.waveforms import sine_wave, step_wave


def rc_circuit(tau=1e-6, t_step=1e-6):
    ckt = Circuit("rc")
    ckt.add_vsource("V1", "in", "0", step_wave(0.0, 1.0, t_step))
    ckt.add_resistor("R1", "in", "out", 1e6)
    ckt.add_capacitor("C1", "out", "0", tau / 1e6)
    return ckt


def run_scoped(session, t_stop=10e-6, dt_max=1e-7, circuit=None):
    ckt = circuit if circuit is not None else rc_circuit()
    return transient(ckt, t_stop, TransientOptions(dt_max=dt_max),
                     scope=session)


class TestProbes:
    def test_default_name_is_the_node(self):
        assert Probe("out").name == "out"

    def test_differential_name(self):
        assert Probe("outp", "outn").name == "outp-outn"

    def test_label_wins(self):
        assert Probe("outp", "outn", label="y").name == "y"

    def test_string_probe_is_promoted(self):
        session = ScopeSession(probes=["out"])
        assert session.signal_names == ("out",)

    def test_duplicate_names_rejected(self):
        with pytest.raises(AnalysisError, match="duplicate"):
            ScopeSession(probes=[Probe("a"), Probe("a")])

    def test_unknown_node_rejected_at_bind(self):
        session = ScopeSession(probes=[Probe("nope")])
        with pytest.raises(AnalysisError, match="nope"):
            run_scoped(session)

    def test_ground_referenced_probe_equals_node_voltage(self):
        session = ScopeSession(probes=[Probe("out", "gnd")])
        result = run_scoped(session)
        seg = session.segment()
        assert np.array_equal(seg.signal("out"), result.voltage("out"))


class TestStreamingMode:
    """trigger=None: one segment covering every committed sample."""

    def test_stream_equals_dense_record_bitwise(self):
        session = ScopeSession(probes=[Probe("out"), Probe("in")])
        result = run_scoped(session)
        seg = session.segment()
        assert seg.trigger_time is None
        assert seg.trigger_index is None
        assert np.array_equal(seg.time, result.time)
        assert np.array_equal(seg.signal("out"), result.voltage("out"))
        assert np.array_equal(seg.signal("in"), result.voltage("in"))

    def test_differential_probe_matches_vdiff(self):
        session = ScopeSession(probes=[Probe("in", "out", label="vr")])
        result = run_scoped(session)
        assert np.array_equal(session.segment().signal("vr"),
                              result.vdiff("in", "out"))

    def test_counters(self):
        session = ScopeSession(probes=[Probe("out")])
        result = run_scoped(session)
        assert session.samples_seen == result.time.size
        assert session.samples_stored == result.time.size


class TestTriggeredCapture:
    def test_window_is_a_bitwise_slice_of_dense(self):
        """The tentpole contract: an undecimated triggered window is
        np.array_equal to the corresponding slice of the dense record
        of the same run."""
        session = ScopeSession(
            probes=[Probe("out"), Probe("in")],
            trigger=EdgeTrigger("out", level=0.5),
            pre_samples=8, post_samples=16)
        result = run_scoped(session)
        assert session.triggered
        seg = session.segment()
        assert len(seg) == 8 + 1 + 16
        start = int(np.nonzero(result.time == seg.time[0])[0][0])
        window = slice(start, start + len(seg))
        assert np.array_equal(seg.time, result.time[window])
        assert np.array_equal(seg.signal("out"),
                              result.voltage("out")[window])
        assert np.array_equal(seg.signal("in"),
                              result.voltage("in")[window])

    def test_trigger_sample_is_first_at_or_above_level(self):
        session = ScopeSession(probes=[Probe("out")],
                               trigger=EdgeTrigger("out", level=0.5),
                               pre_samples=4, post_samples=4)
        run_scoped(session)
        seg = session.segment()
        out = seg.signal("out")
        k = seg.trigger_index
        assert seg.time[k] == seg.trigger_time
        assert out[k] >= 0.5
        assert out[k - 1] < 0.5

    def test_short_pre_history_yields_partial_pre_window(self):
        """Triggering before pre_samples samples exist keeps what there
        is instead of padding."""
        session = ScopeSession(probes=[Probe("in")],
                               trigger=LevelTrigger("in", 0.5),
                               pre_samples=500, post_samples=4)
        run_scoped(session)
        seg = session.segment()
        assert 0 < len(seg) < 500 + 1 + 4
        assert seg.trigger_index < 500

    def test_run_ending_mid_window_keeps_partial_segment(self):
        session = ScopeSession(probes=[Probe("out")],
                               trigger=EdgeTrigger("out", level=0.5),
                               pre_samples=2, post_samples=10_000)
        run_scoped(session)
        seg = session.segment()
        assert session.triggered
        assert len(seg) < 2 + 1 + 10_000

    def test_single_mode_stops_after_one_window(self):
        ckt = Circuit("sine")
        ckt.add_vsource("V1", "in", "0", sine_wave(0.0, 1.0, 1e6))
        ckt.add_resistor("R1", "in", "0", 1e3)
        session = ScopeSession(probes=[Probe("in")],
                               trigger=EdgeTrigger("in", level=0.0),
                               pre_samples=2, post_samples=2)
        run_scoped(session, t_stop=10e-6, dt_max=1e-8, circuit=ckt)
        assert len(session.segments) == 1

    def test_normal_mode_rearms_until_max_segments(self):
        ckt = Circuit("sine")
        ckt.add_vsource("V1", "in", "0", sine_wave(0.0, 1.0, 1e6))
        ckt.add_resistor("R1", "in", "0", 1e3)
        session = ScopeSession(probes=[Probe("in")],
                               trigger=EdgeTrigger("in", level=0.0),
                               pre_samples=2, post_samples=2,
                               mode="normal", max_segments=3)
        run_scoped(session, t_stop=10e-6, dt_max=1e-8, circuit=ckt)
        assert len(session.segments) == 3
        starts = [seg.trigger_time for seg in session.segments]
        assert starts == sorted(starts)

    def test_memory_is_bounded_by_the_window_not_the_run(self):
        """O(window) vs O(steps): quadrupling the run length must not
        grow the session's waveform memory once the window closed."""
        footprints = []
        for t_stop in (10e-6, 40e-6):
            session = ScopeSession(probes=[Probe("out")],
                                   trigger=EdgeTrigger("out", level=0.5),
                                   pre_samples=8, post_samples=16,
                                   replace_dense=True)
            run_scoped(session, t_stop=t_stop)
            footprints.append(session.memory_bytes())
        assert footprints[0] == footprints[1]

    def test_expression_trigger(self):
        session = ScopeSession(
            probes=[Probe("out"), Probe("in")],
            trigger=ExpressionTrigger(
                lambda v: v["in"] > 0.5 and v["out"] > 0.25),
            pre_samples=4, post_samples=4)
        run_scoped(session)
        seg = session.segment()
        k = seg.trigger_index
        assert seg.signal("in")[k] > 0.5
        assert seg.signal("out")[k] > 0.25
        assert seg.signal("out")[k - 1] <= 0.25

    def test_falling_edge_trigger(self):
        ckt = Circuit("fall")
        ckt.add_vsource("V1", "in", "0", step_wave(1.0, 0.0, 1e-6))
        ckt.add_resistor("R1", "in", "out", 1e6)
        ckt.add_capacitor("C1", "out", "0", 1e-12)
        session = ScopeSession(probes=[Probe("out")],
                               trigger=EdgeTrigger("out", level=0.5,
                                                   direction="falling"),
                               pre_samples=2, post_samples=2)
        run_scoped(session, circuit=ckt)
        seg = session.segment()
        k = seg.trigger_index
        assert seg.signal("out")[k] <= 0.5 < seg.signal("out")[k - 1]

    def test_trigger_on_unknown_signal_rejected(self):
        with pytest.raises(AnalysisError, match="not a probe"):
            ScopeSession(probes=[Probe("out")],
                         trigger=EdgeTrigger("nope", level=0.5))

    def test_untriggered_session_has_no_segment(self):
        session = ScopeSession(probes=[Probe("out")],
                               trigger=EdgeTrigger("out", level=99.0))
        run_scoped(session)
        assert not session.triggered
        with pytest.raises(AnalysisError, match="trigger never fired"):
            session.segment()


class TestReplaceDense:
    def test_tran_result_carries_no_waveforms(self):
        session = ScopeSession(probes=[Probe("out")],
                               trigger=EdgeTrigger("out", level=0.5),
                               replace_dense=True)
        result = run_scoped(session)
        assert result.voltages == {}
        assert result.time.size > 0
        assert result.telemetry is not None

    def test_capture_matches_a_separate_dense_run(self):
        """Same circuit, same options: the replace_dense window must be
        bitwise equal to the dense run's slice (determinism + fidelity
        in one assertion)."""
        session = ScopeSession(probes=[Probe("out")],
                               trigger=EdgeTrigger("out", level=0.5),
                               pre_samples=8, post_samples=16,
                               replace_dense=True)
        run_scoped(session)
        dense = transient(rc_circuit(), 10e-6,
                          TransientOptions(dt_max=1e-7))
        seg = session.segment()
        start = int(np.nonzero(dense.time == seg.time[0])[0][0])
        window = slice(start, start + len(seg))
        assert np.array_equal(seg.signal("out"),
                              dense.voltage("out")[window])


class TestDecimation:
    def test_stride_keeps_every_nth_stream_sample(self):
        full = ScopeSession(probes=[Probe("out")])
        run_scoped(full)
        strided = ScopeSession(probes=[Probe("out")],
                               decimation=Stride(4))
        run_scoped(strided)
        reference = full.segment()
        seg = strided.segment()
        assert np.array_equal(seg.time, reference.time[::4])
        assert np.array_equal(seg.signal("out"),
                              reference.signal("out")[::4])

    def test_stride_validates(self):
        with pytest.raises(AnalysisError, match="stride"):
            Stride(0)

    def test_peak_detect_envelope_bounds_the_block(self):
        full = ScopeSession(probes=[Probe("out")])
        run_scoped(full)
        peaks = ScopeSession(probes=[Probe("out")],
                             decimation=PeakDetect(8))
        run_scoped(peaks)
        reference = full.segment().signal("out")
        seg = peaks.segment()
        # Two samples (min at block start, max at block end) per block.
        n_blocks = int(np.ceil(reference.size / 8))
        assert len(seg) == 2 * n_blocks
        values = seg.signal("out")
        for block in range(reference.size // 8):
            chunk = reference[8 * block:8 * (block + 1)]
            assert values[2 * block] == chunk.min()
            assert values[2 * block + 1] == chunk.max()

    def test_peak_detect_validates(self):
        with pytest.raises(AnalysisError, match="peak-detect"):
            PeakDetect(1)

    def test_trigger_and_post_window_stay_undecimated(self):
        """Decimation applies to the pre-trigger history only; the
        trigger sample and post window are stored at full rate."""
        decimated = ScopeSession(probes=[Probe("out")],
                                 trigger=EdgeTrigger("out", level=0.5),
                                 pre_samples=8, post_samples=16,
                                 decimation=Stride(4))
        result = run_scoped(decimated)
        seg = decimated.segment()
        k = seg.trigger_index
        post = seg.signal("out")[k:]
        start = int(np.nonzero(result.time == seg.time[k])[0][0])
        assert np.array_equal(post,
                              result.voltage("out")[start:start + 17])
        # Pre-trigger spacing is ~4x the post-trigger spacing.
        pre_dt = np.diff(seg.time[:k]).mean()
        post_dt = np.diff(seg.time[k:]).mean()
        assert pre_dt > 2.5 * post_dt


class TestSessionLifecycle:
    def test_reuse_without_reset_rejected(self):
        session = ScopeSession(probes=[Probe("out")])
        run_scoped(session)
        with pytest.raises(AnalysisError, match="reset"):
            run_scoped(session)

    def test_reset_allows_a_second_run(self):
        session = ScopeSession(probes=[Probe("out")],
                               trigger=EdgeTrigger("out", level=0.5),
                               pre_samples=4, post_samples=4)
        run_scoped(session)
        first = session.segment()
        session.reset()
        run_scoped(session)
        second = session.segment()
        assert np.array_equal(first.time, second.time)
        assert np.array_equal(first.signal("out"), second.signal("out"))

    def test_validation(self):
        with pytest.raises(AnalysisError, match="at least one probe"):
            ScopeSession(probes=[])
        with pytest.raises(AnalysisError, match="mode"):
            ScopeSession(probes=[Probe("a")], mode="auto")
        with pytest.raises(AnalysisError, match="pre_samples"):
            ScopeSession(probes=[Probe("a")], pre_samples=-1)
        with pytest.raises(AnalysisError, match="max_segments"):
            ScopeSession(probes=[Probe("a")], max_segments=0)

    def test_segment_signal_lookup_error(self):
        session = ScopeSession(probes=[Probe("out")])
        run_scoped(session)
        with pytest.raises(AnalysisError, match="no captured signal"):
            session.segment().signal("nope")


class TestTelemetryCounters:
    def test_capture_counters_reach_the_active_span(self):
        from repro import telemetry

        session = ScopeSession(probes=[Probe("out")],
                               trigger=EdgeTrigger("out", level=0.5),
                               pre_samples=4, post_samples=4)
        with telemetry.tracing("scope-test") as trace:
            run_scoped(session)
        counters = trace.total_counters()
        assert counters["scope_samples_seen"] == session.samples_seen
        assert counters["scope_samples_stored"] == session.samples_stored
        assert counters["scope_triggers"] == 1
        assert session.samples_stored < session.samples_seen


class TestClone:
    def test_clone_is_fresh_and_shares_no_trigger_state(self):
        """The batched engine replicates one plan into per-lane
        sessions; a clone must be usable while the original is spent,
        and arming the clone must not arm the original's trigger."""
        proto = ScopeSession(probes=[Probe("out")],
                             trigger=EdgeTrigger("out", level=0.5),
                             pre_samples=4, post_samples=4)
        run_scoped(proto)
        clone = proto.clone()
        run_scoped(clone)  # the spent proto would raise here
        assert np.array_equal(proto.segment().time,
                              clone.segment().time)
        assert np.array_equal(proto.segment().signal("out"),
                              clone.segment().signal("out"))
        with pytest.raises(AnalysisError, match="reset"):
            run_scoped(proto)

    def test_clone_copies_the_full_plan(self):
        proto = ScopeSession(probes=[Probe("out")],
                             trigger=EdgeTrigger("out", level=0.5),
                             pre_samples=8, post_samples=2,
                             mode="single", max_segments=3)
        clone = proto.clone()
        assert clone.pre_samples == proto.pre_samples
        assert clone.post_samples == proto.post_samples
        assert clone.mode == proto.mode
        assert clone.max_segments == proto.max_segments
        assert clone.trigger is not proto.trigger
