"""Unit tests for repro.scope.measure against analytic waveforms."""

import math

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.scope import measure

TAU = 1e-6


def rc_step(t_stop=8e-6, n=4001, t0=0.0):
    """Analytic RC step response 1 - exp(-(t - t0)/tau)."""
    t = np.linspace(0.0, t_stop, n)
    v = np.where(t >= t0, 1.0 - np.exp(-np.maximum(t - t0, 0.0) / TAU),
                 0.0)
    return t, v


class TestCrossings:
    def test_rc_half_crossing_at_ln2_tau(self):
        t, v = rc_step()
        ups = measure.crossings(t, v, 0.5, rising=True)
        assert ups.size == 1
        assert ups[0] == pytest.approx(math.log(2.0) * TAU, rel=1e-5)

    def test_direction_filter(self):
        t = np.linspace(0.0, 1.0, 1001)
        v = np.sin(2.0 * np.pi * 3.0 * t - 0.1)  # phase: t=0 off-level
        assert measure.crossings(t, v, 0.0, rising=True).size == 3
        assert measure.crossings(t, v, 0.0, rising=False).size == 3
        assert measure.crossings(t, v, 0.0).size == 6

    def test_level_never_crossed(self):
        t, v = rc_step()
        assert measure.crossings(t, v, 2.0).size == 0


class TestValidation:
    """Every measurement rejects malformed records with a clean
    AnalysisError naming the problem."""

    def test_nan_sample_rejected(self):
        t, v = rc_step()
        v[17] = float("nan")
        with pytest.raises(AnalysisError, match="non-finite sample"):
            measure.crossings(t, v, 0.5)

    def test_short_record_rejected(self):
        with pytest.raises(AnalysisError, match="too short"):
            measure.crossings([0.0], [1.0], 0.5)

    def test_empty_record_rejected(self):
        with pytest.raises(AnalysisError, match="too short"):
            measure.output_swing([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(AnalysisError, match="lengths differ"):
            measure.crossings([0.0, 1.0], [1.0], 0.5)

    def test_non_monotonic_time_rejected(self):
        with pytest.raises(AnalysisError, match="not monotonic"):
            measure.crossings([0.0, 2.0, 1.0], [0.0, 1.0, 2.0], 0.5)

    def test_missing_crossing_is_a_clean_error(self):
        t, v = rc_step()
        with pytest.raises(AnalysisError, match="propagation_delay"):
            measure.propagation_delay(t, v, v, level_in=5.0)


class TestPropagationDelay:
    def test_two_shifted_rc_steps(self):
        """Output = input delayed by d: t_pd at 50% must equal d."""
        d = 1.5e-6
        t, v_in = rc_step(t_stop=12e-6, t0=1e-6)
        _, v_out = rc_step(t_stop=12e-6, t0=1e-6 + d)
        report = measure.propagation_delay(t, v_in, v_out)
        assert report.delay == pytest.approx(d, rel=1e-4)
        assert report.t_out == report.t_in + report.delay

    def test_default_levels_are_mid_swing(self):
        t, v_in = rc_step(t0=1e-6)
        v_out = 2.0 * v_in + 1.0  # swings 1..~3, mid-swing ~2
        report = measure.propagation_delay(t, v_in, v_out)
        assert report.level_in == pytest.approx(
            0.5 * (v_in.min() + v_in.max()))
        assert report.level_out == pytest.approx(
            0.5 * (v_out.min() + v_out.max()))

    def test_inverting_stage_with_edge_out_none(self):
        t, v_in = rc_step(t_stop=12e-6, t0=1e-6)
        _, v_fall = rc_step(t_stop=12e-6, t0=2e-6)
        report = measure.propagation_delay(t, v_in, 1.0 - v_fall,
                                           edge_out=None)
        assert report.delay == pytest.approx(1e-6, rel=1e-4)

    def test_occurrence_selects_a_later_edge(self):
        t = np.linspace(0.0, 1.0, 2001)
        # Rising zero crossings at 0.3/(4 pi) and 0.5 later.
        v = np.sin(2.0 * np.pi * 2.0 * t - 0.3)
        report = measure.propagation_delay(t, v, v, level_in=0.0,
                                           level_out=0.0, occurrence=1)
        assert report.t_in == pytest.approx(0.3 / (4 * math.pi) + 0.5,
                                            abs=1e-3)
        assert report.delay == pytest.approx(0.0, abs=1e-9)


class TestTransitionTime:
    # 18 tau: the record max is the asymptote to ~1e-8, so the
    # record-relative 10/90 thresholds are the true ones.
    def test_rc_rise_time_is_ln9_tau(self):
        t, v = rc_step(t_stop=18e-6, n=36001)
        report = measure.transition_time(t, v, kind="rise")
        assert report.duration == pytest.approx(math.log(9.0) * TAU,
                                                rel=1e-3)
        assert report.slew == pytest.approx(0.8 / report.duration,
                                            rel=1e-3)

    def test_fall_time_mirrors_rise(self):
        t, v = rc_step(t_stop=18e-6, n=36001)
        report = measure.transition_time(t, 1.0 - v, kind="fall")
        assert report.kind == "fall"
        assert report.duration == pytest.approx(math.log(9.0) * TAU,
                                                rel=1e-3)
        assert report.slew < 0.0

    def test_custom_thresholds(self):
        t, v = rc_step(t_stop=18e-6, n=36001)
        # 20/80: tau * ln(0.8/0.2)
        report = measure.transition_time(t, v, low_frac=0.2,
                                         high_frac=0.8)
        assert report.duration == pytest.approx(math.log(4.0) * TAU,
                                                rel=1e-3)

    def test_flat_waveform_rejected(self):
        with pytest.raises(AnalysisError, match="flat"):
            measure.transition_time([0.0, 1.0, 2.0], [1.0, 1.0, 1.0])

    def test_bad_kind_rejected(self):
        with pytest.raises(AnalysisError, match="kind"):
            measure.transition_time([0.0, 1.0], [0.0, 1.0], kind="up")


class TestSwingOvershootSettling:
    def test_swing_of_rc_step(self):
        t, v = rc_step()
        report = measure.output_swing(t, v)
        assert report.v_min == 0.0
        assert report.v_max == pytest.approx(1.0, abs=1e-3)
        assert report.swing == report.v_max - report.v_min

    def test_swing_window_from_t(self):
        t, v = rc_step()
        report = measure.output_swing(t, v, t_from=5.0 * TAU)
        assert report.v_min == pytest.approx(1.0 - math.exp(-5.0),
                                             rel=1e-3)

    def test_swing_after_the_record_rejected(self):
        t, v = rc_step()
        with pytest.raises(AnalysisError, match="t_from"):
            measure.output_swing(t, v, t_from=1.0)

    def test_underdamped_overshoot(self):
        """Standard 2nd-order step: overshoot exp(-pi z / sqrt(1-z^2))."""
        zeta, wn = 0.3, 2.0 * np.pi * 1e6
        wd = wn * math.sqrt(1.0 - zeta**2)
        t = np.linspace(0.0, 10e-6, 20001)
        v = 1.0 - np.exp(-zeta * wn * t) * (
            np.cos(wd * t) + zeta / math.sqrt(1 - zeta**2) * np.sin(wd * t))
        expected = math.exp(-math.pi * zeta / math.sqrt(1.0 - zeta**2))
        report = measure.overshoot(t, v)
        assert report.overshoot == pytest.approx(expected, rel=2e-2)
        assert report.undershoot == pytest.approx(0.0, abs=1e-6)

    def test_monotonic_step_has_zero_overshoot(self):
        t, v = rc_step()
        report = measure.overshoot(t, v, v_initial=0.0, v_final=1.0)
        assert report.overshoot == pytest.approx(0.0, abs=1e-3)

    def test_overshoot_zero_step_rejected(self):
        with pytest.raises(AnalysisError, match="zero step"):
            measure.overshoot([0.0, 1.0], [1.0, 1.0])

    def test_rc_settling_time_is_minus_log_band_tau(self):
        t, v = rc_step(t_stop=12e-6, n=40001)
        report = measure.settling_time(t, v, band=0.02, v_initial=0.0,
                                       v_final=1.0)
        assert report.t_settle == pytest.approx(-math.log(0.02) * TAU,
                                                rel=1e-3)

    def test_truncated_record_does_not_report_settled(self):
        t, v = rc_step(t_stop=1e-6)  # ends at 63% of the step
        with pytest.raises(AnalysisError, match="outside"):
            measure.settling_time(t, v, band=0.02, v_initial=0.0,
                                  v_final=1.0)

    def test_already_settled_record(self):
        t = np.linspace(0.0, 1.0, 11)
        v = np.full(11, 3.0)
        report = measure.settling_time(t, v, band=0.02, v_initial=2.0,
                                       v_final=3.0)
        assert report.t_settle == 0.0


class TestPeriodAndJitter:
    def test_clean_sine(self):
        f0 = 250e3
        t = np.linspace(0.0, 20e-6, 40001)
        v = np.sin(2.0 * np.pi * f0 * t)
        report = measure.period_and_jitter(t, v)
        assert report.period == pytest.approx(1.0 / f0, rel=1e-6)
        assert report.frequency == pytest.approx(f0, rel=1e-6)
        assert report.duty == pytest.approx(0.5, abs=1e-3)
        assert report.jitter_rms < 1e-12
        assert report.jitter_pp < 1e-11
        # Rising crossings at 4/8/12/16 us (t=0 sits on the level and
        # is not a toggle): 3 measured periods.
        assert report.n_cycles == 3

    def test_asymmetric_duty(self):
        t = np.linspace(0.0, 10.0, 100001)
        # 25% duty square-ish wave via a shifted sine threshold.
        v = (np.sin(2.0 * np.pi * t) > math.cos(math.pi * 0.25)
             ).astype(float)
        report = measure.period_and_jitter(t, v, level=0.5)
        assert report.period == pytest.approx(1.0, rel=1e-3)
        assert report.duty == pytest.approx(0.25, abs=5e-3)

    def test_too_few_cycles_rejected(self):
        t = np.linspace(0.0, 1.0, 101)
        v = np.sin(2.0 * np.pi * 1.2 * t)  # ~1 rising crossing
        with pytest.raises(AnalysisError, match="full cycles"):
            measure.period_and_jitter(t, v, level=0.0)


class TestStsclTestbench:
    """The gate testbenches of repro.stscl.testbench, measured end to
    end on the real transistor-level transient."""

    def test_gate_delay_tracks_the_analytic_law(self, default_design):
        from repro.stscl.testbench import measure_gate_delay

        report = measure_gate_delay(default_design, vdd=0.4)
        analytic = default_design.delay()
        # Self-loading makes the measured delay larger, but the same
        # order: the paper's ln2 V_SW C_L / I_SS law within 2x.
        assert analytic < report.delay < 2.0 * analytic

    def test_characterization_swing_is_v_sw(self, default_design):
        from repro.stscl.testbench import characterize_gate

        report = characterize_gate(default_design, vdd=0.4)
        assert report.swing.swing == pytest.approx(
            default_design.v_sw, rel=0.1)
        assert report.delay_ratio > 1.0
        assert "t_pd" in report.describe()

    def test_single_stage_chain_rejected(self, default_design):
        from repro.errors import DesignError
        from repro.stscl.testbench import buffer_chain_capture

        with pytest.raises(DesignError, match="2 stages"):
            buffer_chain_capture(default_design, 0.4, n_stages=1)

    def test_ring_oscillator_period(self, default_design):
        from repro.stscl.testbench import measure_ring_period

        report = measure_ring_period(default_design, vdd=0.4,
                                     n_stages=3)
        ideal = 2.0 * 3 * default_design.delay()
        # f = 1 / (2 N t_d) with the same self-loading factor.
        assert ideal < report.period < 2.0 * ideal
        assert 0.3 < report.duty < 0.7
        assert report.n_cycles >= 5
