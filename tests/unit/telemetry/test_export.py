"""Unit tests for JSONL trace export/import and the tree summary."""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.errors import TelemetryError
from repro.telemetry import (
    TRACE_SCHEMA,
    read_jsonl,
    trace_to_jsonl,
    tree_summary,
    write_jsonl,
)


@pytest.fixture(autouse=True)
def clean_state():
    telemetry.reset()
    yield
    telemetry.reset()


def sample_trace():
    with telemetry.tracing("sample", scenario="unit") as trace:
        with telemetry.span("solve", circuit="inv") as solve:
            solve.inc("factorizations", 3)
            solve.event("iter", i=0, residual=1e-9)
            with telemetry.span("inner"):
                pass
        with telemetry.span("solve", circuit="latch") as solve:
            solve.inc("factorizations", 2)
    return trace


class TestJsonlFormat:
    def test_header_first_then_flat_spans(self):
        text = trace_to_jsonl(sample_trace())
        records = [json.loads(line) for line in text.splitlines()]
        assert records[0]["record"] == "header"
        assert records[0]["schema"] == TRACE_SCHEMA
        assert records[0]["n_spans"] == 4
        assert all(r["record"] == "span" for r in records[1:])
        assert len(records) == 5

    def test_parent_links_depth_first(self):
        records = [json.loads(line) for line in
                   trace_to_jsonl(sample_trace()).splitlines()][1:]
        by_id = {r["id"]: r for r in records}
        root = next(r for r in records if r["parent"] is None)
        assert root["name"] == "sample"
        inner = next(r for r in records if r["name"] == "inner")
        assert by_id[inner["parent"]]["name"] == "solve"

    def test_numpy_scalars_serialized(self):
        with telemetry.tracing("np") as trace:
            with telemetry.span("s") as s:
                s.annotate(value=np.float64(1.5), count=np.int64(3))
        parsed = [json.loads(line) for line in
                  trace_to_jsonl(trace).splitlines()]
        attrs = parsed[-1]["attrs"]
        assert attrs == {"value": 1.5, "count": 3}


class TestRoundTrip:
    def test_write_read_preserves_tree(self, tmp_path):
        original = sample_trace()
        path = write_jsonl(original, tmp_path / "trace.jsonl")
        loaded = read_jsonl(path)
        assert loaded.name == "sample"
        assert loaded.created_utc == original.created_utc
        assert (loaded.root.to_dict() == original.root.to_dict())

    def test_counter_totals_survive(self, tmp_path):
        path = write_jsonl(sample_trace(), tmp_path / "t.jsonl")
        assert read_jsonl(path).total_counters() == {"factorizations": 5}

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TelemetryError):
            read_jsonl(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(
            {"record": "header", "schema": "other/v9"}) + "\n")
        with pytest.raises(TelemetryError, match="schema"):
            read_jsonl(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"record": "span", "id": 0}) + "\n")
        with pytest.raises(TelemetryError, match="header"):
            read_jsonl(path)

    def test_orphan_span_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        header = {"record": "header", "schema": TRACE_SCHEMA,
                  "trace": "t", "n_spans": 1}
        orphan = {"record": "span", "id": 5, "parent": 99, "name": "x"}
        path.write_text(json.dumps(header) + "\n"
                        + json.dumps(orphan) + "\n")
        with pytest.raises(TelemetryError, match="parent"):
            read_jsonl(path)


class TestTreeSummary:
    def test_mentions_spans_counters_events(self):
        text = tree_summary(sample_trace())
        assert "solve" in text
        assert "factorizations=3" in text
        assert "1 events" in text
        assert "totals: factorizations=5" in text

    def test_max_depth_prunes(self):
        full = tree_summary(sample_trace())
        shallow = tree_summary(sample_trace(), max_depth=1)
        assert "inner" in full
        assert "inner" not in shallow
