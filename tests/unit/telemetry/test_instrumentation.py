"""Integration of the telemetry layer with the solver stack.

The acceptance contract: a traced operating-point chain exposes
Newton-iteration spans, strategy-ladder events and device-eval /
compile-cache counters that reconcile with the solver's own
diagnostics -- and tracing must not change any numerical result.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.analysis import MonteCarlo, sweep_1d
from repro.spice import Circuit, ac_analysis, operating_point
from repro.spice.dc import dc_sweep
from repro.spice.transient import TransientOptions, transient
from repro.spice.waveforms import pulse_wave
from repro.stscl.gate_model import StsclGateDesign
from repro.stscl.netlist_gen import stscl_inverter_circuit


@pytest.fixture(autouse=True)
def clean_state():
    telemetry.reset()
    yield
    telemetry.reset()


def inverter():
    design = StsclGateDesign.default(1e-9)
    circuit, ports = stscl_inverter_circuit(design, 0.4)
    return circuit, ports


class TestOperatingPointTrace:
    def test_counters_reconcile_with_diagnostics(self):
        circuit, _ = inverter()
        with telemetry.tracing("op") as trace:
            result = operating_point(circuit)
        op = trace.root.find("operating-point")
        assert op is not None
        assert op.attrs["circuit"] == circuit.name
        # Every Newton iteration either refactorized the Jacobian or
        # reused the cached LU (chord step): summed over every ladder
        # rung the two reconcile exactly with the solver's own total.
        factorizations = op.total_counter("jacobian_factorizations")
        reuses = op.total_counter("lu_reuses")
        assert factorizations + reuses == result.iterations
        # On the LU-reuse path every factorization is a refactorization.
        assert (op.total_counter("lu_refactorizations")
                == factorizations)
        assert factorizations > 0
        # Compile-cache traffic reconciles with Circuit.compile_count.
        assert (op.total_counter("compile_cache_misses")
                == circuit.compile_count == 1)

    def test_newton_spans_carry_iteration_events(self):
        circuit, _ = inverter()
        with telemetry.tracing("op") as trace:
            operating_point(circuit)
        newtons = trace.root.find_all("newton")
        assert newtons
        converged = [s for s in newtons if s.attrs.get("converged")]
        assert converged
        events = converged[-1].events_of("newton-iter")
        assert len(events) == converged[-1].attrs["iterations"]
        for key in ("i", "residual", "update_norm", "damping"):
            assert key in events[0]

    def test_ladder_events_name_the_rescuing_strategy(self):
        circuit, _ = inverter()
        with telemetry.tracing("op") as trace:
            result = operating_point(circuit)
        op = trace.root.find("operating-point")
        rungs = op.events_of("ladder-rung")
        assert rungs
        winner = [r for r in rungs if r["converged"]]
        assert winner[-1]["strategy"] == result.diagnostics.rescued_by
        # The STSCL inverter needs the gmin ladder from a cold start:
        # its strategy span records the gmin schedule.
        gmin = op.find("strategy:gmin-stepping")
        if gmin is not None:
            steps = gmin.events_of("gmin-step")
            assert steps
            assert all("gmin" in s and "iterations" in s for s in steps)

    def test_device_bank_evals_counted(self):
        circuit, _ = inverter()
        with telemetry.tracing("op") as trace:
            result = operating_point(circuit)
        op = trace.root.find("operating-point")
        # One MOS-bank evaluation per Newton iteration (assemble call),
        # plus the final-residual assembles -- at least `iterations`.
        assert (op.total_counter("device_bank_evals")
                >= result.iterations)

    def test_tracing_does_not_change_the_solution(self):
        circuit_a, ports = inverter()
        plain = operating_point(circuit_a)
        circuit_b, _ = inverter()
        with telemetry.tracing("op"):
            traced = operating_point(circuit_b)
        assert np.allclose(plain.x, traced.x, rtol=0, atol=0)
        assert plain.iterations == traced.iterations

    def test_warm_start_hits_the_compile_cache(self):
        circuit, _ = inverter()
        with telemetry.tracing("op") as trace:
            first = operating_point(circuit)
            operating_point(circuit, x0=first.x)
        ops = trace.root.find_all("operating-point")
        assert len(ops) == 2
        assert ops[1].attrs["warm_start"] is True
        assert ops[1].total_counter("compile_cache_hits") >= 1
        assert ops[1].total_counter("compile_cache_misses") == 0


class TestAnalysisSpans:
    def test_dc_sweep_span(self):
        circuit, _ = inverter()
        with telemetry.tracing("sweep") as trace:
            dc_sweep(circuit, "vinp", np.linspace(0.0, 0.4, 5))
        node = trace.root.find("dc-sweep")
        assert node is not None
        assert node.attrs["n_points"] == 5
        assert node.attrs["n_failures"] == 0
        assert node.total_counter("compile_cache_misses") == 1

    def test_transient_span_counts_steps(self):
        design = StsclGateDesign.default(1e-9)
        t_d = design.delay()
        edge = t_d / 5.0
        high, low = 0.4, 0.4 - design.v_sw
        circuit, ports = stscl_inverter_circuit(
            design, 0.4,
            in_p=pulse_wave(low, high, delay=t_d, rise=edge, fall=edge,
                            width=2 * t_d, period=4 * t_d),
            in_n=pulse_wave(high, low, delay=t_d, rise=edge, fall=edge,
                            width=2 * t_d, period=4 * t_d))
        with telemetry.tracing("tran") as trace:
            result = transient(circuit, 4 * design.delay(),
                               TransientOptions(
                                   dt_max=design.delay() / 10))
        node = trace.root.find("transient")
        assert node is not None
        assert (node.counter("transient_steps_accepted")
                == result.telemetry.steps_accepted)
        assert (node.counter("transient_steps_rejected")
                == result.telemetry.steps_rejected)

    def test_ac_span_counts_factorizations(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "in", "0", 0.0, ac_mag=1.0)
        ckt.add_resistor("R1", "in", "out", 1e6)
        ckt.add_capacitor("C1", "out", "0", 1e-12)
        # NB: the trace name must differ from the span name -- find()
        # searches from the root inclusive.
        with telemetry.tracing("actest") as trace:
            ac_analysis(ckt, np.logspace(3, 6, 7))
        node = trace.root.find("ac")
        assert node is not None
        assert node.attrs["n_frequencies"] == 7
        assert node.counter("jacobian_factorizations") == 7

    def test_sweep_1d_point_spans_and_failures(self):
        from repro.errors import ConvergenceError

        def metric(x):
            if x == 2.0:
                raise ConvergenceError("nope")
            return {"y": x}

        with telemetry.tracing("s") as trace:
            sweep_1d("x", [1.0, 2.0, 3.0], metric, on_error="skip")
        node = trace.root.find("sweep-1d")
        assert node.counter("sweep_points_failed") == 1
        (failure,) = node.events_of("point-failed")
        assert failure["index"] == 1
        assert len(node.children) == 3


def _seed_metric(seed):
    return {"value": float(seed) * 2.0}


class TestMonteCarloTraceMerge:
    def test_serial_spans_nest_per_seed(self):
        with telemetry.tracing("mc") as trace:
            MonteCarlo(_seed_metric, n_runs=3).run()
        node = trace.root.find("montecarlo")
        assert [c.name for c in node.children] == [
            "seed-0", "seed-1", "seed-2"]

    def test_parallel_worker_spans_merge_in_order(self):
        with telemetry.tracing("mc") as trace:
            MonteCarlo(_seed_metric, n_runs=4, n_workers=2).run()
        node = trace.root.find("montecarlo")
        assert [c.name for c in node.children] == [
            "seed-0", "seed-1", "seed-2", "seed-3"]
        assert [c.attrs["seed"] for c in node.children] == [0, 1, 2, 3]

    def test_parallel_and_serial_results_identical_when_traced(self):
        with telemetry.tracing("a"):
            serial = MonteCarlo(_seed_metric, n_runs=4).run()
        telemetry.reset()
        with telemetry.tracing("b"):
            parallel = MonteCarlo(_seed_metric, n_runs=4,
                                  n_workers=2).run()
        assert np.array_equal(serial["value"].values,
                              parallel["value"].values)

    def test_untraced_parallel_run_ships_no_spans(self):
        run = MonteCarlo(_seed_metric, n_runs=2, n_workers=2).run()
        assert run["value"].mean == pytest.approx(1.0)
        assert not telemetry.is_enabled()
