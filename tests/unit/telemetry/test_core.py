"""Unit tests for the telemetry span/trace recording layer."""

import pytest

from repro import telemetry
from repro.errors import TelemetryError
from repro.telemetry import MAX_EVENTS_PER_SPAN, NULL_SPAN, Span


@pytest.fixture(autouse=True)
def clean_state():
    """Every test starts and ends with tracing disabled."""
    telemetry.reset()
    yield
    telemetry.reset()


class TestDisabledFastPath:
    def test_disabled_by_default(self):
        assert not telemetry.is_enabled()
        assert telemetry.active() is None

    def test_span_yields_null_span(self):
        with telemetry.span("anything", key=1) as node:
            assert node is NULL_SPAN

    def test_null_span_swallows_everything(self):
        NULL_SPAN.inc("counter")
        NULL_SPAN.event("kind", detail=1)
        NULL_SPAN.annotate(note="x")
        NULL_SPAN.adopt({"name": "ghost"})
        assert NULL_SPAN.counter("counter") == 0
        assert NULL_SPAN.children == ()

    def test_current_span_is_null_when_disabled(self):
        assert telemetry.current_span() is NULL_SPAN


class TestTraceLifecycle:
    def test_tracing_activates_and_deactivates(self):
        with telemetry.tracing("t") as trace:
            assert telemetry.is_enabled()
            assert telemetry.active() is trace
        assert not telemetry.is_enabled()

    def test_nested_trace_rejected(self):
        with telemetry.tracing("outer"):
            with pytest.raises(TelemetryError):
                telemetry.start_trace("inner")

    def test_stop_without_start_rejected(self):
        with pytest.raises(TelemetryError):
            telemetry.stop_trace()

    def test_trace_deactivated_even_on_error(self):
        with pytest.raises(ValueError):
            with telemetry.tracing("t"):
                raise ValueError("boom")
        assert not telemetry.is_enabled()

    def test_reset_drops_active_trace(self):
        telemetry.start_trace("t")
        telemetry.reset()
        assert not telemetry.is_enabled()

    def test_root_duration_recorded(self):
        with telemetry.tracing("t") as trace:
            pass
        assert trace.root.duration_s >= 0.0


class TestSpanTree:
    def test_nesting_follows_with_blocks(self):
        with telemetry.tracing("t") as trace:
            with telemetry.span("outer"):
                with telemetry.span("inner"):
                    pass
                with telemetry.span("inner2"):
                    pass
        (outer,) = trace.root.children
        assert [c.name for c in outer.children] == ["inner", "inner2"]

    def test_current_span_tracks_stack(self):
        with telemetry.tracing("t") as trace:
            assert telemetry.current_span() is trace.root
            with telemetry.span("a") as a:
                assert telemetry.current_span() is a
            assert telemetry.current_span() is trace.root

    def test_attrs_and_annotate(self):
        with telemetry.tracing("t") as trace:
            with telemetry.span("s", fixed=1) as s:
                s.annotate(late=2)
        (s,) = trace.root.children
        assert s.attrs == {"fixed": 1, "late": 2}

    def test_find_and_walk(self):
        with telemetry.tracing("t") as trace:
            with telemetry.span("a"):
                with telemetry.span("needle"):
                    pass
            with telemetry.span("needle"):
                pass
        assert trace.root.find("needle") is not None
        assert len(trace.root.find_all("needle")) == 2
        assert len(list(trace.root.walk())) == 4  # root, a, 2x needle

    def test_span_durations_nested(self):
        with telemetry.tracing("t") as trace:
            with telemetry.span("outer"):
                with telemetry.span("inner"):
                    pass
        (outer,) = trace.root.children
        (inner,) = outer.children
        assert outer.duration_s >= inner.duration_s >= 0.0


class TestCountersAndEvents:
    def test_counters_accumulate(self):
        with telemetry.tracing("t") as trace:
            with telemetry.span("s") as s:
                s.inc("hits")
                s.inc("hits", 4)
        assert trace.root.children[0].counter("hits") == 5
        assert trace.root.children[0].counter("absent") == 0

    def test_total_counters_sum_subtree(self):
        with telemetry.tracing("t") as trace:
            with telemetry.span("a") as a:
                a.inc("n", 1)
                with telemetry.span("b") as b:
                    b.inc("n", 2)
            with telemetry.span("c") as c:
                c.inc("n", 4)
        assert trace.root.total_counter("n") == 7
        assert trace.total_counters() == {"n": 7}

    def test_events_recorded_in_order(self):
        with telemetry.tracing("t") as trace:
            with telemetry.span("s") as s:
                s.event("step", i=0)
                s.event("step", i=1)
                s.event("other")
        (s,) = trace.root.children
        assert [e["i"] for e in s.events_of("step")] == [0, 1]
        assert len(s.events) == 3

    def test_events_bounded_with_drop_count(self):
        with telemetry.tracing("t") as trace:
            with telemetry.span("s") as s:
                for i in range(MAX_EVENTS_PER_SPAN + 10):
                    s.event("e", i=i)
        (s,) = trace.root.children
        assert len(s.events) == MAX_EVENTS_PER_SPAN
        assert s.events_dropped == 10


class TestSerialization:
    def _sample(self):
        with telemetry.tracing("t") as trace:
            with telemetry.span("s", k="v") as s:
                s.inc("n", 3)
                s.event("e", i=1)
        return trace

    def test_round_trip_preserves_everything(self):
        original = self._sample().root
        clone = Span.from_dict(original.to_dict())
        assert clone.to_dict() == original.to_dict()

    def test_adopt_dict_grafts_child(self):
        payload = self._sample().root.children[0].to_dict()
        with telemetry.tracing("t2") as trace:
            telemetry.current_span().adopt(payload)
        (adopted,) = trace.root.children
        assert adopted.name == "s"
        assert adopted.counter("n") == 3

    def test_adopt_span_object(self):
        donor = self._sample().root.children[0]
        parent = Span("p")
        parent.adopt(donor)
        assert parent.children[0] is donor
