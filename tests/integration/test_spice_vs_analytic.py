"""Integration: transistor-level STSCL behaviour vs the analytic model.

These are the checks that tie the paper's closed-form claims (delay
law, Eq. 1, V_DD independence) to "silicon" (the EKV + MNA level).
"""

import numpy as np
import pytest

from repro.spice import operating_point
from repro.stscl import StsclGateDesign, measure_gate_delay
from repro.stscl.netlist_gen import stscl_inverter_circuit


def measured_stage_delay(design: StsclGateDesign, vdd: float) -> float:
    """Propagation delay of the middle stage of a 3-buffer chain.

    Delegates to the scoped testbench: a triggered O(window) capture of
    the edge through the last two stages, measured at the differential
    zero crossings (the same event as the old single-ended mid-swing
    crossings, without the dense record).
    """
    return measure_gate_delay(design, vdd).delay


class TestDelayLaw:
    def test_absolute_delay_within_model_factor(self):
        """SPICE delay tracks the analytic t_d within the self-loading
        factor (device parasitics add ~30 % to the explicit C_L)."""
        design = StsclGateDesign.default(1e-9)
        measured = measured_stage_delay(design, 1.0)
        assert 1.0 < measured / design.delay() < 1.8

    def test_delay_scales_inversely_with_current(self):
        """One decade of tail current = one decade of speed (Fig. 9a's
        line), now measured on transistors."""
        slow = measured_stage_delay(StsclGateDesign.default(0.3e-9), 1.0)
        fast = measured_stage_delay(StsclGateDesign.default(3e-9), 1.0)
        assert slow / fast == pytest.approx(10.0, rel=0.25)

    def test_delay_independent_of_supply(self):
        """The paper's headline property, measured: +25 % V_DD moves
        the transistor-level delay by only a few percent (vs the ~e^7
        of subthreshold CMOS)."""
        design = StsclGateDesign.default(1e-9)
        d_low = measured_stage_delay(design, 1.0)
        d_high = measured_stage_delay(design, 1.25)
        assert d_high / d_low == pytest.approx(1.0, abs=0.10)


class TestStaticPower:
    def test_supply_current_equals_tail_current(self):
        """Eq. (1)'s premise: the cell current is exactly I_SS,
        independent of V_DD."""
        design = StsclGateDesign.default(1e-9)
        for vdd in (0.8, 1.0, 1.25):
            circuit, _ = stscl_inverter_circuit(design, vdd)
            op = operating_point(circuit)
            assert abs(op.current("vvdd")) == pytest.approx(
                design.i_ss, rel=0.05)

    def test_swing_independent_of_supply(self):
        """With the replica-solved V_BP at each supply, the output
        swing stays pinned at V_SW."""
        design = StsclGateDesign.default(1e-9)
        for vdd in (0.9, 1.0, 1.25):
            circuit, ports = stscl_inverter_circuit(design, vdd)
            op = operating_point(circuit)
            out_p, out_n = ports.outputs["y"]
            assert op.vdiff(out_p, out_n) == pytest.approx(
                design.v_sw, rel=0.1)


class TestNoiseMarginTransfer:
    def test_dc_transfer_regenerative(self):
        """Sweeping the differential input through zero must show gain
        > 1 around balance (regeneration) and full swing at the ends."""
        design = StsclGateDesign.default(1e-9)
        vdd = 1.0
        mid = vdd - design.v_sw / 2.0
        v_diffs = np.linspace(-design.v_sw, design.v_sw, 21)
        outputs = []
        for v_diff in v_diffs:
            circuit, ports = stscl_inverter_circuit(
                design, vdd, in_p=mid + v_diff / 2.0,
                in_n=mid - v_diff / 2.0)
            op = operating_point(circuit)
            out_p, out_n = ports.outputs["y"]
            outputs.append(op.vdiff(out_p, out_n))
        outputs = np.asarray(outputs)
        assert outputs[0] == pytest.approx(-design.v_sw, rel=0.1)
        assert outputs[-1] == pytest.approx(design.v_sw, rel=0.1)
        centre = len(v_diffs) // 2
        gain = ((outputs[centre + 1] - outputs[centre - 1])
                / (v_diffs[centre + 1] - v_diffs[centre - 1]))
        assert gain > 1.5
