"""Integration: the full platform flow the paper's Fig. 1 promises.

One knob (the sampling rate) retunes PLL, analog bias tree and digital
tail currents together; conversion quality is maintained across the
whole 800 S/s .. 80 kS/s range while power scales linearly.
"""

import math

import numpy as np
import pytest

from repro.adc.metrics import sine_test
from repro.platform_msys import MixedSignalPlatform


@pytest.fixture(scope="module")
def platform():
    return MixedSignalPlatform.build(seed=11)


class TestSingleKnobScaling:
    def test_rate_sweep_keeps_quality(self, platform):
        """ENOB stays flat across two decades of sampling rate: the
        defining property of the power-scalable converter."""
        enobs = []
        for f_s in (800.0, 8e3, 80e3):
            platform.set_sample_rate(f_s)
            tuned = platform.pmu.tuned_adc(f_s)
            f_in = f_s * 67 / 1024
            mid = 0.5 * (tuned.config.v_low + tuned.config.v_high)
            amp = 0.475 * tuned.config.full_scale
            t = np.arange(1024) / f_s
            codes = tuned.convert_batch(
                mid + amp * np.sin(2 * np.pi * f_in * t), noisy=True)
            enobs.append(sine_test(codes, 8).enob)
        assert max(enobs) - min(enobs) < 0.4
        assert min(enobs) > 6.0

    def test_power_frequency_line(self, platform):
        """Log-log slope of power vs rate = 1 (the paper's linear
        scaling)."""
        rates = np.array([800.0, 2e3, 8e3, 20e3, 80e3])
        powers = np.array([
            platform.set_sample_rate(f).operating_point.total_power
            for f in rates])
        slope = np.polyfit(np.log10(rates), np.log10(powers), 1)[0]
        assert slope == pytest.approx(1.0, abs=0.02)

    def test_pll_to_pmu_handoff(self, platform):
        """The PLL's locked control current equals what the PMU's gate
        design needs at that rate (same delay law both sides)."""
        f_target = 8e3
        report = platform.lock_pll(f_target)
        design = platform.pmu.tuned_gate_design(f_target)
        ring = platform.pll
        # the ring at the PMU's digital current runs at >= the encoder rate
        assert ring.ring_frequency(design.i_ss) > 0.0
        assert report.locked


class TestEndToEndAcquisition:
    def test_ecg_like_waveform_digitised(self, platform):
        """Sample a biomedical-style waveform and verify the record is
        faithful (correlation with the analog truth)."""
        f_s = 2e3
        platform.set_sample_rate(f_s)

        def ecg_like(t: float) -> float:
            heart = math.sin(2 * math.pi * 1.3 * t) ** 31
            baseline = 0.08 * math.sin(2 * math.pi * 0.3 * t)
            return 0.5 + 0.22 * heart + baseline

        n = 512
        codes = platform.convert(ecg_like, n)
        t = np.arange(n) / f_s
        truth = np.array([ecg_like(float(x)) for x in t])
        cfg = platform.adc.config
        reconstructed = cfg.v_low + (codes + 0.5) * cfg.lsb
        correlation = np.corrcoef(truth, reconstructed)[0, 1]
        assert correlation > 0.99
