"""Failure injection: how gracefully does the converter degrade?

Real chips fail partially: a comparator sticks, a bias branch opens, a
metastable decision flips randomly.  These tests quantify the blast
radius of each fault class and pin down which mitigation (majority
bubble correction, folding redundancy, sync decode) contains it.

Faults are injected through :mod:`repro.faults` -- the declarative
models force comparator words at the ``raw_words`` boundary, exactly
where a real stuck output enters the encoder.
"""

import numpy as np
import pytest

from repro.adc import FaiAdc
from repro.digital.encoder import (EncoderSpec, coarse_thermometer,
                                   cyclic_fine_thermometer, encode_batch,
                                   reference_encode)
from repro.faults import FaultedAdc, StuckComparator


@pytest.fixture(scope="module")
def ideal():
    return FaiAdc(ideal=True, seed=0)


class TestStuckFineComparator:
    @pytest.mark.parametrize("index,value", [(5, False), (5, True),
                                             (20, True)])
    def test_blast_radius_without_correction(self, ideal, index, value):
        """A stuck fine comparator corrupts the codes whose decode
        reads it: bounded, never a full-scale failure."""
        cfg = ideal.config
        ramp = np.linspace(cfg.v_low + cfg.lsb, cfg.v_high - cfg.lsb,
                           4096)
        good = ideal.convert_batch(ramp)
        bad = StuckComparator("fine", index, value).apply(
            ideal).convert_batch(ramp)
        errors = np.abs(bad.astype(int) - good.astype(int))
        assert errors.max() > 0          # the fault is visible...
        assert errors.max() <= 64        # ...but bounded (< 2 segments)
        # Nearly half of all codes remain exactly correct (the stuck
        # bit feeds one Gray tap, wrong for ~half the range).
        assert np.mean(errors == 0) > 0.4

    def test_fine_majority_contains_single_stuck_bit(self, ideal):
        """With the optional cyclic majority row, a stuck fine bit is
        outvoted by its neighbours except right at its own crossings:
        mean error collapses."""
        cfg = ideal.config
        ramp = np.linspace(cfg.v_low + cfg.lsb, cfg.v_high - cfg.lsb,
                           4096)
        plain = EncoderSpec()
        with_majority = EncoderSpec(fine_bubble_correction=True)
        good = ideal.convert_batch(ramp)
        bad_plain = FaultedAdc(ideal, stuck_fine={9: True},
                               spec=plain).convert_batch(ramp)
        bad_corrected = FaultedAdc(ideal, stuck_fine={9: True},
                                   spec=with_majority).convert_batch(ramp)
        mean_plain = np.mean(np.abs(bad_plain - good))
        mean_corrected = np.mean(np.abs(bad_corrected - good))
        assert mean_corrected < 0.25 * mean_plain


class TestStuckCoarseComparator:
    def test_majority_absorbs_interior_stuck_bit(self, ideal):
        """A coarse comparator stuck low is a bubble whenever it sits
        deep inside the ones-run: the majority cells repair those
        segments exactly.  Where the stuck bit is at or adjacent to the
        run end (segments 4 and 5 for a stuck c3), majority votes with
        the corrupted neighbour and loses -- a two-segment blast
        radius, after which everything is clean again."""
        cfg = ideal.config
        ramp = np.linspace(cfg.v_low + cfg.lsb, cfg.v_high - cfg.lsb,
                           4096)
        good = ideal.convert_batch(ramp)
        bad = StuckComparator("coarse", 3, False).apply(
            ideal).convert_batch(ramp)
        errors = np.abs(bad.astype(int) - good.astype(int))
        wrong = np.nonzero(errors > 1)[0]
        assert wrong.size > 0
        span_lsb = (ramp[wrong[-1]] - ramp[wrong[0]]) / cfg.lsb
        assert span_lsb < 100.0  # contained to ~two segments
        # Everything from segment 6 up is repaired perfectly.
        upper = ramp > cfg.v_low + 6 * 32 * cfg.lsb
        assert np.all(errors[upper] <= 1)
        # And below the stuck bit's own segment nothing changes at all.
        lower = ramp < cfg.v_low + 4 * 32 * cfg.lsb
        assert np.all(errors[lower] <= 1)

    def test_without_bubble_correction_damage_spreads(self, ideal):
        cfg = ideal.config
        ramp = np.linspace(cfg.v_low + cfg.lsb, cfg.v_high - cfg.lsb,
                           4096)
        corrected_spec = EncoderSpec()
        raw_spec = EncoderSpec(bubble_correction=False)
        good = ideal.convert_batch(ramp)
        with_fix = FaultedAdc(ideal, stuck_coarse={3: False},
                              spec=corrected_spec).convert_batch(ramp)
        without_fix = FaultedAdc(ideal, stuck_coarse={3: False},
                                 spec=raw_spec).convert_batch(ramp)
        assert (np.abs(without_fix - good).mean()
                > np.abs(with_fix - good).mean())


class TestMetastabilityStorm:
    def test_random_flips_stay_local(self, ideal):
        """Randomly flipping one fine bit per sample (worst-case
        metastability) must produce only local code errors, never
        segment-sized sparkles -- the Gray-domain property.

        Not a stuck fault, so no declarative model applies: the words
        are taken at the same ``raw_words`` boundary the fault layer
        injects at, and flipped by hand."""
        cfg = ideal.config
        rng = np.random.default_rng(0)
        ramp = np.linspace(cfg.v_low + cfg.lsb, cfg.v_high - cfg.lsb,
                           2048)
        coarse, fine = ideal.raw_words(ramp)
        fine = fine.copy()
        flip = rng.integers(0, 32, size=ramp.size)
        fine[np.arange(ramp.size), flip] ^= True
        good = ideal.convert_batch(ramp)
        noisy = encode_batch(coarse, fine, ideal.spec)
        errors = np.abs(noisy.astype(int) - good.astype(int))
        # Gray taps: one thermometer bit feeds one Gray bit, so a flip
        # moves the code by a bounded amount (the tap's weight).
        assert np.percentile(errors, 95) <= 32
        assert errors.max() <= 64


class TestScalarBatchConsistencyUnderFaults:
    def test_paths_agree_on_corrupted_words(self, ideal):
        """The scalar and vectorised encoders must agree even on
        physically impossible (fault-injected) input words."""
        spec = ideal.spec
        rng = np.random.default_rng(1)
        for _trial in range(200):
            value = int(rng.integers(0, 256))
            coarse = list(coarse_thermometer(value, spec))
            fine = list(cyclic_fine_thermometer(value, spec))
            for _k in range(int(rng.integers(1, 4))):
                which = int(rng.integers(0, 39))
                if which < 7:
                    coarse[which] = not coarse[which]
                else:
                    fine[which - 7] = not fine[which - 7]
            scalar = reference_encode(tuple(coarse), tuple(fine), spec)
            batch = encode_batch(np.array([coarse]), np.array([fine]),
                                 spec)[0]
            assert scalar == batch
