"""Integration: the STSCL ring oscillator (the PLL's VCO) at the
transistor level.

Its frequency must follow 1/(2 N t_d) within the device self-loading
factor, and scale linearly with the tail current -- the property that
lets the PLL's control current *be* the system bias (Fig. 1).
"""

import numpy as np
import pytest

from repro.spice import TransientOptions, transient
from repro.stscl import StsclGateDesign, stscl_ring_oscillator_circuit


def measured_period(i_ss: float, n_stages: int = 3) -> float:
    design = StsclGateDesign.default(i_ss)
    circuit, _ports = stscl_ring_oscillator_circuit(design, 1.0,
                                                    n_stages)
    t_d = design.delay()
    result = transient(circuit, 40.0 * t_d,
                       TransientOptions(dt_max=t_d / 15.0))
    mid = 1.0 - design.v_sw / 2.0
    crossings = result.crossing_times("s1_outp", mid, rising=True)
    assert crossings.size >= 3, "oscillation did not start"
    periods = np.diff(crossings)
    return float(np.median(periods))


class TestRingOscillator:
    def test_oscillates_at_expected_period(self):
        design = StsclGateDesign.default(1e-9)
        period = measured_period(1e-9)
        ideal = 2.0 * 3 * design.delay()
        # Self-loading slows the ring by the same ~1.3x factor as the
        # open chain.
        assert 1.0 < period / ideal < 1.8

    def test_frequency_linear_in_current(self):
        slow = measured_period(0.5e-9)
        fast = measured_period(2e-9)
        assert slow / fast == pytest.approx(4.0, rel=0.2)

    def test_sustained_oscillation(self):
        """The amplitude must not decay.  A 3-stage SCL ring slews
        continuously, so the steady swing is a fraction of V_SW
        (~40 % here) -- the test checks it is symmetric and constant
        between an early and a late window."""
        design = StsclGateDesign.default(1e-9)
        circuit, _ = stscl_ring_oscillator_circuit(design, 1.0, 3)
        t_d = design.delay()
        result = transient(circuit, 40.0 * t_d,
                           TransientOptions(dt_max=t_d / 15.0))
        mid_window = (result.time > 15.0 * t_d) & (result.time
                                                   < 25.0 * t_d)
        late_window = result.time > 30.0 * t_d
        swing = result.vdiff("s1_outp", "s1_outn")
        amp_mid = float(np.max(np.abs(swing[mid_window])))
        amp_late = float(np.max(np.abs(swing[late_window])))
        assert amp_late > 0.35 * design.v_sw
        assert amp_late == pytest.approx(amp_mid, rel=0.15)
        assert swing[late_window].min() < -0.35 * design.v_sw
