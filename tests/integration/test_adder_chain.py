"""The transistor-level 32-bit adder chain: the thousand-unknown
scale target of the sparse + hierarchical MNA work.

One full-adder bit slice (XOR3 + MAJ3 steering trees plus two pipeline
latches, 48 MOSFETs) is compiled once and instantiated per bit; at 32
bits the flat MNA system crosses 1000 unknowns, the auto backend picks
sparse, and the DC solution *is* the arithmetic result -- every sum bit
must land on the correct side of its differential pair at full swing.
"""

import pytest

from repro.spice import operating_point
from repro.stscl.adder import adder_chain_circuit, full_adder_cell
from repro.stscl.gate_model import StsclGateDesign

VDD = 0.4


@pytest.fixture(scope="module")
def design():
    return StsclGateDesign(i_ss=1e-9)


def decode(result, ports, width: int) -> tuple[int, bool]:
    total = 0
    for i in range(width):
        p, n = ports[f"s{i}"]
        if result.voltages[p] - result.voltages[n] > 0:
            total |= 1 << i
    p, n = ports["cout"]
    return total, result.voltages[p] - result.voltages[n] > 0


class TestScaleTarget:
    def test_32bit_chain_exceeds_thousand_unknowns_and_goes_sparse(
            self, design):
        circuit, _ = adder_chain_circuit(design, VDD)
        compiled = circuit.compile()
        assert compiled.size >= 1000
        assert compiled.solver_backend() == "sparse"

    def test_cell_compiles_once_across_instances(self, design):
        cell = full_adder_cell(design, VDD)
        plan_a = cell.subcircuit.plan()
        plan_b = cell.subcircuit.plan()
        assert plan_a is plan_b


class TestArithmetic:
    @pytest.mark.parametrize("a,b,cin", [
        (0xDEADBEEF, 0x12345678, True),   # carries ripple everywhere
        (0xFFFFFFFF, 0x00000001, False),  # full-length carry chain
    ])
    def test_dc_solution_is_the_sum(self, design, a, b, cin):
        circuit, ports = adder_chain_circuit(design, VDD, a=a, b=b,
                                             carry_in=cin)
        op = operating_point(circuit)
        expected = a + b + (1 if cin else 0)
        total, cout = decode(op, ports, 32)
        assert total == (expected & 0xFFFFFFFF)
        assert cout == bool(expected >> 32)

    def test_outputs_swing_fully(self, design):
        """Every decoded bit rests at a healthy fraction of V_SW --
        logic levels, not numerical noise around zero."""
        circuit, ports = adder_chain_circuit(design, VDD, a=0xAAAAAAAA,
                                             b=0x55555555)
        op = operating_point(circuit)
        for i in range(32):
            p, n = ports[f"s{i}"]
            swing = abs(op.voltages[p] - op.voltages[n])
            assert swing > 0.5 * design.v_sw

    def test_sparse_matches_dense_on_a_short_chain(self, design):
        """Backend equivalence on the real workload (8 bits keeps the
        dense factorization cheap)."""
        results = {}
        for backend in ("dense", "sparse"):
            circuit, ports = adder_chain_circuit(
                design, VDD, width=8, a=0xA5, b=0x3C, carry_in=True)
            circuit.matrix_backend = backend
            results[backend] = operating_point(circuit)
        dense, sparse = results["dense"], results["sparse"]
        for node, value in dense.voltages.items():
            assert sparse.voltages[node] == pytest.approx(value,
                                                          abs=1e-9)
        assert decode(sparse, ports, 8)[0] == ((0xA5 + 0x3C + 1) & 0xFF)

    def test_unlatched_chain_also_converges(self, design):
        circuit, ports = adder_chain_circuit(design, VDD, width=8,
                                             a=0x0F, b=0x01,
                                             with_latches=False)
        op = operating_point(circuit)
        assert decode(op, ports, 8)[0] == 0x10
