"""O(window) capture memory on the thousand-unknown adder chain.

The scale demonstration of the streaming capture layer: a long
transient of the transistor-level 32-bit adder (1164 MNA unknowns,
sparse backend) with ``replace_dense=True`` stores a bounded trigger
window, while the dense recorder's footprint grows linearly with the
number of committed steps.
"""

import numpy as np
import pytest

from repro.scope import LevelTrigger, Probe, ScopeSession
from repro.spice import TransientOptions, transient
from repro.stscl.adder import adder_chain_circuit
from repro.stscl.gate_model import StsclGateDesign

VDD = 0.4
A, B = 0xDEADBEEF, 0x12345678


@pytest.fixture(scope="module")
def design():
    return StsclGateDesign(i_ss=1e-9)


def _chain(design):
    circuit, ports = adder_chain_circuit(design, VDD, a=A, b=B,
                                         carry_in=True)
    return circuit, ports


def _session(ports, pre=16, post=32):
    s0_p, s0_n = ports["s0"]
    return ScopeSession(
        probes=[Probe(s0_p, s0_n, label="s0")],
        trigger=LevelTrigger("s0", level=-1.0, mode="above"),
        pre_samples=pre, post_samples=post, replace_dense=True)


def _options(design, n_steps):
    dt = design.delay() / 10.0
    return n_steps * dt, TransientOptions(step_control="legacy",
                                          dt_initial=dt, dt_max=dt)


class TestBoundedCaptureMemory:
    def test_memory_is_flat_while_steps_grow_4x(self, design):
        """The acceptance bound: scope memory is O(window), the run is
        O(steps) -- quadrupling the transient leaves the session's
        footprint untouched while the committed step count quadruples.
        """
        footprints, steps = [], []
        for n_steps in (60, 240):
            circuit, ports = _chain(design)
            session = _session(ports)
            t_stop, options = _options(design, n_steps)
            result = transient(circuit, t_stop, options, scope=session)
            assert session.triggered
            footprints.append(session.memory_bytes())
            steps.append(result.time.size)
        assert steps[1] >= 4 * steps[0] - 4
        assert footprints[1] == footprints[0]
        # And the bounded window really is small: a dense record of the
        # long run would hold every node at every step.
        n_unknowns = 1164
        dense_bytes = steps[1] * n_unknowns * 8
        assert footprints[1] < dense_bytes / 100

    def test_replace_dense_result_has_no_waveforms(self, design):
        circuit, ports = _chain(design)
        session = _session(ports)
        t_stop, options = _options(design, 40)
        result = transient(circuit, t_stop, options, scope=session)
        assert result.voltages == {}
        assert result.telemetry.steps_accepted == 40

    def test_window_matches_the_dense_run_bitwise(self, design):
        """Same circuit, same stepping: the O(window) capture must be
        np.array_equal to the slice of a dense run -- fidelity survives
        the sparse backend and the thousand-unknown system."""
        t_stop, options = _options(design, 40)

        circuit, ports = _chain(design)
        session = _session(ports, pre=4, post=8)
        transient(circuit, t_stop, options, scope=session)
        seg = session.segment()

        dense_circuit, dense_ports = _chain(design)
        dense = transient(dense_circuit, t_stop, options)
        s0_p, s0_n = dense_ports["s0"]
        start = int(np.nonzero(dense.time == seg.time[0])[0][0])
        window = slice(start, start + len(seg))
        assert np.array_equal(seg.time, dense.time[window])
        assert np.array_equal(seg.signal("s0"),
                              dense.vdiff(s0_p, s0_n)[window])
