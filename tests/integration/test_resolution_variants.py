"""Integration: the paper's "medium accuracy (6 to 8b)" claim.

The same architecture must assemble and convert correctly at 6, 7 and
8 bits -- only the geometry parameters change, the generators adapt.
"""

import numpy as np
import pytest

from repro.adc import FaiAdc, FaiAdcConfig, dynamic_test, linearity_test
from repro.digital.encoder import EncoderSpec, build_fai_encoder
from repro.digital.simulator import CycleSimulator


VARIANTS = {
    6: FaiAdcConfig(coarse_bits=2, fine_bits=4, n_folders=4),
    7: FaiAdcConfig(coarse_bits=3, fine_bits=4, n_folders=4),
    8: FaiAdcConfig(coarse_bits=3, fine_bits=5, n_folders=4),
}


class TestResolutionFamily:
    @pytest.mark.parametrize("bits", [6, 7, 8])
    def test_ideal_converter_exact(self, bits):
        cfg = VARIANTS[bits]
        adc = FaiAdc(config=cfg, ideal=True, seed=0)
        centres = np.array([cfg.code_to_voltage(c)
                            for c in range(cfg.n_codes)])
        assert np.array_equal(adc.convert_batch(centres),
                              np.arange(cfg.n_codes))

    @pytest.mark.parametrize("bits", [6, 7])
    def test_mismatched_chip_within_spec(self, bits):
        """Lower resolutions have bigger LSBs: the same silicon errors
        shrink in LSB units -- the reason the paper calls 6-8 bits the
        comfortable range for this architecture."""
        cfg = VARIANTS[bits]
        adc = FaiAdc(config=cfg, ideal=False, seed=2)
        report = linearity_test(adc, samples_per_code=24)
        assert report.inl_max < 1.0
        assert not report.missing_codes
        dynamic = dynamic_test(adc, f_sample=80e3, n_samples=2048,
                               cycles=67)
        assert dynamic.enob > bits - 1.3

    def test_lower_resolution_is_relatively_cleaner(self):
        inl = {}
        for bits in (6, 8):
            adc = FaiAdc(config=VARIANTS[bits], ideal=False, seed=2)
            inl[bits] = linearity_test(adc, samples_per_code=24).inl_max
        assert inl[6] < inl[8]

    @pytest.mark.parametrize("bits", [6, 7])
    def test_encoder_generalises(self, bits):
        cfg = VARIANTS[bits]
        spec = EncoderSpec(coarse_bits=cfg.coarse_bits,
                           fine_bits=cfg.fine_bits)
        netlist = build_fai_encoder(spec)
        simulator = CycleSimulator(netlist)
        latency = simulator.latency()
        from repro.digital.encoder import (coarse_thermometer,
                                           cyclic_fine_thermometer,
                                           encoder_output_value)
        for value in range(cfg.n_codes):
            vector = {}
            for i, b in enumerate(coarse_thermometer(value, spec)):
                vector[f"c{i}"] = b
            for i, b in enumerate(cyclic_fine_thermometer(value, spec)):
                vector[f"f{i}"] = b
            simulator.reset()
            out = None
            for _cycle in range(latency + 1):
                out = simulator.step(vector)
            assert encoder_output_value(netlist, out) == value
