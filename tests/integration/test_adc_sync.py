"""Integration: coarse/fine synchronisation robustness.

The paper's 'error correction' (Sec. III-B): the converter must survive
coarse comparators deciding early or late near segment boundaries.  We
inject controlled coarse offsets and check the damage stays ~LSB-level.
"""

import numpy as np
import pytest

from repro.adc import FaiAdc, FaiAdcConfig
from repro.digital.encoder import EncoderSpec, encode_batch


def convert_with_coarse_offset(adc: FaiAdc, voltages: np.ndarray,
                               offset_lsb: float,
                               spec: EncoderSpec) -> np.ndarray:
    """Re-run conversions with every coarse threshold shifted."""
    cfg = adc.config
    taps = (adc.coarse.ladder.tap_voltages()
            + adc.coarse.bank.offsets() + offset_lsb * cfg.lsb)
    coarse = voltages[:, None] > taps[None, :]
    fine = adc.fine.fine_code(voltages)
    return encode_batch(coarse, fine, spec)


@pytest.fixture(scope="module")
def ideal():
    return FaiAdc(ideal=True, seed=0)


class TestBoundaryRobustness:
    @pytest.mark.parametrize("offset_lsb", [-1.5, -0.5, 0.5, 1.5])
    def test_small_coarse_offsets_cost_few_lsb(self, ideal, offset_lsb):
        """The folding reflection bounds the damage at ~2x the coarse
        offset (the wrong segment pairs with a mirrored fine code), so
        a sub-LSB coarse error costs one code and a 1.5-LSB error at
        most three -- never a 32-code segment jump."""
        cfg = ideal.config
        ramp = np.linspace(cfg.v_low + cfg.lsb, cfg.v_high - cfg.lsb,
                           2048)
        expected = ideal.convert_batch(ramp)
        shifted = convert_with_coarse_offset(ideal, ramp, offset_lsb,
                                             ideal.spec)
        bound = int(np.ceil(2.0 * abs(offset_lsb)))
        assert np.max(np.abs(shifted - expected)) <= bound

    def test_large_offset_breaks_plain_decode(self, ideal):
        """Beyond the folding symmetry's reach, the plain decode
        produces segment-sized errors -- bounding where the protection
        ends."""
        cfg = ideal.config
        ramp = np.linspace(cfg.v_low + cfg.lsb, cfg.v_high - cfg.lsb,
                           2048)
        expected = ideal.convert_batch(ramp)
        shifted = convert_with_coarse_offset(ideal, ramp, 6.0, ideal.spec)
        assert np.max(np.abs(shifted - expected)) > 8

    def test_sync_correction_extends_tolerance(self, ideal):
        """The ref-[14] snap decode survives multi-LSB coarse errors
        that break the plain decode (the E12 ablation)."""
        cfg = ideal.config
        spec_sync = EncoderSpec(sync_correction=True)
        ramp = np.linspace(cfg.v_low + cfg.lsb, cfg.v_high - cfg.lsb,
                           2048)
        expected = ideal.convert_batch(ramp)
        shifted = convert_with_coarse_offset(ideal, ramp, 6.0, spec_sync)
        assert np.max(np.abs(shifted - expected)) <= 1


class TestMismatchedChipMonotonicity:
    def test_chips_have_no_segment_jumps(self):
        """Even with mismatch, no conversion error approaches a
        segment (32-LSB) glitch: the sync scheme holds on real chips."""
        for seed in range(4):
            adc = FaiAdc(ideal=False, seed=seed)
            cfg = adc.config
            ramp = np.linspace(cfg.v_low + cfg.lsb,
                               cfg.v_high - cfg.lsb, 4096)
            codes = adc.convert_batch(ramp)
            ideal_codes = ((ramp - cfg.v_low) / cfg.lsb).astype(int)
            assert np.max(np.abs(codes - ideal_codes)) < 8
