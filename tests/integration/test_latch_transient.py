"""Integration: the Fig. 8 evaluate/hold behaviour at transistor level.

"When the clock signal is high, the logic circuit is in evaluation
phase and when clock goes low, the evaluated value will be kept at the
output node for the rest of the clock period."
"""

import pytest

from repro.spice import TransientOptions, transient
from repro.spice.waveforms import pwl_wave
from repro.stscl import StsclGateDesign
from repro.stscl.netlist_gen import stscl_latch_circuit


class TestLatchEvaluateHold:
    def test_holds_through_data_flip(self):
        design = StsclGateDesign.default(1e-9)
        vdd = 1.0
        high, low = vdd, vdd - design.v_sw
        t_d = design.delay()

        # Clock high until 8 t_d (evaluate), then low (hold).
        clk_p = pwl_wave([(0.0, high), (8 * t_d, high),
                          (8.2 * t_d, low), (30 * t_d, low)])
        clk_n = pwl_wave([(0.0, low), (8 * t_d, low),
                          (8.2 * t_d, high), (30 * t_d, high)])
        # D is 1 during evaluation, flips to 0 mid-hold: Q must ignore it.
        d_p = pwl_wave([(0.0, high), (14 * t_d, high),
                        (14.2 * t_d, low), (30 * t_d, low)])
        d_n = pwl_wave([(0.0, low), (14 * t_d, low),
                        (14.2 * t_d, high), (30 * t_d, high)])

        circuit, ports = stscl_latch_circuit(design, vdd, d_p, d_n,
                                             clk_p, clk_n)
        result = transient(circuit, 28 * t_d,
                           TransientOptions(dt_max=t_d / 15.0))
        q_p, q_n = ports.outputs["q"]
        swing = result.vdiff(q_p, q_n)

        # During evaluation Q tracks D = 1.
        t_eval = 7.0 * t_d
        assert result.value_at(q_p, t_eval) \
            - result.value_at(q_n, t_eval) > 0.5 * design.v_sw
        # Deep in the hold phase, after D has flipped, Q still holds 1.
        for when in (20.0 * t_d, 26.0 * t_d):
            held = result.value_at(q_p, when) - result.value_at(q_n, when)
            assert held > 0.5 * design.v_sw, when

    def test_transparent_tracking_when_clock_high(self):
        design = StsclGateDesign.default(1e-9)
        vdd = 1.0
        high, low = vdd, vdd - design.v_sw
        t_d = design.delay()
        clk_p, clk_n = high, low  # clock held high: transparent
        d_p = pwl_wave([(0.0, high), (8 * t_d, high),
                        (8.2 * t_d, low), (25 * t_d, low)])
        d_n = pwl_wave([(0.0, low), (8 * t_d, low),
                        (8.2 * t_d, high), (25 * t_d, high)])
        circuit, ports = stscl_latch_circuit(design, vdd, d_p, d_n,
                                             clk_p, clk_n)
        result = transient(circuit, 22 * t_d,
                           TransientOptions(dt_max=t_d / 15.0))
        q_p, q_n = ports.outputs["q"]
        early = result.value_at(q_p, 6 * t_d) \
            - result.value_at(q_n, 6 * t_d)
        late = result.value_at(q_p, 18 * t_d) \
            - result.value_at(q_n, 18 * t_d)
        assert early > 0.5 * design.v_sw
        assert late < -0.5 * design.v_sw  # followed the data flip
