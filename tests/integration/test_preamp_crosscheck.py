"""Integration: Fig. 6d cross-checked between the analytic preamp model
and the MNA engine, including the actual D_Well junction element."""

import numpy as np
import pytest

from repro.analog.preamp import Preamp, preamp_output_circuit
from repro.devices import Diode, NWELL_DIODE_180
from repro.spice import Circuit, ac_analysis


class TestNetworkEquivalence:
    @pytest.mark.parametrize("i_bias", [1e-10, 1e-9, 1e-8])
    def test_bandwidth_matches_across_bias(self, i_bias):
        for decoupled in (False, True):
            amp = Preamp(i_bias=i_bias, decoupled=decoupled)
            circuit = preamp_output_circuit(amp)
            freqs = np.logspace(0, 8, 161)
            result = ac_analysis(circuit, freqs)
            assert result.bandwidth_3db("out") == pytest.approx(
                amp.bandwidth(), rel=0.06)

    def test_improvement_factor_fig6d(self):
        """The decoupled load must buy a large bandwidth factor -- the
        shape of Fig. 6d."""
        plain = Preamp(i_bias=1e-9, decoupled=False)
        decoupled = Preamp(i_bias=1e-9, decoupled=True)
        assert decoupled.bandwidth() / plain.bandwidth() > 3.0


class TestRealJunctionElement:
    def test_mna_with_physical_dwell_diode(self):
        """Replace the behavioural C_well with the actual reverse-biased
        nwell diode element: the bandwidth improvement survives with a
        bias-dependent junction."""
        def build(decoupled: bool) -> Circuit:
            amp = Preamp(i_bias=1e-9, decoupled=decoupled)
            circuit = Circuit("preamp_dwell")
            circuit.add_vsource("vin", "in", "0", 0.0, ac_mag=1.0)
            circuit.add_vccs("gmin", "0", "out", "in", "0", 1e-6)
            circuit.add_resistor("rl", "out", "0", amp.load_resistance)
            circuit.add_capacitor("cout", "out", "0", amp.c_out)
            # The well sits ~0.8 V above substrate in the real cell;
            # at AC the op is what matters, so bias via a large R.
            if decoupled:
                r_c = amp.r_c_ratio * amp.load_resistance
                circuit.add_resistor("rc", "out", "well", r_c)
                circuit.add_diode("dwell", "0", "well",
                                  Diode(NWELL_DIODE_180))
            else:
                circuit.add_diode("dwell", "0", "out",
                                  Diode(NWELL_DIODE_180))
            return circuit

        freqs = np.logspace(0, 7, 141)
        bw_plain = ac_analysis(build(False), freqs).bandwidth_3db("out")
        bw_decoupled = ac_analysis(build(True),
                                   freqs).bandwidth_3db("out")
        assert bw_decoupled / bw_plain > 3.0
