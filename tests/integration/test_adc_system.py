"""Integration: full-converter metrology against the paper's numbers.

Paper (Sec. III-C / Fig. 11): INL = 1.0 LSB, DNL = 0.4 LSB, ENOB = 6.5.
We test a small Monte-Carlo population so a single lucky/unlucky chip
cannot pass or fail the suite.
"""

import numpy as np
import pytest

from repro.adc import FaiAdc, dynamic_test, linearity_test
from repro.analysis import MonteCarlo


@pytest.fixture(scope="module")
def population():
    def metrics(seed):
        adc = FaiAdc(ideal=False, seed=seed)
        linearity = linearity_test(adc, samples_per_code=12)
        dynamic = dynamic_test(adc, f_sample=80e3, n_samples=2048,
                               cycles=67)
        return {
            "inl": linearity.inl_max,
            "dnl": linearity.dnl_max,
            "enob": dynamic.enob,
            "missing": float(len(linearity.missing_codes)),
        }

    return MonteCarlo(metrics, n_runs=8, seed_base=0).run()


class TestPaperMetrics:
    def test_inl_matches_paper(self, population):
        assert population["inl"].median == pytest.approx(1.0, abs=0.4)

    def test_dnl_matches_paper(self, population):
        assert population["dnl"].median == pytest.approx(0.55, abs=0.4)

    def test_enob_matches_paper(self, population):
        assert population["enob"].median == pytest.approx(6.5, abs=0.4)

    def test_no_missing_codes_median_chip(self, population):
        assert population["missing"].median <= 2.0

    def test_spread_is_chip_to_chip(self, population):
        assert population["inl"].std > 0.0


class TestIdealReference:
    def test_ideal_far_better_than_chips(self, population):
        ideal = FaiAdc(ideal=True, seed=0)
        report = linearity_test(ideal, samples_per_code=12)
        assert report.inl_max < 0.5 * population["inl"].p05
