"""Integration: the gate-level encoder is bit-exact against the golden
model, exhaustively over all 256 codes, in both decode variants."""

import pytest

from repro.digital.encoder import (
    EncoderSpec,
    build_fai_encoder,
    coarse_thermometer,
    cyclic_fine_thermometer,
    encoder_output_value,
    reference_encode,
)
from repro.digital.simulator import CycleSimulator


def drive_vector(value: int, spec: EncoderSpec) -> dict[str, bool]:
    vector: dict[str, bool] = {}
    for i, bit in enumerate(coarse_thermometer(value, spec)):
        vector[f"c{i}"] = bit
    for i, bit in enumerate(cyclic_fine_thermometer(value, spec)):
        vector[f"f{i}"] = bit
    return vector


@pytest.mark.parametrize("spec", [
    EncoderSpec(),
    EncoderSpec(sync_correction=True),
    EncoderSpec(fine_bubble_correction=True),
], ids=["default", "sync", "fine-majority"])
def test_netlist_exhaustive_equivalence(spec):
    netlist = build_fai_encoder(spec)
    simulator = CycleSimulator(netlist)
    latency = simulator.latency()
    for value in range(256):
        vector = drive_vector(value, spec)
        simulator.reset()
        out = None
        for _cycle in range(latency + 1):
            out = simulator.step(vector)
        got = encoder_output_value(netlist, out)
        expected = reference_encode(
            coarse_thermometer(value, spec),
            cyclic_fine_thermometer(value, spec), spec)
        assert got == expected
        if spec.fine_bubble_correction:
            # The cyclic majority cannot distinguish the legitimate
            # single-bit codes at fold boundaries from bubbles: codes
            # = 1 (mod 32) decode one LSB low (documented trade-off).
            assert abs(got - value) <= 1
        else:
            assert got == value


def test_pipeline_throughput_one_code_per_cycle():
    """After the fill latency, a new code emerges every cycle."""
    spec = EncoderSpec()
    netlist = build_fai_encoder(spec)
    simulator = CycleSimulator(netlist)
    latency = simulator.latency()
    stimulus = [drive_vector(v, spec) for v in range(40)]
    stimulus += [stimulus[-1]] * latency
    outputs = [encoder_output_value(netlist, values)
               for values in simulator.run(stimulus)]
    # The value driven on cycle k emerges on cycle k + latency, i.e. at
    # list index k + latency - 1.
    assert outputs[latency - 1:latency - 1 + 40] == list(range(40))


def test_sync_variant_costs_more_gates():
    plain = build_fai_encoder(EncoderSpec())
    synced = build_fai_encoder(EncoderSpec(sync_correction=True))
    assert synced.tail_count() > plain.tail_count()
