"""Shared fixtures.

Expensive objects (ADC chips, encoder netlists) are session-scoped:
they are immutable by convention (methods return tuned *copies*), so
sharing them across tests is safe and keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro.adc import FaiAdc
from repro.digital.encoder import EncoderSpec, build_fai_encoder
from repro.stscl import StsclGateDesign


@pytest.fixture(scope="session")
def default_design() -> StsclGateDesign:
    """The repo-standard STSCL gate at 1 nA."""
    return StsclGateDesign.default(i_ss=1e-9)


@pytest.fixture(scope="session")
def ideal_adc() -> FaiAdc:
    """Error-free converter."""
    return FaiAdc(ideal=True, seed=0)


@pytest.fixture(scope="session")
def chip_adc() -> FaiAdc:
    """One mismatched chip (seed 1); the same chip in every test."""
    return FaiAdc(ideal=False, seed=1)


@pytest.fixture(scope="session")
def encoder_netlist():
    """The standard pipelined encoder netlist."""
    return build_fai_encoder(EncoderSpec())
