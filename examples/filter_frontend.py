"""A complete analog front end: anti-aliasing filter + ADC, one knob.

The paper's Sec. II-B argument made concrete: because the gm-C filter
(refs [22][23]) and the converter scale from the same current, changing
the sampling rate automatically drags the anti-aliasing corner along --
no second control loop, no re-design.

The demo digitises a two-tone signal (wanted tone + an alias-band
interferer) at two sampling rates and shows the alias staying
suppressed at both, with power scaling linearly.

Run:  python examples/filter_frontend.py
"""

import numpy as np

from repro.adc import FaiAdc
from repro.adc.metrics import sine_test
from repro.analog.filters import GmCBiquad
from repro.pmu import PowerManagementUnit
from repro.units import format_quantity as fmt

#: Filter corner placed at 40 % of Nyquist at every rate.
CORNER_FRACTION = 0.4 * 0.5


def run_at(pmu: PowerManagementUnit, base_filter: GmCBiquad,
           f_s: float) -> None:
    adc = pmu.tuned_adc(f_s)
    cfg = adc.config

    # One knob: the filter bias comes from the same scaling law.
    f_corner = CORNER_FRACTION * f_s
    i_filter = base_filter.i_bias * (
        f_corner / base_filter.corner_frequency())
    flt = base_filter.with_bias(i_filter)

    n = 2048
    wanted_cycles = 67
    f_in = f_s * wanted_cycles / n
    f_alias = 0.9 * f_s  # folds to 0.1 f_s after sampling
    t = np.arange(n) / f_s
    mid = 0.5 * (cfg.v_low + cfg.v_high)
    amp = 0.30 * cfg.full_scale

    wanted = amp * np.sin(2.0 * np.pi * f_in * t)
    alias = amp * np.sin(2.0 * np.pi * f_alias * t)

    gain_wanted = abs(flt.transfer(np.array([f_in]))[0])
    gain_alias = abs(flt.transfer(np.array([f_alias]))[0])
    filtered = mid + gain_wanted * wanted + gain_alias * alias

    codes = adc.convert_batch(filtered, noisy=True)
    report = sine_test(codes, cfg.n_bits)

    point = pmu.operating_point(f_s)
    total_power = point.total_power + flt.power(point.vdd)
    print(f"f_s = {fmt(f_s, 'S/s'):>9} | corner {fmt(f_corner, 'Hz'):>9}"
          f" | alias gain {20*np.log10(gain_alias):6.1f} dB"
          f" | SNDR {report.sndr_db:5.1f} dB"
          f" | total {fmt(total_power, 'W')}")


def main() -> None:
    adc = FaiAdc(ideal=False, seed=6)
    pmu = PowerManagementUnit(adc)
    base_filter = GmCBiquad(i_bias=1e-9, q=1.0 / np.sqrt(2.0))

    print("anti-aliased acquisition, single-knob scaling "
          f"(filter corner = {CORNER_FRACTION:.2f} f_s)\n")
    for f_s in (2e3, 8e3, 80e3):
        run_at(pmu, base_filter, f_s)

    print("\nwithout the filter, the 0.9 f_s interferer would fold "
          "into band at full strength;\nwith it, the alias stays "
          ">25 dB down at every rate because the corner scales with "
          "f_s.")


if __name__ == "__main__":
    main()
