"""Biomedical acquisition: the paper's motivating application.

An implant-style front end samples an ECG-like signal.  Most of the
time nothing happens, so the node samples at 800 S/s; when the signal
becomes active (QRS complexes) the PMU retunes the whole converter to
8 kS/s -- one knob, power follows linearly (paper Fig. 1 / Sec. III-C).

Run:  python examples/biomedical_ecg_acquisition.py
"""

import math

import numpy as np

from repro.adc import FaiAdc
from repro.pmu import PowerManagementUnit
from repro.units import format_quantity as fmt

LOW_RATE = 800.0
HIGH_RATE = 8e3
WINDOW = 0.25  # seconds per adaptation window


def ecg_like(t: float) -> float:
    """A crude but spectrally reasonable ECG at 78 bpm, centred in the
    converter's 0.2..0.8 V range."""
    beat = math.sin(2.0 * math.pi * 1.3 * t) ** 31       # QRS spikes
    t_wave = 0.25 * math.sin(2.0 * math.pi * 1.3 * t - 1.1) ** 7
    drift = 0.06 * math.sin(2.0 * math.pi * 0.29 * t)
    return 0.5 + 0.22 * beat + 0.05 * t_wave + drift


def acquire(duration: float = 4.0) -> None:
    adc = FaiAdc(ideal=False, seed=3)
    pmu = PowerManagementUnit(adc)
    cfg = adc.config

    print("adaptive ECG acquisition "
          f"({fmt(LOW_RATE, 'S/s')} idle / {fmt(HIGH_RATE, 'S/s')} "
          "active)\n")
    print(f"{'window':>8} {'rate':>10} {'power':>10} {'activity':>9} "
          f"{'samples':>8}")

    t_cursor = 0.0
    rate = LOW_RATE
    total_energy = 0.0
    records: list[np.ndarray] = []
    while t_cursor < duration:
        tuned = pmu.tuned_adc(rate)
        n = int(WINDOW * rate)
        t = t_cursor + np.arange(n) / rate
        codes = tuned.convert_batch(
            np.array([ecg_like(float(x)) for x in t]))
        records.append(codes)

        point = pmu.operating_point(rate)
        total_energy += point.total_power * WINDOW

        # Activity detector: in-window code excursion in LSB.
        activity = float(np.ptp(codes))
        print(f"{t_cursor:7.2f}s {fmt(rate, 'S/s'):>10} "
              f"{fmt(point.total_power, 'W'):>10} {activity:9.0f} "
              f"{n:8d}")

        rate = HIGH_RATE if activity > 40 else LOW_RATE
        t_cursor += WINDOW

    always_high = pmu.operating_point(HIGH_RATE).total_power * duration
    print(f"\nenergy used      : {fmt(total_energy, 'J')}")
    print(f"fixed-rate cost  : {fmt(always_high, 'J')} "
          f"(always {fmt(HIGH_RATE, 'S/s')})")
    print(f"saving           : "
          f"{100.0 * (1.0 - total_energy / always_high):.0f}%")

    # Reconstruct and report fidelity on the active windows.
    best = max(records, key=lambda r: float(np.ptp(r)))
    volts = cfg.v_low + (best.astype(float) + 0.5) * cfg.lsb
    print(f"\npeak-window record: {best.size} samples, "
          f"{fmt(float(volts.min()), 'V')}..{fmt(float(volts.max()), 'V')}")


if __name__ == "__main__":
    acquire()
