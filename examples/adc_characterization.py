"""Full ADC characterisation: the Fig. 11 measurement campaign.

Characterises a population of simulated chips exactly the way the
paper's die was measured -- ramp histogram for INL/DNL, coherent sine
FFT for ENOB -- then reports distribution statistics and parametric
yield.

Run:  python examples/adc_characterization.py
"""

import numpy as np

from repro.adc import FaiAdc, dynamic_test, linearity_test
from repro.analysis import MonteCarlo, estimate_yield

N_CHIPS = 10


def chip_metrics(seed: int) -> dict[str, float]:
    adc = FaiAdc(ideal=False, seed=seed)
    linearity = linearity_test(adc, samples_per_code=16)
    dynamic = dynamic_test(adc, f_sample=80e3, n_samples=2048, cycles=67)
    return {
        "inl_lsb": linearity.inl_max,
        "dnl_lsb": linearity.dnl_max,
        "missing": float(len(linearity.missing_codes)),
        "enob": dynamic.enob,
        "sndr_db": dynamic.sndr_db,
        "sfdr_db": dynamic.sfdr_db,
    }


def main() -> None:
    print(f"characterising {N_CHIPS} chips "
          "(ramp histogram + coherent sine FFT)...\n")
    results = MonteCarlo(chip_metrics, n_runs=N_CHIPS).run()

    print(f"{'metric':>10} {'median':>8} {'mean':>8} {'5%':>8} "
          f"{'95%':>8}   paper")
    paper = {"inl_lsb": "1.0", "dnl_lsb": "0.4", "enob": "6.5",
             "missing": "-", "sndr_db": "~41", "sfdr_db": "-"}
    for name, summary in results.items():
        print(f"{name:>10} {summary.median:8.2f} {summary.mean:8.2f} "
              f"{summary.p05:8.2f} {summary.p95:8.2f}   {paper[name]}")

    report = estimate_yield(results, {
        "inl_lsb": lambda v: v <= 1.5,
        "dnl_lsb": lambda v: v <= 1.0,
        "enob": lambda v: v >= 6.0,
    })
    print(f"\nyield at (INL<=1.5, DNL<=1.0, ENOB>=6.0): "
          f"{100 * report.yield_fraction:.0f}% "
          f"({report.n_pass}/{report.n_total}); per-spec failures: "
          f"{report.failures}")

    # INL profile of the median-ish chip, coarsely plotted in text.
    adc = FaiAdc(ideal=False, seed=1)
    profile = linearity_test(adc, samples_per_code=16).inl
    print("\nINL profile of chip #1 (text plot, 1 char = 8 codes):")
    scale = max(1e-9, float(np.max(np.abs(profile))))
    for row in range(4, -5, -1):
        level = row / 4.0 * scale
        marks = []
        for block in range(0, 256, 8):
            chunk = profile[block:block + 8]
            hit = np.any(np.abs(chunk - level) < scale / 8.0)
            marks.append("*" if hit else " ")
        print(f"{level:+5.2f} |{''.join(marks)}|")
    print("       " + "^0" + " " * 28 + "code" + " " * 26 + "255^")


if __name__ == "__main__":
    main()
