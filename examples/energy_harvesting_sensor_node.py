"""Energy-harvesting sensor node: the paper's supply-insensitivity
argument in action.

A solar-harvesting node's supply wanders between 1.0 V and 1.25 V.  A
subthreshold CMOS design would see its speed move by orders of
magnitude (delay ~ exp(V_DD/nU_T)); the STSCL system keeps its timing
and its noise margins because neither depends on V_DD -- the node just
keeps sampling.

Run:  python examples/energy_harvesting_sensor_node.py
"""

import numpy as np

from repro.digital.cmos_baseline import CmosGateModel
from repro.pmu.harvesting import solar_profile, supply_excursion_ok
from repro.spice import operating_point
from repro.stscl import StsclGateDesign, minimum_supply
from repro.stscl.netlist_gen import replica_bias_circuit, \
    stscl_inverter_circuit
from repro.units import format_quantity as fmt


def main() -> None:
    design = StsclGateDesign.default(i_ss=1e-9)
    profile = solar_profile(v_min=1.0, v_max=1.25, period=120.0)

    print("solar harvesting profile vs STSCL headroom")
    print(f"  digital V_DD,min : {minimum_supply(design):.3f} V")
    print(f"  profile minimum  : 1.000 V")
    print(f"  headroom check   : "
          f"{'OK' if supply_excursion_ok(design, profile) else 'FAIL'}")

    print("\ntransistor-level behaviour across the supply excursion")
    print(f"{'V_DD':>6} {'swing':>9} {'I_cell':>9} {'V_BP':>8} "
          f"{'CMOS delay':>12}")
    cmos = CmosGateModel()
    t, v = profile.sample(9)
    for vdd in np.unique(np.round(v, 2)):
        vdd = float(vdd)
        circuit, ports = stscl_inverter_circuit(design, vdd)
        op = operating_point(circuit)
        out_p, out_n = ports.outputs["y"]
        swing = op.vdiff(out_p, out_n)
        current = abs(op.current("vvdd"))
        rep, _ = replica_bias_circuit(design, vdd)
        v_bp = operating_point(rep).voltage("vbp")
        print(f"{vdd:6.2f} {fmt(swing, 'V'):>9} {fmt(current, 'A'):>9} "
              f"{v_bp:8.3f} {fmt(cmos.delay(vdd), 's'):>12}")

    print("\nSTSCL swing/current are flat; the CMOS column shows what "
          "the same excursion\nwould do to a conventional subthreshold "
          "gate's delay (~exp(V_DD/nU_T)).")

    # Duty-cycled sampling budget on harvested energy.
    print("\nharvested-energy budget (10 uW average harvest)")
    harvest = 10e-6
    from repro.adc import FaiAdc
    from repro.pmu import PowerManagementUnit
    pmu = PowerManagementUnit(FaiAdc(ideal=False, seed=5))
    for f_s in (800.0, 8e3, 80e3):
        point = pmu.operating_point(f_s)
        duty = min(1.0, harvest / point.total_power)
        print(f"  {fmt(f_s, 'S/s'):>9}: P = {fmt(point.total_power, 'W'):>9}"
              f" -> sustainable duty cycle {100 * duty:5.1f}%")


if __name__ == "__main__":
    main()
