"""Designing a custom STSCL digital block end to end.

The flow a user of the platform would follow for their own logic:

1. capture the block as a gate netlist (here: the ref-[13] 32-bit
   adder plus the ADC encoder);
2. pipeline it automatically (Sec. III-B);
3. size the tail current with the optimizer for the target rate;
4. verify function (cycle simulation) and timing (STA);
5. spot-check one cell at transistor level with the MNA engine.

Run:  python examples/stscl_logic_design.py
"""

from repro.digital.encoder import EncoderSpec, build_fai_encoder
from repro.digital.sta import analyze_timing
from repro.platform_msys import optimize_gate_design
from repro.spice import operating_point
from repro.stscl import PipelinedAdder, StsclGateDesign, minimum_supply
from repro.stscl.netlist_gen import stscl_majority_circuit
from repro.units import format_quantity as fmt

TARGET_RATE = 50e3  # adds (or conversions) per second


def main() -> None:
    print("== 1. capture & pipeline ==")
    adder = PipelinedAdder(width=32, granularity=1)
    netlist = adder.build()
    encoder = build_fai_encoder(EncoderSpec())
    print(f"adder   : {netlist.tail_count()} tails, "
          f"depth {netlist.logic_depth()} (fully pipelined)")
    print(f"encoder : {encoder.tail_count()} tails "
          "(paper reports 196 for its encoder)")

    print("\n== 2. size the bias for the target rate ==")
    point = optimize_gate_design(f_op=TARGET_RATE, logic_depth=1,
                                 min_noise_margin=0.05)
    design = point.design
    print(f"chosen swing      : {fmt(design.v_sw, 'V')}")
    print(f"tail current      : {fmt(design.i_ss, 'A')}")
    print(f"supply            : {point.vdd:.3f} V "
          f"(V_DD,min {point.vdd_min:.3f} V)")
    print(f"per-gate power    : {fmt(point.power_per_gate, 'W')}")
    print(f"noise margin      : {fmt(point.noise_margin, 'V')}")

    print("\n== 3. timing closure ==")
    timing = analyze_timing(netlist, design)
    if timing.f_max < TARGET_RATE:
        # The critical cells are stacked (MAJ3/XOR3, delay factor 1.3):
        # close timing by scaling the one knob the platform gives us.
        design = design.with_current(
            design.i_ss * TARGET_RATE / timing.f_max)
        timing = analyze_timing(netlist, design)
        print(f"(stacked-cell penalty closed by retuning I_SS to "
              f"{fmt(design.i_ss, 'A')})")
    print(f"critical delay    : {fmt(timing.critical_delay, 's')} "
          f"(depth {timing.weighted_depth:.1f} cells)")
    print(f"f_max             : {fmt(timing.f_max, 'Hz')} "
          f"(target {fmt(TARGET_RATE, 'Hz')})")
    print(f"block power       : "
          f"{fmt(timing.power(design, point.vdd), 'W')}")
    assert timing.f_max >= TARGET_RATE * (1.0 - 1e-9)

    print("\n== 4. functional verification ==")
    for x, y in ((123456789, 987654321), (2**32 - 1, 1), (0, 0)):
        total = adder.simulate_add(netlist, x, y)
        status = "ok" if total == (x + y) & (2**33 - 1) else "FAIL"
        print(f"  {x} + {y} = {total}  [{status}]")

    print("\n== 5. transistor-level spot check (Fig. 8 majority) ==")
    gate = StsclGateDesign.default(design.i_ss)
    vdd = max(point.vdd, 0.45)
    for values in ((True, True, False), (False, True, False)):
        circuit, ports = stscl_majority_circuit(gate, vdd, values)
        op = operating_point(circuit)
        yp, yn = ports.outputs["y"]
        decided = op.vdiff(yp, yn) > 0
        expected = sum(values) >= 2
        print(f"  maj{values} -> {decided} "
              f"[{'ok' if decided == expected else 'FAIL'}], "
              f"diff = {fmt(op.vdiff(yp, yn), 'V')}")

    print(f"\nheadroom reminder: this block keeps working down to "
          f"{minimum_supply(gate):.2f} V.")


if __name__ == "__main__":
    main()
