"""Quickstart: the subthreshold source-coupled platform in five minutes.

Walks the stack bottom-up:

1. one STSCL gate and its delay/power laws (paper Fig. 2, Eq. 1);
2. the 8-bit folding-and-interpolating ADC (Fig. 4);
3. the complete platform with its single power-frequency knob (Fig. 1).

Run:  python examples/quickstart.py
"""

import math

import numpy as np

from repro.platform_msys import MixedSignalPlatform
from repro.stscl import StsclGateDesign, minimum_supply
from repro.units import format_quantity as fmt


def section(title: str) -> None:
    print(f"\n{'=' * 64}\n{title}\n{'=' * 64}")


def demo_gate() -> None:
    section("1. One STSCL gate (paper Fig. 2)")
    gate = StsclGateDesign.default(i_ss=1e-9)
    print(f"tail current      : {fmt(gate.i_ss, 'A')}")
    print(f"load resistance   : {fmt(gate.load_resistance, 'Ohm')} "
          "(bulk-drain-shorted PMOS)")
    print(f"gate delay        : {fmt(gate.delay(), 's')}")
    print(f"power at 1 V      : {fmt(gate.power(1.0), 'W')}")
    print(f"small-signal gain : {gate.small_signal_gain():.2f}")
    print(f"noise margin      : {fmt(gate.noise_margin(), 'V')}")
    print(f"minimum supply    : {minimum_supply(gate):.3f} V")

    print("\nretune by changing ONE current (nothing else):")
    for i_ss in (10e-12, 1e-9, 100e-9):
        tuned = gate.with_current(i_ss)
        print(f"  I_SS = {fmt(i_ss, 'A'):>8}:  f_max = "
              f"{fmt(tuned.max_frequency(1), 'Hz'):>10}, "
              f"P = {fmt(tuned.power(1.0), 'W'):>8}, "
              f"noise margin unchanged = "
              f"{fmt(tuned.noise_margin(), 'V')}")


def demo_platform() -> None:
    section("2. The mixed-signal platform (paper Fig. 1)")
    platform = MixedSignalPlatform.build(seed=7)

    for f_s in (800.0, 8e3, 80e3):
        report = platform.set_sample_rate(f_s)
        print(f"\n--- f_s = {fmt(f_s, 'S/s')} ---")
        print(report.describe())

    section("3. Digitise a signal at 8 kS/s")
    platform.set_sample_rate(8e3)
    codes = platform.convert(
        lambda t: 0.5 + 0.25 * math.sin(2.0 * math.pi * 500.0 * t),
        n_samples=32)
    print("codes:", np.array2string(codes, max_line_width=70))

    metrics = platform.characterize(samples_per_code=8)
    print(f"\nINL {metrics['inl_max']:.2f} LSB   "
          f"DNL {metrics['dnl_max']:.2f} LSB   "
          f"ENOB {metrics['enob']:.2f}   "
          f"(paper: 1.0 / 0.4 / 6.5)")


if __name__ == "__main__":
    demo_gate()
    demo_platform()
