"""E2 / Fig. 9b: minimum supply voltage of the digital part vs tail
current.

Paper: below 10 nA the supply can be reduced below 0.5 V; below 1 nA it
reaches ~0.35 V while the 200 mV signal swing is maintained -- and the
choice of supply has no impact on speed or noise margins.
"""

import numpy as np
import pytest

from _util import fmt, print_table
from repro.spice import operating_point
from repro.stscl import StsclGateDesign, minimum_supply
from repro.stscl.netlist_gen import stscl_inverter_circuit
from repro.stscl.supply import minimum_supply_sweep
from repro.units import decades


@pytest.fixture(scope="module")
def curve():
    design = StsclGateDesign.default(1e-9)
    currents = decades(1e-12, 1e-7, points_per_decade=2)
    values = minimum_supply_sweep(design, currents)
    return np.asarray(currents), values


def test_bench_fig9b_vddmin_vs_tail_current(benchmark, curve):
    currents, vdd_min = curve
    design = StsclGateDesign.default(1e-9)
    benchmark(minimum_supply, design)

    rows = [[fmt(i, "A"), f"{v:.3f}V"] for i, v in zip(currents, vdd_min)]
    print_table("Fig. 9b -- minimum V_DD vs I_SS/gate",
                ["I_SS", "V_DD,min"], rows)

    # Shape: monotone non-decreasing in current.
    assert np.all(np.diff(vdd_min) >= -1e-9)

    # Paper anchors.
    v_at = lambda i: np.interp(np.log10(i), np.log10(currents), vdd_min)
    assert v_at(1e-9) == pytest.approx(0.38, abs=0.05)   # paper ~0.35 V
    assert v_at(10e-9) < 0.52                            # paper <0.5 V
    # Deep-subthreshold floor: swing + tail saturation (~0.3 V).
    assert v_at(1e-12) == pytest.approx(0.30, abs=0.03)

    benchmark.extra_info["vddmin_at_1nA"] = float(v_at(1e-9))
    benchmark.extra_info["vddmin_at_10nA"] = float(v_at(10e-9))


def test_bench_fig9b_swing_maintained_at_minimum(benchmark):
    """At the model's V_DD,min the transistor-level gate still develops
    essentially the full 200 mV swing ('maintaining a signal swing of
    200 mV')."""
    design = StsclGateDesign.default(1e-9)
    vdd = minimum_supply(design, margin=0.02)

    def measure() -> float:
        circuit, ports = stscl_inverter_circuit(design, vdd)
        op = operating_point(circuit)
        out_p, out_n = ports.outputs["y"]
        return op.vdiff(out_p, out_n)

    swing = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nswing at V_DD = {vdd:.3f}V: {fmt(swing, 'V')} "
          f"(target {design.v_sw} V)")
    assert swing == pytest.approx(design.v_sw, rel=0.15)
    benchmark.extra_info["swing_at_vddmin"] = float(swing)
