"""E7 / Sec. III-C: the chip works unchanged from V_DD = 1.0 V to
1.25 V ("the sensitivity of the circuit to supply voltage variations is
very low"), which is what makes it suitable for energy harvesting.
"""

import numpy as np
import pytest

from _util import fmt, print_table
from repro.pmu.harvesting import solar_profile, supply_excursion_ok
from repro.spice import operating_point
from repro.stscl import StsclGateDesign, minimum_supply
from repro.stscl.netlist_gen import replica_bias_circuit, \
    stscl_inverter_circuit


@pytest.fixture(scope="module")
def sweep_rows():
    design = StsclGateDesign.default(1e-9)
    rows = []
    for vdd in (1.0, 1.1, 1.25):
        circuit, ports = stscl_inverter_circuit(design, vdd)
        op = operating_point(circuit)
        out_p, out_n = ports.outputs["y"]
        swing = op.vdiff(out_p, out_n)
        supply_current = abs(op.current("vvdd"))
        rep_circuit, _ = replica_bias_circuit(design, vdd)
        v_bp = operating_point(rep_circuit).voltage("vbp")
        rows.append((vdd, swing, supply_current, v_bp))
    return rows


def test_bench_supply_insensitivity(benchmark, sweep_rows):
    design = StsclGateDesign.default(1e-9)
    benchmark(minimum_supply, design)

    rows = [[f"{vdd:.2f}V", fmt(swing, "V"), fmt(current, "A"),
             f"{v_bp:.3f}V"]
            for vdd, swing, current, v_bp in sweep_rows]
    print_table("Sec. III-C -- V_DD from 1.0 V to 1.25 V",
                ["V_DD", "swing", "I_supply", "V_BP (replica)"], rows)

    swings = np.array([r[1] for r in sweep_rows])
    currents = np.array([r[2] for r in sweep_rows])
    v_bps = np.array([r[3] for r in sweep_rows])
    # Swing pinned by the replica across the whole excursion.
    assert np.ptp(swings) / swings.mean() < 0.05
    # The cell current is the tail current at every supply.
    assert np.allclose(currents, design.i_ss, rtol=0.05)
    # The replica absorbs the supply change nearly 1:1.
    assert v_bps[-1] - v_bps[0] == pytest.approx(0.25, abs=0.05)

    benchmark.extra_info["swing_variation"] = float(
        np.ptp(swings) / swings.mean())


def test_bench_harvesting_headroom(benchmark):
    """Energy-harvesting rails (1.0..1.25 V wander) vs the digital
    section's supply floor: huge margin at nA bias."""
    design = StsclGateDesign.default(1e-9)
    profile = solar_profile(1.0, 1.25)
    ok = benchmark.pedantic(supply_excursion_ok, args=(design, profile),
                            rounds=1, iterations=1)
    floor = minimum_supply(design)
    print(f"\nV_DD,min = {floor:.3f}V vs harvesting minimum 1.0V "
          f"-> margin {1.0 - floor:.2f}V")
    assert ok
    assert 1.0 - floor > 0.5
    benchmark.extra_info["headroom_margin"] = float(1.0 - floor)
