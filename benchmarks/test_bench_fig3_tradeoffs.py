"""E6 / Fig. 3: the design/process/performance decoupling of STSCL vs
the tight coupling of CMOS.

Fig. 3 is conceptual; we make it quantitative: delay sensitivity to
supply and to process corner, for the STSCL gate (transistor level)
and the subthreshold CMOS baseline.
"""

import numpy as np
import pytest

from _util import fmt, print_table
from repro.devices.parameters import GENERIC_180NM
from repro.devices.process import ProcessCorner, corner_technology
from repro.digital.cmos_baseline import CmosGateModel
from repro.spice import TransientOptions, transient
from repro.spice.waveforms import step_wave
from repro.stscl import StsclGateDesign, supply_sensitivity
from repro.stscl.netlist_gen import stscl_buffer_chain_circuit


def stscl_spice_delay(design: StsclGateDesign, vdd: float) -> float:
    t_d = design.delay()
    circuit, _ = stscl_buffer_chain_circuit(
        design, vdd, 3,
        in_p=step_wave(vdd - design.v_sw, vdd, 5 * t_d, t_d / 10),
        in_n=step_wave(vdd, vdd - design.v_sw, 5 * t_d, t_d / 10))
    result = transient(circuit, 25 * t_d,
                       TransientOptions(dt_max=t_d / 25))
    mid = vdd - design.v_sw / 2
    return float(result.crossing_times("s3_outp", mid)[0]
                 - result.crossing_times("s2_outp", mid)[0])


@pytest.fixture(scope="module")
def supply_rows():
    design = StsclGateDesign.default(1e-9)
    cmos = CmosGateModel()
    rows = []
    for vdd in (0.45, 0.5, 0.55):
        rows.append((vdd, stscl_spice_delay(design, max(vdd, 0.45)),
                     cmos.delay(vdd)))
    return rows


def test_bench_fig3_supply_decoupling(benchmark, supply_rows):
    benchmark(supply_sensitivity, 0.5)

    rows = [[f"{vdd:.2f}V", fmt(d_scl, "s"), fmt(d_cmos, "s")]
            for vdd, d_scl, d_cmos in supply_rows]
    print_table("Fig. 3 -- delay vs V_DD (+/-10 %): STSCL vs "
                "subthreshold CMOS", ["V_DD", "t_d STSCL", "t_d CMOS"],
                rows)

    d_scl = [r[1] for r in supply_rows]
    d_cmos = [r[2] for r in supply_rows]
    scl_spread = max(d_scl) / min(d_scl)
    cmos_spread = max(d_cmos) / min(d_cmos)
    print(f"delay spread over +/-10% V_DD: STSCL x{scl_spread:.2f},"
          f" CMOS x{cmos_spread:.1f}")
    assert scl_spread < 1.15          # essentially flat
    assert cmos_spread > 5.0          # exponential
    # Analytic sensitivities agree in sign and magnitude class.
    comparison = supply_sensitivity(0.5)
    assert comparison.stscl == 0.0
    assert comparison.cmos_subthreshold < -10.0

    benchmark.extra_info["stscl_spread"] = float(scl_spread)
    benchmark.extra_info["cmos_spread"] = float(cmos_spread)


def test_bench_fig3_process_decoupling(benchmark):
    """Across FF/TT/SS corners: the STSCL delay (set by I_SS, C_L and
    V_SW only) barely moves, while the CMOS on-current moves by the
    corner VT shift's exponential."""
    rows = []
    spreads = {}
    for corner in (ProcessCorner.FF, ProcessCorner.TT, ProcessCorner.SS):
        tech = corner_technology(GENERIC_180NM, corner)
        scl = StsclGateDesign(i_ss=1e-9, tech=tech)
        cmos = CmosGateModel(tech=tech)
        rows.append([corner.name, fmt(scl.delay(), "s"),
                     f"{scl.noise_margin():.3f}V",
                     fmt(cmos.delay(0.5), "s")])
        spreads.setdefault("scl", []).append(scl.delay())
        spreads.setdefault("nm", []).append(scl.noise_margin())
        spreads.setdefault("cmos", []).append(cmos.delay(0.5))

    print_table("Fig. 3 -- corners: STSCL vs subthreshold CMOS",
                ["corner", "t_d STSCL", "NM STSCL", "t_d CMOS"], rows)

    benchmark(StsclGateDesign.default(1e-9).delay)

    assert max(spreads["scl"]) / min(spreads["scl"]) < 1.01
    assert max(spreads["nm"]) / min(spreads["nm"]) < 1.05
    assert max(spreads["cmos"]) / min(spreads["cmos"]) > 10.0
    benchmark.extra_info["cmos_corner_spread"] = float(
        max(spreads["cmos"]) / min(spreads["cmos"]))


def test_bench_fig3_temperature_decoupling(benchmark):
    """The temperature axis of the same argument: STSCL delay is
    temperature-free and its noise margin degrades gently (1/T gain),
    while subthreshold CMOS delay collapses by >20x from -20 to
    85 degC."""
    from repro.stscl import (delay_spread, noise_margin_slope,
                             thermal_comparison)

    design = StsclGateDesign.default(1e-9)
    rows_data = benchmark(thermal_comparison, design,
                          (-20.0, 27.0, 85.0))
    rows = [[f"{r.temp_c:.0f}C", fmt(r.stscl_delay, "s"),
             f"{1e3 * r.stscl_noise_margin:.1f}mV",
             fmt(r.cmos_delay, "s")] for r in rows_data]
    print_table("Fig. 3 -- temperature: STSCL vs subthreshold CMOS "
                "(CMOS at 0.4 V)",
                ["T_j", "t_d STSCL", "NM STSCL", "t_d CMOS"], rows)

    assert delay_spread(rows_data, "stscl_delay") == pytest.approx(1.0)
    assert delay_spread(rows_data, "cmos_delay") > 20.0
    slope = noise_margin_slope(rows_data)
    print(f"STSCL noise-margin tempco: {1e6 * slope:.0f} uV/K "
          "(budgetable, linear)")
    assert -1e-3 < slope < 0.0
    benchmark.extra_info["cmos_thermal_spread"] = delay_spread(
        rows_data, "cmos_delay")
