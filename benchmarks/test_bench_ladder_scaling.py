"""E10 / Fig. 7: the current-programmable reference ladder.

Paper: conventional resistors cannot take the ladder below ~1 uW; the
subthreshold-PMOS ladder's resistivity is programmed by I_RES (so it
scales with the sampling rate), and sharing bias cells (Fig. 7d) cuts
the control overhead.
"""

import numpy as np
import pytest

from _util import fmt, print_table
from repro.analog.ladder import LadderBiasScheme, ResistorLadder
from repro.units import decades

N_TAPS = 7           # coarse flash, 8 segments
C_TAP = 100e-15
VDD = 1.0


def build(i_res: float, share: int) -> ResistorLadder:
    return ResistorLadder(n_taps=N_TAPS, v_low=0.2, v_high=0.8,
                          i_res=i_res,
                          bias_scheme=LadderBiasScheme(share=share))


def test_bench_ladder_power_scaling(benchmark):
    benchmark(build, 1e-9, 4)

    rows = []
    powers, settlings = [], []
    for i_res in decades(100e-12, 100e-9, points_per_decade=1):
        ladder = build(i_res, share=4)
        power = ladder.power(VDD)
        settle = ladder.settling_time(C_TAP)
        usable_fs = 1.0 / (2.0 * 7.0 * settle)  # 7 tau to 8-bit settle
        powers.append(power)
        settlings.append(settle)
        rows.append([fmt(i_res, "A"), fmt(ladder.total_resistance(),
                                          "Ohm"),
                     fmt(power, "W"), fmt(usable_fs, "S/s")])
    print_table("Fig. 7 -- ladder vs control current I_RES",
                ["I_RES", "R_total", "P_ladder", "usable f_s"], rows)

    # Power scales up, settling scales down, both linearly with I_RES.
    powers, settlings = np.asarray(powers), np.asarray(settlings)
    assert powers[-1] / powers[0] == pytest.approx(1000.0, rel=0.05)
    assert settlings[0] / settlings[-1] == pytest.approx(1000.0,
                                                         rel=0.05)
    # Sub-1 uW operation (impossible with conventional resistors).
    assert powers[0] < 1e-6
    benchmark.extra_info["min_ladder_power_nW"] = float(powers[0] * 1e9)


def test_bench_ladder_shared_bias_ablation(benchmark):
    """Fig. 7c vs 7d: per-resistor bias cells vs shared cells."""
    i_res = 10e-9
    rows = []
    control = {}
    for share in (1, 2, 4, 8):
        ladder = build(i_res, share)
        cells = ladder.bias_scheme.control_current(
            ladder.n_segments, i_res)
        control[share] = cells
        rows.append([str(share), fmt(cells, "A"),
                     fmt(ladder.power(VDD), "W")])
    print_table("Fig. 7d -- bias sharing (8 ladder segments, "
                "I_RES = 10 nA)",
                ["share", "control current", "P_ladder"], rows)

    benchmark(build(i_res, 4).power, VDD)

    assert control[4] == pytest.approx(control[1] / 4.0)
    assert control[8] == pytest.approx(control[1] / 8.0)
    # Tap accuracy does not depend on the sharing (same elements).
    assert np.allclose(build(i_res, 1).tap_voltages(),
                       build(i_res, 8).tap_voltages())
    benchmark.extra_info["control_saving_x4"] = float(
        control[1] / control[4])
