"""E3 / Sec. III-C in-text table: power scales linearly with sampling
rate under the single bias knob.

Paper: f_s adjustable 800 S/s -> 80 kS/s with power 44 nW -> 4 uW
(digital part 2 nW -> 200 nW), ENOB 6.5; power dissipation of the
digital part negligible against the total.
"""

import numpy as np
import pytest

from _util import fmt, print_table
from repro.adc import FaiAdc, dynamic_test
from repro.pmu import PowerManagementUnit


@pytest.fixture(scope="module")
def pmu():
    return PowerManagementUnit(FaiAdc(ideal=False, seed=1))


@pytest.fixture(scope="module")
def scaling_rows(pmu):
    rates = [800.0, 2e3, 8e3, 20e3, 80e3]
    return [pmu.operating_point(f) for f in rates]


def test_bench_power_vs_sample_rate(benchmark, pmu, scaling_rows):
    benchmark(pmu.operating_point, 8e3)

    rows = []
    for op in scaling_rows:
        rows.append([
            fmt(op.f_sample, "S/s"), fmt(op.total_power, "W"),
            fmt(op.digital_power, "W"),
            f"{100 * op.digital_fraction:.1f}%",
            fmt(op.energy_per_sample, "J")])
    print_table(
        "Sec. III-C -- power vs sampling rate "
        "(paper: 44nW@800S/s -> 4uW@80kS/s, digital 2nW -> 200nW)",
        ["f_s", "P_total", "P_digital", "dig. share", "E/sample"],
        rows)

    low, high = scaling_rows[0], scaling_rows[-1]
    # Paper anchors (rough magnitude; exact silicon overheads differ).
    assert low.total_power == pytest.approx(44e-9, rel=0.35)
    assert high.total_power == pytest.approx(4e-6, rel=0.35)
    assert high.digital_power == pytest.approx(200e-9, rel=0.5)
    # Exact linearity of the scaling law.
    assert (high.total_power / low.total_power
            == pytest.approx(100.0, rel=0.02))
    # "power dissipation of digital part is negligible"
    assert all(op.digital_fraction < 0.10 for op in scaling_rows)

    benchmark.extra_info["p_800Ss_nW"] = low.total_power * 1e9
    benchmark.extra_info["p_80kSs_uW"] = high.total_power * 1e6


def test_bench_enob_across_rates(benchmark, pmu):
    """ENOB 6.5 must hold across the whole scaled range, not just at
    one point -- the essence of 'power-scalable performance'."""
    def measure(f_s: float) -> float:
        tuned = pmu.tuned_adc(f_s)
        return dynamic_test(tuned, f_sample=f_s, n_samples=2048,
                            cycles=67).enob

    enob_80k = benchmark.pedantic(measure, args=(80e3,), rounds=1,
                                  iterations=1)
    enob_800 = measure(800.0)
    print(f"\nENOB @80kS/s: {enob_80k:.2f}   ENOB @800S/s: {enob_800:.2f}"
          f"   (paper: 6.5)")
    assert enob_80k == pytest.approx(6.5, abs=0.4)
    assert enob_800 == pytest.approx(6.5, abs=0.4)
    benchmark.extra_info["enob_80k"] = float(enob_80k)
    benchmark.extra_info["enob_800"] = float(enob_800)
