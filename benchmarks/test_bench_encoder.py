"""E12 / Fig. 8 and Sec. III-B: the STSCL encoder itself.

Paper: "The encoder circuit consisting of 196 STSCL gates", built from
majority detector cells (Fig. 8), pipelined to a logic depth of
practically one gate.  We audit the synthesised gate count, prove the
function exhaustively, and run the sync-correction ablation (gates vs
boundary-error tolerance).
"""

import numpy as np
import pytest

from _util import print_table
from repro.adc import FaiAdc
from repro.digital.encoder import (EncoderSpec, build_fai_encoder,
                                   coarse_thermometer,
                                   cyclic_fine_thermometer, encode_batch,
                                   reference_encode)
from repro.digital.simulator import CycleSimulator
from repro.digital.sta import analyze_timing
from repro.stscl import StsclGateDesign


@pytest.fixture(scope="module")
def variants():
    return {
        "plain (paper-style)": build_fai_encoder(EncoderSpec()),
        "plain + fine majority": build_fai_encoder(
            EncoderSpec(fine_bubble_correction=True)),
        "ref-[14] sync snap": build_fai_encoder(
            EncoderSpec(sync_correction=True)),
    }


def test_bench_encoder_gate_audit(benchmark, variants):
    design = StsclGateDesign.default(1e-9)
    benchmark(build_fai_encoder, EncoderSpec())

    rows = []
    for name, netlist in variants.items():
        timing = analyze_timing(netlist, design)
        sim = CycleSimulator(netlist)
        rows.append([name, str(netlist.tail_count()),
                     f"{timing.weighted_depth:.1f}",
                     str(sim.latency()),
                     f"{timing.f_max / 1e3:.0f}kHz"])
    print_table("Sec. III-B -- encoder variants @ I_SS = 1 nA "
                "(paper: 196 gates, depth ~1)",
                ["variant", "tails", "depth", "latency", "f_max"],
                rows)

    plain = variants["plain (paper-style)"]
    majority = variants["plain + fine majority"]
    # Same ballpark as the paper's 196 gates.
    assert 120 <= plain.tail_count() <= 220
    assert 150 <= majority.tail_count() <= 230
    # Depth ~one (stacked) cell.
    timing = analyze_timing(plain, design)
    assert timing.weighted_depth <= 1.5
    benchmark.extra_info["tails_plain"] = plain.tail_count()
    benchmark.extra_info["tails_majority"] = majority.tail_count()


def test_bench_encoder_exhaustive_function(benchmark):
    """All 256 codes through the vectorised encoder (the conversion
    hot path) -- correctness plus throughput measurement."""
    spec = EncoderSpec()
    values = np.arange(256)
    coarse = np.array([coarse_thermometer(v, spec) for v in values])
    fine = np.array([cyclic_fine_thermometer(v, spec) for v in values])

    result = benchmark(encode_batch, coarse, fine, spec)
    assert np.array_equal(result, values)


def test_bench_sync_correction_ablation(benchmark, variants):
    """Gates-vs-robustness: the ref-[14] snap decode tolerates ~6x the
    coarse boundary error of the plain decode, for ~2.7x the gates."""
    adc = FaiAdc(ideal=True, seed=0)
    cfg = adc.config
    ramp = np.linspace(cfg.v_low + cfg.lsb, cfg.v_high - cfg.lsb, 2048)
    fine = adc.fine.fine_code(ramp)
    expected = adc.convert_batch(ramp)

    def worst_error(offset_lsb: float, spec: EncoderSpec) -> int:
        taps = adc.coarse.ladder.tap_voltages() + offset_lsb * cfg.lsb
        coarse = ramp[:, None] > taps[None, :]
        return int(np.max(np.abs(
            encode_batch(coarse, fine, spec) - expected)))

    plain_spec = EncoderSpec()
    sync_spec = EncoderSpec(sync_correction=True)
    benchmark.pedantic(worst_error, args=(1.0, plain_spec), rounds=1,
                       iterations=1)

    rows = []
    for offset in (0.5, 1.5, 3.0, 6.0, 12.0):
        rows.append([f"{offset:.1f} LSB",
                     str(worst_error(offset, plain_spec)),
                     str(worst_error(offset, sync_spec))])
    print_table("ablation -- worst code error vs injected coarse "
                "offset", ["coarse offset", "plain decode",
                           "sync decode"], rows)

    assert worst_error(6.0, plain_spec) > 8
    assert worst_error(6.0, sync_spec) <= 1
    assert worst_error(12.0, sync_spec) <= 1
    gates_plain = variants["plain (paper-style)"].tail_count()
    gates_sync = variants["ref-[14] sync snap"].tail_count()
    print(f"gate cost: {gates_plain} -> {gates_sync} tails")
    benchmark.extra_info["gates_ratio"] = gates_sync / gates_plain
