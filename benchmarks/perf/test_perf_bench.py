"""Smoke test of the perf-bench harness (not part of the tier-1 suite;
run explicitly or via the CI perf-smoke job).

    PYTHONPATH=src python -m pytest benchmarks/perf -q
"""

import json
import subprocess
import sys

import pytest

from repro.bench import (ALLOW_REGRESSION_ENV, BENCH_SCHEMA, BenchResult,
                         compare_results, load_baseline, run_benchmarks,
                         write_report)
from repro.errors import AnalysisError

ALL_CASES = {"op_chain", "dc_sweep", "transient", "transient_lte",
             "ac_sweep", "montecarlo", "batched_montecarlo",
             "batched_sweep", "sparse_adder_chain",
             "sparse_batched_montecarlo", "shm_montecarlo",
             "scope_capture", "batched_transient_montecarlo",
             "fai_adc_yield_smoke"}


def test_quick_benchmarks_produce_all_cases(tmp_path):
    results = run_benchmarks(quick=True, repeats=1)
    names = {r.name for r in results}
    assert names == ALL_CASES
    for result in results:
        assert result.wall_s > 0.0
        assert result.meta  # every case reports its workload detail

    path = write_report(results, tmp_path / "BENCH_perf.json", quick=True)
    report = json.loads(path.read_text())
    assert report["schema"] == BENCH_SCHEMA
    assert report["quick"] is True
    assert set(report["results"]) == names
    assert report["results"]["dc_sweep"]["meta"]["compile_count"] == 1
    # Every case's traced warmup attaches its counter totals, and the
    # cache-traffic counter reconciles with the compile count.
    for name in names:
        counters = report["results"][name]["trace_counters"]
        assert counters["jacobian_factorizations"] > 0
        assert counters["device_bank_evals"] > 0
    assert (report["results"]["dc_sweep"]["trace_counters"]
            ["compile_cache_misses"] == 1)
    # The batched cases record their lane counts and touched the
    # stacked path (batch_lanes counter from repro.spice.batch).  The
    # Monte-Carlo backend warm-starts from a one-lane pilot solve, so
    # its campaign counts one extra lane.
    for name in ("batched_montecarlo", "batched_sweep"):
        entry = report["results"][name]
        assert entry["meta"]["batch"] > 1
        assert entry["trace_counters"]["batch_lanes"] in (
            entry["meta"]["batch"], entry["meta"]["batch"] + 1)
    # The batched Monte Carlo times the same population as the serial
    # case: identical seeds, identical draws, identical mean.
    by_name = {r.name: r for r in results}
    serial_mc = by_name["montecarlo"]
    batched_mc = by_name["batched_montecarlo"]
    assert serial_mc.meta["n_seeds"] <= batched_mc.meta["n_seeds"]
    # Schema v5: every solver case records the backend that ran it and
    # the MNA system size, and the adder chain is big enough that auto
    # picked sparse even in quick mode.  (scope_capture times the
    # capture layer, not a solve, and carries no solver meta.)
    for name in names - {"scope_capture"}:
        meta = report["results"][name]["meta"]
        assert meta["backend"] in ("dense", "sparse")
        assert meta["n_unknowns"] > 0
    # Schema v7: the sparse batched ensemble shares one symbolic
    # factorization across the whole campaign, decodes the exact sum
    # on every seed, and the shared-memory parallel case compiles once
    # for the whole fleet with a >= 10x per-task payload shrink.
    smc = report["results"]["sparse_batched_montecarlo"]["meta"]
    assert smc["backend"] == "sparse"
    assert smc["campaign_counters"]["sparse_symbolic_factorizations"] == 1
    assert smc["sum_mean"] == smc["sum_expected"]
    assert smc["n_failed"] == 0
    shm_entry = report["results"]["shm_montecarlo"]
    assert shm_entry["meta"]["bit_identical_to_serial"] is True
    assert shm_entry["meta"]["payload_ratio"] >= 10.0
    assert shm_entry["trace_counters"]["compile_cache_misses"] == 1
    assert shm_entry["trace_counters"]["shm_plan_misses"] >= 1
    assert shm_entry["trace_counters"]["shm_plan_hits"] >= 1
    # Schema v8: the lockstep transient ensemble integrates every seed
    # on one shared grid (batch_transient_steps in its campaign
    # counters), the serial Monte-Carlo case reuses one compiled chip
    # across the population, and the FAI yield case's batched INL/DNL
    # is bit-identical to the serial loop on the shared fixed grid.
    btm = report["results"]["batched_transient_montecarlo"]["meta"]
    assert btm["n_failed"] == 0
    assert btm["campaign_counters"]["batch_transient_steps"] > 0
    assert (report["results"]["montecarlo"]["trace_counters"]
            ["compile_cache_misses"] == 1)
    fai = report["results"]["fai_adc_yield_smoke"]["meta"]
    assert fai["bit_identical_to_serial"] is True
    assert fai["inl_max_mean"] >= 0.0
    adder = report["results"]["sparse_adder_chain"]["meta"]
    assert adder["backend"] == "sparse"
    assert adder["headline_s"] > 0.0
    for rung in adder["dense_vs_sparse"]:
        assert rung["dense_s"] > 0.0 and rung["sparse_s"] > 0.0
        assert rung["n_unknowns"] < adder["n_unknowns"]
    # Provenance: numbers are only comparable when the numerics stack
    # is known, so the report carries numpy/BLAS/thread pinning.
    runtime = report["runtime"]
    assert runtime["numpy"]
    assert "name" in runtime["blas"]
    assert "OMP_NUM_THREADS" in runtime["thread_env"]


def test_cli_bench_quick_writes_report(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "bench", "--quick",
         "--output", str(out)],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    assert out.exists()
    report = json.loads(out.read_text())
    assert report["schema"] == BENCH_SCHEMA
    assert "dc_sweep" in report["results"]
    assert "batched_montecarlo" in report["results"]


def _result(name, wall_s):
    return BenchResult(name=name, wall_s=wall_s, repeats=1, meta={})


def test_compare_flags_only_regressed_cases():
    baseline = {"a": 0.010, "b": 0.010, "gone": 0.010}
    results = [_result("a", 0.011),    # fine
               _result("b", 0.030),    # 3x: regressed
               _result("new", 0.005)]  # no baseline: reported, not gated
    report = compare_results(results, baseline, max_ratio=2.0)
    assert not report.passed
    assert [c.name for c in report.regressions] == ["b"]
    by_name = {c.name: c for c in report.cases}
    assert by_name["new"].baseline_s is None and not by_name["new"].regressed
    assert by_name["gone"].fresh_s is None and not by_name["gone"].regressed
    assert "REGRESSED" in report.describe()


def test_compare_require_cases_fails_on_missing_baseline_case():
    baseline = {"a": 0.010, "gone": 0.010}
    results = [_result("a", 0.011), _result("new", 0.005)]
    # Default: a baseline-only case is benignly "retired".
    lenient = compare_results(results, baseline, max_ratio=2.0)
    assert lenient.passed and not lenient.missing_cases
    # --require-cases: the same drop fails the gate; new cases still
    # pass (they have no baseline to be missing from).
    strict = compare_results(results, baseline, max_ratio=2.0,
                             require_cases=True)
    assert not strict.passed
    assert [c.name for c in strict.missing_cases] == ["gone"]
    assert "MISSING" in strict.describe()
    assert "gate FAILED" in strict.describe()
    by_name = {c.name: c for c in strict.cases}
    assert not by_name["new"].missing


def test_sparse_batched_mc_full_case_meets_acceptance():
    """Acceptance pin for the sparse batched ensemble: on the
    1164-unknown 32-bit adder the campaign runs >= 3x faster per seed
    than one cold serial sparse solve, shares exactly one symbolic
    factorization, and every seed decodes the exact arithmetic sum."""
    from repro import telemetry
    from repro.bench.perf import _bench_sparse_batched_montecarlo

    with telemetry.tracing("sparse-batched-mc-acceptance"):
        meta = _bench_sparse_batched_montecarlo(quick=False)()
    assert meta["n_unknowns"] >= 1000
    assert meta["backend"] == "sparse"
    assert meta["n_failed"] == 0
    assert meta["sum_mean"] == meta["sum_expected"]
    counters = meta["campaign_counters"]
    assert counters["sparse_symbolic_factorizations"] == 1
    assert counters["lu_reuses"] > 0
    assert meta["per_seed_speedup"] >= 3.0, (
        f"batched {meta['batched_per_seed_s'] * 1e3:.1f} ms/seed vs "
        f"serial {meta['serial_seed_s'] * 1e3:.1f} ms/seed = "
        f"{meta['per_seed_speedup']:.2f}x, expected >= 3x")


def test_batched_transient_mc_full_case_meets_acceptance():
    """Acceptance pin for the lockstep transient ensemble: the D-latch
    Monte-Carlo population integrates >= 3x faster per seed than one
    serial transient of the same spec, with no lane falling off the
    shared grid."""
    from repro import telemetry
    from repro.bench.perf import _bench_batched_transient_montecarlo

    with telemetry.tracing("batched-tran-mc-acceptance"):
        meta = _bench_batched_transient_montecarlo(quick=False)()
    assert meta["n_seeds"] >= 8
    assert meta["n_failed"] == 0
    counters = meta["campaign_counters"]
    assert counters["batch_transient_steps"] > 0
    assert counters["batch_lane_fallbacks"] == 0
    assert meta["per_seed_speedup"] >= 3.0, (
        f"batched {meta['batched_per_seed_s'] * 1e3:.1f} ms/seed vs "
        f"serial {meta['serial_seed_s'] * 1e3:.1f} ms/seed = "
        f"{meta['per_seed_speedup']:.2f}x, expected >= 3x")


def test_fai_adc_yield_full_case_is_bit_identical():
    """Acceptance pin for the yield-surface workload: on the shared
    fixed grid every lane's sampled codes -- and therefore the INL/DNL
    surface -- must match the serial loop bit for bit."""
    from repro.bench.perf import _bench_fai_adc_yield_smoke

    meta = _bench_fai_adc_yield_smoke(quick=False)()
    assert meta["n_seeds"] >= 6
    assert meta["bit_identical_to_serial"] is True
    assert meta["n_grid_steps"] >= 512


def test_compare_wall_floor_exempts_sub_floor_cases():
    """Cases where both sides run under the absolute floor report their
    ratio but never regress; crossing the floor still gates."""
    baseline = {"tiny": 0.0004, "crossed": 0.015, "big": 0.050}
    results = [_result("tiny", 0.0011),    # 2.75x but sub-floor: exempt
               _result("crossed", 0.045),  # 3x and fresh over floor
               _result("big", 0.055)]      # 1.1x: fine
    report = compare_results(results, baseline, max_ratio=2.0,
                             min_wall_s=0.02)
    assert [c.name for c in report.regressions] == ["crossed"]
    by_name = {c.name: c for c in report.cases}
    assert by_name["tiny"].under_floor and not by_name["tiny"].regressed
    assert "under floor" in by_name["tiny"].describe()
    # Floor disabled: the sub-floor blip regresses again.
    strict = compare_results(results, baseline, max_ratio=2.0,
                             min_wall_s=0.0)
    assert {c.name for c in strict.regressions} == {"tiny", "crossed"}
    with pytest.raises(AnalysisError):
        compare_results(results, baseline, min_wall_s=-1.0)


def test_compare_rejects_bad_inputs(tmp_path):
    with pytest.raises(AnalysisError):
        compare_results([_result("a", 0.01)], {"a": 0.01}, max_ratio=1.0)
    bad = tmp_path / "bad.json"
    bad.write_text('{"schema": "something-else/v1", "results": {}}')
    with pytest.raises(AnalysisError):
        load_baseline(bad)
    with pytest.raises(AnalysisError):
        load_baseline(tmp_path / "missing.json")


def test_compare_loads_committed_schema(tmp_path):
    path = tmp_path / "BENCH_perf.json"
    results = [_result("a", 0.010)]
    write_report(results, path, quick=True)
    baseline = load_baseline(path)
    assert baseline == {"a": 0.010}
    assert compare_results([_result("a", 0.012)], baseline).passed


def test_cli_compare_gates_and_escape_hatch(tmp_path, monkeypatch):
    # A baseline claiming every case once ran in 1 ns fails the gate...
    out = tmp_path / "fresh.json"
    baseline = tmp_path / "baseline.json"
    write_report([_result(name, 1e-9) for name in ALL_CASES],
                 baseline, quick=True)
    argv = [sys.executable, "-m", "repro", "bench", "--quick",
            "--output", str(out), "--compare", str(baseline)]
    proc = subprocess.run(argv, capture_output=True, text=True, timeout=600)
    assert proc.returncode == 1, proc.stdout
    assert "gate FAILED" in proc.stdout
    # ...unless the escape hatch is set.
    import os
    env = dict(os.environ)
    env[ALLOW_REGRESSION_ENV] = "1"
    proc = subprocess.run(argv, capture_output=True, text=True,
                          timeout=600, env=env)
    assert proc.returncode == 0, proc.stdout
    assert "regression tolerated" in proc.stdout


def test_stacked_ac_is_at_least_5x_faster_than_loop():
    """Acceptance pin for the stacked-frequency AC fast path: on a
    >= 200-point grid the stacked backend beats the per-frequency loop
    by >= 5x.  The operating point is precomputed and shared so only
    the frequency solve is timed (best-of-5 per backend)."""
    import time

    import numpy as np

    from repro.bench.perf import _VDD, _design
    from repro.spice import operating_point
    from repro.spice.ac import ac_analysis
    from repro.stscl.netlist_gen import stscl_inverter_circuit

    circuit, _ = stscl_inverter_circuit(_design(), _VDD)
    circuit.element("vinp").ac_mag = 1.0
    op = operating_point(circuit)
    freqs = np.logspace(2.0, 9.0, 601)

    def best_of(backend, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            ac_analysis(circuit, freqs, backend=backend, op=op)
            best = min(best, time.perf_counter() - t0)
        return best

    best_of("stacked", repeats=1)  # warm both paths before timing
    best_of("loop", repeats=1)
    stacked = best_of("stacked")
    loop = best_of("loop")
    assert loop / stacked >= 5.0, (
        f"stacked {stacked * 1e3:.2f} ms vs loop {loop * 1e3:.2f} ms "
        f"= {loop / stacked:.1f}x, expected >= 5x")


def test_lte_bench_config_is_no_less_accurate_than_legacy():
    """Acceptance pin for the transient fast path: at the benchmark's
    LTE settings the D-latch waveforms are at least as close to a
    dense-step reference as the pre-LTE heuristic (``dt_max = t_d/15``)
    was, while committing far fewer steps."""
    import numpy as np

    from repro.bench.perf import _design, _latch_circuit
    from repro.spice import TransientOptions, transient

    design = _design()
    t_d = design.delay()

    def run(**overrides):
        return transient(_latch_circuit(design), 10.0 * t_d,
                         TransientOptions(**overrides))

    reference = run(step_control="legacy", dt_max=t_d / 100.0)

    def error_vs_reference(result):
        worst = 0.0
        for node in reference.voltages:
            resampled = np.interp(reference.time, result.time,
                                  result.voltage(node))
            worst = max(worst, float(np.max(
                np.abs(resampled - reference.voltage(node)))))
        return worst

    legacy = run(step_control="legacy", dt_max=t_d / 15.0)
    lte = run(reltol=4e-3, abstol=1e-4, dt_max=t_d / 2.5)
    assert error_vs_reference(lte) <= error_vs_reference(legacy)
    assert lte.telemetry.steps_accepted < \
        0.7 * legacy.telemetry.steps_accepted
