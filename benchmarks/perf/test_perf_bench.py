"""Smoke test of the perf-bench harness (not part of the tier-1 suite;
run explicitly or via the CI perf-smoke job).

    PYTHONPATH=src python -m pytest benchmarks/perf -q
"""

import json
import subprocess
import sys

from repro.bench import BENCH_SCHEMA, run_benchmarks, write_report


def test_quick_benchmarks_produce_all_cases(tmp_path):
    results = run_benchmarks(quick=True, repeats=1)
    names = {r.name for r in results}
    assert names == {"op_chain", "dc_sweep", "transient", "montecarlo"}
    for result in results:
        assert result.wall_s > 0.0
        assert result.meta  # every case reports its workload detail

    path = write_report(results, tmp_path / "BENCH_perf.json", quick=True)
    report = json.loads(path.read_text())
    assert report["schema"] == BENCH_SCHEMA
    assert report["quick"] is True
    assert set(report["results"]) == names
    assert report["results"]["dc_sweep"]["meta"]["compile_count"] == 1
    # Every case's traced warmup attaches its counter totals, and the
    # cache-traffic counter reconciles with the compile count.
    for name in names:
        counters = report["results"][name]["trace_counters"]
        assert counters["jacobian_factorizations"] > 0
        assert counters["device_bank_evals"] > 0
    assert (report["results"]["dc_sweep"]["trace_counters"]
            ["compile_cache_misses"] == 1)


def test_cli_bench_quick_writes_report(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "bench", "--quick",
         "--output", str(out)],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    assert out.exists()
    report = json.loads(out.read_text())
    assert report["schema"] == BENCH_SCHEMA
    assert "dc_sweep" in report["results"]
