"""E13 (extension) / Sec. II-B, refs [22]-[23]: the power-scalable
gm-C filter -- the paper's canonical scalable analog block.

Claim structure: scaling the bias current must move the corner
frequency linearly while gain response (Q), linear range and dynamic
range stay put -- the requirements Sec. II-B lists for scalable analog
circuits ("gain and phase margin should remain unchanged while UGBW
needs to be scaled with respect to the bias current").
"""

import numpy as np
import pytest

from _util import fmt, print_table
from repro.analog.filters import GmCBiquad, gm_c_biquad_circuit
from repro.spice import ac_analysis
from repro.units import decades


@pytest.fixture(scope="module")
def sweep_rows():
    base = GmCBiquad(i_bias=1e-9, q=1.0 / np.sqrt(2.0))
    rows = []
    for i_bias in decades(1e-12, 1e-7, points_per_decade=1):
        flt = base.with_bias(i_bias)
        rows.append((i_bias, flt.corner_frequency(), flt.q,
                     flt.linear_range(), flt.power(1.0),
                     flt.dynamic_range_estimate()))
    return rows


def test_bench_filter_tuning_range(benchmark, sweep_rows):
    flt = GmCBiquad(i_bias=1e-9)
    benchmark(flt.corner_frequency)

    rows = [[fmt(i, "A"), fmt(f0, "Hz"), f"{q:.3f}",
             fmt(lin, "V"), fmt(p, "W"), f"{dr:.1f}dB"]
            for i, f0, q, lin, p, dr in sweep_rows]
    print_table("refs [22]-[23] -- gm-C biquad vs bias current",
                ["I_bias", "f_0", "Q", "lin. range", "power", "DR"],
                rows)

    currents = np.array([r[0] for r in sweep_rows])
    corners = np.array([r[1] for r in sweep_rows])
    # Five decades of corner from five decades of current, slope 1.
    slope = np.polyfit(np.log10(currents), np.log10(corners), 1)[0]
    assert slope == pytest.approx(1.0, abs=1e-6)
    # Q, linear range and DR are bias-invariant columns.
    assert np.ptp([r[2] for r in sweep_rows]) == 0.0
    assert np.ptp([r[3] for r in sweep_rows]) < 1e-12
    assert np.ptp([r[5] for r in sweep_rows]) < 1e-9

    benchmark.extra_info["tuning_decades"] = float(
        np.log10(corners[-1] / corners[0]))


def test_bench_filter_response_shape_invariance(benchmark):
    """The normalised |H(f/f_0)| must be the *same curve* at every
    bias -- 'gain and phase margin remain unchanged'."""
    base = GmCBiquad(i_bias=1e-9, q=1.0 / np.sqrt(2.0))
    offsets = np.logspace(-1.5, 1.5, 25)

    def shape(i_bias: float) -> np.ndarray:
        flt = base.with_bias(i_bias)
        return np.abs(flt.transfer(offsets * flt.corner_frequency()))

    reference = benchmark.pedantic(shape, args=(1e-9,), rounds=1,
                                   iterations=1)
    for i_bias in (1e-12, 1e-7):
        assert np.allclose(shape(i_bias), reference, rtol=1e-9)
    print("\nnormalised response identical at 1 pA, 1 nA and 100 nA "
          "bias (max dev < 1e-9)")


def test_bench_filter_mna_crosscheck(benchmark):
    """The VCCS-level MNA netlist reproduces the analytic corner at
    two bias extremes."""
    def corner_from_mna(i_bias: float) -> float:
        flt = GmCBiquad(i_bias=i_bias, q=1.0 / np.sqrt(2.0))
        f0 = flt.corner_frequency()
        freqs = np.logspace(np.log10(f0) - 2, np.log10(f0) + 2, 81)
        return ac_analysis(gm_c_biquad_circuit(flt),
                           freqs).bandwidth_3db("lp")

    measured = benchmark.pedantic(corner_from_mna, args=(1e-9,),
                                  rounds=1, iterations=1)
    flt = GmCBiquad(i_bias=1e-9, q=1.0 / np.sqrt(2.0))
    print(f"\nMNA corner {fmt(measured, 'Hz')} vs analytic "
          f"{fmt(flt.corner_frequency(), 'Hz')}")
    assert measured == pytest.approx(flt.corner_frequency(), rel=0.05)
    assert corner_from_mna(1e-11) == pytest.approx(
        GmCBiquad(i_bias=1e-11).corner_frequency(), rel=0.05)
