"""E14 (extension): mismatch ablations beyond the paper's single die.

Two design questions the paper raises but does not quantify:

* Sec. III-B: "using large enough transistor sizes can minimize the
  effect of current mismatch both in analog and digital parts" -- how
  much f_max spread does tail-current mismatch actually cause, and how
  fast do bigger tails buy it back?
* Future-work: how much of the converter's INL could a per-comparator
  trim (foreground calibration) recover, and what limits the rest?
"""

import numpy as np
import pytest

from _util import fmt, print_table
from repro.adc import FaiAdc, linearity_test
from repro.digital.encoder import EncoderSpec, build_fai_encoder
from repro.digital.sta import timing_yield_under_mismatch
from repro.stscl import StsclGateDesign


@pytest.fixture(scope="module")
def encoder():
    return build_fai_encoder(EncoderSpec())


def test_bench_timing_yield_vs_tail_size(benchmark, encoder):
    rows = []
    stats_by_size = {}
    for w, l in ((1e-6, 0.5e-6), (2e-6, 1e-6), (8e-6, 4e-6)):
        design = StsclGateDesign(i_ss=1e-9, tail_w=w, tail_l=l)
        stats = timing_yield_under_mismatch(encoder, design,
                                            n_chips=20, seed=0)
        stats_by_size[(w, l)] = stats
        derating = 1.0 - stats["p05"] / stats["nominal"]
        rows.append([f"{w * 1e6:.0f}x{l * 1e6:.1f}um",
                     f"{100 * stats['sigma_mirror']:.1f}%",
                     fmt(stats["nominal"], "Hz"),
                     fmt(stats["p05"], "Hz"),
                     f"{100 * derating:.1f}%"])
    print_table(
        "Sec. III-B -- encoder f_max under tail-current mismatch "
        "(20 chips)",
        ["tail device", "sigma(I)", "nominal f_max", "p05 f_max",
         "derating"], rows)

    design = StsclGateDesign.default(1e-9)
    benchmark.pedantic(timing_yield_under_mismatch,
                       args=(encoder, design),
                       kwargs={"n_chips": 3, "seed": 1},
                       rounds=1, iterations=1)

    small = stats_by_size[(1e-6, 0.5e-6)]
    big = stats_by_size[(8e-6, 4e-6)]
    # Bigger tails shrink the current sigma 8x and the derating with it.
    assert big["sigma_mirror"] < 0.2 * small["sigma_mirror"]
    assert (big["nominal"] - big["p05"]) \
        < 0.5 * (small["nominal"] - small["p05"])
    benchmark.extra_info["derating_small"] = float(
        1.0 - small["p05"] / small["nominal"])
    benchmark.extra_info["derating_big"] = float(
        1.0 - big["p05"] / big["nominal"])


def test_bench_foreground_calibration(benchmark):
    """Per-comparator trim: helps exactly as much as comparator offsets
    contribute -- the residual INL isolates ladder, coarse and per-fold
    folder errors, which a static trim cannot see."""
    rows = []
    gains = []
    for seed in range(6):
        adc = FaiAdc(ideal=False, seed=seed)
        before = linearity_test(adc, samples_per_code=12)
        after = linearity_test(adc.calibrated(), samples_per_code=12)
        gains.append(before.inl_max / after.inl_max)
        rows.append([str(seed), f"{before.inl_max:.2f}",
                     f"{after.inl_max:.2f}", f"{before.dnl_max:.2f}",
                     f"{after.dnl_max:.2f}"])
    print_table("extension -- foreground comparator trim (INL/DNL in "
                "LSB)", ["chip", "INL before", "INL after",
                         "DNL before", "DNL after"], rows)

    adc = FaiAdc(ideal=False, seed=0)
    benchmark.pedantic(adc.calibrated, rounds=1, iterations=1)

    # Modest median improvement, and never a significant regression.
    assert np.median(gains) >= 1.0
    assert min(gains) > 0.85
    print(f"median INL improvement: x{np.median(gains):.2f} "
          "(bounded by non-comparator error sources)")
    benchmark.extra_info["median_inl_gain"] = float(np.median(gains))
