"""E9 / Sec. III-B and ref. [13]: pipelining and compound gates.

Paper: Eq. (1) penalises logic depth linearly; latch-merged cells
(Fig. 8) and pipelining to depth ~1 recover the penalty.  Ref. [13]'s
32-bit pipelined adder achieves ~5 fJ/stage PDP.
"""

import pytest

from _util import fmt, print_table
from repro.digital.sta import analyze_timing
from repro.stscl import PipelinedAdder, StsclGateDesign
from repro.stscl.power import pipelining_gain


def test_bench_pipelining_power_gain(benchmark):
    """Eq. (1)-level accounting of the pipelining trade."""
    result = benchmark(pipelining_gain, 196, 8, 80e3, 0.2, 35e-15, 1.0,
                       0.0)
    rows = [
        ["flat depth-8", fmt(result.i_ss_flat, "A"),
         fmt(result.power_flat, "W")],
        ["pipelined depth-1", fmt(result.i_ss_pipelined, "A"),
         fmt(result.power_pipelined, "W")],
    ]
    print_table("Sec. III-B -- pipelining a 196-gate depth-8 block "
                "@80 kHz", ["design", "I_SS/gate", "P_total"], rows)
    print(f"power gain: x{result.gain:.1f}")
    assert result.gain == pytest.approx(8.0)
    benchmark.extra_info["gain"] = result.gain


@pytest.fixture(scope="module")
def adder_netlists():
    builds = {}
    for granularity in (32, 4, 1):
        adder = PipelinedAdder(width=32, granularity=granularity)
        builds[granularity] = (adder, adder.build())
    return builds


def test_bench_adder_design_space(benchmark, adder_netlists):
    """32-bit adder: logic depth vs tail count across pipeline
    granularities -- the designer's actual trade-off."""
    design = StsclGateDesign.default(1e-9)
    rows = []
    stats = {}
    for granularity, (adder, netlist) in sorted(adder_netlists.items(),
                                                reverse=True):
        timing = analyze_timing(netlist, design)
        f_req = 10e3
        # bias each variant for the same 10 kHz add rate
        i_needed = design.i_ss * f_req / timing.f_max
        power = netlist.tail_count() * i_needed * 0.4
        rows.append([f"every {granularity} bit(s)",
                     str(netlist.tail_count()),
                     f"{timing.weighted_depth:.1f}",
                     fmt(power, "W")])
        stats[granularity] = power
    print_table("ref [13] -- 32-bit adder @10 kadd/s, V_DD = 0.4 V",
                ["pipelining", "tails", "depth", "power"], rows)

    benchmark(analyze_timing, adder_netlists[1][1], design)

    # Full pipelining wins on power despite the alignment latches.
    assert stats[1] < stats[32]
    benchmark.extra_info["power_flat"] = stats[32]
    benchmark.extra_info["power_pipelined"] = stats[1]


def test_bench_adder_pdp_anchor(benchmark, adder_netlists):
    """Ref [13]: ~5 fJ/stage power-delay product."""
    adder, netlist = adder_netlists[1]
    design = StsclGateDesign.default(1e-9)
    pdp = benchmark(adder.pdp_per_stage, design, 0.4)
    print(f"\nPDP/stage: {fmt(pdp, 'J')} (paper [13]: ~5 fJ)")
    assert pdp == pytest.approx(5e-15, rel=0.5)
    benchmark.extra_info["pdp_fj"] = pdp * 1e15

    # And the pipelined netlist actually adds correctly.
    assert adder.simulate_add(netlist, 123456789, 987654321) \
        == 123456789 + 987654321
