"""E11 / Eq. (1): P_STSCL = 2 ln2 V_SW C_L N_L f_op V_DD.

The equation rests on two facts we verify against the transistor level:
the cell's supply current is exactly I_SS (no activity or leakage
component), and the delay law t_d = ln2 V_SW C_L / I_SS holds, so the
required I_SS at a given f_op is the Eq. (1) value.
"""

import numpy as np
import pytest

from _util import fmt, print_table
from repro.spice import TransientOptions, operating_point, transient
from repro.spice.waveforms import step_wave
from repro.stscl import StsclGateDesign
from repro.stscl.netlist_gen import (stscl_buffer_chain_circuit,
                                     stscl_inverter_circuit)
from repro.stscl.power import eq1_cell_power, required_tail_current


def test_bench_eq1_static_current(benchmark):
    """Transistor level: supply current == I_SS over three decades."""
    rows = []
    errors = []
    for i_ss in (10e-12, 1e-9, 100e-9):
        design = StsclGateDesign.default(i_ss)
        circuit, _ = stscl_inverter_circuit(design, 1.0)
        op = operating_point(circuit)
        measured = abs(op.current("vvdd"))
        errors.append(abs(measured / i_ss - 1.0))
        rows.append([fmt(i_ss, "A"), fmt(measured, "A"),
                     f"{100 * (measured / i_ss - 1):+.2f}%"])
    print_table("Eq. (1) premise -- supply current vs programmed I_SS",
                ["I_SS", "I_supply (SPICE)", "error"], rows)
    assert max(errors) < 0.05

    design = StsclGateDesign.default(1e-9)
    benchmark(eq1_cell_power, 0.2, 35e-15, 1, 80e3, 1.0)
    benchmark.extra_info["max_current_error"] = float(max(errors))
    del design


def test_bench_eq1_power_vs_spice(benchmark):
    """End-to-end: pick f_op, compute the Eq. (1) cell power, bias a
    transistor-level chain with that current, and confirm it (a) meets
    the frequency and (b) burns the predicted power."""
    f_op = 10e3
    v_sw, c_load, vdd = 0.2, 35e-15, 1.0
    i_ss = required_tail_current(v_sw, c_load, 1, f_op)
    predicted_power = eq1_cell_power(v_sw, c_load, 1, f_op, vdd)

    design = StsclGateDesign(i_ss=i_ss, v_sw=v_sw, c_load=c_load)

    def run():
        t_d = design.delay()
        circuit, _ = stscl_buffer_chain_circuit(
            design, vdd, 3,
            in_p=step_wave(vdd - v_sw, vdd, 5 * t_d, t_d / 10),
            in_n=step_wave(vdd, vdd - v_sw, 5 * t_d, t_d / 10))
        result = transient(circuit, 25 * t_d,
                           TransientOptions(dt_max=t_d / 25))
        mid = vdd - v_sw / 2
        delay = float(result.crossing_times("s3_outp", mid)[0]
                      - result.crossing_times("s2_outp", mid)[0])
        op = operating_point(circuit)
        # three cells on the vdd rail
        power_per_cell = abs(op.current("vvdd")) * vdd / 3.0
        return delay, power_per_cell

    delay, power = benchmark.pedantic(run, rounds=1, iterations=1)
    f_achieved = 1.0 / (2.0 * delay)
    print(f"\nEq.(1) @ f_op = {fmt(f_op, 'Hz')}: "
          f"predicted P = {fmt(predicted_power, 'W')}, "
          f"SPICE P = {fmt(power, 'W')}, "
          f"achieved f = {fmt(f_achieved, 'Hz')}")
    # Power is exact (it is I_SS * VDD); frequency within self-loading.
    assert power == pytest.approx(predicted_power, rel=0.05)
    assert f_op / f_achieved < 1.8
    benchmark.extra_info["predicted_nW"] = predicted_power * 1e9
    benchmark.extra_info["spice_nW"] = power * 1e9


def test_bench_eq1_linearity_in_depth_and_frequency(benchmark):
    """The two proportionalities of Eq. (1) on one table."""
    benchmark(required_tail_current, 0.2, 35e-15, 4, 1e4)
    rows = []
    for depth in (1, 4, 16):
        for f_op in (1e3, 1e5):
            p = eq1_cell_power(0.2, 35e-15, depth, f_op, 1.0)
            rows.append([str(depth), fmt(f_op, "Hz"), fmt(p, "W")])
    print_table("Eq. (1) -- P(N_L, f_op) at V_SW = 0.2 V, "
                "C_L = 35 fF, V_DD = 1 V",
                ["N_L", "f_op", "P_cell"], rows)
    p_base = eq1_cell_power(0.2, 35e-15, 1, 1e3, 1.0)
    assert eq1_cell_power(0.2, 35e-15, 16, 1e5, 1.0) == pytest.approx(
        1600.0 * p_base)
