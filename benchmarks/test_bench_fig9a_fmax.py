"""E1 / Fig. 9a: maximum encoder operating frequency vs tail current.

Paper: the 196-gate pipelined encoder's maximum clock scales linearly
with the per-gate tail bias current; the usable range spans ~pA (the
800 S/s operating point) to ~100 nA (MHz-class).

We regenerate the curve from the STA of the actual encoder netlist and
cross-check one point against a transistor-level transient measurement.
"""

import numpy as np
import pytest

from _util import fmt, print_table
from repro.digital.encoder import EncoderSpec, build_fai_encoder
from repro.digital.sta import analyze_timing
from repro.spice import TransientOptions, transient
from repro.spice.waveforms import step_wave
from repro.stscl import StsclGateDesign
from repro.stscl.netlist_gen import stscl_buffer_chain_circuit
from repro.units import decades


@pytest.fixture(scope="module")
def encoder():
    return build_fai_encoder(EncoderSpec())


@pytest.fixture(scope="module")
def curve(encoder):
    currents = decades(1e-12, 1e-6, points_per_decade=2)
    f_max = [analyze_timing(encoder,
                            StsclGateDesign.default(i)).f_max
             for i in currents]
    return np.asarray(currents), np.asarray(f_max)


def spice_fmax(i_ss: float) -> float:
    """Measured stage delay of a transistor-level buffer chain,
    converted to a maximum clock (same half-period criterion)."""
    design = StsclGateDesign.default(i_ss)
    t_d = design.delay()
    vdd = 1.0
    circuit, _ = stscl_buffer_chain_circuit(
        design, vdd, 3,
        in_p=step_wave(vdd - design.v_sw, vdd, 5 * t_d, t_d / 10),
        in_n=step_wave(vdd, vdd - design.v_sw, 5 * t_d, t_d / 10))
    result = transient(circuit, 25 * t_d,
                       TransientOptions(dt_max=t_d / 25))
    mid = vdd - design.v_sw / 2
    t2 = result.crossing_times("s2_outp", mid)[0]
    t3 = result.crossing_times("s3_outp", mid)[0]
    return 1.0 / (2.0 * (t3 - t2))


def test_bench_fig9a_fmax_vs_tail_current(benchmark, curve, encoder):
    currents, f_max = curve

    design = StsclGateDesign.default(1e-9)
    benchmark(analyze_timing, encoder, design)

    rows = [[fmt(i, "A"), fmt(f, "Hz")]
            for i, f in zip(currents, f_max)]
    print_table("Fig. 9a -- encoder f_max vs I_SS/gate",
                ["I_SS", "f_max"], rows)

    # Shape: exactly linear (slope 1 in log-log).
    slope = np.polyfit(np.log10(currents), np.log10(f_max), 1)[0]
    assert slope == pytest.approx(1.0, abs=1e-6)

    # Paper anchors: ~800 S/s near 10 pA/gate, ~80 kS/s near 1 nA/gate.
    f_at = lambda i: np.interp(np.log10(i), np.log10(currents),
                               np.log10(f_max))
    assert 10 ** f_at(10e-12) == pytest.approx(800.0, rel=0.15)
    assert 10 ** f_at(1e-9) == pytest.approx(80e3, rel=0.15)

    benchmark.extra_info["slope_loglog"] = float(slope)
    benchmark.extra_info["fmax_at_1nA"] = float(10 ** f_at(1e-9))


def test_bench_fig9a_spice_crosscheck(benchmark):
    """One transistor-level point: the MNA-measured f_max at 1 nA sits
    on the analytic line within the self-loading factor."""
    measured = benchmark.pedantic(spice_fmax, args=(1e-9,), rounds=1,
                                  iterations=1)
    design = StsclGateDesign.default(1e-9)
    analytic = design.max_frequency(1)
    print(f"\nSPICE f_max @1nA: {fmt(measured, 'Hz')}  "
          f"(analytic {fmt(analytic, 'Hz')}, "
          f"ratio {analytic / measured:.2f})")
    assert 1.0 < analytic / measured < 1.8
    benchmark.extra_info["spice_fmax_1nA"] = float(measured)
