"""E8 / ref. [11] claim: STSCL beats subthreshold CMOS where leakage
dominates -- low activity rates, low clock rates, leaky device classes.

Comparison protocol:

* CMOS gets its best case -- minimum-energy supply, race-to-idle -- but
  with a 0.35 V deployment floor (its subthreshold delay is
  exponentially sensitive to VT and V_DD, the paper's own Fig. 3
  argument, so corner-robust products cannot ride the absolute
  energy optimum).
* The device class is swept via the leakage multiplier: 1x is this
  repo's low-leakage 0.18 um flavour, 30x a generic-logic flavour,
  1000x the scaled high-performance devices whose leakage trend the
  paper cites (ref. [3]).
* STSCL appears twice: flat (depth-10 bias, its worst case) and
  pipelined to depth 1 with latch-merged cells (the paper's Sec. III-B
  configuration, at no tail-current overhead).
"""

import numpy as np
import pytest

from _util import fmt, print_table
from repro.digital.cmos_baseline import CmosGateModel, CmosSystemModel
from repro.stscl.power import required_tail_current, system_power

N_GATES = 200
LOGIC_DEPTH = 10
V_SW, C_LOAD = 0.2, 35e-15
VDD_STSCL = 0.5
VDD_FLOOR_CMOS = 0.35


def stscl_power(f_clock: float, depth: int = LOGIC_DEPTH) -> float:
    """STSCL block biased for ``depth`` gates per cycle (depth 1 =
    the pipelined Sec. III-B configuration)."""
    i_ss = required_tail_current(V_SW, C_LOAD, depth, f_clock)
    return system_power(N_GATES, i_ss, VDD_STSCL)


def cmos_system(alpha: float, leakage: float) -> CmosSystemModel:
    return CmosSystemModel(gate=CmosGateModel(), n_gates=N_GATES,
                           alpha=alpha, logic_depth=LOGIC_DEPTH,
                           leakage_multiplier=leakage,
                           vdd_floor=VDD_FLOOR_CMOS)


def cmos_power(f_clock: float, alpha: float, leakage: float) -> float:
    system = cmos_system(alpha, leakage)
    vdd, _energy = system.minimum_energy_supply(f_clock)
    return system.total_power(vdd, f_clock)


def find_crossover(alpha: float, leakage: float, depth: int) -> float:
    """Clock rate where the two powers cross (STSCL wins below)."""
    frequencies = np.logspace(0, 7, 71)
    ratio = np.array([stscl_power(f, depth)
                      / cmos_power(f, alpha, leakage)
                      for f in frequencies])
    below = np.nonzero(ratio < 1.0)[0]
    if below.size == 0:
        return float("nan")
    return float(frequencies[int(below[-1])])


def test_bench_activity_crossover(benchmark):
    benchmark(stscl_power, 1e4)

    rows = []
    crossovers = {}
    for leakage in (1.0, 30.0, 1000.0):
        for alpha in (0.01, 0.05, 0.2):
            flat = find_crossover(alpha, leakage, LOGIC_DEPTH)
            pipelined = find_crossover(alpha, leakage, 1)
            crossovers[(leakage, alpha)] = pipelined
            rows.append([f"x{leakage:g}", f"{alpha:.2f}",
                         fmt(flat, "Hz"), fmt(pipelined, "Hz")])
    print_table(
        "ref [11] -- crossover clock rate (STSCL wins below) by device "
        "leakage class and activity",
        ["leakage", "activity", "flat STSCL", "pipelined STSCL"], rows)

    # Shape 1: leakier devices push the crossover up by orders of
    # magnitude (the scaling trend that motivates the paper).
    assert crossovers[(1000.0, 0.05)] > 30.0 * crossovers[(1.0, 0.05)]
    # Shape 2: lower activity -> higher crossover ("especially more
    # pronounced in low activity rate systems").
    assert (crossovers[(30.0, 0.01)] >= crossovers[(30.0, 0.05)]
            >= crossovers[(30.0, 0.2)])
    # Magnitude: for generic-logic leakage at sensor-node activity,
    # pipelined STSCL wins through the kS/s range the ADC uses.
    assert crossovers[(30.0, 0.05)] > 1e3

    benchmark.extra_info["crossover_generic_a05"] = crossovers[
        (30.0, 0.05)]


def test_bench_energy_per_op_comparison(benchmark):
    """Energy per clock cycle at the paper's sensor-node operating
    point (kS/s class, generic-logic leakage)."""
    f_clock = 1e3
    alpha = 0.05
    leakage = 30.0

    def stscl_energy() -> float:
        return stscl_power(f_clock, depth=1) / f_clock

    e_stscl = benchmark.pedantic(stscl_energy, rounds=3, iterations=1)
    system = cmos_system(alpha, leakage)
    vdd, _ = system.minimum_energy_supply(f_clock)
    e_cmos = system.total_power(vdd, f_clock) / f_clock
    print(f"\nenergy/cycle @1 kHz, alpha={alpha}, leakage x{leakage:g}: "
          f"STSCL {fmt(e_stscl, 'J')} vs CMOS {fmt(e_cmos, 'J')} "
          f"(CMOS at V_DD = {vdd:.2f} V)")
    assert e_stscl < e_cmos
    benchmark.extra_info["e_stscl_fJ"] = e_stscl * 1e15
    benchmark.extra_info["e_cmos_fJ"] = e_cmos * 1e15
