"""Shared helpers for the experiment benchmarks.

Every ``test_bench_*`` module regenerates one table/figure of the paper
(see the experiment index in DESIGN.md).  Each prints its rows (visible
with ``pytest benchmarks/ --benchmark-only -s`` or ``-rA``), records the
headline numbers in ``benchmark.extra_info``, and *asserts the shape*
of the paper's result so the reproduction is regression-checked, not
just displayed.
"""

from __future__ import annotations

from repro.units import format_quantity


def print_table(title: str, header: list[str],
                rows: list[list[str]]) -> None:
    """Render an aligned text table to stdout."""
    widths = [max(len(str(cell)) for cell in column)
              for column in zip(header, *rows)]
    print(f"\n== {title} ==")
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def fmt(value: float, unit: str = "") -> str:
    """Engineering-notation cell."""
    return format_quantity(value, unit)
