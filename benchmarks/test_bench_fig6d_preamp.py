"""E5 / Fig. 6d: pre-amplifier frequency-response improvement from
decoupling the D_Well parasitic.

Paper: the nwell-substrate junction sits directly on the preamp output
(Fig. 6a) and kills bandwidth at nA bias; a very-high-valued series
device M_C (Fig. 6b) decouples it, adding a zero that restores the
response (Fig. 6d).
"""

import numpy as np
import pytest

from _util import fmt, print_table
from repro.analog.preamp import Preamp, preamp_output_circuit
from repro.spice import ac_analysis


@pytest.fixture(scope="module")
def response_table():
    rows = []
    for i_bias in (0.1e-9, 1e-9, 10e-9):
        plain = Preamp(i_bias=i_bias, decoupled=False)
        decoupled = Preamp(i_bias=i_bias, decoupled=True)
        rows.append((i_bias, plain.bandwidth(), decoupled.bandwidth(),
                     plain.step_settling_time(0.75),
                     decoupled.step_settling_time(0.75)))
    return rows


def test_bench_fig6d_bandwidth_improvement(benchmark, response_table):
    amp = Preamp(i_bias=1e-9, decoupled=True)
    benchmark(amp.bandwidth)

    rows = [[fmt(i, "A"), fmt(b0, "Hz"), fmt(b1, "Hz"),
             f"x{b1 / b0:.1f}", fmt(t0, "s"), fmt(t1, "s")]
            for i, b0, b1, t0, t1 in response_table]
    print_table(
        "Fig. 6d -- preamp response, plain vs D_Well-decoupled load",
        ["I_bias", "BW plain", "BW decoupled", "gain",
         "t_75% plain", "t_75% dec."], rows)

    for _i, bw_plain, bw_dec, t_plain, t_dec in response_table:
        assert bw_dec / bw_plain > 3.0     # the Fig. 6d improvement
        assert t_dec < 0.5 * t_plain       # faster decision settling

    benchmark.extra_info["bw_gain_at_1nA"] = float(
        response_table[1][2] / response_table[1][1])


def test_bench_fig6d_mna_transfer_curves(benchmark):
    """Regenerate the two Fig. 6d curves from the MNA engine and verify
    the decoupled magnitude dominates above the plain pole."""
    freqs = np.logspace(1, 6, 51)

    def run(decoupled: bool) -> np.ndarray:
        amp = Preamp(i_bias=1e-9, decoupled=decoupled)
        result = ac_analysis(preamp_output_circuit(amp), freqs)
        mags = np.abs(result.transfer("out"))
        return mags / mags[0]

    plain = benchmark.pedantic(run, args=(False,), rounds=1,
                               iterations=1)
    decoupled = run(True)

    plain_pole = Preamp(i_bias=1e-9, decoupled=False).bandwidth()
    above = freqs > 2.0 * plain_pole
    assert np.all(decoupled[above] >= plain[above])
    # Print a compact curve table (every 10th point).
    rows = [[fmt(f, "Hz"), f"{p:.3f}", f"{d:.3f}"]
            for f, p, d in zip(freqs[::10], plain[::10],
                               decoupled[::10])]
    print_table("Fig. 6d -- |H(f)| (normalised)",
                ["f", "plain", "decoupled"], rows)
