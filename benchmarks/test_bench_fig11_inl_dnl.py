"""E4 / Fig. 11: measured INL and DNL of the converter.

Paper (measured silicon): INL = 1.0 LSB, DNL = 0.4 LSB.

We run a Monte-Carlo population of chips (Pelgrom mismatch in the
ladder, folders, interpolators and comparators) and report the median
chip -- the statistically honest counterpart of the paper's single
measured die.
"""

import numpy as np
import pytest

from _util import print_table
from repro.adc import FaiAdc, linearity_test
from repro.analysis import MonteCarlo, estimate_yield


@pytest.fixture(scope="module")
def population():
    def metrics(seed):
        adc = FaiAdc(ideal=False, seed=seed)
        report = linearity_test(adc, samples_per_code=12)
        return {"inl": report.inl_max, "dnl": report.dnl_max,
                "missing": float(len(report.missing_codes))}

    return MonteCarlo(metrics, n_runs=10, seed_base=0).run()


def test_bench_fig11_inl_dnl(benchmark, population):
    adc = FaiAdc(ideal=False, seed=1)
    benchmark(linearity_test, adc, 4)

    rows = []
    for name in ("inl", "dnl"):
        summary = population[name]
        rows.append([name.upper(),
                     f"{summary.median:.2f}",
                     f"{summary.p05:.2f}..{summary.p95:.2f}",
                     "1.0" if name == "inl" else "0.4"])
    print_table("Fig. 11 -- static linearity over 10 chips [LSB]",
                ["metric", "median", "5..95 %", "paper"], rows)

    assert population["inl"].median == pytest.approx(1.0, abs=0.4)
    assert population["dnl"].median == pytest.approx(0.55, abs=0.35)
    assert population["missing"].median <= 2.0

    benchmark.extra_info["inl_median"] = population["inl"].median
    benchmark.extra_info["dnl_median"] = population["dnl"].median


def test_bench_fig11_inl_profile_shape(benchmark):
    """The INL profile of one chip: mismatch accumulates into the
    classic low-frequency bow rather than isolated spikes."""
    adc = FaiAdc(ideal=False, seed=1)
    report = benchmark.pedantic(linearity_test, args=(adc,),
                                kwargs={"samples_per_code": 16},
                                rounds=1, iterations=1)
    inl = report.inl
    # The worst INL should not be an isolated one-code spike: its two
    # neighbours carry a substantial fraction of it.
    worst = int(np.argmax(np.abs(inl)))
    neighbourhood = np.abs(inl[max(0, worst - 2):worst + 3])
    assert np.median(neighbourhood) > 0.4 * np.abs(inl[worst])
    print(f"\nworst INL {inl[worst]:+.2f} LSB at code {worst}")


def test_bench_fig11_yield(benchmark, population):
    """Extension: parametric yield against the paper's spec point."""
    report = estimate_yield(population, {
        "inl": lambda v: v <= 1.5,
        "dnl": lambda v: v <= 1.0,
    })
    benchmark.pedantic(estimate_yield, args=(
        population, {"inl": lambda v: v <= 1.5}), rounds=1, iterations=1)
    print(f"\nyield at (INL<=1.5, DNL<=1.0): "
          f"{100 * report.yield_fraction:.0f}% "
          f"({report.n_pass}/{report.n_total})")
    assert report.yield_fraction >= 0.5
