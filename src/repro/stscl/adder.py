"""The 32-bit pipelined STSCL adder of ref. [13] (experiment E9).

Each full adder is two compound stacked cells -- XOR3 for the sum and
MAJ3 for the carry -- so one bit costs exactly two tail currents.  With
``granularity = 1`` every full adder is latch-merged (``*_PIPE``) and
the automatic balancer skews/deskews the operand and sum bits, giving
the classic bit-level-pipelined carry chain whose logic depth is one
cell; coarser granularities trade alignment latches for logic depth.

Ref. [13] reports ~5 fJ/stage power-delay product; with the repo's
default design point (I_SS = 1 nA, V_SW = 0.2 V, C_L = 50 fF,
V_DD = 0.4 V) the model lands at

    PDP_stage = 2 * I_SS * V_DD * t_d ~ 5.5 fJ

which the E9 benchmark records against the paper value.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DesignError
from ..stscl.library import StsclCell, cell as lookup_cell
from .gate_model import StsclGateDesign


def _parity3(v: tuple[bool, ...]) -> bool:
    return (v[0] ^ v[1]) ^ v[2]


def _majority3(v: tuple[bool, ...]) -> bool:
    return (v[0] and v[1]) or (v[0] and v[2]) or (v[1] and v[2])


def full_adder_cells(pipelined: bool) -> tuple[StsclCell, StsclCell]:
    """(sum_cell, carry_cell) used per adder bit."""
    if pipelined:
        return lookup_cell("FASUM_PIPE"), lookup_cell("MAJ3_PIPE")
    return lookup_cell("XOR3"), lookup_cell("MAJ3")


@dataclass(frozen=True)
class PipelinedAdder:
    """A ``width``-bit ripple-carry adder pipelined every
    ``granularity`` bits.

    ``granularity = 1`` reproduces the fully pipelined ref-[13] design;
    ``granularity = width`` is the flat (unpipelined) ripple adder used
    as the E9 baseline.
    """

    width: int = 32
    granularity: int = 1

    def __post_init__(self) -> None:
        if self.width < 1:
            raise DesignError(f"width must be >= 1: {self.width}")
        if not 1 <= self.granularity <= self.width:
            raise DesignError(
                f"granularity must be in 1..{self.width}: "
                f"{self.granularity}")

    def build(self, balanced: bool = True):
        """Construct the gate netlist (inputs ``a*``, ``b*``, ``cin``;
        outputs ``s*``, ``cout``)."""
        from ..digital.netlist import GateNetlist
        from ..digital.pipeline import balance_pipeline

        netlist = GateNetlist(f"adder{self.width}_g{self.granularity}")
        a = [netlist.add_input(f"a{i}") for i in range(self.width)]
        b = [netlist.add_input(f"b{i}") for i in range(self.width)]
        carry = netlist.add_input("cin")

        for i in range(self.width):
            boundary = (i + 1) % self.granularity == 0
            sum_cell, carry_cell = full_adder_cells(pipelined=boundary)
            netlist.add_gate(f"fa{i}_sum", sum_cell,
                             [a[i], b[i], carry], f"s{i}")
            netlist.add_gate(f"fa{i}_carry", carry_cell,
                             [a[i], b[i], carry], f"c{i + 1}")
            carry = f"c{i + 1}"
            netlist.mark_output(f"s{i}")
        netlist.mark_output(carry)
        netlist.validate()
        if balanced and self.granularity < self.width:
            netlist = balance_pipeline(netlist)
        return netlist

    def pdp_per_stage(self, design: StsclGateDesign, vdd: float) -> float:
        """Power-delay product of one full-adder stage [J] (ref [13]'s
        figure of merit): two tail currents for one gate delay."""
        return 2.0 * design.power(vdd) * design.delay()

    def simulate_add(self, netlist, x: int, y: int,
                     carry_in: bool = False) -> int:
        """Drive the netlist with one operand pair and return the sum.

        Handles pipeline flushing automatically; works for both flat and
        balanced netlists.
        """
        from ..digital.simulator import CycleSimulator

        mask = (1 << self.width) - 1
        if not 0 <= x <= mask or not 0 <= y <= mask:
            raise DesignError("operand out of range")
        vector = {"cin": carry_in}
        for i in range(self.width):
            vector[f"a{i}"] = bool((x >> i) & 1)
            vector[f"b{i}"] = bool((y >> i) & 1)
        simulator = CycleSimulator(netlist)
        flush = simulator.latency() + 1
        values = None
        for _cycle in range(flush):
            values = simulator.step(vector)
        total = 0
        for k, net in enumerate(netlist.primary_outputs):
            if values[net]:
                total += 1 << k
        return total


# ---------------------------------------------------------------------------
# Transistor-level bit-slice chain (hierarchical MNA scale target)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FullAdderCell:
    """One transistor-level STSCL full-adder bit slice as a reusable
    subcircuit template.

    ``sum_out`` / ``carry_out`` name the template's differential output
    ports; with latches these are the latch outputs (``sl_``/``kl_``
    stages), without they are the raw tree outputs.
    """

    subcircuit: object  # repro.spice.subckt.Subcircuit
    sum_out: tuple[str, str]
    carry_out: tuple[str, str]

    @property
    def ports(self) -> tuple[str, ...]:
        return self.subcircuit.ports


def full_adder_cell(design: StsclGateDesign, vdd: float,
                    with_latches: bool = True,
                    with_dwell: bool = False) -> FullAdderCell:
    """Build the transistor-level full-adder bit-slice template.

    The slice is the ref-[13] topology spelled out in devices: an XOR3
    steering tree for the sum, a MAJ3 tree for the carry, and (when
    ``with_latches``) one STSCL D-latch behind each so the chain is
    bit-level pipelined -- 48 MOSFETs and two tree tails plus two latch
    tails per bit.  Shared rails (``vdd``, ``vbp``) and the clock pair
    are ports so a chain of instances shares one bias network.

    Template nodesets encode the all-zero-operand polarity (every
    output at logic 0); :func:`adder_chain_circuit` overrides them per
    bit from the expected sum/carry pattern.
    """
    from ..spice.netlist import Circuit
    from ..spice.subckt import Subcircuit
    from .netlist_gen import add_stscl_latch, add_stscl_tree

    tpl = Circuit("stscl_fa_slice", temperature=design.temperature)
    inputs = [("ap", "an"), ("bp", "bn"), ("cp", "cn")]
    xs = add_stscl_tree(tpl, "xs_", design, _parity3, inputs,
                        with_dwell=with_dwell)
    mc = add_stscl_tree(tpl, "mc_", design, _majority3, inputs,
                        with_dwell=with_dwell)
    tpl.nodeset("xs_tail", 0.1)
    tpl.nodeset("mc_tail", 0.1)
    if with_latches:
        sum_out = add_stscl_latch(tpl, "sl_", design, xs[0], xs[1],
                                  "ckp", "ckn", with_dwell=with_dwell)
        carry_out = add_stscl_latch(tpl, "kl_", design, mc[0], mc[1],
                                    "ckp", "ckn", with_dwell=with_dwell)
        for prefix in ("sl_", "kl_"):
            for node in ("tail", "ns", "nh"):
                tpl.nodeset(f"{prefix}{node}", 0.1)
    else:
        sum_out, carry_out = xs, mc

    high, low = vdd, vdd - design.v_sw
    for out_p, out_n in (xs, mc, sum_out, carry_out):
        # Logic-0 polarity: the false-minterm leaves pull outp low.
        tpl.nodeset(out_p, low)
        tpl.nodeset(out_n, high)

    clock_ports = ("ckp", "ckn") if with_latches else ()
    ports = ("vdd", "vbp", *clock_ports,
             "ap", "an", "bp", "bn", "cp", "cn",
             *sum_out, *carry_out)
    return FullAdderCell(
        subcircuit=Subcircuit("stscl_fa", tpl, ports),
        sum_out=sum_out, carry_out=carry_out)


def _drive_pair(circuit, name: str, p: str, n: str, value: bool,
                high: float, low: float) -> None:
    circuit.add_vsource(f"v{name}p", p, "0", high if value else low)
    circuit.add_vsource(f"v{name}n", n, "0", low if value else high)


def _expect_pair(circuit, p: str, n: str, value: bool,
                 high: float, low: float) -> None:
    circuit.nodeset(p, high if value else low)
    circuit.nodeset(n, low if value else high)


def adder_chain_circuit(design: StsclGateDesign, vdd: float,
                        width: int = 32, a: int = 0, b: int = 0,
                        carry_in: bool = False,
                        with_latches: bool = True,
                        with_dwell: bool = False):
    """The ``width``-bit ripple-carry adder at transistor level.

    One :func:`full_adder_cell` template instantiated ``width`` times
    through the hierarchical compiler: the cell is compiled once and
    each bit slice is an :class:`~repro.spice.subckt.Instance` with
    index-offset stamping, so build cost is O(cell) + O(width) rather
    than O(width * cell).  At the default 32 bits the flat MNA system
    exceeds a thousand unknowns -- the scale target that motivates the
    sparse backend.

    Operands ``a``/``b`` and ``carry_in`` are encoded as DC
    differential drives; the clock is held high so the latches are
    transparent and the DC solution *is* the sum.  Nodesets follow the
    expected bit pattern computed in Python, so Newton starts on the
    correct side of every bistable latch.

    Returns ``(circuit, ports)`` where ``ports`` maps ``"s{i}"`` /
    ``"cout"`` to differential net pairs.
    """
    from ..spice.netlist import Circuit
    from .netlist_gen import _load_bias

    mask = (1 << width) - 1
    if width < 1:
        raise DesignError(f"width must be >= 1: {width}")
    if not 0 <= a <= mask or not 0 <= b <= mask:
        raise DesignError("operand out of range")

    cell = full_adder_cell(design, vdd, with_latches=with_latches,
                           with_dwell=with_dwell)
    high, low = vdd, vdd - design.v_sw

    circuit = Circuit(f"stscl_adder{width}_xtor",
                      temperature=design.temperature)
    circuit.add_vsource("vvdd", "vdd", "0", vdd)
    circuit.add_vsource("vvbp", "vbp", "0", _load_bias(design, vdd))
    if with_latches:
        # Clock high: sampling pairs carry the tails, transparent.
        circuit.add_vsource("vckp", "ckp", "0", high)
        circuit.add_vsource("vckn", "ckn", "0", low)
    _drive_pair(circuit, "cin", "c0p", "c0n", carry_in, high, low)

    carry_net = ("c0p", "c0n")
    carry = carry_in
    outputs: dict[str, tuple[str, str]] = {}
    for i in range(width):
        a_i = bool((a >> i) & 1)
        b_i = bool((b >> i) & 1)
        _drive_pair(circuit, f"a{i}", f"a{i}p", f"a{i}n", a_i, high, low)
        _drive_pair(circuit, f"b{i}", f"b{i}p", f"b{i}n", b_i, high, low)
        s_nets = (f"s{i}p", f"s{i}n")
        k_nets = (f"c{i + 1}p", f"c{i + 1}n")
        port_map = {
            "vdd": "vdd", "vbp": "vbp",
            "ap": f"a{i}p", "an": f"a{i}n",
            "bp": f"b{i}p", "bn": f"b{i}n",
            "cp": carry_net[0], "cn": carry_net[1],
            cell.sum_out[0]: s_nets[0], cell.sum_out[1]: s_nets[1],
            cell.carry_out[0]: k_nets[0], cell.carry_out[1]: k_nets[1],
        }
        if with_latches:
            port_map.update(ckp="ckp", ckn="ckn")
        circuit.add_instance(f"fa{i}", cell.subcircuit, port_map)
        s_i = a_i ^ b_i ^ carry
        carry = _majority3((a_i, b_i, carry))
        # Repoint the replayed template nodesets at the expected bit
        # values so Newton starts on the right side of each latch.
        _expect_pair(circuit, *s_nets, s_i, high, low)
        _expect_pair(circuit, *k_nets, carry, high, low)
        if with_latches:
            _expect_pair(circuit, f"fa{i}.xs_outp", f"fa{i}.xs_outn",
                         s_i, high, low)
            _expect_pair(circuit, f"fa{i}.mc_outp", f"fa{i}.mc_outn",
                         carry, high, low)
        outputs[f"s{i}"] = s_nets
        carry_net = k_nets
    outputs["cout"] = carry_net
    return circuit, outputs
