"""The 32-bit pipelined STSCL adder of ref. [13] (experiment E9).

Each full adder is two compound stacked cells -- XOR3 for the sum and
MAJ3 for the carry -- so one bit costs exactly two tail currents.  With
``granularity = 1`` every full adder is latch-merged (``*_PIPE``) and
the automatic balancer skews/deskews the operand and sum bits, giving
the classic bit-level-pipelined carry chain whose logic depth is one
cell; coarser granularities trade alignment latches for logic depth.

Ref. [13] reports ~5 fJ/stage power-delay product; with the repo's
default design point (I_SS = 1 nA, V_SW = 0.2 V, C_L = 50 fF,
V_DD = 0.4 V) the model lands at

    PDP_stage = 2 * I_SS * V_DD * t_d ~ 5.5 fJ

which the E9 benchmark records against the paper value.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DesignError
from ..stscl.library import StsclCell, cell as lookup_cell
from .gate_model import StsclGateDesign


def full_adder_cells(pipelined: bool) -> tuple[StsclCell, StsclCell]:
    """(sum_cell, carry_cell) used per adder bit."""
    if pipelined:
        return lookup_cell("FASUM_PIPE"), lookup_cell("MAJ3_PIPE")
    return lookup_cell("XOR3"), lookup_cell("MAJ3")


@dataclass(frozen=True)
class PipelinedAdder:
    """A ``width``-bit ripple-carry adder pipelined every
    ``granularity`` bits.

    ``granularity = 1`` reproduces the fully pipelined ref-[13] design;
    ``granularity = width`` is the flat (unpipelined) ripple adder used
    as the E9 baseline.
    """

    width: int = 32
    granularity: int = 1

    def __post_init__(self) -> None:
        if self.width < 1:
            raise DesignError(f"width must be >= 1: {self.width}")
        if not 1 <= self.granularity <= self.width:
            raise DesignError(
                f"granularity must be in 1..{self.width}: "
                f"{self.granularity}")

    def build(self, balanced: bool = True):
        """Construct the gate netlist (inputs ``a*``, ``b*``, ``cin``;
        outputs ``s*``, ``cout``)."""
        from ..digital.netlist import GateNetlist
        from ..digital.pipeline import balance_pipeline

        netlist = GateNetlist(f"adder{self.width}_g{self.granularity}")
        a = [netlist.add_input(f"a{i}") for i in range(self.width)]
        b = [netlist.add_input(f"b{i}") for i in range(self.width)]
        carry = netlist.add_input("cin")

        for i in range(self.width):
            boundary = (i + 1) % self.granularity == 0
            sum_cell, carry_cell = full_adder_cells(pipelined=boundary)
            netlist.add_gate(f"fa{i}_sum", sum_cell,
                             [a[i], b[i], carry], f"s{i}")
            netlist.add_gate(f"fa{i}_carry", carry_cell,
                             [a[i], b[i], carry], f"c{i + 1}")
            carry = f"c{i + 1}"
            netlist.mark_output(f"s{i}")
        netlist.mark_output(carry)
        netlist.validate()
        if balanced and self.granularity < self.width:
            netlist = balance_pipeline(netlist)
        return netlist

    def pdp_per_stage(self, design: StsclGateDesign, vdd: float) -> float:
        """Power-delay product of one full-adder stage [J] (ref [13]'s
        figure of merit): two tail currents for one gate delay."""
        return 2.0 * design.power(vdd) * design.delay()

    def simulate_add(self, netlist, x: int, y: int,
                     carry_in: bool = False) -> int:
        """Drive the netlist with one operand pair and return the sum.

        Handles pipeline flushing automatically; works for both flat and
        balanced netlists.
        """
        from ..digital.simulator import CycleSimulator

        mask = (1 << self.width) - 1
        if not 0 <= x <= mask or not 0 <= y <= mask:
            raise DesignError("operand out of range")
        vector = {"cin": carry_in}
        for i in range(self.width):
            vector[f"a{i}"] = bool((x >> i) & 1)
            vector[f"b{i}"] = bool((y >> i) & 1)
        simulator = CycleSimulator(netlist)
        flush = simulator.latency() + 1
        values = None
        for _cycle in range(flush):
            values = simulator.step(vector)
        total = 0
        for k, net in enumerate(netlist.primary_outputs):
            if values[net]:
                total += 1 << k
        return total
