"""Transistor-level STSCL gate testbenches as scope measurements.

The paper's gate-level claims -- propagation delay tracking
ln2 * V_SW * C_L / I_SS, output swing pinned at V_SW, the ring
oscillator's f = 1/(2 N t_d) -- are all *measurements on waveforms*.
This module runs the standard transistor-level testbenches (buffer
chain, ring oscillator) through the streaming capture layer and
returns :mod:`repro.scope.measure` report objects, so integration
tests, benchmarks and the fault harness all quote the same metrology
instead of re-deriving crossing arithmetic inline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DesignError
from ..scope import (
    DelayReport,
    EdgeTrigger,
    PeriodReport,
    Probe,
    ScopeSession,
    SlewReport,
    SwingReport,
    measure,
)
from ..spice import TransientOptions, transient
from ..spice.waveforms import step_wave
from .gate_model import StsclGateDesign
from .netlist_gen import (
    stscl_buffer_chain_circuit,
    stscl_ring_oscillator_circuit,
)


@dataclass(frozen=True)
class GateCharacterization:
    """One gate's measured numbers from the buffer-chain testbench."""

    delay: DelayReport        # one-stage propagation delay
    rise: SlewReport          # 10/90 rise of the last stage's outp
    swing: SwingReport        # single-ended output swing (paper's V_SW)
    delay_analytic: float     # the closed-form t_d for comparison [s]

    @property
    def delay_ratio(self) -> float:
        """Measured / analytic delay (self-loading makes this > 1)."""
        return self.delay.delay / self.delay_analytic

    def describe(self) -> str:
        return (f"t_pd {self.delay.delay:.4g} s "
                f"({self.delay_ratio:.2f}x analytic), "
                f"{self.rise.describe()}, {self.swing.describe()}")


def buffer_chain_capture(design: StsclGateDesign, vdd: float,
                         n_stages: int = 3,
                         replace_dense: bool = True) -> ScopeSession:
    """Run the delay testbench and return its triggered capture.

    A step drives an ``n_stages`` buffer chain; differential probes sit
    on the last two stages and the trigger is the second-to-last
    stage's differential zero crossing -- so the window holds exactly
    the edge whose stage-to-stage delay is the gate's t_pd, plus the
    single-ended last-stage output for slew/swing extraction.  With
    ``replace_dense`` (default) the run's waveform memory is just this
    window, however long the transient.
    """
    if n_stages < 2:
        raise DesignError(
            f"delay extraction needs >= 2 stages: {n_stages}")
    t_d = design.delay()
    high, low = vdd, vdd - design.v_sw
    circuit, _ports = stscl_buffer_chain_circuit(
        design, vdd, n_stages,
        in_p=step_wave(low, high, 5.0 * t_d, t_d / 10.0),
        in_n=step_wave(high, low, 5.0 * t_d, t_d / 10.0))
    a, b = n_stages - 1, n_stages
    session = ScopeSession(
        probes=[Probe(f"s{a}_outp", f"s{a}_outn", label="y_prev"),
                Probe(f"s{b}_outp", f"s{b}_outn", label="y_last"),
                Probe(f"s{b}_outp", label="outp_last")],
        trigger=EdgeTrigger("y_prev", level=0.0, direction="either"),
        pre_samples=64, post_samples=192,
        replace_dense=replace_dense)
    transient(circuit, 25.0 * t_d,
              TransientOptions(dt_max=t_d / 25.0), scope=session)
    return session


def measure_gate_delay(design: StsclGateDesign,
                       vdd: float = 1.0) -> DelayReport:
    """Propagation delay of one STSCL buffer stage, measured.

    The stage-to-stage delay between the last two stages of a 3-buffer
    chain (first stage absorbs the ideal source's fast edge), measured
    at the differential zero crossings.
    """
    seg = buffer_chain_capture(design, vdd).segment()
    return measure.propagation_delay(
        seg.time, seg.signal("y_prev"), seg.signal("y_last"),
        level_in=0.0, level_out=0.0, edge_in=None, edge_out=None)


def characterize_gate(design: StsclGateDesign, vdd: float = 1.0,
                      segment=None) -> GateCharacterization:
    """Delay + slew + swing of one gate from a single captured window.

    ``segment`` reuses an existing :func:`buffer_chain_capture` window
    instead of re-running the testbench transient.
    """
    seg = (buffer_chain_capture(design, vdd).segment()
           if segment is None else segment)
    delay = measure.propagation_delay(
        seg.time, seg.signal("y_prev"), seg.signal("y_last"),
        level_in=0.0, level_out=0.0, edge_in=None, edge_out=None)
    outp = seg.signal("outp_last")
    kind = "rise" if outp[-1] > outp[0] else "fall"
    slew = measure.transition_time(seg.time, outp, kind=kind)
    # Swing on the single-ended output: min..max over the captured
    # edge is exactly low -> high, i.e. the paper's V_SW.
    swing = measure.output_swing(seg.time, outp)
    return GateCharacterization(delay=delay, rise=slew, swing=swing,
                                delay_analytic=design.delay())


def measure_ring_period(design: StsclGateDesign, vdd: float = 1.0,
                        n_stages: int = 3,
                        n_periods: float = 12.0) -> PeriodReport:
    """Period/duty/jitter of the STSCL ring oscillator, measured.

    Streams the first ring stage's differential output for
    ``n_periods`` ideal periods (2 N t_d each) and extracts the cycle
    statistics -- the VCO characterization the paper's PLL rides on.
    """
    circuit, _ports = stscl_ring_oscillator_circuit(design, vdd,
                                                    n_stages)
    t_d = design.delay()
    session = ScopeSession(
        probes=[Probe("s1_outp", "s1_outn", label="y1")],
        trigger=None, replace_dense=True)
    transient(circuit, n_periods * 2.0 * n_stages * t_d,
              TransientOptions(dt_max=t_d / 20.0), scope=session)
    seg = session.segment()
    return measure.period_and_jitter(seg.time, seg.signal("y1"),
                                     level=0.0)
