"""The paper's Eq. (1) power model and the pipelining trade-off.

Eq. (1):  P_STSCL = k * N_L * f_op * V_DD,   k = 2 ln2 * V_SW * C_L

reads: a cell on the critical path of a system clocked at f_op with
longest logic depth N_L must be biased at

    I_SS = 2 ln2 * V_SW * C_L * N_L * f_op

so its power is linear in operating frequency -- the property the PMU
exploits -- but also linear in logic depth, which is why the paper
pipelines the encoder down to depth ~1 (Sec. III-B) and merges functions
into compound stacked cells.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import LN2
from ..errors import DesignError


def required_tail_current(v_sw: float, c_load: float, logic_depth: int,
                          f_op: float) -> float:
    """I_SS needed for a critical-path cell (inverse of Eq. 1) [A]."""
    if min(v_sw, c_load, f_op) <= 0.0:
        raise DesignError("v_sw, c_load and f_op must be positive")
    if logic_depth < 1:
        raise DesignError(f"logic depth must be >= 1: {logic_depth}")
    return 2.0 * LN2 * v_sw * c_load * logic_depth * f_op


def eq1_cell_power(v_sw: float, c_load: float, logic_depth: int,
                   f_op: float, vdd: float) -> float:
    """Paper Eq. (1): per-cell power at the required bias [W]."""
    if vdd <= 0.0:
        raise DesignError(f"vdd must be positive: {vdd}")
    return required_tail_current(v_sw, c_load, logic_depth, f_op) * vdd


def system_power(n_tails: int, i_ss: float, vdd: float) -> float:
    """Total static power of ``n_tails`` tail currents at ``i_ss`` [W].

    STSCL consumes exactly this -- there is no activity-dependent or
    leakage component, which is the deterministic-power claim of
    Sec. II-A2.
    """
    if n_tails < 0:
        raise DesignError(f"n_tails must be >= 0: {n_tails}")
    if i_ss <= 0.0 or vdd <= 0.0:
        raise DesignError("i_ss and vdd must be positive")
    return n_tails * i_ss * vdd


@dataclass(frozen=True)
class PipeliningResult:
    """Outcome of pipelining a block (experiment E9).

    Attributes:
        power_flat: Total power with the original logic depth [W].
        power_pipelined: Total power at depth 1 with latch overhead [W].
        gain: power_flat / power_pipelined.
        i_ss_flat: Per-gate bias in the flat design [A].
        i_ss_pipelined: Per-gate bias after pipelining [A].
    """

    power_flat: float
    power_pipelined: float
    gain: float
    i_ss_flat: float
    i_ss_pipelined: float


def pipelining_gain(n_gates: int, logic_depth: int, f_op: float,
                    v_sw: float, c_load: float, vdd: float,
                    latch_overhead: float = 0.0) -> PipeliningResult:
    """Quantify the Sec. III-B pipelining power reduction.

    The flat design biases every gate for the full depth-N_L critical
    path; the pipelined design reduces the depth to one gate per clock
    phase.  ``latch_overhead`` is the *fraction of additional tail
    currents* added by pipelining -- zero when latches merge into
    existing cells (the compound Fig. 8 style), up to ~1.0 when every
    gate gets a discrete output latch.
    """
    if n_gates < 1:
        raise DesignError(f"n_gates must be >= 1: {n_gates}")
    if latch_overhead < 0.0:
        raise DesignError(f"latch_overhead must be >= 0: {latch_overhead}")
    i_flat = required_tail_current(v_sw, c_load, logic_depth, f_op)
    i_pipe = required_tail_current(v_sw, c_load, 1, f_op)
    power_flat = system_power(n_gates, i_flat, vdd)
    n_pipe_tails = int(round(n_gates * (1.0 + latch_overhead)))
    power_pipe = system_power(n_pipe_tails, i_pipe, vdd)
    return PipeliningResult(
        power_flat=power_flat, power_pipelined=power_pipe,
        gain=power_flat / power_pipe,
        i_ss_flat=i_flat, i_ss_pipelined=i_pipe)
