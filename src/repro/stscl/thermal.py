"""Temperature behaviour: the other axis of the Fig. 3 decoupling.

The paper claims STSCL is "less sensitive to the process and
temperature variations".  The structure of the claim:

* STSCL delay t_d = ln2 V_SW C_L / I_SS contains no temperature-
  dependent quantity at all (the replica loop holds V_SW; I_SS is a
  mirrored reference) -- sensitivity ~ 0;
* STSCL gain/noise margin degrade only as 1/U_T ~ 1/T -- gentle and
  predictable;
* subthreshold CMOS on-current rides on exp(-V_T(T)/(n U_T(T))): both
  the threshold drop (~ -1 mV/K) and the widening thermal voltage push
  the current up (and the delay down) *exponentially* -- decades over
  the industrial range.

This module quantifies all three for the benchmarks and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..constants import celsius_to_kelvin, thermal_voltage
from ..digital.cmos_baseline import CmosGateModel
from ..errors import ModelError
from .gate_model import StsclGateDesign


@dataclass(frozen=True)
class ThermalPoint:
    """One row of the temperature comparison.

    Attributes:
        temp_c: Junction temperature [degC].
        stscl_delay: STSCL gate delay [s].
        stscl_noise_margin: STSCL static noise margin [V].
        cmos_delay: Subthreshold CMOS gate delay at the given supply [s].
    """

    temp_c: float
    stscl_delay: float
    stscl_noise_margin: float
    cmos_delay: float


def thermal_comparison(design: StsclGateDesign,
                       temps_c=(-20.0, 27.0, 85.0),
                       cmos_vdd: float = 0.4) -> list[ThermalPoint]:
    """STSCL vs subthreshold CMOS across junction temperature.

    The STSCL tail current is assumed held by its reference (the
    paper's replica/mirror bias), so its delay column reflects the
    architecture: nothing in it moves with T.
    """
    if len(tuple(temps_c)) < 2:
        raise ModelError("need at least two temperatures to compare")
    rows = []
    for temp_c in temps_c:
        temp_k = celsius_to_kelvin(float(temp_c))
        scl = replace(design, temperature=temp_k)
        cmos = CmosGateModel(temperature=temp_k)
        rows.append(ThermalPoint(
            temp_c=float(temp_c),
            stscl_delay=scl.delay(),
            stscl_noise_margin=scl.noise_margin(),
            cmos_delay=cmos.delay(cmos_vdd)))
    return rows


def delay_spread(rows: list[ThermalPoint], column: str) -> float:
    """max/min ratio of a delay column over the temperature range."""
    values = np.array([getattr(r, column) for r in rows])
    if np.any(values <= 0.0):
        raise ModelError(f"non-positive entries in {column}")
    return float(values.max() / values.min())


def noise_margin_slope(rows: list[ThermalPoint]) -> float:
    """Noise-margin temperature coefficient [V/K] (linear fit).

    Expected ~ -(V_SW/2) * (2/A^2-ish) * n k/q -- small and linear; the
    number the designer budgets, in contrast to CMOS's exponentials.
    """
    temps = np.array([r.temp_c for r in rows])
    margins = np.array([r.stscl_noise_margin for r in rows])
    return float(np.polyfit(temps, margins, 1)[0])


def gain_over_temperature(design: StsclGateDesign,
                          temps_c=(-20.0, 27.0, 85.0)) -> np.ndarray:
    """Stage gain V_SW/(2 n U_T) across temperature (drops as 1/T)."""
    gains = []
    for temp_c in temps_c:
        temp_k = celsius_to_kelvin(float(temp_c))
        ut = thermal_voltage(temp_k)
        gains.append(design.v_sw / (2.0 * design.tech.nmos.n * ut))
    return np.asarray(gains)
