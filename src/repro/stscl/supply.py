"""Minimum supply voltage of an STSCL gate (paper Fig. 9b) and the
supply-sensitivity comparison against subthreshold CMOS (Fig. 3).

The minimum V_DD is found from the headroom chain of the worst-case
(fully switched) gate: starting from the output-low level V_DD - V_SW,
each stacked NMOS pair level drops the voltage needed to carry the full
tail current with its gate driven at the logic-high level (V_DD), and
the node under the bottom level -- the tail node -- must still leave the
tail current source its saturation voltage.  Because every drop is a
weak-inversion V_GS-like quantity, V_DD,min falls logarithmically as
I_SS shrinks: the paper's "<0.5 V below 10 nA, 0.35 V below 1 nA".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from ..constants import thermal_voltage
from ..devices.ekv import saturation_voltage
from ..errors import DesignError
from .gate_model import StsclGateDesign


def _level_source_voltage(design: StsclGateDesign, v_drain: float,
                          v_gate: float) -> float:
    """Source voltage at which one pair level carries the full I_SS.

    Solves I_D(v_drain, v_gate, v_s) = I_SS for v_s; the EKV model covers
    both the saturated and the triode-limited case.  Raises when even a
    grounded source cannot carry the current (supply infeasible).
    """
    device = design.pair_device()

    def error(v_s: float) -> float:
        op = device.evaluate(vd=v_drain, vg=v_gate, vs=v_s, vb=0.0,
                             temperature=design.temperature)
        return op.ids - design.i_ss

    lo, hi = -0.2, v_drain - 1e-6
    if hi <= lo:
        raise DesignError("drain node collapsed below ground")
    if error(lo) < 0.0:
        raise DesignError(
            f"pair device cannot carry {design.i_ss:.2e} A "
            f"with drain at {v_drain:.3f} V")
    if error(hi) > 0.0:
        # Even with the source just under the drain the device conducts
        # too much -- only possible for enormous currents; treat as the
        # boundary itself.
        return hi
    return float(brentq(error, lo, hi, xtol=1e-9))


def minimum_supply(design: StsclGateDesign,
                   margin: float = 0.0) -> float:
    """Minimum V_DD at which the gate still develops full swing [V].

    Walks the stacked levels of the design's worst-case cell and finds
    the supply at which the tail node exactly reaches the tail source's
    saturation voltage, plus an optional designer ``margin``.
    """
    ut = thermal_voltage(design.temperature)
    tail = design.tail_device()
    ic_tail = design.i_ss / tail.specific_current(design.temperature)
    v_tail_needed = float(saturation_voltage(ic_tail, ut))

    def tail_voltage(vdd: float) -> float:
        node = vdd - design.v_sw  # output-low: worst headroom
        for _level in range(design.stack_levels):
            node = _level_source_voltage(design, node, vdd)
        return node

    def headroom(vdd: float) -> float:
        try:
            return tail_voltage(vdd) - v_tail_needed
        except DesignError:
            return -1.0

    lo = design.v_sw + v_tail_needed  # absolute floor
    hi = 2.0
    if headroom(hi) < 0.0:
        raise DesignError(
            "gate cannot reach full swing even at 2 V; check sizing")
    if headroom(lo) > 0.0:
        return lo + margin
    return float(brentq(headroom, lo, hi, xtol=1e-6)) + margin


def minimum_supply_sweep(design: StsclGateDesign,
                         currents) -> np.ndarray:
    """V_DD,min across tail currents (the Fig. 9b curve)."""
    return np.array([
        minimum_supply(design.with_current(float(i))) for i in currents])


@dataclass(frozen=True)
class SensitivityComparison:
    """Normalised supply sensitivities S = (dt_d/dV_DD)*(V_DD/t_d).

    ``stscl`` is structurally ~0 (V_DD absent from the delay law);
    ``cmos_subthreshold`` is 1 - V_DD/(n U_T): tens of units, because the
    on-current is exponential in V_DD.  This is the quantitative content
    of the paper's Fig. 3 contrast.
    """

    stscl: float
    cmos_subthreshold: float
    vdd: float


def supply_sensitivity(vdd: float, n: float = 1.3,
                       temperature: float | None = None) -> SensitivityComparison:
    """Analytic delay-vs-supply sensitivity of both families at ``vdd``.

    For subthreshold CMOS, t_d ~ C V_DD / I_on with I_on ~ exp(V_DD/(n U_T))
    (the gate overdrive rides on the supply), so the normalised
    sensitivity is 1 - V_DD / (n U_T).  For STSCL, t_d = ln2 V_SW C / I_SS
    contains no V_DD at all.
    """
    if vdd <= 0.0:
        raise DesignError(f"vdd must be positive: {vdd}")
    from ..constants import T_NOMINAL
    ut = thermal_voltage(T_NOMINAL if temperature is None else temperature)
    return SensitivityComparison(
        stscl=0.0,
        cmos_subthreshold=1.0 - vdd / (n * ut),
        vdd=vdd)
