"""Gate-load estimation: where the C_L in Eq. (1) comes from.

The repo-wide default C_L = 35 fF is a calibration constant; this
module derives the load of an actual net from its physical pieces so a
designer can check the constant against their own netlist:

    C_L = C_self + fanout * C_gate_in + length * C_wire

* C_self: the driving cell's own drain junctions (both output legs);
* C_gate_in: one receiving pair transistor's gate capacitance;
* C_wire: the technology's per-length metal capacitance.

The E1 calibration is consistent when a fan-out-2 net with ~100 um of
local wiring lands near 35 fF -- pinned by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DesignError
from .gate_model import StsclGateDesign


@dataclass(frozen=True)
class LoadBreakdown:
    """Per-mechanism decomposition of one net's load [F]."""

    self_loading: float
    gate_loading: float
    wire_loading: float

    @property
    def total(self) -> float:
        return self.self_loading + self.gate_loading + self.wire_loading


def estimate_load(design: StsclGateDesign, fanout: int = 2,
                  wire_um: float = 100.0) -> LoadBreakdown:
    """Estimate the effective C_L of a net driven by ``design``.

    ``fanout`` receiving gates, ``wire_um`` micrometres of routing.
    """
    if fanout < 0:
        raise DesignError(f"fanout must be >= 0: {fanout}")
    if wire_um < 0.0:
        raise DesignError(f"wire length must be >= 0: {wire_um}")
    pair = design.pair_device()
    load_device = design.load_device()
    caps_pair = pair.capacitances()
    caps_load = load_device.capacitances()
    # Output node: pair drain junction + gate-drain, and the PMOS load
    # device's drain-side capacitances (bulk rides with the drain, so
    # its gate-bulk term appears at the output too).
    self_loading = (caps_pair[("d", "b")] + caps_pair[("g", "d")]
                    + caps_load[("d", "b")] + caps_load[("g", "d")]
                    + caps_load[("g", "b")])
    gate_loading = fanout * pair.gate_capacitance()
    wire_loading = wire_um * design.tech.metal_cap_per_um * 1.0
    return LoadBreakdown(self_loading=self_loading,
                         gate_loading=gate_loading,
                         wire_loading=wire_loading)


def supported_fanout(design: StsclGateDesign,
                     wire_um: float = 100.0) -> int:
    """Largest fanout whose estimated load stays within the design's
    budgeted ``c_load`` (so Eq. (1) timing still holds)."""
    fanout = 0
    while estimate_load(design, fanout + 1,
                        wire_um).total <= design.c_load:
        fanout += 1
        if fanout > 64:
            break
    return fanout
