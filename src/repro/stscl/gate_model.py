"""Analytic model of one STSCL gate (paper Fig. 2 and Sec. II-A).

This is the design-entry object of the whole platform: every higher
layer (digital netlists, the ADC encoder, the PMU) speaks in terms of a
:class:`StsclGateDesign` and its delay/power laws.

Model summary (all derived in refs [9]-[11] of the paper):

* Load resistance     R_L  = V_SW / I_SS
* Gate delay          t_d  = ln2 * R_L * C_L = ln2 * V_SW * C_L / I_SS
* Static power        P    = I_SS * V_DD      (the only current drawn)
* Small-signal gain   A    = g_m R_L = V_SW / (2 n U_T)   (weak inversion)
* Max. clock rate at logic depth N_L:
      f_op,max = I_SS / (2 ln2 * V_SW * C_L * N_L)        (inverse Eq. 1)

The V_DD independence of t_d and the noise margin is structural: V_DD
appears in none of the expressions above -- the property experiments E6
and E7 verify against the transistor-level simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..constants import LN2, T_NOMINAL, thermal_voltage
from ..devices.ekv import gate_voltage_for_current, saturation_voltage
from ..devices.mosfet import Mosfet
from ..devices.parameters import (GENERIC_180NM, MosParameters, Technology)
from ..errors import DesignError

#: Output voltage swing used throughout the paper [V] ("maintaining a
#: signal swing of 200 mV", Sec. III-C).
DEFAULT_V_SW = 0.2

#: Effective load capacitance of a gate driving a typical fan-out of 2-3
#: plus local wiring [F].  Calibrated so that the encoder's maximum
#: sampling rate (with its depth-1.3 stacked-majority critical cell)
#: matches the paper's 800 S/s @ ~10 pA/gate and 80 kS/s @ ~1 nA/gate
#: anchors (DESIGN.md section 5).
DEFAULT_C_LOAD = 35e-15


@dataclass(frozen=True)
class StsclGateDesign:
    """A sized STSCL gate with its electrical design point.

    Attributes:
        i_ss: Tail bias current [A] -- the single tuning knob.
        v_sw: Output voltage swing [V].
        c_load: Effective output load capacitance [F].
        tech: Technology providing the device flavours.
        pair_w / pair_l: Switching-pair device size [m].
        tail_w / tail_l: Tail current-source size [m] (high-VT flavour).
        load_w / load_l: PMOS load size [m] (thick-oxide flavour).
        stack_levels: Number of stacked NMOS differential-pair levels in
            the most complex gate of the design (a plain inverter/buffer
            is 1; the Fig. 8 majority-with-latch cell is 3).
        temperature: Junction temperature [K].
    """

    i_ss: float
    v_sw: float = DEFAULT_V_SW
    c_load: float = DEFAULT_C_LOAD
    tech: Technology = field(default_factory=lambda: GENERIC_180NM)
    pair_w: float = 2.0e-6
    pair_l: float = 1.0e-6
    tail_w: float = 2.0e-6
    tail_l: float = 1.0e-6
    load_w: float = 0.4e-6
    load_l: float = 1.0e-6
    stack_levels: int = 2
    temperature: float = T_NOMINAL

    def __post_init__(self) -> None:
        if self.i_ss <= 0.0:
            raise DesignError(f"tail current must be positive: {self.i_ss}")
        if not 0.0 < self.v_sw < 1.0:
            raise DesignError(f"swing {self.v_sw} V outside (0, 1) V")
        if self.c_load <= 0.0:
            raise DesignError(f"load capacitance must be positive: "
                              f"{self.c_load}")
        if self.stack_levels < 1:
            raise DesignError("stack_levels must be >= 1")
        # The regeneration condition for SCL logic: gain > 1 needs
        # V_SW > 2 n U_T; enforce the practical limit of ~4 U_T.
        ut = thermal_voltage(self.temperature)
        n = self.tech.nmos.n
        if self.v_sw < 4.0 * ut:
            raise DesignError(
                f"swing {self.v_sw:.3f} V below the 4*U_T = {4 * ut:.3f} V "
                "regeneration limit for source-coupled logic")
        del n

    @classmethod
    def default(cls, i_ss: float, **overrides) -> "StsclGateDesign":
        """The repo-standard gate at tail current ``i_ss``."""
        return cls(i_ss=i_ss, **overrides)

    def with_current(self, i_ss: float) -> "StsclGateDesign":
        """Same design retuned to a new tail current (the PMU operation)."""
        return replace(self, i_ss=i_ss)

    # -- derived electrical quantities ------------------------------------

    @property
    def load_resistance(self) -> float:
        """R_L = V_SW / I_SS [ohm]; each output sees this to V_DD."""
        return self.v_sw / self.i_ss

    def delay(self) -> float:
        """Gate propagation delay t_d = ln2 * R_L * C_L [s]."""
        return LN2 * self.load_resistance * self.c_load

    def time_constant(self) -> float:
        """Output RC time constant [s]."""
        return self.load_resistance * self.c_load

    def power(self, vdd: float) -> float:
        """Static power I_SS * V_DD [W] -- the gate's only consumption."""
        if vdd <= 0.0:
            raise DesignError(f"vdd must be positive: {vdd}")
        return self.i_ss * vdd

    def energy_per_transition(self, vdd: float) -> float:
        """Power-delay product [J]."""
        return self.power(vdd) * self.delay()

    def max_frequency(self, logic_depth: int = 1) -> float:
        """Maximum clock rate at ``logic_depth`` gates per cycle [Hz].

        Inverse of the paper's Eq. (1): the critical path of N_L gate
        delays must fit in half a clock period with the classic 2x
        settling allowance folded into the ln2 constant.
        """
        if logic_depth < 1:
            raise DesignError(f"logic depth must be >= 1: {logic_depth}")
        return self.i_ss / (2.0 * LN2 * self.v_sw * self.c_load
                            * logic_depth)

    def small_signal_gain(self) -> float:
        """DC gain A = g_m * R_L = V_SW / (2 n U_T) of the pair."""
        ut = thermal_voltage(self.temperature)
        return self.v_sw / (2.0 * self.tech.nmos.n * ut)

    def noise_margin(self) -> float:
        """Approximate static noise margin [V].

        NM ~ (V_SW / 2) * (1 - 2 / A); independent of V_DD and of I_SS
        (both V_SW and A are current-free), which is the Fig. 3(b)
        decoupling argument.
        """
        gain = self.small_signal_gain()
        if gain <= 2.0:
            return 0.0
        return 0.5 * self.v_sw * (1.0 - 2.0 / gain)

    # -- device views ------------------------------------------------------

    def pair_device(self) -> Mosfet:
        """One transistor of the NMOS switching pair."""
        return Mosfet(self.tech.nmos, w=self.pair_w, l=self.pair_l)

    def tail_device(self) -> Mosfet:
        """The high-VT tail current source M_B."""
        return Mosfet(self.tech.nmos_hvt, w=self.tail_w, l=self.tail_l)

    def load_device(self) -> Mosfet:
        """One thick-oxide PMOS load device."""
        return Mosfet(self.tech.pmos_thick, w=self.load_w, l=self.load_l)

    def pair_gate_overdrive(self) -> float:
        """V_GS of a pair transistor carrying the full I_SS [V]."""
        device = self.pair_device()
        ut = thermal_voltage(self.temperature)
        return float(gate_voltage_for_current(
            self.i_ss, device.specific_current(self.temperature),
            self.tech.nmos.vt_at(self.temperature), self.tech.nmos.n, ut))

    def tail_saturation_voltage(self) -> float:
        """V_DS,sat of the tail source at its inversion level [V]."""
        device = self.tail_device()
        ut = thermal_voltage(self.temperature)
        ic = self.i_ss / device.specific_current(self.temperature)
        return float(saturation_voltage(ic, ut))

    def inversion_coefficient(self) -> float:
        """IC of a pair transistor at full tail current."""
        return self.i_ss / self.pair_device().specific_current(
            self.temperature)

    def is_subthreshold(self) -> bool:
        """True when the switching pair stays in weak inversion."""
        return self.inversion_coefficient() < 0.1

    def summary(self) -> dict[str, float]:
        """Headline numbers for reports and examples."""
        return {
            "i_ss": self.i_ss,
            "v_sw": self.v_sw,
            "c_load": self.c_load,
            "load_resistance": self.load_resistance,
            "delay": self.delay(),
            "gain": self.small_signal_gain(),
            "noise_margin": self.noise_margin(),
            "f_max_depth1": self.max_frequency(1),
            "inversion_coefficient": self.inversion_coefficient(),
        }
