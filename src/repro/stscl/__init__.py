"""Subthreshold source-coupled logic (STSCL): the paper's core digital idea.

An STSCL gate (paper Fig. 2) is an NMOS differential switching network
biased by a tail current I_SS, loaded by bulk-drain-shorted PMOS devices
acting as very-high-valued resistors R_L = V_SW / I_SS.  Its properties,
all modelled here:

* delay  t_d = ln2 * V_SW * C_L / I_SS  -- set *only* by the tail current;
* power  P = I_SS * V_DD -- static, exactly known, leakage-free by design;
* speed and noise margin independent of V_DD (experiments E2, E6, E7);
* inversion is free (swap the differential wires);
* stacked differential pairs merge several functions into one tail
  current (the Fig. 8 majority cell);
* a latch merged into any gate enables depth-1 pipelining (Sec. III-B).
"""

from .gate_model import StsclGateDesign, DEFAULT_V_SW, DEFAULT_C_LOAD
from .load import HighValueLoad, ReplicaBias
from .library import (
    CellKind,
    StsclCell,
    STANDARD_CELLS,
    cell,
)
from .power import (
    eq1_cell_power,
    required_tail_current,
    system_power,
    pipelining_gain,
)
from .supply import minimum_supply, supply_sensitivity
from .netlist_gen import (
    stscl_inverter_circuit,
    stscl_buffer_chain_circuit,
    replica_bias_circuit,
    stscl_majority_circuit,
    stscl_tree_circuit,
    stscl_latch_circuit,
    stscl_ring_oscillator_circuit,
)
from .testbench import (
    GateCharacterization,
    buffer_chain_capture,
    characterize_gate,
    measure_gate_delay,
    measure_ring_period,
)
from .adder import PipelinedAdder, full_adder_cells
from .loading import LoadBreakdown, estimate_load, supported_fanout
from .thermal import (
    ThermalPoint,
    delay_spread,
    gain_over_temperature,
    noise_margin_slope,
    thermal_comparison,
)

__all__ = [
    "StsclGateDesign", "DEFAULT_V_SW", "DEFAULT_C_LOAD",
    "HighValueLoad", "ReplicaBias",
    "CellKind", "StsclCell", "STANDARD_CELLS", "cell",
    "eq1_cell_power", "required_tail_current", "system_power",
    "pipelining_gain",
    "minimum_supply", "supply_sensitivity",
    "stscl_inverter_circuit", "stscl_buffer_chain_circuit",
    "replica_bias_circuit", "stscl_majority_circuit",
    "stscl_tree_circuit", "stscl_latch_circuit",
    "stscl_ring_oscillator_circuit",
    "GateCharacterization", "buffer_chain_capture", "characterize_gate",
    "measure_gate_delay", "measure_ring_period",
    "PipelinedAdder", "full_adder_cells",
    "LoadBreakdown", "estimate_load", "supported_fanout",
    "ThermalPoint", "delay_spread", "gain_over_temperature",
    "noise_margin_slope", "thermal_comparison",
]
