"""The STSCL standard-cell library.

Source-coupled logic is differential, which shapes the library in ways
that differ from static CMOS:

* **Inversion is free** -- swapping the two output wires negates a
  signal at zero cost (no tail current, no delay).  The library models
  INV as a zero-cost cell.
* **Power is function-independent** -- every cell burns exactly one tail
  current I_SS regardless of its logic function, so merging functions
  into *compound* cells (stacked differential pairs, paper Sec. III-B)
  is a direct power win.
* **A latch merges into any cell** -- adding a clocked cross-coupled
  pair turns a gate into a pipelined gate for one extra stack level but
  no extra tail current (the Fig. 8 majority-with-latch cell).

Cell delay equals the generic gate delay of the owning
:class:`~repro.stscl.gate_model.StsclGateDesign` -- in SCL all cells see
the same output R_L C_L -- with a small stacking penalty per level.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Sequence

from ..errors import DesignError

#: Relative delay penalty per stacked level above the first (the upper
#: pairs see slightly degraded switching; refs [10], [13] report a minor
#: effect).
STACK_DELAY_PENALTY = 0.15


class CellKind(enum.Enum):
    """Functional families the digital tools dispatch on."""

    COMBINATIONAL = "combinational"
    LATCH = "latch"
    FLIPFLOP = "flipflop"
    FREE = "free"  # wire-swap pseudo-cells


@dataclass(frozen=True)
class StsclCell:
    """One library cell.

    Attributes:
        name: Library name (e.g. ``"MAJ3"``).
        n_inputs: Number of logical data inputs (clock excluded).
        function: Boolean function over the data inputs; for latches it is
            the D -> Q transparency function.
        stack_levels: Stacked NMOS pair levels (1..3 practical).
        tails: Tail-current branches the cell burns (0 for free cells,
            2 for the master-slave flip-flop).
        kind: Functional family.
        pipelined: True when the cell embeds an output latch (Fig. 8
            style); such a cell both computes and registers.
    """

    name: str
    n_inputs: int
    function: Callable[[tuple[bool, ...]], bool]
    stack_levels: int
    tails: int = 1
    kind: CellKind = CellKind.COMBINATIONAL
    pipelined: bool = False

    def __post_init__(self) -> None:
        if self.n_inputs < 0:
            raise DesignError(f"{self.name}: negative input count")
        if self.stack_levels < 0 or self.stack_levels > 4:
            raise DesignError(
                f"{self.name}: {self.stack_levels} stacked levels is "
                "outside the practical 0..4 range")
        if self.tails < 0:
            raise DesignError(f"{self.name}: negative tail count")

    def evaluate(self, inputs: Sequence[bool]) -> bool:
        """Apply the cell's boolean function."""
        if len(inputs) != self.n_inputs:
            raise DesignError(
                f"{self.name} expects {self.n_inputs} inputs, "
                f"got {len(inputs)}")
        return bool(self.function(tuple(bool(v) for v in inputs)))

    def delay_factor(self) -> float:
        """Delay relative to the base gate delay of the design point."""
        if self.kind is CellKind.FREE:
            return 0.0
        extra = max(0, self.stack_levels - 1)
        return 1.0 + STACK_DELAY_PENALTY * extra


def _maj3(v: tuple[bool, ...]) -> bool:
    return (v[0] and v[1]) or (v[0] and v[2]) or (v[1] and v[2])


def _build_standard_cells() -> dict[str, StsclCell]:
    cells = [
        StsclCell("INV", 1, lambda v: not v[0], stack_levels=0, tails=0,
                  kind=CellKind.FREE),
        StsclCell("BUF", 1, lambda v: v[0], stack_levels=1),
        StsclCell("AND2", 2, lambda v: v[0] and v[1], stack_levels=2),
        StsclCell("NAND2", 2, lambda v: not (v[0] and v[1]), stack_levels=2),
        StsclCell("OR2", 2, lambda v: v[0] or v[1], stack_levels=2),
        StsclCell("NOR2", 2, lambda v: not (v[0] or v[1]), stack_levels=2),
        StsclCell("XOR2", 2, lambda v: v[0] != v[1], stack_levels=2),
        StsclCell("XNOR2", 2, lambda v: v[0] == v[1], stack_levels=2),
        StsclCell("MUX2", 3, lambda v: v[1] if v[0] else v[2],
                  stack_levels=2),
        StsclCell("AND3", 3, lambda v: v[0] and v[1] and v[2],
                  stack_levels=3),
        StsclCell("OR3", 3, lambda v: v[0] or v[1] or v[2], stack_levels=3),
        StsclCell("XOR3", 3, lambda v: (v[0] != v[1]) != v[2],
                  stack_levels=3),
        StsclCell("MAJ3", 3, _maj3, stack_levels=3),
        StsclCell("DLATCH", 1, lambda v: v[0], stack_levels=2,
                  kind=CellKind.LATCH),
        StsclCell("DFF", 1, lambda v: v[0], stack_levels=2, tails=2,
                  kind=CellKind.FLIPFLOP),
        # Fig. 8: the compound majority-with-latch pipelined cell -- three
        # stacked pair levels doing MAJ3 plus a clocked hold pair, all on
        # one tail current.
        StsclCell("MAJ3_PIPE", 3, _maj3, stack_levels=3, pipelined=True),
        StsclCell("XOR2_PIPE", 2, lambda v: v[0] != v[1], stack_levels=2,
                  pipelined=True),
        StsclCell("AND2_PIPE", 2, lambda v: v[0] and v[1], stack_levels=2,
                  pipelined=True),
        StsclCell("OR2_PIPE", 2, lambda v: v[0] or v[1], stack_levels=2,
                  pipelined=True),
        StsclCell("BUF_PIPE", 1, lambda v: v[0], stack_levels=1,
                  pipelined=True),
        # Full-adder compound cells used by the ref-[13] pipelined adder:
        # sum = a xor b xor cin (3 levels), carry = MAJ3.
        StsclCell("FASUM_PIPE", 3, lambda v: (v[0] != v[1]) != v[2],
                  stack_levels=3, pipelined=True),
    ]
    return {c.name: c for c in cells}


#: The library every design in this repo instantiates from.
STANDARD_CELLS: dict[str, StsclCell] = _build_standard_cells()


def cell(name: str) -> StsclCell:
    """Look up a standard cell by name."""
    try:
        return STANDARD_CELLS[name]
    except KeyError:
        raise DesignError(
            f"no STSCL cell named {name!r}; available: "
            f"{sorted(STANDARD_CELLS)}") from None
