"""Transistor-level netlist generators for STSCL circuits.

These builders turn a :class:`~repro.stscl.gate_model.StsclGateDesign`
into :class:`~repro.spice.netlist.Circuit` objects the MNA engine can
solve, so every analytic claim of the gate model is verifiable against
the "silicon" (our EKV transistor level):

* a single gate (Fig. 2) with the bulk-drain-shorted PMOS loads and,
  optionally, the D_Well junction diodes;
* a buffer chain for delay extraction;
* the closed replica-bias loop;
* a generic stacked differential-pair tree (series-gated synthesis) that
  realises any <=3-input function -- including the Fig. 8 majority cell;
* a clocked latch for the pipelining experiments.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..devices.diode import Diode, NWELL_DIODE_180
from ..devices.mosfet import Mosfet
from ..errors import DesignError
from ..spice.netlist import Circuit
from ..spice.waveforms import Waveform, dc_wave, pulse_wave
from .gate_model import StsclGateDesign
from .load import HighValueLoad


@dataclass
class GatePorts:
    """Interesting node names of a generated circuit."""

    vdd: str = "vdd"
    v_bp: str = "vbp"
    inputs: dict[str, tuple[str, str]] = field(default_factory=dict)
    outputs: dict[str, tuple[str, str]] = field(default_factory=dict)


def _load_bias(design: StsclGateDesign, vdd: float) -> float:
    """Solve the V_BP rail the replica loop would produce."""
    load = HighValueLoad(params=design.tech.pmos_thick, w=design.load_w,
                         l=design.load_l, temperature=design.temperature)
    return load.required_gate_bias(design.i_ss, design.v_sw, vdd)


def _add_output_stage(circuit: Circuit, design: StsclGateDesign,
                      prefix: str, with_dwell: bool) -> tuple[str, str]:
    """Add the two PMOS loads (+ optional D_Well diodes and wiring load)
    for one gate; returns the (out_p, out_n) node names."""
    out_p, out_n = f"{prefix}outp", f"{prefix}outn"
    for suffix, node in (("p", out_p), ("n", out_n)):
        circuit.add_mosfet(
            f"{prefix}mpl{suffix}", drain=node, gate="vbp", source="vdd",
            bulk=node, device=design.load_device())
        if with_dwell:
            circuit.add_diode(f"{prefix}dw{suffix}", "0", node,
                              Diode(NWELL_DIODE_180))
        # Explicit fan-out / wiring load; the paper's C_L.
        circuit.add_capacitor(f"{prefix}cl{suffix}", node, "0",
                              design.c_load)
    return out_p, out_n


def stscl_inverter_circuit(
        design: StsclGateDesign, vdd: float,
        in_p: Waveform | float | None = None,
        in_n: Waveform | float | None = None,
        with_dwell: bool = False,
        v_bp: float | None = None) -> tuple[Circuit, GatePorts]:
    """One STSCL inverter/buffer (paper Fig. 2) with driven inputs.

    Input defaults: a DC high (V_DD) on the positive side and a DC low
    (V_DD - V_SW) on the negative side.  An ideal tail sink keeps the
    experiment focused on the gate; the replica-solved V_BP biases the
    loads unless overridden.
    """
    circuit = Circuit("stscl_inverter", temperature=design.temperature)
    circuit.add_vsource("vvdd", "vdd", "0", vdd)
    bias = _load_bias(design, vdd) if v_bp is None else v_bp
    circuit.add_vsource("vvbp", "vbp", "0", bias)

    high, low = vdd, vdd - design.v_sw
    circuit.add_vsource("vinp", "inp", "0",
                        dc_wave(high) if in_p is None else in_p)
    circuit.add_vsource("vinn", "inn", "0",
                        dc_wave(low) if in_n is None else in_n)

    out_p, out_n = _add_output_stage(circuit, design, "", with_dwell)
    pair = design.pair_device()
    # Input high on inp steers the tail current into out_n (pulls the
    # negative output low), so the gate is a buffer from (inp, inn) to
    # (outp, outn).
    circuit.add_mosfet("m1", drain=out_n, gate="inp", source="tail",
                       bulk="0", device=pair)
    circuit.add_mosfet("m2", drain=out_p, gate="inn", source="tail",
                       bulk="0", device=pair)
    circuit.add_isource("itail", "tail", "0", design.i_ss)

    circuit.nodeset(out_p, vdd)
    circuit.nodeset(out_n, vdd - design.v_sw)
    circuit.nodeset("tail", 0.1)

    ports = GatePorts(inputs={"a": ("inp", "inn")},
                      outputs={"y": (out_p, out_n)})
    return circuit, ports


def stscl_buffer_chain_circuit(
        design: StsclGateDesign, vdd: float, n_stages: int,
        in_p: Waveform | float, in_n: Waveform | float,
        with_dwell: bool = False) -> tuple[Circuit, GatePorts]:
    """A chain of ``n_stages`` buffers for propagation-delay extraction.

    Stage k's differential output drives stage k+1's input; every stage
    carries its own loads, tail and explicit C_L.
    """
    if n_stages < 1:
        raise DesignError(f"need at least one stage, got {n_stages}")
    circuit = Circuit("stscl_chain", temperature=design.temperature)
    circuit.add_vsource("vvdd", "vdd", "0", vdd)
    circuit.add_vsource("vvbp", "vbp", "0", _load_bias(design, vdd))
    circuit.add_vsource("vinp", "s0_outp", "0", in_p)
    circuit.add_vsource("vinn", "s0_outn", "0", in_n)

    pair = design.pair_device()
    outputs = {}
    for k in range(1, n_stages + 1):
        prefix = f"s{k}_"
        out_p, out_n = _add_output_stage(circuit, design, prefix,
                                         with_dwell)
        prev_p, prev_n = f"s{k-1}_outp", f"s{k-1}_outn"
        circuit.add_mosfet(f"{prefix}m1", drain=out_n, gate=prev_p,
                           source=f"{prefix}tail", bulk="0", device=pair)
        circuit.add_mosfet(f"{prefix}m2", drain=out_p, gate=prev_n,
                           source=f"{prefix}tail", bulk="0", device=pair)
        circuit.add_isource(f"{prefix}itail", f"{prefix}tail", "0",
                            design.i_ss)
        circuit.nodeset(out_p, vdd)
        circuit.nodeset(out_n, vdd - design.v_sw)
        circuit.nodeset(f"{prefix}tail", 0.1)
        outputs[f"y{k}"] = (out_p, out_n)

    ports = GatePorts(inputs={"a": ("s0_outp", "s0_outn")},
                      outputs=outputs)
    return circuit, ports


def replica_bias_circuit(design: StsclGateDesign,
                         vdd: float) -> tuple[Circuit, GatePorts]:
    """The closed replica-bias loop of Sec. II-A2 / Fig. 1.

    A replica load device carries the reference I_SS while an ideal
    error amplifier servos V_BP until the replica output sits exactly
    V_SW below V_DD.  The produced ``vbp`` node is what every gate's
    loads would share.
    """
    circuit = Circuit("replica_bias", temperature=design.temperature)
    circuit.add_vsource("vvdd", "vdd", "0", vdd)
    circuit.add_vsource("vref", "vref", "0", vdd - design.v_sw)
    # Replica load: bulk-drain shorted PMOS from vdd to vrep.
    circuit.add_mosfet("mrep", drain="vrep", gate="vbp", source="vdd",
                       bulk="vrep", device=design.load_device())
    circuit.add_isource("iref", "vrep", "0", design.i_ss)
    # Error amplifier: raises vbp (weakens the load) when vrep > vref.
    circuit.add_vcvs("eamp", "vbp", "0", "vrep", "vref", gain=1e4)
    circuit.nodeset("vrep", vdd - design.v_sw)
    circuit.nodeset("vbp", vdd - 0.4)
    ports = GatePorts(outputs={"vbp": ("vbp", "0"),
                               "vrep": ("vrep", "0")})
    return circuit, ports


def add_stscl_tree(circuit: Circuit, prefix: str,
                   design: StsclGateDesign,
                   function: Callable[[tuple[bool, ...]], bool],
                   input_pairs: Sequence[tuple[str, str]],
                   with_dwell: bool = False) -> tuple[str, str]:
    """Add one series-gated STSCL steering tree to ``circuit``.

    ``input_pairs`` names the (positive, negative) gate nets of each
    input, bottom level first.  All the tree's own nets and elements
    are namespaced under ``prefix``; returns the output node pair.
    This is the composable core behind :func:`stscl_tree_circuit` and
    the full-adder bit-slice cell of :mod:`repro.stscl.adder`.
    """
    n_inputs = len(input_pairs)
    if not 1 <= n_inputs <= 3:
        raise DesignError(f"tree synthesis supports 1..3 inputs, "
                          f"got {n_inputs}")
    out_p, out_n = _add_output_stage(circuit, design, prefix, with_dwell)
    circuit.add_isource(f"{prefix}itail", f"{prefix}tail", "0",
                        design.i_ss)
    pair = design.pair_device()
    counter = itertools.count()

    def build(level: int, source_node: str,
              assignment: tuple[bool, ...]) -> None:
        """Grow the steering tree above ``source_node``."""
        if level == n_inputs:
            return
        for value in (True, False):
            gate_node = input_pairs[level][0 if value else 1]
            new_assignment = assignment + (value,)
            if level == n_inputs - 1:
                drain = out_n if function(new_assignment) else out_p
            else:
                drain = f"{prefix}b{next(counter)}"
                circuit.nodeset(drain, 0.15 * (level + 1))
            circuit.add_mosfet(
                f"{prefix}m{level}_{next(counter)}", drain=drain,
                gate=gate_node, source=source_node, bulk="0", device=pair)
            if level < n_inputs - 1:
                build(level + 1, drain, new_assignment)

    build(0, f"{prefix}tail", ())
    return out_p, out_n


def add_stscl_latch(circuit: Circuit, prefix: str,
                    design: StsclGateDesign,
                    d_p: str, d_n: str, clk_p: str, clk_n: str,
                    with_dwell: bool = False) -> tuple[str, str]:
    """Add one clocked STSCL D-latch core to ``circuit``.

    Clock high steers the tail into the sampling pair (transparent);
    clock low into the cross-coupled hold pair.  Nets and elements are
    namespaced under ``prefix``; returns the output node pair.  The
    composable core behind :func:`stscl_latch_circuit` and the
    pipelined adder bit slice.
    """
    out_p, out_n = _add_output_stage(circuit, design, prefix, with_dwell)
    pair = design.pair_device()
    tail, ns, nh = f"{prefix}tail", f"{prefix}ns", f"{prefix}nh"
    circuit.add_mosfet(f"{prefix}mck1", drain=ns, gate=clk_p,
                       source=tail, bulk="0", device=pair)
    circuit.add_mosfet(f"{prefix}mck2", drain=nh, gate=clk_n,
                       source=tail, bulk="0", device=pair)
    circuit.add_mosfet(f"{prefix}md1", drain=out_n, gate=d_p,
                       source=ns, bulk="0", device=pair)
    circuit.add_mosfet(f"{prefix}md2", drain=out_p, gate=d_n,
                       source=ns, bulk="0", device=pair)
    circuit.add_mosfet(f"{prefix}mh1", drain=out_n, gate=out_p,
                       source=nh, bulk="0", device=pair)
    circuit.add_mosfet(f"{prefix}mh2", drain=out_p, gate=out_n,
                       source=nh, bulk="0", device=pair)
    circuit.add_isource(f"{prefix}itail", tail, "0", design.i_ss)
    return out_p, out_n


def stscl_tree_circuit(
        design: StsclGateDesign, vdd: float,
        function: Callable[[tuple[bool, ...]], bool],
        input_values: Sequence[tuple[float, float]],
        with_dwell: bool = False) -> tuple[Circuit, GatePorts]:
    """Series-gated synthesis of an arbitrary <=3-input STSCL cell.

    Builds the complete binary current-steering tree: the bottom level
    switches on input 0, the top level on input ``n-1``; the drain of
    each top-level leaf connects to ``outn`` when the function is true
    for that minterm (pulling the negative output low encodes logic 1).

    ``input_values`` supplies the (positive, negative) drive voltage of
    each input.  This is the generator behind the Fig. 8 majority cell
    check (see :func:`stscl_majority_circuit`).
    """
    n_inputs = len(input_values)
    if not 1 <= n_inputs <= 3:
        raise DesignError(f"tree synthesis supports 1..3 inputs, "
                          f"got {n_inputs}")
    circuit = Circuit("stscl_tree", temperature=design.temperature)
    circuit.add_vsource("vvdd", "vdd", "0", vdd)
    circuit.add_vsource("vvbp", "vbp", "0", _load_bias(design, vdd))
    for k, (v_p, v_n) in enumerate(input_values):
        circuit.add_vsource(f"vin{k}p", f"in{k}p", "0", v_p)
        circuit.add_vsource(f"vin{k}n", f"in{k}n", "0", v_n)

    out_p, out_n = add_stscl_tree(
        circuit, "", design, function,
        [(f"in{k}p", f"in{k}n") for k in range(n_inputs)],
        with_dwell=with_dwell)
    circuit.nodeset(out_p, vdd)
    circuit.nodeset(out_n, vdd - design.v_sw)
    ports = GatePorts(
        inputs={f"in{k}": (f"in{k}p", f"in{k}n")
                for k in range(n_inputs)},
        outputs={"y": (out_p, out_n)})
    return circuit, ports


def stscl_majority_circuit(
        design: StsclGateDesign, vdd: float,
        values: tuple[bool, bool, bool],
        with_dwell: bool = False) -> tuple[Circuit, GatePorts]:
    """The Fig. 8 majority-detector core at a static input ``values``.

    Drives each differential input to the STSCL logic levels for the
    requested booleans and returns the synthesised three-level stacked
    tree.  (The output latch of the full Fig. 8 cell is exercised
    separately by :func:`stscl_latch_circuit`.)
    """
    high, low = vdd, vdd - design.v_sw
    drives = [(high, low) if v else (low, high) for v in values]

    def majority(v: tuple[bool, ...]) -> bool:
        return (v[0] and v[1]) or (v[0] and v[2]) or (v[1] and v[2])

    return stscl_tree_circuit(design, vdd, majority, drives,
                              with_dwell=with_dwell)


def stscl_ring_oscillator_circuit(
        design: StsclGateDesign, vdd: float, n_stages: int = 3,
        with_dwell: bool = False) -> tuple[Circuit, GatePorts]:
    """A differential STSCL ring oscillator.

    This is the VCO inside the paper's PLL (Fig. 1): its frequency
    f = 1/(2 N t_d) rides linearly on the tail current, which is
    exactly why the PLL's control quantity can *be* the system bias.
    Because the ring is differential, the odd inversion is a free wire
    swap on the feedback path, so any stage count >= 2 oscillates.

    The output nodes are seeded asymmetrically (nodesets) so transient
    analysis starts the oscillation without a kick source.
    """
    if n_stages < 2:
        raise DesignError(f"ring needs at least 2 stages: {n_stages}")
    circuit = Circuit("stscl_ring", temperature=design.temperature)
    circuit.add_vsource("vvdd", "vdd", "0", vdd)
    circuit.add_vsource("vvbp", "vbp", "0", _load_bias(design, vdd))
    pair = design.pair_device()
    high, low = vdd, vdd - design.v_sw
    for k in range(1, n_stages + 1):
        prefix = f"s{k}_"
        out_p, out_n = _add_output_stage(circuit, design, prefix,
                                         with_dwell)
        if k == 1:
            # Feedback from the last stage, swapped (the free inversion).
            prev_p = f"s{n_stages}_outn"
            prev_n = f"s{n_stages}_outp"
        else:
            prev_p, prev_n = f"s{k-1}_outp", f"s{k-1}_outn"
        circuit.add_mosfet(f"{prefix}m1", drain=out_n, gate=prev_p,
                           source=f"{prefix}tail", bulk="0", device=pair)
        circuit.add_mosfet(f"{prefix}m2", drain=out_p, gate=prev_n,
                           source=f"{prefix}tail", bulk="0", device=pair)
        circuit.add_isource(f"{prefix}itail", f"{prefix}tail", "0",
                            design.i_ss)
        # Stagger the initial state around the loop to start it up.
        phase = k % 2 == 0
        circuit.nodeset(out_p, high if phase else low)
        circuit.nodeset(out_n, low if phase else high)
        circuit.nodeset(f"{prefix}tail", 0.1)
    # The ring's only DC solution is the metastable balance point, so a
    # noiseless transient would sit there forever.  Kick stage 1 with a
    # one-gate-delay current pulse to start the oscillation (the role
    # device noise plays in silicon).
    t_kick = design.delay()
    circuit.add_isource(
        "ikick", "s1_outp", "0",
        pulse_wave(0.0, design.i_ss, delay=0.0, rise=t_kick / 10.0,
                   fall=t_kick / 10.0, width=t_kick,
                   period=1e6 * t_kick))
    ports = GatePorts(outputs={
        f"y{k}": (f"s{k}_outp", f"s{k}_outn")
        for k in range(1, n_stages + 1)})
    return circuit, ports


def stscl_latch_circuit(
        design: StsclGateDesign, vdd: float,
        d_p: Waveform | float, d_n: Waveform | float,
        clk_p: Waveform | float, clk_n: Waveform | float,
        with_dwell: bool = False) -> tuple[Circuit, GatePorts]:
    """A clocked STSCL D-latch (the pipelining element of Sec. III-B).

    Clock high steers the tail current into the input (sampling) pair;
    clock low steers it into the cross-coupled (hold) pair, freezing the
    output for the rest of the cycle so the next pipeline stage can
    evaluate.
    """
    circuit = Circuit("stscl_latch", temperature=design.temperature)
    circuit.add_vsource("vvdd", "vdd", "0", vdd)
    circuit.add_vsource("vvbp", "vbp", "0", _load_bias(design, vdd))
    circuit.add_vsource("vdp", "dp", "0", d_p)
    circuit.add_vsource("vdn", "dn", "0", d_n)
    circuit.add_vsource("vckp", "ckp", "0", clk_p)
    circuit.add_vsource("vckn", "ckn", "0", clk_n)

    out_p, out_n = add_stscl_latch(circuit, "", design, "dp", "dn",
                                   "ckp", "ckn", with_dwell=with_dwell)

    circuit.nodeset(out_p, vdd)
    circuit.nodeset(out_n, vdd - design.v_sw)
    for node in ("tail", "ns", "nh"):
        circuit.nodeset(node, 0.1)

    ports = GatePorts(inputs={"d": ("dp", "dn"), "clk": ("ckp", "ckn")},
                      outputs={"q": (out_p, out_n)})
    return circuit, ports
