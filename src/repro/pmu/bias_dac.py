"""Binary-weighted bias-current DAC.

The paper's prototype adjusts the reference bias current "externally
with respect to the sampling frequency"; a practical integration uses a
current DAC so the PMU can program the bias digitally.  Quantisation of
the bias current is a real effect -- the delivered rate is quantised
with it -- so the DAC model is explicit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import DesignError


@dataclass(frozen=True)
class BiasCurrentDac:
    """An n-bit binary-weighted current-steering DAC.

    Attributes:
        i_lsb: Unit (LSB) current [A].
        n_bits: Resolution.
    """

    i_lsb: float
    n_bits: int = 8

    def __post_init__(self) -> None:
        if self.i_lsb <= 0.0:
            raise DesignError(f"i_lsb must be positive: {self.i_lsb}")
        if not 1 <= self.n_bits <= 24:
            raise DesignError(f"n_bits out of range: {self.n_bits}")

    @property
    def full_scale(self) -> float:
        """Maximum output current [A]."""
        return self.i_lsb * (2 ** self.n_bits - 1)

    def output(self, code: int) -> float:
        """Output current for digital ``code`` [A]."""
        if not 0 <= code < 2 ** self.n_bits:
            raise DesignError(
                f"code {code} outside 0..{2 ** self.n_bits - 1}")
        return code * self.i_lsb

    def code_for(self, i_target: float) -> int:
        """Nearest code delivering at least ``i_target`` (ceiling, so a
        requested operating frequency is always met)."""
        if i_target < 0.0:
            raise DesignError(f"target must be >= 0: {i_target}")
        quotient = i_target / self.i_lsb
        # Guard the ceiling against float representation of exact
        # multiples (30 pA / 10 pA must give 3, not 4).
        code = math.ceil(quotient - 1e-9)
        return min(max(code, 0), 2 ** self.n_bits - 1)

    def quantize(self, i_target: float) -> float:
        """The deliverable current closest above ``i_target`` [A]."""
        return self.output(self.code_for(i_target))
