"""Behavioural PLL: the frequency-to-bias translator of Fig. 1.

The paper uses the PLL only as the mechanism that converts a requested
operating frequency into the control current (the loop's
voltage/current-controlled oscillator is itself an STSCL ring, so its
control quantity *is* a tail current).  This behavioural model captures
what the system experiments need: first-order lock dynamics, the
divider, and the frequency -> control-current mapping.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import LN2
from ..errors import DesignError, AnalysisError
from ..stscl.gate_model import StsclGateDesign


@dataclass(frozen=True)
class PllReport:
    """Outcome of a locking run.

    Attributes:
        locked: Whether the loop settled inside the tolerance band.
        f_out: Final output frequency [Hz].
        i_control: Final control (tail) current [A].
        lock_time: Time to enter and stay in the band [s].
        iterations: Simulation steps taken.
    """

    locked: bool
    f_out: float
    i_control: float
    lock_time: float
    iterations: int


class BehavioralPll:
    """First-order PLL around an STSCL ring oscillator.

    The ring's frequency follows its tail current linearly
    (f = I / (2 ln2 N_ring V_SW C_L), straight from the STSCL delay
    law), so the loop integrator works directly on the control current.

    Attributes:
        design: Gate design point giving the ring's V_SW and C_L.
        n_ring: Ring length in gates (odd).
        divider: Output is compared against f_ref after /N division.
        bandwidth_ratio: Loop bandwidth as a fraction of f_ref.
    """

    def __init__(self, design: StsclGateDesign, n_ring: int = 5,
                 divider: int = 1, bandwidth_ratio: float = 0.05) -> None:
        if n_ring < 3 or n_ring % 2 == 0:
            raise DesignError(f"ring length must be odd >= 3: {n_ring}")
        if divider < 1:
            raise DesignError(f"divider must be >= 1: {divider}")
        if not 0.0 < bandwidth_ratio < 0.5:
            raise DesignError(
                f"bandwidth_ratio must be in (0, 0.5): {bandwidth_ratio}")
        self.design = design
        self.n_ring = n_ring
        self.divider = divider
        self.bandwidth_ratio = bandwidth_ratio

    def ring_frequency(self, i_control: float) -> float:
        """Oscillation frequency at control current ``i_control`` [Hz]."""
        if i_control <= 0.0:
            raise DesignError(
                f"control current must be positive: {i_control}")
        gate = self.design.with_current(i_control)
        return 1.0 / (2.0 * self.n_ring * gate.delay())

    def control_for_frequency(self, f_out: float) -> float:
        """Inverse mapping: the tail current giving ``f_out`` [A]."""
        if f_out <= 0.0:
            raise DesignError(f"frequency must be positive: {f_out}")
        return (2.0 * self.n_ring * LN2 * self.design.v_sw
                * self.design.c_load * f_out)

    def lock(self, f_ref: float, i_start: float | None = None,
             tolerance: float = 1e-3,
             max_cycles: int = 20000) -> PllReport:
        """Run the loop until the divided output matches ``f_ref``.

        First-order integrating loop stepped once per reference cycle;
        returns lock time and the settled control current -- the number
        the PMU fans out to the rest of the chip.
        """
        if f_ref <= 0.0:
            raise DesignError(f"f_ref must be positive: {f_ref}")
        target = f_ref * self.divider
        i_control = (i_start if i_start is not None
                     else 0.1 * self.control_for_frequency(target))
        gain = self.bandwidth_ratio
        time = 0.0
        in_band = 0
        for iteration in range(1, max_cycles + 1):
            f_div = self.ring_frequency(i_control) / self.divider
            error = (f_ref - f_div) / f_ref
            i_control *= (1.0 + gain * error)
            time += 1.0 / f_ref
            if abs(error) < tolerance:
                in_band += 1
                if in_band >= 10:
                    return PllReport(locked=True, f_out=f_div * self.divider,
                                     i_control=i_control,
                                     lock_time=time, iterations=iteration)
            else:
                in_band = 0
        raise AnalysisError(
            f"PLL failed to lock to {f_ref:.3e} Hz "
            f"within {max_cycles} cycles")
