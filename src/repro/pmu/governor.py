"""A DVFS-style rate governor on top of the PMU.

The paper's Fig. 1 promises workload-adaptive operation ("optimize the
circuit operating conditions with respect to the work load", Sec. I).
This governor implements the standard ladder policy: a discrete set of
sampling rates, an activity metric in [0, 1], and hysteresis so the
system does not chatter between adjacent rates.

Used by ``examples/biomedical_ecg_acquisition.py``'s formalised twin in
the tests; any activity source works (code excursion, event rate,
buffer occupancy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DesignError
from .controller import PmuOperatingPoint, PowerManagementUnit


@dataclass
class DvfsGovernor:
    """Hysteretic rate ladder.

    Attributes:
        pmu: The power-management unit being steered.
        rates: Ascending ladder of sampling rates [S/s].
        up_threshold: Activity above which the governor steps up.
        down_threshold: Activity below which it steps down (must be
            < up_threshold: the gap is the hysteresis band).
        dwell: Consecutive out-of-band updates required before a step
            (debounce).
    """

    pmu: PowerManagementUnit
    rates: tuple[float, ...] = (800.0, 8e3, 80e3)
    up_threshold: float = 0.6
    down_threshold: float = 0.2
    dwell: int = 2

    def __post_init__(self) -> None:
        if len(self.rates) < 2:
            raise DesignError("need at least two ladder rates")
        if any(a >= b for a, b in zip(self.rates, self.rates[1:])):
            raise DesignError("rates must be strictly ascending")
        if not 0.0 <= self.down_threshold < self.up_threshold <= 1.0:
            raise DesignError(
                "need 0 <= down_threshold < up_threshold <= 1")
        if self.dwell < 1:
            raise DesignError(f"dwell must be >= 1: {self.dwell}")
        self._index = 0
        self._streak = 0

    @property
    def rate(self) -> float:
        """The currently selected sampling rate [S/s]."""
        return self.rates[self._index]

    def operating_point(self) -> PmuOperatingPoint:
        """The PMU state at the current rate."""
        return self.pmu.operating_point(self.rate)

    def update(self, activity: float) -> float:
        """Feed one activity observation; returns the (possibly new)
        rate.  ``activity`` is clamped to [0, 1]."""
        activity = min(1.0, max(0.0, float(activity)))
        if activity > self.up_threshold \
                and self._index < len(self.rates) - 1:
            self._streak = self._streak + 1 if self._streak >= 0 else 1
            if self._streak >= self.dwell:
                self._index += 1
                self._streak = 0
        elif activity < self.down_threshold and self._index > 0:
            self._streak = self._streak - 1 if self._streak <= 0 else -1
            if self._streak <= -self.dwell:
                self._index -= 1
                self._streak = 0
        else:
            self._streak = 0
        return self.rate

    def reset(self, index: int = 0) -> None:
        """Force the ladder position (e.g. on power-up)."""
        if not 0 <= index < len(self.rates):
            raise DesignError(f"index {index} outside the ladder")
        self._index = index
        self._streak = 0
