"""Power management: the paper's single-knob power-frequency scaling.

Fig. 1's architecture: a PLL (or an external reference) defines the
operating frequency; one control current derived from it biases the
analog blocks, and a fixed fraction of it biases the STSCL replica
generator -- so the *entire* mixed-signal system scales with one knob.
This package provides the behavioural PLL, the bias-current DAC, the
PMU proper, and energy-harvesting supply profiles for the
supply-insensitivity experiments (E7).
"""

from .controller import PmuOperatingPoint, PowerManagementUnit
from .governor import DvfsGovernor
from .pll import BehavioralPll, PllReport
from .bias_dac import BiasCurrentDac
from .harvesting import (
    HarvestingProfile,
    solar_profile,
    vibration_profile,
    supply_excursion_ok,
)

__all__ = [
    "PmuOperatingPoint", "PowerManagementUnit",
    "DvfsGovernor",
    "BehavioralPll", "PllReport",
    "BiasCurrentDac",
    "HarvestingProfile", "solar_profile", "vibration_profile",
    "supply_excursion_ok",
]
