"""Energy-harvesting supply profiles (experiment E7's motivation).

The paper argues STSCL's supply insensitivity matters most where V_DD
is *not* a constant -- energy harvesting and scavenging systems.  These
generators produce representative V_DD(t) profiles; the check helper
verifies a design keeps headroom across a whole profile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import ModelError
from ..stscl.gate_model import StsclGateDesign
from ..stscl.supply import minimum_supply


@dataclass(frozen=True)
class HarvestingProfile:
    """A deterministic V_DD(t) trajectory.

    Attributes:
        name: Label for reports.
        duration: Profile length [s].
        voltage: Callable t -> V_DD [V].
    """

    name: str
    duration: float
    voltage: Callable[[float], float]

    def sample(self, n_points: int = 256) -> tuple[np.ndarray, np.ndarray]:
        """(t, V_DD) arrays over the profile."""
        if n_points < 2:
            raise ModelError(f"need >= 2 points: {n_points}")
        t = np.linspace(0.0, self.duration, n_points)
        v = np.array([self.voltage(float(x)) for x in t])
        return t, v


def solar_profile(v_min: float = 1.0, v_max: float = 1.25,
                  period: float = 120.0) -> HarvestingProfile:
    """Slow irradiance-driven supply wander (storage-capacitor ripple
    plus cloud transits): a raised cosine between the two rails with a
    dip feature mid-profile."""
    if v_max <= v_min:
        raise ModelError("v_max must exceed v_min")

    def voltage(t: float) -> float:
        base = v_min + (v_max - v_min) * 0.5 * (
            1.0 - math.cos(2.0 * math.pi * t / period))
        dip = 0.3 * (v_max - v_min) * math.exp(
            -((t - 0.65 * period) / (0.05 * period)) ** 2)
        return max(v_min, base - dip)

    return HarvestingProfile("solar", period, voltage)


def vibration_profile(v_min: float = 1.0, v_max: float = 1.25,
                      period: float = 2.0,
                      ripple_hz: float = 50.0) -> HarvestingProfile:
    """Vibration harvester: rectified-AC ripple on a charging envelope."""
    if v_max <= v_min:
        raise ModelError("v_max must exceed v_min")
    mid = 0.5 * (v_min + v_max)
    envelope = 0.5 * (v_max - v_min)

    def voltage(t: float) -> float:
        ripple = abs(math.sin(2.0 * math.pi * ripple_hz * t))
        slow = math.sin(2.0 * math.pi * t / period)
        value = mid + envelope * (0.6 * slow + 0.4 * (ripple - 0.5))
        return min(v_max, max(v_min, value))

    return HarvestingProfile("vibration", period, voltage)


def supply_excursion_ok(design: StsclGateDesign,
                        profile: HarvestingProfile,
                        margin: float = 0.0,
                        n_points: int = 256) -> bool:
    """True when V_DD(t) never drops below the gate's minimum supply.

    Because STSCL delay and noise margin are supply-independent, this
    headroom check is the *only* thing the supply excursion threatens
    -- which is the paper's energy-harvesting argument in one predicate.
    """
    _t, v = profile.sample(n_points)
    return bool(np.min(v) >= minimum_supply(design) + margin)
