"""Sequential building blocks: shift registers, counters, accumulators.

A sensor node built on this platform needs more than the ADC encoder:
the sampled codes must be serialised out (shift register), framed
(counter) and pre-processed (accumulator for boxcar averaging).  All
of these assemble from the same latch-merged STSCL cells, so their
power follows Eq. (1) like everything else.

Every builder returns a :class:`~repro.digital.netlist.GateNetlist`
ready for :class:`~repro.digital.simulator.CycleSimulator` (which
handles the registered feedback loops of the counters/accumulators).
"""

from __future__ import annotations

from ..errors import DesignError
from .netlist import GateNetlist, Pin


def build_shift_register(width: int,
                         parallel_out: bool = True) -> GateNetlist:
    """Serial-in shift register of ``width`` latch-merged buffers.

    Input net ``din``; outputs ``q0`` (oldest bit = serial out) .. --
    exactly the serialiser a sensor node uses to stream codes off-chip.
    """
    if width < 1:
        raise DesignError(f"width must be >= 1: {width}")
    netlist = GateNetlist(f"shift{width}")
    netlist.add_input("din")
    previous = "din"
    for k in range(width - 1, -1, -1):
        netlist.add_gate(f"ff{k}", "BUF_PIPE", [previous], f"q{k}")
        previous = f"q{k}"
    if parallel_out:
        for k in range(width):
            netlist.mark_output(f"q{k}")
    else:
        netlist.mark_output("q0")
    netlist.validate()
    return netlist


def build_binary_counter(width: int) -> GateNetlist:
    """Synchronous binary up-counter with enable.

    Input ``en``; outputs ``q0`` (LSB) .. ``q{width-1}``.  Bit k
    toggles when every lower bit (and the enable) is high:

        carry_0 = en;  carry_{k+1} = carry_k AND q_k
        q_k' = q_k XOR carry_k

    The feedback runs through the registered (``*_PIPE``) outputs, the
    pattern :class:`CycleSimulator` resolves as state.
    """
    if width < 1:
        raise DesignError(f"width must be >= 1: {width}")
    netlist = GateNetlist(f"counter{width}")
    netlist.add_input("en")
    carry = "en"
    for k in range(width):
        netlist.add_gate(f"tff{k}", "XOR2_PIPE", [f"q{k}", carry],
                         f"q{k}")
        # q{k} is both state (registered output) and input: allowed,
        # the cell reads the previous cycle's value.
        if k < width - 1:
            netlist.add_gate(f"carry{k}", "AND2", [f"q{k}", carry],
                             f"c{k}")
            carry = f"c{k}"
        netlist.mark_output(f"q{k}")
    netlist.validate()
    return netlist


def build_johnson_counter(width: int) -> GateNetlist:
    """Johnson (twisted-ring) counter: 2*width glitch-free states.

    The classic SCL divider chain: the feedback inversion is the free
    differential wire swap.
    """
    if width < 2:
        raise DesignError(f"width must be >= 2: {width}")
    netlist = GateNetlist(f"johnson{width}")
    netlist.add_input("en")  # kept for interface symmetry; unused
    # Stage 0 samples the inverted last stage.
    netlist.add_gate("ff0", "BUF_PIPE",
                     [Pin(f"q{width - 1}", inverted=True)], "q0")
    for k in range(1, width):
        netlist.add_gate(f"ff{k}", "BUF_PIPE", [f"q{k - 1}"], f"q{k}")
    for k in range(width):
        netlist.mark_output(f"q{k}")
    netlist.validate()
    return netlist


def build_accumulator(width: int) -> GateNetlist:
    """Accumulator: acc' = acc + d (mod 2^width), the boxcar-averaging
    core of a decimating sensor front end.

    Inputs ``d0..``; outputs the registered accumulator ``acc0..``.
    Sum and carry use the compound full-adder cells (XOR3/MAJ3) with
    the sum register merged (FASUM_PIPE) -- one tail current per bit
    pair, the Fig. 8 economics again.
    """
    if width < 1:
        raise DesignError(f"width must be >= 1: {width}")
    netlist = GateNetlist(f"accumulator{width}")
    for k in range(width):
        netlist.add_input(f"d{k}")
    carry: str | None = None
    for k in range(width):
        if carry is None:
            netlist.add_gate(f"sum{k}", "XOR2_PIPE",
                             [f"d{k}", f"acc{k}"], f"acc{k}")
            if width > 1:
                netlist.add_gate(f"carry{k}", "AND2",
                                 [f"d{k}", f"acc{k}"], f"c{k}")
                carry = f"c{k}"
        else:
            netlist.add_gate(f"sum{k}", "FASUM_PIPE",
                             [f"d{k}", f"acc{k}", carry], f"acc{k}")
            if k < width - 1:
                netlist.add_gate(f"carry{k}", "MAJ3",
                                 [f"d{k}", f"acc{k}", carry], f"c{k}")
                carry = f"c{k}"
        netlist.mark_output(f"acc{k}")
    netlist.validate()
    return netlist
