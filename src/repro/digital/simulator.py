"""Functional and timed simulation of gate netlists.

:class:`CycleSimulator` is the workhorse: synchronous, cycle-accurate
semantics where every sequential (latch-merged) cell updates once per
clock from the values of the *previous* cycle -- exactly the evaluate /
hold behaviour of the Fig. 8 pipelined cells.

:class:`EventSimulator` adds real time: each gate re-evaluates after its
STSCL delay, which lets tests *measure* the critical path and confirm
the analytic STA numbers.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

import networkx as nx

from ..errors import AnalysisError
from ..stscl.gate_model import StsclGateDesign
from .netlist import Gate, GateNetlist


class CycleSimulator:
    """Synchronous simulation with one evaluation per clock cycle."""

    def __init__(self, netlist: GateNetlist) -> None:
        netlist.validate()
        self.netlist = netlist
        graph = netlist.combinational_graph()
        order = list(nx.topological_sort(graph))
        self._comb_order = [netlist.gate(name) for name in order
                            if not netlist.gate(name).is_sequential]
        self._sequential = netlist.sequential_gates()
        self._state: dict[str, bool] = {}
        self.reset()

    def reset(self, value: bool = False) -> None:
        """Set every register output to ``value``."""
        self._state = {g.output: value for g in self._sequential}

    def step(self, inputs: dict[str, bool]) -> dict[str, bool]:
        """Advance one clock; returns the net values *after* the edge.

        ``inputs`` must cover every primary input.
        """
        missing = [n for n in self.netlist.primary_inputs if n not in inputs]
        if missing:
            raise AnalysisError(f"missing input values for {missing}")
        values: dict[str, bool] = {n: bool(inputs[n])
                                   for n in self.netlist.primary_inputs}
        values.update(self._state)
        for gate in self._comb_order:
            values[gate.output] = gate.evaluate(values)
        # All registers update simultaneously from pre-edge values.
        new_state = {g.output: g.evaluate(values) for g in self._sequential}
        self._state = new_state
        values.update(new_state)
        return values

    def run(self, input_stream: list[dict[str, bool]]) -> list[dict[str, bool]]:
        """Apply a sequence of input vectors; returns per-cycle values."""
        return [self.step(vector) for vector in input_stream]

    def latency(self) -> int:
        """Pipeline latency in cycles: registers on the longest
        input-to-output register chain."""
        graph = self.netlist.full_graph()
        weights = {g.name: (1 if g.is_sequential else 0)
                   for g in self.netlist.gates}
        best: dict[str, int] = {}
        for name in nx.topological_sort(graph):
            incoming = [best[p] for p in graph.predecessors(name)]
            best[name] = max(incoming, default=0) + weights[name]
        return max(best.values(), default=0)


@dataclass(frozen=True)
class _Event:
    time: float
    serial: int
    net: str
    value: bool

    def __lt__(self, other: "_Event") -> bool:
        return (self.time, self.serial) < (other.time, other.serial)


class EventSimulator:
    """Event-driven timed simulation of the *combinational* portion.

    Gate delays follow the owning design point: ``delay_factor() *
    design.delay()``.  Sequential cells are treated as transparent for
    timing-measurement purposes (use :class:`CycleSimulator` for
    functional pipelined behaviour).
    """

    def __init__(self, netlist: GateNetlist,
                 design: StsclGateDesign) -> None:
        netlist.validate()
        self.netlist = netlist
        self.design = design
        self._fanout: dict[str, list[Gate]] = {}
        for gate in netlist.gates:
            for pin in gate.inputs:
                self._fanout.setdefault(pin.net, []).append(gate)

    def settle(self, inputs: dict[str, bool],
               initial: bool = False) -> tuple[dict[str, bool], float]:
        """Propagate ``inputs`` until quiescence.

        Returns (final net values, settling time) -- the settling time of
        the slowest cone is the measured critical-path delay.
        """
        values: dict[str, bool] = {}
        for gate in self.netlist.gates:
            values[gate.output] = initial
        serial = itertools.count()
        queue: list[_Event] = []
        for net in self.netlist.primary_inputs:
            if net not in inputs:
                raise AnalysisError(f"missing input value for {net!r}")
            heapq.heappush(queue, _Event(0.0, next(serial), net,
                                         bool(inputs[net])))
        base_delay = self.design.delay()
        last_time = 0.0
        guard = 0
        while queue:
            guard += 1
            if guard > 1_000_000:
                raise AnalysisError("event simulation did not settle "
                                    "(oscillating netlist?)")
            event = heapq.heappop(queue)
            if values.get(event.net) == event.value and event.time > 0.0:
                continue
            values[event.net] = event.value
            last_time = max(last_time, event.time)
            for gate in self._fanout.get(event.net, ()):
                try:
                    new_value = gate.evaluate(values)
                except KeyError:
                    continue  # some input not yet defined
                if values.get(gate.output) != new_value:
                    delay = gate.cell.delay_factor() * base_delay
                    heapq.heappush(queue, _Event(
                        event.time + delay, next(serial), gate.output,
                        new_value))
        return values, last_time
