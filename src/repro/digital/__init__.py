"""Gate-level digital design tools for STSCL systems.

The paper's digital circuitry (the ADC's 196-gate encoder, the pipelined
adder of ref. [13]) is expressed here as gate-level netlists over the
:mod:`repro.stscl.library` cells, with:

* functional (cycle-accurate) and event-driven timed simulation;
* static timing analysis tied to the STSCL delay law;
* an automatic full-pipelining transform (the Sec. III-B technique);
* the folding-ADC encoder generator (majority bubble correction,
  thermometer -> Gray -> binary);
* a subthreshold static-CMOS baseline model for the Fig. 3 / ref. [11]
  comparisons.
"""

from .netlist import Gate, GateNetlist, Pin
from .simulator import CycleSimulator, EventSimulator
from .sta import TimingReport, analyze_timing, timing_yield_under_mismatch
from .pipeline import balance_pipeline
from .encoder import (
    EncoderSpec,
    build_fai_encoder,
    encode_batch,
    encoder_output_value,
    reference_encode,
    thermometer_to_gray_taps,
)
from .cmos_baseline import CmosGateModel, CmosSystemModel
from .registers import (
    build_accumulator,
    build_binary_counter,
    build_johnson_counter,
    build_shift_register,
)
from .vcd import dump_vcd

__all__ = [
    "Gate", "GateNetlist", "Pin",
    "CycleSimulator", "EventSimulator",
    "TimingReport", "analyze_timing", "timing_yield_under_mismatch",
    "balance_pipeline",
    "EncoderSpec", "build_fai_encoder", "encode_batch",
    "encoder_output_value", "reference_encode",
    "thermometer_to_gray_taps",
    "CmosGateModel", "CmosSystemModel",
    "build_accumulator", "build_binary_counter",
    "build_johnson_counter", "build_shift_register",
    "dump_vcd",
]
