"""Static timing analysis on the STSCL delay law.

Path delays accumulate ``cell.delay_factor() * design.delay()`` through
the combinational graph; sequential cells cut paths.  The resulting
maximum clock rate feeds the paper's Eq. (1) reasoning: at full
pipelining (depth one cell) the encoder runs at
``design.max_frequency(1)`` -- the Fig. 9a line.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..errors import AnalysisError
from ..stscl.gate_model import StsclGateDesign
from .netlist import GateNetlist


@dataclass(frozen=True)
class TimingReport:
    """Result of a timing analysis.

    Attributes:
        critical_path: Gate names along the slowest
            register-to-register segment, in order.
        critical_delay: Its total propagation delay [s].
        weighted_depth: Critical delay expressed in base gate delays.
        f_max: Maximum clock frequency [Hz] with the half-period
            settling criterion the paper's Eq. (1) encodes.
        n_tails: Tail-current count of the netlist (power units).
    """

    critical_path: tuple[str, ...]
    critical_delay: float
    weighted_depth: float
    f_max: float
    n_tails: int

    def power(self, design: StsclGateDesign, vdd: float) -> float:
        """Total static power of the block at the design bias [W]."""
        return self.n_tails * design.power(vdd)


def analyze_timing(netlist: GateNetlist, design: StsclGateDesign,
                   delay_scale: dict[str, float] | None = None
                   ) -> TimingReport:
    """Longest-path analysis of ``netlist`` at ``design``'s bias point.

    ``delay_scale`` optionally multiplies each named gate's delay -- the
    hook :func:`timing_yield_under_mismatch` uses to inject per-gate
    tail-current mismatch (delay ~ 1/I_SS).
    """
    netlist.validate()
    base_delay = design.delay()
    graph = netlist.combinational_graph()

    # Every timed gate contributes its own delay; sequential cells
    # contribute their evaluation delay but start a new path.
    arrival: dict[str, float] = {}
    parent: dict[str, str | None] = {}
    for name in nx.topological_sort(graph):
        gate = netlist.gate(name)
        own = gate.cell.delay_factor() * base_delay
        if delay_scale is not None:
            own *= delay_scale.get(name, 1.0)
        best_pred, best_t = None, 0.0
        for pred in graph.predecessors(name):
            if arrival[pred] > best_t:
                best_t, best_pred = arrival[pred], pred
        arrival[name] = best_t + own
        parent[name] = best_pred

    if not arrival:
        raise AnalysisError("netlist has no gates to time")
    end = max(arrival, key=arrival.get)
    path = []
    cursor: str | None = end
    while cursor is not None:
        path.append(cursor)
        cursor = parent[cursor]
    path.reverse()

    critical_delay = arrival[end]
    weighted_depth = critical_delay / base_delay
    f_max = 1.0 / (2.0 * critical_delay)
    return TimingReport(
        critical_path=tuple(path),
        critical_delay=critical_delay,
        weighted_depth=weighted_depth,
        f_max=f_max,
        n_tails=netlist.tail_count())


def timing_yield_under_mismatch(netlist: GateNetlist,
                                design: StsclGateDesign,
                                n_chips: int = 25,
                                seed: int = 0) -> dict[str, float]:
    """f_max statistics under per-gate tail-current mismatch.

    Sec. III-B: "using large enough transistor sizes can minimize the
    effect of current mismatch both in analog and digital parts".  Each
    gate's tail current is mirrored from the shared reference, so its
    error follows the weak-inversion mirror sigma of the tail device
    size; the gate delay scales as 1/I_SS.

    Returns a dict with keys ``nominal``, ``mean``, ``std``, ``p05``
    (all f_max values in Hz) and ``sigma_mirror`` (the per-gate current
    sigma used).
    """
    import numpy as np

    from ..constants import thermal_voltage
    from ..devices.mismatch import PELGROM_180NM

    ut = thermal_voltage(design.temperature)
    sigma = PELGROM_180NM.sigma_mirror_gain(
        design.tail_w, design.tail_l, design.tech.nmos_hvt.n, ut)
    rng = np.random.default_rng(seed)
    nominal = analyze_timing(netlist, design).f_max
    names = [g.name for g in netlist.gates]
    samples = []
    for _chip in range(n_chips):
        factors = np.maximum(0.2, 1.0 + rng.normal(0.0, sigma,
                                                   size=len(names)))
        scale = {name: 1.0 / float(f)
                 for name, f in zip(names, factors)}
        samples.append(analyze_timing(netlist, design,
                                      delay_scale=scale).f_max)
    samples_arr = np.asarray(samples)
    return {
        "nominal": float(nominal),
        "mean": float(samples_arr.mean()),
        "std": float(samples_arr.std()),
        "p05": float(np.percentile(samples_arr, 5)),
        "sigma_mirror": float(sigma),
    }
