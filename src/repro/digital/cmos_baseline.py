"""Subthreshold static-CMOS baseline (the comparison target of Fig. 3
and ref. [11], experiments E6 and E8).

Static CMOS at very low supply has

* delay      t_d   = C_L V_DD / (2 I_on),  I_on exponential in V_DD
  (below threshold the whole supply is gate overdrive);
* dynamic    P_dyn = a * N * C_L * V_DD^2 * f   (activity a);
* leakage    P_lk  = N * I_off * V_DD,  I_off the V_GS = 0 channel
  current -- present whether or not the circuit computes anything.

The STSCL comparison hinges on two structural facts this model makes
measurable: CMOS delay/power depend *exponentially* on V_DD and VT
(STSCL's do not), and at low activity the leakage floor dominates
(STSCL's total power instead scales to zero with f).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import T_NOMINAL
from ..devices.mosfet import Mosfet
from ..devices.parameters import GENERIC_180NM, Technology
from ..errors import DesignError


@dataclass(frozen=True)
class CmosGateModel:
    """One static-CMOS gate (inverter-equivalent) at a supply point.

    Attributes:
        tech: Technology (uses the standard-VT flavours).
        w_n / l_n: NMOS size [m]; PMOS is width-ratioed by kp ratio.
        c_load: Output load [F].
        temperature: Junction temperature [K].
    """

    tech: Technology = field(default_factory=lambda: GENERIC_180NM)
    w_n: float = 0.5e-6
    l_n: float = 0.18e-6
    c_load: float = 50e-15
    temperature: float = T_NOMINAL

    def _nmos(self) -> Mosfet:
        return Mosfet(self.tech.nmos, w=self.w_n, l=self.l_n)

    def _pmos(self) -> Mosfet:
        ratio = self.tech.nmos.kp / self.tech.pmos.kp
        return Mosfet(self.tech.pmos, w=self.w_n * ratio, l=self.l_n)

    def on_current(self, vdd: float) -> float:
        """Drive current of the NMOS pull-down at V_GS = V_DS = V_DD [A]."""
        if vdd <= 0.0:
            raise DesignError(f"vdd must be positive: {vdd}")
        op = self._nmos().evaluate(vd=vdd, vg=vdd, vs=0.0, vb=0.0,
                                   temperature=self.temperature)
        return op.ids

    def off_current(self, vdd: float) -> float:
        """Leakage at V_GS = 0, V_DS = V_DD [A] (NMOS and PMOS averaged)."""
        op_n = self._nmos().evaluate(vd=vdd, vg=0.0, vs=0.0, vb=0.0,
                                     temperature=self.temperature)
        op_p = self._pmos().evaluate(vd=0.0, vg=vdd, vs=vdd, vb=vdd,
                                     temperature=self.temperature)
        return 0.5 * (abs(op_n.ids) + abs(op_p.ids))

    def delay(self, vdd: float) -> float:
        """Propagation delay C_L V_DD / (2 I_on) [s]."""
        return self.c_load * vdd / (2.0 * self.on_current(vdd))

    def switching_energy(self, vdd: float) -> float:
        """C V^2 energy of one output transition pair [J]."""
        return self.c_load * vdd * vdd


@dataclass(frozen=True)
class CmosSystemModel:
    """A block of ``n_gates`` CMOS gates with activity ``alpha``.

    ``alpha`` is the average fraction of gates switching per clock --
    the paper's "low activity rate systems" are alpha << 1 (sensor
    nodes spend most gates idle most cycles).

    ``leakage_multiplier`` selects the device class relative to the
    low-leakage 0.18 um flavour this repo is calibrated on: ~1 for
    low-power flavours, ~30 for generic logic, hundreds-to-thousands
    for the scaled high-performance devices whose leakage trend the
    paper cites (ref. [3]).

    ``vdd_floor`` is the robustness limit below which subthreshold
    CMOS cannot be deployed across process corners (the Fig. 3
    sensitivity argument); the minimum-energy search respects it.
    """

    gate: CmosGateModel
    n_gates: int
    alpha: float = 0.1
    logic_depth: int = 10
    leakage_multiplier: float = 1.0
    vdd_floor: float = 0.0

    def __post_init__(self) -> None:
        if self.n_gates < 1:
            raise DesignError(f"n_gates must be >= 1: {self.n_gates}")
        if not 0.0 <= self.alpha <= 1.0:
            raise DesignError(f"activity must be in [0,1]: {self.alpha}")
        if self.logic_depth < 1:
            raise DesignError(f"logic depth must be >= 1: "
                              f"{self.logic_depth}")
        if self.leakage_multiplier <= 0.0:
            raise DesignError(
                f"leakage_multiplier must be positive: "
                f"{self.leakage_multiplier}")
        if self.vdd_floor < 0.0:
            raise DesignError(f"vdd_floor must be >= 0: {self.vdd_floor}")

    def max_frequency(self, vdd: float) -> float:
        """Critical-path-limited clock rate [Hz]."""
        return 1.0 / (2.0 * self.logic_depth * self.gate.delay(vdd))

    def dynamic_power(self, vdd: float, f_clock: float) -> float:
        """Activity-weighted switching power [W]."""
        if f_clock < 0.0:
            raise DesignError(f"f_clock must be >= 0: {f_clock}")
        return (self.alpha * self.n_gates
                * self.gate.switching_energy(vdd) * f_clock)

    def leakage_power(self, vdd: float) -> float:
        """Static leakage floor [W]."""
        return (self.n_gates * self.leakage_multiplier
                * self.gate.off_current(vdd) * vdd)

    def total_power(self, vdd: float, f_clock: float) -> float:
        """Dynamic + leakage [W]."""
        return self.dynamic_power(vdd, f_clock) + self.leakage_power(vdd)

    def energy_per_cycle(self, vdd: float, f_clock: float) -> float:
        """Total energy per clock cycle [J]."""
        if f_clock <= 0.0:
            raise DesignError(f"f_clock must be positive: {f_clock}")
        return self.total_power(vdd, f_clock) / f_clock

    def minimum_energy_supply(self, f_clock: float,
                              vdd_grid=None) -> tuple[float, float]:
        """(V_DD, energy/cycle) at the energy-optimal supply.

        The classic subthreshold CMOS minimum-energy point: lowering
        V_DD saves CV^2, but the cycle stretches exponentially so the
        leakage integrates longer.  The block is assumed to run at its
        natural speed f_max(V_DD) and idle afterwards (race-to-idle),
        which is CMOS's best case; supplies that cannot meet
        ``f_clock`` are excluded.  Used by E8 to give CMOS its best
        case before the comparison against STSCL.
        """
        if vdd_grid is None:
            vdd_grid = np.linspace(0.15, 1.2, 106)
        best_v, best_e = None, np.inf
        for vdd in vdd_grid:
            vdd = float(vdd)
            if vdd < self.vdd_floor:
                continue  # not deployable across corners (Fig. 3)
            f_natural = self.max_frequency(vdd)
            if f_natural < f_clock:
                continue  # cannot meet timing at this supply
            energy = self.energy_per_cycle(vdd, f_natural)
            if energy < best_e:
                best_v, best_e = vdd, energy
        if best_v is None:
            raise DesignError(
                f"no supply in the grid meets f = {f_clock:.3e} Hz")
        return best_v, best_e
