"""Gate-level netlist over STSCL library cells.

A :class:`GateNetlist` is a set of named nets driven by primary inputs
or by gate outputs.  Because STSCL is differential, every connection may
be *inverted for free* -- a :class:`Pin` carries the polarity flag, and
the free ``INV`` cell is never actually instantiated.

Pipelined cells (``*_PIPE``, latch-merged per paper Sec. III-B) register
their output each clock: they are the sequential cut points for both
simulation and timing analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..errors import NetlistError
from ..stscl.library import CellKind, StsclCell, cell as lookup_cell


@dataclass(frozen=True)
class Pin:
    """A connection to a net, with free differential inversion."""

    net: str
    inverted: bool = False

    def read(self, values: dict[str, bool]) -> bool:
        """The logical value seen through this pin."""
        value = values[self.net]
        return (not value) if self.inverted else value


@dataclass(frozen=True)
class Gate:
    """One instantiated cell."""

    name: str
    cell: StsclCell
    inputs: tuple[Pin, ...]
    output: str

    @property
    def is_sequential(self) -> bool:
        """True when the gate registers its output at the clock edge."""
        return (self.cell.pipelined
                or self.cell.kind in (CellKind.LATCH, CellKind.FLIPFLOP))

    def evaluate(self, values: dict[str, bool]) -> bool:
        """Combinational function of the cell at current net values."""
        return self.cell.evaluate([pin.read(values) for pin in self.inputs])


class GateNetlist:
    """A named collection of gates, primary inputs and primary outputs."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._gates: dict[str, Gate] = {}
        self._driver: dict[str, str] = {}
        self.primary_inputs: list[str] = []
        self.primary_outputs: list[str] = []

    # -- construction -----------------------------------------------------

    def add_input(self, net: str) -> str:
        """Declare a primary-input net."""
        if net in self._driver or net in self.primary_inputs:
            raise NetlistError(f"net {net!r} already driven")
        self.primary_inputs.append(net)
        return net

    def add_gate(self, name: str, cell: StsclCell | str,
                 inputs: list[Pin | str | tuple[str, bool]],
                 output: str) -> Gate:
        """Instantiate a cell.

        ``inputs`` entries may be plain net names, ``(net, inverted)``
        tuples, or :class:`Pin` objects.
        """
        if name in self._gates:
            raise NetlistError(f"duplicate gate name {name!r}")
        if output in self._driver or output in self.primary_inputs:
            raise NetlistError(f"net {output!r} already driven")
        if isinstance(cell, str):
            cell = lookup_cell(cell)
        pins = []
        for item in inputs:
            if isinstance(item, Pin):
                pins.append(item)
            elif isinstance(item, tuple):
                pins.append(Pin(net=item[0], inverted=bool(item[1])))
            else:
                pins.append(Pin(net=item))
        if len(pins) != cell.n_inputs:
            raise NetlistError(
                f"{name}: cell {cell.name} needs {cell.n_inputs} inputs, "
                f"got {len(pins)}")
        gate = Gate(name=name, cell=cell, inputs=tuple(pins), output=output)
        self._gates[name] = gate
        self._driver[output] = name
        return gate

    def mark_output(self, net: str) -> None:
        """Declare a primary-output net (must be driven)."""
        if net not in self._driver and net not in self.primary_inputs:
            raise NetlistError(f"cannot mark undriven net {net!r} as output")
        if net not in self.primary_outputs:
            self.primary_outputs.append(net)

    # -- queries ------------------------------------------------------------

    @property
    def gates(self) -> list[Gate]:
        return list(self._gates.values())

    def gate(self, name: str) -> Gate:
        try:
            return self._gates[name]
        except KeyError:
            raise NetlistError(f"no gate named {name!r}") from None

    def driver_of(self, net: str) -> Gate | None:
        """The gate driving ``net`` (None for primary inputs)."""
        name = self._driver.get(net)
        return self._gates[name] if name is not None else None

    def validate(self) -> None:
        """Check structural sanity: every pin driven, no combinational
        loops (loops through sequential cells are fine)."""
        for gate in self.gates:
            for pin in gate.inputs:
                if (pin.net not in self._driver
                        and pin.net not in self.primary_inputs):
                    raise NetlistError(
                        f"{gate.name}: input net {pin.net!r} undriven")
        graph = self.combinational_graph()
        if not nx.is_directed_acyclic_graph(graph):
            cycle = nx.find_cycle(graph)
            raise NetlistError(f"combinational loop: {cycle}")

    def combinational_graph(self) -> nx.DiGraph:
        """Gate dependency graph with sequential outputs cut.

        Nodes are gate names; an edge u -> v means combinational gate v
        reads the output of gate u *and* u is combinational (a
        sequential u supplies registered state, not a timing arc into
        the same cycle).
        """
        graph = nx.DiGraph()
        graph.add_nodes_from(self._gates)
        for gate in self.gates:
            for pin in gate.inputs:
                driver = self.driver_of(pin.net)
                if driver is not None and not driver.is_sequential:
                    graph.add_edge(driver.name, gate.name)
        return graph

    def full_graph(self) -> nx.DiGraph:
        """Gate dependency graph including sequential arcs."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self._gates)
        for gate in self.gates:
            for pin in gate.inputs:
                driver = self.driver_of(pin.net)
                if driver is not None:
                    graph.add_edge(driver.name, gate.name)
        return graph

    # -- cost accounting ------------------------------------------------------

    def tail_count(self) -> int:
        """Total tail-current branches = the power unit of the design.

        This is the paper's "196 STSCL gates" metric for the encoder:
        free inversions cost nothing, a flip-flop costs two.
        """
        return sum(g.cell.tails for g in self.gates)

    def gate_count(self) -> int:
        """Number of instantiated (non-free) cells."""
        return sum(1 for g in self.gates if g.cell.tails > 0)

    def cell_histogram(self) -> dict[str, int]:
        """Instance count per cell type."""
        histogram: dict[str, int] = {}
        for gate in self.gates:
            histogram[gate.cell.name] = histogram.get(gate.cell.name, 0) + 1
        return histogram

    def sequential_gates(self) -> list[Gate]:
        return [g for g in self.gates if g.is_sequential]

    def logic_depth(self) -> int:
        """Longest register-to-register (or port-to-register)
        combinational path length in gates.

        Zero means every cell output is registered -- the fully
        pipelined ideal of Sec. III-B, where the effective N_L of
        Eq. (1) is one (the register's own evaluation).
        """
        graph = self.combinational_graph()
        combinational = [g.name for g in self.gates if not g.is_sequential]
        if not combinational:
            return 0
        sub = graph.subgraph(combinational)
        return int(nx.dag_longest_path_length(sub)) + 1 if sub else 1
