"""The FAI ADC's digital encoder (paper Sec. III-B, Figs. 4 and 8).

Signal flow, exactly as the paper describes:

1. **Majority bubble correction** -- every thermometer bit is replaced
   by the majority of itself and its two neighbours (Fig. 8 cells),
   removing single-bit "bubbles" caused by comparator offset/noise.
   The coarse code is a plain thermometer (AND/OR boundary cells); the
   fine code from the folded comparator bank is *cyclic*, so its
   correction wraps around.
2. **Thermometer -> Gray** -- XOR-tree taps: Gray bit k is the parity of
   the thermometer at positions (2i+1)*2^k - 1.
3. **Fold-reflection correction** -- on odd folds the fine code runs
   backwards; in Gray domain a reflection is exactly an MSB flip
   (gray(N-1-x) = gray(x) XOR MSB), so one XOR with the coarse binary
   LSB fixes it.
4. **Gray -> binary** -- the usual XOR chain.
5. **Synchronisation** -- every cell is latch-merged (``*_PIPE``) and
   :func:`repro.digital.pipeline.balance_pipeline` inserts shared
   alignment registers, reducing the logic depth to one cell as in the
   paper.

The builder also exposes :func:`reference_encode`, a plain-Python golden
model the netlist is verified against bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DesignError
from .netlist import GateNetlist, Pin
from .pipeline import balance_pipeline


@dataclass(frozen=True)
class EncoderSpec:
    """Encoder geometry.

    Attributes:
        coarse_bits: MSBs from the coarse flash sub-ADC.
        fine_bits: LSBs from the folding/interpolating fine path.
        bubble_correction: Majority stage on the *coarse* thermometer
            (the paper applies it only there, Sec. III-B).
        fine_bubble_correction: Optional cyclic majority on the fine
            code.  Off by default: a cyclic majority cannot distinguish
            the legitimate single-bit codes at fold boundaries from
            bubbles, costing 1 LSB there -- a robustness-vs-accuracy
            trade-off the E12 benchmark quantifies.
        input_capture: Register every comparator output before the
            logic (synchronisation latches).
        sync_correction: The ref-[14] coarse/fine error correction: the
            fold parity is re-derived from the fine word itself
            (pi = parity of all fine bits XOR the LSB of the Gray-
            decoded value), the six low bits u64 = code mod 64 come
            entirely from the fine path, and the upper bits are
            *snapped* to the coarse estimate:
            k = ((32 s + 48 - u64) mod 2^N) >> 6, which tolerates
            coarse boundary errors up to ~15 LSB.  Without it, the
            fine Gray MSB is reflected with the coarse LSB and
            boundary offsets appear directly as DNL at codes 31/32 of
            every segment.
        pipelined: Balance into a depth-1 systolic pipeline.
    """

    coarse_bits: int = 3
    fine_bits: int = 5
    bubble_correction: bool = True
    fine_bubble_correction: bool = False
    input_capture: bool = True
    sync_correction: bool = False
    pipelined: bool = True

    def __post_init__(self) -> None:
        if self.coarse_bits < 1 or self.fine_bits < 1:
            raise DesignError("coarse_bits and fine_bits must be >= 1")

    @property
    def total_bits(self) -> int:
        return self.coarse_bits + self.fine_bits

    @property
    def n_coarse_thermo(self) -> int:
        """Coarse flash comparators (thermometer length)."""
        return 2 ** self.coarse_bits - 1

    @property
    def n_fine_thermo(self) -> int:
        """Fine comparators (cyclic code length)."""
        return 2 ** self.fine_bits


# -- golden-model helpers ---------------------------------------------------

def thermometer_to_gray_taps(n_bits: int, length: int) -> list[list[int]]:
    """Tap positions per Gray bit (index 0 = LSB) for a thermometer of
    ``length`` bits: Gray bit k taps positions (2i+1)*2^k - 1."""
    taps = []
    for k in range(n_bits):
        positions = []
        i = 1
        while i * 2 ** k - 1 < length:
            positions.append(i * 2 ** k - 1)
            i += 2
        if not positions:
            raise DesignError(
                f"no taps for Gray bit {k} at length {length}")
        taps.append(positions)
    return taps


def majority_correct(bits: tuple[bool, ...], cyclic: bool) -> tuple[bool, ...]:
    """Neighbour-majority bubble correction of a (cyclic) thermometer."""
    n = len(bits)
    corrected = []
    for i in range(n):
        if cyclic:
            left, right = bits[(i - 1) % n], bits[(i + 1) % n]
        else:
            left = bits[i - 1] if i > 0 else True
            right = bits[i + 1] if i < n - 1 else False
        trio = (left, bits[i], right)
        corrected.append(sum(trio) >= 2)
    return tuple(corrected)


def gray_to_binary(gray: list[bool]) -> int:
    """Gray word (index 0 = LSB) to integer."""
    bits = [False] * len(gray)
    acc = False
    for k in reversed(range(len(gray))):
        acc = acc != gray[k]
        bits[k] = acc
    return sum(1 << k for k, b in enumerate(bits) if b)


def _gray_word(bits: tuple[bool, ...], taps: list[list[int]]) -> list[bool]:
    word = []
    for positions in taps:
        parity = False
        for p in positions:
            parity = parity != bits[p]
        word.append(parity)
    return word


def reference_encode(coarse_thermo: tuple[bool, ...],
                     fine_thermo: tuple[bool, ...],
                     spec: EncoderSpec) -> int:
    """Golden-model encoder the gate netlist must match bit-exactly."""
    if len(coarse_thermo) != spec.n_coarse_thermo:
        raise DesignError(
            f"expected {spec.n_coarse_thermo} coarse bits, "
            f"got {len(coarse_thermo)}")
    if len(fine_thermo) != spec.n_fine_thermo:
        raise DesignError(
            f"expected {spec.n_fine_thermo} fine bits, "
            f"got {len(fine_thermo)}")
    coarse = tuple(bool(b) for b in coarse_thermo)
    fine = tuple(bool(b) for b in fine_thermo)
    if spec.bubble_correction:
        coarse = majority_correct(coarse, cyclic=False)
    if spec.fine_bubble_correction:
        fine = majority_correct(fine, cyclic=True)

    coarse_gray = _gray_word(
        coarse, thermometer_to_gray_taps(spec.coarse_bits,
                                         spec.n_coarse_thermo))
    coarse_value = gray_to_binary(coarse_gray)

    fine_gray = _gray_word(
        fine, thermometer_to_gray_taps(spec.fine_bits, spec.n_fine_thermo))

    if spec.sync_correction and spec.coarse_bits >= 2:
        # Ref-[14] correction: reconstruct code mod 2F purely from the
        # fine word, then snap the upper bits to the coarse estimate.
        f_codes = spec.n_fine_thermo  # F = 2^fine_bits
        x = gray_to_binary(fine_gray)
        p_all = False
        for bit in fine:
            p_all = p_all != bit
        fold_parity = p_all != bool(x & 1)
        u_2f = (2 * f_codes - 1 - x) if fold_parity else x
        t = (f_codes * coarse_value + f_codes + f_codes // 2
             - u_2f) % 2 ** spec.total_bits
        k = t >> (spec.fine_bits + 1)
        return k * 2 * f_codes + u_2f

    # Fold-reflection correction: odd folds run backwards; in Gray domain
    # that is an MSB flip.
    if coarse_value & 1:
        fine_gray[-1] = not fine_gray[-1]
    fine_value = gray_to_binary(fine_gray)
    return coarse_value * 2 ** spec.fine_bits + fine_value


def cyclic_fine_thermometer(code: int, spec: EncoderSpec) -> tuple[bool, ...]:
    """Fine comparator-bank output for overall ``code`` (golden model of
    the analog folding front end).

    Comparator i flips each time the input passes a zero crossing of its
    folded signal, i.e. at code levels i, i + 2^f, i + 2*2^f, ...; its
    output is the parity of crossings passed.
    """
    n = spec.n_fine_thermo
    if not 0 <= code < 2 ** spec.total_bits:
        raise DesignError(f"code {code} out of range")
    return tuple(((code - i + n - 1) // n) % 2 == 1 if code > i
                 else False for i in range(n))


def coarse_thermometer(code: int, spec: EncoderSpec) -> tuple[bool, ...]:
    """Coarse flash output for overall ``code``."""
    segment = code >> spec.fine_bits
    return tuple(i < segment for i in range(spec.n_coarse_thermo))


def _majority_correct_batch(bits: np.ndarray, cyclic: bool) -> np.ndarray:
    """Vectorised neighbour-majority over shape (n_samples, n_bits)."""
    if cyclic:
        left = np.roll(bits, 1, axis=1)
        right = np.roll(bits, -1, axis=1)
    else:
        left = np.concatenate(
            [np.ones((bits.shape[0], 1), dtype=bool), bits[:, :-1]], axis=1)
        right = np.concatenate(
            [bits[:, 1:], np.zeros((bits.shape[0], 1), dtype=bool)], axis=1)
    return (left.astype(int) + bits.astype(int)
            + right.astype(int)) >= 2


def encode_batch(coarse_thermo: np.ndarray, fine_thermo: np.ndarray,
                 spec: EncoderSpec) -> np.ndarray:
    """Vectorised :func:`reference_encode` over many samples.

    ``coarse_thermo``: shape (n_samples, 2^c - 1) booleans;
    ``fine_thermo``: shape (n_samples, 2^f) booleans.  Returns an int
    array of output codes.  Bit-exact against the scalar golden model
    (and therefore against the gate netlist).
    """
    coarse = np.asarray(coarse_thermo, dtype=bool)
    fine = np.asarray(fine_thermo, dtype=bool)
    if coarse.ndim != 2 or coarse.shape[1] != spec.n_coarse_thermo:
        raise DesignError(
            f"coarse_thermo must be (n, {spec.n_coarse_thermo})")
    if fine.ndim != 2 or fine.shape[1] != spec.n_fine_thermo:
        raise DesignError(f"fine_thermo must be (n, {spec.n_fine_thermo})")
    if spec.bubble_correction:
        coarse = _majority_correct_batch(coarse, cyclic=False)
    if spec.fine_bubble_correction:
        fine = _majority_correct_batch(fine, cyclic=True)

    coarse_taps = thermometer_to_gray_taps(spec.coarse_bits,
                                           spec.n_coarse_thermo)
    coarse_gray = np.stack(
        [np.bitwise_xor.reduce(coarse[:, taps], axis=1)
         for taps in coarse_taps], axis=1)
    fine_taps = thermometer_to_gray_taps(spec.fine_bits,
                                         spec.n_fine_thermo)
    fine_gray = np.stack(
        [np.bitwise_xor.reduce(fine[:, taps], axis=1)
         for taps in fine_taps], axis=1)

    def gray_to_binary_batch(gray: np.ndarray) -> np.ndarray:
        bits = np.zeros_like(gray)
        acc = np.zeros(gray.shape[0], dtype=bool)
        for k in reversed(range(gray.shape[1])):
            acc = acc != gray[:, k]
            bits[:, k] = acc
        weights = 1 << np.arange(gray.shape[1])
        return bits.astype(np.int64) @ weights

    coarse_value = gray_to_binary_batch(coarse_gray)

    if spec.sync_correction and spec.coarse_bits >= 2:
        f_codes = spec.n_fine_thermo
        x = gray_to_binary_batch(fine_gray)
        p_all = np.bitwise_xor.reduce(fine, axis=1)
        fold_parity = p_all != (x & 1).astype(bool)
        u_2f = np.where(fold_parity, 2 * f_codes - 1 - x, x)
        t = (f_codes * coarse_value + f_codes + f_codes // 2
             - u_2f) % 2 ** spec.total_bits
        k = t >> (spec.fine_bits + 1)
        return k * 2 * f_codes + u_2f

    odd_fold = (coarse_value & 1).astype(bool)
    fine_gray[:, -1] = fine_gray[:, -1] != odd_fold
    fine_value = gray_to_binary_batch(fine_gray)
    return coarse_value * 2 ** spec.fine_bits + fine_value


# -- netlist construction ---------------------------------------------------

#: A symbolic logic value: a compile-time constant, or a net with a free
#: differential-inversion flag (SCL wire swap).
_Val = bool | tuple[str, bool]


class _LogicBuilder:
    """Builds pipelined gates while folding constants and inversions.

    Constants never instantiate gates (they are design-time wiring) and
    inversions ride on pins for free -- both properties of differential
    source-coupled logic that keep the synthesised cell count honest.
    """

    def __init__(self, netlist: GateNetlist, prefix: str) -> None:
        self.netlist = netlist
        self.prefix = prefix
        self._count = 0

    def _emit(self, cell: str, operands: list[tuple[str, bool]]) -> _Val:
        self._count += 1
        out = f"{self.prefix}{self._count}"
        self.netlist.add_gate(f"g_{out}", cell,
                              [Pin(net=n, inverted=i) for n, i in operands],
                              out)
        return (out, False)

    @staticmethod
    def not_(a: _Val) -> _Val:
        if isinstance(a, bool):
            return not a
        return (a[0], not a[1])

    def xor2(self, a: _Val, b: _Val) -> _Val:
        if isinstance(a, bool):
            return self.not_(b) if a else b
        if isinstance(b, bool):
            return self.not_(a) if b else a
        # Operand inversions commute out of an XOR.
        out_inv = a[1] != b[1]
        net, inv = self._emit("XOR2_PIPE", [(a[0], False), (b[0], False)])
        return (net, inv != out_inv)

    def xor3(self, a: _Val, b: _Val, c: _Val) -> _Val:
        constants = [v for v in (a, b, c) if isinstance(v, bool)]
        if constants:
            nets = [v for v in (a, b, c) if not isinstance(v, bool)]
            parity = sum(constants) % 2 == 1
            if len(nets) == 0:
                return parity
            if len(nets) == 1:
                return self.not_(nets[0]) if parity else nets[0]
            result = self.xor2(nets[0], nets[1])
            return self.not_(result) if parity else result
        out_inv = (a[1] != b[1]) != c[1]
        net, inv = self._emit(
            "FASUM_PIPE", [(a[0], False), (b[0], False), (c[0], False)])
        return (net, inv != out_inv)

    def and2(self, a: _Val, b: _Val) -> _Val:
        if isinstance(a, bool):
            return b if a else False
        if isinstance(b, bool):
            return a if b else False
        return self._emit("AND2_PIPE", [a, b])

    def or2(self, a: _Val, b: _Val) -> _Val:
        if isinstance(a, bool):
            return True if a else b
        if isinstance(b, bool):
            return True if b else a
        return self._emit("OR2_PIPE", [a, b])

    def maj3(self, a: _Val, b: _Val, c: _Val) -> _Val:
        nets = [v for v in (a, b, c) if not isinstance(v, bool)]
        ones = sum(1 for v in (a, b, c) if v is True)
        zeros = sum(1 for v in (a, b, c) if v is False)
        if ones >= 2:
            return True
        if zeros >= 2:
            return False
        if ones == 1 and zeros == 1:
            return nets[0]
        if ones == 1:
            return self.or2(nets[0], nets[1])
        if zeros == 1:
            return self.and2(nets[0], nets[1])
        return self._emit("MAJ3_PIPE", [a, b, c])

    def buf(self, a: _Val) -> _Val:
        if isinstance(a, bool):
            raise DesignError("cannot register a constant")
        return self._emit("BUF_PIPE", [a])


def _xor_tree(netlist: GateNetlist, nets: list[str], prefix: str) -> str:
    """Balanced tree of XOR2_PIPE cells; returns the parity net."""
    level = 0
    current = list(nets)
    while len(current) > 1:
        nxt = []
        for k in range(0, len(current) - 1, 2):
            out = f"{prefix}_l{level}_{k // 2}"
            netlist.add_gate(f"g_{out}", "XOR2_PIPE",
                             [current[k], current[k + 1]], out)
            nxt.append(out)
        if len(current) % 2:
            nxt.append(current[-1])
        current = nxt
        level += 1
    return current[0]


def build_fai_encoder(spec: EncoderSpec | None = None) -> GateNetlist:
    """Generate the complete encoder netlist.

    Primary inputs: ``c0..`` (coarse thermometer, LSB side first) and
    ``f0..`` (cyclic fine code).  Primary outputs: ``b0..`` (binary,
    LSB first, after pipeline alignment).
    """
    spec = spec or EncoderSpec()
    netlist = GateNetlist("fai_encoder")
    raw_coarse = [netlist.add_input(f"c{i}")
                  for i in range(spec.n_coarse_thermo)]
    raw_fine = [netlist.add_input(f"f{i}")
                for i in range(spec.n_fine_thermo)]

    # Stage 0: comparator-output synchronisation latches.
    if spec.input_capture:
        coarse_in, fine_in = [], []
        for i, net in enumerate(raw_coarse):
            out = f"cr{i}"
            netlist.add_gate(f"g_{out}", "BUF_PIPE", [net], out)
            coarse_in.append(out)
        for i, net in enumerate(raw_fine):
            out = f"fr{i}"
            netlist.add_gate(f"g_{out}", "BUF_PIPE", [net], out)
            fine_in.append(out)
    else:
        coarse_in, fine_in = list(raw_coarse), list(raw_fine)

    # Stage 1: majority bubble correction (Fig. 8 cells) on the coarse
    # thermometer; boundary cells degenerate to OR / AND.
    if spec.bubble_correction:
        coarse = []
        for i, net in enumerate(coarse_in):
            out = f"cm{i}"
            if i == 0:
                # maj(1, T0, T1) = T0 OR T1
                netlist.add_gate(f"g_{out}", "OR2_PIPE",
                                 [net, coarse_in[1]], out)
            elif i == len(coarse_in) - 1:
                # maj(T[n-2], T[n-1], 0) = AND
                netlist.add_gate(f"g_{out}", "AND2_PIPE",
                                 [coarse_in[i - 1], net], out)
            else:
                netlist.add_gate(f"g_{out}", "MAJ3_PIPE",
                                 [coarse_in[i - 1], net, coarse_in[i + 1]],
                                 out)
            coarse.append(out)
    else:
        coarse = list(coarse_in)

    if spec.fine_bubble_correction:
        fine = []
        n = len(fine_in)
        for i, net in enumerate(fine_in):
            out = f"fm{i}"
            netlist.add_gate(f"g_{out}", "MAJ3_PIPE",
                             [fine_in[(i - 1) % n], net,
                              fine_in[(i + 1) % n]], out)
            fine.append(out)
    else:
        fine = list(fine_in)

    # Stage 2: thermometer -> Gray XOR trees.
    coarse_taps = thermometer_to_gray_taps(spec.coarse_bits,
                                           spec.n_coarse_thermo)
    coarse_gray = []
    for k, positions in enumerate(coarse_taps):
        nets = [coarse[p] for p in positions]
        if len(nets) == 1:
            out = f"cg{k}"
            netlist.add_gate(f"g_{out}", "BUF_PIPE", nets, out)
            coarse_gray.append(out)
        else:
            coarse_gray.append(_xor_tree(netlist, nets, f"cg{k}"))

    fine_taps = thermometer_to_gray_taps(spec.fine_bits, spec.n_fine_thermo)
    fine_gray = []
    for k, positions in enumerate(fine_taps):
        nets = [fine[p] for p in positions]
        if len(nets) == 1:
            out = f"fg{k}"
            netlist.add_gate(f"g_{out}", "BUF_PIPE", nets, out)
            fine_gray.append(out)
        else:
            fine_gray.append(_xor_tree(netlist, nets, f"fg{k}"))

    # Stage 3: coarse Gray -> binary (XOR chain from the MSB down).
    coarse_bin: list[str | None] = [None] * spec.coarse_bits
    msb = spec.coarse_bits - 1
    netlist.add_gate("g_cb_msb", "BUF_PIPE", [coarse_gray[msb]],
                     f"cb{msb}")
    coarse_bin[msb] = f"cb{msb}"
    for k in range(msb - 1, -1, -1):
        out = f"cb{k}"
        netlist.add_gate(f"g_{out}", "XOR2_PIPE",
                         [coarse_bin[k + 1], coarse_gray[k]], out)
        coarse_bin[k] = out

    if spec.sync_correction and spec.coarse_bits >= 2:
        word = _build_sync_correction(netlist, spec, coarse_bin,
                                      fine_gray, fine)
    else:
        word = _build_reflection_decode(netlist, spec, coarse_bin,
                                        fine_gray)

    # Output register stage; buf() folds any symbolic inversion into the
    # register's input pin, so the marked nets carry true polarity.
    builder = _LogicBuilder(netlist, "ob")
    for value in word:
        out_net, _inv = builder.buf(value)
        netlist.mark_output(out_net)

    netlist.validate()
    if spec.pipelined:
        netlist = balance_pipeline(netlist)
    return netlist


def _build_reflection_decode(netlist: GateNetlist, spec: EncoderSpec,
                             coarse_bin: list[str],
                             fine_gray: list[str]) -> list[_Val]:
    """The simple decode: reflect the fine Gray MSB with the coarse LSB,
    then Gray -> binary.  Returns the output word LSB-first."""
    fine_msb = spec.fine_bits - 1
    netlist.add_gate("g_reflect", "XOR2_PIPE",
                     [fine_gray[fine_msb], coarse_bin[0]], "fgc_msb")
    corrected = list(fine_gray)
    corrected[fine_msb] = "fgc_msb"

    fine_bin: list[str] = [""] * spec.fine_bits
    netlist.add_gate("g_fb_msb", "BUF_PIPE", [corrected[fine_msb]],
                     f"fb{fine_msb}")
    fine_bin[fine_msb] = f"fb{fine_msb}"
    for k in range(fine_msb - 1, -1, -1):
        out = f"fb{k}"
        netlist.add_gate(f"g_{out}", "XOR2_PIPE",
                         [fine_bin[k + 1], corrected[k]], out)
        fine_bin[k] = out
    return ([(net, False) for net in fine_bin]
            + [(net, False) for net in coarse_bin])


def _build_sync_correction(netlist: GateNetlist, spec: EncoderSpec,
                           coarse_bin: list[str], fine_gray: list[str],
                           fine: list[str]) -> list[_Val]:
    """The ref-[14] coarse/fine synchronisation datapath.

    Computes, in gates: the raw fine binary x (no reflection); the fold
    parity pi = parity(all fine bits) XOR x0; the six-bit in-pair
    position u = pi ? (2F-1-x) : x (conditional inversion = XOR);
    and the snapped upper bits k = bits [f+1..N) of
    (F*(s+1) + F/2) - u computed by a ripple carry chain with constant
    folding.  Returns the N-bit output word LSB-first.
    """
    builder = _LogicBuilder(netlist, "sc")
    f_bits = spec.fine_bits
    n_bits = spec.total_bits

    # Raw fine Gray -> binary chain (MSB down), registered per step.
    x: list[_Val] = [None] * f_bits  # type: ignore[list-item]
    x[f_bits - 1] = builder.buf((fine_gray[f_bits - 1], False))
    for k in range(f_bits - 2, -1, -1):
        x[k] = builder.xor2(x[k + 1], (fine_gray[k], False))

    # Parity of every fine bit: the Gray LSB tree already covers the
    # even positions; XOR in the complement.
    taps0 = set(thermometer_to_gray_taps(1, spec.n_fine_thermo)[0])
    others = [net for i, net in enumerate(fine) if i not in taps0]
    level: list[_Val] = [(net, False) for net in others]
    while len(level) > 1:
        nxt = [builder.xor2(level[i], level[i + 1])
               for i in range(0, len(level) - 1, 2)]
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    p_all = builder.xor2(level[0], (fine_gray[0], False))
    fold_parity = builder.xor2(p_all, x[0])

    # u = x XOR fold_parity (per bit), u[f] = fold_parity.
    u: list[_Val] = [builder.xor2(x[k], fold_parity)
                     for k in range(f_bits)]
    u.append(fold_parity)

    # Incremented coarse word w = s + 1 (mod 2^c).
    w: list[_Val] = []
    carry: _Val = True
    for j in range(spec.coarse_bits):
        s_j: _Val = (coarse_bin[j], False)
        w.append(builder.xor2(s_j, carry))
        carry = builder.and2(s_j, carry)

    # A = (w << f) | (1 << (f-1));  t = A - u = A + ~u + 1 (mod 2^N).
    def a_bit(i: int) -> _Val:
        if i == f_bits - 1:
            return True
        if f_bits <= i < f_bits + spec.coarse_bits:
            return w[i - f_bits]
        return False

    def b_bit(i: int) -> _Val:
        return builder.not_(u[i]) if i <= f_bits else True

    sum_bits: list[_Val] = []
    carry = True  # the +1 of the two's complement
    for i in range(n_bits):
        a, b = a_bit(i), b_bit(i)
        if i >= f_bits + 1:
            sum_bits.append(builder.xor3(a, b, carry))
        if i < n_bits - 1:
            carry = builder.maj3(a, b, carry)

    return u + sum_bits


def encoder_output_value(netlist: GateNetlist,
                         values: dict[str, bool]) -> int:
    """Read the binary output word from simulated net ``values``.

    Works on both the raw and the pipeline-balanced netlist (whose
    output nets may be renamed alignment nets, kept in b0.. order).
    """
    total = 0
    for k, net in enumerate(netlist.primary_outputs):
        if values[net]:
            total += 1 << k
    return total
