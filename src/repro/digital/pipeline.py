"""Automatic pipeline balancing (the paper's Sec. III-B technique).

Given a feed-forward netlist of (mostly latch-merged) cells, the
balancer assigns every net a pipeline stage and inserts shared
``BUF_PIPE`` alignment registers wherever a gate would otherwise mix
data from different cycles.  The result is a systolic design whose
register-to-register logic depth is one cell -- the condition under
which Eq. (1) applies with N_L = 1.

Alignment registers are *shared*: two gates needing the same net
delayed by the same amount reuse one chain, which keeps the tail-current
count (and hence power) honest.
"""

from __future__ import annotations

import networkx as nx

from ..errors import NetlistError
from ..stscl.library import cell as lookup_cell
from .netlist import GateNetlist, Pin


def net_stages(netlist: GateNetlist) -> dict[str, int]:
    """Pipeline stage of every net: inputs are stage 0, each sequential
    cell adds one, combinational cells stay in their input stage
    (taking the max over inputs when they differ)."""
    netlist.validate()
    graph = netlist.full_graph()
    if not nx.is_directed_acyclic_graph(graph):
        raise NetlistError("pipeline balancing needs a feed-forward netlist")
    stages: dict[str, int] = {net: 0 for net in netlist.primary_inputs}
    for name in nx.topological_sort(graph):
        gate = netlist.gate(name)
        depth = max((stages[p.net] for p in gate.inputs), default=0)
        stages[gate.output] = depth + (1 if gate.is_sequential else 0)
    return stages


def balance_pipeline(netlist: GateNetlist,
                     register_outputs: bool = True) -> GateNetlist:
    """Return a stage-aligned copy of ``netlist``.

    Every gate's inputs are brought to a common stage with shared
    ``BUF_PIPE`` chains; with ``register_outputs`` the primary outputs
    are additionally aligned to one common (deepest) stage so the whole
    word emerges in the same cycle.
    """
    stages = net_stages(netlist)
    balanced = GateNetlist(f"{netlist.name}_balanced")
    for net in netlist.primary_inputs:
        balanced.add_input(net)

    delay_cache: dict[tuple[str, int], str] = {}
    counter = [0]

    def delayed(net: str, cycles: int) -> str:
        """Net carrying ``net`` delayed by ``cycles`` registers."""
        if cycles <= 0:
            return net
        key = (net, cycles)
        if key in delay_cache:
            return delay_cache[key]
        previous = delayed(net, cycles - 1)
        counter[0] += 1
        out = f"{net}__d{cycles}"
        balanced.add_gate(f"align{counter[0]}_{net}_{cycles}", "BUF_PIPE",
                          [previous], out)
        delay_cache[key] = out
        return out

    graph = netlist.full_graph()
    out_stage: dict[str, int] = dict(stages)
    for name in nx.topological_sort(graph):
        gate = netlist.gate(name)
        if not gate.inputs:
            balanced.add_gate(name, gate.cell, [], gate.output)
            continue
        target = max(out_stage[p.net] for p in gate.inputs)
        pins = []
        for pin in gate.inputs:
            net = delayed(pin.net, target - out_stage[pin.net])
            pins.append(Pin(net=net, inverted=pin.inverted))
        balanced.add_gate(name, gate.cell, pins, gate.output)
        out_stage[gate.output] = target + (1 if gate.is_sequential else 0)

    if register_outputs and netlist.primary_outputs:
        deepest = max(out_stage[net] for net in netlist.primary_outputs)
        for net in netlist.primary_outputs:
            aligned = delayed(net, deepest - out_stage[net])
            balanced.mark_output(aligned)
    else:
        for net in netlist.primary_outputs:
            balanced.mark_output(net)
    balanced.validate()
    return balanced
