"""VCD (Value Change Dump) export of cycle simulations.

Lets any waveform viewer (GTKWave & friends) display what the
:class:`~repro.digital.simulator.CycleSimulator` computed -- the
debugging loop every RTL engineer expects from a digital toolchain.

The timescale maps one simulation cycle to one clock period of the
owning design point, so cursor readings are real seconds.
"""

from __future__ import annotations

import io as _io
import string
from typing import TextIO

from ..errors import AnalysisError
from ..stscl.gate_model import StsclGateDesign
from .netlist import GateNetlist
from .simulator import CycleSimulator

_ID_ALPHABET = string.ascii_letters + string.digits + "!#$%&"


def _identifier(index: int) -> str:
    """Compact VCD identifier for signal ``index``."""
    if index < 0:
        raise AnalysisError(f"negative signal index: {index}")
    base = len(_ID_ALPHABET)
    chars = []
    while True:
        chars.append(_ID_ALPHABET[index % base])
        index //= base
        if index == 0:
            break
    return "".join(chars)


def dump_vcd(netlist: GateNetlist,
             stimulus: list[dict[str, bool]],
             design: StsclGateDesign | None = None,
             stream: TextIO | None = None,
             nets: list[str] | None = None) -> str:
    """Simulate ``stimulus`` and serialise the run as VCD text.

    ``nets`` restricts the dump (default: primary inputs + outputs +
    every register output).  Returns the VCD text; also writes it to
    ``stream`` when given.
    """
    if not stimulus:
        raise AnalysisError("empty stimulus")
    simulator = CycleSimulator(netlist)
    if nets is None:
        nets = list(netlist.primary_inputs)
        nets += [g.output for g in netlist.sequential_gates()]
        nets += [n for n in netlist.primary_outputs if n not in nets]
    identifiers = {net: _identifier(k) for k, net in enumerate(nets)}

    period_ns = 1_000 if design is None else max(
        1, int(round(1e9 / design.max_frequency(1))))

    out = _io.StringIO()
    out.write("$date repro digital simulator $end\n")
    out.write(f"$comment netlist {netlist.name} $end\n")
    out.write("$timescale 1ns $end\n")
    out.write(f"$scope module {netlist.name} $end\n")
    for net in nets:
        safe = net.replace(" ", "_")
        out.write(f"$var wire 1 {identifiers[net]} {safe} $end\n")
    out.write("$upscope $end\n$enddefinitions $end\n")

    previous: dict[str, bool | None] = {net: None for net in nets}
    for cycle, vector in enumerate(stimulus):
        values = simulator.step(vector)
        changes = []
        for net in nets:
            value = bool(values[net])
            if previous[net] != value:
                changes.append(f"{int(value)}{identifiers[net]}")
                previous[net] = value
        if changes or cycle == 0:
            out.write(f"#{cycle * period_ns}\n")
            for change in changes:
                out.write(change + "\n")
    out.write(f"#{len(stimulus) * period_ns}\n")

    text = out.getvalue()
    if stream is not None:
        stream.write(text)
    return text
