"""VCD (Value Change Dump) export of cycle simulations.

Lets any waveform viewer (GTKWave & friends) display what the
:class:`~repro.digital.simulator.CycleSimulator` computed -- the
debugging loop every RTL engineer expects from a digital toolchain.

The timescale maps one simulation cycle to one clock period of the
owning design point, so cursor readings are real seconds.  The
serialisation goes through the shared mixed-signal writer
(:mod:`repro.scope.vcd`), which picks the coarsest *exact* timescale
for the clock period: a sub-ns or fractional period (0.5 ns, 769 ps,
9.71 us) dumps at 100ps / 1fs / 10ns ticks instead of rounding to an
integer nanosecond count -- the old behaviour put cursor readings off
by up to 2x for fast design points.
"""

from __future__ import annotations

from typing import TextIO

from ..errors import AnalysisError
from ..scope.vcd import VcdWriter, exact_timescale
from ..scope.vcd import identifier as _identifier  # re-export (legacy name)
from ..stscl.gate_model import StsclGateDesign
from .netlist import GateNetlist
from .simulator import CycleSimulator

__all__ = ["cycle_timescale", "dump_vcd"]

#: Cycle period when no design point is given: 1 us per cycle.
_DEFAULT_PERIOD_S = 1e-6

#: Quantization floor for clock periods; nothing meaningful in this
#: platform switches faster than femtoseconds.
_PERIOD_FLOOR_S = 1e-15


def cycle_timescale(period_s: float) -> tuple[str, int]:
    """``(timescale label, ticks per cycle)`` representing a period.

    The period is quantized at the 1 fs floor, then the coarsest
    standard VCD timescale that represents it exactly is chosen -- so
    a 0.5 ns clock dumps as 5 ticks of ``100ps``, not 1 tick of a
    rounded ``1ns``.
    """
    if period_s <= 0.0:
        raise AnalysisError(
            f"clock period must be positive, got {period_s!r}")
    period_quantized = max(1, round(period_s / _PERIOD_FLOOR_S)) \
        * _PERIOD_FLOOR_S
    label, scale = exact_timescale([period_quantized])
    return label, max(1, round(period_quantized / scale))


def dump_vcd(netlist: GateNetlist,
             stimulus: list[dict[str, bool]],
             design: StsclGateDesign | None = None,
             stream: TextIO | None = None,
             nets: list[str] | None = None) -> str:
    """Simulate ``stimulus`` and serialise the run as VCD text.

    ``nets`` restricts the dump (default: primary inputs + outputs +
    every register output).  Returns the VCD text; also writes it to
    ``stream`` when given.
    """
    if not stimulus:
        raise AnalysisError("empty stimulus")
    simulator = CycleSimulator(netlist)
    if nets is None:
        nets = list(netlist.primary_inputs)
        nets += [g.output for g in netlist.sequential_gates()]
        nets += [n for n in netlist.primary_outputs if n not in nets]

    period_s = (_DEFAULT_PERIOD_S if design is None
                else 1.0 / design.max_frequency(1))
    timescale, ticks_per_cycle = cycle_timescale(period_s)

    writer = VcdWriter(timescale, date="repro digital simulator",
                       comment=f"netlist {netlist.name}")
    identifiers = {net: writer.add_wire(net, scope=netlist.name)
                   for net in nets}

    for cycle, vector in enumerate(stimulus):
        values = simulator.step(vector)
        for net in nets:
            # The writer deduplicates unchanged values per variable.
            writer.change(cycle * ticks_per_cycle, identifiers[net],
                          bool(values[net]))
    writer.end_time(len(stimulus) * ticks_per_cycle)
    return writer.render(stream)
