"""Fault injection: declarative fault models and campaign running.

The paper's platform claims *graceful degradation* -- the robustness
layer quantifies it.  Declarative fault models
(:mod:`repro.faults.models`) turn a healthy circuit or converter into
its faulted twin, and a :class:`FaultCampaign`
(:mod:`repro.faults.campaign`) measures the blast radius of each fault
class on any metric (INL/DNL/ENOB deltas for the converter, operating
points for circuits).

Quick taste (the CLI's ``python -m repro faults`` runs this)::

    report = standard_adc_campaign(seed=1).run()
    print(report.describe())
"""

from __future__ import annotations

from .campaign import CampaignReport, FaultCampaign, FaultOutcome
from .models import (
    BiasBranchOpen,
    BridgedNodes,
    FaultModel,
    FaultedAdc,
    ResistorDrift,
    StuckComparator,
    VtOutlier,
)

__all__ = [
    "FaultModel", "FaultedAdc",
    "StuckComparator", "BiasBranchOpen", "BridgedNodes", "VtOutlier",
    "ResistorDrift",
    "FaultCampaign", "FaultOutcome", "CampaignReport",
    "standard_adc_faults", "standard_adc_campaign",
]


def standard_adc_faults() -> list[FaultModel]:
    """The default converter fault catalogue, mild to catastrophic."""
    return [
        StuckComparator("fine", 9, True),
        StuckComparator("fine", 20, False),
        StuckComparator("coarse", 3, False),
        StuckComparator("coarse", 5, True),
        BiasBranchOpen("fine"),
        BiasBranchOpen("coarse"),
    ]


def standard_adc_campaign(seed: int = 1, samples_per_code: int = 8,
                          faults=None) -> FaultCampaign:
    """Blast-radius campaign (INL/DNL/ENOB) on chip ``seed``."""
    from ..adc import FaiAdc, dynamic_test, linearity_test

    def build():
        return FaiAdc(ideal=False, seed=seed)

    def metrics(adc) -> dict[str, float]:
        linearity = linearity_test(adc, samples_per_code=samples_per_code)
        dynamic = dynamic_test(adc, f_sample=80e3, n_samples=1024,
                               cycles=29)
        return {"inl": linearity.inl_max, "dnl": linearity.dnl_max,
                "enob": dynamic.enob}

    return FaultCampaign(build=build, metric_fn=metrics,
                         faults=faults or standard_adc_faults())
