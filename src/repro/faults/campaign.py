"""Fault campaigns: apply a fault catalogue, measure the blast radius.

A :class:`FaultCampaign` rebuilds the target fresh for every fault
(faults never contaminate each other), runs the same metric function on
the healthy and each faulted instance, and reports per-fault metric
deltas.  A fault whose evaluation fails -- a non-converging faulted
circuit is *expected* for severe faults -- is recorded with its error
message instead of aborting the campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from .. import telemetry
from ..analysis.parallel import (PlanToken, ensure_picklable, fetch_plan,
                                 publish_plan, run_ordered,
                                 validate_workers)
from ..errors import AnalysisError, ReproError
from .models import FaultModel


def _coerce_metrics(raw: Mapping[str, float]) -> dict[str, float]:
    metrics = {name: float(value) for name, value in raw.items()}
    if not metrics:
        raise AnalysisError("metric function returned no metrics")
    return metrics


def _fault_eval(build: Callable[[], object],
                metric_fn: Callable[[object], Mapping[str, float]],
                fault: "FaultModel") -> tuple[str, object]:
    try:
        faulted = fault.apply(build())
        return ("ok", _coerce_metrics(metric_fn(faulted)))
    except ReproError as error:
        return ("error", error)


class _OpResultFault:
    """A fault wrapper whose ``apply`` also *solves* the faulted
    circuit.

    The batched campaign hands ``metric_fn`` solved
    :class:`~repro.spice.results.OpResult` objects (its lanes come out
    of the stacked solve already solved); structural faults that cannot
    ride a lane go through this wrapper so they honour the same
    contract.
    """

    def __init__(self, fault: "FaultModel", solve) -> None:
        self._fault = fault
        self._solve = solve

    @property
    def name(self) -> str:
        return self._fault.name

    def apply(self, target):
        return self._solve(self._fault.apply(target))


def _fault_worker(build: Callable[[], object],
                  metric_fn: Callable[[object], Mapping[str, float]],
                  fault: "FaultModel",
                  capture_trace: bool = False) -> tuple:
    """Evaluate one fault against a fresh target.

    Module-level so it pickles into worker processes; library errors
    (non-converging faulted circuits above all) come back as data so
    the parent records them exactly like the serial loop would.  With
    ``capture_trace`` set (parallel path under an active parent trace),
    the worker drops any fork-inherited dead-copy trace, records its
    own, and ships the spans back as a third tuple element for in-order
    merging.
    """
    if capture_trace:
        telemetry.reset()
        with telemetry.tracing(f"fault-{fault.name}",
                               fault=fault.name) as trace:
            outcome = _fault_eval(build, metric_fn, fault)
        return outcome + (trace.root.to_dict(),)
    with telemetry.span(f"fault-{fault.name}", fault=fault.name):
        return _fault_eval(build, metric_fn, fault)


def _fault_worker_shm(token: PlanToken, fault: "FaultModel",
                      capture_trace: bool = False) -> tuple:
    """Shared-memory twin of :func:`_fault_worker`: the ``(build,
    metric_fn)`` pair is resolved through the worker-local plan cache,
    so each task ships only the token and its fault.  The fetch runs
    inside the traced region so the plan-cache counters ride back with
    the fault's own spans."""
    if capture_trace:
        telemetry.reset()
        with telemetry.tracing(f"fault-{fault.name}",
                               fault=fault.name) as trace:
            build, metric_fn = fetch_plan(token)
            outcome = _fault_eval(build, metric_fn, fault)
        return outcome + (trace.root.to_dict(),)
    with telemetry.span(f"fault-{fault.name}", fault=fault.name):
        build, metric_fn = fetch_plan(token)
        return _fault_eval(build, metric_fn, fault)


@dataclass(frozen=True)
class FaultOutcome:
    """What one fault did to the metrics.

    Attributes:
        fault: Fault name.
        metrics: Metric name -> faulted value (None when the evaluation
            failed).
        deltas: Metric name -> faulted minus baseline.
        error: Failure message when the faulted target could not be
            evaluated.
    """

    fault: str
    metrics: dict[str, float] | None = None
    deltas: dict[str, float] | None = None
    error: str | None = None

    @property
    def evaluated(self) -> bool:
        return self.error is None


@dataclass
class CampaignReport:
    """Blast-radius report of one campaign run.

    Attributes:
        baseline: Healthy-target metrics.
        outcomes: One :class:`FaultOutcome` per fault, in catalogue
            order.
    """

    baseline: dict[str, float]
    outcomes: list[FaultOutcome] = field(default_factory=list)

    @property
    def failed(self) -> list[FaultOutcome]:
        """Faults whose evaluation itself broke down."""
        return [o for o in self.outcomes if not o.evaluated]

    def outcome(self, fault: str) -> FaultOutcome:
        for candidate in self.outcomes:
            if candidate.fault == fault:
                return candidate
        raise AnalysisError(f"no fault {fault!r} in campaign report")

    def worst(self, metric: str) -> FaultOutcome:
        """The evaluated fault with the largest |delta| on ``metric``."""
        evaluated = [o for o in self.outcomes
                     if o.evaluated and metric in (o.deltas or {})]
        if not evaluated:
            raise AnalysisError(
                f"no evaluated fault carries metric {metric!r}")
        return max(evaluated, key=lambda o: abs(o.deltas[metric]))

    def describe(self) -> str:
        """Human-readable blast-radius table."""
        names = list(self.baseline)
        width = max([len(o.fault) for o in self.outcomes] + [8])
        header = f"{'fault':{width}}  " + "  ".join(
            f"{f'd({name})':>12}" for name in names)
        lines = [header]
        lines.append(f"{'baseline':{width}}  " + "  ".join(
            f"{self.baseline[name]:>12.3f}" for name in names))
        for outcome in self.outcomes:
            if not outcome.evaluated:
                lines.append(f"{outcome.fault:{width}}  "
                             f"FAILED: {outcome.error}")
                continue
            lines.append(f"{outcome.fault:{width}}  " + "  ".join(
                f"{outcome.deltas.get(name, float('nan')):>+12.3f}"
                for name in names))
        return "\n".join(lines)


class FaultCampaign:
    """Run a fault catalogue against a rebuildable target.

    Example -- blast radius of comparator faults on a chip::

        campaign = FaultCampaign(
            build=lambda: FaiAdc(seed=3),
            metric_fn=lambda adc: {
                "inl": linearity_test(adc, samples_per_code=4).inl_max},
            faults=[StuckComparator("fine", 9, True),
                    BiasBranchOpen("coarse")])
        report = campaign.run()
        print(report.describe())

    Attributes:
        build: Zero-argument factory producing a *fresh* healthy target
            (circuit or converter); called once per fault plus once for
            the baseline.
        metric_fn: Target -> metric dict; must return the same keys for
            every target it can evaluate.
        faults: The fault catalogue.
        n_workers: Process-pool width for the per-fault evaluations
            (the baseline always runs in-process).  Every fault gets a
            fresh target either way, so the report is identical to the
            serial run, in catalogue order; ``build`` / ``metric_fn`` /
            the faults must then be picklable (module-level functions,
            not lambdas).
        backend: ``"serial"`` (default) evaluates one fault at a time.
            ``"batched"`` solves the baseline and every fault
            expressible as a parameter perturbation
            (:meth:`~repro.faults.models.FaultModel.lane_spec`) as one
            stacked DC system; the contract changes: ``build`` must
            return a :class:`~repro.spice.netlist.Circuit` and
            ``metric_fn`` receives the solved
            :class:`~repro.spice.results.OpResult` (for batched lanes
            and structural faults alike) instead of the raw target.
        shm: Parallel-path payload policy (``"auto"`` / ``"on"`` /
            ``"off"``): with shared memory available the ``(build,
            metric_fn)`` pair is published once and tasks carry only a
            token plus their fault; ``"off"`` forces classic per-task
            pickling, ``"on"`` errors when shared memory is missing.
            Reports are identical either way.
        analysis: ``"op"`` (default) measures DC operating points.
            ``"transient"`` (``backend="batched"`` only) integrates the
            baseline and every lane-expressible fault as one lockstep
            :func:`~repro.spice.batch.batch_transient` campaign to
            ``t_stop``; ``metric_fn`` then receives solved
            :class:`~repro.spice.results.TranResult` waveforms, and
            structural faults rebuild-and-integrate serially under the
            same contract.
        t_stop / tran_options: The transient window and options,
            required for / honoured by ``analysis="transient"``.
    """

    def __init__(self, build: Callable[[], object],
                 metric_fn: Callable[[object], Mapping[str, float]],
                 faults: Sequence[FaultModel],
                 n_workers: int | None = None,
                 backend: str = "serial",
                 matrix_backend: str | None = None,
                 shm: str = "auto",
                 analysis: str = "op",
                 t_stop: float | None = None,
                 tran_options=None) -> None:
        if not faults:
            raise AnalysisError("campaign needs at least one fault")
        if shm not in ("auto", "on", "off"):
            raise AnalysisError(
                f"shm must be 'auto', 'on' or 'off', got {shm!r}")
        if backend not in ("serial", "batched"):
            raise AnalysisError(
                f"backend must be 'serial' or 'batched', got {backend!r}")
        if analysis not in ("op", "transient"):
            raise AnalysisError(
                f"analysis must be 'op' or 'transient', got {analysis!r}")
        if analysis == "transient":
            if backend != "batched":
                raise AnalysisError(
                    "analysis='transient' campaigns run on the batched "
                    "backend; pass backend='batched'")
            if t_stop is None or t_stop <= 0.0:
                raise AnalysisError(
                    "analysis='transient' needs a positive t_stop")
        if backend == "batched" and n_workers not in (None, 1):
            raise AnalysisError(
                "backend='batched' replaces the process pool; "
                "leave n_workers unset")
        if matrix_backend is not None and backend != "batched":
            raise AnalysisError(
                "matrix_backend overrides apply to backend='batched' only")
        self.build = build
        self.metric_fn = metric_fn
        self.faults = list(faults)
        self.n_workers = validate_workers(n_workers)
        self.backend = backend
        self.matrix_backend = matrix_backend
        self.shm = shm
        self.analysis = analysis
        self.t_stop = t_stop
        self.tran_options = tran_options

    def _evaluate(self, target) -> dict[str, float]:
        return _coerce_metrics(self.metric_fn(target))

    def _fault_outcomes(self) -> list[tuple[str, object]]:
        """("ok", metrics) / ("error", exception) per fault, in
        catalogue order, serial or fanned out over a process pool."""
        if self.n_workers > 1:
            for role, obj in (("build", self.build),
                              ("metric_fn", self.metric_fn),
                              ("fault catalogue", self.faults)):
                ensure_picklable(obj, role)
            trace_on = telemetry.is_enabled()
            plan = (publish_plan((self.build, self.metric_fn))
                    if self.shm in ("auto", "on") else None)
            if plan is None:
                if self.shm == "on":
                    raise AnalysisError(
                        "shm='on' but shared memory is unavailable on "
                        "this platform; use shm='auto' to fall back to "
                        "per-task pickling")
                return run_ordered(_fault_worker,
                                   [(self.build, self.metric_fn, fault,
                                     trace_on)
                                    for fault in self.faults],
                                   self.n_workers)
            try:
                return run_ordered(_fault_worker_shm,
                                   [(plan.token, fault, trace_on)
                                    for fault in self.faults],
                                   self.n_workers)
            finally:
                plan.close()
        return [_fault_worker(self.build, self.metric_fn, fault)
                for fault in self.faults]

    def _batched_outcomes(self) -> tuple[dict[str, float],
                                         list[tuple[str, object]]]:
        """(baseline metrics, per-fault outcome stream) from one
        stacked solve.

        Lane 0 is the unperturbed baseline; every lane-expressible
        fault rides the same :func:`~repro.spice.batch.
        batch_operating_point`.  Structural faults (``lane_spec`` is
        None) are evaluated through the classic rebuild-and-solve path
        -- with the same OpResult-based ``metric_fn`` contract -- so
        one campaign mixes both kinds transparently.
        """
        from ..spice.batch import LaneSpec, batch_operating_point
        from ..spice.dc import operating_point
        from ..spice.netlist import Circuit

        circuit = self.build()
        if not isinstance(circuit, Circuit):
            raise AnalysisError(
                "backend='batched' needs build() to return a Circuit, "
                f"got {type(circuit).__name__}")
        lanes = [LaneSpec(label="baseline")]
        lane_of_fault: dict[int, int] = {}
        for index, fault in enumerate(self.faults):
            lane = fault.lane_spec(circuit)
            if lane is not None:
                lane_of_fault[index] = len(lanes)
                lanes.append(lane)
        batch = batch_operating_point(circuit, lanes, on_error="skip",
                                      matrix_backend=self.matrix_backend)
        lane_errors = dict(batch.failures)
        if 0 in lane_errors:
            raise lane_errors[0]  # baseline failures always propagate
        baseline = self._evaluate(batch.points[0])
        outcomes: list[tuple[str, object]] = []
        for index, fault in enumerate(self.faults):
            lane_index = lane_of_fault.get(index)
            with telemetry.span(f"fault-{fault.name}", fault=fault.name,
                                batched=lane_index is not None):
                if lane_index is None:
                    outcomes.append(_fault_eval(
                        self.build, self.metric_fn,
                        _OpResultFault(fault, operating_point)))
                    continue
                error = lane_errors.get(lane_index)
                if error is not None:
                    outcomes.append(("error", error))
                    continue
                try:
                    outcomes.append(("ok", _coerce_metrics(
                        self.metric_fn(batch.points[lane_index]))))
                except ReproError as metric_error:
                    outcomes.append(("error", metric_error))
        return baseline, outcomes

    def _batched_tran_outcomes(self) -> tuple[dict[str, float],
                                              list[tuple[str, object]]]:
        """The transient twin of :meth:`_batched_outcomes`: baseline
        plus every lane-expressible fault integrate in lockstep on one
        shared grid; ``metric_fn`` measures the per-lane waveforms.
        Structural faults rebuild and integrate serially, same
        TranResult contract."""
        from ..spice.batch import LaneSpec, batch_transient
        from ..spice.netlist import Circuit
        from ..spice.transient import transient

        circuit = self.build()
        if not isinstance(circuit, Circuit):
            raise AnalysisError(
                "backend='batched' needs build() to return a Circuit, "
                f"got {type(circuit).__name__}")
        lanes = [LaneSpec(label="baseline")]
        lane_of_fault: dict[int, int] = {}
        for index, fault in enumerate(self.faults):
            lane = fault.lane_spec(circuit)
            if lane is not None:
                lane_of_fault[index] = len(lanes)
                lanes.append(lane)
        batch = batch_transient(circuit, lanes, self.t_stop,
                                self.tran_options, on_error="skip",
                                matrix_backend=self.matrix_backend)
        lane_errors = dict(batch.failures)
        if 0 in lane_errors:
            raise lane_errors[0]  # baseline failures always propagate
        baseline = self._evaluate(batch.results[0])

        def solve_tran(faulted):
            return transient(faulted, self.t_stop, self.tran_options)

        outcomes: list[tuple[str, object]] = []
        for index, fault in enumerate(self.faults):
            lane_index = lane_of_fault.get(index)
            with telemetry.span(f"fault-{fault.name}", fault=fault.name,
                                batched=lane_index is not None):
                if lane_index is None:
                    outcomes.append(_fault_eval(
                        self.build, self.metric_fn,
                        _OpResultFault(fault, solve_tran)))
                    continue
                error = lane_errors.get(lane_index)
                if error is not None:
                    outcomes.append(("error", error))
                    continue
                try:
                    outcomes.append(("ok", _coerce_metrics(
                        self.metric_fn(batch.results[lane_index]))))
                except ReproError as metric_error:
                    outcomes.append(("error", metric_error))
        return baseline, outcomes

    def run(self) -> CampaignReport:
        """Baseline plus one outcome per fault."""
        with telemetry.span("fault-campaign", n_faults=len(self.faults),
                            n_workers=self.n_workers,
                            backend=self.backend,
                            analysis=self.analysis) as tspan:
            return self._run(tspan)

    def _run(self, tspan) -> CampaignReport:
        if self.backend == "batched" and self.analysis == "transient":
            baseline, outcomes = self._batched_tran_outcomes()
        elif self.backend == "batched":
            baseline, outcomes = self._batched_outcomes()
        else:
            with telemetry.span("baseline"):
                baseline = self._evaluate(self.build())
            outcomes = self._fault_outcomes()
        report = CampaignReport(baseline=baseline)
        for fault, outcome in zip(self.faults, outcomes):
            status, payload = outcome[0], outcome[1]
            if len(outcome) > 2 and outcome[2] is not None:
                # Worker-captured spans, merged in catalogue order.
                tspan.adopt(outcome[2])
            if status == "error":
                tspan.event("fault-eval-failed", fault=fault.name,
                            why=str(payload))
                tspan.inc("faults_failed")
                report.outcomes.append(FaultOutcome(
                    fault=fault.name, error=str(payload)))
                continue
            metrics = payload
            deltas = {name: metrics[name] - baseline[name]
                      for name in baseline if name in metrics}
            report.outcomes.append(FaultOutcome(
                fault=fault.name, metrics=metrics, deltas=deltas))
        tspan.annotate(n_failed=len(report.failed))
        return report
