"""Fault campaigns: apply a fault catalogue, measure the blast radius.

A :class:`FaultCampaign` rebuilds the target fresh for every fault
(faults never contaminate each other), runs the same metric function on
the healthy and each faulted instance, and reports per-fault metric
deltas.  A fault whose evaluation fails -- a non-converging faulted
circuit is *expected* for severe faults -- is recorded with its error
message instead of aborting the campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from .. import telemetry
from ..analysis.parallel import (ensure_picklable, run_ordered,
                                 validate_workers)
from ..errors import AnalysisError, ReproError
from .models import FaultModel


def _coerce_metrics(raw: Mapping[str, float]) -> dict[str, float]:
    metrics = {name: float(value) for name, value in raw.items()}
    if not metrics:
        raise AnalysisError("metric function returned no metrics")
    return metrics


def _fault_eval(build: Callable[[], object],
                metric_fn: Callable[[object], Mapping[str, float]],
                fault: "FaultModel") -> tuple[str, object]:
    try:
        faulted = fault.apply(build())
        return ("ok", _coerce_metrics(metric_fn(faulted)))
    except ReproError as error:
        return ("error", error)


def _fault_worker(build: Callable[[], object],
                  metric_fn: Callable[[object], Mapping[str, float]],
                  fault: "FaultModel",
                  capture_trace: bool = False) -> tuple:
    """Evaluate one fault against a fresh target.

    Module-level so it pickles into worker processes; library errors
    (non-converging faulted circuits above all) come back as data so
    the parent records them exactly like the serial loop would.  With
    ``capture_trace`` set (parallel path under an active parent trace),
    the worker drops any fork-inherited dead-copy trace, records its
    own, and ships the spans back as a third tuple element for in-order
    merging.
    """
    if capture_trace:
        telemetry.reset()
        with telemetry.tracing(f"fault-{fault.name}",
                               fault=fault.name) as trace:
            outcome = _fault_eval(build, metric_fn, fault)
        return outcome + (trace.root.to_dict(),)
    with telemetry.span(f"fault-{fault.name}", fault=fault.name):
        return _fault_eval(build, metric_fn, fault)


@dataclass(frozen=True)
class FaultOutcome:
    """What one fault did to the metrics.

    Attributes:
        fault: Fault name.
        metrics: Metric name -> faulted value (None when the evaluation
            failed).
        deltas: Metric name -> faulted minus baseline.
        error: Failure message when the faulted target could not be
            evaluated.
    """

    fault: str
    metrics: dict[str, float] | None = None
    deltas: dict[str, float] | None = None
    error: str | None = None

    @property
    def evaluated(self) -> bool:
        return self.error is None


@dataclass
class CampaignReport:
    """Blast-radius report of one campaign run.

    Attributes:
        baseline: Healthy-target metrics.
        outcomes: One :class:`FaultOutcome` per fault, in catalogue
            order.
    """

    baseline: dict[str, float]
    outcomes: list[FaultOutcome] = field(default_factory=list)

    @property
    def failed(self) -> list[FaultOutcome]:
        """Faults whose evaluation itself broke down."""
        return [o for o in self.outcomes if not o.evaluated]

    def outcome(self, fault: str) -> FaultOutcome:
        for candidate in self.outcomes:
            if candidate.fault == fault:
                return candidate
        raise AnalysisError(f"no fault {fault!r} in campaign report")

    def worst(self, metric: str) -> FaultOutcome:
        """The evaluated fault with the largest |delta| on ``metric``."""
        evaluated = [o for o in self.outcomes
                     if o.evaluated and metric in (o.deltas or {})]
        if not evaluated:
            raise AnalysisError(
                f"no evaluated fault carries metric {metric!r}")
        return max(evaluated, key=lambda o: abs(o.deltas[metric]))

    def describe(self) -> str:
        """Human-readable blast-radius table."""
        names = list(self.baseline)
        width = max([len(o.fault) for o in self.outcomes] + [8])
        header = f"{'fault':{width}}  " + "  ".join(
            f"{f'd({name})':>12}" for name in names)
        lines = [header]
        lines.append(f"{'baseline':{width}}  " + "  ".join(
            f"{self.baseline[name]:>12.3f}" for name in names))
        for outcome in self.outcomes:
            if not outcome.evaluated:
                lines.append(f"{outcome.fault:{width}}  "
                             f"FAILED: {outcome.error}")
                continue
            lines.append(f"{outcome.fault:{width}}  " + "  ".join(
                f"{outcome.deltas.get(name, float('nan')):>+12.3f}"
                for name in names))
        return "\n".join(lines)


class FaultCampaign:
    """Run a fault catalogue against a rebuildable target.

    Example -- blast radius of comparator faults on a chip::

        campaign = FaultCampaign(
            build=lambda: FaiAdc(seed=3),
            metric_fn=lambda adc: {
                "inl": linearity_test(adc, samples_per_code=4).inl_max},
            faults=[StuckComparator("fine", 9, True),
                    BiasBranchOpen("coarse")])
        report = campaign.run()
        print(report.describe())

    Attributes:
        build: Zero-argument factory producing a *fresh* healthy target
            (circuit or converter); called once per fault plus once for
            the baseline.
        metric_fn: Target -> metric dict; must return the same keys for
            every target it can evaluate.
        faults: The fault catalogue.
        n_workers: Process-pool width for the per-fault evaluations
            (the baseline always runs in-process).  Every fault gets a
            fresh target either way, so the report is identical to the
            serial run, in catalogue order; ``build`` / ``metric_fn`` /
            the faults must then be picklable (module-level functions,
            not lambdas).
    """

    def __init__(self, build: Callable[[], object],
                 metric_fn: Callable[[object], Mapping[str, float]],
                 faults: Sequence[FaultModel],
                 n_workers: int | None = None) -> None:
        if not faults:
            raise AnalysisError("campaign needs at least one fault")
        self.build = build
        self.metric_fn = metric_fn
        self.faults = list(faults)
        self.n_workers = validate_workers(n_workers)

    def _evaluate(self, target) -> dict[str, float]:
        return _coerce_metrics(self.metric_fn(target))

    def _fault_outcomes(self) -> list[tuple[str, object]]:
        """("ok", metrics) / ("error", exception) per fault, in
        catalogue order, serial or fanned out over a process pool."""
        if self.n_workers > 1:
            for role, obj in (("build", self.build),
                              ("metric_fn", self.metric_fn),
                              ("fault catalogue", self.faults)):
                ensure_picklable(obj, role)
            return run_ordered(_fault_worker,
                               [(self.build, self.metric_fn, fault,
                                 telemetry.is_enabled())
                                for fault in self.faults],
                               self.n_workers)
        return [_fault_worker(self.build, self.metric_fn, fault)
                for fault in self.faults]

    def run(self) -> CampaignReport:
        """Baseline plus one outcome per fault."""
        with telemetry.span("fault-campaign", n_faults=len(self.faults),
                            n_workers=self.n_workers) as tspan:
            return self._run(tspan)

    def _run(self, tspan) -> CampaignReport:
        with telemetry.span("baseline"):
            baseline = self._evaluate(self.build())
        report = CampaignReport(baseline=baseline)
        for fault, outcome in zip(self.faults, self._fault_outcomes()):
            status, payload = outcome[0], outcome[1]
            if len(outcome) > 2 and outcome[2] is not None:
                # Worker-captured spans, merged in catalogue order.
                tspan.adopt(outcome[2])
            if status == "error":
                tspan.event("fault-eval-failed", fault=fault.name,
                            why=str(payload))
                tspan.inc("faults_failed")
                report.outcomes.append(FaultOutcome(
                    fault=fault.name, error=str(payload)))
                continue
            metrics = payload
            deltas = {name: metrics[name] - baseline[name]
                      for name in baseline if name in metrics}
            report.outcomes.append(FaultOutcome(
                fault=fault.name, metrics=metrics, deltas=deltas))
        tspan.annotate(n_failed=len(report.failed))
        return report
