"""Fault campaigns: apply a fault catalogue, measure the blast radius.

A :class:`FaultCampaign` rebuilds the target fresh for every fault
(faults never contaminate each other), runs the same metric function on
the healthy and each faulted instance, and reports per-fault metric
deltas.  A fault whose evaluation fails -- a non-converging faulted
circuit is *expected* for severe faults -- is recorded with its error
message instead of aborting the campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..errors import AnalysisError, ReproError
from .models import FaultModel


@dataclass(frozen=True)
class FaultOutcome:
    """What one fault did to the metrics.

    Attributes:
        fault: Fault name.
        metrics: Metric name -> faulted value (None when the evaluation
            failed).
        deltas: Metric name -> faulted minus baseline.
        error: Failure message when the faulted target could not be
            evaluated.
    """

    fault: str
    metrics: dict[str, float] | None = None
    deltas: dict[str, float] | None = None
    error: str | None = None

    @property
    def evaluated(self) -> bool:
        return self.error is None


@dataclass
class CampaignReport:
    """Blast-radius report of one campaign run.

    Attributes:
        baseline: Healthy-target metrics.
        outcomes: One :class:`FaultOutcome` per fault, in catalogue
            order.
    """

    baseline: dict[str, float]
    outcomes: list[FaultOutcome] = field(default_factory=list)

    @property
    def failed(self) -> list[FaultOutcome]:
        """Faults whose evaluation itself broke down."""
        return [o for o in self.outcomes if not o.evaluated]

    def outcome(self, fault: str) -> FaultOutcome:
        for candidate in self.outcomes:
            if candidate.fault == fault:
                return candidate
        raise AnalysisError(f"no fault {fault!r} in campaign report")

    def worst(self, metric: str) -> FaultOutcome:
        """The evaluated fault with the largest |delta| on ``metric``."""
        evaluated = [o for o in self.outcomes
                     if o.evaluated and metric in (o.deltas or {})]
        if not evaluated:
            raise AnalysisError(
                f"no evaluated fault carries metric {metric!r}")
        return max(evaluated, key=lambda o: abs(o.deltas[metric]))

    def describe(self) -> str:
        """Human-readable blast-radius table."""
        names = list(self.baseline)
        width = max([len(o.fault) for o in self.outcomes] + [8])
        header = f"{'fault':{width}}  " + "  ".join(
            f"{f'd({name})':>12}" for name in names)
        lines = [header]
        lines.append(f"{'baseline':{width}}  " + "  ".join(
            f"{self.baseline[name]:>12.3f}" for name in names))
        for outcome in self.outcomes:
            if not outcome.evaluated:
                lines.append(f"{outcome.fault:{width}}  "
                             f"FAILED: {outcome.error}")
                continue
            lines.append(f"{outcome.fault:{width}}  " + "  ".join(
                f"{outcome.deltas.get(name, float('nan')):>+12.3f}"
                for name in names))
        return "\n".join(lines)


class FaultCampaign:
    """Run a fault catalogue against a rebuildable target.

    Example -- blast radius of comparator faults on a chip::

        campaign = FaultCampaign(
            build=lambda: FaiAdc(seed=3),
            metric_fn=lambda adc: {
                "inl": linearity_test(adc, samples_per_code=4).inl_max},
            faults=[StuckComparator("fine", 9, True),
                    BiasBranchOpen("coarse")])
        report = campaign.run()
        print(report.describe())

    Attributes:
        build: Zero-argument factory producing a *fresh* healthy target
            (circuit or converter); called once per fault plus once for
            the baseline.
        metric_fn: Target -> metric dict; must return the same keys for
            every target it can evaluate.
        faults: The fault catalogue.
    """

    def __init__(self, build: Callable[[], object],
                 metric_fn: Callable[[object], Mapping[str, float]],
                 faults: Sequence[FaultModel]) -> None:
        if not faults:
            raise AnalysisError("campaign needs at least one fault")
        self.build = build
        self.metric_fn = metric_fn
        self.faults = list(faults)

    def _evaluate(self, target) -> dict[str, float]:
        metrics = {name: float(value)
                   for name, value in self.metric_fn(target).items()}
        if not metrics:
            raise AnalysisError("metric function returned no metrics")
        return metrics

    def run(self) -> CampaignReport:
        """Baseline plus one outcome per fault."""
        baseline = self._evaluate(self.build())
        report = CampaignReport(baseline=baseline)
        for fault in self.faults:
            try:
                faulted = fault.apply(self.build())
                metrics = self._evaluate(faulted)
            except ReproError as error:
                report.outcomes.append(FaultOutcome(
                    fault=fault.name, error=str(error)))
                continue
            deltas = {name: metrics[name] - baseline[name]
                      for name in baseline if name in metrics}
            report.outcomes.append(FaultOutcome(
                fault=fault.name, metrics=metrics, deltas=deltas))
        return report
