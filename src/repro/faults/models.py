"""Declarative fault models for circuits and converters.

A :class:`FaultModel` knows how to turn a healthy target -- a
:class:`~repro.spice.netlist.Circuit` or a
:class:`~repro.adc.fai.FaiAdc` -- into its faulted twin.  Models never
mutate a shared object behind the caller's back: circuit faults mutate
the *fresh* instance handed to :meth:`FaultModel.apply` (campaigns
rebuild the target per fault), and converter faults return a
:class:`FaultedAdc` wrapper, leaving the chip itself untouched.

The catalogue mirrors how real silicon degrades:

* :class:`StuckComparator` -- a latch output frozen high/low
  (metastability hard-failure, broken reset);
* :class:`BiasBranchOpen` -- a tail/bias branch electromigrated open:
  on a circuit, a current source delivering nothing; on a converter, a
  comparator bank with no tail current whose decisions never fire;
* :class:`BridgedNodes` -- a resistive short between two nets
  (particle defect, whisker);
* :class:`VtOutlier` -- one device's threshold far off its Pelgrom
  distribution (gate-oxide charge trapping);
* :class:`ResistorDrift` -- a resistor aged away from its drawn value.
"""

from __future__ import annotations

import abc
from dataclasses import replace as _dc_replace

import numpy as np

from ..adc.fai import FaiAdc
from ..digital.encoder import EncoderSpec, encode_batch
from ..errors import FaultInjectionError, NetlistError
from ..spice.elements import CurrentSource, MosElement, Resistor
from ..spice.netlist import Circuit
from ..spice.waveforms import dc_wave


class FaultedAdc:
    """A converter with comparator outputs forced after the analog
    front end.

    Drop-in for :class:`~repro.adc.fai.FaiAdc` wherever conversion is
    concerned (``convert_batch`` / the test harnesses in
    :mod:`repro.adc.testbench`); everything else delegates to the
    wrapped chip.

    Attributes:
        adc: The healthy chip underneath.
        stuck_fine: Fine comparator index -> forced boolean.
        stuck_coarse: Coarse comparator index -> forced boolean.
        spec: Encoder configuration used for the decode (defaults to
            the chip's own).
    """

    def __init__(self, adc: FaiAdc, stuck_fine: dict[int, bool] | None = None,
                 stuck_coarse: dict[int, bool] | None = None,
                 spec: EncoderSpec | None = None) -> None:
        if isinstance(adc, FaultedAdc):  # compose faults onto one wrapper
            stuck_fine = {**adc.stuck_fine, **(stuck_fine or {})}
            stuck_coarse = {**adc.stuck_coarse, **(stuck_coarse or {})}
            spec = spec or adc.spec
            adc = adc.adc
        self.adc = adc
        self.stuck_fine = dict(stuck_fine or {})
        self.stuck_coarse = dict(stuck_coarse or {})
        self.spec = spec or adc.spec

    def __getattr__(self, attribute: str):
        return getattr(self.adc, attribute)

    def raw_words(self, v_in: np.ndarray,
                  noisy: bool = False) -> tuple[np.ndarray, np.ndarray]:
        """The chip's raw words with the stuck bits forced."""
        coarse, fine = self.adc.raw_words(v_in, noisy=noisy)
        coarse = coarse.copy()
        fine = fine.copy()
        for index, value in self.stuck_coarse.items():
            coarse[:, index] = value
        for index, value in self.stuck_fine.items():
            fine[:, index] = value
        return coarse, fine

    def convert_batch(self, v_in: np.ndarray,
                      noisy: bool = False) -> np.ndarray:
        coarse, fine = self.raw_words(v_in, noisy=noisy)
        return encode_batch(coarse, fine, self.spec)


class FaultModel(abc.ABC):
    """One declarative fault, applicable to a fresh target."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Stable label used in campaign reports."""

    @abc.abstractmethod
    def apply(self, target):
        """Return the faulted target.

        Circuit faults mutate and return ``target``; converter faults
        return a :class:`FaultedAdc` wrapping it.  Raises
        :class:`~repro.errors.FaultInjectionError` when the fault does
        not fit the target.
        """

    def lane_spec(self, circuit):
        """This fault as a :class:`~repro.spice.batch.LaneSpec`, or
        None.

        Faults expressible as pure parameter perturbations of
        ``circuit`` (a VT shift, a scaled resistance, an overridden
        source value) return a lane so a batched
        :class:`~repro.faults.campaign.FaultCampaign` can solve them as
        one stacked system; structural faults (added elements, forced
        comparator outputs) return None and are evaluated through the
        classic per-fault path.  Must not mutate ``circuit``.
        """
        return None

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise FaultInjectionError(message)


class StuckComparator(FaultModel):
    """A comparator output frozen at a constant value.

    ``path`` is ``"fine"`` or ``"coarse"``; ``index`` is the comparator
    position in that bank; ``value`` the frozen level.
    """

    def __init__(self, path: str, index: int, value: bool) -> None:
        _require(path in ("fine", "coarse"),
                 f"path must be 'fine' or 'coarse', got {path!r}")
        _require(index >= 0, f"comparator index must be >= 0: {index}")
        self.path = path
        self.index = index
        self.value = bool(value)

    @property
    def name(self) -> str:
        level = "high" if self.value else "low"
        return f"stuck-{self.path}[{self.index}]-{level}"

    def apply(self, target):
        _require(isinstance(target, (FaiAdc, FaultedAdc)),
                 f"{self.name} applies to converters, "
                 f"not {type(target).__name__}")
        stuck = {self.index: self.value}
        if self.path == "fine":
            _require(self.index < target.config.n_fine_signals,
                     f"fine comparator {self.index} out of range")
            return FaultedAdc(target, stuck_fine=stuck)
        _require(self.index < target.config.n_segments - 1,
                 f"coarse comparator {self.index} out of range")
        return FaultedAdc(target, stuck_coarse=stuck)


class BiasBranchOpen(FaultModel):
    """A bias branch electromigrated open.

    On a :class:`Circuit`: the named :class:`CurrentSource` delivers
    zero current.  On a converter: the named comparator bank
    (``"fine"`` or ``"coarse"``) loses its tail current, so every
    decision in it is frozen at the reset (low) level.
    """

    def __init__(self, branch: str) -> None:
        self.branch = branch

    @property
    def name(self) -> str:
        return f"bias-open-{self.branch}"

    def apply(self, target):
        if isinstance(target, (FaiAdc, FaultedAdc)):
            _require(self.branch in ("fine", "coarse"),
                     f"converter bias branch must be 'fine' or 'coarse', "
                     f"got {self.branch!r}")
            if self.branch == "fine":
                stuck = {k: False
                         for k in range(target.config.n_fine_signals)}
                return FaultedAdc(target, stuck_fine=stuck)
            stuck = {k: False for k in range(target.config.n_segments - 1)}
            return FaultedAdc(target, stuck_coarse=stuck)
        _require(isinstance(target, Circuit),
                 f"{self.name} applies to circuits or converters, "
                 f"not {type(target).__name__}")
        element = target.element(self.branch)
        _require(isinstance(element, CurrentSource),
                 f"{self.branch!r} is not a current source; only current "
                 f"branches can open")
        element.waveform = dc_wave(0.0)
        return target

    def lane_spec(self, circuit):
        if not isinstance(circuit, Circuit):
            return None
        try:
            element = circuit.element(self.branch)
        except NetlistError:
            return None  # let apply() raise the canonical error
        if not isinstance(element, CurrentSource):
            return None
        from ..spice.batch import LaneSpec
        return LaneSpec(source_values=((self.branch, 0.0),),
                        label=self.name)


class BridgedNodes(FaultModel):
    """A resistive short (defect bridge) between two nets."""

    def __init__(self, node_a: str, node_b: str,
                 resistance: float = 1.0) -> None:
        _require(resistance > 0.0,
                 f"bridge resistance must be positive: {resistance}")
        _require(node_a != node_b, "bridge needs two distinct nodes")
        self.node_a = node_a
        self.node_b = node_b
        self.resistance = resistance

    @property
    def name(self) -> str:
        return f"bridge-{self.node_a}-{self.node_b}"

    def apply(self, target):
        _require(isinstance(target, Circuit),
                 f"{self.name} applies to circuits, "
                 f"not {type(target).__name__}")
        known = set(target.node_names) | {"0", "gnd"}
        for node in (self.node_a, self.node_b):
            _require(node in known or node.lower() in ("0", "gnd"),
                     f"unknown node {node!r} for bridge")
        target.add_resistor(f"fault.{self.name}", self.node_a, self.node_b,
                            self.resistance)
        return target


class VtOutlier(FaultModel):
    """One transistor's threshold far outside its mismatch
    distribution."""

    def __init__(self, element: str, shift: float) -> None:
        self.element = element
        self.shift = shift

    @property
    def name(self) -> str:
        return f"vt-outlier-{self.element}"

    def apply(self, target):
        _require(isinstance(target, Circuit),
                 f"{self.name} applies to circuits, "
                 f"not {type(target).__name__}")
        element = target.element(self.element)
        _require(isinstance(element, MosElement),
                 f"{self.element!r} is not a MOS transistor")
        # Copy the device: Mosfet instances are commonly shared between
        # elements, and only this one is the outlier.
        element.device = _dc_replace(
            element.device, vt_shift=element.device.vt_shift + self.shift)
        return target

    def lane_spec(self, circuit):
        if not isinstance(circuit, Circuit):
            return None
        mos = circuit.mos_elements()
        names = [m.name for m in mos]
        if self.element not in names:
            return None  # let apply() raise the canonical error
        from ..spice.batch import LaneSpec
        vt_delta = np.zeros(len(mos))
        vt_delta[names.index(self.element)] = self.shift
        return LaneSpec(vt_delta=vt_delta, label=self.name)


class ResistorDrift(FaultModel):
    """A resistor aged away from its drawn value by ``factor``."""

    def __init__(self, element: str, factor: float) -> None:
        _require(factor > 0.0, f"drift factor must be positive: {factor}")
        self.element = element
        self.factor = factor

    @property
    def name(self) -> str:
        return f"r-drift-{self.element}-x{self.factor:g}"

    def apply(self, target):
        _require(isinstance(target, Circuit),
                 f"{self.name} applies to circuits, "
                 f"not {type(target).__name__}")
        element = target.element(self.element)
        _require(isinstance(element, Resistor),
                 f"{self.element!r} is not a resistor")
        element.resistance *= self.factor
        return target

    def lane_spec(self, circuit):
        if not isinstance(circuit, Circuit):
            return None
        try:
            element = circuit.element(self.element)
        except NetlistError:
            return None  # let apply() raise the canonical error
        if not isinstance(element, Resistor):
            return None
        from ..spice.batch import LaneSpec
        return LaneSpec(resistor_scale=((self.element, self.factor),),
                        label=self.name)
