"""Hierarchical span/trace instrumentation with a no-op fast path.

The solver stack (DC ladder, transient engine, AC engine, the analysis
runners above them) is threaded with calls into this module:

* :func:`span` opens a named child span under the currently open span --
  analyses open one per solve / seed / fault, the Newton kernel one per
  inner solve;
* :meth:`Span.event` appends a bounded, timestamp-free record (a
  Newton-iteration sample, a homotopy-ladder rung, a rejected transient
  step);
* :meth:`Span.inc` bumps a named counter (device-bank evaluations,
  Jacobian factorizations, compile-cache hits / misses).

**Disabled is the default and costs (almost) nothing.**  Tracing is off
unless a :class:`Trace` has been activated with :func:`start_trace` /
:func:`tracing`; every entry point first checks the module-level
``_ACTIVE`` slot and bails to a shared :data:`NULL_SPAN` singleton whose
methods are empty.  Hot loops hoist the check out entirely::

    tspan = telemetry.current_span() if telemetry.is_enabled() else None
    for ...:
        if tspan is not None:
            tspan.event("newton-iter", residual=...)

Exactly one trace can be active per process.  Worker processes of the
parallel Monte-Carlo / fault-campaign runners start their own trace
(the parent's module state does not survive the ``fork``/``spawn``),
serialize its spans with :meth:`Span.to_dict` and ship them back as
plain data; the parent grafts them under its own span with
:meth:`Span.adopt` in submission order, so a merged trace is identical
whether the population ran serially or fanned out.
"""

from __future__ import annotations

import time as _time
from contextlib import contextmanager
from typing import Any, Iterator

from ..errors import TelemetryError

#: Format tag of serialized traces (JSONL header and span dicts).
TRACE_SCHEMA = "repro-trace/v1"

#: Most events kept per span; later events bump ``events_dropped``
#: instead of growing without bound (a stalled Newton solve would
#: otherwise log thousands of iteration records).
MAX_EVENTS_PER_SPAN = 2048


class Span:
    """One timed, named node of a trace tree.

    Attributes:
        name: Span label (e.g. ``"operating-point"``).
        attrs: Free-form annotations (circuit name, knob values,
            outcome summaries).
        counters: Named integer counters local to this span; subtree
            totals come from :meth:`total_counter`.
        events: Bounded list of event dicts, each with a ``"kind"`` key.
        children: Child spans, in creation order.
        duration_s: Wall time of the span body [s].
        events_dropped: Events discarded past :data:`MAX_EVENTS_PER_SPAN`.
    """

    __slots__ = ("name", "attrs", "counters", "events", "children",
                 "duration_s", "events_dropped")

    def __init__(self, name: str, **attrs: Any) -> None:
        self.name = name
        self.attrs: dict[str, Any] = dict(attrs)
        self.counters: dict[str, int] = {}
        self.events: list[dict[str, Any]] = []
        self.children: list["Span"] = []
        self.duration_s = 0.0
        self.events_dropped = 0

    # -- recording ------------------------------------------------------

    def inc(self, counter: str, amount: int = 1) -> None:
        """Bump a named counter on this span."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def event(self, kind: str, **fields: Any) -> None:
        """Append a bounded event record (``{"kind": kind, **fields}``)."""
        if len(self.events) >= MAX_EVENTS_PER_SPAN:
            self.events_dropped += 1
            return
        record = {"kind": kind}
        record.update(fields)
        self.events.append(record)

    def annotate(self, **attrs: Any) -> None:
        """Merge annotations into :attr:`attrs`."""
        self.attrs.update(attrs)

    def child(self, name: str, **attrs: Any) -> "Span":
        """Create and attach a child span directly (no stack involvement).

        Used by mergers and tests; instrumented code normally goes
        through the :func:`span` context manager instead.
        """
        node = Span(name, **attrs)
        self.children.append(node)
        return node

    def adopt(self, payload: "Span | dict") -> "Span":
        """Graft a span -- or its :meth:`to_dict` form shipped from a
        worker process -- under this one; returns the adopted span."""
        node = payload if isinstance(payload, Span) else Span.from_dict(payload)
        self.children.append(node)
        return node

    # -- queries --------------------------------------------------------

    def counter(self, name: str) -> int:
        """This span's own count for ``name`` (0 when never bumped)."""
        return self.counters.get(name, 0)

    def total_counter(self, name: str) -> int:
        """Sum of ``name`` over this span and its whole subtree."""
        return sum(node.counters.get(name, 0) for node in self.walk())

    def total_counters(self) -> dict[str, int]:
        """Every counter name -> subtree total."""
        totals: dict[str, int] = {}
        for node in self.walk():
            for key, value in node.counters.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and its subtree."""
        yield self
        for node in self.children:
            yield from node.walk()

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in the subtree (depth-first)."""
        for node in self.walk():
            if node.name == name:
                return node
        return None

    def find_all(self, name: str) -> list["Span"]:
        """Every span named ``name`` in the subtree, depth-first order."""
        return [node for node in self.walk() if node.name == name]

    def events_of(self, kind: str) -> list[dict[str, Any]]:
        """This span's events of one ``kind``."""
        return [e for e in self.events if e.get("kind") == kind]

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON- and pickle-safe), children inline."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "counters": dict(self.counters),
            "events": [dict(e) for e in self.events],
            "events_dropped": self.events_dropped,
            "duration_s": self.duration_s,
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Inverse of :meth:`to_dict`."""
        try:
            node = cls(data["name"], **data.get("attrs", {}))
        except (KeyError, TypeError) as error:
            raise TelemetryError(f"malformed span payload: {error}")
        node.counters = {str(k): int(v)
                         for k, v in data.get("counters", {}).items()}
        node.events = [dict(e) for e in data.get("events", [])]
        node.events_dropped = int(data.get("events_dropped", 0))
        node.duration_s = float(data.get("duration_s", 0.0))
        node.children = [cls.from_dict(c)
                         for c in data.get("children", [])]
        return node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, children={len(self.children)}, "
                f"events={len(self.events)}, counters={self.counters})")


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def inc(self, counter: str, amount: int = 1) -> None:
        pass

    def event(self, kind: str, **fields: Any) -> None:
        pass

    def annotate(self, **attrs: Any) -> None:
        pass

    def child(self, name: str, **attrs: Any) -> "_NullSpan":
        return self

    def adopt(self, payload) -> "_NullSpan":
        return self

    # Query side mirrors an empty span, so diagnostics code can read a
    # possibly-disabled span without guarding every access.

    @property
    def children(self) -> tuple:
        return ()

    def counter(self, name: str) -> int:
        return 0

    def total_counter(self, name: str) -> int:
        return 0

    def total_counters(self) -> dict:
        return {}

    def events_of(self, kind: str) -> list:
        return []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NULL_SPAN"


#: The singleton no-op span (telemetry disabled fast path).
NULL_SPAN = _NullSpan()


class Trace:
    """A trace: one root span plus identifying metadata.

    Attributes:
        name: Trace label (scenario name, campaign id).
        root: The root :class:`Span` all instrumentation nests under.
        created_utc: ISO-8601 creation timestamp.
    """

    def __init__(self, name: str = "trace", **attrs: Any) -> None:
        self.name = name
        self.root = Span(name, **attrs)
        self.created_utc = _time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                          _time.gmtime())

    def total_counters(self) -> dict[str, int]:
        """Counter totals over the whole trace."""
        return self.root.total_counters()


# -- module state (one active trace per process) -------------------------

_ACTIVE: Trace | None = None
_STACK: list[Span] = []


def is_enabled() -> bool:
    """True while a trace is active in this process."""
    return _ACTIVE is not None


def active() -> Trace | None:
    """The active trace, or None."""
    return _ACTIVE


def current_span() -> "Span | _NullSpan":
    """The innermost open span (the trace root when none is open);
    :data:`NULL_SPAN` while tracing is disabled."""
    if _ACTIVE is None:
        return NULL_SPAN
    return _STACK[-1] if _STACK else _ACTIVE.root


def start_trace(name: str = "trace", **attrs: Any) -> Trace:
    """Activate a fresh trace; errors if one is already active."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise TelemetryError(
            f"a trace ({_ACTIVE.name!r}) is already active; stop it "
            f"before starting {name!r}")
    _ACTIVE = Trace(name, **attrs)
    _STACK.clear()
    return _ACTIVE


def stop_trace() -> Trace:
    """Deactivate and return the active trace."""
    global _ACTIVE
    if _ACTIVE is None:
        raise TelemetryError("no active trace to stop")
    trace, _ACTIVE = _ACTIVE, None
    _STACK.clear()
    return trace


def reset() -> None:
    """Drop any active trace without returning it.

    For worker processes only: a fork-started pool child inherits the
    parent's module state, but its mutations never propagate back, so
    the inherited trace is a dead copy.  Workers call this before
    recording the private trace they ship back to the parent.
    """
    global _ACTIVE
    _ACTIVE = None
    _STACK.clear()


@contextmanager
def tracing(name: str = "trace", **attrs: Any):
    """Run a block under a fresh trace::

        with telemetry.tracing("op-chain") as trace:
            operating_point(circuit)
        print(tree_summary(trace))
    """
    trace = start_trace(name, **attrs)
    t0 = _time.perf_counter()
    try:
        yield trace
    finally:
        trace.root.duration_s = _time.perf_counter() - t0
        stop_trace()


@contextmanager
def span(name: str, **attrs: Any):
    """Open a child span under the current one for the ``with`` body.

    While tracing is disabled this yields :data:`NULL_SPAN` without
    allocating anything.
    """
    if _ACTIVE is None:
        yield NULL_SPAN
        return
    node = Span(name, **attrs)
    (_STACK[-1] if _STACK else _ACTIVE.root).children.append(node)
    _STACK.append(node)
    t0 = _time.perf_counter()
    try:
        yield node
    finally:
        node.duration_s = _time.perf_counter() - t0
        _STACK.pop()
