"""Trace serialization: schema-versioned JSONL and a human tree summary.

The JSONL layout is one JSON object per line:

* line 1 -- a header record::

      {"record": "header", "schema": "repro-trace/v1",
       "trace": "<name>", "created_utc": "...", "n_spans": N}

* every following line -- one span record, depth-first, each carrying a
  numeric ``id`` and its ``parent`` id (``null`` for the root)::

      {"record": "span", "id": 3, "parent": 1, "name": "newton",
       "duration_s": ..., "attrs": {...}, "counters": {...},
       "events": [...], "events_dropped": 0}

Flat records with explicit parent ids keep the file greppable and let
stream consumers (the CI artifact, trend tooling) process arbitrarily
deep traces without recursive parsing; :func:`read_jsonl` rebuilds the
tree for round-trip use.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import TelemetryError
from .core import TRACE_SCHEMA, Span, Trace


def _span_records(trace: Trace) -> list[dict]:
    records: list[dict] = []

    def emit(span: Span, parent_id: int | None) -> None:
        span_id = len(records)
        records.append({
            "record": "span",
            "id": span_id,
            "parent": parent_id,
            "name": span.name,
            "duration_s": span.duration_s,
            "attrs": span.attrs,
            "counters": span.counters,
            "events": span.events,
            "events_dropped": span.events_dropped,
        })
        for child in span.children:
            emit(child, span_id)

    emit(trace.root, None)
    return records


def trace_to_jsonl(trace: Trace) -> str:
    """Serialize ``trace`` to the JSONL text form."""
    spans = _span_records(trace)
    header = {
        "record": "header",
        "schema": TRACE_SCHEMA,
        "trace": trace.name,
        "created_utc": trace.created_utc,
        "n_spans": len(spans),
    }
    lines = [json.dumps(header)]
    lines.extend(json.dumps(record, default=_json_fallback)
                 for record in spans)
    return "\n".join(lines) + "\n"


def _json_fallback(value):
    """Serialize the odd numpy scalar an attr/event may carry."""
    for attr in ("item",):  # numpy scalars expose .item()
        method = getattr(value, attr, None)
        if callable(method):
            return method()
    return repr(value)


def write_jsonl(trace: Trace, path: str | Path) -> Path:
    """Write the JSONL form of ``trace`` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(trace_to_jsonl(trace))
    return path


def read_jsonl(path: str | Path) -> Trace:
    """Rebuild a :class:`Trace` from a JSONL file written by
    :func:`write_jsonl` (schema-checked)."""
    lines = [line for line in Path(path).read_text().splitlines()
             if line.strip()]
    if not lines:
        raise TelemetryError(f"empty trace file {path}")
    header = json.loads(lines[0])
    if header.get("record") != "header":
        raise TelemetryError(f"{path}: first record is not a header")
    if header.get("schema") != TRACE_SCHEMA:
        raise TelemetryError(
            f"{path}: unsupported trace schema {header.get('schema')!r} "
            f"(expected {TRACE_SCHEMA})")
    spans: dict[int, Span] = {}
    root: Span | None = None
    for line in lines[1:]:
        record = json.loads(line)
        if record.get("record") != "span":
            continue
        span = Span.from_dict({
            "name": record["name"],
            "attrs": record.get("attrs", {}),
            "counters": record.get("counters", {}),
            "events": record.get("events", []),
            "events_dropped": record.get("events_dropped", 0),
            "duration_s": record.get("duration_s", 0.0),
        })
        spans[int(record["id"])] = span
        parent = record.get("parent")
        if parent is None:
            root = span
        else:
            try:
                spans[int(parent)].children.append(span)
            except KeyError:
                raise TelemetryError(
                    f"{path}: span {record['id']} references unknown "
                    f"parent {parent}") from None
    if root is None:
        raise TelemetryError(f"{path}: no root span record")
    trace = Trace(header.get("trace", root.name))
    trace.root = root
    trace.created_utc = header.get("created_utc", trace.created_utc)
    return trace


def _format_counters(counters: dict[str, int]) -> str:
    return ", ".join(f"{name}={value}"
                     for name, value in sorted(counters.items()))


def tree_summary(trace: Trace, max_depth: int | None = None) -> str:
    """Indented human-readable account of a trace.

    Each line shows the span name, its annotations, wall time, its own
    counters, and how many events it recorded.  ``max_depth`` prunes
    deep solver internals (None: full tree).
    """
    lines = [f"trace {trace.name!r} ({trace.created_utc}, "
             f"{trace.root.duration_s * 1e3:.1f} ms)"]

    def emit(span: Span, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        parts = [span.name]
        if span.attrs:
            parts.append(" ".join(f"{k}={v}"
                                  for k, v in span.attrs.items()))
        parts.append(f"{span.duration_s * 1e3:.2f} ms")
        if span.counters:
            parts.append(f"[{_format_counters(span.counters)}]")
        if span.events:
            parts.append(f"({len(span.events)} events"
                         + (f", {span.events_dropped} dropped"
                            if span.events_dropped else "") + ")")
        lines.append("  " * depth + "- " + "  ".join(parts))
        for child in span.children:
            emit(child, depth + 1)

    for child in trace.root.children:
        emit(child, 1)
    totals = trace.total_counters()
    if totals:
        lines.append(f"totals: {_format_counters(totals)}")
    return "\n".join(lines)
