"""``repro.telemetry``: solver/analysis observability.

A hierarchical span/trace layer threaded through the whole solver stack
-- per-Newton-iteration records, homotopy-ladder events, per-analysis
counters (device-bank evaluations, Jacobian factorizations, rejected
transient steps, compile-cache hits/misses) -- with a module-level
no-op fast path so disabled tracing costs nothing measurable.

Counters are free-form names incremented via ``span.inc``; the batched
engines add population-level ones that reconcile against their serial
twins: ``batch_transient_steps`` counts accepted *shared* lockstep
steps (each worth ``lanes_lockstep`` lane-samples, so
``lane_samples == batch_transient_steps * lanes_lockstep +
fallback_serial_steps`` where the fallback steps surface as nested
serial ``transient_steps_accepted``), and
``batch_transient_lane_rejections`` counts per-lane attributed
rejections of the shared grid (the kick-out budget's currency).

Quick taste::

    from repro import telemetry
    from repro.spice.dc import operating_point

    with telemetry.tracing("one-op") as trace:
        operating_point(circuit)
    print(telemetry.tree_summary(trace))
    telemetry.write_jsonl(trace, "trace.jsonl")

See :mod:`repro.telemetry.core` for the recording API and
:mod:`repro.telemetry.export` for the JSONL schema.
"""

from .core import (
    MAX_EVENTS_PER_SPAN,
    NULL_SPAN,
    Span,
    TRACE_SCHEMA,
    Trace,
    active,
    current_span,
    is_enabled,
    reset,
    span,
    start_trace,
    stop_trace,
    tracing,
)
from .export import (
    read_jsonl,
    trace_to_jsonl,
    tree_summary,
    write_jsonl,
)

__all__ = [
    "MAX_EVENTS_PER_SPAN",
    "NULL_SPAN",
    "Span",
    "TRACE_SCHEMA",
    "Trace",
    "active",
    "current_span",
    "is_enabled",
    "reset",
    "span",
    "start_trace",
    "stop_trace",
    "tracing",
    "read_jsonl",
    "trace_to_jsonl",
    "tree_summary",
    "write_jsonl",
]
