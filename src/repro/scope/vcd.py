"""Shared VCD (Value Change Dump) writer for analog and digital dumps.

One :class:`VcdWriter` serves both halves of the platform: the
event-driven digital simulator (:mod:`repro.digital.vcd`) declares
1-bit ``wire`` variables, the analog capture layer
(:mod:`repro.scope.capture`) declares ``real`` variables -- and because
both go through the same writer, a mixed-signal run can land in *one*
viewer-compatible file (GTKWave renders ``real`` traces as analog
lanes next to the logic).

Timescale handling is exact: :func:`exact_timescale` picks the
*coarsest* standard VCD timescale (``{1,10,100} x {s..fs}``) at which
every timestamp is an integer tick, so a clock period of 0.5 ns dumps
at ``100ps`` with 5 ticks per period instead of rounding to ``1ns``
(a 2x cursor error in the old digital exporter).  Sub-femtosecond
residues are quantized at the 1 fs floor.

A minimal :func:`parse_vcd` reader closes the loop for round-trip
checks in tests and the CI smoke step.
"""

from __future__ import annotations

import string
from dataclasses import dataclass
from typing import Iterable, TextIO

from ..errors import AnalysisError

_ID_ALPHABET = string.ascii_letters + string.digits + "!#$%&"


def identifier(index: int) -> str:
    """Compact VCD identifier for signal ``index``."""
    if index < 0:
        raise AnalysisError(f"negative signal index: {index}")
    base = len(_ID_ALPHABET)
    chars = []
    while True:
        chars.append(_ID_ALPHABET[index % base])
        index //= base
        if index == 0:
            break
    return "".join(chars)


#: Standard VCD timescales, coarse to fine.  Scales come from decade
#: literals (``float("1e-5")``), not ``mag * 10**-3k`` products whose
#: rounding can land one ulp off the literal.
_TIMESCALE_UNITS = ("s", "ms", "us", "ns", "ps", "fs")
TIMESCALES: tuple[tuple[str, float], ...] = tuple(
    (f"{mag}{unit}", float(f"1e{exp - 3 * k}"))
    for k, unit in enumerate(_TIMESCALE_UNITS)
    for mag, exp in ((100, 2), (10, 1), (1, 0))
    if not (unit == "s" and mag > 1))

#: The finest standard timescale; times are quantized here when no
#: coarser scale represents them exactly.
FLOOR_TIMESCALE = TIMESCALES[-1]


def timescale_seconds(label: str) -> float:
    """Seconds per tick of a ``$timescale`` label like ``100ps``."""
    for known, scale in TIMESCALES:
        if label.replace(" ", "") == known:
            return scale
    raise AnalysisError(f"unknown VCD timescale {label!r}")


def exact_timescale(times_s: Iterable[float],
                    rel_tol: float = 1e-9) -> tuple[str, float]:
    """Coarsest standard timescale representing all times exactly.

    Returns ``(label, seconds_per_tick)``.  A time is "exact" at a
    scale when its tick count is within ``rel_tol`` (relative to the
    tick count, floored at one tick) of an integer.  When nothing
    coarser fits -- the irregular float timestamps of an adaptive
    transient, say -- the 1 fs floor is returned and callers quantize
    by rounding.
    """
    finite = [float(t) for t in times_s]
    for t in finite:
        if not (t == t) or t in (float("inf"), float("-inf")):
            raise AnalysisError(f"non-finite timestamp {t!r} in VCD dump")
        if t < 0.0:
            raise AnalysisError(f"negative timestamp {t!r} in VCD dump")
    for label, scale in TIMESCALES:
        exact = True
        for t in finite:
            ticks = t / scale
            if abs(ticks - round(ticks)) > rel_tol * max(1.0, abs(ticks)):
                exact = False
                break
            if t > 0.0 and round(ticks) == 0:
                # A nonzero time collapsing to tick 0 is not "exact" --
                # it would erase the event (0.5 ns at scale 1s).
                exact = False
                break
        if exact:
            return label, scale
    return FLOOR_TIMESCALE


@dataclass
class _Var:
    ident: str
    kind: str          # "wire" | "real"
    name: str
    width: int
    previous: object = None


class VcdWriter:
    """Declaration + change collector rendering one VCD document.

    Usage::

        w = VcdWriter("100ps")
        clk = w.add_wire("clk", scope="counter")
        out = w.add_real("outp", scope="analog")
        w.change(0, clk, True)
        w.change(0, out, 0.35)
        w.change(5, clk, False)
        text = w.render()

    Change times are ticks of the declared timescale and must be
    non-decreasing; unchanged values are deduplicated per variable the
    way every dump format expects.
    """

    def __init__(self, timescale: str = "1ns",
                 date: str = "repro mixed-signal platform",
                 comment: str | None = None) -> None:
        self.timescale = timescale.replace(" ", "")
        timescale_seconds(self.timescale)  # validate
        self.date = date
        self.comment = comment
        self._scopes: dict[str, list[_Var]] = {}
        self._vars: dict[str, _Var] = {}
        self._changes: list[tuple[int, list[str]]] = []
        self._last_ticks: int | None = None

    # -- declarations -------------------------------------------------

    def _add(self, kind: str, name: str, scope: str, width: int) -> str:
        ident = identifier(len(self._vars))
        var = _Var(ident=ident, kind=kind,
                   name=name.replace(" ", "_"), width=width)
        self._scopes.setdefault(scope, []).append(var)
        self._vars[ident] = var
        return ident

    def add_wire(self, name: str, scope: str = "top",
                 width: int = 1) -> str:
        """Declare a digital variable; returns its identifier."""
        return self._add("wire", name, scope, width)

    def add_real(self, name: str, scope: str = "top") -> str:
        """Declare an analog (``real``) variable; returns its id."""
        return self._add("real", name, scope, 64)

    # -- changes ------------------------------------------------------

    def change(self, ticks: int, ident: str, value) -> None:
        """Record ``ident`` taking ``value`` at time ``ticks``."""
        var = self._vars.get(ident)
        if var is None:
            raise AnalysisError(f"undeclared VCD identifier {ident!r}")
        ticks = int(ticks)
        if self._last_ticks is not None and ticks < self._last_ticks:
            raise AnalysisError(
                f"VCD change times must be non-decreasing: "
                f"{ticks} after {self._last_ticks}")
        if var.kind == "real":
            value = float(value)
            text = f"r{value!r} {ident}"
        else:
            value = int(bool(value)) if var.width == 1 else int(value)
            if var.width == 1:
                text = f"{value}{ident}"
            else:
                text = f"b{value:b} {ident}"
        if var.previous == value:
            return
        var.previous = value
        if self._last_ticks != ticks or not self._changes:
            self._changes.append((ticks, []))
            self._last_ticks = ticks
        self._changes[-1][1].append(text)

    def end_time(self, ticks: int) -> None:
        """Stamp the final ``#ticks`` marker closing the dump."""
        ticks = int(ticks)
        if self._last_ticks is None or ticks > self._last_ticks:
            self._changes.append((ticks, []))
            self._last_ticks = ticks

    # -- rendering ----------------------------------------------------

    def render(self, stream: TextIO | None = None) -> str:
        """Serialise the document; also writes to ``stream`` if given."""
        lines = [f"$date {self.date} $end"]
        if self.comment is not None:
            lines.append(f"$comment {self.comment} $end")
        lines.append(f"$timescale {self.timescale} $end")
        for scope, variables in self._scopes.items():
            lines.append(f"$scope module {scope} $end")
            for var in variables:
                lines.append(f"$var {var.kind} {var.width} "
                             f"{var.ident} {var.name} $end")
            lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        for ticks, changes in self._changes:
            lines.append(f"#{ticks}")
            lines.extend(changes)
        text = "\n".join(lines) + "\n"
        if stream is not None:
            stream.write(text)
        return text


@dataclass
class VcdDocument:
    """Parsed view of a VCD file (enough for round-trip checks)."""

    timescale: str
    variables: dict[str, tuple[str, str, str]]  # id -> (scope, kind, name)
    changes: list[tuple[int, str, object]]      # (ticks, id, value)
    end_ticks: int = 0

    @property
    def seconds_per_tick(self) -> float:
        return timescale_seconds(self.timescale)

    def values_of(self, name: str) -> list[tuple[int, object]]:
        """``(ticks, value)`` history of the variable called ``name``."""
        idents = [i for i, (_s, _k, n) in self.variables.items()
                  if n == name]
        if not idents:
            raise AnalysisError(f"no VCD variable named {name!r}")
        ident = idents[0]
        return [(t, v) for t, i, v in self.changes if i == ident]


def parse_vcd(text: str) -> VcdDocument:
    """Parse VCD ``text`` (header + scalar/real changes)."""
    timescale = None
    variables: dict[str, tuple[str, str, str]] = {}
    changes: list[tuple[int, str, object]] = []
    scope_stack: list[str] = []
    now = 0
    in_header = True
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if in_header:
            if line.startswith("$timescale"):
                timescale = "".join(line.split()[1:-1])
            elif line.startswith("$scope"):
                scope_stack.append(line.split()[2])
            elif line.startswith("$upscope"):
                if scope_stack:
                    scope_stack.pop()
            elif line.startswith("$var"):
                parts = line.split()
                kind, ident, name = parts[1], parts[3], parts[4]
                scope = ".".join(scope_stack) or "top"
                variables[ident] = (scope, kind, name)
            elif line.startswith("$enddefinitions"):
                in_header = False
            continue
        if line.startswith("#"):
            stamp = int(line[1:])
            if stamp < now:
                raise AnalysisError(
                    f"VCD timestamps go backwards: #{stamp} after #{now}")
            now = stamp
        elif line[0] in "01":
            changes.append((now, line[1:], int(line[0])))
        elif line[0] in "rR":
            value_text, ident = line[1:].split()
            changes.append((now, ident, float(value_text)))
        elif line[0] in "bB":
            value_text, ident = line[1:].split()
            changes.append((now, ident, int(value_text, 2)))
        else:
            raise AnalysisError(f"unparseable VCD line {line!r}")
    if timescale is None:
        raise AnalysisError("VCD text has no $timescale")
    for _ticks, ident, _value in changes:
        if ident not in variables:
            raise AnalysisError(f"change for undeclared id {ident!r}")
    return VcdDocument(timescale=timescale, variables=variables,
                      changes=changes, end_ticks=now)
