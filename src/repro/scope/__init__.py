"""``repro.scope``: streaming waveform capture, triggers, measurements.

The platform's oscilloscope.  Three layers, modeled on litescope's
core/frontend/host split:

* **core** (:mod:`repro.scope.capture`) -- per-node probes with
  ring-buffer storage, trigger conditions (edge / level / expression
  over probe values) with pre/post-trigger windows, and decimation
  (stride, min/max peak-detect).  Threaded through
  :func:`repro.spice.transient` via its ``scope=`` parameter, it
  bounds waveform memory to O(window) instead of O(steps) on long
  runs.
* **measure** (:mod:`repro.scope.measure`) -- propagation delay,
  rise/fall slew, output swing, overshoot, settling time, and
  period/duty/jitter, each returning a small report object.
* **host** (:mod:`repro.scope.vcd`) -- the shared VCD writer used by
  both this analog capture layer and the digital simulator's dump, so
  mixed-signal runs land in one viewer-compatible file.

Quick taste::

    from repro.scope import EdgeTrigger, Probe, ScopeSession, measure
    from repro.spice import transient

    session = ScopeSession(
        probes=[Probe("s2_outp", "s2_outn", label="y2"),
                Probe("s3_outp", "s3_outn", label="y3")],
        trigger=EdgeTrigger("y2", level=0.0, direction="rising"),
        pre_samples=32, post_samples=128, replace_dense=True)
    transient(circuit, t_stop, scope=session)
    seg = session.segment()
    report = measure.propagation_delay(
        seg.time, seg.signal("y2"), seg.signal("y3"), level_in=0.0,
        level_out=0.0, edge_out=None)
    print(report.describe())
    open("capture.vcd", "w").write(seg.to_vcd())
"""

from . import measure
from .capture import (
    CaptureSegment,
    Decimator,
    EdgeTrigger,
    ExpressionTrigger,
    LevelTrigger,
    PeakDetect,
    Probe,
    ScopeSession,
    Stride,
    Trigger,
)
from .measure import (
    DelayReport,
    OvershootReport,
    PeriodReport,
    SettlingReport,
    SlewReport,
    SwingReport,
    crossings,
    output_swing,
    overshoot,
    period_and_jitter,
    propagation_delay,
    settling_time,
    transition_time,
)
from .vcd import (
    VcdDocument,
    VcdWriter,
    exact_timescale,
    parse_vcd,
)

__all__ = [
    "CaptureSegment", "Decimator", "EdgeTrigger", "ExpressionTrigger",
    "LevelTrigger", "PeakDetect", "Probe", "ScopeSession", "Stride",
    "Trigger",
    "measure",
    "DelayReport", "OvershootReport", "PeriodReport", "SettlingReport",
    "SlewReport", "SwingReport",
    "crossings", "output_swing", "overshoot", "period_and_jitter",
    "propagation_delay", "settling_time", "transition_time",
    "VcdDocument", "VcdWriter", "exact_timescale", "parse_vcd",
]
