"""Waveform measurements: the numbers the paper reports.

Every headline claim of the source paper is a measurement on a
transient waveform -- gate propagation delay vs. tail current
(Fig. 9a), output swing pinned at V_SW, settling of the folding
front-end, the FAI ADC's timing.  This module turns raw ``(time,
value)`` arrays -- from a dense :class:`~repro.spice.results.TranResult`
or a triggered :class:`~repro.scope.capture.CaptureSegment` alike --
into small report objects usable by benchmarks, testbenches and the
fault/fuzz harnesses.

All functions validate their input the same way: records shorter than
two samples, NaN-polluted waveforms, or waveforms that never perform
the measured event raise a clean :class:`~repro.errors.AnalysisError`
naming the problem (never an IndexError from deep inside numpy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError


def _validated(time, value, what: str = "waveform",
               min_samples: int = 2) -> tuple[np.ndarray, np.ndarray]:
    t = np.asarray(time, dtype=float)
    v = np.asarray(value, dtype=float)
    if t.ndim != 1 or v.ndim != 1:
        raise AnalysisError(f"{what}: time/value must be 1-D arrays")
    if t.size != v.size:
        raise AnalysisError(
            f"{what}: time ({t.size}) and value ({v.size}) lengths differ")
    if t.size < min_samples:
        raise AnalysisError(
            f"{what}: record too short ({t.size} samples, "
            f"need >= {min_samples})")
    if not np.all(np.isfinite(t)):
        raise AnalysisError(f"{what}: non-finite time axis")
    if not np.all(np.isfinite(v)):
        bad = int(np.flatnonzero(~np.isfinite(v))[0])
        raise AnalysisError(
            f"{what}: non-finite sample at index {bad} "
            f"(t={t[min(bad, t.size - 1)]:.3e}s)")
    if np.any(np.diff(t) < 0.0):
        raise AnalysisError(f"{what}: time axis not monotonic")
    return t, v


def crossings(time, value, level: float,
              rising: bool | None = None) -> np.ndarray:
    """Interpolated times where the waveform crosses ``level``.

    ``rising`` filters the edge direction; None keeps both.  This is
    the shared crossing kernel --
    :meth:`repro.spice.results.TranResult.crossing_times` delegates
    here.
    """
    t, v = _validated(time, value, "crossings")
    above = v >= level
    toggles = np.nonzero(above[1:] != above[:-1])[0]
    out = []
    for k in toggles:
        is_rising = not above[k]
        if rising is not None and is_rising != rising:
            continue
        v1, v2 = v[k], v[k + 1]
        frac = (level - v1) / (v2 - v1) if v2 != v1 else 0.5
        out.append(t[k] + frac * (t[k + 1] - t[k]))
    return np.array(out)


def _single_crossing(time, value, level: float, rising: bool | None,
                     occurrence: int, what: str) -> float:
    times = crossings(time, value, level, rising)
    if times.size <= occurrence:
        direction = {True: "rising ", False: "falling ", None: ""}[rising]
        raise AnalysisError(
            f"{what}: needs {direction}crossing #{occurrence} of level "
            f"{level:.4g} V but the record has only {times.size}")
    return float(times[occurrence])


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DelayReport:
    """Propagation delay between an input edge and an output edge."""

    delay: float          # [s]
    t_in: float           # input crossing instant [s]
    t_out: float          # output crossing instant [s]
    level_in: float       # [V]
    level_out: float      # [V]

    def describe(self) -> str:
        return (f"t_pd = {self.delay:.4g} s "
                f"(in @ {self.t_in:.4g} s, out @ {self.t_out:.4g} s)")


@dataclass(frozen=True)
class SlewReport:
    """10/90 (by default) transition time of one edge."""

    kind: str             # "rise" | "fall"
    duration: float       # [s]
    slew: float           # [V/s], signed
    t_start: float        # [s]
    t_end: float          # [s]
    v_start: float        # threshold voltage at t_start [V]
    v_end: float          # threshold voltage at t_end [V]

    def describe(self) -> str:
        return (f"t_{self.kind} = {self.duration:.4g} s "
                f"({self.v_start:.4g} V -> {self.v_end:.4g} V, "
                f"{self.slew:.4g} V/s)")


@dataclass(frozen=True)
class SwingReport:
    """Output swing over a (settled part of a) record."""

    v_min: float
    v_max: float

    @property
    def swing(self) -> float:
        return self.v_max - self.v_min

    def describe(self) -> str:
        return (f"swing = {self.swing:.4g} V "
                f"({self.v_min:.4g} .. {self.v_max:.4g} V)")


@dataclass(frozen=True)
class OvershootReport:
    """Over-/undershoot of a step response, as fractions of the step."""

    overshoot: float      # fraction of |step| above the final value
    undershoot: float     # fraction of |step| below the final value
    v_initial: float
    v_final: float

    def describe(self) -> str:
        return (f"overshoot = {self.overshoot:.2%}, "
                f"undershoot = {self.undershoot:.2%} "
                f"of a {self.v_final - self.v_initial:+.4g} V step")


@dataclass(frozen=True)
class SettlingReport:
    """First instant after which the waveform stays inside a band."""

    t_settle: float       # [s], measured from t_reference
    band: float           # band half-width as a fraction of |step|
    v_final: float

    def describe(self) -> str:
        return (f"settled to +/-{self.band:.1%} at "
                f"{self.t_settle:.4g} s")


@dataclass(frozen=True)
class PeriodReport:
    """Period / duty / cycle-to-cycle jitter of a repetitive waveform."""

    period: float         # mean period [s]
    frequency: float      # 1 / period [Hz]
    duty: float           # high-time fraction of the mean period
    jitter_rms: float     # sample std-dev of the periods [s]
    jitter_pp: float      # max - min period [s]
    n_cycles: int

    def describe(self) -> str:
        return (f"T = {self.period:.4g} s (f = {self.frequency:.4g} Hz), "
                f"duty {self.duty:.1%}, jitter {self.jitter_rms:.3g} s rms "
                f"/ {self.jitter_pp:.3g} s pp over {self.n_cycles} cycles")


# ---------------------------------------------------------------------------
# Measurements
# ---------------------------------------------------------------------------


def propagation_delay(time, v_in, v_out,
                      level_in: float | None = None,
                      level_out: float | None = None,
                      edge_in: bool | None = True,
                      edge_out: bool | None = None,
                      occurrence: int = 0) -> DelayReport:
    """Delay from an input threshold crossing to the output's response.

    Levels default to each waveform's own mid-swing (the 50 % point,
    the convention the paper's delay plots use).  ``edge_in`` /
    ``edge_out`` pick the edge direction (True rising, False falling,
    None either); the output crossing is the first one *at or after*
    the input crossing, so inverting stages measure naturally with
    ``edge_out=None``.
    """
    t, vi = _validated(time, v_in, "propagation_delay (input)")
    _, vo = _validated(time, v_out, "propagation_delay (output)")
    if level_in is None:
        level_in = 0.5 * (float(vi.min()) + float(vi.max()))
    if level_out is None:
        level_out = 0.5 * (float(vo.min()) + float(vo.max()))
    t_in = _single_crossing(t, vi, level_in, edge_in, occurrence,
                            "propagation_delay (input)")
    out_times = crossings(t, vo, level_out, edge_out)
    after = out_times[out_times >= t_in]
    if after.size == 0:
        raise AnalysisError(
            f"propagation_delay: output never crosses "
            f"{level_out:.4g} V after the input edge at {t_in:.4g} s")
    t_out = float(after[0])
    return DelayReport(delay=t_out - t_in, t_in=t_in, t_out=t_out,
                       level_in=level_in, level_out=level_out)


def transition_time(time, value, kind: str = "rise",
                    low_frac: float = 0.1, high_frac: float = 0.9,
                    occurrence: int = 0) -> SlewReport:
    """Rise/fall time between the ``low_frac``/``high_frac`` levels.

    Levels are fractions of the record's own min..max swing (the usual
    10 %/90 % definition).
    """
    if kind not in ("rise", "fall"):
        raise AnalysisError(f"kind must be 'rise' or 'fall', got {kind!r}")
    if not 0.0 <= low_frac < high_frac <= 1.0:
        raise AnalysisError(
            f"need 0 <= low_frac < high_frac <= 1, "
            f"got {low_frac}/{high_frac}")
    t, v = _validated(time, value, f"transition_time ({kind})")
    lo, hi = float(v.min()), float(v.max())
    if hi <= lo:
        raise AnalysisError(
            f"transition_time: waveform is flat at {lo:.4g} V")
    v_low = lo + low_frac * (hi - lo)
    v_high = lo + high_frac * (hi - lo)
    rising = kind == "rise"
    first_level, second_level = ((v_low, v_high) if rising
                                 else (v_high, v_low))
    t_start = _single_crossing(t, v, first_level, rising, occurrence,
                               f"transition_time ({kind})")
    seconds = crossings(t, v, second_level, rising)
    after = seconds[seconds >= t_start]
    if after.size == 0:
        raise AnalysisError(
            f"transition_time: edge at {t_start:.4g} s never reaches "
            f"{second_level:.4g} V")
    t_end = float(after[0])
    duration = t_end - t_start
    slew = (second_level - first_level) / duration if duration > 0 \
        else float("inf") * (1 if rising else -1)
    return SlewReport(kind=kind, duration=duration, slew=slew,
                      t_start=t_start, t_end=t_end,
                      v_start=first_level, v_end=second_level)


def output_swing(time, value, t_from: float = 0.0) -> SwingReport:
    """Min/max swing of the record from ``t_from`` onward."""
    t, v = _validated(time, value, "output_swing")
    mask = t >= t_from
    if not np.any(mask):
        raise AnalysisError(
            f"output_swing: no samples at or after t_from={t_from:.4g} s")
    window = v[mask]
    return SwingReport(v_min=float(window.min()),
                       v_max=float(window.max()))


def overshoot(time, value, v_initial: float | None = None,
              v_final: float | None = None) -> OvershootReport:
    """Peak over-/undershoot of a step response vs. its final value.

    Defaults: ``v_initial`` is the first sample, ``v_final`` the last.
    Both are expressed as fractions of the step magnitude.
    """
    t, v = _validated(time, value, "overshoot")
    if v_initial is None:
        v_initial = float(v[0])
    if v_final is None:
        v_final = float(v[-1])
    step = v_final - v_initial
    if step == 0.0:
        raise AnalysisError(
            "overshoot: zero step (v_initial == v_final); pass explicit "
            "levels for a non-step waveform")
    over = (float(v.max()) - max(v_initial, v_final)) / abs(step)
    under = (min(v_initial, v_final) - float(v.min())) / abs(step)
    return OvershootReport(overshoot=max(0.0, over),
                           undershoot=max(0.0, under),
                           v_initial=v_initial, v_final=v_final)


def settling_time(time, value, band: float = 0.02,
                  v_final: float | None = None,
                  v_initial: float | None = None,
                  t_reference: float = 0.0) -> SettlingReport:
    """Time (from ``t_reference``) to stay within ``band`` of final.

    The band half-width is ``band * |v_final - v_initial|`` (fractions
    of the step, the classical definition).  Raises when the record
    ends outside the band -- a truncated record must not silently
    report "settled".
    """
    t, v = _validated(time, value, "settling_time")
    if band <= 0.0:
        raise AnalysisError(f"band must be positive, got {band}")
    if v_initial is None:
        v_initial = float(v[0])
    if v_final is None:
        v_final = float(v[-1])
    step = abs(v_final - v_initial)
    if step == 0.0:
        raise AnalysisError(
            "settling_time: zero step; pass explicit v_initial/v_final")
    half_width = band * step
    error = np.abs(v - v_final)
    if error[-1] > half_width:
        raise AnalysisError(
            f"settling_time: record ends {error[-1]:.4g} V from the "
            f"final value, outside the +/-{half_width:.4g} V band "
            f"(truncated record?)")
    outside = np.nonzero(error > half_width)[0]
    if outside.size == 0:
        return SettlingReport(t_settle=0.0, band=band, v_final=v_final)
    k = int(outside[-1])  # last sample outside the band
    # Interpolate the band entry between samples k and k+1.
    e1, e2 = float(error[k]), float(error[k + 1])
    frac = (e1 - half_width) / (e1 - e2) if e1 != e2 else 1.0
    t_enter = float(t[k] + frac * (t[k + 1] - t[k]))
    return SettlingReport(t_settle=t_enter - t_reference, band=band,
                          v_final=v_final)


def period_and_jitter(time, value,
                      level: float | None = None) -> PeriodReport:
    """Period, duty cycle and cycle-to-cycle jitter of an oscillation.

    Periods are measured between consecutive rising crossings of
    ``level`` (default: the record's mid-swing); duty is the mean
    high-time fraction.  Needs at least two full cycles.
    """
    t, v = _validated(time, value, "period_and_jitter")
    if level is None:
        level = 0.5 * (float(v.min()) + float(v.max()))
    ups = crossings(t, v, level, rising=True)
    if ups.size < 3:
        raise AnalysisError(
            f"period_and_jitter: need >= 2 full cycles "
            f"({ups.size} rising crossings of {level:.4g} V found)")
    periods = np.diff(ups)
    period = float(periods.mean())
    downs = crossings(t, v, level, rising=False)
    # High time: falling crossing following each rising one.
    high_times = []
    for up in ups[:-1]:
        later = downs[downs > up]
        if later.size:
            high_times.append(float(later[0]) - float(up))
    duty = (float(np.mean(high_times)) / period) if high_times else 0.0
    jitter_rms = float(periods.std(ddof=1)) if periods.size > 1 else 0.0
    return PeriodReport(period=period, frequency=1.0 / period,
                        duty=duty, jitter_rms=jitter_rms,
                        jitter_pp=float(periods.max() - periods.min()),
                        n_cycles=int(periods.size))
