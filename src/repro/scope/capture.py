"""Streaming waveform capture for the transient engine.

Modeled on litescope's on-chip logic-analyzer split: *probes* name the
signals to watch, a *trigger* decides when a window is interesting, a
bounded *ring buffer* holds the pre-trigger history, and *decimation*
trades resolution for depth -- all evaluated sample-by-sample as the
transient engine commits steps, so the memory footprint is
O(window), not O(steps), on arbitrarily long runs.

The capture path is bitwise-faithful: without decimation, a stored
sample is exactly the solver's committed node voltage (no resampling,
no interpolation), so a triggered window equals the corresponding
slice of a dense full-history record of the same run -- the contract
the equivalence tests pin.

Quick taste::

    from repro.scope import EdgeTrigger, Probe, ScopeSession
    from repro.spice import transient

    session = ScopeSession(
        probes=[Probe("outp", "outn", label="y")],
        trigger=EdgeTrigger("y", level=0.0, direction="rising"),
        pre_samples=64, post_samples=256)
    transient(circuit, t_stop, scope=session)
    seg = session.segment()          # times + values around the edge
    seg.signal("y")                  # the differential waveform
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import AnalysisError

#: Node names treated as ground in probe definitions.
_GROUND = ("0", "gnd")


@dataclass(frozen=True)
class Probe:
    """One captured signal: ``v(pos) - v(neg)``.

    ``neg`` defaults to ground, giving a plain node-voltage probe; an
    explicit ``neg`` captures a differential signal (the natural unit
    for STSCL outputs).  ``label`` names the signal in capture results,
    triggers and VCD dumps; it defaults to ``pos`` (or
    ``"pos-neg"`` for differential probes).
    """

    pos: str
    neg: str = "0"
    label: str | None = None

    @property
    def name(self) -> str:
        if self.label is not None:
            return self.label
        if self.neg.lower() in _GROUND:
            return self.pos
        return f"{self.pos}-{self.neg}"


# ---------------------------------------------------------------------------
# Triggers
# ---------------------------------------------------------------------------


class Trigger:
    """Decides, per committed sample, whether the capture window starts.

    Subclasses implement :meth:`check`; the session calls it with the
    probe-value vector of each committed sample (after the previous
    one), and the first ``True`` fires the trigger.  ``reset`` rearms
    any internal state for segment re-arming and session reuse.
    """

    def reset(self) -> None:  # pragma: no cover - default is stateless
        pass

    def bind(self, names: Sequence[str]) -> None:
        """Resolve signal names against the session's probe list."""
        raise NotImplementedError

    def check(self, values: np.ndarray) -> bool:
        raise NotImplementedError


class _SignalTrigger(Trigger):
    """Base for triggers bound to one named probe signal."""

    def __init__(self, signal: str) -> None:
        self.signal = signal
        self._index: int | None = None

    def bind(self, names: Sequence[str]) -> None:
        try:
            self._index = list(names).index(self.signal)
        except ValueError:
            raise AnalysisError(
                f"trigger signal {self.signal!r} is not a probe "
                f"(probes: {', '.join(names)})") from None


class EdgeTrigger(_SignalTrigger):
    """Fires when the signal crosses ``level`` in ``direction``.

    ``direction`` is ``"rising"``, ``"falling"`` or ``"either"``.  A
    crossing needs two samples (strictly below then at-or-above for
    rising), so the trigger can never fire on the first sample.
    """

    def __init__(self, signal: str, level: float,
                 direction: str = "rising") -> None:
        super().__init__(signal)
        if direction not in ("rising", "falling", "either"):
            raise AnalysisError(
                f"direction must be rising/falling/either, "
                f"got {direction!r}")
        self.level = float(level)
        self.direction = direction
        self._previous: float | None = None

    def reset(self) -> None:
        self._previous = None

    def check(self, values: np.ndarray) -> bool:
        value = float(values[self._index])
        previous, self._previous = self._previous, value
        if previous is None:
            return False
        rising = previous < self.level <= value
        falling = previous > self.level >= value
        if self.direction == "rising":
            return rising
        if self.direction == "falling":
            return falling
        return rising or falling


class LevelTrigger(_SignalTrigger):
    """Fires as soon as the signal is ``above`` (or ``below``) a level."""

    def __init__(self, signal: str, level: float,
                 mode: str = "above") -> None:
        super().__init__(signal)
        if mode not in ("above", "below"):
            raise AnalysisError(f"mode must be above/below, got {mode!r}")
        self.level = float(level)
        self.mode = mode

    def check(self, values: np.ndarray) -> bool:
        value = float(values[self._index])
        return value >= self.level if self.mode == "above" \
            else value <= self.level


class ExpressionTrigger(Trigger):
    """Fires on the rising edge of a predicate over probe values.

    ``fn`` receives ``{probe name: value}`` for each committed sample;
    the trigger fires on the first sample where the predicate turns
    True after being False (a predicate already True on the very first
    sample fires immediately).
    """

    def __init__(self, fn: Callable[[dict[str, float]], bool]) -> None:
        self.fn = fn
        self._names: tuple[str, ...] = ()
        self._previous = False

    def bind(self, names: Sequence[str]) -> None:
        self._names = tuple(names)

    def reset(self) -> None:
        self._previous = False

    def check(self, values: np.ndarray) -> bool:
        state = bool(self.fn(dict(zip(self._names, values))))
        fired = state and not self._previous
        self._previous = state
        return fired


# ---------------------------------------------------------------------------
# Decimation
# ---------------------------------------------------------------------------


class Decimator:
    """Maps the committed-sample stream onto the stored-sample stream.

    ``push`` returns the (possibly empty) list of ``(t, values)``
    samples to store for one input sample; ``flush`` drains any
    partial state (called at a trigger boundary and at end of run).
    """

    def reset(self) -> None:  # pragma: no cover - default is stateless
        pass

    def push(self, t: float, values: np.ndarray) -> list:
        raise NotImplementedError

    def flush(self) -> list:
        return []


class Stride(Decimator):
    """Keep every ``n``-th committed sample (the first one included)."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise AnalysisError(f"stride must be >= 1, got {n}")
        self.n = int(n)
        self._count = 0

    def reset(self) -> None:
        self._count = 0

    def push(self, t: float, values: np.ndarray) -> list:
        keep = self._count % self.n == 0
        self._count += 1
        return [(t, values)] if keep else []


class PeakDetect(Decimator):
    """Min/max envelope decimation: 2 stored samples per ``n`` inputs.

    Each block of ``n`` committed samples stores two samples -- the
    per-signal running minima stamped at the block's first time and
    the per-signal maxima at its last -- so narrow glitches survive
    decimation (the property stride decimation cannot give you).
    """

    def __init__(self, n: int) -> None:
        if n < 2:
            raise AnalysisError(f"peak-detect block must be >= 2, got {n}")
        self.n = int(n)
        self.reset()

    def reset(self) -> None:
        self._count = 0
        self._t_first = 0.0
        self._t_last = 0.0
        self._minima: np.ndarray | None = None
        self._maxima: np.ndarray | None = None

    def push(self, t: float, values: np.ndarray) -> list:
        if self._count == 0:
            self._t_first = t
            self._minima = values.copy()
            self._maxima = values.copy()
        else:
            np.minimum(self._minima, values, out=self._minima)
            np.maximum(self._maxima, values, out=self._maxima)
        self._t_last = t
        self._count += 1
        if self._count >= self.n:
            return self.flush()
        return []

    def flush(self) -> list:
        if self._count == 0:
            return []
        out = [(self._t_first, self._minima),
               (self._t_last, self._maxima)]
        self.reset()
        return out


# ---------------------------------------------------------------------------
# Capture storage
# ---------------------------------------------------------------------------


@dataclass
class CaptureSegment:
    """One captured window: a shared time axis + one row per probe.

    ``trigger_index`` locates the trigger sample on the time axis
    (None for untriggered streaming captures).
    """

    signals: tuple[str, ...]
    time: np.ndarray              # (n_samples,)
    values: np.ndarray            # (n_signals, n_samples)
    trigger_time: float | None = None
    trigger_index: int | None = None

    def __len__(self) -> int:
        return int(self.time.size)

    def signal(self, name: str) -> np.ndarray:
        try:
            return self.values[self.signals.index(name)]
        except ValueError:
            raise AnalysisError(
                f"no captured signal {name!r} "
                f"(have: {', '.join(self.signals)})") from None

    @property
    def nbytes(self) -> int:
        return int(self.time.nbytes + self.values.nbytes)

    def to_vcd(self, scope: str = "analog",
               timescale: str | None = None) -> str:
        """Serialise the window as an analog (``real``-variable) VCD."""
        from .vcd import VcdWriter, exact_timescale

        if len(self) == 0:
            raise AnalysisError("cannot dump an empty capture to VCD")
        if timescale is None:
            timescale, scale = exact_timescale(self.time)
        else:
            from .vcd import timescale_seconds
            scale = timescale_seconds(timescale)
        writer = VcdWriter(timescale,
                           comment=f"repro.scope capture ({scope})")
        idents = [writer.add_real(name, scope=scope)
                  for name in self.signals]
        previous_ticks = None
        for k, t in enumerate(self.time):
            ticks = int(round(float(t) / scale))
            if previous_ticks is not None and ticks <= previous_ticks:
                # Quantization collapsed two samples onto one tick;
                # keep timestamps strictly increasing (last one wins
                # would reorder, so nudge forward instead).
                ticks = previous_ticks + 1
            previous_ticks = ticks
            for row, ident in enumerate(idents):
                writer.change(ticks, ident, float(self.values[row, k]))
        writer.end_time(previous_ticks + 1)
        return writer.render()


class _RingBuffer:
    """Fixed-depth circular store of ``(t, values)`` samples."""

    def __init__(self, depth: int, n_signals: int) -> None:
        self.depth = depth
        self.times = np.empty(depth)
        self.values = np.empty((depth, n_signals))
        self.count = 0
        self._head = 0

    def push(self, t: float, values: np.ndarray) -> None:
        self.times[self._head] = t
        self.values[self._head] = values
        self._head = (self._head + 1) % self.depth
        self.count = min(self.count + 1, self.depth)

    def unrolled(self) -> tuple[np.ndarray, np.ndarray]:
        """Contents in time order (copies -- the ring keeps running)."""
        if self.count < self.depth:
            order = np.arange(self.count)
        else:
            order = (np.arange(self.depth) + self._head) % self.depth
        return self.times[order].copy(), self.values[order].copy()

    def clear(self) -> None:
        self.count = 0
        self._head = 0

    @property
    def nbytes(self) -> int:
        return int(self.times.nbytes + self.values.nbytes)


class ScopeSession:
    """A capture plan threaded through one transient run.

    Pass the session as ``transient(..., scope=session)``; the engine
    binds it to the compiled circuit, feeds it every committed sample
    (t = 0 included) and finalises it when the run ends.  Afterwards
    the captured windows are on :attr:`segments`.

    Modes:

    * ``trigger=None`` -- streaming: every (decimated) sample is kept;
      one segment covering the whole run.  Memory grows with the kept
      samples -- decimate for long runs.
    * with a trigger -- the ring buffer keeps the last ``pre_samples``
      stored samples; when the trigger fires, the window closes after
      ``post_samples`` more, yielding a segment of at most
      ``pre_samples + 1 + post_samples`` samples.  ``mode="single"``
      (default) stops capturing there -- memory stays O(window) no
      matter how long the run -- while ``mode="normal"`` re-arms until
      ``max_segments`` windows were taken.

    ``replace_dense=True`` additionally tells the transient engine to
    skip its own dense full-history record: the returned
    :class:`~repro.spice.results.TranResult` then carries the time axis
    and telemetry but no waveform arrays, and the session's windows are
    the only (bounded) waveform storage of the run.
    """

    def __init__(self, probes: Sequence[Probe | str],
                 trigger: Trigger | None = None,
                 pre_samples: int = 64,
                 post_samples: int = 256,
                 decimation: Decimator | None = None,
                 mode: str = "single",
                 max_segments: int = 16,
                 replace_dense: bool = False) -> None:
        if not probes:
            raise AnalysisError("a scope session needs at least one probe")
        if mode not in ("single", "normal"):
            raise AnalysisError(f"mode must be single/normal, got {mode!r}")
        if pre_samples < 0 or post_samples < 0:
            raise AnalysisError("pre_samples/post_samples must be >= 0")
        if max_segments < 1:
            raise AnalysisError("max_segments must be >= 1")
        self.probes = tuple(
            p if isinstance(p, Probe) else Probe(p) for p in probes)
        names = [p.name for p in self.probes]
        if len(set(names)) != len(names):
            raise AnalysisError(f"duplicate probe names: {names}")
        self.signal_names = tuple(names)
        self.trigger = trigger
        self.pre_samples = int(pre_samples)
        self.post_samples = int(post_samples)
        self.decimation = decimation
        self.mode = mode
        self.max_segments = int(max_segments)
        self.replace_dense = bool(replace_dense)
        if trigger is not None:
            trigger.bind(self.signal_names)
        self.segments: list[CaptureSegment] = []
        self._bound = False
        self._used = False
        self._reset_state()

    # -- lifecycle (driven by the transient engine) -------------------

    def _reset_state(self) -> None:
        self._ring: _RingBuffer | None = None
        self._stream_chunks: list[tuple[list, list]] | None = None
        self._post_times: list[float] = []
        self._post_values: list[np.ndarray] = []
        self._pending_trigger: tuple[float, int] | None = None
        self._armed = self.trigger is not None
        self._samples_seen = 0
        self._samples_stored = 0
        self._tspan = None

    def reset(self) -> None:
        """Clear all captured state so the session can run again."""
        self.segments = []
        self._bound = False
        self._used = False
        if self.trigger is not None:
            self.trigger.reset()
        if self.decimation is not None:
            self.decimation.reset()
        self._reset_state()

    def clone(self) -> "ScopeSession":
        """A fresh, unused session with this one's capture plan.

        Trigger and decimator are deep-copied (they carry per-run
        state), so clones never share mutable pieces -- the way the
        batched transient engine replicates one plan into a per-lane
        session list (:func:`~repro.spice.batch.batch_transient` needs
        an independent single-use session per lane).
        """
        import copy
        return ScopeSession(self.probes,
                            trigger=copy.deepcopy(self.trigger),
                            pre_samples=self.pre_samples,
                            post_samples=self.post_samples,
                            decimation=copy.deepcopy(self.decimation),
                            mode=self.mode,
                            max_segments=self.max_segments,
                            replace_dense=self.replace_dense)

    def _bind(self, node_index: dict[str, int], circuit_name: str,
              tspan) -> None:
        """Resolve probe node names against a compiled circuit."""
        if self._used:
            raise AnalysisError(
                "this ScopeSession already captured a run; call "
                "reset() before reusing it")
        self._used = True
        self._tspan = tspan

        def resolve(node: str) -> int:
            if node.lower() in _GROUND:
                return -1
            try:
                return node_index[node]
            except KeyError:
                raise AnalysisError(
                    f"probe node {node!r} is not a node of "
                    f"{circuit_name}") from None

        self._pos = np.array([resolve(p.pos) for p in self.probes])
        self._neg = np.array([resolve(p.neg) for p in self.probes])
        n = len(self.probes)
        if self.trigger is not None:
            # +1: the ring ends up holding the pre-trigger window AND
            # the trigger sample itself when the window closes.
            self._ring = _RingBuffer(self.pre_samples + 1, n)
        else:
            self._stream_chunks = [([], [])]
        self._bound = True

    def _signal_values(self, x: np.ndarray) -> np.ndarray:
        pos = np.where(self._pos >= 0, x[self._pos], 0.0)
        neg = np.where(self._neg >= 0, x[self._neg], 0.0)
        return pos - neg

    def _on_sample(self, t: float, x: np.ndarray) -> None:
        """One committed solver step (called by the transient engine)."""
        if not self._bound:
            raise AnalysisError("ScopeSession used before binding")
        self._samples_seen += 1
        values = self._signal_values(x)

        fired = False
        if self._armed and self.trigger is not None \
                and self._pending_trigger is None:
            fired = self.trigger.check(values)

        if self.trigger is None:
            self._store_stream(t, values)
            return

        if not self._armed and self._pending_trigger is None:
            return  # single-shot capture already done: O(window) memory

        if fired:
            # Close the pre-trigger window exactly at the trigger
            # sample: flush any partial decimation block, then record
            # the trigger sample itself undecimated.
            if self.decimation is not None:
                for td, vd in self.decimation.flush():
                    self._ring.push(td, vd)
            self._ring.push(t, values)
            self._samples_stored += 1
            self._pending_trigger = (t, self._ring.count - 1)
            if self._tspan is not None:
                self._tspan.inc("scope_triggers")
            if self.post_samples == 0:
                self._close_segment()
            return

        if self._pending_trigger is not None:
            # Post-trigger collection (undecimated: the window is
            # already bounded, resolution is what matters now).
            self._post_times.append(t)
            self._post_values.append(values)
            self._samples_stored += 1
            if len(self._post_times) >= self.post_samples:
                self._close_segment()
            return

        # Armed, pre-trigger: decimate into the ring.
        stored = ([(t, values)] if self.decimation is None
                  else self.decimation.push(t, values))
        for td, vd in stored:
            self._ring.push(td, vd)
            self._samples_stored += 1

    def _store_stream(self, t: float, values: np.ndarray) -> None:
        stored = ([(t, values)] if self.decimation is None
                  else self.decimation.push(t, values))
        times, vals = self._stream_chunks[-1]
        for td, vd in stored:
            times.append(td)
            vals.append(vd)
            self._samples_stored += 1

    def _close_segment(self) -> None:
        trigger_time, _ring_index = self._pending_trigger
        ring_t, ring_v = self._ring.unrolled()
        post_t = np.asarray(self._post_times)
        post_v = (np.asarray(self._post_values)
                  if self._post_values else np.empty((0, ring_v.shape[1])))
        time = np.concatenate([ring_t, post_t])
        values = np.concatenate([ring_v, post_v]).T
        # The ring held (pre window + trigger sample); the trigger is
        # the last ring entry.
        trigger_index = int(ring_t.size - 1)
        self.segments.append(CaptureSegment(
            signals=self.signal_names,
            time=time, values=np.ascontiguousarray(values),
            trigger_time=trigger_time, trigger_index=trigger_index))
        self._post_times = []
        self._post_values = []
        self._pending_trigger = None
        self._ring.clear()
        if self.mode == "normal" and len(self.segments) < self.max_segments:
            self.trigger.reset()
            if self.decimation is not None:
                self.decimation.reset()
            self._armed = True
        else:
            self._armed = False

    def _finish(self) -> None:
        """End of run: close open windows, flush counters."""
        if self.trigger is None:
            if self.decimation is not None:
                times, vals = self._stream_chunks[-1]
                for td, vd in self.decimation.flush():
                    times.append(td)
                    vals.append(vd)
                    self._samples_stored += 1
            times, vals = self._stream_chunks[0]
            time = np.asarray(times)
            values = (np.asarray(vals).T if vals
                      else np.empty((len(self.probes), 0)))
            self.segments.append(CaptureSegment(
                signals=self.signal_names, time=time,
                values=np.ascontiguousarray(values)))
            self._stream_chunks = None
        elif self._pending_trigger is not None:
            # Run ended mid-window: keep the partial segment.
            self._close_segment()
        if self._tspan is not None:
            self._tspan.inc("scope_samples_seen", self._samples_seen)
            self._tspan.inc("scope_samples_stored", self._samples_stored)
            self._tspan.annotate(scope_segments=len(self.segments))
            self._tspan = None

    # -- results ------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once at least one window was captured by a trigger."""
        return self.trigger is not None and bool(self.segments)

    @property
    def samples_seen(self) -> int:
        """Committed solver samples offered to the session."""
        return self._samples_seen

    @property
    def samples_stored(self) -> int:
        """Samples the session actually kept (ring + post + stream)."""
        return self._samples_stored

    def segment(self, index: int = 0) -> CaptureSegment:
        """The captured window (raises if nothing was captured)."""
        if not self.segments:
            raise AnalysisError(
                "no capture window: the trigger never fired (or the "
                "session was not passed to transient())")
        return self.segments[index]

    def memory_bytes(self) -> int:
        """Current waveform-storage footprint of the session [bytes].

        Ring buffer + collected post-window + finished segments --
        the number the O(window) memory-bound tests assert on.
        """
        total = sum(seg.nbytes for seg in self.segments)
        if self._ring is not None:
            total += self._ring.nbytes
        total += 8 * len(self._post_times)
        total += sum(v.nbytes for v in self._post_values)
        if self._stream_chunks is not None:
            for times, vals in self._stream_chunks:
                total += 8 * len(times)
                total += sum(v.nbytes for v in vals)
        return int(total)
