"""Small-signal AC analysis.

The circuit is linearised at its DC operating point: the static Jacobian
G comes from each element's ``stamp_ac`` (independent sources zeroed,
their topology kept), the susceptance matrix C from the derivatives of
the charge terms.  For each frequency the complex system

    (G + j 2 pi f C) v = b

is solved, where b carries the ``ac_mag`` excitations of the independent
sources.

The default backend stacks all frequencies of a chunk into one
``(F, N, N)`` complex tensor -- constant ``G`` broadcast plus a
per-frequency ``jωC`` axis -- and hands the whole stack to a single
``np.linalg.solve`` (the batched-LAPACK idiom of
:mod:`repro.spice.batch`).  Chunk sizes are capped so the F·N² scratch
tensor stays inside a fixed memory budget regardless of grid length.

On long grids the stacked backend first tries an even cheaper route:
one complex QZ decomposition ``C = Q S Zᴴ``, ``G = Q T Zᴴ`` turns
every frequency into a back-substitution on the *triangular* matrix
``T + jω S``, which vectorizes across the whole grid (N numpy steps
total instead of F LAPACK calls).  The result is residual-verified and
any failure -- missing scipy, singular diagonal, loss of accuracy --
falls back to the chunked direct solve.  ``backend="loop"`` keeps the
one-solve-per-frequency reference path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

try:  # pragma: no cover - scipy is a declared dependency
    from scipy.linalg import qz as _qz
except ImportError:  # pragma: no cover - degraded environment
    _qz = None

from .. import telemetry
from ..errors import AnalysisError
from .dc import NewtonOptions, operating_point
from .elements import CurrentSource, Stamper, VoltageSource
from .netlist import Circuit
from .results import AcResult, OpResult

#: Memory budget for one stacked-solve chunk: the (F, N, N) complex128
#: tensor is capped at this many bytes, so a 10k-point sweep of a large
#: circuit never materialises the full frequency axis at once.
_AC_CHUNK_BYTES = 16 << 20


def _chunk_length(size: int) -> int:
    """Frequencies per stacked chunk under the memory budget."""
    return max(1, _AC_CHUNK_BYTES // (16 * size * size))


def ac_analysis(circuit: Circuit, frequencies: Sequence[float],
                op: OpResult | None = None,
                options: NewtonOptions | None = None,
                backend: str = "stacked") -> AcResult:
    """Frequency response of ``circuit`` over ``frequencies`` [Hz].

    Exactly the sources constructed with a non-zero ``ac_mag`` excite the
    circuit.  Returns complex node voltages normalised to the excitation.

    ``backend`` selects the linear-solve strategy: ``"stacked"``
    (default) solves all frequencies of a memory-bounded chunk in one
    batched call, ``"loop"`` solves them one by one (reference path).
    Both produce identical results up to LAPACK batching order.
    """
    freqs = np.asarray(list(frequencies), dtype=float)
    if freqs.size == 0:
        raise AnalysisError("AC frequencies must be positive and non-empty")
    if np.any(np.isnan(freqs)):
        raise AnalysisError("AC frequencies must not contain NaN")
    if np.any(freqs <= 0.0):
        raise AnalysisError("AC frequencies must be positive and non-empty")
    if np.unique(freqs).size != freqs.size:
        raise AnalysisError(
            "AC frequency grid contains duplicate points; deduplicate "
            "the grid (duplicates silently skew any response-derived "
            "metric such as bandwidth interpolation)")
    if backend not in ("stacked", "loop"):
        raise AnalysisError(
            f"backend must be 'stacked' or 'loop', got {backend!r}")

    with telemetry.span("ac", circuit=circuit.name,
                        n_frequencies=int(freqs.size),
                        backend=backend) as tspan:
        return _ac_run(circuit, freqs, op, options, backend, tspan)


def _ac_run(circuit: Circuit, freqs: np.ndarray, op: OpResult | None,
            options: NewtonOptions | None, backend: str, tspan) -> AcResult:
    if op is None:
        op = operating_point(circuit, options)
    if op.x is None:
        raise AnalysisError("operating point lacks a raw solution vector")
    compiled = circuit.compile()
    x_op = op.x

    # Static small-signal matrix.
    st = Stamper(compiled.size)
    for element in circuit.elements:
        element.stamp_ac(st, x_op)
    g_matrix = st.jac.copy()

    # Susceptance matrix from charge-term derivatives: one vectorized
    # scatter when every element uses the stock charge API, otherwise
    # the generic per-term loop.
    assembler = compiled.prepare()
    if assembler.charges_vectorized:
        c_matrix = assembler.susceptance_matrix(x_op)
    else:
        c_matrix = np.zeros((compiled.size, compiled.size))
        for term in compiled.charge_terms(x_op):
            for col, dqdv in term.derivs:
                if col < 0:
                    continue
                if term.pos >= 0:
                    c_matrix[term.pos, col] += dqdv
                if term.neg >= 0:
                    c_matrix[term.neg, col] -= dqdv

    # Excitation vector.
    b = np.zeros(compiled.size, dtype=complex)
    excited = False
    for element in circuit.elements:
        if isinstance(element, VoltageSource) and element.ac_mag:
            (row,) = compiled.aux_index[element.name]
            b[row] += element.ac_mag
            excited = True
        elif isinstance(element, CurrentSource) and element.ac_mag:
            # Sign audit: the DC residual of a CurrentSource adds
            # +value at node_pos (current *pulled out of* the positive
            # node); at the solution G x = -residual-sources, so the
            # matching RHS entry of the linear AC system is -ac_mag at
            # node_pos / +ac_mag at node_neg.  An ac excitation
            # injected *into* a node therefore uses the same
            # ("0", node) orientation as its DC counterpart, and the
            # f->0 AC limit equals the DC small-signal response
            # (regression-tested in tests/unit/spice/test_ac.py).
            p = compiled.index_of(element.nodes[0])
            n = compiled.index_of(element.nodes[1])
            if p >= 0:
                b[p] -= element.ac_mag
            if n >= 0:
                b[n] += element.ac_mag
            excited = True
    if not excited:
        raise AnalysisError(
            "no AC excitation: give some source a non-zero ac_mag")

    omegas = 2.0 * np.pi * freqs
    if backend == "stacked":
        solutions = _solve_stacked(g_matrix, c_matrix, b, omegas, tspan)
    else:
        solutions = _solve_loop(g_matrix, c_matrix, b, omegas, tspan)

    names = list(compiled.node_index)
    responses = {name: solutions[:, compiled.node_index[name]].copy()
                 for name in names}
    return AcResult(frequencies=freqs, voltages=responses)


#: Minimum grid length before the QZ triangular sweep pays for its
#: one-off decomposition; shorter grids go straight to the chunked
#: direct solve.
_QZ_MIN_FREQUENCIES = 16

#: Residual acceptance bound of the QZ sweep, relative to the
#: excitation magnitude.  Orthogonal transforms keep the sweep at
#: direct-solve accuracy (~1e-15 relative), so tripping this bound
#: means something is genuinely wrong and the direct path takes over.
_QZ_RESIDUAL_RTOL = 1.0e-8


def _solve_stacked(g_matrix: np.ndarray, c_matrix: np.ndarray,
                   b: np.ndarray, omegas: np.ndarray,
                   tspan) -> np.ndarray:
    """Solve ``(G + jωC) v = b`` for every ω along a stacked axis.

    Long grids take the QZ triangular sweep; short grids, degraded
    environments and residual-check failures take the chunked direct
    tensor solve.  Either way the telemetry counter advances by the
    number of frequencies handled, so the per-run total still equals
    one ``jacobian_factorization`` per frequency -- same
    reconciliation contract as the loop backend.
    """
    if _qz is not None and omegas.size >= _QZ_MIN_FREQUENCIES:
        solutions = _solve_qz_sweep(g_matrix, c_matrix, b, omegas)
        if solutions is not None:
            tspan.inc("jacobian_factorizations", int(omegas.size))
            tspan.inc("ac_qz_sweeps")
            return solutions
    return _solve_stacked_direct(g_matrix, c_matrix, b, omegas, tspan)


def _solve_qz_sweep(g_matrix: np.ndarray, c_matrix: np.ndarray,
                    b: np.ndarray, omegas: np.ndarray
                    ) -> np.ndarray | None:
    """All-frequency solve through one generalized Schur form.

    The complex QZ decomposition ``C = Q S Zᴴ``, ``G = Q T Zᴴ``
    (orthogonal ``Q``, ``Z``; upper-triangular ``S``, ``T``) rewrites
    the system as ``(T + jω S) u = Qᴴ b`` with ``v = Z u`` -- a
    *triangular* solve per frequency, back-substituted for the whole
    grid at once in N vectorized steps.  Returns None when the sweep
    cannot be trusted (decomposition failure, singular diagonal,
    residual above bound); the caller then falls back to the direct
    chunked path.
    """
    size = b.size
    try:
        s_tri, t_tri, q_mat, z_mat = _qz(c_matrix, g_matrix,
                                         output="complex")
    except (ValueError, np.linalg.LinAlgError):
        return None
    y = q_mat.conj().T @ b
    u = np.empty((omegas.size, size), dtype=complex)
    diag = (t_tri.diagonal()[None, :]
            + 1j * omegas[:, None] * s_tri.diagonal()[None, :])
    if np.any(diag == 0.0):
        return None  # singular at some frequency: let LAPACK diagnose
    for k in range(size - 1, -1, -1):
        acc = np.full(omegas.size, y[k], dtype=complex)
        if k < size - 1:
            acc -= u[:, k + 1:] @ t_tri[k, k + 1:]
            acc -= 1j * omegas * (u[:, k + 1:] @ s_tri[k, k + 1:])
        u[:, k] = acc / diag[:, k]
    solutions = u @ z_mat.T
    # Cheap full-grid residual audit: two (F,N)x(N,N) matmuls.
    residual = (solutions @ g_matrix.T
                + 1j * omegas[:, None] * (solutions @ c_matrix.T)
                - b[None, :])
    scale = float(np.abs(b).max())
    if not np.all(np.isfinite(solutions)) or \
            float(np.abs(residual).max()) > _QZ_RESIDUAL_RTOL * scale:
        return None
    return solutions


def _solve_stacked_direct(g_matrix: np.ndarray, c_matrix: np.ndarray,
                          b: np.ndarray, omegas: np.ndarray,
                          tspan) -> np.ndarray:
    """Chunk-batched direct solve of the ``(F, N, N)`` tensor."""
    size = b.size
    solutions = np.empty((omegas.size, size), dtype=complex)
    chunk = _chunk_length(size)
    for start in range(0, omegas.size, chunk):
        w = omegas[start:start + chunk]
        # In-place real/imag assembly: G broadcast along the frequency
        # axis, ωC written straight into the imaginary plane (the
        # naive `G + 1j*w*C` spends more on temporaries than LAPACK
        # does on the solve at these matrix sizes).
        stack = np.empty((w.size, size, size), dtype=complex)
        stack.real[...] = g_matrix
        np.multiply(w[:, None, None], c_matrix, out=stack.imag)
        tspan.inc("jacobian_factorizations", int(w.size))
        # RHS as (F, N, 1) column vectors: numpy's batched solve treats
        # a 2-D b as one matrix of right-hand sides, not a stack.
        rhs = np.broadcast_to(b[None, :, None], (w.size, size, 1))
        try:
            solutions[start:start + chunk] = np.linalg.solve(
                stack, rhs)[:, :, 0]
        except np.linalg.LinAlgError:
            # One singular frequency poisons the whole batch: redo the
            # chunk point-by-point so only the defective rows go
            # through the least-squares rescue.
            for k, omega in enumerate(w):
                matrix = g_matrix + 1j * omega * c_matrix
                try:
                    solutions[start + k] = np.linalg.solve(matrix, b)
                except np.linalg.LinAlgError:
                    solutions[start + k], *_ = np.linalg.lstsq(
                        matrix, b, rcond=None)
    return solutions


def _solve_loop(g_matrix: np.ndarray, c_matrix: np.ndarray,
                b: np.ndarray, omegas: np.ndarray,
                tspan) -> np.ndarray:
    """Reference path: one dense solve per frequency."""
    solutions = np.empty((omegas.size, b.size), dtype=complex)
    for k, omega in enumerate(omegas):
        matrix = g_matrix + 1j * omega * c_matrix
        tspan.inc("jacobian_factorizations")
        try:
            solutions[k] = np.linalg.solve(matrix, b)
        except np.linalg.LinAlgError:
            solutions[k], *_ = np.linalg.lstsq(matrix, b, rcond=None)
    return solutions
