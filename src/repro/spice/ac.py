"""Small-signal AC analysis.

The circuit is linearised at its DC operating point: the static Jacobian
G comes from each element's ``stamp_ac`` (independent sources zeroed,
their topology kept), the susceptance matrix C from the derivatives of
the charge terms.  For each frequency the complex system

    (G + j 2 pi f C) v = b

is solved, where b carries the ``ac_mag`` excitations of the independent
sources.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .. import telemetry
from ..errors import AnalysisError
from .dc import NewtonOptions, operating_point
from .elements import CurrentSource, Stamper, VoltageSource
from .netlist import Circuit
from .results import AcResult, OpResult


def ac_analysis(circuit: Circuit, frequencies: Sequence[float],
                op: OpResult | None = None,
                options: NewtonOptions | None = None) -> AcResult:
    """Frequency response of ``circuit`` over ``frequencies`` [Hz].

    Exactly the sources constructed with a non-zero ``ac_mag`` excite the
    circuit.  Returns complex node voltages normalised to the excitation.
    """
    freqs = np.asarray(list(frequencies), dtype=float)
    if freqs.size == 0 or np.any(freqs <= 0.0):
        raise AnalysisError("AC frequencies must be positive and non-empty")

    with telemetry.span("ac", circuit=circuit.name,
                        n_frequencies=int(freqs.size)) as tspan:
        return _ac_run(circuit, freqs, op, options, tspan)


def _ac_run(circuit: Circuit, freqs: np.ndarray, op: OpResult | None,
            options: NewtonOptions | None, tspan) -> AcResult:
    if op is None:
        op = operating_point(circuit, options)
    if op.x is None:
        raise AnalysisError("operating point lacks a raw solution vector")
    compiled = circuit.compile()
    x_op = op.x

    # Static small-signal matrix.
    st = Stamper(compiled.size)
    for element in circuit.elements:
        element.stamp_ac(st, x_op)
    g_matrix = st.jac.copy()

    # Susceptance matrix from charge-term derivatives.
    c_matrix = np.zeros((compiled.size, compiled.size))
    for term in compiled.charge_terms(x_op):
        for col, dqdv in term.derivs:
            if col < 0:
                continue
            if term.pos >= 0:
                c_matrix[term.pos, col] += dqdv
            if term.neg >= 0:
                c_matrix[term.neg, col] -= dqdv

    # Excitation vector.
    b = np.zeros(compiled.size, dtype=complex)
    excited = False
    for element in circuit.elements:
        if isinstance(element, VoltageSource) and element.ac_mag:
            (row,) = compiled.aux_index[element.name]
            b[row] += element.ac_mag
            excited = True
        elif isinstance(element, CurrentSource) and element.ac_mag:
            # Sign audit: the DC residual of a CurrentSource adds
            # +value at node_pos (current *pulled out of* the positive
            # node); at the solution G x = -residual-sources, so the
            # matching RHS entry of the linear AC system is -ac_mag at
            # node_pos / +ac_mag at node_neg.  An ac excitation
            # injected *into* a node therefore uses the same
            # ("0", node) orientation as its DC counterpart, and the
            # f->0 AC limit equals the DC small-signal response
            # (regression-tested in tests/unit/spice/test_ac.py).
            p = compiled.index_of(element.nodes[0])
            n = compiled.index_of(element.nodes[1])
            if p >= 0:
                b[p] -= element.ac_mag
            if n >= 0:
                b[n] += element.ac_mag
            excited = True
    if not excited:
        raise AnalysisError(
            "no AC excitation: give some source a non-zero ac_mag")

    names = list(compiled.node_index)
    responses = {name: np.zeros(freqs.size, dtype=complex) for name in names}
    for k, frequency in enumerate(freqs):
        omega = 2.0 * np.pi * frequency
        matrix = g_matrix + 1j * omega * c_matrix
        tspan.inc("jacobian_factorizations")
        try:
            solution = np.linalg.solve(matrix, b)
        except np.linalg.LinAlgError:
            solution, *_ = np.linalg.lstsq(matrix, b, rcond=None)
        for name in names:
            responses[name][k] = solution[compiled.node_index[name]]
    return AcResult(frequencies=freqs, voltages=responses)
