"""Pluggable DC solve strategies, the homotopy ladder, and diagnostics.

The nonlinear DC solve is organised as a *ladder* of
:class:`SolveStrategy` objects tried in order until one converges:

1. :class:`NewtonStrategy` -- plain damped Newton from the initial guess;
2. :class:`GminSteppingStrategy` -- solve with a heavy shunt conductance
   on every node, then relax it geometrically (continuation in gmin);
3. :class:`SourceSteppingStrategy` -- ramp every independent source up
   from a fraction of its value (continuation in the excitation);
4. :class:`PseudoTransientStrategy` -- anchor each solve to the previous
   iterate through a decaying conductance, mimicking the damping of a
   transient run settling to DC (continuation in pseudo-time).

Every rung, successful or not, is recorded in a
:class:`SolverDiagnostics` carried by the returned
:class:`~repro.spice.results.OpResult` -- and by the raised
:class:`~repro.errors.ConvergenceError` when the whole ladder fails --
so a non-converging Monte-Carlo seed or sweep point can be diagnosed
from its forensic record instead of re-run under a debugger.

Continuation stages commonly need a different per-solve iteration
budget than plain Newton (SPICE's ITL1 vs ITL6 distinction); each
strategy therefore takes an optional ``max_iterations`` override.
"""

from __future__ import annotations

import abc
import os
import time as _time
import weakref
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from .. import telemetry
from ..errors import ConvergenceError
from .elements import CurrentSource, Stamper, VoltageSource
from .sparse import SparseStamper, sparse_factorize
from .waveforms import dc_wave

try:  # pragma: no cover - scipy is a declared dependency
    # Raw LAPACK bindings: same getrf/getrs pair scipy.linalg's
    # lu_factor/lu_solve wrap, minus the per-call asarray/check_finite
    # wrapper overhead -- which is comparable to the factorization
    # itself at MNA sizes.  The (lu, piv) handle this module stores is
    # LAPACK-native (1-based pivots) and is only ever fed back to
    # _getrs here.
    from scipy.linalg.lapack import dgetrf as _getrf
    from scipy.linalg.lapack import dgetrs as _getrs
except ImportError:  # pragma: no cover - degraded environment
    _getrf = _getrs = None

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .netlist import Circuit, CompiledCircuit


@dataclass(frozen=True)
class NewtonOptions:
    """Tuning knobs of the Newton solver.

    Attributes:
        max_iterations: Iteration cap per solve.
        vntol: Absolute node-voltage update tolerance [V].
        reltol: Relative update tolerance.
        max_step: Maximum voltage change applied per iteration [V].
        gmin: Conductance from every node to ground [S]; small enough not
            to disturb pA-level circuits.
        stall_window: Bail out of a Newton solve early when the damped
            update norm fails to at least halve across a window of this
            many iterations.  A converging solve shrinks its updates
            far faster; a *stalled* rung (the classic failure mode on
            exponential circuits: updates creeping by fractions of a
            percent per iteration, never meeting tolerance) would waste
            its whole iteration budget before the next homotopy rung --
            which converges such cases quickly -- gets a turn.  0
            disables the detector.
        lu_reuse: Hold one LU factorization of the Jacobian across
            Newton iterations (chord / modified Newton) -- and, when
            the caller supplies a :class:`LuReuseState`, across
            transient time steps -- refactoring only when the
            convergence-rate monitor trips.  The residual is always
            assembled exactly, so the converged solution is the same
            fixed point; only the iteration trajectory differs.
        lu_contraction: Contraction the monitor demands of a
            reused-factorization step: the damped update norm must
            shrink below ``lu_contraction`` times the previous
            iteration's, otherwise the step is discarded and redone
            with a fresh factorization of the current Jacobian.  The
            default is deliberately strict: residual assembly costs
            several times a factorization on MNA systems of this size,
            so a chord that merely *converges* (say 10x per iteration)
            still loses wall time to the extra assembled iterations
            its linear tail needs -- reuse must be nearly free (close
            to the quadratic trajectory) to pay.
        max_wall_time: Wall-clock budget [s] for one whole ladder solve
            (every rung included).  When exhausted, the solve aborts
            with a :class:`~repro.errors.ConvergenceError` carrying the
            usual :class:`SolverDiagnostics` and ``stage="wall-clock"``
            -- so a pathological circuit (a fuzz case, a bad production
            job) can never hang a worker.  None: unlimited.
        deadline: Absolute ``time.perf_counter()`` cutoff, set
            *internally* by :func:`run_ladder` / the transient engine
            from ``max_wall_time``; leave None.  The Newton kernel
            checks it every iteration.
    """

    max_iterations: int = 200
    vntol: float = 1.0e-7
    reltol: float = 1.0e-4
    max_step: float = 0.3
    gmin: float = 1.0e-15
    stall_window: int = 25
    lu_reuse: bool = True
    lu_contraction: float = 0.04
    max_wall_time: float | None = None
    deadline: float | None = None


def step_converged(step_norm, v_max, options: NewtonOptions):
    """The Newton update-norm convergence criterion.

    Shared between the serial kernel and the batched ensemble solver
    (:mod:`repro.spice.batch`) so both paths accept a solution under
    exactly the same rule; works elementwise on per-lane arrays.
    """
    return step_norm < options.vntol * (1.0 + options.reltol * v_max)


class LuReuseState:
    """Cached LU factorization shared across Newton solves.

    The transient engine owns one instance per run and threads it
    through every per-step solve, so a factorization survives across
    accepted time steps while the companion-model coefficient is
    unchanged.  :meth:`ensure_key` invalidates the cache whenever that
    coefficient (or anything else baked into the Jacobian from outside
    the kernel, keyed by the caller) changes -- e.g. on every dt
    change.  DC solves that do not pass a state get a fresh private one
    per :func:`newton_solve` call, limiting reuse to iterations of one
    solve.

    The cached handle may be a SuperLU object (sparse backend) --
    C-level state that is neither picklable nor valid across a
    ``fork``.  The state therefore **degrades instead of travelling**:
    pickling one (``__reduce__``) ships a fresh empty state, and every
    live instance is invalidated in forked children via an
    ``os.register_at_fork`` hook over a weak registry, so a worker
    process can never back-substitute against factors whose underlying
    C memory belongs to the parent.  Losing the cache merely costs one
    refactorization; using a stale one would be memory-unsafe.
    """

    __slots__ = ("lu", "key", "__weakref__")

    def __init__(self) -> None:
        self.lu = None
        self.key = None
        _live_lu_states.add(self)

    def invalidate(self) -> None:
        self.lu = None

    def ensure_key(self, key) -> None:
        """Invalidate the cache when ``key`` differs from the last one."""
        if key != self.key:
            self.key = key
            self.lu = None

    def __reduce__(self):
        # Never pickle the handle: SuperLU objects cannot be serialized,
        # and dense (lu, piv) factors are stale bulk data the receiving
        # process would have to distrust anyway.  A round-tripped state
        # is simply empty.
        return (LuReuseState, ())


#: Weak registry of every live state, so the fork hook can invalidate
#: them all without keeping any alive.
_live_lu_states: "weakref.WeakSet[LuReuseState]" = weakref.WeakSet()


def _invalidate_lu_states_after_fork() -> None:  # pragma: no cover
    for state in list(_live_lu_states):
        state.lu = None
        state.key = None


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX
    os.register_at_fork(after_in_child=_invalidate_lu_states_after_fork)


def _factorize(jac: np.ndarray):
    """LU-factor ``jac``; None when it is singular or non-finite (the
    caller then falls back to least squares, matching the behavior of
    the plain ``np.linalg.solve`` path)."""
    lu, piv, info = _getrf(jac)
    # info > 0 flags an exactly zero pivot; NaN/Inf inputs propagate
    # into the factors, caught by the isfinite sweep.
    if info != 0 or not np.all(np.isfinite(lu)):
        return None
    return lu, piv


def _lu_apply(handle, rhs: np.ndarray) -> np.ndarray:
    """Back-substitute a factorization handle against ``rhs``.

    Dispatches on the handle type: a ``(lu, piv)`` tuple comes from the
    dense :func:`_factorize`, anything else is a SuperLU object from
    :func:`~repro.spice.sparse.sparse_factorize` -- which is what lets
    one :class:`LuReuseState` serve both backends unchanged.
    """
    if not isinstance(handle, tuple):
        return handle.solve(rhs)
    dx, info = _getrs(handle[0], handle[1], rhs)
    if info != 0:  # pragma: no cover - getrs only rejects bad args
        raise ConvergenceError(f"LAPACK getrs failed (info={info})")
    return dx


def _damping(dx: np.ndarray, n_nodes: int,
             options: NewtonOptions) -> tuple[float, float]:
    """(largest node-voltage update, damping scale) for a raw step.
    Branch-current rows follow freely, exactly as in classic SPICE."""
    v_updates = np.abs(dx[:n_nodes]) if n_nodes else np.array([0.0])
    biggest = float(v_updates.max()) if v_updates.size else 0.0
    scale = 1.0 if biggest <= options.max_step else options.max_step / biggest
    return biggest, scale


def _lstsq_step(jac: np.ndarray, rhs: np.ndarray,
                compiled: "CompiledCircuit", iteration: int) -> np.ndarray:
    """Least-squares fallback for a singular Jacobian."""
    try:
        dx, *_ = np.linalg.lstsq(jac, rhs, rcond=None)
    except np.linalg.LinAlgError as error:
        raise ConvergenceError(
            f"singular, non-recoverable Jacobian in "
            f"{compiled.circuit.name} ({error})", iterations=iteration)
    return dx


def newton_solve(compiled: "CompiledCircuit", x0: np.ndarray,
                 time: float | None, options: NewtonOptions, gmin: float,
                 extra_stamp=None,
                 trace: list[float] | None = None,
                 lu_state: LuReuseState | None = None,
                 ) -> tuple[np.ndarray, int]:
    """Run damped (modified) Newton from ``x0``; return (solution, iters).

    ``trace``, when given, accumulates the max-abs residual of every
    iteration -- the trajectory the diagnostics record keeps.
    ``lu_state`` carries a Jacobian factorization across calls (the
    transient engine's cross-step chord iteration); without it, LU
    reuse -- when enabled by ``options.lu_reuse`` -- is scoped to the
    iterations of this one solve.  Under an active telemetry trace each
    solve opens a ``newton`` span carrying one ``newton-iter`` event
    per iteration (residual, update norm, damping, stall-detector
    state) plus the ``jacobian_factorizations`` / ``lu_refactorizations``
    / ``lu_reuses`` counters; disabled tracing takes a
    single-flag-check fast path.
    """
    if not telemetry.is_enabled():
        return _newton_kernel(compiled, x0, time, options, gmin,
                              extra_stamp, trace, None, lu_state)
    with telemetry.span("newton", gmin=gmin) as tspan:
        try:
            x, iterations = _newton_kernel(compiled, x0, time, options,
                                           gmin, extra_stamp, trace,
                                           tspan, lu_state)
        except ConvergenceError as error:
            tspan.annotate(converged=False, detail=str(error))
            raise
        tspan.annotate(converged=True, iterations=iterations)
        return x, iterations


def _newton_kernel(compiled: "CompiledCircuit", x0: np.ndarray,
                   time: float | None, options: NewtonOptions, gmin: float,
                   extra_stamp, trace: list[float] | None,
                   tspan, lu_state: LuReuseState | None = None,
                   ) -> tuple[np.ndarray, int]:
    st = compiled.new_stamper()
    sparse_mode = isinstance(st, SparseStamper)
    x = x0.copy()
    n_nodes = len(compiled.node_index)
    stall_checkpoint = np.inf
    stall_residual = np.inf
    reusing = options.lu_reuse and (sparse_mode or _getrf is not None)
    state = (lu_state if lu_state is not None else LuReuseState()) \
        if reusing else None
    prev_norm = np.inf
    observing = trace is not None or tspan is not None
    deadline = options.deadline
    for iteration in range(1, options.max_iterations + 1):
        if deadline is not None and _time.perf_counter() >= deadline:
            raise ConvergenceError(
                f"wall-clock budget exhausted after {iteration - 1} "
                f"Newton iterations in {compiled.circuit.name}",
                iterations=iteration - 1, stage="wall-clock")
        compiled.stamp_all(st, x, time)
        if extra_stamp is not None:
            extra_stamp(st, x)
        if gmin > 0.0:
            st.add_diagonal(gmin, n_nodes)
            st.res[:n_nodes] += gmin * x[:n_nodes]
        # Only observers and the stall detector's window boundaries
        # read the residual norm; skip it on plain hot-path iterations.
        residual = None
        if observing or iteration == 1 or (
                options.stall_window > 0
                and iteration % options.stall_window == 0):
            residual = float(np.abs(st.res).max())
        if trace is not None:
            trace.append(residual)
        # Linear step.  With a cached factorization, try the chord step
        # first; keep it only while it contracts the damped update norm
        # by the configured ratio (the residual is exact either way, so
        # the converged fixed point is unchanged).  Otherwise -- and on
        # the non-reuse path -- factorize the current Jacobian.
        dx = None
        reused = False
        biggest = scale = 0.0
        if state is not None and state.lu is not None:
            candidate = _lu_apply(state.lu, -st.res)
            if np.all(np.isfinite(candidate)):
                biggest, scale = _damping(candidate, n_nodes, options)
                if biggest * scale <= options.lu_contraction * prev_norm:
                    dx, reused = candidate, True
        if dx is None:
            if sparse_mode:
                # The CSC matrix only materialises on factorizing
                # iterations -- chord steps above never need it.
                a_csc = st.matrix()
                handle = sparse_factorize(a_csc)
                if state is not None:
                    state.lu = handle
                if handle is not None:
                    dx = _lu_apply(handle, -st.res)
                else:
                    dx = _lstsq_step(a_csc.toarray(), -st.res, compiled,
                                     iteration)
            elif state is not None:
                state.lu = _factorize(st.jac)
                if state.lu is not None:
                    dx = _lu_apply(state.lu, -st.res)
                else:
                    dx = _lstsq_step(st.jac, -st.res, compiled, iteration)
            else:
                try:
                    dx = np.linalg.solve(st.jac, -st.res)
                except np.linalg.LinAlgError:
                    dx = _lstsq_step(st.jac, -st.res, compiled, iteration)
            if not np.all(np.isfinite(dx)):
                raise ConvergenceError(
                    f"non-finite Newton update in {compiled.circuit.name}",
                    iterations=iteration)
            biggest, scale = _damping(dx, n_nodes, options)
        if tspan is not None:
            if reused:
                tspan.inc("lu_reuses")
            else:
                tspan.inc("jacobian_factorizations")
                if sparse_mode:
                    tspan.inc("sparse_factorizations")
                if state is not None:
                    tspan.inc("lu_refactorizations")
        x += scale * dx
        prev_norm = biggest * scale
        if iteration == 1:
            # Seed the stall detector with the opening update norm and
            # residual so the first window is already armed: a solve
            # where *neither* has halved by iteration ``stall_window``
            # is the limit-cycle failure mode, and waiting a second
            # full window just delays the homotopy rung that will
            # actually converge it.  A solve whose updates are pinned
            # at the damping cap while the residual keeps falling is
            # healthy (pseudo-transient continuation does exactly
            # this), which is why the residual check is part of the
            # trip condition.
            stall_checkpoint = prev_norm
            stall_residual = residual
        if tspan is not None:
            tspan.event("newton-iter", i=iteration, residual=residual,
                        update_norm=biggest * scale, damping=scale,
                        lu_reused=reused,
                        stall_checkpoint=(
                            None if stall_checkpoint == np.inf
                            else stall_checkpoint))
        converged = step_converged(
            biggest * scale,
            float(np.abs(x[:n_nodes]).max() if n_nodes else 0.0),
            options)
        if converged and scale == 1.0:
            if reused:
                # Never declare victory on a stale Jacobian: drop the
                # cached factorization so the next iteration takes a
                # fresh full-Newton step and re-checks.  This pins the
                # accepted solution to full-Newton accuracy (the final
                # step is always a true Newton step) at the cost of at
                # most one extra factorization per solve.
                state.invalidate()
            else:
                return x, iteration
        if options.stall_window > 0 and \
                iteration % options.stall_window == 0:
            step_norm = biggest * scale
            if step_norm > 0.5 * stall_checkpoint and \
                    residual > 0.5 * stall_residual:
                if tspan is not None:
                    tspan.event("stall", iteration=iteration,
                                update_norm=step_norm,
                                window=options.stall_window)
                raise ConvergenceError(
                    f"Newton stalled after {iteration} iterations in "
                    f"{compiled.circuit.name} (neither the update norm "
                    f"{step_norm:.3e} nor the residual {residual:.3e} "
                    f"halved over the last "
                    f"{options.stall_window} iterations)",
                    iterations=iteration, residual=residual)
            stall_checkpoint = step_norm
            stall_residual = residual
    raise ConvergenceError(
        f"Newton failed after {options.max_iterations} iterations "
        f"in {compiled.circuit.name}",
        iterations=options.max_iterations,
        residual=float(np.abs(st.res).max()))


# -- diagnostics ---------------------------------------------------------


@dataclass(frozen=True)
class StageReport:
    """Forensic record of one ladder rung.

    Attributes:
        strategy: Strategy name (e.g. ``"gmin-stepping"``).
        converged: Whether this rung produced the solution.
        iterations: Newton iterations spent inside the rung.
        wall_time: Seconds spent inside the rung.
        residuals: Max-abs residual per Newton iteration (the
            trajectory; truncated to the last
            :data:`RESIDUAL_TRACE_LIMIT` entries).
        detail: Failure message when the rung did not converge.
    """

    strategy: str
    converged: bool
    iterations: int
    wall_time: float
    residuals: tuple[float, ...] = ()
    detail: str = ""


#: Longest residual trajectory kept per stage (memory bound for sweeps).
RESIDUAL_TRACE_LIMIT = 256


@dataclass
class SolverDiagnostics:
    """What the homotopy ladder did for one operating-point solve.

    Attributes:
        circuit: Circuit name.
        stages: One :class:`StageReport` per rung attempted, in order.
        rescued_by: Name of the converging strategy (None: total failure).
        total_iterations: Newton iterations summed over every rung.
        wall_time: Seconds spent in the ladder.
    """

    circuit: str
    stages: list[StageReport] = field(default_factory=list)
    rescued_by: str | None = None
    total_iterations: int = 0
    wall_time: float = 0.0

    @property
    def converged(self) -> bool:
        return self.rescued_by is not None

    @property
    def rescue_needed(self) -> bool:
        """True when plain Newton was not enough."""
        return self.converged and len(self.stages) > 1

    def stage(self, name: str) -> StageReport:
        """The report of strategy ``name`` (last attempt wins)."""
        for report in reversed(self.stages):
            if report.strategy == name:
                return report
        raise KeyError(f"no stage {name!r} in diagnostics")

    def describe(self) -> str:
        """Multi-line human-readable account of the solve."""
        lines = [f"DC solve of {self.circuit!r}: "
                 + (f"converged via {self.rescued_by} "
                    if self.converged else "FAILED every strategy ")
                 + f"({self.total_iterations} Newton iterations, "
                   f"{self.wall_time * 1e3:.1f} ms)"]
        for report in self.stages:
            status = "ok" if report.converged else "failed"
            line = (f"  {report.strategy:17s} {status:6s} "
                    f"{report.iterations:5d} iters "
                    f"{report.wall_time * 1e3:8.2f} ms")
            if report.residuals:
                line += f"  residual {report.residuals[-1]:.3e}"
            if report.detail and not report.converged:
                line += f"  ({report.detail})"
            lines.append(line)
        return "\n".join(lines)


# -- strategies ----------------------------------------------------------


class SolveStrategy(abc.ABC):
    """One rung of the DC homotopy ladder."""

    #: Stable identifier used in diagnostics (subclasses override).
    name = "strategy"

    def __init__(self, max_iterations: int | None = None) -> None:
        #: Per-Newton-solve iteration override for this rung (None
        #: inherits ``NewtonOptions.max_iterations``).
        self.max_iterations = max_iterations

    def _options(self, options: NewtonOptions) -> NewtonOptions:
        if self.max_iterations is None:
            return options
        return replace(options, max_iterations=self.max_iterations)

    @abc.abstractmethod
    def solve(self, circuit: "Circuit", compiled: "CompiledCircuit",
              x0: np.ndarray, time: float | None, options: NewtonOptions,
              trace: list[float]) -> tuple[np.ndarray, int]:
        """Return (solution, total iterations) or raise ConvergenceError.

        ``trace`` accumulates the residual trajectory for diagnostics.
        """


class NewtonStrategy(SolveStrategy):
    """Plain damped Newton from the supplied initial guess."""

    name = "newton"

    def solve(self, circuit, compiled, x0, time, options, trace):
        options = self._options(options)
        return newton_solve(compiled, x0, time, options, options.gmin,
                            trace=trace)


class GminSteppingStrategy(SolveStrategy):
    """Continuation in the shunt conductance.

    Solves with ``gmin = 10^-start_exponent`` (a nearly linear system),
    then relaxes the shunt one decade at a time down to
    ``10^-stop_exponent``, warm-starting each stage from the previous
    one, and finishes with a plain solve at the true ``options.gmin``.
    """

    name = "gmin-stepping"

    def __init__(self, start_exponent: int = 3, stop_exponent: int = 15,
                 max_iterations: int | None = None) -> None:
        super().__init__(max_iterations)
        if stop_exponent <= start_exponent:
            raise ValueError("stop_exponent must exceed start_exponent")
        self.start_exponent = start_exponent
        self.stop_exponent = stop_exponent

    def solve(self, circuit, compiled, x0, time, options, trace):
        options = self._options(options)
        schedule = telemetry.current_span()
        x = x0.copy()
        total = 0
        for exponent in range(self.start_exponent, self.stop_exponent + 1):
            gmin = 10.0 ** (-exponent)
            x, iters = newton_solve(compiled, x, time, options,
                                    max(gmin, options.gmin), trace=trace)
            total += iters
            schedule.event("gmin-step", gmin=gmin, iterations=iters)
        x, iters = newton_solve(compiled, x, time, options, options.gmin,
                                trace=trace)
        return x, total + iters


class SourceSteppingStrategy(SolveStrategy):
    """Continuation in the independent-source excitation.

    Every independent source is ramped from ``start_fraction`` of its
    value to 100 % in ``steps`` increments; each increment warm-starts
    from the previous solution, so no single Newton solve faces the full
    excitation from a cold guess.
    """

    name = "source-stepping"

    def __init__(self, steps: int = 10, start_fraction: float = 0.1,
                 max_iterations: int | None = None) -> None:
        super().__init__(max_iterations)
        if steps < 2:
            raise ValueError(f"need at least 2 ramp steps, got {steps}")
        if not 0.0 < start_fraction < 1.0:
            raise ValueError(
                f"start_fraction must be in (0, 1): {start_fraction}")
        self.steps = steps
        self.start_fraction = start_fraction

    def solve(self, circuit, compiled, x0, time, options, trace):
        options = self._options(options)
        sources = [e for e in circuit.elements
                   if isinstance(e, (VoltageSource, CurrentSource))]
        saved = [source.waveform for source in sources]
        schedule = telemetry.current_span()
        try:
            x = np.zeros_like(x0)
            total = 0
            for fraction in np.linspace(self.start_fraction, 1.0,
                                        self.steps):
                for source, waveform in zip(sources, saved):
                    value = waveform(0.0 if time is None else time)
                    source.waveform = dc_wave(value * float(fraction))
                x, iters = newton_solve(compiled, x, None, options,
                                        max(1e-12, options.gmin),
                                        trace=trace)
                total += iters
                schedule.event("source-step", fraction=float(fraction),
                               iterations=iters)
            for source, waveform in zip(sources, saved):
                source.waveform = waveform
            x, iters = newton_solve(compiled, x, time, options,
                                    options.gmin, trace=trace)
            return x, total + iters
        finally:
            for source, waveform in zip(sources, saved):
                source.waveform = waveform


class PseudoTransientStrategy(SolveStrategy):
    """Pseudo-transient continuation (the final fallback).

    Each outer step solves the circuit with an extra conductance ``g``
    from every node to its *previous* voltage -- the resistive analogue
    of a capacitor to the old state, i.e. one implicit-Euler step of a
    fictitious transient.  ``g`` starts heavy (small pseudo-timestep,
    strongly damped) and decays by ``shrink`` per accepted step until it
    reaches ``options.gmin``, after which a plain Newton solve polishes
    the answer.  Unlike gmin stepping the anchor carries no bias toward
    ground, so it also tames circuits whose solution sits far from zero.
    """

    name = "pseudo-transient"

    def __init__(self, g_start: float = 1.0e-3, shrink: float = 10.0,
                 max_iterations: int | None = None) -> None:
        super().__init__(max_iterations)
        if g_start <= 0.0:
            raise ValueError(f"g_start must be positive: {g_start}")
        if shrink <= 1.0:
            raise ValueError(f"shrink must exceed 1: {shrink}")
        self.g_start = g_start
        self.shrink = shrink

    def solve(self, circuit, compiled, x0, time, options, trace):
        options = self._options(options)
        n_nodes = len(compiled.node_index)
        schedule = telemetry.current_span()
        x = x0.copy()
        total = 0
        g = self.g_start
        while g > options.gmin:
            x_prev = x.copy()

            def anchor(st, xv: np.ndarray,
                       g=g, x_prev=x_prev) -> None:
                st.add_diagonal(g, n_nodes)
                st.res[:n_nodes] += g * (xv[:n_nodes] - x_prev[:n_nodes])

            x, iters = newton_solve(compiled, x, time, options,
                                    options.gmin, extra_stamp=anchor,
                                    trace=trace)
            total += iters
            schedule.event("pseudo-transient-step", g=g, iterations=iters)
            g /= self.shrink
        x, iters = newton_solve(compiled, x, time, options, options.gmin,
                                trace=trace)
        return x, total + iters


#: The ladder ``operating_point`` climbs by default.
DEFAULT_LADDER: tuple[SolveStrategy, ...] = (
    NewtonStrategy(),
    GminSteppingStrategy(),
    SourceSteppingStrategy(),
    PseudoTransientStrategy(),
)


def run_ladder(circuit: "Circuit", compiled: "CompiledCircuit",
               x0: np.ndarray, time: float | None, options: NewtonOptions,
               strategies=None) -> tuple[np.ndarray, SolverDiagnostics]:
    """Try each strategy in order; return solution plus diagnostics.

    Raises :class:`~repro.errors.ConvergenceError` -- with the full
    :class:`SolverDiagnostics` attached as ``.diagnostics`` -- when
    every rung fails.
    """
    strategies = DEFAULT_LADDER if strategies is None else tuple(strategies)
    if not strategies:
        raise ValueError("empty strategy ladder")
    # One value-sync per solve: picks up element mutations (aged
    # resistors, swapped devices) without paying per-iteration checks.
    compiled.prepare()
    diagnostics = SolverDiagnostics(circuit=circuit.name)
    ladder = telemetry.current_span()
    ladder_start = _time.perf_counter()
    if options.max_wall_time is not None and options.deadline is None:
        # One absolute deadline covers the whole ladder; the Newton
        # kernel enforces it every iteration, and the rung loop below
        # stops climbing once it has passed.
        options = replace(options,
                          deadline=ladder_start + options.max_wall_time)
    deadline_hit = False
    for strategy in strategies:
        trace: list[float] = []
        stage_start = _time.perf_counter()
        error: ConvergenceError | None = None
        with telemetry.span(f"strategy:{strategy.name}",
                            strategy=strategy.name) as sspan:
            try:
                x, iterations = strategy.solve(circuit, compiled, x0,
                                               time, options, trace)
            except ConvergenceError as exc:
                error = exc
                sspan.annotate(converged=False, iterations=len(trace),
                               detail=str(exc))
            else:
                sspan.annotate(converged=True, iterations=iterations)
        if error is not None:
            ladder.event("ladder-rung", strategy=strategy.name,
                         converged=False, iterations=len(trace),
                         why=str(error))
            diagnostics.stages.append(StageReport(
                strategy=strategy.name, converged=False,
                iterations=len(trace),
                wall_time=_time.perf_counter() - stage_start,
                residuals=tuple(trace[-RESIDUAL_TRACE_LIMIT:]),
                detail=str(error)))
            diagnostics.total_iterations += len(trace)
            if options.deadline is not None and \
                    _time.perf_counter() >= options.deadline:
                deadline_hit = True
                ladder.event("ladder-deadline", strategy=strategy.name,
                             budget=options.max_wall_time)
                break
            continue
        ladder.event("ladder-rung", strategy=strategy.name,
                     converged=True, iterations=iterations,
                     why="converged")
        diagnostics.stages.append(StageReport(
            strategy=strategy.name, converged=True, iterations=iterations,
            wall_time=_time.perf_counter() - stage_start,
            residuals=tuple(trace[-RESIDUAL_TRACE_LIMIT:])))
        diagnostics.total_iterations += iterations
        diagnostics.rescued_by = strategy.name
        diagnostics.wall_time = _time.perf_counter() - ladder_start
        return x, diagnostics
    diagnostics.wall_time = _time.perf_counter() - ladder_start
    last = diagnostics.stages[-1]
    if deadline_hit:
        budget = (f"{options.max_wall_time:.3g}s"
                  if options.max_wall_time is not None else "deadline")
        raise ConvergenceError(
            f"wall-clock budget of {budget} "
            f"exhausted for {circuit.name!r} after "
            f"{', '.join(s.strategy for s in diagnostics.stages)} "
            f"({diagnostics.wall_time:.3g}s spent)",
            iterations=diagnostics.total_iterations,
            residual=last.residuals[-1] if last.residuals else None,
            diagnostics=diagnostics, stage="wall-clock")
    raise ConvergenceError(
        f"every solve strategy failed for {circuit.name!r} "
        f"(tried {', '.join(s.strategy for s in diagnostics.stages)})",
        iterations=diagnostics.total_iterations,
        residual=last.residuals[-1] if last.residuals else None,
        diagnostics=diagnostics, stage=last.strategy)
