"""Transient analysis: trapezoidal / backward-Euler with adaptive steps.

The integrator is charge-based: at each accepted time point the solver
records the charge of every dynamic term, and each Newton solve at the
new time point stamps the companion current

    BE:    i = (q(x) - q_prev) / dt
    TRAP:  i = 2 (q(x) - q_prev) / dt - i_prev

Waveform breakpoints (pulse edges etc.) are always landed on exactly.
The step size shrinks on Newton failures and grows back after easy
steps -- sufficient for the RC-dominated subthreshold circuits this
library simulates, whose waveforms have no high-Q ringing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import math

import numpy as np

from .. import telemetry
from ..errors import AnalysisError, ConvergenceError, NetlistError
from .dc import NewtonOptions, _newton, operating_point
from .elements import CurrentSource, Stamper, VoltageSource
from .netlist import Circuit
from .results import OpResult, TranResult


@dataclass(frozen=True)
class TransientOptions:
    """Transient-engine knobs.

    Attributes:
        dt_initial: First step size [s]; default t_stop / 1000.
        dt_min: Smallest allowed step [s]; default t_stop * 1e-9.
        dt_max: Largest allowed step [s]; default t_stop / 50.
        method: 'trap' (default) or 'be'.
        newton: Nonlinear-solver options per step.
        record_currents: Also record branch currents of voltage sources.
        max_rejections: Total step-rejection budget for the whole run
            (None: unlimited).  A circuit that keeps rejecting steps is
            diagnosed early with its telemetry instead of grinding the
            step size down to ``dt_min``.
    """

    dt_initial: float | None = None
    dt_min: float | None = None
    dt_max: float | None = None
    method: str = "trap"
    newton: NewtonOptions = NewtonOptions(max_iterations=60)
    record_currents: bool = False
    max_rejections: int | None = None


@dataclass
class TransientTelemetry:
    """Step-acceptance record of one transient run.

    Attributes:
        steps_accepted: Time points committed.
        steps_rejected: Newton failures that shrank the step.
        newton_iterations: Total Newton iterations over accepted steps.
        rejection_times: Simulation times [s] at which rejections
            happened (capped at 64 entries; earliest kept).
        dt_smallest: Smallest step size actually committed [s].
    """

    steps_accepted: int = 0
    steps_rejected: int = 0
    newton_iterations: int = 0
    rejection_times: list[float] = field(default_factory=list)
    dt_smallest: float = float("inf")

    _REJECTION_LOG_LIMIT = 64

    def record_rejection(self, time: float) -> None:
        self.steps_rejected += 1
        if len(self.rejection_times) < self._REJECTION_LOG_LIMIT:
            self.rejection_times.append(time)

    def describe(self) -> str:
        rate = self.steps_rejected / max(
            1, self.steps_accepted + self.steps_rejected)
        # dt_smallest is the identity of min() until a step commits; a
        # run that died before its first commit must not report an
        # "inf seconds" step size.
        dt_text = (f"{self.dt_smallest:.3e} s"
                   if math.isfinite(self.dt_smallest)
                   else "n/a (no committed steps)")
        return (f"{self.steps_accepted} steps accepted, "
                f"{self.steps_rejected} rejected ({rate:.0%}), "
                f"{self.newton_iterations} Newton iterations, "
                f"smallest dt {dt_text}")


def _breakpoints(circuit: Circuit, t_stop: float) -> list[float]:
    points: set[float] = set()
    for element in circuit.elements:
        if isinstance(element, (VoltageSource, CurrentSource)):
            for t in element.waveform.breakpoints:
                if 0.0 < t < t_stop:
                    points.add(float(t))
    return sorted(points)


def transient(circuit: Circuit, t_stop: float,
              options: TransientOptions | None = None,
              initial_op: OpResult | None = None) -> TranResult:
    """Integrate ``circuit`` from t = 0 (DC operating point) to ``t_stop``.

    Under an active telemetry trace the whole run is wrapped in a
    ``transient`` span: step-acceptance counters, one ``step-rejected``
    event per shrink, and the per-step Newton spans of the inner solver
    nest underneath.
    """
    if t_stop <= 0.0:
        raise NetlistError(f"t_stop must be positive, got {t_stop}")
    options = options or TransientOptions()
    if options.method not in ("trap", "be"):
        raise NetlistError(f"unknown method {options.method!r}")
    with telemetry.span("transient", circuit=circuit.name,
                        t_stop=t_stop, method=options.method) as tspan:
        return _transient_run(circuit, t_stop, options, initial_op, tspan)


def _transient_run(circuit: Circuit, t_stop: float,
                   options: TransientOptions,
                   initial_op: OpResult | None, tspan) -> TranResult:
    dt = options.dt_initial or t_stop / 1000.0
    dt_min = options.dt_min or t_stop * 1e-9
    dt_max = options.dt_max or t_stop / 50.0
    dt = min(dt, dt_max)

    if initial_op is None:
        initial_op = operating_point(circuit, options.newton)
    if initial_op.x is None:
        raise AnalysisError(
            "initial_op carries no solution vector (x is None): it is a "
            "NaN placeholder from a non-converged sweep point recorded "
            "under on_error='skip'; filter those out (OpResult.converged) "
            "before handing them to transient()")
    compiled = circuit.compile()
    assembler = compiled.prepare()
    x = initial_op.x.copy()

    # Initial charge state; capacitor currents are zero at DC.  The
    # vectorized charge system is used whenever no foreign element
    # subclass overrides charge_terms (then: per-element fallback).
    vectorized = assembler.charges_vectorized
    if vectorized:
        q_prev = assembler.charge_vector(x)
    else:
        q_prev = np.array([term.q for term in compiled.charge_terms(x)])
    i_prev = np.zeros(len(q_prev))

    breakpoints = _breakpoints(circuit, t_stop)
    bp_cursor = 0

    times = [0.0]
    names = list(compiled.node_index)
    history = {name: [x[compiled.node_index[name]]] for name in names}
    # Only voltage-defined elements own an MNA branch current; with
    # record_currents set, exactly the independent VoltageSource
    # branches are recorded (CurrentSource currents are their waveform
    # values and carry no branch unknown).
    recorded_sources = [e for e in circuit.elements
                        if isinstance(e, VoltageSource)]
    current_history: dict[str, list[float]] = {
        e.name: [float(x[compiled.aux_index[e.name][0]])]
        for e in recorded_sources} if options.record_currents else {}

    step_log = TransientTelemetry()

    t = 0.0
    # Relative tolerance above float epsilon: accumulated rounding in
    # ``t`` must not leave a ~1e-16*t_stop residue to be "stepped" over
    # (it would pollute the telemetry's smallest committed step).
    while t < t_stop * (1.0 - 1e-12):
        # Snap the step onto the next breakpoint or the stop time.
        while bp_cursor < len(breakpoints) and breakpoints[bp_cursor] <= t * (1 + 1e-12):
            bp_cursor += 1
        t_limit = breakpoints[bp_cursor] if bp_cursor < len(breakpoints) else t_stop
        t_limit = min(t_limit, t_stop)
        step = min(dt, t_limit - t)
        if step <= 0.0:
            bp_cursor += 1
            continue

        accepted = False
        while not accepted:
            t_new = t + step
            if options.method == "trap":
                c0 = 2.0 / step
                rhs = -c0 * q_prev - i_prev
            else:
                c0 = 1.0 / step
                rhs = -c0 * q_prev

            if vectorized:
                def dynamic_stamp(st: Stamper, xv: np.ndarray) -> None:
                    assembler.stamp_charges(st, xv, c0, rhs)
            else:
                def dynamic_stamp(st: Stamper, xv: np.ndarray) -> None:
                    for k, term in enumerate(compiled.charge_terms(xv)):
                        i_k = c0 * term.q + rhs[k]
                        st.add_f(term.pos, i_k)
                        st.add_f(term.neg, -i_k)
                        for col, dqdv in term.derivs:
                            st.add_j(term.pos, col, c0 * dqdv)
                            st.add_j(term.neg, col, -c0 * dqdv)

            try:
                x_new, iters = _newton(compiled, x, t_new, options.newton,
                                       options.newton.gmin,
                                       extra_stamp=dynamic_stamp)
                step_log.newton_iterations += iters
                accepted = True
            except ConvergenceError:
                step_log.record_rejection(t)
                tspan.inc("transient_steps_rejected")
                tspan.event("step-rejected", t=t, dt=step)
                if (options.max_rejections is not None
                        and step_log.steps_rejected
                        > options.max_rejections):
                    raise ConvergenceError(
                        f"transient exhausted its rejection budget of "
                        f"{options.max_rejections} at t={t:.3e}s in "
                        f"{circuit.name} ({step_log.describe()})",
                        diagnostics=step_log, stage="rejection-budget")
                step /= 4.0
                if step < dt_min:
                    raise ConvergenceError(
                        f"transient stalled at t={t:.3e}s in "
                        f"{circuit.name} (dt below {dt_min:.1e}; "
                        f"{step_log.describe()})",
                        diagnostics=step_log, stage="dt-min")

        # Commit the step: update charge state.
        if vectorized:
            q_new = assembler.charge_vector(x_new)
        else:
            q_new = np.array([term.q
                              for term in compiled.charge_terms(x_new)])
        i_new = c0 * q_new + rhs
        q_prev, i_prev = q_new, i_new
        x = x_new
        t = t_new
        step_log.steps_accepted += 1
        tspan.inc("transient_steps_accepted")
        step_log.dt_smallest = min(step_log.dt_smallest, step)
        times.append(t)
        for name in names:
            history[name].append(float(x[compiled.node_index[name]]))
        for element_name in current_history:
            row = compiled.aux_index[element_name][0]
            current_history[element_name].append(float(x[row]))

        # Adapt: the accepted step may have been shortened by a breakpoint;
        # grow the nominal dt gently either way.
        dt = min(dt_max, max(step * 1.4, dt * 0.5))

    tspan.annotate(steps_accepted=step_log.steps_accepted,
                   steps_rejected=step_log.steps_rejected,
                   newton_iterations=step_log.newton_iterations)
    return TranResult(
        time=np.asarray(times),
        voltages={name: np.asarray(vals) for name, vals in history.items()},
        branch_currents={name: np.asarray(vals)
                         for name, vals in current_history.items()},
        telemetry=step_log)
